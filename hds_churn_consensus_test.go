package hds

import (
	"strings"
	"testing"

	"repro/internal/fd/oracle"
)

func TestRunChurnFig8Oracle(t *testing.T) {
	res, err := RunChurnFig8(ChurnFig8Experiment{
		IDs:       BalancedIDs(5, 2),
		T:         2,
		Churn:     ChurnSpec{Fraction: 0.3, Cycles: 1, Start: 2, Down: 60},
		Net:       Async{MaxDelay: 8},
		Adversary: oracle.AdversaryRotate,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventuallyUp != 5 {
		t.Errorf("EventuallyUp = %d, want 5 (every churner recovers)", res.EventuallyUp)
	}
	if res.Correct >= 5 {
		t.Errorf("Correct = %d, want < 5 (churners are not strictly correct)", res.Correct)
	}
	if res.Recoveries == 0 {
		t.Error("scenario exercised no recoveries")
	}
	if res.Report.Deciders < res.EventuallyUp {
		t.Errorf("deciders = %d, want ≥ %d (every eventually-up process decides)", res.Report.Deciders, res.EventuallyUp)
	}
	if res.Report.Value == "" {
		t.Error("no decision value")
	}
}

func TestRunChurnFig8MessagePassing(t *testing.T) {
	res, err := RunChurnFig8(ChurnFig8Experiment{
		IDs:       BalancedIDs(5, 2),
		T:         2,
		Churn:     ChurnSpec{Fraction: 0.3, Cycles: 2, Start: 3, Down: 40, Up: 50, Stagger: 7},
		Net:       PartialSync{Delta: 3},
		Detectors: MessagePassingDetectors,
		Seed:      2,
		Horizon:   2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Deciders < 5 {
		t.Errorf("deciders = %d, want 5 (full stack, every process eventually up)", res.Report.Deciders)
	}
	if res.Recoveries == 0 {
		t.Error("scenario exercised no recoveries")
	}
}

func TestRunChurnFig9(t *testing.T) {
	res, err := RunChurnFig9(ChurnFig9Experiment{
		IDs:       BalancedIDs(6, 3),
		Churn:     ChurnSpec{Fraction: 0.34, Cycles: 1, Start: 2, Down: 60, Stagger: 7},
		Net:       Async{MaxDelay: 8},
		Adversary: oracle.AdversaryRotate,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventuallyUp != 6 || res.Report.Deciders < 6 {
		t.Errorf("EventuallyUp/deciders = %d/%d, want 6/6", res.EventuallyUp, res.Report.Deciders)
	}
	if res.Recoveries != 2 {
		t.Errorf("Recoveries = %d, want 2", res.Recoveries)
	}
}

func TestRunChurnFig9FinalDown(t *testing.T) {
	// Final-down churners degrade churn to crash-stop for them: Termination
	// quantifies over the strictly smaller eventually-up set, which must
	// still decide.
	res, err := RunChurnFig9(ChurnFig9Experiment{
		IDs:   BalancedIDs(6, 3),
		Churn: ChurnSpec{Fraction: 0.34, Cycles: 2, Start: 25, Down: 30, Up: 40, FinalDown: true},
		Seed:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventuallyUp != 4 || res.Correct != 4 {
		t.Errorf("EventuallyUp/Correct = %d/%d, want 4/4", res.EventuallyUp, res.Correct)
	}
	if res.Report.Deciders < 4 {
		t.Errorf("deciders = %d, want ≥ 4", res.Report.Deciders)
	}
}

func TestRunChurnFig9Anonymous(t *testing.T) {
	if _, err := RunChurnFig9(ChurnFig9Experiment{
		IDs:               AnonymousIDs(5),
		AnonymousBaseline: true,
		Churn:             ChurnSpec{Fraction: 0.2, Cycles: 1, Start: 25, Down: 35},
		Seed:              5,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunChurnFig8WithExtraCrashes(t *testing.T) {
	// Churn plus a disjoint permanent crash: t=2 budget covers one churner
	// and one crash-stop process; the crash-stop one is exempt from
	// Termination, the churner is not.
	res, err := RunChurnFig8(ChurnFig8Experiment{
		IDs:     BalancedIDs(5, 2),
		T:       2,
		Churn:   ChurnSpec{Fraction: 0.2, Cycles: 1, Start: 25, Down: 40},
		Crashes: map[PID]Time{3: 35},
		Seed:    6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventuallyUp != 4 {
		t.Errorf("EventuallyUp = %d, want 4", res.EventuallyUp)
	}
}

func TestChurnConsensusRunnersRejectMalformedExperiments(t *testing.T) {
	tests := []struct {
		name string
		want string
		run  func() error
	}{
		{"fig8 horizon truncates churn", "horizon", func() error {
			_, err := RunChurnFig8(ChurnFig8Experiment{
				IDs: BalancedIDs(5, 2), T: 2,
				Churn:   ChurnSpec{Fraction: 0.2, Cycles: 1, Start: 25, Down: 40},
				Horizon: 50,
			})
			return err
		}},
		{"fig8 permanent crash past horizon", "horizon", func() error {
			// The horizon check covers the merged schedule: a Crashes entry
			// the run would never execute must be rejected, not silently
			// folded into the ground truth as a crash that "happened".
			_, err := RunChurnFig8(ChurnFig8Experiment{
				IDs: BalancedIDs(5, 2), T: 2,
				Churn:   ChurnSpec{Fraction: 0.2, Cycles: 1, Start: 25, Down: 40},
				Crashes: map[PID]Time{3: 2_000_000}, // default horizon is 1e6
			})
			return err
		}},
		{"fig8 churn and crashes overlap", "both", func() error {
			_, err := RunChurnFig8(ChurnFig8Experiment{
				IDs: BalancedIDs(5, 2), T: 2,
				Churn:   ChurnSpec{Fraction: 0.2, Cycles: 1, Start: 25, Down: 40},
				Crashes: map[PID]Time{0: 30}, // PID 0 is the churner
			})
			return err
		}},
		{"fig8 churners exceed t budget", "budget", func() error {
			_, err := RunChurnFig8(ChurnFig8Experiment{
				IDs: BalancedIDs(5, 2), T: 1,
				Churn: ChurnSpec{Fraction: 0.5, Cycles: 1, Start: 25, Down: 40},
			})
			return err
		}},
		{"fig8 t out of range", "t <", func() error {
			_, err := RunChurnFig8(ChurnFig8Experiment{
				IDs: BalancedIDs(4, 2), T: 2,
				Churn: ChurnSpec{Fraction: 0.25, Cycles: 1, Start: 25, Down: 40},
			})
			return err
		}},
		{"fig9 horizon truncates churn", "horizon", func() error {
			_, err := RunChurnFig9(ChurnFig9Experiment{
				IDs:     BalancedIDs(5, 2),
				Churn:   ChurnSpec{Fraction: 0.2, Cycles: 2, Start: 25, Down: 40, Up: 50},
				Horizon: 100,
			})
			return err
		}},
		{"fig9 nobody eventually up", "eventually up", func() error {
			_, err := RunChurnFig9(ChurnFig9Experiment{
				IDs:   AnonymousIDs(3),
				Churn: ChurnSpec{Fraction: 1, Cycles: 1, Start: 25, Down: 30, FinalDown: true},
			})
			return err
		}},
		{"fig9 invalid assignment", "identifier", func() error {
			_, err := RunChurnFig9(ChurnFig9Experiment{
				IDs:   Assignment{"a", ""},
				Churn: ChurnSpec{Fraction: 0.5, Cycles: 1, Start: 25, Down: 30},
			})
			return err
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.run()
			if err == nil {
				t.Fatal("malformed experiment accepted")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("err = %v, want mention of %q", err, tt.want)
			}
		})
	}
}

// TestChurnDetectorRunnersValidateInputs pins the satellite fix: the
// detector-layer churn runners validate their inputs like the consensus
// runners always did, instead of silently producing meaningless numbers.
func TestChurnDetectorRunnersValidateInputs(t *testing.T) {
	if _, err := RunChurnOHP(ChurnOHPExperiment{
		IDs:   Assignment{"a", ""},
		Churn: ChurnSpec{Fraction: 0.5, Cycles: 1},
	}); err == nil || !strings.Contains(err.Error(), "identifier") {
		t.Errorf("invalid assignment accepted: %v", err)
	}
	if _, err := RunChurnOHP(ChurnOHPExperiment{
		IDs:     BalancedIDs(8, 4),
		Churn:   ChurnSpec{Fraction: 0.25, Cycles: 2, Start: 30, Down: 40, Up: 60},
		Horizon: 100, // last event at 170
	}); err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Errorf("schedule-truncating horizon accepted: %v", err)
	}
	if _, err := RunHeartbeatChurn(HeartbeatExperiment{
		IDs:   Assignment{},
		Churn: ChurnSpec{Fraction: 0.5},
	}); err == nil || !strings.Contains(err.Error(), "no processes") {
		t.Errorf("empty assignment accepted: %v", err)
	}
	if _, err := RunHeartbeatChurn(HeartbeatExperiment{
		IDs:     BalancedIDs(10, 2),
		Churn:   ChurnSpec{Fraction: 0.2, Cycles: 1, Start: 50, Down: 30},
		Horizon: 60, // recovery at 80 is past the horizon
	}); err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Errorf("schedule-truncating horizon accepted: %v", err)
	}
}
