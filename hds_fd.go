package hds

import (
	"slices"

	"repro/internal/fd"
	"repro/internal/fd/hsigma"
	"repro/internal/fd/ohp"
	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
	"repro/internal/trace"
)

// OHPExperiment describes one standalone run of the Figure 6 detector
// (◇HP̄ + HΩ) in the partially synchronous system HPS.
type OHPExperiment struct {
	IDs     Assignment
	Crashes map[PID]Time
	GST     Time
	Delta   Time
	// Net overrides the network model. When nil the experiment runs on
	// PartialSync{GST, Delta} — the paper's HPS setting. Any eventually
	// timely model works (the truncated heavy-tail models qualify: their
	// Cap bounds every delay); the delay ablation experiment (E19) sweeps
	// them.
	Net  sim.Model
	Seed int64
	// Horizon caps virtual time (default 5000).
	Horizon Time
	// Trace, when non-nil, replaces the default stats-only recorder: pass
	// a retaining recorder for a full in-memory trace, or one with a
	// trace.Sink attached to stream batches (spill mode). The caller owns
	// flushing.
	Trace *trace.Recorder
}

// OHPResult reports the verified detector run.
type OHPResult struct {
	// TrustedStabilization is the virtual time at which the last correct
	// process's h_trusted changed for the last time (to I(Correct)).
	TrustedStabilization Time
	// LeaderStabilization is the analogous instant for the HΩ output.
	LeaderStabilization Time
	// Leader is the stabilized HΩ output.
	Leader LeaderInfo
	// Stats aggregates message costs over the horizon.
	Stats Stats
	// FinalTimeouts are the adapted per-process timeout values.
	FinalTimeouts []Time
}

// RunOHP executes Figure 6 on every process, verifies the ◇HP̄ and HΩ
// class properties against the ground truth, and reports stabilization
// times and costs (experiment E6/E7).
func RunOHP(e OHPExperiment) (OHPResult, error) {
	if e.Horizon == 0 {
		e.Horizon = 5000
	}
	if e.Delta == 0 {
		e.Delta = 3
	}
	n := e.IDs.N()
	net := e.Net
	if net == nil {
		net = sim.PartialSync{GST: e.GST, Delta: e.Delta}
	}
	rec := traceRecorder(e.Trace)
	eng := sim.New(sim.Config{
		IDs:      e.IDs,
		Net:      net,
		Seed:     e.Seed,
		Recorder: rec,
	})
	dets := make([]*ohp.Detector, n)
	for i := range dets {
		dets[i] = ohp.New()
		eng.AddProcess(dets[i])
	}
	eng.CrashSchedule(e.Crashes)
	truth := fd.NewGroundTruth(e.IDs, e.Crashes)
	// The trusted probe samples the detector's live view: no clone on the
	// per-event path (OnTimer replaces h_trusted wholesale, so stored views
	// are never mutated after sampling). Streaming probes suffice — the
	// checkers judge final views only — and their change streams feed the
	// trace when one is kept, so a replay can re-verify the same verdicts.
	trustedProbe := fd.NewStreamProbe(eng, n, func(p sim.PID) (*multiset.Multiset[ident.ID], bool) {
		if eng.Crashed(p) {
			return nil, false
		}
		return dets[p].TrustedView(), true
	}, func(a, b *multiset.Multiset[ident.ID]) bool { return a.Equal(b) })
	leaderProbe := fd.NewStreamProbe(eng, n, func(p sim.PID) (fd.LeaderInfo, bool) {
		if eng.Crashed(p) {
			return fd.LeaderInfo{}, false
		}
		return dets[p].Leader()
	}, func(a, b fd.LeaderInfo) bool { return a == b })
	if rec.Retaining() {
		fd.RecordChanges(rec, trustedProbe, fd.TagTrusted, fd.RenderView)
		fd.RecordChanges(rec, leaderProbe, fd.TagLeader, fd.RenderLeader)
	}

	eng.Run(e.Horizon)
	if err := guardErr(eng); err != nil {
		return OHPResult{}, err
	}

	resT, err := fd.CheckDiamondHPbar(truth, trustedProbe)
	if err != nil {
		return OHPResult{}, err
	}
	resL, err := fd.CheckHOmega(truth, leaderProbe)
	if err != nil {
		return OHPResult{}, err
	}
	out := OHPResult{
		TrustedStabilization: resT.StabilizationTime,
		LeaderStabilization:  resL.StabilizationTime,
		Stats:                rec.Stats(),
	}
	if correct := truth.Correct(); len(correct) > 0 {
		out.Leader, _ = leaderProbe.Last(correct[0])
	}
	for _, d := range dets {
		out.FinalTimeouts = append(out.FinalTimeouts, d.Timeout())
	}
	return out, nil
}

// HSigmaExperiment describes one run of the Figure 7 detector in the
// synchronous system HSS.
type HSigmaExperiment struct {
	IDs Assignment
	// CrashSteps maps process → (step, deliverProb): the process crashes
	// during that step, its broadcast reaching each peer with deliverProb.
	CrashSteps map[PID]CrashStep
	Steps      int
	Seed       int64
}

// CrashStep is a synchronous crash specification.
type CrashStep struct {
	Step        int
	DeliverProb float64
}

// HSigmaResult reports the verified Figure 7 run.
type HSigmaResult struct {
	// StabilizationStep is the step after which outputs stopped changing.
	StabilizationStep Time
	// QuoraPerProcess is the final |h_quora| at each surviving process.
	QuoraPerProcess []int
	Stats           Stats
}

// RunHSigma executes Figure 7, verifies all four HΣ axioms, and reports
// stabilization and quora sizes (experiment E8).
func RunHSigma(e HSigmaExperiment) (HSigmaResult, error) {
	if e.Steps == 0 {
		e.Steps = 12
	}
	n := e.IDs.N()
	rec := &trace.Recorder{}
	eng := sim.NewSync(sim.SyncConfig{IDs: e.IDs, Seed: e.Seed, Recorder: rec})
	dets := make([]*hsigma.Detector, n)
	for i := range dets {
		dets[i] = hsigma.New()
		eng.AddProcess(dets[i])
	}
	// Register in ascending PID order: CrashAtStep appends to the step's
	// crash list, and the sync engine replays that list, so map iteration
	// order would otherwise reach the trace.
	crashPids := make([]sim.PID, 0, len(e.CrashSteps))
	for p := range e.CrashSteps {
		crashPids = append(crashPids, p)
	}
	slices.Sort(crashPids)
	crashTimes := make(map[sim.PID]sim.Time, len(e.CrashSteps))
	for _, p := range crashPids {
		cs := e.CrashSteps[p]
		eng.CrashAtStep(p, cs.Step, cs.DeliverProb)
		crashTimes[p] = sim.Time(cs.Step)
	}
	truth := fd.NewGroundTruth(e.IDs, crashTimes)
	quora := fd.NewSyncProbe(eng, n, func(p sim.PID) ([]fd.QuorumPair, bool) {
		if eng.Crashed(p) {
			return nil, false
		}
		return dets[p].Quora(), true
	}, quoraEq)
	labels := fd.NewSyncProbe(eng, n, func(p sim.PID) ([]fd.Label, bool) {
		if eng.Crashed(p) {
			return nil, false
		}
		return dets[p].Labels(), true
	}, fd.LabelsEqual)

	eng.RunSteps(e.Steps)

	res, err := fd.CheckHSigma(truth, quora, labels)
	if err != nil {
		return HSigmaResult{}, err
	}
	out := HSigmaResult{StabilizationStep: res.StabilizationTime, Stats: rec.Stats()}
	for p := 0; p < n; p++ {
		if !eng.Crashed(sim.PID(p)) {
			out.QuoraPerProcess = append(out.QuoraPerProcess, len(dets[p].Quora()))
		}
	}
	return out, nil
}

func quoraEq(a, b []fd.QuorumPair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Label != b[i].Label || !a[i].M.Equal(b[i].M) {
			return false
		}
	}
	return true
}
