package hunt

import (
	"encoding/json"
	"fmt"
)

// Entry is one checked-in regression scenario: a minimized Scenario plus
// the verdict line it must reproduce byte-for-byte. Entries are written
// by cmd/hunt (or by hand during triage) and replayed by the corpus
// regression test on every CI run — a pinned PASS guards against
// behavioural drift, a pinned FAIL would keep a known-bad scenario
// visibly red until fixed.
//
// The package deliberately has no "load the corpus directory" helper:
// hunt is in the deterministic set, where directory enumeration is
// banned, so cmd/hunt and the _test.go files own the file I/O and hand
// entries in as bytes.
type Entry struct {
	Name string `json:"name"`
	// Note says why the scenario is worth keeping — the failure it once
	// witnessed or the structure it targets.
	Note     string   `json:"note"`
	Scenario Scenario `json:"scenario"`
	// Want is the pinned verdict line (Outcome.Verdict).
	Want string `json:"want"`
}

// DecodeEntry parses one corpus file's bytes, rejecting unknown fields so
// typos in hand-edited entries fail loudly.
func DecodeEntry(b []byte) (Entry, error) {
	var e Entry
	if err := json.Unmarshal(b, &e); err != nil {
		return Entry{}, fmt.Errorf("hunt: corpus entry: %w", err)
	}
	if e.Name == "" {
		return Entry{}, fmt.Errorf("hunt: corpus entry has no name")
	}
	if err := e.Scenario.Validate(); err != nil {
		return Entry{}, fmt.Errorf("hunt: corpus entry %s: %w", e.Name, err)
	}
	return e, nil
}

// EncodeEntry renders an entry in the corpus's canonical on-disk form
// (indented JSON, trailing newline).
func EncodeEntry(e Entry) ([]byte, error) {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("hunt: corpus entry %s: %w", e.Name, err)
	}
	return append(b, '\n'), nil
}

// Replay re-runs the entry's scenario and compares the verdict to the
// pinned one, byte for byte. A mismatch means the behaviour of
// (Scenario, seed) changed — deliberately (re-pin with cmd/hunt -pin) or
// as a regression (fix the code).
func Replay(e Entry) error {
	got := e.Scenario.Run().Verdict
	if got != e.Want {
		return fmt.Errorf("hunt: corpus %s: verdict drifted\n  want: %s\n  got:  %s", e.Name, e.Want, got)
	}
	return nil
}
