package hunt

import (
	"math/rand"
	"sort"

	"repro/internal/cliutil"
	"repro/internal/sim"
)

// Mutation bounds. The fuzzer explores small populations on purpose:
// every interesting quorum/leader-group interaction already exists at
// n <= 10, and small scenarios execute orders of magnitude faster, so the
// budget buys breadth instead of fan-out.
const (
	minN       = 3
	maxN       = 10
	maxWindows = 3
	maxCrashes = 4
)

// netPalette is the mutator's network menu: every ParseNet spec family,
// including the first-class loss and (via window mutations) partition
// models this PR promoted. Specs, not Models, so scenarios stay JSON.
var netPalette = []string{
	"", // runner default
	"async:4",
	"async:12",
	"psync:30:3",
	"psync:60:2",
	"timely:2",
	"pareto:1.2:40",
	"lognormal:1:40",
	"alt:15:3:20:0.25:45",
	"asym:5:6",
	"lossy:0.2",
	"lossy:0.4:6",
	"lossy:0.6:10",
}

var adversaryPalette = []string{"none", "rotate", "split"}

// Mutate returns a sanitized single-step mutant of s. All randomness
// comes from r, drawn in a fixed order, so the mutant stream is a pure
// function of (s, r's state) — the campaign-level determinism contract
// builds on exactly this.
func Mutate(s Scenario, r *rand.Rand) Scenario {
	m := s.Clone()
	switch r.Intn(17) {
	case 0: // reseed: same structure, different execution
		m.Seed = m.Seed + 1 + int64(r.Intn(16))
	case 1: // population
		m.N = minN + r.Intn(maxN-minN+1)
	case 2: // homonymy degree
		m.L = 1 + r.Intn(maxN)
	case 3: // switch algorithm
		m.Kind = Kinds[r.Intn(len(Kinds))]
	case 4: // churn fraction (0 disables churn)
		m.Churn.Fraction = []float64{0, 0.17, 0.34, 0.5, 0.67}[r.Intn(5)]
	case 5: // churn phase geometry
		m.Churn.Start = sim.Time(1 + r.Intn(60))
		m.Churn.Down = sim.Time(5 + r.Intn(80))
	case 6: // churn overlap structure
		m.Churn.Stagger = sim.Time(r.Intn(20))
		m.Churn.Up = sim.Time(5 + r.Intn(50))
	case 7: // churn repetition
		m.Churn.Cycles = 1 + r.Intn(3)
	case 8: // churn tail
		m.Churn.FinalDown = !m.Churn.FinalDown
	case 9: // add a crash-stop
		m.Crashes = append(m.Crashes, CrashEntry{
			P:  sim.PID(r.Intn(maxN)),
			At: sim.Time(1 + r.Intn(120)),
		})
	case 10: // drop a crash-stop
		if len(m.Crashes) > 0 {
			i := r.Intn(len(m.Crashes))
			m.Crashes = append(m.Crashes[:i], m.Crashes[i+1:]...)
		}
	case 11: // move a crash in time
		if len(m.Crashes) > 0 {
			m.Crashes[r.Intn(len(m.Crashes))].At = sim.Time(1 + r.Intn(120))
		}
	case 12: // network model
		m.Net = netPalette[r.Intn(len(netPalette))]
	case 13: // add a partition window
		from := sim.Time(r.Intn(80))
		m.Partitions = append(m.Partitions, sim.PartitionWindow{
			From: from,
			To:   from + sim.Time(5+r.Intn(40)),
			Cut:  sim.PID(1 + r.Intn(maxN-1)),
		})
	case 14: // drop or move a partition window
		if len(m.Partitions) == 0 {
			break
		}
		i := r.Intn(len(m.Partitions))
		if r.Intn(2) == 0 {
			m.Partitions = append(m.Partitions[:i], m.Partitions[i+1:]...)
		} else {
			shift := sim.Time(r.Intn(40))
			m.Partitions[i].From += shift
			m.Partitions[i].To += shift
		}
	case 15: // oracle adversary
		m.Adversary = adversaryPalette[r.Intn(len(adversaryPalette))]
	case 16: // oracle stabilization time (0 = runner default)
		m.Stabilize = []sim.Time{0, 1, 10, 50, 120}[r.Intn(5)]
	}
	return Sanitize(m)
}

// Sanitize clamps a scenario back into the runners' admissible space, so
// every mutant is runnable and every runner rejection left reachable is a
// genuine validation gap rather than fuzzer noise. It is idempotent and
// deterministic, and the structured seeds pass through it too — one
// definition of "admissible" for the whole package.
//
// The liveness-critical rule: permanently crashed processes (crash-stops
// plus final-down churners) stay strictly below n/2 for every kind. The
// consensus algorithms' termination and the detectors' leader liveness
// are only promised over a live majority; scenarios violating that would
// "fail" checkers without witnessing any bug.
func Sanitize(s Scenario) Scenario {
	s = s.Clone()
	// Kind and counts first — everything else depends on them.
	if !kindKnown(s.Kind) {
		s.Kind = "fig9"
	}
	s.N = clampInt(s.N, minN, maxN)
	s.L = clampInt(s.L, 1, s.N)

	// Churn geometry: keep every field in the generator's meaningful
	// range (its defaults() would repair zeros, but negative values and
	// absurd magnitudes shouldn't reach it).
	if s.Churn.Fraction < 0 {
		s.Churn.Fraction = 0
	}
	if s.Churn.Fraction > 0 {
		if s.Churn.Fraction > 0.67 {
			s.Churn.Fraction = 0.67
		}
		s.Churn.Start = sim.Time(clampInt(int(s.Churn.Start), 1, 200))
		s.Churn.Down = sim.Time(clampInt(int(s.Churn.Down), 1, 200))
		s.Churn.Up = sim.Time(clampInt(int(s.Churn.Up), 1, 200))
		s.Churn.Cycles = clampInt(s.Churn.Cycles, 1, 3)
		s.Churn.Stagger = sim.Time(clampInt(int(s.Churn.Stagger), 0, 50))
	} else {
		s.Churn = sim.ChurnSpec{}
	}

	// Crashes: in-range PIDs, positive times, no churn overlap, unique,
	// sorted — the canonical slice form Validate demands.
	churners := map[sim.PID]bool{}
	for _, p := range s.Churn.Churners(s.N) {
		churners[p] = true
	}
	seen := map[sim.PID]bool{}
	kept := s.Crashes[:0]
	for _, c := range s.Crashes {
		if c.P < 0 || int(c.P) >= s.N || churners[c.P] || seen[c.P] {
			continue
		}
		if c.At < 1 {
			c.At = 1
		}
		seen[c.P] = true
		kept = append(kept, c)
	}
	if len(kept) > maxCrashes {
		kept = kept[:maxCrashes]
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].P != kept[j].P {
			return kept[i].P < kept[j].P
		}
		return kept[i].At < kept[j].At
	})
	s.Crashes = kept

	// The live-majority rule: cap permanent crashes below n/2.
	permBudget := (s.N - 1) / 2
	perm := len(s.Crashes)
	if s.Churn.FinalDown {
		perm += len(s.Churn.Churners(s.N))
	}
	if perm > permBudget {
		if s.Churn.FinalDown {
			s.Churn.FinalDown = false
			perm = len(s.Crashes)
		}
		if perm > permBudget {
			s.Crashes = s.Crashes[:permBudget]
		}
	}

	// Kind-specific repairs.
	switch s.Kind {
	case "fig8":
		// Every fault — churner or crash-stop — spends the t budget.
		faults := len(s.Crashes) + len(s.Churn.Churners(s.N))
		maxT := (s.N - 1) / 2
		if faults > maxT {
			// Shed crash-stops first, then churn, until the budget fits.
			for len(s.Crashes) > 0 && faults > maxT {
				s.Crashes = s.Crashes[:len(s.Crashes)-1]
				faults--
			}
			if faults > maxT {
				s.Churn = sim.ChurnSpec{}
				faults = len(s.Crashes)
			}
		}
		s.T = clampInt(s.T, faults, maxT)
	case "ohp":
		// RunChurnOHP drives churn only; crash-stops belong to RunOHP.
		if s.Churn.Fraction > 0 {
			s.Crashes = nil
		}
		s.Stabilize, s.Adversary = 0, ""
	case "heartbeat":
		// The heartbeat runner has no crash-stop schedule or oracle.
		s.Crashes = nil
		s.Stabilize, s.Adversary = 0, ""
		if s.Period < 0 {
			s.Period = 0
		}
	}

	// An unparseable network spec would only breed dead mutants; fall
	// back to the runner default.
	if s.Net != "" {
		if _, err := cliutil.ParseNet(s.Net); err != nil {
			s.Net = ""
		}
	}

	// Partition windows: positive spans, cuts that split [0, n), at most
	// maxWindows, sorted into canonical order.
	pkept := s.Partitions[:0]
	for _, w := range s.Partitions {
		if w.From < 0 || w.To <= w.From || w.Cut < 1 || int(w.Cut) >= s.N {
			continue
		}
		pkept = append(pkept, w)
	}
	if len(pkept) > maxWindows {
		pkept = pkept[:maxWindows]
	}
	sort.Slice(pkept, func(i, j int) bool {
		if pkept[i].From != pkept[j].From {
			return pkept[i].From < pkept[j].From
		}
		if pkept[i].To != pkept[j].To {
			return pkept[i].To < pkept[j].To
		}
		return pkept[i].Cut < pkept[j].Cut
	})
	s.Partitions = pkept

	// Horizon: an explicit horizon must clear the full schedule (fault
	// events and partition heals). The consensus and ohp defaults (1e6 and
	// 5000) always do; heartbeat's default is only ten beat periods, so a
	// scheduled heartbeat scenario gets an explicit horizon.
	if s.Horizon != 0 {
		if last := s.lastScheduleEvent(); s.Horizon <= last+1 {
			s.Horizon = last + 200
		}
	}
	if s.Kind == "heartbeat" && s.Horizon == 0 {
		period := s.Period
		if period <= 0 {
			period = 10
		}
		if last := s.lastScheduleEvent(); last+1 >= 10*period {
			s.Horizon = last + 20*period
		}
	}
	if s.Seed < 0 {
		s.Seed = -s.Seed
	}
	// Canonical empty form is nil, so sanitized scenarios compare equal
	// (and marshal identically) regardless of how their slices were built.
	if len(s.Crashes) == 0 {
		s.Crashes = nil
	}
	if len(s.Partitions) == 0 {
		s.Partitions = nil
	}
	s.MaxEvents = 0 // a tight cap fakes guard findings; see Scenario.MaxEvents
	return s
}

func kindKnown(k string) bool {
	for _, known := range Kinds {
		if k == known {
			return true
		}
	}
	return false
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
