package hunt

import (
	"fmt"
	"strings"

	hds "repro"
	"repro/internal/trace"
)

// Failure classes, ordered roughly by severity. Class is the shrinker's
// failure signature: a reduction is accepted only if the reduced scenario
// fails with the same class.
const (
	ClassTermination     = "termination"
	ClassAgreement       = "agreement"
	ClassValidity        = "validity"
	ClassRoundAgreement  = "round-agreement"
	ClassDecisionMonitor = "decision-monitor"
	ClassDetector        = "detector"
	ClassLiveness        = "liveness"
	ClassTruthDrift      = "truth-drift"
	ClassGuard           = "guard"
	ClassInvariant       = "invariant"
	// ClassLossLiveness marks liveness failures attributable to message
	// loss the scenario itself injects. The paper's algorithms assume
	// reliable links for liveness (HAS), and the cores broadcast each
	// phase message exactly once — so a lossy or partitioned consensus
	// run that fails Termination witnesses the model hypothesis, not a
	// bug. Scenario.Run downgrades those failures to this class; the
	// fuzzer explores them for coverage and the corpus can pin them as
	// documentation, but they are never reported as findings. Safety
	// violations (agreement, validity, decision stability) are NEVER
	// downgraded: loss must not break safety.
	ClassLossLiveness = "loss-liveness"
	// ClassConfig marks runner input rejections — not bugs, dead mutants.
	ClassConfig = "config"
)

// Outcome is the classified result of one scenario run. Verdict is the
// canonical one-line form the corpus pins byte-for-byte; the remaining
// fields feed coverage bucketing.
type Outcome struct {
	OK      bool
	Class   string // "" when OK
	Err     string // full error text when !OK
	Verdict string
	Round   int // decision-round depth (consensus kinds)
	Stop    string
	Stats   trace.Stats
}

// Failed reports whether the outcome is a verification failure (of any
// class, including expected loss-liveness ones) rather than a rejected
// configuration. The shrinker works on Failed outcomes.
func (o Outcome) Failed() bool { return !o.OK && o.Class != ClassConfig }

// Reportable reports whether the outcome is a finding: a verification
// failure that is not an expected consequence of scenario-injected loss.
// The fuzzer reports and shrinks Reportable outcomes.
func (o Outcome) Reportable() bool { return o.Failed() && o.Class != ClassLossLiveness }

// Classify maps a runner error to a failure class by its message shape.
// The mapping is on stable prefixes of the repository's own error
// vocabulary; anything unrecognised is an invariant-class finding (an
// error nobody taught the hunter about is still a failure).
func Classify(err error) string {
	if err == nil {
		return ""
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "check: termination violated"):
		return ClassTermination
	case strings.Contains(msg, "check: agreement violated"):
		return ClassAgreement
	case strings.Contains(msg, "check: validity violated"):
		return ClassValidity
	case strings.Contains(msg, "check: round agreement violated"):
		return ClassRoundAgreement
	case strings.Contains(msg, "changed its decision"),
		strings.Contains(msg, "lost its decision"),
		strings.Contains(msg, "decided ⊥"):
		return ClassDecisionMonitor
	case strings.HasPrefix(msg, "fd:"),
		strings.Contains(msg, " liveness:"),
		strings.Contains(msg, " safety:"),
		strings.Contains(msg, " election:"):
		// The detector checkers speak in class properties ("◇HP̄
		// liveness: …", "HΩ election: …", "Σ safety: …").
		return ClassDetector
	case strings.Contains(msg, "heard no beats"):
		return ClassLiveness
	case strings.Contains(msg, "disagrees with ground truth"):
		return ClassTruthDrift
	case strings.Contains(msg, "truncated by the MaxEvents guard"):
		return ClassGuard
	case strings.Contains(msg, "internal invariant"):
		return ClassInvariant
	case strings.HasPrefix(msg, "hds:") || strings.HasPrefix(msg, "hunt:") || strings.HasPrefix(msg, "cliutil:"):
		return ClassConfig
	default:
		return ClassInvariant
	}
}

func failOutcome(err error, stats trace.Stats, stop string) Outcome {
	class := Classify(err)
	return Outcome{
		Class:   class,
		Err:     err.Error(),
		Verdict: fmt.Sprintf("FAIL class=%s err=%q", class, err.Error()),
		Stop:    stop,
		Stats:   stats,
	}
}

func configOutcome(err error) Outcome {
	return Outcome{
		Class:   ClassConfig,
		Err:     err.Error(),
		Verdict: fmt.Sprintf("FAIL class=%s err=%q", ClassConfig, err.Error()),
	}
}

func consensusOutcome(rep hds.Report, stats hds.Stats, err error) Outcome {
	if err != nil {
		return failOutcome(err, stats, "")
	}
	return Outcome{
		OK:    true,
		Round: rep.MaxRound,
		Stats: stats,
		Verdict: fmt.Sprintf("PASS rounds=%d deciders=%d span=%d..%d value=%q bcast=%d deliv=%d drop=%d",
			rep.MaxRound, rep.Deciders, rep.FirstDecision, rep.LastDecision, rep.Value,
			stats.Broadcasts, stats.Delivered, stats.Dropped),
	}
}

func churnConsensusOutcome(res hds.ChurnConsensusResult, err error) Outcome {
	stop := res.Stopped.String()
	if err != nil {
		return failOutcome(err, res.Stats, stop)
	}
	return Outcome{
		OK:    true,
		Round: res.Report.MaxRound,
		Stop:  stop,
		Stats: res.Stats,
		Verdict: fmt.Sprintf("PASS rounds=%d deciders=%d span=%d..%d value=%q up=%d rec=%d stop=%s bcast=%d deliv=%d drop=%d",
			res.Report.MaxRound, res.Report.Deciders, res.Report.FirstDecision, res.Report.LastDecision,
			res.Report.Value, res.EventuallyUp, res.Recoveries, stop,
			res.Stats.Broadcasts, res.Stats.Delivered, res.Stats.Dropped),
	}
}

func ohpOutcome(res hds.OHPResult, err error) Outcome {
	if err != nil {
		return failOutcome(err, res.Stats, "")
	}
	return Outcome{
		OK:    true,
		Stats: res.Stats,
		Verdict: fmt.Sprintf("PASS trusted=%d leader=%d bcast=%d deliv=%d drop=%d",
			res.TrustedStabilization, res.LeaderStabilization,
			res.Stats.Broadcasts, res.Stats.Delivered, res.Stats.Dropped),
	}
}

func churnOHPOutcome(res hds.ChurnOHPResult, err error) Outcome {
	stop := res.Stopped.String()
	if err != nil {
		return failOutcome(err, res.Stats, stop)
	}
	return Outcome{
		OK:    true,
		Stop:  stop,
		Stats: res.Stats,
		Verdict: fmt.Sprintf("PASS trusted=%d leader=%d up=%d rec=%d stop=%s bcast=%d deliv=%d drop=%d",
			res.TrustedRestab, res.LeaderRestab, res.EventuallyUp, res.Recoveries, stop,
			res.Stats.Broadcasts, res.Stats.Delivered, res.Stats.Dropped),
	}
}

func heartbeatOutcome(res hds.HeartbeatResult, err error) Outcome {
	stop := res.Stopped.String()
	if err != nil {
		return failOutcome(err, res.Stats, stop)
	}
	return Outcome{
		OK:    true,
		Stop:  stop,
		Stats: res.Stats,
		Verdict: fmt.Sprintf("PASS up=%d rec=%d proc=%d stop=%s deliv=%d drop=%d",
			res.EventuallyUp, res.Recoveries, res.Processed, stop,
			res.Stats.Delivered, res.Stats.Dropped),
	}
}
