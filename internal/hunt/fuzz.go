package hunt

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/sweep"
)

// FuzzConfig parameterizes one campaign. The triple (Seeds, MasterSeed,
// Budget) fully determines the campaign's log and findings — Workers (via
// sweep.SetDefaultWorkers) changes only wall-clock time.
type FuzzConfig struct {
	// Seeds is the initial corpus; nil means StructuredSeeds().
	Seeds []Scenario
	// MasterSeed drives every mutation draw.
	MasterSeed int64
	// Budget caps scenario executions in the exploration loop (shrink
	// runs are accounted separately in FuzzResult.Executed). Minimum one
	// generation.
	Budget int
	// BatchSize is the per-generation mutant count (default 16).
	BatchSize int
	// Log receives the campaign's progress lines; nil discards them.
	Log io.Writer
}

// Finding is one verification failure, as found and as shrunk.
type Finding struct {
	Scenario Scenario `json:"scenario"`
	Outcome  string   `json:"outcome"`
	Class    string   `json:"class"`
	Minimal  Scenario `json:"minimal"`
	// MinimalOutcome is the minimal scenario's full verdict line — the
	// Want a corpus entry pins.
	MinimalOutcome string `json:"minimalOutcome"`
	ShrunkFrom     int    `json:"shrunkFrom"` // Size before shrinking
	ShrunkTo       int    `json:"shrunkTo"`   // Size after
}

// FuzzResult summarizes a campaign.
type FuzzResult struct {
	Executed int // scenario runs, exploration plus shrinking
	Coverage int // distinct coverage keys observed
	Findings []Finding
}

// Fuzz runs one coverage-guided campaign: execute the seed corpus, then
// mutate coverage-novel members generation by generation until the budget
// is spent, shrinking every failure as it is found. Batches are assembled
// sequentially (all randomness drawn on the coordinator) and executed
// through sweep.Map, so the log and findings are byte-identical for a
// given (Seeds, MasterSeed, Budget) at any worker parallelism.
//
// Findings are deduplicated by (kind, class): the first scenario to
// witness a failure signature is shrunk and kept, later witnesses only
// count toward coverage. A campaign on a healthy tree therefore reports
// zero findings, cheaply.
func Fuzz(cfg FuzzConfig) FuzzResult {
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	seeds := cfg.Seeds
	if seeds == nil {
		seeds = StructuredSeeds()
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 16
	}
	rng := rand.New(rand.NewSource(cfg.MasterSeed))

	var res FuzzResult
	coverage := map[string]bool{}
	foundClasses := map[string]bool{}
	var corpus []Scenario // coverage-novel scenarios, mutation sources

	fmt.Fprintf(logw, "hunt: seeds=%d budget=%d batch=%d master=%d\n", len(seeds), cfg.Budget, batch, cfg.MasterSeed)

	// ingest folds one ordered slice of (scenario, outcome) pairs into
	// coverage, corpus, and findings — the only place campaign state
	// changes, always from input-ordered results.
	ingest := func(scs []Scenario, outs []Outcome) {
		for i, o := range outs {
			sc := scs[i]
			key := CoverageKey(sc.Kind, o)
			if !coverage[key] {
				coverage[key] = true
				corpus = append(corpus, sc)
				fmt.Fprintf(logw, "  cov[%d] %s\n", len(coverage), key)
			}
			if !o.Reportable() {
				continue
			}
			sig := sc.Kind + "/" + o.Class
			if foundClasses[sig] {
				continue
			}
			foundClasses[sig] = true
			fmt.Fprintf(logw, "  FIND class=%s %s\n", o.Class, sc.Fingerprint())
			fmt.Fprintf(logw, "        %s\n", o.Verdict)
			min, minOut := Shrink(sc, func(c Scenario) Outcome {
				res.Executed++
				return c.Run()
			})
			fmt.Fprintf(logw, "  SHRUNK class=%s size=%d->%d %s\n", o.Class, sc.Size(), min.Size(), min.Fingerprint())
			res.Findings = append(res.Findings, Finding{
				Scenario:       sc,
				Outcome:        o.Verdict,
				Class:          o.Class,
				Minimal:        min,
				MinimalOutcome: minOut.Verdict,
				ShrunkFrom:     sc.Size(),
				ShrunkTo:       min.Size(),
			})
		}
	}

	runBatch := func(scs []Scenario) []Outcome {
		res.Executed += len(scs)
		return sweep.Map(scs, func(_ int, sc Scenario) Outcome { return sc.Run() })
	}

	// Generation 0: the structured seeds, before any random exploration.
	ingest(seeds, runBatch(seeds))

	gen := 0
	for explored := len(seeds); explored < cfg.Budget; explored += batch {
		gen++
		mutants := make([]Scenario, 0, batch)
		for len(mutants) < batch {
			parent := corpus[rng.Intn(len(corpus))]
			mutants = append(mutants, Mutate(parent, rng))
		}
		ingest(mutants, runBatch(mutants))
		fmt.Fprintf(logw, "gen %d: corpus=%d coverage=%d findings=%d\n", gen, len(corpus), len(coverage), len(res.Findings))
	}

	res.Coverage = len(coverage)
	sort.SliceStable(res.Findings, func(i, j int) bool { return res.Findings[i].Class < res.Findings[j].Class })
	fmt.Fprintf(logw, "done: executed=%d coverage=%d findings=%d\n", res.Executed, res.Coverage, len(res.Findings))
	return res
}
