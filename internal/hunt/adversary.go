package hunt

import "repro/internal/sim"

// StructuredSeeds are the explicit adversary's opening moves: scenarios
// aimed at the algorithms' structure rather than drawn blind. Balanced
// identity assignments are contiguous, so the leader group — the
// processes sharing the smallest identifier, which both figures' Leaders'
// Coordination Phase depends on — is exactly the first ceil(n/l) indexes.
// That makes it crashable (crash entries over the prefix), churnable (a
// fraction covering the prefix), and partitionable (a cut at the group
// boundary) with three integers each.
//
// Every seed passes through Sanitize, so the list stays admissible even
// as the runners' validation tightens. Seeds come first in the fuzzer's
// corpus: they are executed before any random mutant, so a structural
// regression (like the PR-5 leader-group wedge) is found inside the first
// generation of any campaign.
func StructuredSeeds() []Scenario {
	var out []Scenario

	// The calm baselines, one per kind: coverage anchors that also catch
	// "breaks with no faults at all" regressions.
	for _, kind := range Kinds {
		out = append(out, Scenario{Kind: kind, N: 6, L: 3, T: 2, Seed: 1})
	}

	// The PR-5 wedge class: churn the whole leader group with staggered
	// recovery, so a jumping leader must re-emit the coordination messages
	// of the round it lands in or the everyone-quorums wedge. The exact
	// E20 row that exposed it (fig9, Balanced(6,3), 34% churn, seed 4).
	out = append(out,
		Scenario{
			Kind: "fig9", N: 6, L: 3, Seed: 4,
			Churn: sim.ChurnSpec{Fraction: 0.34, Cycles: 1, Start: 2, Down: 60, Stagger: 7},
		},
		Scenario{
			Kind: "fig8", N: 6, L: 3, T: 2, Seed: 4,
			Churn: sim.ChurnSpec{Fraction: 0.34, Cycles: 1, Start: 2, Down: 60, Stagger: 7},
		},
	)

	// Strand a rejoiner mid-round under stable labels: crash the leader
	// inside round one's phase traffic (Start=1 lands between its COORD
	// broadcast and the phase-1 quorum), with the oracle pinned early
	// (Stabilize=1, no adversary) so no label change ever nudges the
	// sub-round forward. Recovery then depends entirely on the resync
	// path — the narrowest reproduction of the PR-5 wedge class.
	out = append(out, Scenario{
		Kind: "fig9", N: 6, L: 3, Seed: 1, Adversary: "none", Stabilize: 1,
		Churn: sim.ChurnSpec{Fraction: 0.17, Cycles: 1, Start: 1, Down: 60},
	})

	// Crash the current leader group: crash-stop the full smallest-ID
	// prefix early, forcing the leadership to jump groups while the first
	// rounds are in flight.
	for _, kind := range []string{"fig8", "fig9"} {
		n, l := 7, 3
		group := (n + l - 1) / l // ceil(n/l): the leader group's extent
		s := Scenario{Kind: kind, N: n, L: l, T: group, Seed: 1}
		for p := 0; p < group; p++ {
			s.Crashes = append(s.Crashes, CrashEntry{P: sim.PID(p), At: sim.Time(10 + 5*p)})
		}
		out = append(out, s)
	}

	// Crash the forming HΣ quorum: take down just under half the
	// population while the first quorums assemble, with the split
	// adversary feeding different leaders to different processes.
	out = append(out, Scenario{
		Kind: "fig9", N: 8, L: 4, Seed: 1, Adversary: "split",
		Crashes: []CrashEntry{{P: 1, At: 8}, {P: 3, At: 12}, {P: 5, At: 16}},
	})

	// Partition the coordinator at phase boundaries: sever the leader
	// group from the rest across the first rounds' phase transitions,
	// healing before the horizon so termination stays owed.
	for _, kind := range []string{"fig8", "fig9", "fig9-anon"} {
		n, l := 6, 3
		cut := sim.PID((n + l - 1) / l)
		out = append(out, Scenario{
			Kind: kind, N: n, L: l, T: 2, Seed: 1,
			Partitions: []sim.PartitionWindow{
				{From: 5, To: 30, Cut: cut},
				{From: 45, To: 70, Cut: cut},
			},
		})
	}

	// Leader group under loss: the coordination phase on fair-lossy links.
	out = append(out, Scenario{Kind: "fig9", N: 6, L: 2, Seed: 1, Net: "lossy:0.4:6"})

	// Detector and heartbeat churn stressors: rejoin depth and fault
	// bookkeeping under repeated staggered cycles.
	out = append(out,
		Scenario{
			Kind: "ohp", N: 6, L: 3, Seed: 1,
			Churn: sim.ChurnSpec{Fraction: 0.5, Cycles: 2, Stagger: 9},
		},
		Scenario{
			Kind: "heartbeat", N: 8, L: 4, Seed: 1,
			Churn: sim.ChurnSpec{Fraction: 0.5, Cycles: 2, Stagger: 5},
		},
	)

	for i := range out {
		out[i] = Sanitize(out[i])
	}
	return out
}
