package hunt

import "repro/internal/sim"

// Shrink delta-debugs a failing scenario to a local minimum: a scenario
// that still fails with the same class but where no single candidate
// reduction preserves the failure. The oracle runs candidates (injectable
// so tests can count executions or fake outcomes; the fuzzer passes
// Scenario.Run).
//
// The algorithm is greedy to a fixed point over a deterministic candidate
// order. Soundness leans on two facts, both test-pinned:
//
//   - every accepted candidate is strictly smaller under Scenario.Size,
//     so the loop terminates and the result never grows;
//   - a candidate is accepted only if its outcome fails with the same
//     class as the original, so the minimal scenario witnesses the same
//     failure signature the fuzzer found.
//
// Determinism is free: candidates are generated in a fixed order from the
// current scenario, the oracle is a pure function, and ties cannot occur
// (the first acceptable candidate restarts the scan). The same failing
// input always shrinks to the same minimal scenario.
func Shrink(s Scenario, oracle func(Scenario) Outcome) (Scenario, Outcome) {
	cur := s.Clone()
	curOut := oracle(cur)
	if !curOut.Failed() {
		return cur, curOut
	}
	class := curOut.Class
	for {
		improved := false
		for _, cand := range candidates(cur) {
			if cand.Size() >= cur.Size() {
				continue // the reduction was a no-op on this scenario
			}
			if o := oracle(cand); o.Failed() && o.Class == class {
				cur, curOut = cand, o
				improved = true
				break // restart the scan from the smaller scenario
			}
		}
		if !improved {
			return cur, curOut
		}
	}
}

// candidates enumerates the single-step reductions of s, in the order the
// shrinker tries them: structural deletions first (they shrink Size the
// most), then knob resets, then magnitude reductions. Every candidate is
// sanitized, so a reduction that breaks admissibility is repaired rather
// than run invalid — and if repair makes it no smaller, Shrink skips it.
func candidates(s Scenario) []Scenario {
	var out []Scenario
	add := func(c Scenario) { out = append(out, Sanitize(c)) }

	// Drop one crash entry.
	for i := range s.Crashes {
		c := s.Clone()
		c.Crashes = append(c.Crashes[:i], c.Crashes[i+1:]...)
		add(c)
	}
	// Drop one partition window.
	for i := range s.Partitions {
		c := s.Clone()
		c.Partitions = append(c.Partitions[:i], c.Partitions[i+1:]...)
		add(c)
	}
	// Disable churn outright, then soften it.
	if s.Churn.Fraction > 0 {
		c := s.Clone()
		c.Churn = sim.ChurnSpec{}
		add(c)
		if s.Churn.Cycles > 1 {
			c = s.Clone()
			c.Churn.Cycles = 1
			add(c)
		}
		if s.Churn.FinalDown {
			c = s.Clone()
			c.Churn.FinalDown = false
			add(c)
		}
		if s.Churn.Stagger > 0 {
			c = s.Clone()
			c.Churn.Stagger = 0
			add(c)
		}
		if s.Churn.Down > 20 {
			c = s.Clone()
			c.Churn.Down = 20
			add(c)
		}
		if s.Churn.Up > 30 {
			c = s.Clone()
			c.Churn.Up = 30
			add(c)
		}
	}
	// Fewer processes, fewer identifiers.
	if s.N > minN {
		c := s.Clone()
		c.N = s.N - 1
		add(c)
	}
	if s.L > 1 {
		c := s.Clone()
		c.L = s.L - 1
		add(c)
	}
	// Knob resets back to runner defaults.
	if s.Net != "" {
		c := s.Clone()
		c.Net = ""
		add(c)
	}
	if s.Adversary != "" && s.Adversary != "rotate" {
		c := s.Clone()
		c.Adversary = ""
		add(c)
	}
	if s.Stabilize != 0 {
		c := s.Clone()
		c.Stabilize = 0
		add(c)
	}
	if s.Horizon != 0 {
		c := s.Clone()
		c.Horizon = 0
		add(c)
	}
	if s.Period != 0 {
		c := s.Clone()
		c.Period = 0
		add(c)
	}
	return out
}
