package hunt

import (
	"fmt"
	"sort"
	"strings"

	hds "repro"
	"repro/internal/cliutil"
	"repro/internal/fd/oracle"
	"repro/internal/sim"
)

// Kinds a Scenario can run, in canonical order (mutators cycle through
// this list; keep it sorted the way the CLI documents the algorithms).
var Kinds = []string{"fig8", "fig9", "fig9-anon", "ohp", "heartbeat"}

// CrashEntry is one permanent crash-stop entry. Scenarios carry crashes
// as a PID-sorted slice, not a map, so their JSON form and fingerprint
// are canonical.
type CrashEntry struct {
	P  sim.PID  `json:"p"`
	At sim.Time `json:"at"`
}

// Scenario is one complete, runnable experiment configuration: everything
// the verdict depends on, and nothing else. It is the unit the fuzzer
// mutates, the shrinker reduces, and the corpus checks in — so every
// field is plain data with a canonical encoding.
type Scenario struct {
	Kind string `json:"kind"`
	N    int    `json:"n"`
	L    int    `json:"l"`
	// T is fig8's crash budget; ignored by the other kinds.
	T    int   `json:"t,omitempty"`
	Seed int64 `json:"seed"`
	// Horizon of 0 means the runner's default.
	Horizon sim.Time      `json:"horizon,omitempty"`
	Churn   sim.ChurnSpec `json:"churn,omitempty"`
	Crashes []CrashEntry  `json:"crashes,omitempty"`
	// Net is a cliutil.ParseNet spec; "" means the runner's default.
	Net        string                `json:"net,omitempty"`
	Partitions []sim.PartitionWindow `json:"partitions,omitempty"`
	// Adversary is none, rotate, or split ("" = rotate, the CLI default).
	Adversary string   `json:"adversary,omitempty"`
	Stabilize sim.Time `json:"stabilize,omitempty"`
	// MaxEvents overrides the engine's runaway guard where the runner
	// supports it (churn consensus, heartbeat). Mutators leave it 0: a
	// tight cap turns every scenario into a guard "failure".
	MaxEvents int `json:"maxEvents,omitempty"`
	// Period is the heartbeat beat interval (heartbeat only; 0 = default).
	Period sim.Time `json:"period,omitempty"`
}

// Fingerprint is the scenario's canonical one-line form, used in campaign
// logs and coverage bookkeeping. Two scenarios with equal fingerprints run
// identically.
func (s Scenario) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kind=%s n=%d l=%d", s.Kind, s.N, s.L)
	if s.Kind == "fig8" {
		fmt.Fprintf(&b, " t=%d", s.T)
	}
	fmt.Fprintf(&b, " seed=%d", s.Seed)
	if s.Horizon != 0 {
		fmt.Fprintf(&b, " horizon=%d", s.Horizon)
	}
	if s.Churn.Fraction > 0 {
		fmt.Fprintf(&b, " churn=%.2f:%d:%d:%d:%d", s.Churn.Fraction, s.Churn.Cycles, s.Churn.Start, s.Churn.Down, s.Churn.Stagger)
		if s.Churn.FinalDown {
			b.WriteString(":final")
		}
	}
	for _, c := range s.Crashes {
		fmt.Fprintf(&b, " crash=%d@%d", c.P, c.At)
	}
	if s.Net != "" {
		fmt.Fprintf(&b, " net=%s", s.Net)
	}
	for _, w := range s.Partitions {
		fmt.Fprintf(&b, " part=%d-%d@%d", w.From, w.To, w.Cut)
	}
	if s.Adversary != "" && s.Adversary != "rotate" {
		fmt.Fprintf(&b, " adv=%s", s.Adversary)
	}
	if s.Stabilize != 0 {
		fmt.Fprintf(&b, " stab=%d", s.Stabilize)
	}
	if s.MaxEvents != 0 {
		fmt.Fprintf(&b, " maxev=%d", s.MaxEvents)
	}
	if s.Period != 0 {
		fmt.Fprintf(&b, " period=%d", s.Period)
	}
	return b.String()
}

// Size is the shrinker's metric. It is documented here because shrink
// soundness is stated against it: an accepted reduction must be strictly
// smaller under Size. Population dominates (fewer processes always beats
// anything else), then identifier count, then schedule entries, then
// churn cycles, then non-default knobs, then schedule magnitudes — so the
// greedy shrinker's fixed point is a scenario where no single candidate
// reduction preserves the failure.
func (s Scenario) Size() int {
	size := 1_000_000*s.N + 50_000*s.L
	size += 10_000 * (len(s.Crashes) + len(s.Partitions))
	if s.Churn.Fraction > 0 {
		cycles := s.Churn.Cycles
		if cycles <= 0 {
			cycles = 1
		}
		size += 1_000 * cycles
		size += int(s.Churn.Stagger + s.Churn.Down + s.Churn.Up)
		if s.Churn.FinalDown {
			size += 100
		}
	}
	for _, knob := range []bool{
		s.Net != "",
		s.Adversary != "" && s.Adversary != "rotate",
		s.Stabilize != 0,
		s.Horizon != 0,
		s.MaxEvents != 0,
		s.Period != 0,
	} {
		if knob {
			size += 100
		}
	}
	return size
}

// Clone deep-copies the scenario (the slices are the only shared state).
func (s Scenario) Clone() Scenario {
	c := s
	c.Crashes = append([]CrashEntry(nil), s.Crashes...)
	c.Partitions = append([]sim.PartitionWindow(nil), s.Partitions...)
	return c
}

// crashMap converts the canonical slice to the runners' map form.
func (s Scenario) crashMap() map[sim.PID]sim.Time {
	if len(s.Crashes) == 0 {
		return nil
	}
	m := make(map[sim.PID]sim.Time, len(s.Crashes))
	for _, c := range s.Crashes {
		m[c.P] = c.At
	}
	return m
}

// lastScheduleEvent returns the latest instant of the combined fault and
// partition schedule — the time by which every outage has healed and every
// window has closed.
func (s Scenario) lastScheduleEvent() sim.Time {
	var last sim.Time
	for _, ev := range s.Churn.Events(s.N) {
		if ev.At > last {
			last = ev.At
		}
	}
	for _, c := range s.Crashes {
		if c.At > last {
			last = c.At
		}
	}
	if e := sim.LastWindowEnd(s.Partitions); e > last {
		last = e
	}
	return last
}

// net builds the scenario's network model: the parsed -net spec (or nil
// for the runner's default) wrapped in the partition schedule when one is
// present. A nil return tells the runner to use its own default.
func (s Scenario) net() (sim.Model, error) {
	var base sim.Model
	if s.Net != "" {
		m, err := cliutil.ParseNet(s.Net)
		if err != nil {
			return nil, err
		}
		base = m
	}
	if len(s.Partitions) == 0 {
		return base, nil
	}
	if base == nil {
		base = sim.Async{MaxDelay: 8}
	}
	return sim.Partition{Base: base, Windows: s.Partitions}, nil
}

func (s Scenario) adversary() oracle.Adversary {
	switch s.Adversary {
	case "none":
		return oracle.AdversaryNone
	case "split":
		return oracle.AdversarySplit
	default:
		return oracle.AdversaryRotate
	}
}

// Validate rejects scenarios the runners would reject, with hunt-level
// messages; Run also surfaces runner errors as class "config", so
// Validate exists mainly for corpus hygiene and cmd/hunt -run.
func (s Scenario) Validate() error {
	kindOK := false
	for _, k := range Kinds {
		if s.Kind == k {
			kindOK = true
		}
	}
	if !kindOK {
		return fmt.Errorf("hunt: unknown kind %q (want one of %s)", s.Kind, strings.Join(Kinds, ", "))
	}
	if s.N < 1 {
		return fmt.Errorf("hunt: n=%d, want >= 1", s.N)
	}
	if s.L < 1 || s.L > s.N {
		return fmt.Errorf("hunt: l=%d outside [1, n=%d]", s.L, s.N)
	}
	if !sort.SliceIsSorted(s.Crashes, func(i, j int) bool { return s.Crashes[i].P < s.Crashes[j].P }) {
		return fmt.Errorf("hunt: crash entries not sorted by pid — the scenario has no canonical form")
	}
	for i := 1; i < len(s.Crashes); i++ {
		if s.Crashes[i].P == s.Crashes[i-1].P {
			return fmt.Errorf("hunt: duplicate crash entry for pid %d", s.Crashes[i].P)
		}
	}
	if _, err := s.net(); err != nil {
		return fmt.Errorf("hunt: %w", err)
	}
	if err := cliutil.ValidatePartitionN(s.Partitions, s.N); err != nil {
		return fmt.Errorf("hunt: %w", err)
	}
	if s.Horizon > 0 {
		if err := cliutil.ValidatePartitionHorizon(s.Partitions, s.Horizon); err != nil {
			return fmt.Errorf("hunt: %w", err)
		}
	}
	switch s.Adversary {
	case "", "none", "rotate", "split":
	default:
		return fmt.Errorf("hunt: unknown adversary %q", s.Adversary)
	}
	return nil
}

// lossCapable reports whether the scenario's network model can drop
// in-flight copies between live processes (beyond the drops every churn
// run has, to crashed recipients). persistent means the loss never stops
// (a Lossy wrap, or an Alternating model that never calms); transient
// means it heals (partition windows, pre-GST loss, calming bad windows).
// The distinction matters because the detectors tolerate transient loss
// (they re-broadcast forever) but nothing is promised under loss that
// never ends.
func (s Scenario) lossCapable() (persistent, transient bool) {
	if len(s.Partitions) > 0 {
		transient = true
	}
	m, err := s.net()
	if err != nil {
		return persistent, transient
	}
	for m != nil {
		switch v := m.(type) {
		case sim.Partition:
			if len(v.Windows) > 0 {
				transient = true
			}
			m = v.Base
		case sim.Lossy:
			if v.P > 0 {
				persistent = true
			}
			m = v.Base
		case sim.AsymmetricLinks:
			m = v.Base
		case sim.PartialSync:
			if v.PreLoss > 0 {
				transient = true
			}
			m = nil
		case sim.Alternating:
			if v.BadLoss > 0 {
				if v.CalmAfter > 0 {
					transient = true
				} else {
					persistent = true
				}
			}
			m = nil
		default:
			m = nil
		}
	}
	return persistent, transient
}

// Run executes the scenario through the repository's verified runners and
// classifies the result. It never panics on a malformed scenario: runner
// rejections come back as class "config" outcomes, which the fuzzer
// treats as dead mutants rather than findings.
//
// Liveness failures that the scenario's own loss model explains are
// downgraded to ClassLossLiveness (see that constant's comment): the
// consensus algorithms broadcast each phase message once and are only
// live over reliable links, and nothing stabilizes under loss that never
// ends. Safety failures always keep their class.
func (s Scenario) Run() Outcome {
	o := s.exec()
	persistent, transient := s.lossCapable()
	expected := false
	switch s.Kind {
	case "fig8", "fig9", "fig9-anon":
		// Any injected loss can swallow a once-only phase broadcast.
		expected = o.Class == ClassTermination && (persistent || transient)
	case "ohp":
		// The detector re-broadcasts forever, so it must survive loss
		// that heals; only never-ending loss excuses it.
		expected = o.Class == ClassDetector && persistent
	case "heartbeat":
		// Delivery liveness is judged over the whole run, so both kinds
		// of injected loss can starve a listener without a bug.
		expected = o.Class == ClassLiveness && (persistent || transient)
	}
	if expected {
		o.Class = ClassLossLiveness
		o.Verdict = fmt.Sprintf("FAIL class=%s err=%q", ClassLossLiveness, o.Err)
	}
	return o
}

func (s Scenario) exec() Outcome {
	net, err := s.net()
	if err != nil {
		return configOutcome(err)
	}
	ids := hds.BalancedIDs(s.N, s.L)
	switch s.Kind {
	case "fig8":
		if s.Churn.Fraction > 0 {
			res, err := hds.RunChurnFig8(hds.ChurnFig8Experiment{
				IDs: ids, T: s.T, Churn: s.Churn, Crashes: s.crashMap(), Net: net,
				Stabilize: s.Stabilize, Adversary: s.adversary(), Seed: s.Seed,
				Horizon: s.Horizon, MaxEvents: s.MaxEvents,
			})
			return churnConsensusOutcome(res, err)
		}
		rep, stats, err := hds.RunFig8(hds.Fig8Experiment{
			IDs: ids, T: s.T, Crashes: s.crashMap(), Net: net,
			Stabilize: s.Stabilize, Adversary: s.adversary(), Seed: s.Seed, Horizon: s.Horizon,
		})
		return consensusOutcome(rep, stats, err)
	case "fig9", "fig9-anon":
		anon := s.Kind == "fig9-anon"
		if s.Churn.Fraction > 0 {
			res, err := hds.RunChurnFig9(hds.ChurnFig9Experiment{
				IDs: ids, Churn: s.Churn, Crashes: s.crashMap(), Net: net,
				AnonymousBaseline: anon, Stabilize: s.Stabilize, Adversary: s.adversary(),
				Seed: s.Seed, Horizon: s.Horizon, MaxEvents: s.MaxEvents,
			})
			return churnConsensusOutcome(res, err)
		}
		rep, stats, err := hds.RunFig9(hds.Fig9Experiment{
			IDs: ids, Crashes: s.crashMap(), Net: net,
			AnonymousBaseline: anon, Stabilize: s.Stabilize, Adversary: s.adversary(),
			Seed: s.Seed, Horizon: s.Horizon,
		})
		return consensusOutcome(rep, stats, err)
	case "ohp":
		if s.Churn.Fraction > 0 {
			res, err := hds.RunChurnOHP(hds.ChurnOHPExperiment{
				IDs: ids, Churn: s.Churn, Net: net, Seed: s.Seed,
				Horizon: s.Horizon, MaxEvents: s.MaxEvents,
			})
			return churnOHPOutcome(res, err)
		}
		exp := hds.OHPExperiment{IDs: ids, Crashes: s.crashMap(), Delta: 3, Seed: s.Seed, Horizon: s.Horizon}
		if net != nil {
			exp.Net = net
		}
		res, err := hds.RunOHP(exp)
		return ohpOutcome(res, err)
	case "heartbeat":
		res, err := hds.RunHeartbeatChurn(hds.HeartbeatExperiment{
			IDs: ids, Churn: s.Churn, Net: net, Period: s.Period, Seed: s.Seed,
			Horizon: s.Horizon, MaxEvents: s.MaxEvents, StreamVerify: true,
		})
		return heartbeatOutcome(res, err)
	default:
		return configOutcome(fmt.Errorf("hunt: unknown kind %q", s.Kind))
	}
}
