package hunt

import (
	"fmt"
	"strings"
)

// CoverageKey buckets an outcome into a behavioural signature. The fuzzer
// keeps one corpus member per key, so the key's granularity is the
// exploration pressure: coarse enough that noise (exact delivery counts)
// collapses, fine enough that a new failure class, a deeper round, a new
// stop reason, or an order-of-magnitude shift in traffic all register as
// novel.
func CoverageKey(kind string, o Outcome) string {
	verdict := "PASS"
	if !o.OK {
		verdict = o.Class
	}
	var b strings.Builder
	fmt.Fprintf(&b, "k=%s v=%s stop=%s r=%d", kind, verdict, o.Stop, o.Round)
	fmt.Fprintf(&b, " b=%d d=%d x=%d c=%d rc=%d dec=%d",
		logBucket(o.Stats.Broadcasts), logBucket(o.Stats.Delivered), logBucket(o.Stats.Dropped),
		logBucket(o.Stats.Crashes), logBucket(o.Stats.Recoveries), logBucket(o.Stats.Decisions))
	return b.String()
}

// logBucket maps a count to its order of magnitude (base 2): 0→0, 1→1,
// 2-3→2, 4-7→3, … so counts differing by less than 2× share a bucket.
func logBucket(n int) int {
	if n <= 0 {
		return 0
	}
	b := 1
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}
