package hunt

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// TestCorpusReplay replays every checked-in regression scenario and
// demands its pinned verdict byte-for-byte. A drift here means either a
// regression (a PASS entry now fails) or a silent behaviour change (the
// verdict's statistics moved) — both need a human decision, recorded by
// re-pinning with `go run ./cmd/hunt -pin`.
func TestCorpusReplay(t *testing.T) {
	dir := filepath.Join("testdata", "corpus")
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("corpus has %d entries, want at least 5", len(files))
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			e, err := DecodeEntry(data)
			if err != nil {
				t.Fatal(err)
			}
			if err := Replay(e); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestCorpusCoversWedgeClass pins the corpus's reason to exist: the
// PR-5 leader-group wedge class (a fig9 rejoiner stranded by churn that
// takes out leader-identity holders) must stay represented by replayed
// entries.
func TestCorpusCoversWedgeClass(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "leader-wedge-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("found %d leader-wedge entries, want at least 2", len(files))
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		e, err := DecodeEntry(data)
		if err != nil {
			t.Fatal(err)
		}
		if e.Scenario.Kind != "fig9" || e.Scenario.Churn.Fraction <= 0 {
			t.Errorf("%s: wedge-class entries are fig9 churn scenarios, got kind=%q fraction=%v",
				f, e.Scenario.Kind, e.Scenario.Churn.Fraction)
		}
		if !strings.HasPrefix(e.Want, "PASS") {
			t.Errorf("%s: wedge-class entries pin the healthy-tree PASS, got %q", f, e.Want)
		}
	}
}

// failingScenario is a deterministic Failed (loss-liveness) scenario the
// shrinker tests reduce: a partitioned consensus run cannot terminate
// because the cores broadcast each phase message exactly once.
func failingScenario() Scenario {
	return Sanitize(Scenario{
		Kind: "fig9", N: 6, L: 3, Seed: 3, Net: "async:6",
		Crashes: []CrashEntry{{P: 5, At: 50}},
		Partitions: []sim.PartitionWindow{
			{From: 5, To: 30, Cut: 2},
			{From: 45, To: 70, Cut: 2},
		},
	})
}

func TestShrinkSoundness(t *testing.T) {
	s := failingScenario()
	orig := s.Run()
	if !orig.Failed() {
		t.Fatalf("fixture must fail, got %s", orig.Verdict)
	}

	oracle := func(c Scenario) Outcome { return c.Run() }
	min, minOut := Shrink(s, oracle)

	// Strictly smaller under the documented Size metric (the fixture has
	// droppable structure, so the shrinker must make progress).
	if min.Size() >= s.Size() {
		t.Errorf("shrink made no progress: %d -> %d", s.Size(), min.Size())
	}
	// The failure signature is preserved.
	if !minOut.Failed() {
		t.Fatalf("minimal scenario does not fail: %s", minOut.Verdict)
	}
	if minOut.Class != orig.Class {
		t.Errorf("shrink changed failure class %q -> %q", orig.Class, minOut.Class)
	}
	// The minimal scenario is still admissible and a fixed point of
	// Sanitize.
	if err := min.Validate(); err != nil {
		t.Errorf("minimal scenario invalid: %v", err)
	}
	if got := Sanitize(min); !reflect.DeepEqual(got, min) {
		t.Errorf("minimal scenario not Sanitize-stable:\n got %+v\nwant %+v", got, min)
	}

	// Differential determinism: shrinking the same scenario again yields
	// the identical minimal form and verdict.
	min2, minOut2 := Shrink(s, oracle)
	if !reflect.DeepEqual(min, min2) {
		t.Errorf("shrink not deterministic:\n first %+v\nsecond %+v", min, min2)
	}
	if minOut.Verdict != minOut2.Verdict {
		t.Errorf("shrink verdict not deterministic: %q vs %q", minOut.Verdict, minOut2.Verdict)
	}
}

func TestShrinkRequiresFailure(t *testing.T) {
	s := Sanitize(Scenario{Kind: "fig9", N: 6, L: 3, Seed: 1})
	min, out := Shrink(s, func(c Scenario) Outcome { return c.Run() })
	if !out.OK {
		t.Fatalf("healthy scenario failed: %s", out.Verdict)
	}
	if !reflect.DeepEqual(min, s) {
		t.Errorf("shrink of a passing scenario must be the identity, got %+v", min)
	}
}

// TestFuzzDeterministic pins the campaign determinism contract: the log
// (and therefore the findings) is byte-identical for a fixed (Seeds,
// MasterSeed, Budget) at any worker parallelism.
func TestFuzzDeterministic(t *testing.T) {
	seeds := []Scenario{
		Sanitize(Scenario{Kind: "fig9", N: 5, L: 2, Seed: 1}),
		Sanitize(Scenario{Kind: "ohp", N: 4, L: 2, Seed: 2}),
	}
	campaign := func(workers int) (string, FuzzResult) {
		sweep.SetDefaultWorkers(workers)
		defer sweep.SetDefaultWorkers(0)
		var buf bytes.Buffer
		res := Fuzz(FuzzConfig{Seeds: seeds, MasterSeed: 11, Budget: 24, BatchSize: 8, Log: &buf})
		return buf.String(), res
	}

	log1, res1 := campaign(1)
	log2, res2 := campaign(1)
	if log1 != log2 {
		t.Errorf("same-config campaigns diverged:\n--- first\n%s--- second\n%s", log1, log2)
	}
	logPar, resPar := campaign(8)
	if log1 != logPar {
		t.Errorf("serial and parallel campaigns diverged:\n--- serial\n%s--- parallel\n%s", log1, logPar)
	}
	if res1.Executed != res2.Executed || res1.Executed != resPar.Executed ||
		res1.Coverage != resPar.Coverage || len(res1.Findings) != len(resPar.Findings) {
		t.Errorf("campaign results diverged: %+v vs %+v vs %+v", res1, res2, resPar)
	}
}

// TestFuzzHealthyTreeFindsNothing runs a small campaign over the
// structured seeds: on a healthy tree every seed passes (or downgrades to
// loss-liveness) and the fuzzer reports zero findings.
func TestFuzzHealthyTreeFindsNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign fixture is slow")
	}
	var buf bytes.Buffer
	res := Fuzz(FuzzConfig{MasterSeed: 1, Budget: len(StructuredSeeds()), Log: &buf})
	if len(res.Findings) != 0 {
		t.Errorf("healthy tree produced findings:\n%s", buf.String())
	}
}

// TestMutateStaysAdmissible drives the mutator hard and checks every
// mutant validates, is Sanitize-stable, and that the stream is a pure
// function of the rng seed.
func TestMutateStaysAdmissible(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := Sanitize(Scenario{Kind: "fig9", N: 6, L: 3, Seed: 1})
	for i := 0; i < 500; i++ {
		s = Mutate(s, r)
		if err := s.Validate(); err != nil {
			t.Fatalf("mutant %d invalid: %v\n%+v", i, err, s)
		}
		if got := Sanitize(s); !reflect.DeepEqual(got, s) {
			t.Fatalf("mutant %d not Sanitize-stable:\n got %+v\nwant %+v", i, got, s)
		}
	}

	// Same seed, same stream.
	ra, rb := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	sa := Sanitize(Scenario{Kind: "fig8", N: 7, L: 3, T: 2, Seed: 1})
	sb := sa.Clone()
	for i := 0; i < 100; i++ {
		sa, sb = Mutate(sa, ra), Mutate(sb, rb)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("mutation stream diverged at step %d", i)
		}
	}
}

func TestStructuredSeedsAdmissible(t *testing.T) {
	seeds := StructuredSeeds()
	if len(seeds) < 10 {
		t.Fatalf("got %d structured seeds, want at least 10", len(seeds))
	}
	kinds := map[string]bool{}
	for i, s := range seeds {
		if err := s.Validate(); err != nil {
			t.Errorf("seed %d invalid: %v", i, err)
		}
		if got := Sanitize(s); !reflect.DeepEqual(got, s) {
			t.Errorf("seed %d not Sanitize-stable:\n got %+v\nwant %+v", i, got, s)
		}
		kinds[s.Kind] = true
	}
	for _, k := range Kinds {
		if !kinds[k] {
			t.Errorf("no structured seed for kind %q", k)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		msg  string
		want string
	}{
		{"check: termination violated — eventually-up process 0 did not decide", ClassTermination},
		{"check: agreement violated — processes decided differently", ClassAgreement},
		{"check: validity violated — decided value was never proposed", ClassValidity},
		{"check: round agreement violated", ClassRoundAgreement},
		{"monitor: process 3 changed its decision", ClassDecisionMonitor},
		{"fd: HSigma intersection empty", ClassDetector},
		{"◇HP̄ liveness: process 0 trusts {g001}", ClassDetector},
		{"HΩ election: no common leader", ClassDetector},
		{"Σ safety: quorums do not intersect", ClassDetector},
		{"heartbeat: process 2 heard no beats from 4", ClassLiveness},
		{"detector output disagrees with ground truth", ClassTruthDrift},
		{"run truncated by the MaxEvents guard", ClassGuard},
		{"core: internal invariant broken", ClassInvariant},
		{"hds: population must be non-empty", ClassConfig},
		{"something nobody has seen before", ClassInvariant},
	}
	for _, c := range cases {
		if got := Classify(errString(c.msg)); got != c.want {
			t.Errorf("Classify(%q) = %q, want %q", c.msg, got, c.want)
		}
	}
	if got := Classify(nil); got != "" {
		t.Errorf("Classify(nil) = %q, want empty", got)
	}
}

type errString string

func (e errString) Error() string { return string(e) }

func TestOutcomeReportable(t *testing.T) {
	cases := []struct {
		o          Outcome
		failed     bool
		reportable bool
	}{
		{Outcome{OK: true}, false, false},
		{Outcome{Class: ClassTermination}, true, true},
		{Outcome{Class: ClassLossLiveness}, true, false},
		{Outcome{Class: ClassConfig}, false, false},
	}
	for _, c := range cases {
		if got := c.o.Failed(); got != c.failed {
			t.Errorf("Failed(%+v) = %v, want %v", c.o, got, c.failed)
		}
		if got := c.o.Reportable(); got != c.reportable {
			t.Errorf("Reportable(%+v) = %v, want %v", c.o, got, c.reportable)
		}
	}
}

// TestLossLivenessDowngrade pins the model-hypothesis boundary: injected
// loss excuses consensus termination (the cores broadcast once over
// links the paper assumes reliable) but must never excuse safety.
func TestLossLivenessDowngrade(t *testing.T) {
	part := Sanitize(Scenario{
		Kind: "fig9", N: 6, L: 3, Seed: 1,
		Partitions: []sim.PartitionWindow{{From: 5, To: 30, Cut: 2}, {From: 45, To: 70, Cut: 2}},
	})
	o := part.Run()
	if o.OK || o.Class != ClassLossLiveness {
		t.Errorf("partitioned fig9: got OK=%v class=%q, want loss-liveness failure\n%s", o.OK, o.Class, o.Verdict)
	}
	if o.Reportable() {
		t.Error("loss-liveness outcomes must not be reportable")
	}
	if !o.Failed() {
		t.Error("loss-liveness outcomes are still failures (the shrinker works on them)")
	}
}

// TestScenarioRunDeterministic: the verdict is a pure function of the
// scenario — two runs agree byte-for-byte, including statistics.
func TestScenarioRunDeterministic(t *testing.T) {
	scs := []Scenario{
		Sanitize(Scenario{Kind: "fig9", N: 6, L: 3, Seed: 4, Net: "async:8",
			Churn: sim.ChurnSpec{Fraction: 0.34, Cycles: 1, Start: 2, Down: 60, Stagger: 7}}),
		Sanitize(Scenario{Kind: "heartbeat", N: 8, L: 4, Seed: 1,
			Churn: sim.ChurnSpec{Fraction: 0.5, Cycles: 2, Stagger: 5}}),
	}
	for _, s := range scs {
		a, b := s.Run(), s.Run()
		if a.Verdict != b.Verdict {
			t.Errorf("%s: verdict drifted between runs:\n%s\n%s", s.Fingerprint(), a.Verdict, b.Verdict)
		}
	}
}

func TestEncodeDecodeEntryRoundTrip(t *testing.T) {
	e := Entry{
		Name:     "round-trip",
		Note:     "encode/decode fidelity",
		Scenario: failingScenario(),
		Want:     "FAIL class=loss-liveness err=\"x\"",
	}
	data, err := EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Errorf("round trip changed entry:\n in  %+v\n out %+v", e, got)
	}

	if _, err := DecodeEntry([]byte(`{"name":"","scenario":{"kind":"fig9","n":3,"l":1,"seed":1}}`)); err == nil {
		t.Error("DecodeEntry accepted an entry with no name")
	}
	if _, err := DecodeEntry([]byte(`{"name":"bad","scenario":{"kind":"nope","n":3,"l":1,"seed":1}}`)); err == nil {
		t.Error("DecodeEntry accepted an invalid scenario")
	}
}
