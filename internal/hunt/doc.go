// Package hunt is the coverage-guided scenario fuzzer: it mutates churn,
// crash, delay, partition, and adversary schedules toward novel checker-
// and trace-coverage signals, and delta-debugs every failure down to a
// minimal scenario fit for the checked-in regression corpus.
//
// The package rides the repository's determinism contract rather than
// adding machinery of its own: a Scenario is plain data, a run's verdict
// is a pure function of (Scenario), and the fuzzing campaign is a pure
// function of (seed corpus, master seed, budget). Concretely:
//
//   - Mutation draws come from one rand.Rand seeded with the campaign's
//     master seed, consumed sequentially while batches are *assembled* —
//     never inside workers — so the mutant stream is independent of
//     parallelism.
//   - Batches execute through sweep.Map, whose results arrive in input
//     order at any worker count; the campaign log is written only from
//     that ordered stream. Two campaigns with the same master seed and
//     budget therefore produce byte-identical find/shrink logs.
//   - The shrinker is greedy over a fixed candidate order with a strictly
//     decreasing size metric (Scenario.Size), so the same failing
//     scenario always reduces to the same minimal scenario.
//   - Nothing in this package reads the clock, the environment, or a
//     directory listing. Corpus entries are decoded from bytes; the
//     enumeration I/O lives in cmd/hunt and in _test.go files.
//
// Coverage is behavioural, not line-based: the key for a run combines the
// checker verdict class, the stop reason, the decision-round depth, and
// log-bucketed trace statistics (broadcasts, deliveries, drops, crashes,
// recoveries, decisions). A mutant earning a new key joins the live
// corpus; a mutant failing verification becomes a finding, is shrunk, and
// both forms are reported.
package hunt
