package analysis

import (
	"go/ast"
)

// sweepExempt reports whether pkgPath is internal/sweep (or a
// subpackage): the one audited home for goroutine spawns, and therefore
// also exempt from the spawn- and select-order taint sources detflow
// tracks.
func sweepExempt(pkgPath string) bool {
	return hasSegment(pkgPath, "sweep")
}

// Unsortedgo flags go statements in deterministic packages. Goroutine
// interleaving is scheduler-chosen, so any result that depends on it
// breaks byte-identical replay. The one audited exception is
// internal/sweep's worker pool, whose aggregation is proven
// order-independent (results slot by input index, serial-vs-parallel
// equality is pinned by tests), so the whole sweep package is exempt.
// Concurrency *tests* elsewhere (stress tests, race-detector fodder) are
// legitimate but must carry a //detlint:ignore with a reason, keeping
// every concurrent entry point in a deterministic package enumerable.
var Unsortedgo = &Analyzer{
	Name: "unsortedgo",
	Doc:  "flags go statements in deterministic packages outside internal/sweep's audited pool",
	Run: func(pass *Pass) error {
		if !IsDeterministic(pass.PkgPath) {
			return nil
		}
		if sweepExempt(pass.PkgPath) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(), "go statement in a deterministic package: scheduler interleaving breaks byte-identical replay; route parallelism through internal/sweep's audited pool")
				}
				return true
			})
		}
		return nil
	},
}
