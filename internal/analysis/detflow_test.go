package analysis_test

import (
	"go/token"
	"os"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atest"
)

func position(file string, line, col int) token.Position {
	return token.Position{Filename: file, Line: line, Column: col}
}

// TestDetflow checks the interprocedural frontier diagnostics against
// the laundering fixtures' want comments: a helper in the same
// deterministic package surfaces the taint at its own boundary call,
// a helper in an exempt package surfaces it at the deterministic-side
// call with the full chain, and both suppression shapes (leaf-level
// kill, call-site vetting) silence the respective findings.
func TestDetflow(t *testing.T) {
	atest.RunFlow(t, "testdata/src", "detflow/sim", "detflow/cliutil")
}

// TestDetflowReport goldens the certified-deterministic API report over
// the fixture tree and pins its byte stability: two independent loads
// and fixpoints must render identical bytes, and those bytes must match
// the checked-in golden.
func TestDetflowReport(t *testing.T) {
	first := atest.RunFlow(t, "testdata/src", "detflow/sim", "detflow/cliutil").Report()
	second := atest.RunFlow(t, "testdata/src", "detflow/sim", "detflow/cliutil").Report()
	if first != second {
		t.Fatalf("report is not byte-stable across runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	golden, err := os.ReadFile("testdata/detflow_report.golden")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if first != string(golden) {
		t.Errorf("report differs from testdata/detflow_report.golden:\n--- got ---\n%s", first)
	}
}

// TestDiagnosticsJSON pins the -json output shape and byte stability:
// the array is sorted, the field order is fixed, and the empty set
// renders as [] rather than null.
func TestDiagnosticsJSON(t *testing.T) {
	diags := []analysis.Diagnostic{
		{Analyzer: "wallclock", Pos: position("b.go", 9, 2), Message: "time.Now reads the wall clock"},
		{Analyzer: "maprange", Pos: position("a.go", 4, 7), Message: `range over map m <"quoted">`},
	}
	want := `[
  {
    "analyzer": "maprange",
    "file": "a.go",
    "line": 4,
    "col": 7,
    "message": "range over map m <\"quoted\">"
  },
  {
    "analyzer": "wallclock",
    "file": "b.go",
    "line": 9,
    "col": 2,
    "message": "time.Now reads the wall clock"
  }
]
`
	if got := string(analysis.DiagnosticsJSON(diags)); got != want {
		t.Errorf("DiagnosticsJSON:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if again := string(analysis.DiagnosticsJSON(diags)); again != string(analysis.DiagnosticsJSON(diags)) || again == "" {
		t.Errorf("DiagnosticsJSON is not byte-stable")
	}
	if got := string(analysis.DiagnosticsJSON(nil)); got != "[]\n" {
		t.Errorf("empty set renders %q, want %q", got, "[]\n")
	}
}
