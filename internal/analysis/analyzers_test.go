package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atest"
)

func TestMaprange(t *testing.T) {
	atest.Run(t, "testdata/src", analysis.Maprange, "maprange/sim", "maprange/cliutil")
}

func TestWallclock(t *testing.T) {
	atest.Run(t, "testdata/src", analysis.Wallclock, "wallclock/sim")
}

func TestGlobalrand(t *testing.T) {
	atest.Run(t, "testdata/src", analysis.Globalrand, "globalrand/sim")
}

func TestUnsortedgo(t *testing.T) {
	atest.Run(t, "testdata/src", analysis.Unsortedgo, "unsortedgo/sim", "unsortedgo/sweep")
}

func TestPtrformat(t *testing.T) {
	atest.Run(t, "testdata/src", analysis.Ptrformat, "ptrformat/sim")
}

func TestSelectorder(t *testing.T) {
	atest.Run(t, "testdata/src", analysis.Selectorder, "selectorder/sim", "selectorder/sweep")
}

func TestUnstablesort(t *testing.T) {
	atest.Run(t, "testdata/src", analysis.Unstablesort, "unstablesort/sim")
}

func TestOsenv(t *testing.T) {
	atest.Run(t, "testdata/src", analysis.Osenv, "osenv/sim")
}

func TestIsDeterministic(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro", true}, // the hds runner layer feeds engine seq order
		{"repro/internal/sim", true},
		{"repro/internal/fd/ohp", true}, // subpackages inherit fd's contract
		{"repro/internal/trace", true},
		{"repro/internal/multiset", true},
		{"repro/internal/cliutil", false},
		{"repro/internal/ident", false},
		{"repro/internal/hruntime", false},
		{"repro/cmd/experiments", false}, // CLI drivers are not contract-bound
		{"repro/cmd/trace", false},       // "trace" right after "cmd" is a driver
		{"repro/internal/analysis", false},
	}
	for _, c := range cases {
		if got := analysis.IsDeterministic(c.path); got != c.want {
			t.Errorf("IsDeterministic(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
