package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// FlowName is the analyzer name under which detflow's interprocedural
// call-site diagnostics report and are suppressed. detflow is not a
// per-unit Analyzer — it needs every unit at once — but it shares the
// diagnostic and suppression protocol with the leaf analyzers.
const FlowName = "detflow"

// Flow is the whole-module interprocedural nondeterminism taint
// analysis. It builds a call graph over every loaded unit (static
// edges resolved through go/types; interface-method and func-value
// calls over-approximated by name+arity against deterministic-set
// candidates), seeds each function with its direct nondeterminism
// source instances — the same sources the leaf analyzers recognize,
// but detected in *every* module package, not just deterministic ones
// — and propagates instance sets to a fixpoint. The result answers,
// for any function, "which concrete wall-clock reads / global rand
// draws / unproven map ranges / goroutine spawns / multi-case selects
// / unstable sorts / ambient host reads / pointer-format leaks can
// execute on my behalf, and through which call chain?".
//
// The taint lattice is the powerset of source instances, ordered by
// inclusion; each instance carries the leaf analyzer name as its kind
// and is either live or vetted (suppressed). A //detlint:ignore on a
// source line vets that instance at the root, so it propagates as
// suppressed everywhere. A "//detlint:ignore detflow <reason>" on a
// call-site line vets the *edge*: live taint crossing it degrades to
// synthetic suppressed instances (keyed by call position and kind), so
// downstream summaries still record that vetted nondeterminism is
// reachable — the certified-API report shows "suppressed", not
// "clean" — without producing diagnostics.
type Flow struct {
	g     *flowGraph
	taint map[FuncKey]map[int]bool // function -> reaching instance ids
	synth map[synthKey]*srcInst
	dists map[int]map[FuncKey]int // instance -> live-reach distance per function
}

type synthKey struct {
	pos  token.Pos
	kind string
}

// NewFlow builds the call graph over units and runs the taint fixpoint.
// sups must hold the suppressions collected from every unit; root
// anchors relative paths in rendered chains and reports.
func NewFlow(fset *token.FileSet, units []*Unit, root string, sups []Suppression) *Flow {
	f := &Flow{
		g:     buildFlowGraph(fset, units, root, sups),
		taint: make(map[FuncKey]map[int]bool),
		synth: make(map[synthKey]*srcInst),
		dists: make(map[int]map[FuncKey]int),
	}
	f.fixpoint()
	return f
}

// fixpoint propagates source-instance sets from callees to callers
// until nothing changes. The worklist is seeded and drained in the
// graph's deterministic node order, so synthetic-instance creation
// order (and thus ids) is reproducible — not that ids are ever
// rendered, but determinism all the way down is cheaper than an
// argument about where it stops mattering.
func (f *Flow) fixpoint() {
	for _, fn := range f.g.order {
		set := make(map[int]bool, len(fn.sources))
		for _, id := range fn.sources {
			set[id] = true
		}
		f.taint[fn.key] = set
	}
	queue := append([]*flowFunc(nil), f.g.order...)
	queued := make(map[FuncKey]bool, len(queue))
	for _, fn := range queue {
		queued[fn.key] = true
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		queued[fn.key] = false
		for _, ref := range fn.callers {
			if f.propagate(ref, fn) && !queued[ref.fn.key] {
				queue = append(queue, ref.fn)
				queued[ref.fn.key] = true
			}
		}
	}
}

// propagate flows callee's instance set into ref's caller across one
// edge, reporting whether the caller's set grew. Across a vetted edge,
// live instances degrade to synthetic suppressed ones; already-vetted
// instances flow through unchanged.
func (f *Flow) propagate(ref callerRef, callee *flowFunc) bool {
	src := f.taint[callee.key]
	dst := f.taint[ref.fn.key]
	// Deterministic iteration: synthetic-instance creation must not
	// depend on map order.
	ids := make([]int, 0, len(src))
	for id := range src {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	changed := false
	for _, id := range ids {
		inst := f.g.insts[id]
		if ref.call.sup != nil && inst.sup == nil {
			inst = f.synthInst(ref.call)
		}
		if !dst[inst.id] {
			dst[inst.id] = true
			changed = true
		}
	}
	return changed
}

// synthInst returns the synthetic suppressed instance standing for all
// live taint of one kind vetted at a call edge, creating it on first
// use. One instance per (call position, kind) keeps report entries
// stable however many distinct sources the vetted callee reaches.
func (f *Flow) synthInst(call *flowCall) *srcInst {
	k := synthKey{call.pos, FlowName}
	if inst, ok := f.synth[k]; ok {
		return inst
	}
	inst := &srcInst{
		id:   len(f.g.insts),
		kind: FlowName,
		what: "nondeterministic callee vetted at call site",
		pos:  f.g.fset.Position(call.pos),
		sup:  call.sup,
	}
	f.g.insts = append(f.g.insts, inst)
	f.synth[k] = inst
	return inst
}

// liveIDs returns the sorted live (unsuppressed) instance ids reaching fn.
func (f *Flow) liveIDs(key FuncKey) []int {
	var ids []int
	for id := range f.taint[key] {
		if f.g.insts[id].sup == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// Diagnostics reports the taint frontier: every call site in a
// deterministic package whose callee is a module-local function
// *outside* the deterministic set with live taint. Reporting only at
// the boundary keeps one root cause from cascading into a diagnostic
// at every transitive caller — inside the deterministic set, a live
// source is the leaf analyzers' finding at its own site, and a
// deterministic callee's boundary calls are its own frontier
// diagnostics; what detflow adds is the laundering case, where the
// nondeterminism hides behind an exempt-package (or otherwise
// unchecked) helper and only the call chain explains the finding.
func (f *Flow) Diagnostics() []Diagnostic {
	var diags []Diagnostic
	for _, fn := range f.g.order {
		if !fn.det {
			continue
		}
		for i := range fn.calls {
			c := &fn.calls[i]
			if c.sup != nil || c.callee == nil || c.callee.det {
				continue
			}
			live := f.liveIDs(c.callee.key)
			if len(live) == 0 {
				continue
			}
			for _, id := range f.bestPerKind(c.callee, live) {
				inst := f.g.insts[id]
				chain := fn.display + " -> " + f.chainFrom(c.callee, inst)
				diags = append(diags, Diagnostic{
					Analyzer: FlowName,
					Pos:      f.g.fset.Position(c.pos),
					Message: fmt.Sprintf(
						"call to %s reaches %s nondeterminism: %s; make the callee deterministic, inject the dependency, or vet this call with \"//detlint:ignore detflow <reason>\"",
						c.callee.display, inst.kind, chain),
				})
			}
		}
	}
	SortDiagnostics(diags)
	return diags
}

// bestPerKind selects, for each taint kind reaching start, the witness
// instance with the shortest live call chain (position as tie-break),
// returning the ids sorted by kind.
func (f *Flow) bestPerKind(start *flowFunc, live []int) []int {
	best := map[string]int{}
	for _, id := range live {
		inst := f.g.insts[id]
		d, ok := f.distTo(start, inst)
		if !ok {
			continue // unreachable by live edges (set came via a cycle of vetting) — defensive
		}
		cur, seen := best[inst.kind]
		if !seen {
			best[inst.kind] = id
			continue
		}
		curInst := f.g.insts[cur]
		cd, _ := f.distTo(start, curInst)
		if d < cd || (d == cd && lessPos(inst.pos, curInst.pos)) {
			best[inst.kind] = id
		}
	}
	kinds := make([]string, 0, len(best))
	for k := range best {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	ids := make([]int, len(kinds))
	for i, k := range kinds {
		ids[i] = best[k]
	}
	return ids
}

func lessPos(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	return a.Line < b.Line
}

// distMap lazily computes, for one instance, the minimum number of
// live (unvetted) call edges from each function to the instance's
// owner — a reverse BFS from the owner over caller edges.
func (f *Flow) distMap(inst *srcInst) map[FuncKey]int {
	if d, ok := f.dists[inst.id]; ok {
		return d
	}
	d := map[FuncKey]int{}
	if inst.owner != nil {
		d[inst.owner.key] = 0
		queue := []*flowFunc{inst.owner}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, ref := range cur.callers {
				if ref.call.sup != nil {
					continue
				}
				if _, seen := d[ref.fn.key]; !seen {
					d[ref.fn.key] = d[cur.key] + 1
					queue = append(queue, ref.fn)
				}
			}
		}
	}
	f.dists[inst.id] = d
	return d
}

func (f *Flow) distTo(fn *flowFunc, inst *srcInst) (int, bool) {
	d, ok := f.distMap(inst)[fn.key]
	return d, ok
}

// chainFrom renders the shortest live call chain from start to inst's
// concrete source site: "cliutil.Chain -> cliutil.LeakyNow -> time.Now
// at internal/cliutil/clock.go:9". Ties pick the textually earliest
// call site, so the rendering is deterministic.
func (f *Flow) chainFrom(start *flowFunc, inst *srcInst) string {
	parts := []string{start.display}
	cur := start
	d, ok := f.distTo(cur, inst)
	for ok && d > 0 {
		var next *flowFunc
		var nextPos token.Pos
		for i := range cur.calls {
			c := &cur.calls[i]
			if c.sup != nil || c.callee == nil {
				continue
			}
			cd, cok := f.distTo(c.callee, inst)
			if !cok || cd != d-1 {
				continue
			}
			if next == nil || c.pos < nextPos {
				next, nextPos = c.callee, c.pos
			}
		}
		if next == nil {
			break // inconsistent distances — defensive
		}
		parts = append(parts, next.display)
		cur, d = next, d-1
	}
	return strings.Join(parts, " -> ") + " -> " + inst.what + " at " + f.g.rel(inst.pos)
}
