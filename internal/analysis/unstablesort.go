package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Unstablesort flags unstable sorts in deterministic packages whose
// comparison may tie. sort.Slice and sort.Sort are explicitly
// *unstable*: elements that compare equal land in an order inherited
// from the input permutation and the pdqsort pivot choices, so a sort
// keyed on a potentially-tying projection ("by .key") leaves the
// relative order of equal-keyed rows unspecified — exactly the kind of
// silent nondeterminism that reaches table and trace bytes. Three
// shapes are accepted without suppression:
//
//   - stable sorts: sort.SliceStable, sort.Stable, slices.SortStableFunc;
//   - whole-element comparisons (out[i] < out[j], cmp.Compare(a, b)):
//     tied elements are identical values, so their mutual order is
//     unobservable;
//   - tie-breaker chains: a less/cmp function that compares two or more
//     distinct keys (the analyzer checks key count, not chain logic —
//     a deliberately partial multi-key order still needs review).
//
// Everything else — single projected key, a named comparison function
// the analyzer cannot see into, sort.Sort's opaque Less — is flagged.
var Unstablesort = &Analyzer{
	Name: "unstablesort",
	Doc:  "flags sort.Slice/sort.Sort in deterministic packages whose comparison may tie without a tie-breaker",
	Run: func(pass *Pass) error {
		if !IsDeterministic(pass.PkgPath) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if msg, bad := unstableSortAt(pass.Info, call); bad && !pass.InTestFile(call.Pos()) {
					pass.Reportf(call.Pos(), "%s", msg)
				}
				return true
			})
		}
		return nil
	},
}

// unstableSortAt reports whether call is an unstable sort over a
// comparison that may tie, with a diagnostic message when it is. It is
// shared between the Unstablesort analyzer and detflow's taint-source
// scan.
func unstableSortAt(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	switch pkg, name := fn.Pkg().Path(), fn.Name(); {
	case pkg == "sort" && name == "Sort":
		return "sort.Sort is unstable and its Less implementation cannot be audited at the call site; tied elements land in nondeterministic order — use sort.Stable, or sort.SliceStable with a total order (determinism contract, ARCHITECTURE.md)", true
	case pkg == "sort" && name == "Slice":
		return auditLess(info, call, 1, false)
	case pkg == "slices" && name == "SortFunc":
		return auditLess(info, call, 1, true)
	}
	// sort.SliceStable/sort.Stable/slices.SortStableFunc are stable;
	// sort.Strings/Ints/Float64s and slices.Sort order by the whole
	// value, so ties are identical elements.
	return "", false
}

// auditLess audits the comparison function of sort.Slice (less(i, j)
// indexing the container) or slices.SortFunc (cmp(a, b) over elements,
// byElem true) for a provable total order.
func auditLess(info *types.Info, call *ast.CallExpr, lessArg int, byElem bool) (string, bool) {
	fname := "sort.Slice"
	stable := "sort.SliceStable"
	if byElem {
		fname, stable = "slices.SortFunc", "slices.SortStableFunc"
	}
	if len(call.Args) <= lessArg {
		return "", false
	}
	lit, ok := call.Args[lessArg].(*ast.FuncLit)
	if !ok {
		return fmt.Sprintf("%s with a non-literal comparison function: cannot audit it for potentially-tying keys — inline the comparison, use %s, or suppress with the proof", fname, stable), true
	}
	p1, p2 := lessParams(info, lit)
	if p1 == nil || p2 == nil {
		return "", false // malformed; the type checker already complained
	}
	keys := lessKeys(info, lit.Body, p1, p2)

	// The whole-element key: tied elements are identical values, so an
	// unstable sort cannot be observed.
	whole := "§"
	if !byElem {
		whole = normExpr(info, call.Args[0], p1, p2) + "[§]"
	}
	if keys[whole] {
		return "", false
	}
	switch len(keys) {
	case 0:
		return fmt.Sprintf("%s comparison has no recognizable mirrored key: cannot prove a total order, and ties land in nondeterministic order — use %s or restructure the comparison", fname, stable), true
	case 1:
		var k string
		for k = range keys {
			// single entry
		}
		return fmt.Sprintf("%s orders by the single potentially-tying key %s: equal keys land in nondeterministic order — use %s or add a tie-breaking key", fname, strings.ReplaceAll(k, "§", "·"), stable), true
	}
	return "", false // ≥2 distinct keys: a tie-breaker chain
}

// lessParams resolves the two parameter objects of a less/cmp literal.
func lessParams(info *types.Info, lit *ast.FuncLit) (types.Object, types.Object) {
	var objs []types.Object
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			objs = append(objs, info.Defs[name])
		}
	}
	if len(objs) != 2 {
		return nil, nil
	}
	return objs[0], objs[1]
}

// comparisonOps are the binary operators a less/cmp body uses to compare
// keys. SUB covers the "a.key - b.key" cmp idiom.
var comparisonOps = map[token.Token]bool{
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true, token.SUB: true,
}

// lessKeys collects the mirrored comparison keys of a less/cmp body: for
// every comparison (or two-argument call such as cmp.Compare or
// strings.Compare) whose operands are the same expression evaluated once
// against each sort parameter, the normalized operand — with the
// parameter replaced by § — names the key being compared.
func lessKeys(info *types.Info, body ast.Node, p1, p2 types.Object) map[string]bool {
	keys := map[string]bool{}
	add := func(x, y ast.Expr) {
		nx, ny := normExpr(info, x, p1, p2), normExpr(info, y, p1, p2)
		if nx != ny {
			return
		}
		mx1, mx2 := mentionsObj(info, x, p1), mentionsObj(info, x, p2)
		my1, my2 := mentionsObj(info, y, p1), mentionsObj(info, y, p2)
		// Each side reads exactly one of the two parameters, and the two
		// sides read different ones: a mirrored key access.
		if mx1 == mx2 || my1 == my2 || mx1 != my2 {
			return
		}
		keys[nx] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if comparisonOps[n.Op] {
				add(n.X, n.Y)
			}
		case *ast.CallExpr:
			if len(n.Args) == 2 {
				add(n.Args[0], n.Args[1])
			}
		}
		return true
	})
	return keys
}

// normExpr renders e with every use of p1 or p2 replaced by §, so the
// two sides of a mirrored comparison normalize to the same string.
// Expression forms outside the handled set fall back to
// types.ExprString, which preserves the parameter name — the two sides
// then normalize differently and simply contribute no key, keeping the
// analysis conservative.
func normExpr(info *types.Info, e ast.Expr, p1, p2 types.Object) string {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil && (obj == p1 || obj == p2) {
			return "§"
		}
		return e.Name
	case *ast.BasicLit:
		return e.Value
	case *ast.ParenExpr:
		return normExpr(info, e.X, p1, p2)
	case *ast.SelectorExpr:
		return normExpr(info, e.X, p1, p2) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return normExpr(info, e.X, p1, p2) + "[" + normExpr(info, e.Index, p1, p2) + "]"
	case *ast.StarExpr:
		return "*" + normExpr(info, e.X, p1, p2)
	case *ast.UnaryExpr:
		return e.Op.String() + normExpr(info, e.X, p1, p2)
	case *ast.BinaryExpr:
		return normExpr(info, e.X, p1, p2) + e.Op.String() + normExpr(info, e.Y, p1, p2)
	case *ast.CallExpr:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = normExpr(info, a, p1, p2)
		}
		return normExpr(info, e.Fun, p1, p2) + "(" + strings.Join(parts, ",") + ")"
	}
	return types.ExprString(e)
}

// mentionsObj reports whether e references obj.
func mentionsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
