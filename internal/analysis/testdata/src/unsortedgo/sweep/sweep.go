// Package sweep mirrors internal/sweep: the audited worker pool package
// is exempt from unsortedgo, so nothing here is flagged.
package sweep

func pool(work []func()) {
	for _, w := range work {
		go w()
	}
}
