// Package sim is an unsortedgo fixture: deterministic by path segment.
package sim

func fanOut(work []func()) {
	for _, w := range work {
		go w() // want `go statement in a deterministic package`
	}
}

func suppressed(w func()) {
	//detlint:ignore unsortedgo fixture demo: audited helper whose results are slot-indexed, not order-dependent
	go w()
}
