package sim

import (
	crand "crypto/rand" // want `crypto/rand is nondeterministic by design`
)

func entropy(buf []byte) {
	crand.Read(buf)
}
