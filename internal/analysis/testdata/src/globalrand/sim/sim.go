// Package sim is a globalrand fixture: deterministic by path segment.
package sim

import "math/rand"

func global() int {
	return rand.Intn(10) // want `rand.Intn draws from the process-global source`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle draws from the process-global source`
}

func injected(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors are the approved path: no diagnostic
	return r.Intn(10)
}

func suppressed() int {
	//detlint:ignore globalrand fixture demo: one-shot helper outside any replayed path
	return rand.Int()
}
