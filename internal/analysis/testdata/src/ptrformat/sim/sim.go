// Package sim is a ptrformat fixture: deterministic by path segment.
package sim

import "fmt"

type row struct{ a, b int }

func addr(r *row) string {
	return fmt.Sprintf("%p", r) // want `%p renders a virtual address`
}

func mapOperand(m map[string]int) string {
	return fmt.Sprintf("cells=%v", m) // want `map operand reaches fmt.Sprintf`
}

func chanOperand(c chan int) {
	fmt.Println(c) // want `chan operand reaches fmt.Println`
}

func bareIntPointer(n *int) error {
	return fmt.Errorf("at %v", n) // want `pointer operand reaches fmt.Errorf`
}

func structPointer(r *row) string {
	return fmt.Sprintf("%v", r) // pointers to structs render contents: no diagnostic
}

func suppressed(m map[string]int) string {
	//detlint:ignore ptrformat fixture demo: debug helper, output never reaches canonical bytes
	return fmt.Sprintf("%v", m)
}
