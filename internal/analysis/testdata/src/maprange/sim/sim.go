// Package sim is a maprange fixture: the "sim" path segment makes it a
// deterministic package.
package sim

import "sort"

// Violations.

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map`
		out = append(out, k)
	}
	return out
}

func lastWriterWins(m map[string]int) int {
	var last int
	for _, v := range m { // want `range over map`
		last = v
	}
	return last
}

func callInBody(m map[string]int, f func(int)) {
	for _, v := range m { // want `range over map`
		f(v)
	}
}

// Accepted shapes: provably order-independent, no diagnostics.

func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func guardedCollect(m map[string]int, keep map[string]bool) []string {
	var out []string
	for k := range m {
		if keep[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func commutativeFold(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func runningMax(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func guardedMax(m map[string]int) int {
	best := -1
	for k, v := range m {
		if k != "skip" && v > best {
			best = v
		}
	}
	return best
}

func keyedWrite(m map[string]int) map[string]int {
	doubled := make(map[string]int, len(m))
	for k, v := range m {
		doubled[k] = v * 2
	}
	return doubled
}

func existenceScan(m map[string]int) bool {
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

// Suppressed: a real violation with a justified ignore yields nothing;
// the harness checking "no diagnostic here" is the accepted-suppression
// test.

func suppressedCollect(m map[string]int) []string {
	var out []string
	//detlint:ignore maprange fixture demo: order is normalized downstream
	for k := range m {
		out = append(out, k)
	}
	return out
}
