// Package cliutil is the maprange control fixture: it is not a
// deterministic package, so the same loop that fires in sim draws no
// diagnostic here.
package cliutil

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
