// Package sim is an osenv fixture: deterministic by path.
package sim

import (
	"os"
	"path/filepath"
)

// fromEnv derives output from the host environment: flagged.
func fromEnv() string {
	return os.Getenv("SEED") // want `os.Getenv reads ambient host state`
}

// enumerate derives output from filesystem shape: flagged.
func enumerate(dir string) ([]string, error) {
	return filepath.Glob(filepath.Join(dir, "*.trace")) // want `filepath.Glob reads ambient host state`
}

// listDir enumerates a directory: flagged.
func listDir(dir string) ([]os.DirEntry, error) {
	return os.ReadDir(dir) // want `os.ReadDir reads ambient host state`
}

// explicitRead reads a caller-named file: an explicit input, allowed
// (the campaign checkpoint store depends on exactly this).
func explicitRead(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// vetted carries a reasoned suppression: no diagnostic.
func vetted() string {
	//detlint:ignore osenv fixture: build-info stamp is excluded from canonical bytes
	return os.Getenv("BUILD_STAMP")
}
