package sim

import "os"

// Test files are allowlisted: harness knobs legitimately come from the
// environment, and build files cannot call test functions.
func testKnob() string {
	return os.Getenv("SIM_TEST_VERBOSE")
}
