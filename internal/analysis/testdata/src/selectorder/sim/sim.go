// Package sim is a selectorder fixture: its import path ends in /sim,
// so it is classified deterministic.
package sim

// merge drains two channels with a scheduler-chosen branch: flagged.
func merge(a, b chan int) int {
	select { // want `select with multiple cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// poll counts a default clause as a case: "was the channel ready" is
// scheduler timing, not seeded input.
func poll(a chan int) int {
	select { // want `select with multiple cases`
	case v := <-a:
		return v
	default:
		return 0
	}
}

// recv is an ordinary blocking receive dressed as a select: allowed.
func recv(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}

// vetted carries a reasoned suppression: no diagnostic.
func vetted(a, b chan int) int {
	//detlint:ignore selectorder fixture: shutdown race is resolved before any canonical output
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
