// Package sweep is exempt from selectorder: the audited worker pool
// races completions by design, and its aggregation is proven
// order-independent.
package sweep

func gather(done chan int, cancel chan struct{}) int {
	select {
	case v := <-done:
		return v
	case <-cancel:
		return 0
	}
}
