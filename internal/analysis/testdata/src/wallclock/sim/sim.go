// Package sim is a wallclock fixture: deterministic by path segment.
package sim

import "time"

func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock`
}

func pause() {
	time.Sleep(10 * time.Millisecond) // want `time.Sleep reads the wall clock`
}

func await() <-chan time.Time {
	return time.After(time.Second) // want `time.After reads the wall clock`
}

func budget() time.Duration {
	return 5 * time.Second // duration arithmetic is constant: no diagnostic
}

func suppressedStamp() time.Time {
	//detlint:ignore wallclock fixture demo: feeds an operator log line, not canonical bytes
	return time.Now()
}
