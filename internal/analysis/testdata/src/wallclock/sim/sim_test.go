package sim

import "time"

// _test.go files are allowlisted: test deadlines legitimately watch the
// wall clock, so none of these draw diagnostics.

func testDeadline() time.Time {
	return time.Now().Add(time.Second)
}

func testPause() {
	time.Sleep(time.Millisecond)
}
