// Package sim is the deterministic half of the detflow fixture tree.
// The two laundering shapes the tentpole requires are here: a helper in
// the same deterministic package (taint surfaces at the helper's own
// boundary call) and a helper in an exempt package (taint surfaces at
// the deterministic-side call with the full chain).
package sim

import "detflow/cliutil"

// helper launders the exempt call one frame inside the deterministic
// package; the frontier diagnostic lands here, at the boundary.
func helper() int64 {
	return cliutil.LeakyNow() // want `call to cliutil.LeakyNow reaches wallclock nondeterminism: sim.helper -> cliutil.LeakyNow -> time.Now`
}

// Use reaches the wall clock only through helper: no diagnostic here
// (frontier reporting), but the certified-API report marks it TAINTED.
func Use() int64 {
	return helper()
}

// TwoFrames launders through two exempt-package frames: the diagnostic
// lands at the deterministic-side call site with the full chain.
func TwoFrames() int64 {
	return cliutil.Chain() // want `call to cliutil.Chain reaches wallclock nondeterminism: sim.TwoFrames -> cliutil.Chain -> cliutil.LeakyNow -> time.Now`
}

// Vetted calls a callee whose only source is leaf-suppressed: the
// report shows "suppressed", and no diagnostic fires.
func Vetted() int64 {
	return cliutil.VettedNow()
}

// Accepted vets the boundary call itself: live taint degrades to a
// suppressed synthetic instance at this call site.
func Accepted() int64 {
	//detlint:ignore detflow fixture: operator-facing timing note, excluded from canonical bytes
	return cliutil.LeakyNow()
}

// Clock is dispatched dynamically; the only same-name-and-arity
// candidate in the deterministic set is (*VirtualClock).Tick, which is
// clean, so Drive stays clean.
type Clock interface {
	Tick() int64
}

// VirtualClock advances only when told to: deterministic.
type VirtualClock struct {
	t int64
}

// Tick is the deterministic Clock implementation.
func (c *VirtualClock) Tick() int64 {
	c.t++
	return c.t
}

// Drive exercises the interface-call over-approximation.
func Drive(c Clock) int64 {
	return c.Tick()
}

// double is address-taken below, making it a func-value candidate.
func double(x int64) int64 {
	return 2 * x
}

// Registered hands double out as a value.
func Registered() func(int64) int64 {
	return double
}

// Apply exercises the func-value over-approximation: the only
// address-taken deterministic candidate of this arity is double.
func Apply(f func(int64) int64) int64 {
	return f(7)
}
