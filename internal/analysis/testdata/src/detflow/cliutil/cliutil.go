// Package cliutil is the exempt-package half of the detflow fixture
// tree: it is outside the deterministic set (no leaf analyzer runs
// here), so nondeterminism can only be caught when taint flows across
// the boundary into detflow/sim.
package cliutil

import "time"

// LeakyNow hides a wall-clock read behind an exempt-package helper.
func LeakyNow() int64 {
	return time.Now().UnixNano()
}

// Chain adds a second laundering frame: detflow must carry the taint
// through exempt-package-internal calls.
func Chain() int64 {
	return LeakyNow() + 1
}

// VettedNow's source is suppressed at the leaf, so the taint dies at
// the root and deterministic callers stay clean of live taint.
func VettedNow() int64 {
	//detlint:ignore wallclock fixture: startup banner timestamp, never reaches canonical bytes
	return time.Now().UnixNano()
}
