// Package sim is an unstablesort fixture: deterministic by path.
package sim

import (
	"cmp"
	"slices"
	"sort"
)

type row struct {
	key  int
	name string
}

// singleKey orders by one potentially-tying projection: flagged.
func singleKey(rows []row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key }) // want `single potentially-tying key`
}

// stableSingleKey uses the stable variant: ties keep input order.
func stableSingleKey(rows []row) {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
}

// wholeElement compares the elements themselves: tied elements are
// identical values, so the instability is unobservable.
func wholeElement(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// tieBreaker compares two distinct keys: a total-order chain.
func tieBreaker(rows []row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].key != rows[j].key {
			return rows[i].key < rows[j].key
		}
		return rows[i].name < rows[j].name
	})
}

// opaque passes a named comparison the analyzer cannot see into: flagged.
func opaque(rows []row, less func(i, j int) bool) {
	sort.Slice(rows, less) // want `non-literal comparison`
}

// sortSort cannot be audited at the call site at all: flagged.
func sortSort(data sort.Interface) {
	sort.Sort(data) // want `sort.Sort is unstable`
}

// funcSingleKey is the slices.SortFunc shape of singleKey: flagged.
func funcSingleKey(rows []row) {
	slices.SortFunc(rows, func(a, b row) int { return cmp.Compare(a.key, b.key) }) // want `single potentially-tying key`
}

// funcWhole compares whole elements through cmp.Compare: allowed.
func funcWhole(xs []int) {
	slices.SortFunc(xs, func(a, b int) int { return cmp.Compare(a, b) })
}

// funcChain is a two-key cmp chain: allowed.
func funcChain(rows []row) {
	slices.SortFunc(rows, func(a, b row) int {
		if c := cmp.Compare(a.key, b.key); c != 0 {
			return c
		}
		return cmp.Compare(a.name, b.name)
	})
}

// vetted documents a deliberately partial order: suppressed, no diagnostic.
func vetted(rows []row) {
	//detlint:ignore unstablesort fixture: rows are deduplicated by key upstream, ties impossible
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
}
