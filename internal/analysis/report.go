package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Report renders the certified-deterministic API report: every exported
// function of every deterministic package, with its transitive taint
// status. Unlike Diagnostics — which stops at the taint frontier to
// avoid cascades — the report is transitive: an exported function is
// TAINTED whenever any live source can execute on its behalf, however
// many frames away, because that is the question a caller of the API
// actually asks.
//
// The output is byte-stable across runs and machines: packages sort by
// import path, functions by display name, suppressed entries by kind
// then position; paths render relative to the module root; nothing
// time- or environment-dependent is emitted. CI regenerates the report
// and diffs it against the checked-in detflow_report.txt, so any change
// to the certified surface — a new export, a new suppression, a
// regression to TAINTED — shows up in review as a baseline diff.
func (f *Flow) Report() string {
	var b strings.Builder
	b.WriteString("# detflow certified-deterministic API report.\n")
	b.WriteString("# Regenerate: go run ./cmd/detlint -flow -report ./... > detflow_report.txt\n")
	b.WriteString("#\n")
	b.WriteString("# Every exported function of the deterministic package set, with its\n")
	b.WriteString("# transitive nondeterminism-taint status:\n")
	b.WriteString("#   clean      — no nondeterminism source can execute on its behalf\n")
	b.WriteString("#   suppressed — reaches only sources vetted by //detlint:ignore (listed)\n")
	b.WriteString("#   TAINTED    — reaches a live source via the shown call chain; fix it\n")

	byPkg := map[string][]*flowFunc{}
	for _, fn := range f.g.order {
		if fn.det && fn.exported {
			byPkg[fn.pkgPath] = append(byPkg[fn.pkgPath], fn)
		}
	}
	pkgs := make([]string, 0, len(byPkg))
	for p := range byPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	for _, pkg := range pkgs {
		fns := byPkg[pkg]
		sort.Slice(fns, func(i, j int) bool { return localName(fns[i]) < localName(fns[j]) })
		fmt.Fprintf(&b, "\n== %s ==\n", pkg)
		for _, fn := range fns {
			fmt.Fprintf(&b, "%s: %s\n", localName(fn), f.status(fn))
		}
	}
	return b.String()
}

// localName strips the package qualifier from a display name:
// "sim.Use" -> "Use", "trace.(Recorder).Record" -> "(Recorder).Record".
func localName(fn *flowFunc) string {
	if i := strings.Index(fn.display, "."); i >= 0 {
		return fn.display[i+1:]
	}
	return fn.display
}

// status renders one function's taint status line.
func (f *Flow) status(fn *flowFunc) string {
	live := f.liveIDs(fn.key)
	if len(live) > 0 {
		id := f.worstWitness(fn, live)
		inst := f.g.insts[id]
		kinds := map[string]bool{}
		for _, l := range live {
			kinds[f.g.insts[l].kind] = true
		}
		return fmt.Sprintf("TAINTED [%s] via %s", joinSorted(kinds), f.chainFrom(fn, inst))
	}

	var vetted []*srcInst
	for id := range f.taint[fn.key] {
		vetted = append(vetted, f.g.insts[id])
	}
	if len(vetted) == 0 {
		return "clean"
	}
	sort.Slice(vetted, func(i, j int) bool {
		a, b := vetted[i], vetted[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		return a.pos.Line < b.pos.Line
	})
	parts := make([]string, 0, len(vetted))
	seen := map[string]bool{}
	for _, inst := range vetted {
		entry := fmt.Sprintf("[%s %s %q]", inst.kind, f.g.rel(inst.pos), inst.sup.Reason)
		if !seen[entry] {
			seen[entry] = true
			parts = append(parts, entry)
		}
	}
	return "suppressed " + strings.Join(parts, " ")
}

// worstWitness picks the live instance with the shortest chain from fn
// (position tie-break) to show in a TAINTED line.
func (f *Flow) worstWitness(fn *flowFunc, live []int) int {
	best := live[0]
	bd, bok := f.distTo(fn, f.g.insts[best])
	for _, id := range live[1:] {
		inst := f.g.insts[id]
		d, ok := f.distTo(fn, inst)
		if !ok {
			continue
		}
		if !bok || d < bd || (d == bd && lessPos(inst.pos, f.g.insts[best].pos)) {
			best, bd, bok = id, d, true
		}
	}
	return best
}

func joinSorted(set map[string]bool) string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, " ")
}
