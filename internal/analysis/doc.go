// Package analysis is the detlint suite: static analyzers that enforce
// the determinism contracts ARCHITECTURE.md writes down for each layer.
//
// Everything this repo verifies — byte-identical tables, traces and
// digests at any parallelism or sharding, replayable (Config, seed)
// verdicts — depends on the deterministic packages (sim, core, fd,
// check, sweep, campaign, trace, experiments, multiset, reduce) being
// pure functions of their seeded inputs. The equality tests that guard
// those contracts are dynamic: they must get lucky enough to exercise a
// nondeterminism before it ships. The analyzers here check the contracts
// at the source level instead, so a stray map iteration or wall-clock
// read fails the build rather than a sweep three PRs later.
//
// The suite (run by cmd/detlint over ./...):
//
//   - maprange: range over a map is flagged unless the loop provably
//     folds order-independently or collects into a slice that is sorted
//     later in the same function.
//   - wallclock: time.Now/Since/Sleep/After/… are forbidden; virtual
//     time lives in sim.Time. _test.go deadlines are allowlisted.
//   - globalrand: package-level math/rand draws and crypto/rand are
//     forbidden; randomness flows through injected seeded *rand.Rand or
//     the keyed splitmix64 fate streams.
//   - unsortedgo: go statements are forbidden outside internal/sweep's
//     audited worker pool.
//   - ptrformat: %p and pointer/map/chan/func operands to fmt must not
//     reach trace/digest/table rendering.
//
// Exceptions are declared in the source as
//
//	//detlint:ignore <analyzer> <reason>
//
// on (or directly above) the offending line. The reason is mandatory:
// every suppression is a grep-able, justified audit artifact, and the
// driver rejects a bare ignore instead of honouring it.
//
// The framework deliberately mirrors a small subset of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Reportf, an
// analysistest-style harness in analysis/atest) so the suite can migrate
// onto the upstream framework wholesale if the dependency is ever
// vendored; it is reimplemented here because this module is
// dependency-free by constraint.
package analysis
