// Package analysis is the detlint suite: static analyzers that enforce
// the determinism contracts ARCHITECTURE.md writes down for each layer.
//
// Everything this repo verifies — byte-identical tables, traces and
// digests at any parallelism or sharding, replayable (Config, seed)
// verdicts — depends on the deterministic packages (sim, core, fd,
// check, sweep, campaign, trace, experiments, multiset, reduce) being
// pure functions of their seeded inputs. The equality tests that guard
// those contracts are dynamic: they must get lucky enough to exercise a
// nondeterminism before it ships. The analyzers here check the contracts
// at the source level instead, so a stray map iteration or wall-clock
// read fails the build rather than a sweep three PRs later.
//
// The leaf suite (run by cmd/detlint over ./...):
//
//   - maprange: range over a map is flagged unless the loop provably
//     folds order-independently or collects into a slice that is sorted
//     later in the same function.
//   - wallclock: time.Now/Since/Sleep/After/… are forbidden; virtual
//     time lives in sim.Time. _test.go deadlines are allowlisted.
//   - globalrand: package-level math/rand draws and crypto/rand are
//     forbidden; randomness flows through injected seeded *rand.Rand or
//     the keyed splitmix64 fate streams.
//   - unsortedgo: go statements are forbidden outside internal/sweep's
//     audited worker pool.
//   - ptrformat: %p and pointer/map/chan/func operands to fmt must not
//     reach trace/digest/table rendering.
//   - selectorder: multi-case selects are forbidden — the runtime picks
//     among ready cases pseudorandomly (sweep and hruntime exempt).
//   - unstablesort: sort.Slice/sort.Sort over a potentially-tying key
//     are forbidden — use stable sorts, whole-element comparison, or a
//     multi-key tie-breaker chain.
//   - osenv: ambient host-state reads (os.Getenv, os.ReadDir,
//     filepath.Glob, …) are forbidden; explicit-path file I/O is an
//     input and stays legal. _test.go harness knobs are allowlisted.
//
// On top of the leaves, Flow (cmd/detlint -flow) is the whole-module
// interprocedural taint pass: it recognizes the same sources in every
// module package, propagates per-function source-instance summaries
// over a call graph (static edges via go/types; interface and
// func-value calls over-approximated by name+arity against
// deterministic-set candidates), and reports at the taint frontier —
// the deterministic-side call site whose module-local callee carries
// live taint — with the full call chain to the concrete source. Its
// Report method renders the certified-deterministic API report checked
// in as detflow_report.txt.
//
// Exceptions are declared in the source as
//
//	//detlint:ignore <analyzer> <reason>
//
// on (or directly above) the offending line. The reason is mandatory:
// every suppression is a grep-able, justified audit artifact, and the
// driver rejects a bare ignore instead of honouring it.
//
// The framework deliberately mirrors a small subset of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Reportf, an
// analysistest-style harness in analysis/atest) so the suite can migrate
// onto the upstream framework wholesale if the dependency is ever
// vendored; it is reimplemented here because this module is
// dependency-free by constraint.
package analysis
