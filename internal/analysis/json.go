package analysis

import (
	"bytes"
	"encoding/json"
)

// jsonDiagnostic is the machine-readable diagnostic shape emitted by
// "detlint -json". The field set and order are part of the tool's
// interface: CI consumers parse it, and the output-byte-stability test
// pins it, so changes here are deliberate API changes.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// DiagnosticsJSON renders diagnostics as an indented JSON array with a
// trailing newline. The input is sorted first (same order as text
// output), and an empty input renders as "[]" rather than "null", so
// the bytes are a pure function of the diagnostic set.
func DiagnosticsJSON(diags []Diagnostic) []byte {
	SortDiagnostics(diags)
	out := make([]jsonDiagnostic, len(diags))
	for i, d := range diags {
		out[i] = jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(out); err != nil {
		// A flat struct of strings and ints cannot fail to encode.
		panic(err)
	}
	return buf.Bytes()
}
