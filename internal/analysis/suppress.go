package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ignoreMarker opens a suppression comment:
//
//	//detlint:ignore <analyzer> <reason...>
//
// The comment suppresses that analyzer's diagnostics on its own line and
// on the line directly below it (so it can sit on the offending line or
// immediately above it, like //nolint and //lint:ignore). The reason is
// mandatory and free-form — every exception to a determinism contract is
// meant to be a grep-able, justified artifact, and the driver rejects a
// bare ignore as a malformed suppression rather than honouring it.
const ignoreMarker = "//detlint:ignore"

// Suppression is one parsed //detlint:ignore comment.
type Suppression struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

// CollectSuppressions parses every //detlint:ignore comment in files.
// Malformed comments (no analyzer name, no reason, or an analyzer name
// detlint does not know) are returned as errors: a suppression that
// silently matched nothing would defeat the audit trail.
func CollectSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]Suppression, []error) {
	var sups []Suppression
	var errs []error
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreMarker) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignoreMarker)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //detlint:ignoreXYZ — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					errs = append(errs, fmt.Errorf("%s: malformed %s: missing analyzer name and reason", pos, ignoreMarker))
					continue
				}
				name := fields[0]
				if known != nil && !known[name] {
					errs = append(errs, fmt.Errorf("%s: %s names unknown analyzer %q", pos, ignoreMarker, name))
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
				if reason == "" {
					errs = append(errs, fmt.Errorf("%s: %s %s: missing reason — every suppression must say why the contract does not apply", pos, ignoreMarker, name))
					continue
				}
				sups = append(sups, Suppression{Pos: pos, Analyzer: name, Reason: reason})
			}
		}
	}
	return sups, errs
}

// FilterSuppressed drops diagnostics covered by a suppression: same file,
// matching analyzer, and the suppression sits on the diagnostic's line or
// the line directly above it.
func FilterSuppressed(diags []Diagnostic, sups []Suppression) []Diagnostic {
	if len(sups) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(d, sups) {
			kept = append(kept, d)
		}
	}
	return kept
}

func suppressed(d Diagnostic, sups []Suppression) bool {
	for _, s := range sups {
		if s.Analyzer != d.Analyzer || s.Pos.Filename != d.Pos.Filename {
			continue
		}
		if s.Pos.Line == d.Pos.Line || s.Pos.Line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}
