package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// fmtFormatArg maps fmt's formatting entry points to the index of their
// format-string argument; -1 marks the Print/Sprint family, which has no
// verbs but still renders every operand with %v semantics.
var fmtFormatArg = map[string]int{
	"Printf": 0, "Sprintf": 0, "Errorf": 0,
	"Fprintf": 1, "Appendf": 1,
	"Print": -1, "Println": -1, "Sprint": -1, "Sprintln": -1,
	"Fprint": -1, "Fprintln": -1, "Append": -1, "Appendln": -1,
}

// Ptrformat flags formatting that leaks address bits or iteration order
// into rendered bytes within deterministic packages. Traces, digests and
// tables are "canonical" only if the same run always renders the same
// bytes: %p and pointer operands print virtual addresses (ASLR makes
// them differ run to run), and map/chan/func operands either depend on
// runtime state or (for maps) on fmt's own key ordering, which is not
// part of this repo's canonical-bytes contract — rendering code must
// extract and sort keys explicitly.
var Ptrformat = &Analyzer{
	Name: "ptrformat",
	Doc:  "flags %p and pointer/map/chan/func operands to fmt in deterministic packages",
	Run: func(pass *Pass) error {
		if !IsDeterministic(pass.PkgPath) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, leak := range ptrLeaksAt(pass.Info, call) {
					pass.Reportf(leak.pos, "%s", leak.msg)
				}
				return true
			})
		}
		return nil
	},
}

// ptrLeak is one address/order leak in a fmt call.
type ptrLeak struct {
	pos token.Pos
	msg string
}

// ptrLeaksAt inspects one call expression for formatting that leaks
// address bits or iteration order. Shared between the Ptrformat
// analyzer and detflow's taint-source scan.
func ptrLeaksAt(info *types.Info, call *ast.CallExpr) []ptrLeak {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fmtIdx, ok := fmtFormatArg[sel.Sel.Name]
	if !ok || !isPkgFunc(info.Uses[sel.Sel], "fmt") {
		return nil
	}
	var leaks []ptrLeak
	firstOperand := fmtIdx + 1
	if fmtIdx >= 0 && fmtIdx < len(call.Args) {
		if format, ok := stringLiteral(info, call.Args[fmtIdx]); ok && strings.Contains(verbsOf(format), "p") {
			leaks = append(leaks, ptrLeak{call.Args[fmtIdx].Pos(), "%p renders a virtual address; address bits are nondeterministic and must not reach trace/digest/table bytes"})
		}
	}
	for _, arg := range call.Args[min(firstOperand, len(call.Args)):] {
		tv, ok := info.Types[arg]
		if !ok {
			continue
		}
		if kind := leakyOperand(tv.Type); kind != "" {
			leaks = append(leaks, ptrLeak{arg.Pos(), fmt.Sprintf("%s operand reaches fmt.%s: %s; extract and sort explicitly before rendering (canonical-bytes contract)", kind, sel.Sel.Name, leakWhy(kind))})
		}
	}
	return leaks
}

// stringLiteral resolves arg to a compile-time string constant (literal
// or named constant), if it is one.
func stringLiteral(info *types.Info, arg ast.Expr) (string, bool) {
	tv, ok := info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// verbsOf extracts the verb characters of a fmt format string ("%6.2f %p"
// yields "fp"); flags, width, precision and argument indexes are skipped.
func verbsOf(format string) string {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.ContainsRune("+-# 0123456789.*[]", rune(format[i])) {
			i++
		}
		if i < len(format) && format[i] != '%' {
			verbs = append(verbs, format[i])
		}
	}
	return string(verbs)
}

// leakyOperand classifies types whose default rendering depends on
// runtime state. Pointers to structs and arrays are allowed — fmt
// dereferences them to their contents — but any other pointer prints its
// address.
func leakyOperand(t types.Type) string {
	switch u := t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Chan:
		return "chan"
	case *types.Signature:
		return "func"
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return "unsafe.Pointer"
		}
	case *types.Pointer:
		switch u.Elem().Underlying().(type) {
		case *types.Struct, *types.Array:
			return ""
		}
		return "pointer"
	}
	return ""
}

func leakWhy(kind string) string {
	if kind == "map" {
		return "iteration/rendering order is not part of the canonical-bytes contract"
	}
	return fmt.Sprintf("a %s renders as a virtual address", kind)
}
