package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader type-checks packages without the go/packages machinery (this
// module is dependency-free, so the x/tools loader is not available). It
// resolves module-local imports by mapping them onto directories under
// the module root, and everything else through the stdlib source
// importer, which compiles GOROOT packages from source — no network, no
// export data, no go command subprocesses.
//
// Each directory yields up to two analysis units, mirroring how go test
// builds packages: the package itself merged with its in-package _test.go
// files (one types.Package, so test helpers and the code they exercise
// type-check together), and, when present, the external "_test" package.
// The external test package imports the plain base package — this repo
// has no export_test.go indirection, so the go tool's test-variant
// dependency propagation ("p [test]") is deliberately not reproduced.
type Loader struct {
	Fset *token.FileSet

	// Module and Root anchor module mode: import paths below Module map
	// to directories below Root.
	Module string
	Root   string

	// SrcDir enables GOPATH-style resolution for analysistest fixtures:
	// any import path that exists as a directory under SrcDir loads from
	// there. Module/Root are ignored when set.
	SrcDir string

	ctxt build.Context
	std  types.ImporterFrom
	base map[string]*types.Package // import-path cache, build files only
}

// Unit is one type-checked collection of files an analyzer runs over.
type Unit struct {
	// PkgPath is the directory's import path; the external test package
	// shares its base directory's path (classification is per directory).
	PkgPath string
	Name    string // package name ("sim", "sim_test", …)
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// NewLoader returns a loader in module mode (SrcDir empty) or fixture
// mode (SrcDir set). Cgo is disabled in the file-selection context: the
// repo is pure Go, and letting the source importer attempt cgo would
// drag in toolchain subprocesses for nothing.
func NewLoader(module, root, srcDir string) *Loader {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		Module: module,
		Root:   root,
		SrcDir: srcDir,
		ctxt:   ctxt,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		base:   make(map[string]*types.Package),
	}
}

// localDir maps an import path onto a directory this loader owns, or
// returns false for stdlib paths.
func (l *Loader) LocalDir(path string) (string, bool) {
	if l.SrcDir != "" {
		dir := filepath.Join(l.SrcDir, filepath.FromSlash(path))
		if bp, err := l.ctxt.ImportDir(dir, 0); err == nil && len(bp.GoFiles)+len(bp.TestGoFiles)+len(bp.XTestGoFiles) > 0 {
			return dir, true
		}
		return "", false
	}
	if path == l.Module {
		return l.Root, true
	}
	if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if local, ok := l.LocalDir(path); ok {
		return l.importBase(path, local)
	}
	return l.std.ImportFrom(path, dir, mode)
}

// importBase type-checks the build files (no tests) of a local package,
// as seen by its importers.
func (l *Loader) importBase(path, dir string) (*types.Package, error) {
	if pkg, ok := l.base[path]; ok {
		return pkg, nil
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("import %q: %v", path, err)
	}
	files, err := l.parse(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	pkg, _, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.base[path] = pkg
	return pkg, nil
}

// LoadDir type-checks the package in dir (with import path pkgPath) and
// returns its analysis units. A directory with only ignored files yields
// no units and no error.
func (l *Loader) LoadDir(pkgPath, dir string) ([]*Unit, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("%s: %v", dir, err)
	}
	var units []*Unit

	files, err := l.parse(dir, append(append([]string{}, bp.GoFiles...), bp.TestGoFiles...))
	if err != nil {
		return nil, err
	}
	if len(files) > 0 {
		pkg, info, err := l.check(pkgPath, files)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{PkgPath: pkgPath, Name: bp.Name, Files: files, Pkg: pkg, Info: info})
	}

	if len(bp.XTestGoFiles) > 0 {
		xfiles, err := l.parse(dir, bp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		xpkg, xinfo, err := l.check(pkgPath+"_test", xfiles)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{PkgPath: pkgPath, Name: bp.Name + "_test", Files: xfiles, Pkg: xpkg, Info: xinfo})
	}
	return units, nil
}

func (l *Loader) parse(dir string, names []string) ([]*ast.File, error) {
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return pkg, info, nil
}
