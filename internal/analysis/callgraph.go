package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// FuncKey identifies a function or method declared in the loaded units
// independently of type-checker object identity. The same source
// function is type-checked twice when its package is both analyzed
// directly (a Unit) and imported by another unit (the loader's base
// cache), so graph nodes are keyed by (package path, receiver type
// name, function name) instead of by *types.Func pointers.
type FuncKey string

func makeFuncKey(pkg, recv, name string) FuncKey {
	if recv == "" {
		return FuncKey(pkg + "." + name)
	}
	return FuncKey(pkg + ".(" + recv + ")." + name)
}

// funcKeyOf computes the key for a resolved function object. ok is
// false for objects the graph does not key directly: functions outside
// any package (universe builtins) and interface methods, whose call
// sites dispatch dynamically.
func funcKeyOf(fn *types.Func) (key FuncKey, dynamic bool, ok bool) {
	if fn.Pkg() == nil {
		return "", false, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false, false
	}
	recv := ""
	if r := sig.Recv(); r != nil {
		t := types.Unalias(r.Type())
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = types.Unalias(p.Elem())
		}
		named, isNamed := t.(*types.Named)
		if !isNamed {
			// Receiver is an unnamed interface or similar: dynamic.
			return "", true, false
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			return "", true, false
		}
		recv = named.Obj().Name()
	}
	return makeFuncKey(fn.Pkg().Path(), recv, fn.Name()), false, true
}

// flowFunc is one function or method declared in a loaded unit's build
// files: a node of the interprocedural call graph.
type flowFunc struct {
	key      FuncKey
	pkgPath  string // the unit's directory import path
	display  string // "sim.helper", "trace.(Recorder).Record"
	det      bool   // declared in a deterministic package
	exported bool   // exported name on an exported (or no) receiver
	pos      token.Position
	arity    [2]int // len(params), len(results) — for dynamic matching

	calls   []flowCall // call sites, in source order
	sources []int      // direct source-instance ids, in source order

	// callers is the reverse edge set, built after all calls resolve.
	callers []callerRef
}

type flowCall struct {
	pos     token.Pos
	callee  *flowFunc
	dynamic bool
	// sup is the //detlint:ignore detflow suppression covering the call
	// line, if any: the edge is vetted, so live taint crossing it
	// degrades to suppressed taint.
	sup *Suppression
}

type callerRef struct {
	fn   *flowFunc
	call *flowCall
}

// srcInst is one nondeterminism source instance: a concrete occurrence
// of a wall-clock read, global rand draw, unproven map range, goroutine
// spawn, multi-case select, unstable sort, ambient host read, or
// pointer-formatting leak — or a synthetic instance standing for live
// taint vetted at a suppressed detflow call edge.
type srcInst struct {
	id    int
	kind  string // the leaf analyzer name ("wallclock", …) — lattice element
	what  string // human description ("time.Now", "range over map m", …)
	pos   token.Position
	sup   *Suppression // non-nil when the instance is vetted (leaf- or edge-suppressed)
	owner *flowFunc    // the function containing the source (nil for synthetics)
}

// flowGraph is the whole-module call graph plus the source-instance
// table, the input to the taint fixpoint.
type flowGraph struct {
	fset  *token.FileSet
	root  string // positions render relative to this
	funcs map[FuncKey]*flowFunc
	order []*flowFunc // deterministic iteration order (by position)
	insts []*srcInst

	// methodIndex maps method name -> candidate implementations in
	// deterministic packages, for interface-call over-approximation.
	methodIndex map[string][]*flowFunc
	// addrTaken lists deterministic-package functions referenced as
	// values anywhere in the loaded units, the candidate set for
	// func-value calls.
	addrTaken map[FuncKey]*flowFunc

	sups []Suppression
}

// rel renders a position with its filename relative to the graph root.
func (g *flowGraph) rel(pos token.Position) string {
	name := pos.Filename
	if r, err := filepath.Rel(g.root, name); err == nil && !strings.HasPrefix(r, "..") {
		name = filepath.ToSlash(r)
	}
	return name + ":" + itoa(pos.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// isTestFilename reports whether the file at pos is a _test.go file.
// detflow analyzes build files only: test functions cannot be called
// from build files, so they neither contribute sources nor need
// summaries.
func isTestFilename(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// buildFlowGraph constructs the call graph over the given units. Units
// of external test packages ("foo_test") and declarations in _test.go
// files are skipped entirely.
func buildFlowGraph(fset *token.FileSet, units []*Unit, root string, sups []Suppression) *flowGraph {
	g := &flowGraph{
		fset:        fset,
		root:        root,
		funcs:       make(map[FuncKey]*flowFunc),
		methodIndex: make(map[string][]*flowFunc),
		addrTaken:   make(map[FuncKey]*flowFunc),
		sups:        sups,
	}

	// Pass 1: register every build-file function declaration.
	type declUnit struct {
		decl *ast.FuncDecl
		unit *Unit
		fn   *flowFunc
	}
	var decls []declUnit
	for _, unit := range units {
		if strings.HasSuffix(unit.Name, "_test") {
			continue
		}
		for _, file := range unit.Files {
			if isTestFilename(fset, file.Pos()) {
				continue
			}
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil || decl.Name.Name == "init" || decl.Name.Name == "_" {
					continue
				}
				obj, ok := unit.Info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				key, _, ok := funcKeyOf(obj)
				if !ok {
					continue
				}
				fn := &flowFunc{
					key:      key,
					pkgPath:  unit.PkgPath,
					display:  displayName(unit.PkgPath, decl),
					det:      IsDeterministic(unit.PkgPath),
					exported: exportedAPI(decl),
					pos:      fset.Position(decl.Pos()),
					arity:    arityOf(obj),
				}
				g.funcs[key] = fn
				decls = append(decls, declUnit{decl, unit, fn})
				if decl.Recv != nil && fn.det {
					g.methodIndex[decl.Name.Name] = append(g.methodIndex[decl.Name.Name], fn)
				}
			}
		}
	}

	// Pass 2a: collect address-taken deterministic functions — every
	// use of a declared function object in non-call position, anywhere
	// in the loaded units (test files included: a test passing a build
	// function somewhere still reveals it escapes). Direct-callee
	// positions are subtracted so plain calls do not count as taken.
	for _, unit := range units {
		for _, file := range unit.Files {
			calleePos := map[token.Pos]bool{}
			ast.Inspect(file, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					fun := ast.Unparen(call.Fun)
					switch f := fun.(type) {
					case *ast.Ident:
						calleePos[f.Pos()] = true
					case *ast.SelectorExpr:
						calleePos[f.Sel.Pos()] = true
					}
				}
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || calleePos[id.Pos()] {
					return true
				}
				fn, ok := unit.Info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				if key, _, ok := funcKeyOf(fn); ok {
					if node := g.funcs[key]; node != nil && node.det {
						g.addrTaken[key] = node
					}
				}
				return true
			})
		}
	}

	// Pass 2b: resolve call sites and scan for source instances.
	for _, du := range decls {
		g.scanFunc(du.fn, du.decl, du.unit)
	}

	// Deterministic node order and reverse edges.
	g.order = make([]*flowFunc, 0, len(g.funcs))
	for _, fn := range g.funcs {
		g.order = append(g.order, fn)
	}
	sort.Slice(g.order, func(i, j int) bool {
		a, b := g.order[i], g.order[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		return a.pos.Line < b.pos.Line
	})
	for _, fn := range g.order {
		for i := range fn.calls {
			c := &fn.calls[i]
			if c.callee != nil {
				c.callee.callers = append(c.callee.callers, callerRef{fn, c})
			}
		}
	}
	return g
}

// displayName renders a function for chains and the report:
// "sim.helper", "trace.(Recorder).Record". The package part is the last
// path segment, enough to be unambiguous in this module's chains.
func displayName(pkgPath string, decl *ast.FuncDecl) string {
	seg := pkgPath
	if i := strings.LastIndex(seg, "/"); i >= 0 {
		seg = seg[i+1:]
	}
	if decl.Recv == nil {
		return seg + "." + decl.Name.Name
	}
	return seg + ".(" + recvTypeName(decl) + ")." + decl.Name.Name
}

// recvTypeName extracts the receiver base type name from a declaration,
// stripping pointers and type parameters.
func recvTypeName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return ""
	}
	t := decl.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// exportedAPI reports whether decl is part of the package's exported
// API: exported name, and for methods an exported receiver type.
func exportedAPI(decl *ast.FuncDecl) bool {
	if !ast.IsExported(decl.Name.Name) {
		return false
	}
	if decl.Recv == nil {
		return true
	}
	return ast.IsExported(recvTypeName(decl))
}

func arityOf(fn *types.Func) [2]int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return [2]int{-1, -1}
	}
	return [2]int{sig.Params().Len(), sig.Results().Len()}
}

// scanFunc walks one function body (function literals inlined: their
// sources and call sites attribute to the enclosing declaration, which
// is where a human would fix them) recording source instances and call
// edges.
func (g *flowGraph) scanFunc(fn *flowFunc, decl *ast.FuncDecl, unit *Unit) {
	info := unit.Info
	pass := &Pass{Analyzer: Maprange, Fset: g.fset, Files: unit.Files, Pkg: unit.Pkg, Info: info, PkgPath: unit.PkgPath}

	var stack []ast.Node
	ast.Inspect(decl, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// Package-level source functions referenced by selector:
			// wall clock, global rand, ambient host state. Detecting on
			// the selector (not the call) also catches method values
			// like `f := time.Now` conservatively, matching the leaves.
			obj := info.Uses[n.Sel]
			switch {
			case wallClockFuncs[n.Sel.Name] && isPkgFunc(obj, "time"):
				g.addSource(fn, "wallclock", "time."+n.Sel.Name, n.Pos())
			case globalRandFuncs[n.Sel.Name] && (isPkgFunc(obj, "math/rand") || isPkgFunc(obj, "math/rand/v2")):
				g.addSource(fn, "globalrand", "rand."+n.Sel.Name, n.Pos())
			case isPkgFunc(obj, "crypto/rand"):
				g.addSource(fn, "globalrand", "crypto/rand."+n.Sel.Name, n.Pos())
			default:
				if name, bad := osenvAt(info, n); bad {
					g.addSource(fn, "osenv", name, n.Pos())
				}
			}
		case *ast.RangeStmt:
			tv, ok := info.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderIndependentFold(pass, n) || collectThenSort(pass, n, stack) {
				return true
			}
			g.addSource(fn, "maprange", "range over map "+types.ExprString(n.X), n.Pos())
		case *ast.GoStmt:
			if !sweepExempt(fn.pkgPath) {
				g.addSource(fn, "unsortedgo", "go statement", n.Pos())
			}
		case *ast.SelectStmt:
			if _, multi := multiSelect(n); multi && !selectExempt(fn.pkgPath) {
				g.addSource(fn, "selectorder", "multi-case select", n.Pos())
			}
		case *ast.CallExpr:
			if _, bad := unstableSortAt(info, n); bad {
				g.addSource(fn, "unstablesort", "unstable "+types.ExprString(n.Fun), n.Pos())
			}
			for _, leak := range ptrLeaksAt(info, n) {
				g.addSource(fn, "ptrformat", "fmt address/order leak", leak.pos)
			}
			g.addCall(fn, n, info)
		}
		return true
	})
}

// addSource records one direct source instance on fn, honouring a
// //detlint:ignore <kind> suppression on or directly above the line.
func (g *flowGraph) addSource(fn *flowFunc, kind, what string, pos token.Pos) {
	position := g.fset.Position(pos)
	inst := &srcInst{
		id:    len(g.insts),
		kind:  kind,
		what:  what,
		pos:   position,
		sup:   findSuppression(kind, position, g.sups),
		owner: fn,
	}
	g.insts = append(g.insts, inst)
	fn.sources = append(fn.sources, inst.id)
}

// addCall resolves one call expression to graph edges: a static edge
// for direct calls to declared functions, over-approximated edge sets
// for interface-method and func-value calls (candidates restricted to
// the deterministic package set — see the soundness caveats in
// ARCHITECTURE.md).
func (g *flowGraph) addCall(fn *flowFunc, call *ast.CallExpr, info *types.Info) {
	fun := ast.Unparen(call.Fun)

	// Conversions and builtins are not calls the graph tracks.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	var callee *types.Func
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			callee = obj
		case *types.Builtin, *types.TypeName, *types.Nil:
			return
		default:
			g.addDynamicByValue(fn, call, info)
			return
		}
	case *ast.SelectorExpr:
		switch obj := info.Uses[f.Sel].(type) {
		case *types.Func:
			callee = obj
		case *types.TypeName:
			return
		default:
			g.addDynamicByValue(fn, call, info)
			return
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: its body is already inlined into
		// this scan; no edge needed.
		return
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Either a generic instantiation (resolved through the inner
		// expression's Uses) or an indexed func value.
		if id := instantiatedFunc(info, fun); id != nil {
			callee = id
		} else {
			g.addDynamicByValue(fn, call, info)
			return
		}
	default:
		g.addDynamicByValue(fn, call, info)
		return
	}

	key, dynamic, ok := funcKeyOf(callee)
	if dynamic {
		// Interface method: over-approximate with every deterministic
		// method of the same name and arity.
		g.addDynamicByMethod(fn, call, callee)
		return
	}
	if !ok {
		return
	}
	if target := g.funcs[key]; target != nil {
		g.appendCall(fn, call.Pos(), target, false)
	}
	// Unresolved keys are stdlib/external functions: opaque to the
	// graph. Their nondeterministic entry points are covered by the
	// explicit source tables above.
}

// instantiatedFunc resolves f[T](…) generic instantiations.
func instantiatedFunc(info *types.Info, fun ast.Expr) *types.Func {
	var x ast.Expr
	switch f := fun.(type) {
	case *ast.IndexExpr:
		x = f.X
	case *ast.IndexListExpr:
		x = f.X
	default:
		return nil
	}
	switch f := ast.Unparen(x).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// addDynamicByMethod adds edges for an interface-method call: every
// method in a deterministic package with the same name and arity is a
// candidate. Matching is deliberately name+arity (not types.Identical):
// the loader type-checks a package twice when it is both analyzed and
// imported, so cross-universe signature identity would silently miss
// implementations.
func (g *flowGraph) addDynamicByMethod(fn *flowFunc, call *ast.CallExpr, m *types.Func) {
	ar := arityOf(m)
	for _, cand := range g.methodIndex[m.Name()] {
		if cand.arity == ar {
			g.appendCall(fn, call.Pos(), cand, true)
		}
	}
}

// addDynamicByValue adds edges for a call through a func value: every
// address-taken deterministic-package function of the same arity is a
// candidate.
func (g *flowGraph) addDynamicByValue(fn *flowFunc, call *ast.CallExpr, info *types.Info) {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	ar := [2]int{sig.Params().Len(), sig.Results().Len()}
	// Deterministic candidate iteration: addrTaken is a map, so gather
	// and sort keys first.
	keys := make([]string, 0, len(g.addrTaken))
	for k := range g.addrTaken {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	for _, k := range keys {
		cand := g.addrTaken[FuncKey(k)]
		if cand.arity == ar {
			g.appendCall(fn, call.Pos(), cand, true)
		}
	}
}

func (g *flowGraph) appendCall(fn *flowFunc, pos token.Pos, callee *flowFunc, dynamic bool) {
	position := g.fset.Position(pos)
	fn.calls = append(fn.calls, flowCall{
		pos:     pos,
		callee:  callee,
		dynamic: dynamic,
		sup:     findSuppression(FlowName, position, g.sups),
	})
}

// findSuppression returns the suppression of the given analyzer kind
// covering pos (same line or the line directly above), if any.
func findSuppression(kind string, pos token.Position, sups []Suppression) *Suppression {
	for i := range sups {
		s := &sups[i]
		if s.Analyzer != kind || s.Pos.Filename != pos.Filename {
			continue
		}
		if s.Pos.Line == pos.Line || s.Pos.Line == pos.Line-1 {
			return s
		}
	}
	return nil
}
