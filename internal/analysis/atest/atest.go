// Package atest is an analysistest-style harness for the detlint
// analyzers: it loads GOPATH-layout fixture packages from a testdata
// directory, runs an analyzer over them with the same suppression
// filtering the real driver applies, and checks the surviving
// diagnostics against "// want" comments.
//
// Expectations are written on the line they refer to:
//
//	for k := range m { // want `range over map`
//
// The backquoted (or double-quoted) string is a regexp matched against
// the diagnostic message; several on one line mean several diagnostics.
// A fixture line that violates a contract but carries a
// //detlint:ignore suppression takes no want comment — the harness
// verifying "no diagnostic here" is exactly the accepted-suppression
// test the contracts require.
package atest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRE matches one quoted expectation after a "// want" marker.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture package (an import path under srcRoot) and
// applies the analyzer, comparing unsuppressed diagnostics against the
// fixtures' want comments.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewLoader("", "", srcRoot)
	for _, pkg := range pkgs {
		dir, ok := loader.LocalDir(pkg)
		if !ok {
			t.Errorf("fixture package %q not found under %s", pkg, srcRoot)
			continue
		}
		units, err := loader.LoadDir(pkg, dir)
		if err != nil {
			t.Errorf("load %s: %v", pkg, err)
			continue
		}
		for _, unit := range units {
			diags, _, errs := analysis.RunUnit(loader, unit, []*analysis.Analyzer{a})
			for _, err := range errs {
				t.Errorf("%s: suppression error: %v", pkg, err)
			}
			checkWants(t, loader.Fset, unit.Files, diags)
		}
	}
}

// RunFlow loads every listed fixture package as one multi-package tree,
// runs the detflow interprocedural analysis over all of them together,
// and compares its frontier diagnostics against the fixtures' want
// comments (collected across every loaded file). The Flow is returned
// so tests can additionally golden its certified-API report.
func RunFlow(t *testing.T, srcRoot string, pkgs ...string) *analysis.Flow {
	t.Helper()
	loader := analysis.NewLoader("", "", srcRoot)
	var units []*analysis.Unit
	var sups []analysis.Suppression
	for _, pkg := range pkgs {
		dir, ok := loader.LocalDir(pkg)
		if !ok {
			t.Fatalf("fixture package %q not found under %s", pkg, srcRoot)
		}
		us, err := loader.LoadDir(pkg, dir)
		if err != nil {
			t.Fatalf("load %s: %v", pkg, err)
		}
		for _, unit := range us {
			s, errs := analysis.CollectSuppressions(loader.Fset, unit.Files, analysis.Known())
			for _, err := range errs {
				t.Errorf("%s: suppression error: %v", pkg, err)
			}
			sups = append(sups, s...)
			units = append(units, unit)
		}
	}
	flow := analysis.NewFlow(loader.Fset, units, srcRoot, sups)
	var files []*ast.File
	for _, unit := range units {
		files = append(files, unit.Files...)
	}
	checkWants(t, loader.Fset, files, flow.Diagnostics())
	return flow
}

// checkWants matches diagnostics against want comments line by line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(text[i+len("// want"):], -1) {
					var pat string
					var err error
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else if pat, err = strconv.Unquote(q); err != nil {
						t.Errorf("%s: bad want expectation %s: %v", pos, q, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}
