package analysis

import (
	"go/ast"
	"go/types"
)

// osenvFuncs are the package-level functions that read ambient host
// state: the environment, the process's identity, or the *shape* of the
// filesystem (directory enumeration, globbing). Explicit-path file I/O
// (os.ReadFile, os.WriteFile, …) is deliberately absent — reading a
// caller-named file is an explicit input, and internal/campaign's
// checkpoint store depends on exactly that; what breaks replayability
// is output that depends on what happens to be lying around on the
// host.
var osenvFuncs = map[string]map[string]bool{
	"os": {
		"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
		"Hostname": true, "Getpid": true, "Getppid": true, "Getuid": true,
		"Getwd": true, "UserHomeDir": true, "UserCacheDir": true,
		"UserConfigDir": true, "TempDir": true, "ReadDir": true,
	},
	"path/filepath": {
		"Walk": true, "WalkDir": true, "Glob": true,
	},
}

// osenvAt reports whether the selector expression resolves to one of the
// ambient-host-state readers, returning its rendered name ("os.Getenv").
// Shared between the Osenv analyzer and detflow's taint-source scan.
func osenvAt(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	for pkg, names := range osenvFuncs {
		if names[sel.Sel.Name] && isPkgFunc(info.Uses[sel.Sel], pkg) {
			display := pkg
			if pkg == "path/filepath" {
				display = "filepath"
			}
			return display + "." + sel.Sel.Name, true
		}
	}
	return "", false
}

// Osenv forbids ambient host-state reads in deterministic packages:
// environment variables, process identity, and filesystem enumeration
// are host configuration, not (Config, seed), so any output derived
// from them is unreproducible. _test.go files are allowlisted — test
// harnesses legitimately consult the environment (CI knobs, testdata
// discovery) without those reads reaching canonical bytes, because
// build files cannot call test-file functions.
var Osenv = &Analyzer{
	Name: "osenv",
	Doc:  "forbids os.Getenv/os.Environ/os.ReadDir/filepath.Walk/… in deterministic packages (tests allowlisted)",
	Run: func(pass *Pass) error {
		if !IsDeterministic(pass.PkgPath) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if name, bad := osenvAt(pass.Info, sel); bad && !pass.InTestFile(sel.Pos()) {
					pass.Reportf(sel.Pos(), "%s reads ambient host state (environment/filesystem shape); deterministic outputs must derive from (Config, seed) only (replayability contract, ARCHITECTURE.md)", name)
				}
				return true
			})
		}
		return nil
	},
}
