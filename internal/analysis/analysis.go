package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one determinism contract, encoded as a check over a
// type-checked package unit. The shape deliberately mirrors
// golang.org/x/tools/go/analysis so the suite can migrate onto the
// upstream framework wholesale if the dependency ever becomes available;
// the subset implemented here (name, doc, Run over a Pass) is all the
// five detlint analyzers need.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//detlint:ignore <name> <reason>" suppression comments.
	Name string

	// Doc is a short description, shown by "detlint -help".
	Doc string

	// Run executes the analyzer over one package unit, reporting
	// findings through pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one type-checked package unit (a package's build files, a
// package merged with its in-package test files, or an external _test
// package) through an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// PkgPath is the import path of the *directory* under analysis: an
	// external test package "foo_test" reports its base package's path,
	// so the deterministic-package classification is per directory.
	PkgPath string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers whose
// contract allowlists test code (wallclock: test deadlines are legitimate)
// gate on this.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// SortDiagnostics orders diagnostics by file, line, column, then analyzer
// name, so driver output is stable across runs and package load order.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// deterministicSegments names the packages bound by the repo's determinism
// contracts (ARCHITECTURE.md): everything these packages emit — traces,
// digests, tables, verdicts — must be a pure function of (Config, seed).
// cliutil, ident and hruntime are deliberately absent: cliutil and ident
// sit outside the replay path's output surface, and hruntime is the
// real-clock goroutine runtime whose whole point is wall time.
var deterministicSegments = map[string]bool{
	"sim":         true,
	"core":        true,
	"fd":          true,
	"check":       true,
	"sweep":       true,
	"campaign":    true,
	"trace":       true,
	"replay":      true,
	"experiments": true,
	"multiset":    true,
	"reduce":      true,
	"hunt":        true,
}

// IsDeterministic reports whether the package at the given import path is
// bound by the determinism contracts. A path qualifies when any path
// segment names a contract-bound package (so internal/fd's subpackages —
// fd/ohp, fd/oracle, … — inherit fd's contract), except when that segment
// directly follows "cmd": the CLI mains (cmd/experiments, …) are drivers,
// not contract-bound libraries. The module root ("repro", the hds runner
// layer) is bound too: runner iteration order feeds the engine's FIFO
// tie-break sequence, so a map range there lands directly in trace bytes.
func IsDeterministic(pkgPath string) bool {
	if pkgPath == "repro" {
		return true
	}
	segs := strings.Split(pkgPath, "/")
	for i, s := range segs {
		if deterministicSegments[s] && (i == 0 || segs[i-1] != "cmd") {
			return true
		}
	}
	return false
}

// hasSegment reports whether any path segment of pkgPath equals seg.
// Package-scoped exemptions (sweep's audited pool, hruntime's real-clock
// runtime) match by segment so fixture packages ("unsortedgo/sweep") and
// hypothetical subpackages inherit the exemption, mirroring how
// IsDeterministic classifies.
func hasSegment(pkgPath, seg string) bool {
	for _, s := range strings.Split(pkgPath, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
