package analysis

import (
	"go/ast"
	"strconv"
)

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that draw from the shared, process-global source. The
// constructors — New, NewSource, NewZipf, NewPCG, NewChaCha8 — are
// allowed: they are exactly how seeded, injected generators get built.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true, "N": true,
}

// Globalrand forbids ambient randomness in deterministic packages. The
// replay contract requires every random draw to come from an injected,
// seeded *rand.Rand (sim.Env.Rand) or from the keyed splitmix64 fate
// streams — the global math/rand source is shared process state (seeded
// randomly since Go 1.20), and crypto/rand is nondeterministic by
// design, so either one makes a verdict unreproducible from (Config,
// seed).
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbids global math/rand functions and crypto/rand in deterministic packages",
	Run: func(pass *Pass) error {
		if !IsDeterministic(pass.PkgPath) {
			return nil
		}
		for _, f := range pass.Files {
			for _, imp := range f.Imports {
				if path, _ := strconv.Unquote(imp.Path.Value); path == "crypto/rand" {
					pass.Reportf(imp.Pos(), "crypto/rand is nondeterministic by design; deterministic packages draw randomness from an injected seeded *rand.Rand or the keyed fate streams")
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !globalRandFuncs[sel.Sel.Name] {
					return true
				}
				obj := pass.Info.Uses[sel.Sel]
				if isPkgFunc(obj, "math/rand") || isPkgFunc(obj, "math/rand/v2") {
					pass.Reportf(sel.Pos(), "rand.%s draws from the process-global source; inject a seeded *rand.Rand (sim.Env.Rand) or a keyed fate stream instead", sel.Sel.Name)
				}
				return true
			})
		}
		return nil
	},
}
