package analysis

import (
	"go/ast"
)

// multiSelect reports whether n is a select statement with more than one
// case. When two or more cases are runnable, the runtime picks one
// uniformly at random (a deliberate anti-starvation measure), so the
// branch taken — and therefore any state or output derived from it — is
// not a function of (Config, seed). A single-case select without a
// default is an ordinary blocking receive/send and is allowed; a default
// clause counts as a case, because "was the channel ready when we
// polled" is scheduler timing, not seeded input.
func multiSelect(n ast.Node) (*ast.SelectStmt, bool) {
	sel, ok := n.(*ast.SelectStmt)
	if !ok || len(sel.Body.List) < 2 {
		return nil, false
	}
	return sel, true
}

// selectExempt reports whether pkgPath may use multi-case selects:
// internal/hruntime (the real-clock goroutine runtime — racing timers
// against inboxes is its whole point, and it is outside the
// deterministic set anyway) and internal/sweep (the audited worker
// pool, whose aggregation is proven order-independent). The exemption
// is shared with detflow's taint lattice, so selects in these packages
// do not taint their callers either.
func selectExempt(pkgPath string) bool {
	return hasSegment(pkgPath, "hruntime") || sweepExempt(pkgPath)
}

// Selectorder flags multi-case select statements in deterministic
// packages. Like unsortedgo, tests are not exempt: a select in a
// deterministic package's tests is still a scheduler-chosen branch and
// must be a deliberate, enumerable exception (//detlint:ignore with a
// reason) rather than ambient concurrency.
var Selectorder = &Analyzer{
	Name: "selectorder",
	Doc:  "flags multi-case select statements in deterministic packages (runtime case choice is randomized)",
	Run: func(pass *Pass) error {
		if !IsDeterministic(pass.PkgPath) || selectExempt(pass.PkgPath) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if sel, ok := multiSelect(n); ok {
					pass.Reportf(sel.Pos(), "select with multiple cases: the runtime chooses among ready cases pseudorandomly, so the branch taken is not a function of (Config, seed); restructure to a deterministic receive order or route concurrency through internal/sweep")
				}
				return true
			})
		}
		return nil
	},
}
