package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package time entry points that read or wait on
// the wall clock. Duration arithmetic (time.Duration, time.Millisecond,
// …) is untouched: constants are deterministic, clocks are not.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Wallclock forbids wall-clock reads in deterministic packages. Every
// run must be a pure function of (Config, seed); virtual time lives in
// sim.Time and advances only through the event queue, so a time.Now or a
// timer in sim/core/fd/… injects the host scheduler into "canonical"
// output. internal/hruntime (the real-clock goroutine runtime) is not a
// deterministic package, and _test.go files are allowlisted: test
// deadlines and timeouts legitimately watch the wall clock.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now/Since/Sleep/After/… in deterministic packages (tests allowlisted)",
	Run: func(pass *Pass) error {
		if !IsDeterministic(pass.PkgPath) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !wallClockFuncs[sel.Sel.Name] {
					return true
				}
				obj := pass.Info.Uses[sel.Sel]
				if !isPkgFunc(obj, "time") || pass.InTestFile(sel.Pos()) {
					return true
				}
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock; deterministic packages must use virtual sim.Time (replayability contract, ARCHITECTURE.md)", sel.Sel.Name)
				return true
			})
		}
		return nil
	},
}

// isPkgFunc reports whether obj is a package-level function of the given
// package path.
func isPkgFunc(obj types.Object, pkgPath string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
