package analysis

// All returns the detlint suite in reporting order. Each analyzer
// enforces one determinism contract from ARCHITECTURE.md; the mapping is
// documented in the "Enforcement" entries of that file's per-layer
// contract sections.
func All() []*Analyzer {
	return []*Analyzer{Maprange, Wallclock, Globalrand, Unsortedgo, Ptrformat}
}

// Known returns the analyzer-name set, used to validate
// //detlint:ignore comments.
func Known() map[string]bool {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	return known
}

// RunUnit executes the given analyzers over one loaded unit and returns
// the unsuppressed diagnostics plus the suppressions that were applied.
// Malformed suppression comments are returned as errors.
func RunUnit(loader *Loader, unit *Unit, analyzers []*Analyzer) ([]Diagnostic, []Suppression, []error) {
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     loader.Fset,
			Files:    unit.Files,
			Pkg:      unit.Pkg,
			Info:     unit.Info,
			PkgPath:  unit.PkgPath,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, []error{err}
		}
	}
	sups, errs := CollectSuppressions(loader.Fset, unit.Files, known)
	diags = FilterSuppressed(diags, sups)
	SortDiagnostics(diags)
	return diags, sups, errs
}
