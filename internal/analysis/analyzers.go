package analysis

// All returns the detlint suite in reporting order. Each analyzer
// enforces one determinism contract from ARCHITECTURE.md; the mapping is
// documented in the "Enforcement" entries of that file's per-layer
// contract sections.
func All() []*Analyzer {
	return []*Analyzer{Maprange, Wallclock, Globalrand, Unsortedgo, Ptrformat, Selectorder, Unstablesort, Osenv}
}

// Known returns the analyzer-name set, used to validate
// //detlint:ignore comments. FlowName is included: the interprocedural
// pass is not a per-unit Analyzer, but its call-site diagnostics are
// suppressed through the same protocol.
func Known() map[string]bool {
	known := map[string]bool{FlowName: true}
	for _, a := range All() {
		known[a.Name] = true
	}
	return known
}

// RunUnit executes the given analyzers over one loaded unit and returns
// the unsuppressed diagnostics plus the suppressions that were applied.
// Malformed suppression comments are returned as errors. Suppression
// comments are validated against the full Known() set, not just the
// analyzers being run: a fixture exercising one analyzer may carry
// suppressions for another.
func RunUnit(loader *Loader, unit *Unit, analyzers []*Analyzer) ([]Diagnostic, []Suppression, []error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     loader.Fset,
			Files:    unit.Files,
			Pkg:      unit.Pkg,
			Info:     unit.Info,
			PkgPath:  unit.PkgPath,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, []error{err}
		}
	}
	sups, errs := CollectSuppressions(loader.Fset, unit.Files, Known())
	diags = FilterSuppressed(diags, sups)
	SortDiagnostics(diags)
	return diags, sups, errs
}
