package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestCollectSuppressions(t *testing.T) {
	fset, files := parseOne(t, `package p

//detlint:ignore maprange a justified reason
var a int

//detlint:ignore maprange
var b int

//detlint:ignore nosuch some reason
var c int

//detlint:ignore
var d int

//detlint:ignoreXYZ not ours at all
var e int
`)
	known := map[string]bool{"maprange": true}
	sups, errs := CollectSuppressions(fset, files, known)
	if len(sups) != 1 {
		t.Fatalf("got %d suppressions, want 1: %v", len(sups), sups)
	}
	if s := sups[0]; s.Analyzer != "maprange" || s.Reason != "a justified reason" || s.Pos.Line != 3 {
		t.Errorf("parsed suppression = %+v", s)
	}
	if len(errs) != 3 {
		t.Fatalf("got %d errors, want 3 (missing reason, unknown analyzer, bare marker): %v", len(errs), errs)
	}
	for _, want := range []string{"missing reason", "unknown analyzer", "missing analyzer name"} {
		found := false
		for _, err := range errs {
			if strings.Contains(err.Error(), want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no error mentioning %q in %v", want, errs)
		}
	}
}

func TestFilterSuppressed(t *testing.T) {
	mk := func(file string, line int, analyzer string) Diagnostic {
		return Diagnostic{Analyzer: analyzer, Pos: token.Position{Filename: file, Line: line}}
	}
	sups := []Suppression{{Pos: token.Position{Filename: "a.go", Line: 10}, Analyzer: "maprange", Reason: "r"}}
	diags := []Diagnostic{
		mk("a.go", 10, "maprange"),  // same line: suppressed
		mk("a.go", 11, "maprange"),  // line below: suppressed
		mk("a.go", 12, "maprange"),  // two below: kept
		mk("a.go", 10, "wallclock"), // other analyzer: kept
		mk("b.go", 10, "maprange"),  // other file: kept
	}
	kept := FilterSuppressed(diags, sups)
	if len(kept) != 3 {
		t.Fatalf("kept %d diagnostics, want 3: %v", len(kept), kept)
	}
	for _, d := range kept {
		if d.Pos.Filename == "a.go" && d.Pos.Line != 12 && d.Analyzer == "maprange" {
			t.Errorf("diagnostic should have been suppressed: %v", d)
		}
	}
}
