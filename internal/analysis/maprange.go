package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maprange flags range-over-map loops in deterministic packages. Map
// iteration order is randomized by the runtime, so any result that
// depends on visit order — appended slices, last-writer-wins variables,
// early exits, rendered output — differs run to run. Two shapes are
// proven order-independent and accepted without a suppression:
//
//   - collect-then-sort: the loop only appends keys/values to slices and
//     every such slice is passed to a sort/slices sorting call later in
//     the same function;
//   - order-independent fold: every statement in the body is a
//     commutative accumulation (x += e, x++, bitwise-op-assign), an
//     idempotent constant assignment, a keyed map write m[k] = e or
//     delete(m2, k), or a min/max tracking pattern (if v > best
//     { best = v }) — with right-hand sides that neither call impure
//     functions nor read the loop's own accumulators.
//
// Everything else needs a sort, a rewrite, or a justified
// //detlint:ignore.
var Maprange = &Analyzer{
	Name: "maprange",
	Doc:  "flags range over a map in deterministic packages unless sorted or provably order-independent",
	Run:  runMaprange,
}

func runMaprange(pass *Pass) error {
	if !IsDeterministic(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderIndependentFold(pass, rs) || collectThenSort(pass, rs, stack) {
				return true
			}
			pass.Reportf(rs.Pos(), "range over map %s: iteration order is nondeterministic; sort the keys first or fold order-independently (determinism contract, ARCHITECTURE.md)", types.ExprString(rs.X))
			return true
		})
	}
	return nil
}

// foldScope carries what the fold prover knows about one range body.
type foldScope struct {
	pass      *Pass
	keyObj    types.Object         // the range key variable (may be nil)
	valObj    types.Object         // the range value variable (may be nil)
	assigned  map[types.Object]int // ident-assignment counts inside the body
	localDefs map[types.Object]bool
}

// orderIndependentFold reports whether every statement in the range body
// is one of the proven order-independent shapes.
func orderIndependentFold(pass *Pass, rs *ast.RangeStmt) bool {
	sc := newFoldScope(pass, rs)
	for _, s := range rs.Body.List {
		if !sc.safeStmt(s) {
			return false
		}
	}
	return true
}

// newFoldScope scans the range body once, recording which identifiers it
// assigns (order-sensitive to read) and which it defines (iteration-local,
// safe to read).
func newFoldScope(pass *Pass, rs *ast.RangeStmt) *foldScope {
	sc := &foldScope{
		pass:      pass,
		keyObj:    rangeVarObj(pass, rs.Key),
		valObj:    rangeVarObj(pass, rs.Value),
		assigned:  map[types.Object]int{},
		localDefs: map[types.Object]bool{},
	}
	markWrite := func(e ast.Expr) {
		// An indexed write m[k] = … mutates m: record the base so reads
		// of other entries are recognized as order-sensitive.
		if idx, ok := e.(*ast.IndexExpr); ok {
			e = idx.X
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				sc.assigned[obj]++
			}
		}
	}
	markDef := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if obj, isDef := pass.Info.Defs[id]; isDef && obj != nil {
			// Defined inside the body → iteration-scoped: reads of it
			// cannot observe cross-iteration order.
			sc.localDefs[obj] = true
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				markWrite(lhs)
				markDef(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(s.X)
		case *ast.RangeStmt:
			markDef(s.Key)
			markDef(s.Value)
		case *ast.ValueSpec:
			for _, name := range s.Names {
				markDef(name)
			}
		}
		return true
	})
	return sc
}

func rangeVarObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return pass.Info.ObjectOf(id)
}

func (sc *foldScope) safeStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.ReturnStmt:
		// A `return <constants>` is an existence or validation scan:
		// whichever iteration triggers it returns the same values, so
		// visit order cannot change the function's result.
		for _, r := range s.Results {
			if sc.pass.Info.Types[r].Value == nil {
				return false
			}
		}
		return true
	case *ast.BlockStmt:
		for _, inner := range s.List {
			if !sc.safeStmt(inner) {
				return false
			}
		}
		return true
	case *ast.IfStmt:
		return sc.safeIf(s)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && sc.safeDelete(call)
	case *ast.AssignStmt:
		return sc.safeAssign(s)
	case *ast.DeclStmt:
		// var declarations introduce iteration-scoped names (collected
		// as localDefs); initializers must be order-insensitive.
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if !sc.safeExpr(v, nil) {
					return false
				}
			}
		}
		return true
	case *ast.RangeStmt:
		// A nested range is safe when its operand is order-insensitive
		// and its body is: the inner loop's own visit order is either
		// deterministic (slices) or covered by the same proof (maps).
		if !sc.safeExpr(s.X, nil) {
			return false
		}
		return sc.safeStmt(s.Body)
	case *ast.ForStmt:
		if s.Init != nil && !sc.safeStmt(s.Init) {
			return false
		}
		if s.Cond != nil && !sc.safeExpr(s.Cond, nil) {
			return false
		}
		if s.Post != nil && !sc.safeStmt(s.Post) {
			return false
		}
		return sc.safeStmt(s.Body)
	}
	return false
}

// safeAssign accepts commutative op-assignments, idempotent
// single-constant assignments, and keyed map writes.
func (sc *foldScope) safeAssign(s *ast.AssignStmt) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative fold: safe when the contribution of each entry is
		// independent of visit order, i.e. the RHS reads no accumulator.
		return sc.safeExpr(rhs, nil)
	case token.ASSIGN, token.DEFINE:
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			// m[k-derived] = e visits each key once; entries are
			// independent. The RHS may read the entry being written
			// (m[k] = append(m[k], v)) but no other mutated state.
			if sc.keyObj != nil && sc.mentions(idx.Index, sc.keyObj) {
				return sc.safeExpr(idx.Index, nil) && sc.safeExpr(rhs, idx)
			}
			// seen[x] = <constant> is idempotent whatever the index:
			// colliding iterations write the same value — provided this
			// is the only statement mutating the indexed collection.
			if base, ok := idx.X.(*ast.Ident); ok {
				obj := sc.pass.Info.ObjectOf(base)
				tv := sc.pass.Info.Types[rhs]
				return obj != nil && sc.assigned[obj] == 1 && tv.Value != nil &&
					sc.safeExpr(idx.Index, nil)
			}
			return false
		}
		if id, ok := lhs.(*ast.Ident); ok {
			obj := sc.pass.Info.ObjectOf(id)
			if obj == nil {
				return false
			}
			// Iteration-local temps (defined inside the body) may hold
			// anything order-insensitive.
			if sc.localDefs[obj] {
				return sc.safeExpr(rhs, nil)
			}
			// x = <constant> is idempotent — every iteration writes the
			// same value — provided no other statement writes x.
			tv := sc.pass.Info.Types[rhs]
			return sc.assigned[obj] == 1 && tv.Value != nil
		}
	}
	return false
}

// safeIf accepts the min/max tracking pattern and conditionals whose
// condition is order-insensitive and whose branches are safe.
func (sc *foldScope) safeIf(s *ast.IfStmt) bool {
	if s.Init != nil {
		return false
	}
	if sc.minMaxPattern(s) {
		return true
	}
	if !sc.safeExpr(s.Cond, nil) {
		return false
	}
	if !sc.safeStmt(s.Body) {
		return false
	}
	return s.Else == nil || sc.safeStmt(s.Else)
}

// minMaxPattern matches `if candidate REL best { best = candidate }` (no
// else, no init): running min/max is a commutative, associative,
// idempotent fold, so visit order cannot change the result.
func (sc *foldScope) minMaxPattern(s *ast.IfStmt) bool {
	if s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	// Peel order-insensitive guard conjuncts: `if v != sentinel && v > best
	// { best = v }` is still a running max, just over a filtered subset.
	cond, ok := s.Cond.(*ast.BinaryExpr)
	for ok && cond.Op == token.LAND && sc.safeExpr(cond.X, nil) {
		cond, ok = cond.Y.(*ast.BinaryExpr)
	}
	if !ok {
		return false
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	asg, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	best, cand := types.ExprString(asg.Lhs[0]), types.ExprString(asg.Rhs[0])
	x, y := types.ExprString(cond.X), types.ExprString(cond.Y)
	if !(x == best && y == cand) && !(x == cand && y == best) {
		return false
	}
	// The candidate side must itself be order-insensitive (typically the
	// range value or a projection of it).
	return sc.safeExpr(asg.Rhs[0], nil)
}

// safeDelete accepts delete(m, k-derived) where m is not the map being
// ranged over (deleting from the ranged map mid-iteration changes which
// entries are visited).
func (sc *foldScope) safeDelete(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "delete" || len(call.Args) != 2 {
		return false
	}
	if obj, ok := sc.pass.Info.Uses[id]; !ok || obj != types.Universe.Lookup("delete") {
		return false
	}
	return sc.safeExpr(call.Args[0], nil) && sc.safeExpr(call.Args[1], nil)
}

// pureBuiltins are call targets a fold RHS may use: they read their
// operands and nothing else.
var pureBuiltins = map[string]bool{"len": true, "cap": true, "min": true, "max": true, "abs": true, "real": true, "imag": true, "complex": true}

// safeExpr reports whether e is order-insensitive: it contains no call
// (except pure builtins and type conversions) and reads no variable the
// loop body assigns. selfEntry, when non-nil, is the exact map entry
// being written by the enclosing assignment, which the RHS may read.
func (sc *foldScope) safeExpr(e ast.Expr, selfEntry *ast.IndexExpr) bool {
	safe := true
	selfStr := ""
	if selfEntry != nil {
		selfStr = types.ExprString(selfEntry)
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if !safe {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if pureBuiltins[id.Name] && sc.pass.Info.Uses[id] == types.Universe.Lookup(id.Name) {
					return true
				}
				if _, isType := sc.pass.Info.Uses[id].(*types.TypeName); isType {
					return true // conversion
				}
			}
			if sc.isConversion(n.Fun) {
				return true
			}
			safe = false
			return false
		case *ast.IndexExpr:
			if selfStr != "" && types.ExprString(n) == selfStr {
				return false // the entry being written; don't descend
			}
		case *ast.Ident:
			obj := sc.pass.Info.ObjectOf(n)
			if obj != nil && obj != sc.keyObj && obj != sc.valObj &&
				sc.assigned[obj] > 0 && !sc.localDefs[obj] {
				safe = false
				return false
			}
		case *ast.FuncLit:
			safe = false
			return false
		}
		return true
	})
	return safe
}

// isConversion reports whether fun denotes a type (T(x) is a conversion,
// not a call).
func (sc *foldScope) isConversion(fun ast.Expr) bool {
	tv, ok := sc.pass.Info.Types[fun]
	return ok && tv.IsType()
}

// sortPkgs are the packages whose calls count as sorting a collected
// slice.
var sortPkgs = map[string]bool{"sort": true, "slices": true}

// collectThenSort reports whether the loop only appends to slices
// (possibly behind order-insensitive guards) that are all passed to a
// sort/slices call later in the same function.
func collectThenSort(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	sc := newFoldScope(pass, rs)
	collected := map[types.Object]bool{}
	if !collectAppends(sc, rs.Body.List, collected) || len(collected) == 0 {
		return false
	}
	body := enclosingFuncBody(stack)
	if body == nil {
		return false
	}
	for obj := range collected {
		if !sortedAfter(pass, body, obj, rs.End()) {
			return false
		}
	}
	return true
}

// collectAppends walks statements accepting appends and conditionals that
// guard appends; the guard must not read anything the loop assigns (a
// guard over a collected slice would make the collected *set* depend on
// visit order, not just its order).
func collectAppends(sc *foldScope, stmts []ast.Stmt, collected map[types.Object]bool) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			obj, ok := appendTarget(sc.pass, s)
			if !ok {
				return false
			}
			collected[obj] = true
		case *ast.IfStmt:
			if s.Init != nil || !sc.safeExpr(s.Cond, nil) {
				return false
			}
			if !collectAppends(sc, s.Body.List, collected) {
				return false
			}
			if s.Else != nil {
				block, ok := s.Else.(*ast.BlockStmt)
				if !ok || !collectAppends(sc, block.List, collected) {
					return false
				}
			}
		default:
			return false
		}
	}
	return true
}

// appendTarget matches `s = append(s, …)` and returns s's object.
func appendTarget(pass *Pass, s ast.Stmt) (types.Object, bool) {
	asg, ok := s.(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return nil, false
	}
	id, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || pass.Info.Uses[fn] != types.Universe.Lookup("append") {
		return nil, false
	}
	if len(call.Args) == 0 || types.ExprString(call.Args[0]) != id.Name {
		return nil, false
	}
	obj := pass.Info.ObjectOf(id)
	return obj, obj != nil
}

// enclosingFuncBody finds the innermost function body on the node stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// sortedAfter reports whether a sort/slices call that mentions obj
// appears after pos within body.
func sortedAfter(pass *Pass, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fnObj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fnObj.Pkg() == nil || !sortPkgs[fnObj.Pkg().Path()] {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
					mentioned = true
					return false
				}
				return true
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentions reports whether e references obj.
func (sc *foldScope) mentions(e ast.Expr, obj types.Object) bool {
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && sc.pass.Info.ObjectOf(id) == obj {
			hit = true
			return false
		}
		return true
	})
	return hit
}
