// Package cliutil holds small helpers shared by the command-line tools.
package cliutil
