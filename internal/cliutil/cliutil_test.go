package cliutil

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/sim"
)

// TestCampaignFlags checks parse-and-validate of the sharding flag set.
func TestCampaignFlags(t *testing.T) {
	parse := func(args ...string) (campaign.Config, error) {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		finish := CampaignFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatalf("flag parse %v: %v", args, err)
		}
		return finish()
	}

	cfg, err := parse()
	if err != nil || cfg != (campaign.Config{Shards: 1, Shard: -1}) {
		t.Fatalf("default campaign config = %+v, %v", cfg, err)
	}
	cfg, err = parse("-shards", "4", "-shard", "2", "-checkpoint-dir", "/tmp/x")
	if err != nil || cfg.Shards != 4 || cfg.Shard != 2 || cfg.Dir != "/tmp/x" {
		t.Fatalf("shard-only config = %+v, %v", cfg, err)
	}
	cfg, err = parse("-shards", "4", "-checkpoint-dir", "/tmp/x", "-resume")
	if err != nil || !cfg.Resume || cfg.Shard != -1 {
		t.Fatalf("resume config = %+v, %v", cfg, err)
	}
	for _, bad := range [][]string{
		{"-shards", "0"},
		{"-shards", "-2"},
		{"-shards", "3", "-shard", "3", "-checkpoint-dir", "/tmp/x"},
		{"-shard", "-2"},
		{"-shards", "3", "-shard", "1"}, // shard without checkpoint dir
		{"-resume"},                     // resume without checkpoint dir
	} {
		if cfg, err := parse(bad...); err == nil {
			t.Errorf("CampaignFlags(%v) = %+v, want error", bad, cfg)
		}
	}
}

func TestParseCrashes(t *testing.T) {
	tests := []struct {
		in      string
		want    map[sim.PID]sim.Time
		wantErr bool
	}{
		{"", map[sim.PID]sim.Time{}, false},
		{"   ", map[sim.PID]sim.Time{}, false},
		{"1:30", map[sim.PID]sim.Time{1: 30}, false},
		{"1:30,4:120", map[sim.PID]sim.Time{1: 30, 4: 120}, false},
		{" 2:5 , 3:9 ", map[sim.PID]sim.Time{2: 5, 3: 9}, false},
		{"1", nil, true},
		{"x:30", nil, true},
		{"1:y", nil, true},
		{"-1:30", nil, true},
		{"1:-30", nil, true},
		{"1:30,1:40", nil, true},
	}
	for _, tt := range tests {
		got, err := ParseCrashes(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseCrashes(%q) = %v, want error", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCrashes(%q): %v", tt.in, err)
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("ParseCrashes(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for p, at := range tt.want {
			if got[p] != at {
				t.Errorf("ParseCrashes(%q)[%d] = %d, want %d", tt.in, p, got[p], at)
			}
		}
	}
}

func TestFormatTagCounts(t *testing.T) {
	got := FormatTagCounts(map[string]int{"PH1": 10, "COORD": 5})
	if got != "COORD:5 PH1:10" {
		t.Errorf("FormatTagCounts = %q", got)
	}
	if got := FormatTagCounts(nil); got != "" {
		t.Errorf("FormatTagCounts(nil) = %q", got)
	}
}

func TestParseNet(t *testing.T) {
	good := []struct {
		in   string
		want string
	}{
		{"async", "async[1..8]"},
		{"async:12", "async[1..12]"},
		{"psync:50:3", "partial-sync[GST=50 δ=3]"},
		{"timely:4", "timely[δ=4]"},
		{"pareto", "pareto[xm=2 α=1.50 cap=15]"},
		{"pareto:1.1:30", "pareto[xm=2 α=1.10 cap=30]"},
		{"lognormal:0.7", "lognormal[med=3 σ=0.70 cap=15]"},
		{"alt:40:200", "alternating[T=40 δ=3 bad=30 loss=0.30 calm=200]"},
		{"asym:20", "asym[async[1..6] skew<=20]"},
	}
	for _, tt := range good {
		m, err := ParseNet(tt.in)
		if err != nil {
			t.Errorf("ParseNet(%q): %v", tt.in, err)
			continue
		}
		if m.String() != tt.want {
			t.Errorf("ParseNet(%q) = %s, want %s", tt.in, m, tt.want)
		}
	}
	for _, bad := range []string{"", "warp", "async:x", "pareto:x", "psync:1:y", "alt:z"} {
		if m, err := ParseNet(bad); err == nil {
			t.Errorf("ParseNet(%q) = %v, want error", bad, m)
		}
	}
}

// TestParseNetRejectsOutOfRangeParams pins the fail-fast contract: the sim
// models clamp out-of-range parameters to defaults, so a negative or zero
// value must be rejected at the CLI instead of silently skewing the
// scenario.
func TestParseNetRejectsOutOfRangeParams(t *testing.T) {
	for _, bad := range []string{
		"async:-3", "async:0",
		"timely:-1", "timely:0",
		"psync:-10:3", "psync:50:0", "psync:50:-1", "psync:-10:0",
		"pareto:-1:5", "pareto:0", "pareto:1.5:-5", "pareto:1.5:1",
		"lognormal:-0.7", "lognormal:0", "lognormal:1:-15", "lognormal:1:0",
		"alt:-40", "alt:0", "alt:40:-200",
		"asym:-10", "asym:0",
	} {
		if m, err := ParseNet(bad); err == nil {
			t.Errorf("ParseNet(%q) = %v, want error (out-of-range parameter must not clamp)", bad, m)
		}
	}
	// Boundary values that are legitimately in range must still parse.
	for _, good := range []string{"async:1", "timely:1", "psync:0:1", "pareto:0.1:2", "lognormal:0.1:1", "alt:1:0", "asym:1"} {
		if _, err := ParseNet(good); err != nil {
			t.Errorf("ParseNet(%q): %v, want ok (boundary value)", good, err)
		}
	}
}

func TestParseChurn(t *testing.T) {
	spec, err := ParseChurn("0.2:2:40:60")
	if err != nil {
		t.Fatalf("ParseChurn: %v", err)
	}
	if spec.Fraction != 0.2 || spec.Cycles != 2 || spec.Down != 40 || spec.Up != 60 {
		t.Fatalf("ParseChurn = %+v", spec)
	}
	if spec, err := ParseChurn("0.5"); err != nil || spec.Fraction != 0.5 {
		t.Fatalf("ParseChurn(0.5) = %+v, %v", spec, err)
	}
	if spec, err := ParseChurn(""); err != nil || spec.Fraction != 0 {
		t.Fatalf("ParseChurn(\"\") = %+v, %v", spec, err)
	}
	// The optional fifth field overrides the default stagger of 7; 0 keeps
	// churners in phase (only the cycle parameters must be positive).
	if spec, err := ParseChurn("0.2:2:40:60:3"); err != nil || spec.Stagger != 3 {
		t.Fatalf("ParseChurn(0.2:2:40:60:3) = %+v, %v", spec, err)
	}
	if spec, err := ParseChurn("0.2:2:40:60:0"); err != nil || spec.Stagger != 0 {
		t.Fatalf("ParseChurn(0.2:2:40:60:0) = %+v, %v", spec, err)
	}
	for _, bad := range []string{"x", "0", "1.5", "-0.2", "0.2:0", "0.2:2:0", "0.2:2:40:0", "0.2:2:40:60:7:9", "0.2:2:40:60:-1", "0.2:a"} {
		if spec, err := ParseChurn(bad); err == nil {
			t.Errorf("ParseChurn(%q) = %+v, want error", bad, spec)
		}
	}
}

// TestParseNetLossy pins the first-class loss model's spec: good forms,
// boundary values, and the MaxLossP rejection (the model would clamp, and
// clamping at the CLI boundary is exactly the silent-scenario-skew bug
// class ParseNet exists to prevent).
func TestParseNetLossy(t *testing.T) {
	good := []struct {
		in   string
		want string
	}{
		{"lossy", "lossy[p=0.20 async[1..8]]"},
		{"lossy:0.5", "lossy[p=0.50 async[1..8]]"},
		{"lossy:0.5:12", "lossy[p=0.50 async[1..12]]"},
		{"lossy:0", "lossy[p=0.00 async[1..8]]"},     // boundary: lossless
		{"lossy:0.89", "lossy[p=0.89 async[1..8]]"},  // boundary: just under MaxLossP
		{"lossy:0.2:1", "lossy[p=0.20 async[1..1]]"}, // boundary: minimum delay
	}
	for _, tt := range good {
		m, err := ParseNet(tt.in)
		if err != nil {
			t.Errorf("ParseNet(%q): %v", tt.in, err)
			continue
		}
		if m.String() != tt.want {
			t.Errorf("ParseNet(%q) = %s, want %s", tt.in, m, tt.want)
		}
	}
	for _, bad := range []string{
		"lossy:x", "lossy:0.2:y", // malformed numbers
		"lossy:-0.1",                        // negative probability
		"lossy:0.9", "lossy:1", "lossy:1.5", // at or above MaxLossP: would clamp
		"lossy:0.2:0", "lossy:0.2:-3", // out-of-range base delay
		"lossy:0.2:8:9", // extra field
	} {
		if m, err := ParseNet(bad); err == nil {
			t.Errorf("ParseNet(%q) = %v, want error", bad, m)
		}
	}
}

// TestParsePartitions covers the partition-schedule flag end to end: the
// happy path, blank input, and every malformed-field error path (matching
// the ParseChurn/ParseCrashes precedent).
func TestParsePartitions(t *testing.T) {
	ws, err := ParsePartitions("20-60@3,100-140@2")
	if err != nil {
		t.Fatalf("ParsePartitions: %v", err)
	}
	want := []sim.PartitionWindow{{From: 20, To: 60, Cut: 3}, {From: 100, To: 140, Cut: 2}}
	if len(ws) != 2 || ws[0] != want[0] || ws[1] != want[1] {
		t.Fatalf("ParsePartitions = %+v, want %+v", ws, want)
	}
	if ws, err := ParsePartitions("  "); err != nil || ws != nil {
		t.Fatalf("ParsePartitions(blank) = %+v, %v", ws, err)
	}
	if ws, err := ParsePartitions(" 0-1@1 "); err != nil || len(ws) != 1 {
		// Boundary: earliest possible start, shortest possible window,
		// smallest possible cut.
		t.Fatalf("ParsePartitions(0-1@1) = %+v, %v", ws, err)
	}
	for _, bad := range []string{
		"20-60",       // missing cut
		"20@3",        // missing span
		"x-60@3",      // malformed start
		"20-y@3",      // malformed end
		"20-60@z",     // malformed cut
		"-5-60@3",     // negative start
		"20-20@3",     // empty window (to == from)
		"60-20@3",     // inverted window
		"20-60@0",     // cut 0 severs nothing
		"20-60@-2",    // negative cut
		"20-60@3,,",   // empty trailing entry
		"20-60@3 4-5", // garbage second entry
	} {
		if ws, err := ParsePartitions(bad); err == nil {
			t.Errorf("ParsePartitions(%q) = %+v, want error", bad, ws)
		}
	}
}

// TestValidatePartitionN pins the cut-vs-population check: a cut at or
// beyond n puts everyone on one side.
func TestValidatePartitionN(t *testing.T) {
	ws := []sim.PartitionWindow{{From: 10, To: 20, Cut: 3}}
	if err := ValidatePartitionN(ws, 5); err != nil {
		t.Errorf("cut 3 of n=5: %v, want nil", err)
	}
	if err := ValidatePartitionN(ws, 4); err != nil {
		t.Errorf("cut 3 of n=4 (boundary): %v, want nil", err)
	}
	if err := ValidatePartitionN(ws, 3); err == nil {
		t.Error("cut 3 of n=3 severs nothing, want error")
	}
	if err := ValidatePartitionN(ws, 2); err == nil {
		t.Error("cut 3 of n=2 severs nothing, want error")
	}
	if err := ValidatePartitionN(nil, 1); err != nil {
		t.Errorf("empty schedule: %v, want nil", err)
	}
}

// TestValidatePartitionHorizon pins the truncating-horizon check: a window
// still open at the horizon means the network never heals inside the run,
// exactly like a churn schedule the horizon cuts short.
func TestValidatePartitionHorizon(t *testing.T) {
	ws := []sim.PartitionWindow{{From: 10, To: 60, Cut: 2}, {From: 70, To: 90, Cut: 2}}
	if err := ValidatePartitionHorizon(ws, 100); err != nil {
		t.Errorf("horizon 100 > last end 90: %v, want nil", err)
	}
	if err := ValidatePartitionHorizon(ws, 91); err != nil {
		t.Errorf("horizon 91 (boundary: strictly after the last end): %v, want nil", err)
	}
	if err := ValidatePartitionHorizon(ws, 90); err == nil {
		t.Error("horizon 90 == last end truncates the heal, want error")
	}
	if err := ValidatePartitionHorizon(ws, 50); err == nil {
		t.Error("horizon 50 leaves a window open, want error")
	}
	if err := ValidatePartitionHorizon(nil, 1); err != nil {
		t.Errorf("empty schedule: %v, want nil", err)
	}
}

func TestParseNetRejectsExtraFields(t *testing.T) {
	for _, bad := range []string{"async:8:9", "asym:5:9", "psync:50:3:7", "timely:1:2"} {
		if m, err := ParseNet(bad); err == nil {
			t.Errorf("ParseNet(%q) = %v, want error (extra fields must not be dropped)", bad, m)
		}
	}
}

// TestValidateTraceBuf pins the -trace-buf boundary: 0 (default) and
// positive sizes pass, negative sizes are rejected with an error naming
// the flag instead of flowing into the recorder and panicking mid-run.
func TestValidateTraceBuf(t *testing.T) {
	for _, ok := range []int{0, 1, 4096, 1 << 20} {
		if err := ValidateTraceBuf(ok); err != nil {
			t.Errorf("ValidateTraceBuf(%d) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []int{-1, -4096} {
		err := ValidateTraceBuf(bad)
		if err == nil {
			t.Errorf("ValidateTraceBuf(%d) = nil, want error", bad)
			continue
		}
		if !strings.Contains(err.Error(), "-trace-buf") {
			t.Errorf("ValidateTraceBuf(%d) error %q does not name the flag", bad, err)
		}
	}
}

func TestValidateTraceFormat(t *testing.T) {
	cases := []struct {
		format, trace string
		wantErr       string // substring; empty = valid
	}{
		{"text", "", ""},
		{"text", "out.trace", ""},
		{"binary", "out.trace", ""},
		{"binary", "", "without -trace"},
		{"protobuf", "out.trace", "want text or binary"},
		{"", "", "want text or binary"},
	}
	for _, c := range cases {
		err := ValidateTraceFormat(c.format, c.trace)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("ValidateTraceFormat(%q, %q) = %v, want nil", c.format, c.trace, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ValidateTraceFormat(%q, %q) = %v, want error containing %q", c.format, c.trace, err, c.wantErr)
		}
	}
}

func TestValidateBeaters(t *testing.T) {
	cases := []struct {
		beaters, n int
		wantErr    string // substring; empty = valid
	}{
		{0, 5, ""}, // 0 = all n
		{1, 5, ""}, // boundary: minimum selective value
		{5, 5, ""}, // boundary: exactly n
		{6, 5, "exceeds n=5"},
		{1, 0, "exceeds n=0"},
		{-1, 5, "must be ≥ 0"},
	}
	for _, c := range cases {
		err := ValidateBeaters(c.beaters, c.n)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("ValidateBeaters(%d, %d) = %v, want nil", c.beaters, c.n, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ValidateBeaters(%d, %d) = %v, want error containing %q", c.beaters, c.n, err, c.wantErr)
		}
	}
}
