package cliutil

import (
	"testing"

	"repro/internal/sim"
)

func TestParseCrashes(t *testing.T) {
	tests := []struct {
		in      string
		want    map[sim.PID]sim.Time
		wantErr bool
	}{
		{"", map[sim.PID]sim.Time{}, false},
		{"   ", map[sim.PID]sim.Time{}, false},
		{"1:30", map[sim.PID]sim.Time{1: 30}, false},
		{"1:30,4:120", map[sim.PID]sim.Time{1: 30, 4: 120}, false},
		{" 2:5 , 3:9 ", map[sim.PID]sim.Time{2: 5, 3: 9}, false},
		{"1", nil, true},
		{"x:30", nil, true},
		{"1:y", nil, true},
		{"-1:30", nil, true},
		{"1:-30", nil, true},
		{"1:30,1:40", nil, true},
	}
	for _, tt := range tests {
		got, err := ParseCrashes(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseCrashes(%q) = %v, want error", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCrashes(%q): %v", tt.in, err)
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("ParseCrashes(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for p, at := range tt.want {
			if got[p] != at {
				t.Errorf("ParseCrashes(%q)[%d] = %d, want %d", tt.in, p, got[p], at)
			}
		}
	}
}

func TestFormatTagCounts(t *testing.T) {
	got := FormatTagCounts(map[string]int{"PH1": 10, "COORD": 5})
	if got != "COORD:5 PH1:10" {
		t.Errorf("FormatTagCounts = %q", got)
	}
	if got := FormatTagCounts(nil); got != "" {
		t.Errorf("FormatTagCounts(nil) = %q", got)
	}
}
