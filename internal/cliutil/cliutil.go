package cliutil

import (
	"flag"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/campaign"
	"repro/internal/sim"
)

// CampaignFlags registers the campaign sharding flags (-shards, -shard,
// -checkpoint-dir, -resume) on fs and returns a finalizer to call after
// fs.Parse: it validates the combination and yields the campaign.Config.
func CampaignFlags(fs *flag.FlagSet) func() (campaign.Config, error) {
	shards := fs.Int("shards", 1, "split each campaign into this many deterministic shards")
	shard := fs.Int("shard", -1, "run only this shard index (0-based) and write its checkpoint; -1 runs all shards")
	dir := fs.String("checkpoint-dir", "", "directory for per-shard checkpoint files (empty = in-memory, no files)")
	resume := fs.Bool("resume", false, "skip shards whose checkpoint in -checkpoint-dir already verifies; re-run the rest")
	return func() (campaign.Config, error) {
		if *shards < 1 {
			return campaign.Config{}, fmt.Errorf("-shards %d: want at least 1", *shards)
		}
		if *shard < -1 || *shard >= *shards {
			return campaign.Config{}, fmt.Errorf("-shard %d out of range (have %d shards; -1 runs all)", *shard, *shards)
		}
		if *shard >= 0 && *dir == "" {
			return campaign.Config{}, fmt.Errorf("-shard %d requires -checkpoint-dir (the shard's output would be lost)", *shard)
		}
		if *resume && *dir == "" {
			return campaign.Config{}, fmt.Errorf("-resume requires -checkpoint-dir")
		}
		return campaign.Config{Shards: *shards, Shard: *shard, Dir: *dir, Resume: *resume}, nil
	}
}

// ValidateTraceBuf checks a -trace-buf flag value before it reaches
// trace.NewSpillRecorder: 0 selects the default spill batch size and
// positive values are used as given, but a negative value would flow raw
// into the staging buffer's capacity and panic mid-run — reject it at the
// flag boundary with a message naming the flag.
func ValidateTraceBuf(v int) error {
	if v < 0 {
		return fmt.Errorf("-trace-buf %d: the spill batch size must be ≥ 0 (0 = default)", v)
	}
	return nil
}

// ValidateTraceFormat checks the -trace-format / -trace flag combination
// at parse time. The format must be "text" or "binary", and a non-default
// format without -trace is rejected rather than silently ignored: the user
// asked for an encoding of a trace that will never be written, which is
// always a misassembled command line.
func ValidateTraceFormat(format, tracePath string) error {
	switch format {
	case "text", "binary":
	default:
		return fmt.Errorf("-trace-format %q: want text or binary", format)
	}
	if format != "text" && tracePath == "" {
		return fmt.Errorf("-trace-format %s without -trace: there is no trace to encode (pass -trace <file>)", format)
	}
	return nil
}

// ValidateBeaters checks -beaters against the system size n: 0 selects
// every process, 1..n selects that many, and anything else is rejected at
// the flag boundary — more beaters than processes used to be silently
// clamped to "all", hiding the typo that produced it.
func ValidateBeaters(beaters, n int) error {
	if beaters < 0 {
		return fmt.Errorf("-beaters %d: must be ≥ 0 (0 = all n)", beaters)
	}
	if beaters > n {
		return fmt.Errorf("-beaters %d exceeds n=%d: at most every process can beat", beaters, n)
	}
	return nil
}

// ParseCrashes parses a crash schedule of the form "pid:time[,pid:time...]"
// (e.g. "1:30,4:120"). An empty or blank string yields an empty schedule.
func ParseCrashes(s string) (map[sim.PID]sim.Time, error) {
	out := make(map[sim.PID]sim.Time)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		pidTime := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(pidTime) != 2 {
			return nil, fmt.Errorf("bad crash spec %q (want pid:time)", part)
		}
		pid, err := strconv.Atoi(pidTime[0])
		if err != nil {
			return nil, fmt.Errorf("bad pid in %q: %v", part, err)
		}
		if pid < 0 {
			return nil, fmt.Errorf("negative pid in %q", part)
		}
		at, err := strconv.ParseInt(pidTime[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad time in %q: %v", part, err)
		}
		if at < 0 {
			return nil, fmt.Errorf("negative time in %q", part)
		}
		if _, dup := out[sim.PID(pid)]; dup {
			return nil, fmt.Errorf("duplicate pid %d in schedule", pid)
		}
		out[sim.PID(pid)] = at
	}
	return out, nil
}

// ParseNet parses a network-model spec for the CLIs. Forms (parameters in
// brackets are optional):
//
//	async[:maxDelay]            reliable asynchronous, uniform delays
//	psync:gst:delta             partial synchrony (HPS)
//	timely[:delta]              fixed-latency links
//	pareto[:alpha[:cap]]        truncated heavy tail (Pareto, scale 2)
//	lognormal[:sigma[:cap]]     truncated heavy tail (log-normal, median 3)
//	alt[:period[:calmAfter]]    time-varying partial synchrony
//	asym[:maxSkew]              per-link asymmetric skew over async
//	lossy[:p[:maxDelay]]        iid per-copy loss over async
func ParseNet(spec string) (sim.Model, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	name, args := parts[0], parts[1:]
	maxArgs := map[string]int{
		"async": 1, "psync": 2, "timely": 1, "pareto": 2, "lognormal": 2, "alt": 2, "asym": 1, "lossy": 2,
	}
	if max, known := maxArgs[name]; known && len(args) > max {
		return nil, fmt.Errorf("too many fields in net spec %q (%s takes at most %d)", spec, name, max)
	}
	num := func(i int, def int64) (int64, error) {
		if i >= len(args) {
			return def, nil
		}
		return strconv.ParseInt(args[i], 10, 64)
	}
	fnum := func(i int, def float64) (float64, error) {
		if i >= len(args) {
			return def, nil
		}
		return strconv.ParseFloat(args[i], 64)
	}
	// Every parameter is range-checked here: the sim models silently clamp
	// out-of-range values to defaults, which would turn a typo like
	// "async:-3" into a quietly different scenario instead of an error
	// (mirroring ParseCrashes' negative checks).
	switch name {
	case "async":
		max, err := num(0, 8)
		if err != nil {
			return nil, fmt.Errorf("bad async spec %q: %v", spec, err)
		}
		if max < 1 {
			return nil, fmt.Errorf("bad async spec %q: maxDelay %d, want >= 1", spec, max)
		}
		return sim.Async{MaxDelay: max}, nil
	case "psync":
		gst, err1 := num(0, 0)
		delta, err2 := num(1, 3)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad psync spec %q (want psync:gst:delta)", spec)
		}
		if gst < 0 {
			return nil, fmt.Errorf("bad psync spec %q: negative GST %d", spec, gst)
		}
		if delta < 1 {
			return nil, fmt.Errorf("bad psync spec %q: delta %d, want >= 1", spec, delta)
		}
		return sim.PartialSync{GST: gst, Delta: delta}, nil
	case "timely":
		delta, err := num(0, 1)
		if err != nil {
			return nil, fmt.Errorf("bad timely spec %q: %v", spec, err)
		}
		if delta < 1 {
			return nil, fmt.Errorf("bad timely spec %q: delta %d, want >= 1", spec, delta)
		}
		return sim.Timely{Delta: delta}, nil
	case "pareto":
		alpha, err1 := fnum(0, 1.5)
		cap, err2 := num(1, 15)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad pareto spec %q (want pareto[:alpha[:cap]])", spec)
		}
		if alpha <= 0 {
			return nil, fmt.Errorf("bad pareto spec %q: alpha %v, want > 0", spec, alpha)
		}
		if cap < 2 {
			return nil, fmt.Errorf("bad pareto spec %q: cap %d, want >= the scale (2)", spec, cap)
		}
		return sim.Pareto{Scale: 2, Alpha: alpha, Cap: cap}, nil
	case "lognormal":
		sigma, err1 := fnum(0, 1)
		cap, err2 := num(1, 15)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad lognormal spec %q (want lognormal[:sigma[:cap]])", spec)
		}
		if sigma <= 0 {
			return nil, fmt.Errorf("bad lognormal spec %q: sigma %v, want > 0", spec, sigma)
		}
		if cap < 1 {
			return nil, fmt.Errorf("bad lognormal spec %q: cap %d, want >= 1", spec, cap)
		}
		return sim.LogNormal{Median: 3, Sigma: sigma, Cap: cap}, nil
	case "alt":
		period, err1 := num(0, 40)
		calm, err2 := num(1, 200)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad alt spec %q (want alt[:period[:calmAfter]])", spec)
		}
		if period < 1 {
			return nil, fmt.Errorf("bad alt spec %q: period %d, want >= 1", spec, period)
		}
		if calm < 0 {
			return nil, fmt.Errorf("bad alt spec %q: negative calmAfter %d (0 oscillates forever)", spec, calm)
		}
		return sim.Alternating{Period: period, GoodDelta: 3, BadMax: 30, BadLoss: 0.3, CalmAfter: calm}, nil
	case "asym":
		skew, err := num(0, 10)
		if err != nil {
			return nil, fmt.Errorf("bad asym spec %q: %v", spec, err)
		}
		if skew < 1 {
			return nil, fmt.Errorf("bad asym spec %q: maxSkew %d, want >= 1", spec, skew)
		}
		return sim.AsymmetricLinks{Base: sim.Async{MaxDelay: 6}, MaxSkew: skew}, nil
	case "lossy":
		p, err1 := fnum(0, 0.2)
		max, err2 := num(1, 8)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad lossy spec %q (want lossy[:p[:maxDelay]])", spec)
		}
		// The upper bound matters as much as the lower: p >= MaxLossP would
		// be clamped by the model, silently running a different scenario —
		// and p = 1 would kill every link, which no liveness checker can
		// tell apart from a protocol bug.
		if p < 0 || p >= sim.MaxLossP {
			return nil, fmt.Errorf("bad lossy spec %q: p %v, want 0 <= p < %v", spec, p, sim.MaxLossP)
		}
		if max < 1 {
			return nil, fmt.Errorf("bad lossy spec %q: maxDelay %d, want >= 1", spec, max)
		}
		return sim.Lossy{Base: sim.Async{MaxDelay: max}, P: p}, nil
	}
	return nil, fmt.Errorf("unknown network %q (want async, psync, timely, pareto, lognormal, alt, asym, or lossy)", name)
}

// ParsePartitions parses a partition schedule of the form
// "from-to@cut[,from-to@cut...]", e.g. "20-60@3,100-140@2": during virtual
// time [from, to) the population splits into {p < cut} and {p >= cut} and
// cross-cut copies are lost. An empty or blank string yields no windows.
// Mirroring ParseChurn/ParseCrashes, every field is range-checked at the
// flag boundary: from >= 0, to > from, cut >= 1 (a cut of 0 severs
// nothing and is always a typo).
func ParsePartitions(s string) ([]sim.PartitionWindow, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []sim.PartitionWindow
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		span, cutStr, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("bad partition window %q (want from-to@cut)", part)
		}
		fromStr, toStr, ok := strings.Cut(span, "-")
		if !ok {
			return nil, fmt.Errorf("bad partition window %q (want from-to@cut)", part)
		}
		from, err := strconv.ParseInt(fromStr, 10, 64)
		if err != nil || from < 0 {
			return nil, fmt.Errorf("bad partition start in %q (want a non-negative integer)", part)
		}
		to, err := strconv.ParseInt(toStr, 10, 64)
		if err != nil || to <= from {
			return nil, fmt.Errorf("bad partition end in %q (want an integer > the start)", part)
		}
		cut, err := strconv.Atoi(cutStr)
		if err != nil || cut < 1 {
			return nil, fmt.Errorf("bad partition cut in %q (want an integer >= 1)", part)
		}
		out = append(out, sim.PartitionWindow{From: from, To: to, Cut: sim.PID(cut)})
	}
	return out, nil
}

// ValidatePartitionN checks a partition schedule against the system size:
// a cut at or beyond n puts every process on one side, so the window
// severs nothing — like an oversized -beaters, always a misassembled
// command line rather than a scenario.
func ValidatePartitionN(ws []sim.PartitionWindow, n int) error {
	for _, w := range ws {
		if int(w.Cut) >= n {
			return fmt.Errorf("partition cut %d does not split n=%d processes (want 1 <= cut < n)", w.Cut, n)
		}
	}
	return nil
}

// ValidatePartitionHorizon rejects schedules with a window still open at
// the horizon, exactly like a churn schedule whose last event the horizon
// truncates: the run would verify a permanently partitioned system nobody
// asked for.
func ValidatePartitionHorizon(ws []sim.PartitionWindow, horizon sim.Time) error {
	if last := sim.LastWindowEnd(ws); len(ws) > 0 && last >= horizon {
		return fmt.Errorf("the partition schedule's last window ends at t=%d, not before the horizon %d — the network would never heal inside the run", last, horizon)
	}
	return nil
}

// ParseChurn parses a crash-recovery churn spec of the form
// "fraction[:cycles[:down[:up[:stagger]]]]", e.g. "0.2:2:40:60". An empty
// string yields the zero spec (no churn). Stagger defaults to 7, so
// successive churners' outages overlap partially instead of aligning; an
// explicit stagger of 0 keeps churners in phase (reproduce a default CLI
// run programmatically by setting Stagger: 7 explicitly — sim.ChurnSpec's
// own zero value is in-phase).
func ParseChurn(spec string) (sim.ChurnSpec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return sim.ChurnSpec{}, nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) > 5 {
		return sim.ChurnSpec{}, fmt.Errorf("bad churn spec %q (want fraction[:cycles[:down[:up[:stagger]]]])", spec)
	}
	frac, err := strconv.ParseFloat(parts[0], 64)
	if err != nil || frac <= 0 || frac > 1 {
		return sim.ChurnSpec{}, fmt.Errorf("bad churn fraction in %q (want a value in (0, 1])", spec)
	}
	out := sim.ChurnSpec{Fraction: frac, Stagger: 7}
	for i, p := range parts[1:] {
		v, err := strconv.ParseInt(p, 10, 64)
		// Stagger (field 4) may be 0 — churners in phase; the cycle
		// parameters must be positive.
		if err != nil || v < 0 || (v == 0 && i < 3) {
			return sim.ChurnSpec{}, fmt.Errorf("bad churn field %q in %q (want a positive integer)", p, spec)
		}
		switch i {
		case 0:
			out.Cycles = int(v)
		case 1:
			out.Down = v
		case 2:
			out.Up = v
		case 3:
			out.Stagger = v
		}
	}
	return out, nil
}

// FormatTagCounts renders a message-tag count map deterministically, e.g.
// "COORD:5 PH1:10".
func FormatTagCounts(byTag map[string]int) string {
	keys := make([]string, 0, len(byTag))
	for k := range byTag {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, byTag[k]))
	}
	return strings.Join(parts, " ")
}
