// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// ParseCrashes parses a crash schedule of the form "pid:time[,pid:time...]"
// (e.g. "1:30,4:120"). An empty or blank string yields an empty schedule.
func ParseCrashes(s string) (map[sim.PID]sim.Time, error) {
	out := make(map[sim.PID]sim.Time)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		pidTime := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(pidTime) != 2 {
			return nil, fmt.Errorf("bad crash spec %q (want pid:time)", part)
		}
		pid, err := strconv.Atoi(pidTime[0])
		if err != nil {
			return nil, fmt.Errorf("bad pid in %q: %v", part, err)
		}
		if pid < 0 {
			return nil, fmt.Errorf("negative pid in %q", part)
		}
		at, err := strconv.ParseInt(pidTime[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad time in %q: %v", part, err)
		}
		if at < 0 {
			return nil, fmt.Errorf("negative time in %q", part)
		}
		if _, dup := out[sim.PID(pid)]; dup {
			return nil, fmt.Errorf("duplicate pid %d in schedule", pid)
		}
		out[sim.PID(pid)] = at
	}
	return out, nil
}

// FormatTagCounts renders a message-tag count map deterministically, e.g.
// "COORD:5 PH1:10".
func FormatTagCounts(byTag map[string]int) string {
	keys := make([]string, 0, len(byTag))
	for k := range byTag {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, byTag[k]))
	}
	return strings.Join(parts, " ")
}
