package campaign_test

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/campaign"
)

// row is a representative scenario result: flat, JSON-lossless.
type row struct {
	Index int    `json:"index"`
	Out   string `json:"out"`
}

// scenario is a deterministic per-index "experiment".
func scenario(i int) row {
	return row{Index: i, Out: fmt.Sprintf("result-%d-%d", i, i*i+7)}
}

func TestPlanCoversAllIndicesContiguously(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 17, 100} {
		for _, shards := range []int{1, 2, 3, 7, 16, 120} {
			plan := campaign.Plan(n, shards)
			if len(plan) != shards {
				t.Fatalf("Plan(%d,%d): %d ranges", n, shards, len(plan))
			}
			next, minSz, maxSz := 0, n, 0
			for s, r := range plan {
				if r.From != next || r.To < r.From {
					t.Fatalf("Plan(%d,%d) shard %d = %+v, want contiguous from %d", n, shards, s, r, next)
				}
				sz := r.To - r.From
				if sz < minSz {
					minSz = sz
				}
				if sz > maxSz {
					maxSz = sz
				}
				next = r.To
			}
			if next != n {
				t.Fatalf("Plan(%d,%d) covers [0,%d), want [0,%d)", n, shards, next, n)
			}
			if n >= shards && maxSz-minSz > 1 {
				t.Fatalf("Plan(%d,%d) unbalanced: sizes differ by %d", n, shards, maxSz-minSz)
			}
		}
	}
}

// TestModesByteIdentical is the core acceptance pin: 1 serial shard, N
// in-process shards (several worker counts), and N separate Run calls (the
// multi-process shape) merged from checkpoints all yield identical rows
// and identical campaign digests.
func TestModesByteIdentical(t *testing.T) {
	const n = 11
	serial, err := campaign.Run(campaign.Config{Workers: 1}, "modes", n, scenario)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Complete || len(serial.Rows) != n || serial.Digest == "" {
		t.Fatalf("serial result incomplete: %+v", serial)
	}
	for i, r := range serial.Rows {
		if r != scenario(i) {
			t.Fatalf("row %d = %+v, want %+v (JSON round-trip must be lossless)", i, r, scenario(i))
		}
	}

	for _, shards := range []int{1, 2, 3, 4, 11, 16} {
		for _, workers := range []int{0, 1, 4} {
			got, err := campaign.Run(campaign.Config{Shards: shards, Shard: -1, Workers: workers}, "modes", n, scenario)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Rows, serial.Rows) || got.Digest != serial.Digest {
				t.Fatalf("shards=%d workers=%d diverges: digest %s vs %s", shards, workers, got.Digest, serial.Digest)
			}
		}
	}

	// Multi-process shape: one Run call per shard (disjoint invocations,
	// shared only through the checkpoint directory), then a pure merge.
	dir := t.TempDir()
	const shards = 4
	for s := 0; s < shards; s++ {
		res, err := campaign.Run(campaign.Config{Shards: shards, Shard: s, Dir: dir}, "modes", n, scenario)
		if err != nil {
			t.Fatal(err)
		}
		if res.Complete || !reflect.DeepEqual(res.Ran, []int{s}) {
			t.Fatalf("shard-only run %d: %+v", s, res)
		}
	}
	merged, err := campaign.Merge[row](dir, "modes", n, shards)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Rows, serial.Rows) || merged.Digest != serial.Digest {
		t.Fatalf("merged separate-process campaign diverges from serial: digest %s vs %s", merged.Digest, serial.Digest)
	}
}

// TestShardDigestsStableAcrossWorkers re-runs the same shard at different
// worker counts and demands byte-identical checkpoint digests.
func TestShardDigestsStableAcrossWorkers(t *testing.T) {
	digests := func(workers int) []string {
		dir := t.TempDir()
		if _, err := campaign.Run(campaign.Config{Shards: 3, Shard: -1, Dir: dir, Workers: workers}, "wstab", 10, scenario); err != nil {
			t.Fatal(err)
		}
		out := make([]string, 3)
		for s := range out {
			blob, err := os.ReadFile(campaign.ShardPath(dir, "wstab", 3, s))
			if err != nil {
				t.Fatal(err)
			}
			var sf struct {
				Digest string `json:"digest"`
			}
			if err := json.Unmarshal(blob, &sf); err != nil {
				t.Fatal(err)
			}
			if sf.Digest == "" {
				t.Fatalf("shard %d has empty digest", s)
			}
			out[s] = sf.Digest
		}
		return out
	}
	base := digests(1)
	for _, workers := range []int{2, 8} {
		if got := digests(workers); !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d shard digests %v, want %v", workers, got, base)
		}
	}
}

// corrupt rewrites a shard checkpoint through fn.
func corrupt(t *testing.T, path string, fn func([]byte) []byte) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(blob), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMergeRejectsDamagedShards pins the integrity errors: missing,
// truncated, digest-mismatched, and identity-mismatched checkpoints are
// all rejected with errors that name the offending shard file.
func TestMergeRejectsDamagedShards(t *testing.T) {
	const n, shards = 9, 3
	fresh := func() string {
		dir := t.TempDir()
		if _, err := campaign.Run(campaign.Config{Shards: shards, Shard: -1, Dir: dir}, "integ", n, scenario); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	expectErr := func(dir, wantSub string) {
		t.Helper()
		_, err := campaign.Merge[row](dir, "integ", n, shards)
		if err == nil {
			t.Fatalf("merge succeeded, want error containing %q", wantSub)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("merge error %q does not mention %q", err, wantSub)
		}
		if !strings.Contains(err.Error(), campaign.ShardPath("", "integ", shards, 1)) {
			t.Fatalf("merge error %q does not name the shard file", err)
		}
	}

	dir := fresh()
	target := campaign.ShardPath(dir, "integ", shards, 1)

	// Baseline sanity: intact checkpoints merge.
	if _, err := campaign.Merge[row](dir, "integ", n, shards); err != nil {
		t.Fatal(err)
	}

	// Missing shard file.
	if err := os.Remove(target); err != nil {
		t.Fatal(err)
	}
	expectErr(dir, "missing")

	// Truncated / non-JSON file.
	dir = fresh()
	target = campaign.ShardPath(dir, "integ", shards, 1)
	corrupt(t, target, func(b []byte) []byte { return b[:len(b)/2] })
	expectErr(dir, "corrupt")

	// Valid JSON whose rows were tampered with: digest mismatch.
	dir = fresh()
	target = campaign.ShardPath(dir, "integ", shards, 1)
	corrupt(t, target, func(b []byte) []byte {
		return []byte(strings.Replace(string(b), "result-3", "result-X", 1))
	})
	expectErr(dir, "digest mismatch")

	// A checkpoint from a different campaign layout: identity mismatch.
	dir = fresh()
	other := t.TempDir()
	if _, err := campaign.Run(campaign.Config{Shards: shards, Shard: -1, Dir: other}, "integ", n-1, scenario); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(campaign.ShardPath(other, "integ", shards, 1), campaign.ShardPath(dir, "integ", shards, 1)); err != nil {
		t.Fatal(err)
	}
	expectErr(dir, "does not match")
}

// TestResumeRerunsExactlyUnverifiedShards kills two of four shards (one
// deleted, one corrupted) and asserts a -resume run re-executes exactly
// those shards' scenario indices, nothing else, and still merges to the
// serial result.
func TestResumeRerunsExactlyUnverifiedShards(t *testing.T) {
	const n, shards = 12, 4
	dir := t.TempDir()

	var mu sync.Mutex
	var executed []int
	counted := func(i int) row {
		mu.Lock()
		executed = append(executed, i)
		mu.Unlock()
		return scenario(i)
	}

	cfg := campaign.Config{Shards: shards, Shard: -1, Dir: dir}
	first, err := campaign.Run(cfg, "resume", n, counted)
	if err != nil {
		t.Fatal(err)
	}
	if len(executed) != n || !reflect.DeepEqual(first.Ran, []int{0, 1, 2, 3}) {
		t.Fatalf("first run executed %v, ran shards %v", executed, first.Ran)
	}

	// Simulate a killed campaign: shard 1 never finished (file missing),
	// shard 3 was damaged on disk.
	if err := os.Remove(campaign.ShardPath(dir, "resume", shards, 1)); err != nil {
		t.Fatal(err)
	}
	corrupt(t, campaign.ShardPath(dir, "resume", shards, 3), func(b []byte) []byte { return b[:len(b)-9] })

	executed = nil
	cfg.Resume = true
	second, err := campaign.Run(cfg, "resume", n, counted)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(executed)
	want := []int{3, 4, 5, 9, 10, 11} // shard 1 = [3,6), shard 3 = [9,12)
	if !reflect.DeepEqual(executed, want) {
		t.Fatalf("resume executed indices %v, want exactly the unverified shards' %v", executed, want)
	}
	if !reflect.DeepEqual(second.Ran, []int{1, 3}) {
		t.Fatalf("resume ran shards %v, want [1 3]", second.Ran)
	}
	if second.Digest != first.Digest || !reflect.DeepEqual(second.Rows, first.Rows) {
		t.Fatalf("resumed campaign diverges: digest %s vs %s", second.Digest, first.Digest)
	}

	// A third resume with everything verified re-runs nothing.
	executed = nil
	third, err := campaign.Run(cfg, "resume", n, counted)
	if err != nil {
		t.Fatal(err)
	}
	if len(executed) != 0 || len(third.Ran) != 0 {
		t.Fatalf("fully-checkpointed resume executed %v, ran %v; want nothing", executed, third.Ran)
	}
	if third.Digest != first.Digest {
		t.Fatalf("digest changed on no-op resume: %s vs %s", third.Digest, first.Digest)
	}
}

func TestConfigValidation(t *testing.T) {
	noop := func(int) row { return row{} }
	if _, err := campaign.Run(campaign.Config{Shards: 3, Shard: 3, Dir: t.TempDir()}, "v", 3, noop); err == nil {
		t.Error("shard index == shard count accepted")
	}
	if _, err := campaign.Run(campaign.Config{Shards: 3, Shard: 1}, "v", 3, noop); err == nil {
		t.Error("shard-only run without checkpoint dir accepted")
	}
	if _, err := campaign.Run(campaign.Config{Resume: true}, "v", 3, noop); err == nil {
		t.Error("resume without checkpoint dir accepted")
	}
	if _, err := campaign.Run(campaign.Config{}, "", 3, noop); err == nil {
		t.Error("empty campaign id accepted")
	}
}

// TestEmptyAndTinyCampaigns covers n = 0 and n < shards (some shards
// empty): both must run, checkpoint, and merge cleanly.
func TestEmptyAndTinyCampaigns(t *testing.T) {
	res, err := campaign.Run(campaign.Config{}, "empty", 0, scenario)
	if err != nil || !res.Complete || len(res.Rows) != 0 {
		t.Fatalf("empty campaign: %+v, %v", res, err)
	}
	dir := t.TempDir()
	tiny, err := campaign.Run(campaign.Config{Shards: 5, Shard: -1, Dir: dir}, "tiny", 2, scenario)
	if err != nil || len(tiny.Rows) != 2 {
		t.Fatalf("tiny campaign: %+v, %v", tiny, err)
	}
	direct, err := campaign.Run(campaign.Config{}, "tiny", 2, scenario)
	if err != nil || direct.Digest != tiny.Digest {
		t.Fatalf("tiny sharded digest %s != direct %s (%v)", tiny.Digest, direct.Digest, err)
	}
}
