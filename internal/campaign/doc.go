// Package campaign shards experiment campaigns into checkpointed,
// resumable batches on top of the internal/sweep pool.
//
// A campaign is a named, ordered list of n independent scenarios whose
// results aggregate into one table. The sweep layer already fans the
// scenarios of one process across cores; the campaign layer is the next
// scale step: it splits the input index range into deterministic
// contiguous shards, runs each shard through sweep, and (optionally)
// persists every shard as a JSON checkpoint file carrying the campaign
// id, the shard's input range, the per-scenario result rows, and a
// SHA-256 digest. A merge step reassembles the shards in input order and
// refuses missing, truncated, corrupt, or mismatched-digest checkpoints;
// resume skips shards whose checkpoint already verifies, so a killed
// campaign restarts exactly where it stopped.
//
// # Determinism contract
//
// The contract extends sweep's end to end: provided f is deterministic
// per input index, a campaign run as one serial shard, as N shards inside
// one process, or as N shards in separate processes merged from their
// checkpoints produces identical rows and an identical campaign digest —
// for every worker count. To make the contract hold byte for byte, every
// row is normalized through its canonical JSON encoding in all modes
// (in-memory runs included), so a row type R must round-trip through
// encoding/json losslessly ([]string and flat structs of strings and
// integers do; float NaNs and unexported state do not).
//
// The default configuration (one shard, no checkpoint directory) stays a
// plain in-memory sweep and creates no files.
package campaign
