package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/sweep"
)

// Config selects how a campaign executes.
type Config struct {
	// Shards is the total shard count; <= 1 means a single shard.
	Shards int
	// Shard runs only the given shard index when >= 0 and Shards > 1
	// (multi-process fan-out: one process per shard; requires Dir). Any
	// negative value runs every shard in-process and merges. The zero
	// value is harmless with the zero Config (shard 0 of 1 is the whole
	// campaign), but multi-shard run-all configs must set Shard to -1.
	Shard int
	// Dir is the checkpoint directory. Empty means fully in-memory: no
	// files are read or written.
	Dir string
	// Resume skips shards whose checkpoint in Dir already verifies and
	// re-runs exactly the others.
	Resume bool
	// Workers is the per-shard sweep parallelism (0 = sweep default).
	Workers int
}

// shardOnly reports whether cfg selects a single shard of a larger
// campaign (multi-process mode: no merged result is produced).
func (c Config) shardOnly() bool { return c.Shards > 1 && c.Shard >= 0 }

func (c Config) validate() error {
	shards := c.Shards
	if shards < 1 {
		shards = 1
	}
	if c.Shard >= shards {
		return fmt.Errorf("campaign: -shard %d out of range (have %d shards)", c.Shard, shards)
	}
	if c.shardOnly() && c.Dir == "" {
		return errors.New("campaign: running a single shard requires a checkpoint directory (its output would be lost)")
	}
	if c.Resume && c.Dir == "" {
		return errors.New("campaign: -resume requires a checkpoint directory")
	}
	return nil
}

// Range is one shard's half-open input index range [From, To).
type Range struct{ From, To int }

// Plan splits n inputs into the given number of contiguous shards. The
// split is a pure function of (n, shards): shard i covers
// [i*n/shards, (i+1)*n/shards), so every index appears in exactly one
// shard, shard sizes differ by at most one, and the same plan is computed
// by every process of a multi-process campaign.
func Plan(n, shards int) []Range {
	if shards < 1 {
		shards = 1
	}
	out := make([]Range, shards)
	for i := range out {
		out[i] = Range{From: i * n / shards, To: (i + 1) * n / shards}
	}
	return out
}

// Result is a campaign's outcome.
type Result[R any] struct {
	// Rows holds the merged per-scenario results in input order. Nil when
	// Complete is false.
	Rows []R
	// Digest is the campaign digest: SHA-256 over the campaign id, the
	// scenario count, and every row's canonical JSON in input order. It is
	// independent of the shard layout and worker count. Empty when
	// Complete is false.
	Digest string
	// Complete is false when Config.Shard selected a single shard, so only
	// that shard's checkpoint was produced and nothing was merged.
	Complete bool
	// Ran lists the shard indices this call actually executed (resumed
	// shards are not listed).
	Ran []int
}

// Run executes the campaign id over n scenarios, f(i) producing scenario
// i's row. See the package comment for the sharding, checkpoint, resume,
// and determinism semantics. Errors come from the configuration, the
// filesystem, row JSON encoding, or checkpoint verification at merge —
// never from f, which is expected to encode per-scenario failures in its
// row (scenario panics propagate, as in sweep).
func Run[R any](cfg Config, id string, n int, f func(i int) R) (Result[R], error) {
	if err := cfg.validate(); err != nil {
		return Result[R]{}, err
	}
	if id == "" {
		return Result[R]{}, errors.New("campaign: empty campaign id")
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	plan := Plan(n, shards)
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return Result[R]{}, fmt.Errorf("campaign %s: %w", id, err)
		}
	}

	var res Result[R]
	byShard := make([][]json.RawMessage, shards)
	for s, r := range plan {
		if cfg.Shard >= 0 && s != cfg.Shard {
			continue
		}
		if cfg.Resume {
			if rows, err := readShard(cfg.Dir, id, n, shards, s); err == nil {
				byShard[s] = rows
				continue
			}
			// Unverified (missing/corrupt/mismatched) shard: re-run it.
		}
		rows, err := runShard(cfg, r, f)
		if err != nil {
			return Result[R]{}, fmt.Errorf("campaign %s shard %d/%d: %w", id, s, shards, err)
		}
		if cfg.Dir != "" {
			if err := writeShard(cfg.Dir, id, n, shards, s, r, rows); err != nil {
				return Result[R]{}, err
			}
			// Read back what actually landed on disk, so the merged table
			// is exactly what the checkpoint verifies to — every shard of
			// the result has passed verification from disk exactly once
			// (resumed shards in the pre-check above, fresh ones here).
			if rows, err = readShard(cfg.Dir, id, n, shards, s); err != nil {
				return Result[R]{}, err
			}
		}
		byShard[s] = rows
		res.Ran = append(res.Ran, s)
	}
	if cfg.shardOnly() {
		return res, nil
	}

	var all []json.RawMessage
	for _, rows := range byShard {
		all = append(all, rows...)
	}
	return assemble[R](id, n, all, res.Ran)
}

// Merge reassembles a campaign's checkpoints in input order. It errors on
// missing, truncated, corrupt, or digest/identity-mismatched shard files;
// it runs nothing.
func Merge[R any](dir, id string, n, shards int) (Result[R], error) {
	if shards < 1 {
		shards = 1
	}
	var all []json.RawMessage
	for s := range Plan(n, shards) {
		rows, err := readShard(dir, id, n, shards, s)
		if err != nil {
			return Result[R]{}, err
		}
		all = append(all, rows...)
	}
	return assemble[R](id, n, all, nil)
}

// runShard executes one shard's index range on the sweep pool and
// normalizes every row through its canonical JSON encoding.
func runShard[R any](cfg Config, r Range, f func(i int) R) ([]json.RawMessage, error) {
	idx := make([]int, r.To-r.From)
	for j := range idx {
		idx[j] = r.From + j
	}
	rows := sweep.MapOpt(sweep.Options{Workers: cfg.Workers}, idx, func(_ int, i int) R {
		return f(i)
	})
	out := make([]json.RawMessage, len(rows))
	for j := range rows {
		raw, err := json.Marshal(rows[j])
		if err != nil {
			return nil, fmt.Errorf("scenario %d result not JSON-encodable: %w", idx[j], err)
		}
		out[j] = raw
	}
	return out, nil
}

func assemble[R any](id string, n int, rawRows []json.RawMessage, ran []int) (Result[R], error) {
	res := Result[R]{
		Rows:     make([]R, len(rawRows)),
		Digest:   campaignDigest(id, n, rawRows),
		Complete: true,
		Ran:      ran,
	}
	for i, raw := range rawRows {
		if err := json.Unmarshal(raw, &res.Rows[i]); err != nil {
			return Result[R]{}, fmt.Errorf("campaign %s: row %d does not decode: %w", id, i, err)
		}
	}
	return res, nil
}

// shardFile is the checkpoint format: one JSON object per shard.
type shardFile struct {
	Campaign string            `json:"campaign"`
	Total    int               `json:"total"`  // campaign scenario count
	Shards   int               `json:"shards"` // campaign shard count
	Shard    int               `json:"shard"`  // this shard's index
	From     int               `json:"from"`   // input range [From, To)
	To       int               `json:"to"`
	Rows     []json.RawMessage `json:"rows"` // one canonical JSON row per scenario
	Digest   string            `json:"digest"`
}

// ShardPath returns the checkpoint file path for one shard of a campaign.
func ShardPath(dir, id string, shards, shard int) string {
	safe := []byte(id)
	for i, c := range safe {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			safe[i] = '_'
		}
	}
	return filepath.Join(dir, fmt.Sprintf("%s-shard-%04d-of-%04d.json", safe, shard, shards))
}

func writeShard(dir, id string, n, shards, shard int, r Range, rows []json.RawMessage) error {
	sf := shardFile{
		Campaign: id, Total: n, Shards: shards, Shard: shard, From: r.From, To: r.To,
		Rows:   rows,
		Digest: shardDigest(id, n, shards, shard, r, rows),
	}
	blob, err := json.MarshalIndent(sf, "", "\t")
	if err != nil {
		return fmt.Errorf("campaign %s shard %d: %w", id, shard, err)
	}
	path := ShardPath(dir, id, shards, shard)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign %s shard %d: %w", id, shard, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("campaign %s shard %d: %w", id, shard, err)
	}
	return nil
}

// readShard loads and fully verifies one shard checkpoint: identity
// fields must match the requested campaign, the row count must match the
// planned range, and the recomputed digest must equal the recorded one.
func readShard(dir, id string, n, shards, shard int) ([]json.RawMessage, error) {
	path := ShardPath(dir, id, shards, shard)
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign %s: missing shard checkpoint %s: %w", id, path, err)
	}
	var sf shardFile
	if err := json.Unmarshal(blob, &sf); err != nil {
		return nil, fmt.Errorf("campaign %s: corrupt shard checkpoint %s (truncated or not JSON): %w", id, path, err)
	}
	// Restore each row's canonical compact encoding: the checkpoint file is
	// written indented (MarshalIndent re-formats embedded RawMessages), and
	// digests — like the determinism contract — are defined over the
	// compact bytes.
	for i, row := range sf.Rows {
		var buf bytes.Buffer
		if err := json.Compact(&buf, row); err != nil {
			return nil, fmt.Errorf("campaign %s: corrupt shard checkpoint %s: row %d: %w", id, path, i, err)
		}
		sf.Rows[i] = buf.Bytes()
	}
	want := Plan(n, shards)[shard]
	if sf.Campaign != id || sf.Total != n || sf.Shards != shards || sf.Shard != shard ||
		sf.From != want.From || sf.To != want.To || len(sf.Rows) != want.To-want.From {
		return nil, fmt.Errorf("campaign %s: shard checkpoint %s does not match (campaign %q shard %d/%d range [%d,%d) with %d rows; want %q shard %d/%d range [%d,%d) with %d rows)",
			id, path, sf.Campaign, sf.Shard, sf.Shards, sf.From, sf.To, len(sf.Rows),
			id, shard, shards, want.From, want.To, want.To-want.From)
	}
	if got := shardDigest(id, n, shards, shard, want, sf.Rows); got != sf.Digest {
		return nil, fmt.Errorf("campaign %s: shard checkpoint %s digest mismatch (recorded %s, recomputed %s)", id, path, sf.Digest, got)
	}
	return sf.Rows, nil
}

// shardDigest fingerprints one shard: its identity plus every row's
// canonical JSON. Row JSON is length-prefixed so no two row sequences
// collide by concatenation.
func shardDigest(id string, n, shards, shard int, r Range, rows []json.RawMessage) string {
	h := sha256.New()
	fmt.Fprintf(h, "campaign %s total %d shards %d shard %d range %d %d\n", id, n, shards, shard, r.From, r.To)
	for _, row := range rows {
		fmt.Fprintf(h, "%d:", len(row))
		h.Write(row)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// campaignDigest fingerprints the merged campaign. It deliberately omits
// the shard layout: the digest of a campaign is identical whether it ran
// as 1 shard or as N, in one process or many.
func campaignDigest(id string, n int, rows []json.RawMessage) string {
	h := sha256.New()
	fmt.Fprintf(h, "campaign %s total %d\n", id, n)
	for _, row := range rows {
		fmt.Fprintf(h, "%d:", len(row))
		h.Write(row)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
