package core_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/fd/oracle"
	"repro/internal/ident"
	"repro/internal/sim"
)

type fig9Run struct {
	ids       ident.Assignment
	crashes   map[sim.PID]sim.Time
	mode      oracle.Adversary
	stabilize sim.Time
	seed      int64
	anonymous bool // use the AΩ baseline variant
	proposals []core.Value
}

func (r fig9Run) exec(t *testing.T) check.Report {
	t.Helper()
	n := r.ids.N()
	if r.proposals == nil {
		r.proposals = make([]core.Value, n)
		for i := range r.proposals {
			r.proposals[i] = core.Value(fmt.Sprintf("v%d", i))
		}
	}
	eng := sim.New(sim.Config{IDs: r.ids, Net: sim.Async{MaxDelay: 8}, Seed: r.seed})
	truth := fd.NewGroundTruth(r.ids, r.crashes)
	world := oracle.NewWorld(truth, r.stabilize)
	insts := make([]*core.Fig9, n)
	for i := 0; i < n; i++ {
		hs := oracle.NewHSigma(world)
		node := sim.NewNode().Add("hsigma", hs)
		if r.anonymous {
			ao := oracle.NewAOmega(world, r.mode)
			insts[i] = core.NewFig9Anonymous(ao, hs, r.proposals[i])
			node.Add("aomega", ao)
		} else {
			ho := oracle.NewHOmega(world, r.mode)
			insts[i] = core.NewFig9(ho, hs, r.proposals[i])
			node.Add("homega", ho)
		}
		eng.AddProcess(node.Add("consensus", insts[i]))
	}
	eng.CrashSchedule(r.crashes)
	eng.RunUntil(1_000_000, func() bool {
		for _, p := range truth.Correct() {
			if !insts[p].Decided().Decided {
				return false
			}
		}
		return true
	})
	outcomes := make([]core.Outcome, n)
	for i, inst := range insts {
		outcomes[i] = inst.Decided()
		if err := inst.InvariantErr(); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := check.Consensus(truth, r.proposals, outcomes)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestFig9FailureFree(t *testing.T) {
	fig9Run{ids: ident.Balanced(5, 2), seed: 1}.exec(t)
}

func TestFig9UniqueAndAnonymousExtremes(t *testing.T) {
	fig9Run{ids: ident.Unique(4), seed: 2}.exec(t)
	fig9Run{ids: ident.AnonymousN(4), seed: 3}.exec(t)
}

func TestFig9MinorityCorrect(t *testing.T) {
	// The decisive difference to Fig. 8: only 2 of 6 processes are
	// correct (t = 4 ≥ n/2) and consensus still terminates.
	fig9Run{
		ids:       ident.Balanced(6, 3),
		crashes:   map[sim.PID]sim.Time{0: 30, 2: 50, 4: 20, 5: 60},
		stabilize: 120,
		seed:      4,
	}.exec(t)
}

func TestFig9SingleSurvivor(t *testing.T) {
	// n−1 crashes: the lone correct process must still decide.
	fig9Run{
		ids:       ident.Balanced(5, 2),
		crashes:   map[sim.PID]sim.Time{0: 25, 1: 40, 2: 55, 3: 70},
		stabilize: 130,
		seed:      5,
	}.exec(t)
}

func TestFig9RotatingAdversary(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		fig9Run{
			ids:       ident.Balanced(5, 2),
			mode:      oracle.AdversaryRotate,
			stabilize: 150,
			crashes:   map[sim.PID]sim.Time{3: 60},
			seed:      seed,
		}.exec(t)
	}
}

func TestFig9SplitBrainAdversary(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		fig9Run{
			ids:       ident.Balanced(6, 3),
			mode:      oracle.AdversarySplit,
			stabilize: 180,
			crashes:   map[sim.PID]sim.Time{0: 45, 5: 90},
			seed:      seed,
		}.exec(t)
	}
}

func TestFig9AnonymousBaseline(t *testing.T) {
	// The §5.3 remark: AΩ + no coordination phase solves consensus in
	// anonymous systems (Figure 3 of [6] shape).
	for seed := int64(1); seed <= 4; seed++ {
		fig9Run{
			ids:       ident.AnonymousN(5),
			anonymous: true,
			mode:      oracle.AdversaryRotate,
			stabilize: 120,
			crashes:   map[sim.PID]sim.Time{2: 50},
			seed:      seed,
		}.exec(t)
	}
}

func TestFig9SameProposal(t *testing.T) {
	props := []core.Value{"w", "w", "w", "w"}
	rep := fig9Run{ids: ident.Balanced(4, 2), proposals: props, seed: 8}.exec(t)
	if rep.Value != "w" {
		t.Errorf("decided %q, want w", rep.Value)
	}
}

func TestFig9DecisionRoundsBounded(t *testing.T) {
	rep := fig9Run{ids: ident.Balanced(5, 2), seed: 9}.exec(t)
	if rep.MaxRound > 3 {
		t.Errorf("failure-free stable run took %d rounds, expected ≤ 3", rep.MaxRound)
	}
}

func TestFig9CrashCascade(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	for seed := int64(1); seed <= 8; seed++ {
		fig9Run{
			ids: ident.Balanced(7, 3),
			crashes: map[sim.PID]sim.Time{
				1: 20, 3: 35, 5: 50, 6: 65,
			},
			stabilize: 140,
			mode:      oracle.AdversaryRotate,
			seed:      seed,
		}.exec(t)
	}
}

func TestFig9BottomProposalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	eng := sim.New(sim.Config{IDs: ident.Unique(1), Seed: 1})
	truth := fd.NewGroundTruth(ident.Unique(1), nil)
	world := oracle.NewWorld(truth, 0)
	hs := oracle.NewHSigma(world)
	ho := oracle.NewHOmega(world, oracle.AdversaryNone)
	eng.AddProcess(sim.NewNode().Add("hs", hs).Add("ho", ho).Add("c", core.NewFig9(ho, hs, core.Bottom)))
	eng.Run(1)
}
