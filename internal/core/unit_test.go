package core

import (
	"reflect"
	"testing"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/multiset"
)

func TestClassifyRec(t *testing.T) {
	tests := []struct {
		name string
		rec  []Value
		kind recKind
		val  Value
	}{
		{"unanimous value", []Value{"v"}, recAllSameValue, "v"},
		{"value and bottom", []Value{Bottom, "v"}, recValueAndBot, "v"},
		{"all bottom", []Value{Bottom}, recAllBot, Bottom},
		{"two values", []Value{"a", "b"}, recInvalid, Bottom},
		{"empty", nil, recInvalid, Bottom},
		{"three entries", []Value{Bottom, "a", "b"}, recInvalid, Bottom},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			kind, val := classifyRec(tt.rec)
			if kind != tt.kind || val != tt.val {
				t.Errorf("classifyRec(%v) = (%v, %q), want (%v, %q)", tt.rec, kind, val, tt.kind, tt.val)
			}
		})
	}
}

func TestDistinctSortsBottomFirst(t *testing.T) {
	got := distinct([]Value{"z", Bottom, "z", "a", Bottom})
	want := []Value{Bottom, "a", "z"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("distinct = %q, want %q", got, want)
	}
}

func TestMinValue(t *testing.T) {
	if got := minValue([]Value{"m", "a", "z"}); got != "a" {
		t.Errorf("minValue = %q", got)
	}
	if got := minValue([]Value{"only"}); got != "only" {
		t.Errorf("minValue = %q", got)
	}
}

// matchQuorum scenarios: the core of Fig. 9's Phase 1/2 guard.
func TestMatchQuorum(t *testing.T) {
	hs := &stubHSigma{
		quora: []fd.QuorumPair{
			{Label: "q", M: multiset.From[ident.ID]("A", "A", "B")},
		},
	}
	c := &Fig9{d2: hs}

	msg := func(id ident.ID, sr int, labels []fd.Label, est Value) quorMsg {
		return toQuorMsg(id, sr, labels, est)
	}

	t.Run("no messages", func(t *testing.T) {
		if _, ok := c.matchQuorum(nil); ok {
			t.Error("matched with no messages")
		}
	})

	t.Run("exact match same sub-round", func(t *testing.T) {
		msgs := []quorMsg{
			msg("A", 1, []fd.Label{"q"}, "x"),
			msg("A", 1, []fd.Label{"q"}, "x"),
			msg("B", 1, []fd.Label{"q"}, "x"),
		}
		rec, ok := c.matchQuorum(msgs)
		if !ok || len(rec) != 3 {
			t.Fatalf("rec = %v, ok = %v", rec, ok)
		}
	})

	t.Run("missing multiplicity", func(t *testing.T) {
		msgs := []quorMsg{
			msg("A", 1, []fd.Label{"q"}, "x"),
			msg("B", 1, []fd.Label{"q"}, "x"),
		}
		if _, ok := c.matchQuorum(msgs); ok {
			t.Error("matched with only one A (needs two)")
		}
	})

	t.Run("label must be carried by every member", func(t *testing.T) {
		msgs := []quorMsg{
			msg("A", 1, []fd.Label{"q"}, "x"),
			msg("A", 1, []fd.Label{"other"}, "x"), // lacks q
			msg("B", 1, []fd.Label{"q"}, "x"),
		}
		if _, ok := c.matchQuorum(msgs); ok {
			t.Error("matched although one A does not carry the label")
		}
	})

	t.Run("sub-rounds do not mix", func(t *testing.T) {
		msgs := []quorMsg{
			msg("A", 1, []fd.Label{"q"}, "x"),
			msg("A", 2, []fd.Label{"q"}, "x"),
			msg("B", 1, []fd.Label{"q"}, "x"),
		}
		if _, ok := c.matchQuorum(msgs); ok {
			t.Error("matched across different sub-rounds")
		}
	})

	t.Run("later sub-round can match", func(t *testing.T) {
		msgs := []quorMsg{
			msg("A", 2, []fd.Label{"q"}, "x"),
			msg("A", 2, []fd.Label{"q"}, "y"),
			msg("B", 2, []fd.Label{"q"}, "x"),
		}
		rec, ok := c.matchQuorum(msgs)
		if !ok {
			t.Fatal("no match in sub-round 2")
		}
		if allSame(rec) {
			t.Error("mixed estimates reported as unanimous")
		}
	})

	t.Run("deterministic earliest-arrival selection", func(t *testing.T) {
		msgs := []quorMsg{
			msg("A", 1, []fd.Label{"q"}, "first"),
			msg("A", 1, []fd.Label{"q"}, "second"),
			msg("A", 1, []fd.Label{"q"}, "third"), // extra A beyond demand
			msg("B", 1, []fd.Label{"q"}, "b"),
		}
		rec, _ := c.matchQuorum(msgs)
		want := []Value{"first", "second", "b"}
		if !reflect.DeepEqual(rec, want) {
			t.Errorf("rec = %v, want %v", rec, want)
		}
	})
}

type stubHSigma struct {
	quora  []fd.QuorumPair
	labels []fd.Label
}

func (s *stubHSigma) Quora() []fd.QuorumPair { return s.quora }
func (s *stubHSigma) Labels() []fd.Label     { return s.labels }
