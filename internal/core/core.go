package core

import (
	"fmt"
	"sort"

	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Value is a consensus proposal. The reserved Bottom value ⊥ must not be
// proposed; Fig. 8/9 use it as the "no majority" marker.
type Value string

// Bottom is the distinguished ⊥ value of Phases 1–2.
const Bottom Value = "\x00⊥"

// heartbeat is the guard re-evaluation period. Guards are also re-checked
// on every message and every co-located module event; the heartbeat only
// guarantees progress when a guard's truth depends purely on virtual time
// (an oracle detector stabilizing) and keeps virtual time advancing.
const heartbeat sim.Time = 5

// Outcome reports one process's consensus result. Round is the round in
// which the decision was originally reached — for a relayed decision that
// is the deciding process's round (carried in DecideMsg), not the local
// round of whoever learned it.
type Outcome struct {
	Decided bool
	Value   Value
	Round   int      // round in which the decision was originally reached
	Time    sim.Time // virtual decision time (local: when this process learned it)
	// Relayed marks an outcome adopted from a received DECIDE rather than
	// decided by this process's own Phase 2 quorum. Checkers use it to
	// assert round agreement: every relayed round must name a round in
	// which some process actually decided.
	Relayed bool
}

// DecideMsg implements the reliable broadcast of Task T2: a decided value
// is relayed once by every process that learns it. Round carries the round
// the decision was reached in, so relayed outcomes report the deciding
// round rather than the receiver's local one.
type DecideMsg struct {
	Val   Value
	Round int
}

// MsgTag implements sim.Tagger.
func (DecideMsg) MsgTag() string { return "DECIDE" }

// RejoinMsg is the (REJOIN, r) round-resync request a recovered process
// broadcasts: "I was down, my protocol view stops at round r — where is
// everyone?". Peers answer from their current round state (RejoinAckMsg),
// and peers that already decided re-send their DECIDE instead (the Task T2
// relay, re-armed for rejoiners).
type RejoinMsg struct {
	Round int
}

// MsgTag implements sim.Tagger.
func (RejoinMsg) MsgTag() string { return "REJOIN" }

// RejoinAckMsg answers a REJOIN with the responder's current position:
// round, phase (1 = Leaders' Coordination, 2 = Phase 0, 3 = Phase 1,
// 4 = Phase 2), sub-round (Fig. 9; 0 in Fig. 8), and estimates. A
// rejoining process fast-forwards to the highest round it hears of and
// re-enters the protocol at that round's Phase 1 — a round it has never
// voted in (rounds are monotone), so the quorum-intersection safety
// argument is untouched. Within its own round, Fig. 9 additionally follows
// the responder's phase and sub-round (see Fig9.onRejoinAck): its HΣ
// quorums can require every eventually-up process, so a rejoiner stranded
// mid-phase — peers consumed its pre-crash quorum message and moved on,
// their later traffic died with the outage — must be able to catch up from
// the acks alone.
type RejoinAckMsg struct {
	Round int
	Phase int
	SR    int
	Est   Value
	Est2  Value
}

// MsgTag implements sim.Tagger.
func (RejoinAckMsg) MsgTag() string { return "REJOIN_ACK" }

// CoordMsg is the Leaders' Coordination Phase message (COORD, id, r, est).
type CoordMsg struct {
	ID    ident.ID
	Round int
	Est   Value
}

// MsgTag implements sim.Tagger.
func (CoordMsg) MsgTag() string { return "COORD" }

// Ph0Msg is the Phase 0 message (PH0, r, est).
type Ph0Msg struct {
	Round int
	Est   Value
}

// MsgTag implements sim.Tagger.
func (Ph0Msg) MsgTag() string { return "PH0" }

// decider holds the decide/relay logic shared by both algorithms.
type decider struct {
	env     sim.Environment
	outcome Outcome
	invalid error // violated internal invariant, surfaced to tests
}

// Decided implements the public outcome query.
func (d *decider) Decided() Outcome { return d.outcome }

// InvariantErr reports a violated internal invariant (nil in correct runs);
// the test suite asserts it stays nil under every adversary.
func (d *decider) InvariantErr() error { return d.invalid }

func (d *decider) invariant(cond bool, format string, args ...any) {
	if !cond && d.invalid == nil {
		d.invalid = fmt.Errorf(format, args...)
	}
}

// decide records a local decision (first call wins) and broadcasts DECIDE.
func (d *decider) decide(v Value, round int) {
	if d.outcome.Decided {
		return
	}
	d.outcome = Outcome{Decided: true, Value: v, Round: round, Time: d.env.Now()}
	d.env.Note(trace.KindDecide, "DECIDE", DecideDetail(v, round, false))
	d.env.Broadcast(DecideMsg{Val: v, Round: round})
}

// onDecide handles a received DECIDE: relay once, adopt the value — and
// the round the decision was actually reached in, which the message
// carries (the receiver's local round may be far behind or ahead).
func (d *decider) onDecide(m DecideMsg) {
	if d.outcome.Decided {
		return
	}
	d.outcome = Outcome{Decided: true, Value: m.Val, Round: m.Round, Time: d.env.Now(), Relayed: true}
	d.env.Note(trace.KindDecide, "DECIDE", DecideDetail(m.Val, m.Round, true))
	d.env.Broadcast(DecideMsg{Val: m.Val, Round: m.Round})
}

// answerRejoin re-broadcasts a decided outcome in response to a REJOIN: the
// rejoiner may have been down when the original DECIDE (and its relays)
// went out, and a decided process takes no further protocol steps, so
// Task T2's "relay once" must be re-armed for it. It reports whether the
// process had decided (and therefore answered).
func (d *decider) answerRejoin() bool {
	if !d.outcome.Decided {
		return false
	}
	d.env.Broadcast(DecideMsg{Val: d.outcome.Value, Round: d.outcome.Round})
	return true
}

// minValue returns the smallest of a non-empty value list (the Leaders'
// Coordination Phase adopts the minimum homonym estimate).
func minValue(vs []Value) Value {
	min := vs[0]
	for _, v := range vs[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// distinct returns the sorted distinct values of a list.
func distinct(vs []Value) []Value {
	seen := make(map[Value]bool, len(vs))
	var out []Value
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// recKind classifies a Phase-2 reception set per the paper's three cases.
type recKind int

const (
	recAllSameValue recKind = iota + 1 // rec = {v}, v ≠ ⊥ → decide v
	recValueAndBot                     // rec = {v, ⊥} → adopt v
	recAllBot                          // rec = {⊥} → skip
	recInvalid                         // anything else: broken invariant
)

// classifyRec implements lines 31–34 of Fig. 8 (and 49–53 of Fig. 9).
func classifyRec(rec []Value) (recKind, Value) {
	switch len(rec) {
	case 1:
		if rec[0] == Bottom {
			return recAllBot, Bottom
		}
		return recAllSameValue, rec[0]
	case 2:
		// distinct() sorts; Bottom ("\x00⊥") sorts first.
		if rec[0] == Bottom && rec[1] != Bottom {
			return recValueAndBot, rec[1]
		}
	}
	return recInvalid, Bottom
}
