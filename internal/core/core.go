package core

import (
	"fmt"
	"sort"

	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Value is a consensus proposal. The reserved Bottom value ⊥ must not be
// proposed; Fig. 8/9 use it as the "no majority" marker.
type Value string

// Bottom is the distinguished ⊥ value of Phases 1–2.
const Bottom Value = "\x00⊥"

// heartbeat is the guard re-evaluation period. Guards are also re-checked
// on every message and every co-located module event; the heartbeat only
// guarantees progress when a guard's truth depends purely on virtual time
// (an oracle detector stabilizing) and keeps virtual time advancing.
const heartbeat sim.Time = 5

// Outcome reports one process's consensus result.
type Outcome struct {
	Decided bool
	Value   Value
	Round   int      // round in which the decision was reached
	Time    sim.Time // virtual decision time
}

// DecideMsg implements the reliable broadcast of Task T2: a decided value
// is relayed once by every process that learns it.
type DecideMsg struct {
	Val Value
}

// MsgTag implements sim.Tagger.
func (DecideMsg) MsgTag() string { return "DECIDE" }

// CoordMsg is the Leaders' Coordination Phase message (COORD, id, r, est).
type CoordMsg struct {
	ID    ident.ID
	Round int
	Est   Value
}

// MsgTag implements sim.Tagger.
func (CoordMsg) MsgTag() string { return "COORD" }

// Ph0Msg is the Phase 0 message (PH0, r, est).
type Ph0Msg struct {
	Round int
	Est   Value
}

// MsgTag implements sim.Tagger.
func (Ph0Msg) MsgTag() string { return "PH0" }

// decider holds the decide/relay logic shared by both algorithms.
type decider struct {
	env     sim.Environment
	outcome Outcome
	invalid error // violated internal invariant, surfaced to tests
}

// Decided implements the public outcome query.
func (d *decider) Decided() Outcome { return d.outcome }

// InvariantErr reports a violated internal invariant (nil in correct runs);
// the test suite asserts it stays nil under every adversary.
func (d *decider) InvariantErr() error { return d.invalid }

func (d *decider) invariant(cond bool, format string, args ...any) {
	if !cond && d.invalid == nil {
		d.invalid = fmt.Errorf(format, args...)
	}
}

// decide records a local decision (first call wins) and broadcasts DECIDE.
func (d *decider) decide(v Value, round int) {
	if d.outcome.Decided {
		return
	}
	d.outcome = Outcome{Decided: true, Value: v, Round: round, Time: d.env.Now()}
	d.env.Note(trace.KindDecide, "DECIDE", string(v))
	d.env.Broadcast(DecideMsg{Val: v})
}

// onDecide handles a received DECIDE: relay once, adopt the value.
func (d *decider) onDecide(m DecideMsg, round int) {
	if d.outcome.Decided {
		return
	}
	d.outcome = Outcome{Decided: true, Value: m.Val, Round: round, Time: d.env.Now()}
	d.env.Note(trace.KindDecide, "DECIDE", string(m.Val)+" (relayed)")
	d.env.Broadcast(DecideMsg{Val: m.Val})
}

// minValue returns the smallest of a non-empty value list (the Leaders'
// Coordination Phase adopts the minimum homonym estimate).
func minValue(vs []Value) Value {
	min := vs[0]
	for _, v := range vs[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// distinct returns the sorted distinct values of a list.
func distinct(vs []Value) []Value {
	seen := make(map[Value]bool, len(vs))
	var out []Value
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// recKind classifies a Phase-2 reception set per the paper's three cases.
type recKind int

const (
	recAllSameValue recKind = iota + 1 // rec = {v}, v ≠ ⊥ → decide v
	recValueAndBot                     // rec = {v, ⊥} → adopt v
	recAllBot                          // rec = {⊥} → skip
	recInvalid                         // anything else: broken invariant
)

// classifyRec implements lines 31–34 of Fig. 8 (and 49–53 of Fig. 9).
func classifyRec(rec []Value) (recKind, Value) {
	switch len(rec) {
	case 1:
		if rec[0] == Bottom {
			return recAllBot, Bottom
		}
		return recAllSameValue, rec[0]
	case 2:
		// distinct() sorts; Bottom ("\x00⊥") sorts first.
		if rec[0] == Bottom && rec[1] != Bottom {
			return recValueAndBot, rec[1]
		}
	}
	return recInvalid, Bottom
}
