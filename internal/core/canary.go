package core

// wedgeCanary reintroduces the PR-5 leader-group wedge when a build sets
// it to "wedge" via the linker:
//
//	go run -ldflags "-X repro/internal/core.wedgeCanary=wedge" ./cmd/hunt ...
//
// With the canary armed, Fig9.maybeResync's jumping leader skips the
// COORD/Phase-0 push it owes the round it lands in, so churn that takes
// out a whole leader group wedges the everyone-quorums again — the exact
// bug class the scenario hunter's CI canary must find and shrink. Normal
// builds leave the variable empty and the guard is always true; no code
// path in this repository assigns it.
var wedgeCanary string
