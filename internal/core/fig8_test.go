package core_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/fd/ohp"
	"repro/internal/fd/oracle"
	"repro/internal/ident"
	"repro/internal/sim"
)

// fig8Run wires n Fig8 instances over HΩ oracles with the given adversary
// and crash schedule, runs to completion, and checks consensus.
type fig8Run struct {
	ids       ident.Assignment
	t         int
	crashes   map[sim.PID]sim.Time
	mode      oracle.Adversary
	stabilize sim.Time
	seed      int64
	net       sim.Model
	proposals []core.Value
}

func (r fig8Run) exec(t *testing.T) check.Report {
	t.Helper()
	rep, err := r.execErr()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func (r fig8Run) execErr() (check.Report, error) {
	n := r.ids.N()
	if r.net == nil {
		r.net = sim.Async{MaxDelay: 8}
	}
	if r.proposals == nil {
		r.proposals = make([]core.Value, n)
		for i := range r.proposals {
			r.proposals[i] = core.Value(fmt.Sprintf("v%d", i))
		}
	}
	eng := sim.New(sim.Config{IDs: r.ids, Net: r.net, Seed: r.seed, KnownN: true})
	truth := fd.NewGroundTruth(r.ids, r.crashes)
	world := oracle.NewWorld(truth, r.stabilize)
	insts := make([]*core.Fig8, n)
	for i := 0; i < n; i++ {
		det := oracle.NewHOmega(world, r.mode)
		insts[i] = core.NewFig8(det, r.t, r.proposals[i])
		eng.AddProcess(sim.NewNode().Add("homega", det).Add("consensus", insts[i]))
	}
	eng.CrashSchedule(r.crashes)
	eng.RunUntil(1_000_000, func() bool {
		for _, p := range truth.Correct() {
			if !insts[p].Decided().Decided {
				return false
			}
		}
		return true
	})
	outcomes := make([]core.Outcome, n)
	for i, inst := range insts {
		outcomes[i] = inst.Decided()
		if err := inst.InvariantErr(); err != nil {
			return check.Report{}, err
		}
	}
	return check.Consensus(truth, r.proposals, outcomes)
}

func TestFig8FailureFreeStableLeader(t *testing.T) {
	fig8Run{ids: ident.Balanced(5, 2), t: 2, seed: 1}.exec(t)
}

func TestFig8UniqueIDs(t *testing.T) {
	// ℓ = n: HΩ degenerates to Ω, the classical setting.
	fig8Run{ids: ident.Unique(5), t: 2, seed: 2}.exec(t)
}

func TestFig8Anonymous(t *testing.T) {
	// ℓ = 1: all processes are leaders; the Leaders' Coordination Phase
	// makes the whole system converge on the minimum estimate.
	fig8Run{ids: ident.AnonymousN(5), t: 2, seed: 3}.exec(t)
}

func TestFig8WithCrashes(t *testing.T) {
	fig8Run{
		ids:     ident.Balanced(7, 3),
		t:       3,
		crashes: map[sim.PID]sim.Time{0: 30, 4: 70, 6: 15},
		seed:    4,
	}.exec(t)
}

func TestFig8LeaderGroupPartiallyCrashes(t *testing.T) {
	// Two holders of the leading identifier "a"; one crashes. HΩ's
	// multiplicity must shrink to 1 and the survivor leads alone.
	ids := ident.Assignment{"a", "a", "b", "c", "d"}
	fig8Run{
		ids:       ids,
		t:         2,
		crashes:   map[sim.PID]sim.Time{0: 40},
		stabilize: 100,
		mode:      oracle.AdversaryRotate,
		seed:      5,
	}.exec(t)
}

func TestFig8RotatingAdversary(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		fig8Run{
			ids:       ident.Balanced(5, 2),
			t:         2,
			mode:      oracle.AdversaryRotate,
			stabilize: 150,
			crashes:   map[sim.PID]sim.Time{2: 60},
			seed:      seed,
		}.exec(t)
	}
}

func TestFig8SplitBrainAdversary(t *testing.T) {
	// Different processes see different leaders until stabilization:
	// agreement must hold throughout, termination after.
	for seed := int64(1); seed <= 6; seed++ {
		fig8Run{
			ids:       ident.Balanced(6, 3),
			t:         2,
			mode:      oracle.AdversarySplit,
			stabilize: 200,
			crashes:   map[sim.PID]sim.Time{1: 90},
			seed:      seed,
		}.exec(t)
	}
}

func TestFig8SameProposalsEverywhere(t *testing.T) {
	props := make([]core.Value, 5)
	for i := range props {
		props[i] = "only"
	}
	rep := fig8Run{ids: ident.Balanced(5, 2), t: 2, proposals: props, seed: 7}.exec(t)
	if rep.Value != "only" {
		t.Errorf("decided %q, want %q", rep.Value, "only")
	}
}

func TestFig8MaxToleratedCrashes(t *testing.T) {
	// n=5, t=2: exactly 2 crashes, the boundary of the majority model.
	fig8Run{
		ids:     ident.Balanced(5, 2),
		t:       2,
		crashes: map[sim.PID]sim.Time{1: 25, 3: 50},
		seed:    8,
	}.exec(t)
}

func TestFig8CrashAtTimeZeroish(t *testing.T) {
	fig8Run{
		ids:     ident.Balanced(5, 2),
		t:       2,
		crashes: map[sim.PID]sim.Time{0: 1},
		seed:    9,
	}.exec(t)
}

func TestFig8ManySeedsAgainstAdversaries(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	for seed := int64(10); seed < 22; seed++ {
		mode := oracle.Adversary(seed % 3)
		fig8Run{
			ids:       ident.Balanced(6, 2),
			t:         2,
			mode:      mode,
			stabilize: 120,
			crashes:   map[sim.PID]sim.Time{sim.PID(seed % 6): 40},
			seed:      seed,
		}.exec(t)
	}
}

func TestFig8PanicsOnBadParameters(t *testing.T) {
	tests := []struct {
		name  string
		setup func()
	}{
		{"t too large", func() {
			eng := sim.New(sim.Config{IDs: ident.Unique(4), Seed: 1, KnownN: true})
			truth := fd.NewGroundTruth(ident.Unique(4), nil)
			det := oracle.NewHOmega(oracle.NewWorld(truth, 0), oracle.AdversaryNone)
			inst := core.NewFig8(det, 2, "x")
			eng.AddProcess(sim.NewNode().Add("d", det).Add("c", inst))
			for i := 0; i < 3; i++ {
				eng.AddProcess(sim.NewNode().Add("d", oracle.NewHOmega(oracle.NewWorld(truth, 0), oracle.AdversaryNone)).Add("c", core.NewFig8(oracle.NewHOmega(oracle.NewWorld(truth, 0), oracle.AdversaryNone), 2, "x")))
			}
			eng.Run(1)
		}},
		{"unknown n", func() {
			eng := sim.New(sim.Config{IDs: ident.Unique(1), Seed: 1})
			truth := fd.NewGroundTruth(ident.Unique(1), nil)
			det := oracle.NewHOmega(oracle.NewWorld(truth, 0), oracle.AdversaryNone)
			eng.AddProcess(sim.NewNode().Add("d", det).Add("c", core.NewFig8(det, 0, "x")))
			eng.Run(1)
		}},
		{"bottom proposed", func() {
			eng := sim.New(sim.Config{IDs: ident.Unique(1), Seed: 1, KnownN: true})
			truth := fd.NewGroundTruth(ident.Unique(1), nil)
			det := oracle.NewHOmega(oracle.NewWorld(truth, 0), oracle.AdversaryNone)
			eng.AddProcess(sim.NewNode().Add("d", det).Add("c", core.NewFig8(det, 0, core.Bottom)))
			eng.Run(1)
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tt.setup()
		})
	}
}

// TestFig8OverRealDetector stacks Fig. 8 on the paper's own Fig. 6
// detector in a partially synchronous network: the end-to-end claim that
// consensus is solvable in HPS with a correct majority (E12).
func TestFig8OverRealDetector(t *testing.T) {
	ids := ident.Balanced(5, 2)
	n := ids.N()
	crashes := map[sim.PID]sim.Time{3: 40}
	proposals := make([]core.Value, n)
	for i := range proposals {
		proposals[i] = core.Value(fmt.Sprintf("v%d", i))
	}
	eng := sim.New(sim.Config{
		IDs:    ids,
		Net:    sim.PartialSync{GST: 60, Delta: 3},
		Seed:   11,
		KnownN: true,
	})
	truth := fd.NewGroundTruth(ids, crashes)
	insts := make([]*core.Fig8, n)
	for i := 0; i < n; i++ {
		det := ohp.New()
		insts[i] = core.NewFig8(det, 2, proposals[i])
		eng.AddProcess(sim.NewNode().Add("ohp", det).Add("consensus", insts[i]))
	}
	eng.CrashSchedule(crashes)
	eng.RunUntil(2_000_000, func() bool {
		for _, p := range truth.Correct() {
			if !insts[p].Decided().Decided {
				return false
			}
		}
		return true
	})
	outcomes := make([]core.Outcome, n)
	for i, inst := range insts {
		outcomes[i] = inst.Decided()
	}
	if _, err := check.Consensus(truth, proposals, outcomes); err != nil {
		t.Fatal(err)
	}
}
