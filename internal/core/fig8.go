package core

import (
	"fmt"

	"repro/internal/fd"
	"repro/internal/sim"
)

// Ph1Msg is Fig. 8's Phase 1 message (PH1, r, est1).
type Ph1Msg struct {
	Round int
	Est   Value
}

// MsgTag implements sim.Tagger.
func (Ph1Msg) MsgTag() string { return "PH1" }

// Ph2Msg is Fig. 8's Phase 2 message (PH2, r, est2); Est may be Bottom.
type Ph2Msg struct {
	Round int
	Est   Value
}

// MsgTag implements sim.Tagger.
func (Ph2Msg) MsgTag() string { return "PH2" }

type fig8Phase int

const (
	f8Coord fig8Phase = iota + 1
	f8Ph0
	f8Ph1
	f8Ph2
)

// Fig8 is the per-process consensus instance for HAS[t < n/2, HΩ]
// (Figure 8, Theorem 7). It requires the engine to expose n (KnownN) and a
// bound t < n/2 on the number of faulty processes. Attach it to a node
// together with its HΩ detector module so that detector output changes
// re-evaluate the phase guards.
type Fig8 struct {
	decider
	d        fd.HOmega
	t        int
	proposal Value

	n     int
	round int
	phase fig8Phase
	est1  Value
	est2  Value

	// Per-round reception buffers. COORD keeps only estimates addressed to
	// this identifier (the guard counts homonym co-leaders); PH0 keeps the
	// first estimate; PH1/PH2 keep one entry per received copy.
	coord map[int][]Value
	ph0   map[int]*Value
	ph1   map[int][]Value
	ph2   map[int][]Value

	// skipCoord ablates the Leaders' Coordination Phase (see
	// NewFig8NoCoordination); maxRounds bounds ablated runs.
	skipCoord bool
	maxRounds int

	// alpha, when positive, replaces the knowledge of n per the paper's
	// footnote 5: quorums wait for α messages and a value is adopted when
	// α copies of it arrived. Requires α > n/2 and ≥ α correct processes.
	alpha int

	// epoch tags the heartbeat timer chain. An outage strands the pre-crash
	// timer (timers firing on a down process are dropped, but one set just
	// before the crash can outlive the outage); bumping the epoch on
	// recovery makes such stale timers recognizable, so the restarted chain
	// is the only live one.
	epoch int
	// rejoining, set on recovery, enables the round-resync fast-forward: any
	// protocol message of a round above the local one (a REJOIN_ACK, or
	// ordinary traffic from peers that moved on) pulls the process into that
	// round's Phase 1. It stays set until the process closes a full Phase 2
	// quorum — one successful round means it is a normal participant again.
	rejoining bool
}

var (
	_ sim.Process   = (*Fig8)(nil)
	_ sim.Poller    = (*Fig8)(nil)
	_ sim.Recoverer = (*Fig8)(nil)
)

// NewFig8 creates a consensus instance proposing the given value, using
// detector d ∈ HΩ and tolerating up to t crashes.
func NewFig8(d fd.HOmega, t int, proposal Value) *Fig8 {
	return &Fig8{
		d:        d,
		t:        t,
		proposal: proposal,
		coord:    make(map[int][]Value),
		ph0:      make(map[int]*Value),
		ph1:      make(map[int][]Value),
		ph2:      make(map[int][]Value),
	}
}

// NewFig8NoCoordination creates the ABLATED variant without the Leaders'
// Coordination Phase — the algorithm one would get by using the anonymous
// protocol of [4] with HΩ naively. Safety (validity/agreement) still holds
// (it rests on the Phase 1/2 majority quorums alone), but with several
// homonymous leaders pushing different estimates the termination argument
// of Lemma 7 breaks: rounds can loop on split Phase-0 adoptions. The
// ablation experiment (E14) quantifies this; SetMaxRounds bounds runs.
func NewFig8NoCoordination(d fd.HOmega, t int, proposal Value) *Fig8 {
	c := NewFig8(d, t, proposal)
	c.skipCoord = true
	return c
}

// NewFig8Alpha creates the footnote-5 variant: the knowledge of n is
// replaced by a parameter α such that α > n/2 and, in every execution, at
// least α processes are correct. Quorum waits collect α messages and a
// value is adopted when α equal copies arrived — any two α-quorums
// intersect, so the Phase 1/2 safety argument is unchanged, and with ≥ α
// correct senders the waits terminate. The instance never queries
// Environment.N, so it runs with completely unknown membership size.
func NewFig8Alpha(d fd.HOmega, alpha int, proposal Value) *Fig8 {
	if alpha < 1 {
		panic(fmt.Sprintf("core: Fig8Alpha requires alpha >= 1, got %d", alpha))
	}
	c := NewFig8(d, 0, proposal)
	c.alpha = alpha
	return c
}

// SetMaxRounds bounds the number of rounds executed (0 = unlimited);
// ablation experiments use it to stop non-terminating configurations.
func (c *Fig8) SetMaxRounds(k int) { c.maxRounds = k }

// Init implements sim.Process: propose(v).
func (c *Fig8) Init(env sim.Environment) {
	c.env = env
	if c.alpha == 0 {
		n, known := env.N()
		if !known {
			panic("core: Fig8 requires HAS[t<n/2] with n known (sim.Config.KnownN), or the α variant")
		}
		if c.t < 0 || 2*c.t >= n {
			panic(fmt.Sprintf("core: Fig8 requires t < n/2, got t=%d n=%d", c.t, n))
		}
		c.n = n
	}
	if c.proposal == Bottom {
		panic("core: Bottom must not be proposed")
	}
	c.est1 = c.proposal
	c.round = 1
	c.startRound()
	env.SetTimer(heartbeat, c.epoch)
	c.step()
}

// quorumSize is the number of messages Phases 1–2 wait for: n−t with
// known n, α in the footnote-5 variant.
func (c *Fig8) quorumSize() int {
	if c.alpha > 0 {
		return c.alpha
	}
	return c.n - c.t
}

// adopted reports whether a value with the given tally is adopted as est2:
// more than n/2 copies with known n, at least α copies in the α variant.
func (c *Fig8) adopted(count int) bool {
	if c.alpha > 0 {
		return count >= c.alpha
	}
	return 2*count > c.n
}

func (c *Fig8) startRound() {
	if c.skipCoord {
		c.phase = f8Ph0
		return
	}
	c.phase = f8Coord
	c.env.Broadcast(CoordMsg{ID: c.env.ID(), Round: c.round, Est: c.est1})
}

// OnTimer implements sim.Process: the heartbeat re-evaluates guards whose
// truth changed with virtual time only (detector stabilization). A decided
// process stops its heartbeat so that finished executions drain. Timers of
// an older epoch are stale pre-outage survivors and are ignored — OnRecover
// started a fresh chain.
func (c *Fig8) OnTimer(tag int) {
	if tag != c.epoch {
		return
	}
	if !c.outcome.Decided {
		c.env.SetTimer(heartbeat, c.epoch)
	}
	c.step()
}

// OnRecover implements sim.Recoverer: the rejoin protocol. The process
// re-arms its timer chain under a fresh epoch and broadcasts (REJOIN, r);
// peers answer from their current round state (RejoinAckMsg) or, if they
// already decided, by re-sending DECIDE — so the rejoiner either
// fast-forwards into the live round or adopts the decision through the
// Task T2 relay. A process that had decided before the outage keeps its
// decision (state survives a crash) and only re-relays it.
func (c *Fig8) OnRecover() {
	if c.env == nil {
		return // crashed before Init ran; the engine never started this instance
	}
	c.epoch++
	if c.outcome.Decided {
		// The pre-crash DECIDE broadcast may have been lost in part (e.g. a
		// crash during the broadcast itself); re-relay it.
		c.env.Broadcast(DecideMsg{Val: c.outcome.Value, Round: c.outcome.Round})
		return
	}
	c.rejoining = true
	c.env.SetTimer(heartbeat, c.epoch)
	c.env.Broadcast(RejoinMsg{Round: c.round})
	c.step()
}

// Poll implements sim.Poller: co-located module activity (the detector)
// may have changed guard values.
func (c *Fig8) Poll() { c.step() }

// OnMessage implements sim.Process. Every round-stamped message doubles as
// a resync signal for a rejoining process (maybeResync); the message is
// recorded in its reception buffer first, so a message that triggers the
// jump still counts toward its round's quorums.
func (c *Fig8) OnMessage(payload any) {
	switch m := payload.(type) {
	case DecideMsg:
		c.onDecide(m)
	case RejoinMsg:
		c.onRejoin()
	case RejoinAckMsg:
		c.maybeResync(m.Round, m.Est, true)
	case CoordMsg:
		if m.ID == c.env.ID() {
			c.coord[m.Round] = append(c.coord[m.Round], m.Est)
		}
		c.maybeResync(m.Round, m.Est, true)
	case Ph0Msg:
		if c.ph0[m.Round] == nil {
			v := m.Est
			c.ph0[m.Round] = &v
		}
		c.maybeResync(m.Round, m.Est, true)
	case Ph1Msg:
		c.ph1[m.Round] = append(c.ph1[m.Round], m.Est)
		c.maybeResync(m.Round, m.Est, true)
	case Ph2Msg:
		c.ph2[m.Round] = append(c.ph2[m.Round], m.Est)
		c.maybeResync(m.Round, m.Est, m.Est != Bottom)
	}
	c.step()
}

// onRejoin answers a peer's (REJOIN, r): a decided process re-sends DECIDE
// (T2 re-relay), everyone else reports its current position.
func (c *Fig8) onRejoin() {
	if c.answerRejoin() {
		return
	}
	c.env.Broadcast(RejoinAckMsg{Round: c.round, Phase: int(c.phase), Est: c.est1, Est2: c.est2})
}

// maybeResync fast-forwards a rejoining process toward the live protocol
// state. A round above the local one is joined at Phase 1, casting this
// process's first — and only — PH1 vote there (rounds are monotone, so a
// strictly higher round was never voted in). Within the local round, the
// process may be wedged in a wait whose messages were lost during the
// outage: a leader in the Coordination Phase skips the co-leader wait
// (safety rests on the Phase 1/2 quorums alone), and a non-leader in
// Phase 0 whose leader push was lost adopts the circulating estimate and
// joins Phase 1 — in both cases no Phase 1/2 broadcast of this round has
// been made yet, so no vote is ever duplicated. Adopting a circulating
// est1 is safe because after a decision of v every est1 in any later round
// equals v (the Phase 2 quorum-intersection lock), and before one, est1
// values only seed votes.
func (c *Fig8) maybeResync(round int, est Value, adopt bool) {
	if !c.rejoining || c.outcome.Decided {
		return
	}
	switch {
	case round > c.round:
		if adopt {
			c.est1 = est
		}
		c.round = round
		// A jumping leader must still play its leader part in the target
		// round: the co-leaders' Coordination Phase counts its COORD, and
		// the followers' Phase 0 waits for a leader push — if every holder
		// of the leading identifier is a rejoiner (churn does not spare
		// leader groups), skipping these would wedge the whole system in a
		// silent round. Both are estimate carriers, not votes, so the
		// once-per-round discipline (first entry into the round) keeps them
		// safe.
		if c.leaderNow() {
			c.env.Broadcast(CoordMsg{ID: c.env.ID(), Round: c.round, Est: c.est1})
			c.env.Broadcast(Ph0Msg{Round: c.round, Est: c.est1})
		}
		c.phase = f8Ph1
		c.env.Broadcast(Ph1Msg{Round: c.round, Est: c.est1})
	case round == c.round && c.phase == f8Coord:
		if adopt {
			c.est1 = est
		}
		c.phase = f8Ph0
	case round == c.round && c.phase == f8Ph0 && !c.leaderNow():
		if adopt {
			c.est1 = est
		}
		c.phase = f8Ph1
		c.env.Broadcast(Ph1Msg{Round: c.round, Est: c.est1})
	}
}

// leaderNow reports whether the detector currently elects this process.
func (c *Fig8) leaderNow() bool {
	ld, ok := c.d.Leader()
	return ok && ld.ID == c.env.ID()
}

// step runs the state machine until no guard fires.
func (c *Fig8) step() {
	if c.env == nil {
		return
	}
	for !c.outcome.Decided {
		if c.maxRounds > 0 && c.round > c.maxRounds {
			return
		}
		switch c.phase {
		case f8Coord:
			if !c.stepCoord() {
				return
			}
		case f8Ph0:
			if !c.stepPh0() {
				return
			}
		case f8Ph1:
			if !c.stepPh1() {
				return
			}
		case f8Ph2:
			if !c.stepPh2() {
				return
			}
		default:
			return
		}
	}
}

// stepCoord is the Leaders' Coordination Phase wait (lines 9–14): leaders
// wait for COORD messages from all h_multiplicity homonym co-leaders and
// adopt the minimum estimate; non-leaders pass straight through.
func (c *Fig8) stepCoord() bool {
	ld, ok := c.d.Leader()
	iAmLeader := ok && ld.ID == c.env.ID()
	need := ld.Multiplicity
	if need < 1 {
		need = 1
	}
	if iAmLeader && len(c.coord[c.round]) < need {
		return false
	}
	if ests := c.coord[c.round]; len(ests) > 0 {
		c.est1 = minValue(ests)
	}
	c.phase = f8Ph0
	return true
}

// stepPh0 is Phase 0 (lines 16–18): leaders push their estimate; everyone
// else adopts the first leader estimate received; all re-broadcast.
func (c *Fig8) stepPh0() bool {
	v := c.ph0[c.round]
	if !c.leaderNow() && v == nil {
		return false
	}
	if v != nil {
		c.est1 = *v
	}
	c.env.Broadcast(Ph0Msg{Round: c.round, Est: c.est1})
	c.env.Broadcast(Ph1Msg{Round: c.round, Est: c.est1})
	c.phase = f8Ph1
	return true
}

// stepPh1 is Phase 1 (lines 20–26): wait for n−t estimates; a value seen
// more than n/2 times becomes est2, otherwise est2 = ⊥.
func (c *Fig8) stepPh1() bool {
	got := c.ph1[c.round]
	if len(got) < c.quorumSize() {
		return false
	}
	c.est2 = Bottom
	counts := make(map[Value]int, len(got))
	for _, v := range got {
		counts[v]++
		if c.adopted(counts[v]) {
			c.est2 = v
		}
	}
	c.env.Broadcast(Ph2Msg{Round: c.round, Est: c.est2})
	c.phase = f8Ph2
	return true
}

// stepPh2 is Phase 2 (lines 28–34): wait for n−t est2 values; decide on a
// unanimous non-⊥ value, adopt a partially-supported one, skip on all-⊥.
func (c *Fig8) stepPh2() bool {
	got := c.ph2[c.round]
	if len(got) < c.quorumSize() {
		return false
	}
	// Closing a full Phase 2 quorum means the process is a normal
	// participant again: no further rejoin fast-forwards.
	c.rejoining = false
	rec := distinct(got)
	kind, v := classifyRec(rec)
	switch kind {
	case recAllSameValue:
		c.decide(v, c.round)
		return true
	case recValueAndBot:
		c.est1 = v
	case recAllBot:
		// skip
	default:
		c.invariant(false, "fig8: round %d rec contains two non-⊥ values: %v", c.round, rec)
	}
	c.round++
	c.startRound()
	return true
}

// Round returns the current round (observability).
func (c *Fig8) Round() int { return c.round }

// Rejoining reports whether the process is in rejoin catch-up: recovered
// from an outage and not yet through a full Phase 2 quorum (observability).
func (c *Fig8) Rejoining() bool { return c.rejoining }
