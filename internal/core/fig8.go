package core

import (
	"fmt"

	"repro/internal/fd"
	"repro/internal/sim"
)

// Ph1Msg is Fig. 8's Phase 1 message (PH1, r, est1).
type Ph1Msg struct {
	Round int
	Est   Value
}

// MsgTag implements sim.Tagger.
func (Ph1Msg) MsgTag() string { return "PH1" }

// Ph2Msg is Fig. 8's Phase 2 message (PH2, r, est2); Est may be Bottom.
type Ph2Msg struct {
	Round int
	Est   Value
}

// MsgTag implements sim.Tagger.
func (Ph2Msg) MsgTag() string { return "PH2" }

type fig8Phase int

const (
	f8Coord fig8Phase = iota + 1
	f8Ph0
	f8Ph1
	f8Ph2
)

// Fig8 is the per-process consensus instance for HAS[t < n/2, HΩ]
// (Figure 8, Theorem 7). It requires the engine to expose n (KnownN) and a
// bound t < n/2 on the number of faulty processes. Attach it to a node
// together with its HΩ detector module so that detector output changes
// re-evaluate the phase guards.
type Fig8 struct {
	decider
	d        fd.HOmega
	t        int
	proposal Value

	n     int
	round int
	phase fig8Phase
	est1  Value
	est2  Value

	// Per-round reception buffers. COORD keeps only estimates addressed to
	// this identifier (the guard counts homonym co-leaders); PH0 keeps the
	// first estimate; PH1/PH2 keep one entry per received copy.
	coord map[int][]Value
	ph0   map[int]*Value
	ph1   map[int][]Value
	ph2   map[int][]Value

	// skipCoord ablates the Leaders' Coordination Phase (see
	// NewFig8NoCoordination); maxRounds bounds ablated runs.
	skipCoord bool
	maxRounds int

	// alpha, when positive, replaces the knowledge of n per the paper's
	// footnote 5: quorums wait for α messages and a value is adopted when
	// α copies of it arrived. Requires α > n/2 and ≥ α correct processes.
	alpha int
}

var (
	_ sim.Process = (*Fig8)(nil)
	_ sim.Poller  = (*Fig8)(nil)
)

// NewFig8 creates a consensus instance proposing the given value, using
// detector d ∈ HΩ and tolerating up to t crashes.
func NewFig8(d fd.HOmega, t int, proposal Value) *Fig8 {
	return &Fig8{
		d:        d,
		t:        t,
		proposal: proposal,
		coord:    make(map[int][]Value),
		ph0:      make(map[int]*Value),
		ph1:      make(map[int][]Value),
		ph2:      make(map[int][]Value),
	}
}

// NewFig8NoCoordination creates the ABLATED variant without the Leaders'
// Coordination Phase — the algorithm one would get by using the anonymous
// protocol of [4] with HΩ naively. Safety (validity/agreement) still holds
// (it rests on the Phase 1/2 majority quorums alone), but with several
// homonymous leaders pushing different estimates the termination argument
// of Lemma 7 breaks: rounds can loop on split Phase-0 adoptions. The
// ablation experiment (E14) quantifies this; SetMaxRounds bounds runs.
func NewFig8NoCoordination(d fd.HOmega, t int, proposal Value) *Fig8 {
	c := NewFig8(d, t, proposal)
	c.skipCoord = true
	return c
}

// NewFig8Alpha creates the footnote-5 variant: the knowledge of n is
// replaced by a parameter α such that α > n/2 and, in every execution, at
// least α processes are correct. Quorum waits collect α messages and a
// value is adopted when α equal copies arrived — any two α-quorums
// intersect, so the Phase 1/2 safety argument is unchanged, and with ≥ α
// correct senders the waits terminate. The instance never queries
// Environment.N, so it runs with completely unknown membership size.
func NewFig8Alpha(d fd.HOmega, alpha int, proposal Value) *Fig8 {
	if alpha < 1 {
		panic(fmt.Sprintf("core: Fig8Alpha requires alpha >= 1, got %d", alpha))
	}
	c := NewFig8(d, 0, proposal)
	c.alpha = alpha
	return c
}

// SetMaxRounds bounds the number of rounds executed (0 = unlimited);
// ablation experiments use it to stop non-terminating configurations.
func (c *Fig8) SetMaxRounds(k int) { c.maxRounds = k }

// Init implements sim.Process: propose(v).
func (c *Fig8) Init(env sim.Environment) {
	c.env = env
	if c.alpha == 0 {
		n, known := env.N()
		if !known {
			panic("core: Fig8 requires HAS[t<n/2] with n known (sim.Config.KnownN), or the α variant")
		}
		if c.t < 0 || 2*c.t >= n {
			panic(fmt.Sprintf("core: Fig8 requires t < n/2, got t=%d n=%d", c.t, n))
		}
		c.n = n
	}
	if c.proposal == Bottom {
		panic("core: Bottom must not be proposed")
	}
	c.est1 = c.proposal
	c.round = 1
	c.startRound()
	env.SetTimer(heartbeat, 0)
	c.step()
}

// quorumSize is the number of messages Phases 1–2 wait for: n−t with
// known n, α in the footnote-5 variant.
func (c *Fig8) quorumSize() int {
	if c.alpha > 0 {
		return c.alpha
	}
	return c.n - c.t
}

// adopted reports whether a value with the given tally is adopted as est2:
// more than n/2 copies with known n, at least α copies in the α variant.
func (c *Fig8) adopted(count int) bool {
	if c.alpha > 0 {
		return count >= c.alpha
	}
	return 2*count > c.n
}

func (c *Fig8) startRound() {
	if c.skipCoord {
		c.phase = f8Ph0
		return
	}
	c.phase = f8Coord
	c.env.Broadcast(CoordMsg{ID: c.env.ID(), Round: c.round, Est: c.est1})
}

// OnTimer implements sim.Process: the heartbeat re-evaluates guards whose
// truth changed with virtual time only (detector stabilization). A decided
// process stops its heartbeat so that finished executions drain.
func (c *Fig8) OnTimer(tag int) {
	if !c.outcome.Decided {
		c.env.SetTimer(heartbeat, tag)
	}
	c.step()
}

// Poll implements sim.Poller: co-located module activity (the detector)
// may have changed guard values.
func (c *Fig8) Poll() { c.step() }

// OnMessage implements sim.Process.
func (c *Fig8) OnMessage(payload any) {
	switch m := payload.(type) {
	case DecideMsg:
		c.onDecide(m, c.round)
	case CoordMsg:
		if m.ID == c.env.ID() {
			c.coord[m.Round] = append(c.coord[m.Round], m.Est)
		}
	case Ph0Msg:
		if c.ph0[m.Round] == nil {
			v := m.Est
			c.ph0[m.Round] = &v
		}
	case Ph1Msg:
		c.ph1[m.Round] = append(c.ph1[m.Round], m.Est)
	case Ph2Msg:
		c.ph2[m.Round] = append(c.ph2[m.Round], m.Est)
	}
	c.step()
}

// step runs the state machine until no guard fires.
func (c *Fig8) step() {
	if c.env == nil {
		return
	}
	for !c.outcome.Decided {
		if c.maxRounds > 0 && c.round > c.maxRounds {
			return
		}
		switch c.phase {
		case f8Coord:
			if !c.stepCoord() {
				return
			}
		case f8Ph0:
			if !c.stepPh0() {
				return
			}
		case f8Ph1:
			if !c.stepPh1() {
				return
			}
		case f8Ph2:
			if !c.stepPh2() {
				return
			}
		default:
			return
		}
	}
}

// stepCoord is the Leaders' Coordination Phase wait (lines 9–14): leaders
// wait for COORD messages from all h_multiplicity homonym co-leaders and
// adopt the minimum estimate; non-leaders pass straight through.
func (c *Fig8) stepCoord() bool {
	ld, ok := c.d.Leader()
	iAmLeader := ok && ld.ID == c.env.ID()
	need := ld.Multiplicity
	if need < 1 {
		need = 1
	}
	if iAmLeader && len(c.coord[c.round]) < need {
		return false
	}
	if ests := c.coord[c.round]; len(ests) > 0 {
		c.est1 = minValue(ests)
	}
	c.phase = f8Ph0
	return true
}

// stepPh0 is Phase 0 (lines 16–18): leaders push their estimate; everyone
// else adopts the first leader estimate received; all re-broadcast.
func (c *Fig8) stepPh0() bool {
	ld, ok := c.d.Leader()
	iAmLeader := ok && ld.ID == c.env.ID()
	v := c.ph0[c.round]
	if !iAmLeader && v == nil {
		return false
	}
	if v != nil {
		c.est1 = *v
	}
	c.env.Broadcast(Ph0Msg{Round: c.round, Est: c.est1})
	c.env.Broadcast(Ph1Msg{Round: c.round, Est: c.est1})
	c.phase = f8Ph1
	return true
}

// stepPh1 is Phase 1 (lines 20–26): wait for n−t estimates; a value seen
// more than n/2 times becomes est2, otherwise est2 = ⊥.
func (c *Fig8) stepPh1() bool {
	got := c.ph1[c.round]
	if len(got) < c.quorumSize() {
		return false
	}
	c.est2 = Bottom
	counts := make(map[Value]int, len(got))
	for _, v := range got {
		counts[v]++
		if c.adopted(counts[v]) {
			c.est2 = v
		}
	}
	c.env.Broadcast(Ph2Msg{Round: c.round, Est: c.est2})
	c.phase = f8Ph2
	return true
}

// stepPh2 is Phase 2 (lines 28–34): wait for n−t est2 values; decide on a
// unanimous non-⊥ value, adopt a partially-supported one, skip on all-⊥.
func (c *Fig8) stepPh2() bool {
	got := c.ph2[c.round]
	if len(got) < c.quorumSize() {
		return false
	}
	rec := distinct(got)
	kind, v := classifyRec(rec)
	switch kind {
	case recAllSameValue:
		c.decide(v, c.round)
		return true
	case recValueAndBot:
		c.est1 = v
	case recAllBot:
		// skip
	default:
		c.invariant(false, "fig8: round %d rec contains two non-⊥ values: %v", c.round, rec)
	}
	c.round++
	c.startRound()
	return true
}

// Round returns the current round (observability).
func (c *Fig8) Round() int { return c.round }
