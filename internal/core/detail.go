package core

import (
	"fmt"
	"strconv"
	"strings"
)

// The trace detail of a KindDecide event carries everything a replay
// needs to rebuild the process's Outcome without the engine: the decided
// value, the round the decision was reached in, and whether it was
// adopted from a relayed DECIDE. DecideDetail and ParseDecideDetail are
// exact inverses; internal/check's replay tracker leans on that.

// DecideDetail renders a decision as its trace detail, e.g. "v0 r=3" or
// "v1 r=2 (relayed)".
func DecideDetail(v Value, round int, relayed bool) string {
	s := string(v) + " r=" + strconv.Itoa(round)
	if relayed {
		s += " (relayed)"
	}
	return s
}

// ParseDecideDetail inverts DecideDetail. Values may contain spaces (the
// round marker is found from the end), but not the literal substring
// " r=" followed by digits at the tail.
func ParseDecideDetail(detail string) (v Value, round int, relayed bool, err error) {
	s := detail
	if rest, ok := strings.CutSuffix(s, " (relayed)"); ok {
		relayed = true
		s = rest
	}
	i := strings.LastIndex(s, " r=")
	if i < 0 {
		return "", 0, false, fmt.Errorf("core: decide detail %q has no round marker", detail)
	}
	round, err = strconv.Atoi(s[i+len(" r="):])
	if err != nil {
		return "", 0, false, fmt.Errorf("core: decide detail %q has bad round: %v", detail, err)
	}
	return Value(s[:i]), round, relayed, nil
}
