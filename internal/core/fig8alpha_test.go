package core_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/fd/oracle"
	"repro/internal/ident"
	"repro/internal/sim"
)

// The footnote-5 variant: Fig. 8 with α replacing the knowledge of n.
// Note KnownN is FALSE in all these runs — the algorithm never asks for n.

func runFig8Alpha(t *testing.T, ids ident.Assignment, alpha int, crashes map[sim.PID]sim.Time, mode oracle.Adversary, stabilize sim.Time, seed int64) check.Report {
	t.Helper()
	n := ids.N()
	eng := sim.New(sim.Config{IDs: ids, Net: sim.Async{MaxDelay: 8}, Seed: seed}) // n unknown!
	truth := fd.NewGroundTruth(ids, crashes)
	world := oracle.NewWorld(truth, stabilize)
	proposals := make([]core.Value, n)
	insts := make([]*core.Fig8, n)
	for i := 0; i < n; i++ {
		proposals[i] = core.Value(fmt.Sprintf("v%d", i))
		det := oracle.NewHOmega(world, mode)
		insts[i] = core.NewFig8Alpha(det, alpha, proposals[i])
		eng.AddProcess(sim.NewNode().Add("homega", det).Add("consensus", insts[i]))
	}
	eng.CrashSchedule(crashes)
	eng.RunUntil(1_000_000, func() bool {
		for _, p := range truth.Correct() {
			if !insts[p].Decided().Decided {
				return false
			}
		}
		return true
	})
	outcomes := make([]core.Outcome, n)
	for i, inst := range insts {
		outcomes[i] = inst.Decided()
		if err := inst.InvariantErr(); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := check.Consensus(truth, proposals, outcomes)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestFig8AlphaFailureFree(t *testing.T) {
	// n=5 (unknown to the processes), α=3 > n/2, 5 ≥ α correct.
	runFig8Alpha(t, ident.Balanced(5, 2), 3, nil, oracle.AdversaryNone, 0, 1)
}

func TestFig8AlphaWithCrashes(t *testing.T) {
	// n=7, α=4: up to 3 crashes keep ≥ α correct.
	crashes := map[sim.PID]sim.Time{0: 20, 3: 45, 6: 70}
	runFig8Alpha(t, ident.Balanced(7, 3), 4, crashes, oracle.AdversaryRotate, 120, 2)
}

func TestFig8AlphaAdversarySweep(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		crashes := map[sim.PID]sim.Time{sim.PID(seed % 6): 30}
		runFig8Alpha(t, ident.Balanced(6, 2), 4, crashes, oracle.AdversarySplit, 150, seed)
	}
}

func TestFig8AlphaNeverQueriesN(t *testing.T) {
	// The harness above already runs with KnownN=false: a query would
	// panic inside Init. This test pins the contract explicitly.
	eng := sim.New(sim.Config{IDs: ident.Unique(3), Seed: 3}) // KnownN=false
	truth := fd.NewGroundTruth(ident.Unique(3), nil)
	world := oracle.NewWorld(truth, 0)
	for i := 0; i < 3; i++ {
		det := oracle.NewHOmega(world, oracle.AdversaryNone)
		inst := core.NewFig8Alpha(det, 2, core.Value(fmt.Sprintf("v%d", i)))
		eng.AddProcess(sim.NewNode().Add("d", det).Add("c", inst))
	}
	eng.Run(100) // must not panic
}

func TestFig8AlphaBadAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("alpha < 1 should panic")
		}
	}()
	core.NewFig8Alpha(nil, 0, "v")
}
