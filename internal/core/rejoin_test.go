package core_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/fd/oracle"
	"repro/internal/ident"
	"repro/internal/sim"
)

// These tests drive the rejoin protocol through an adversary grid: crashes
// mid-round, crashes after a decision was broadcast, crashes *during* the
// DECIDE broadcast itself (the PR 2 CrashDuringBroadcast machinery), each
// followed by a recovery — under rotating/split leader oracles and several
// seeds. Every run must keep InvariantErr() nil, satisfy the
// crash-recovery consensus properties (Termination over the eventually-up
// set), and never lose or change a decision across an outage.

// churnTruth builds the ground truth for an explicit crash/recover
// schedule (the engine consumes the same events via ApplyChurn).
func churnTruth(ids ident.Assignment, evs []sim.ChurnEvent) *fd.GroundTruth {
	return fd.NewGroundTruthFromChurn(ids, evs)
}

// verifyChurnRun asserts the full crash-recovery contract on a finished
// run: engine bookkeeping matches the schedule-derived truth, invariants
// held, decisions were stable, and the restated properties pass.
func verifyChurnRun(t *testing.T, tag string, eng *sim.Engine, truth *fd.GroundTruth,
	proposals []core.Value, outcomes []core.Outcome, invErr func(int) error, mon *check.DecisionMonitor) check.Report {
	t.Helper()
	if eng.Stopped() == sim.StopMaxEvents {
		t.Fatalf("%s: run truncated by MaxEvents", tag)
	}
	if got, want := eng.EventuallyUpSet(), truth.EventuallyUp(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("%s: engine EventuallyUpSet %v != truth %v", tag, got, want)
	}
	if got, want := eng.CorrectSet(), truth.Correct(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("%s: engine CorrectSet %v != truth %v", tag, got, want)
	}
	for i := range outcomes {
		if err := invErr(i); err != nil {
			t.Fatalf("%s: invariant: %v", tag, err)
		}
	}
	if err := mon.Err(); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	rep, err := check.ConsensusChurn(truth, proposals, outcomes)
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	return rep
}

// runFig8Churn wires n Fig8 instances over HΩ oracles, applies the churn
// schedule (and optional CrashDuringBroadcast arms), runs until every
// eventually-up process decided, and verifies the full contract.
func runFig8Churn(t *testing.T, tag string, ids ident.Assignment, tt int, evs []sim.ChurnEvent,
	mode oracle.Adversary, stabilize sim.Time, seed int64) []core.Outcome {
	t.Helper()
	n := ids.N()
	proposals := make([]core.Value, n)
	eng := sim.New(sim.Config{IDs: ids, Net: sim.Async{MaxDelay: 8}, Seed: seed, KnownN: true})
	truth := churnTruth(ids, evs)
	world := oracle.NewWorld(truth, stabilize)
	insts := make([]*core.Fig8, n)
	for i := 0; i < n; i++ {
		proposals[i] = core.Value(fmt.Sprintf("v%d", i))
		det := oracle.NewHOmega(world, mode)
		insts[i] = core.NewFig8(det, tt, proposals[i])
		eng.AddProcess(sim.NewNode().Add("homega", det).Add("consensus", insts[i]))
	}
	eng.ApplyChurn(evs)
	mon := check.NewDecisionMonitor()
	eng.AfterEvent(func(_ sim.Time, p sim.PID) {
		if p >= 0 {
			mon.Observe(p, insts[p].Decided())
		}
	})
	eng.RunUntil(1_000_000, func() bool {
		for _, p := range truth.EventuallyUp() {
			if !insts[p].Decided().Decided {
				return false
			}
		}
		return true
	})
	outcomes := make([]core.Outcome, n)
	for i, inst := range insts {
		outcomes[i] = inst.Decided()
	}
	verifyChurnRun(t, tag, eng, truth, proposals, outcomes,
		func(i int) error { return insts[i].InvariantErr() }, mon)
	return outcomes
}

// TestFig8RejoinMidRound: a churner crashes early — mid-round, before the
// leader output stabilizes — and recovers while the survivors are still
// (or again) working; it must rejoin and decide.
func TestFig8RejoinMidRound(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, mode := range []oracle.Adversary{oracle.AdversaryNone, oracle.AdversaryRotate, oracle.AdversarySplit} {
			evs := []sim.ChurnEvent{
				{P: 0, At: 3},
				{P: 0, At: 120, Recover: true},
			}
			tag := fmt.Sprintf("seed=%d mode=%d", seed, mode)
			runFig8Churn(t, tag, ident.Balanced(5, 2), 2, evs, mode, 150, seed)
		}
	}
}

// TestFig8RejoinAfterDecision: the survivors decide while the churner is
// down (stabilize=0, fast leaders); the churner recovers long after and
// must adopt the decision through the re-armed DECIDE relay, reporting the
// round the decision was actually reached in.
func TestFig8RejoinAfterDecision(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		evs := []sim.ChurnEvent{
			{P: 1, At: 2},
			{P: 1, At: 400, Recover: true},
		}
		outs := runFig8Churn(t, fmt.Sprintf("seed=%d", seed), ident.Balanced(5, 2), 2, evs, oracle.AdversaryNone, 0, seed)
		if !outs[1].Decided {
			t.Fatalf("seed=%d: rejoiner did not decide", seed)
		}
		if outs[1].Relayed {
			// The relay carried the origin round; assert it matches a quorum
			// decision (ConsensusChurn already did — this pins the field).
			found := false
			for i, o := range outs {
				if i != 1 && o.Decided && !o.Relayed && o.Round == outs[1].Round {
					found = true
				}
			}
			if !found {
				t.Fatalf("seed=%d: relayed round %d matches no quorum decision: %+v", seed, outs[1].Round, outs)
			}
		}
	}
}

// TestFig8RejoinCrashDuringDecideBroadcast reuses the PR 2 mid-broadcast
// partial-crash machinery: the victim crashes during its first broadcast
// after `after`, each copy delivered with probability p — sweeping `after`
// over the decision window makes some runs cut the DECIDE broadcast itself
// (decided before the crash) and others an earlier phase broadcast
// (undecided at the crash). Both classes must verify, and the grid must
// hit both.
func TestFig8RejoinCrashDuringDecideBroadcast(t *testing.T) {
	ids := ident.Balanced(5, 2)
	n := ids.N()
	decidedBeforeCrash, undecidedAtCrash := 0, 0
	for seed := int64(1); seed <= 6; seed++ {
		for _, after := range []sim.Time{6, 10, 14, 18} {
			for _, prob := range []float64{0.0, 0.4, 0.8} {
				tag := fmt.Sprintf("seed=%d after=%d prob=%v", seed, after, prob)
				proposals := make([]core.Value, n)
				eng := sim.New(sim.Config{IDs: ids, Net: sim.Async{MaxDelay: 8}, Seed: seed, KnownN: true})
				// The truth is reconstructed after the run (the arm's crash
				// time is execution-dependent); the world stabilizes at 0 so
				// decisions happen inside the sweep's `after` window.
				pending := churnTruth(ids, nil)
				world := oracle.NewWorld(pending, 0)
				insts := make([]*core.Fig8, n)
				for i := 0; i < n; i++ {
					proposals[i] = core.Value(fmt.Sprintf("v%d", i))
					det := oracle.NewHOmega(world, oracle.AdversaryNone)
					insts[i] = core.NewFig8(det, 2, proposals[i])
					eng.AddProcess(sim.NewNode().Add("homega", det).Add("consensus", insts[i]))
				}
				const victim = 2
				eng.CrashDuringBroadcast(victim, after, prob)
				eng.RecoverAt(victim, 500)
				mon := check.NewDecisionMonitor()
				eng.AfterEvent(func(_ sim.Time, p sim.PID) {
					if p >= 0 {
						mon.Observe(p, insts[p].Decided())
					}
				})
				var crashedDecided, crashedUndecided bool
				eng.AfterEvent(func(_ sim.Time, p sim.PID) {
					if p == victim && eng.Crashed(victim) && !crashedDecided && !crashedUndecided {
						if insts[victim].Decided().Decided {
							crashedDecided = true
						} else {
							crashedUndecided = true
						}
					}
				})
				// Run to quiescence (not an early-exit predicate): decided
				// processes drain their heartbeats, the scheduled recovery
				// fires either way, and an arm whose broadcast never came
				// is disarmed — so the engine's Correct/EventuallyUp sets
				// are final before they are cross-checked.
				eng.Run(1_000_000)
				var evs []sim.ChurnEvent
				if eng.EverCrashed(victim) {
					// Reconstruct the fault pattern the execution realized:
					// one outage, ended by the scheduled recovery. (Interval
					// boundaries don't matter to ConsensusChurn — only the
					// eventually-up classification does.)
					evs = []sim.ChurnEvent{{P: victim, At: after}, {P: victim, At: 500, Recover: true}}
				}
				truth := churnTruth(ids, evs)
				outcomes := make([]core.Outcome, n)
				for i, inst := range insts {
					outcomes[i] = inst.Decided()
				}
				verifyChurnRun(t, tag, eng, truth, proposals, outcomes,
					func(i int) error { return insts[i].InvariantErr() }, mon)
				if crashedDecided {
					decidedBeforeCrash++
				}
				if crashedUndecided {
					undecidedAtCrash++
				}
			}
		}
	}
	if decidedBeforeCrash == 0 || undecidedAtCrash == 0 {
		t.Fatalf("grid did not cover both crash classes: decided-before-crash=%d undecided-at-crash=%d",
			decidedBeforeCrash, undecidedAtCrash)
	}
}

// runFig9Churn is runFig8Churn for Fig9 over HΩ+HΣ oracles.
func runFig9Churn(t *testing.T, tag string, ids ident.Assignment, evs []sim.ChurnEvent,
	mode oracle.Adversary, stabilize sim.Time, seed int64) []core.Outcome {
	t.Helper()
	n := ids.N()
	proposals := make([]core.Value, n)
	eng := sim.New(sim.Config{IDs: ids, Net: sim.Async{MaxDelay: 8}, Seed: seed})
	truth := churnTruth(ids, evs)
	world := oracle.NewWorld(truth, stabilize)
	insts := make([]*core.Fig9, n)
	for i := 0; i < n; i++ {
		proposals[i] = core.Value(fmt.Sprintf("v%d", i))
		hs := oracle.NewHSigma(world)
		ho := oracle.NewHOmega(world, mode)
		insts[i] = core.NewFig9(ho, hs, proposals[i])
		eng.AddProcess(sim.NewNode().Add("hsigma", hs).Add("homega", ho).Add("consensus", insts[i]))
	}
	eng.ApplyChurn(evs)
	mon := check.NewDecisionMonitor()
	eng.AfterEvent(func(_ sim.Time, p sim.PID) {
		if p >= 0 {
			mon.Observe(p, insts[p].Decided())
		}
	})
	eng.RunUntil(1_000_000, func() bool {
		for _, p := range truth.EventuallyUp() {
			if !insts[p].Decided().Decided {
				return false
			}
		}
		return true
	})
	outcomes := make([]core.Outcome, n)
	for i, inst := range insts {
		outcomes[i] = inst.Decided()
	}
	verifyChurnRun(t, tag, eng, truth, proposals, outcomes,
		func(i int) error { return insts[i].InvariantErr() }, mon)
	return outcomes
}

// TestFig9RejoinMidRound: churners (including a leader-identifier holder,
// whose Coordination-Phase wait is the nastiest place to die) crash
// mid-round and recover; Fig. 9's HΣ "corr" quorum needs every
// eventually-up process, so the rejoiners' sub-round climb is on the
// critical path of everyone's termination.
func TestFig9RejoinMidRound(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, mode := range []oracle.Adversary{oracle.AdversaryNone, oracle.AdversaryRotate} {
			evs := []sim.ChurnEvent{
				{P: 0, At: 2}, // smallest-id holder: a stabilized leader
				{P: 0, At: 90, Recover: true},
				{P: 3, At: 9},
				{P: 3, At: 110, Recover: true},
			}
			tag := fmt.Sprintf("seed=%d mode=%d", seed, mode)
			runFig9Churn(t, tag, ident.Balanced(6, 3), evs, mode, 160, seed)
		}
	}
}

// TestFig9RejoinStableLabels wedge-hunts the hardest Fig. 9 catch-up case:
// with stabilize=0 the HΣ labels never change during the run, so the
// label-growth sub-round trigger — which accidentally rescues most
// mid-round recoveries — never fires. A rejoiner stranded inside Phase 1
// or 2 of its round (peers consumed its pre-crash quorum message and moved
// on, their later traffic died with the outage) can then only catch up
// through the REJOIN_ACK exchange: the acks must carry enough position
// (phase, sub-round, est2) for the rejoiner to follow — and Fig. 9's
// everyone-quorums make that rejoiner the whole system's critical path.
func TestFig9RejoinStableLabels(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		for _, crashAt := range []sim.Time{3, 6, 9, 12, 15, 18} {
			evs := []sim.ChurnEvent{
				{P: 1, At: crashAt},
				{P: 1, At: 200, Recover: true},
			}
			tag := fmt.Sprintf("seed=%d crash=%d", seed, crashAt)
			runFig9Churn(t, tag, ident.Balanced(6, 3), evs, oracle.AdversaryNone, 0, seed)
		}
	}
}

// TestFig9RejoinAfterDecision: decisions land while the churner is down
// (final-down co-churner shrinks the quorum target to the eventually-up
// set); the late rejoiner must adopt via the re-armed DECIDE relay.
func TestFig9RejoinAfterDecision(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		evs := []sim.ChurnEvent{
			{P: 2, At: 2},
			{P: 2, At: 600, Recover: true},
			{P: 5, At: 15}, // final down: never recovers
		}
		outs := runFig9Churn(t, fmt.Sprintf("seed=%d", seed), ident.Balanced(6, 3), evs, oracle.AdversaryNone, 60, seed)
		if !outs[2].Decided {
			t.Fatalf("seed=%d: rejoiner did not decide", seed)
		}
	}
}
