package core_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/fd/oracle"
	"repro/internal/ident"
	"repro/internal/sim"
)

// These tests inject the model's nastiest failure mode — crashing *during*
// a broadcast so that an arbitrary subset of processes receives the final
// message — into both consensus algorithms. The paper's §2 communication
// model explicitly allows it, and the Phase 1/2 quorum logic must absorb
// the resulting asymmetric views.

func runFig8WithPartialCrash(t *testing.T, seed int64, deliverProb float64) {
	t.Helper()
	ids := ident.Balanced(5, 2)
	n := ids.N()
	proposals := make([]core.Value, n)
	eng := sim.New(sim.Config{IDs: ids, Net: sim.Async{MaxDelay: 8}, Seed: seed, KnownN: true})
	truth := fd.NewGroundTruth(ids, map[sim.PID]sim.Time{1: 25})
	world := oracle.NewWorld(truth, 80)
	insts := make([]*core.Fig8, n)
	for i := 0; i < n; i++ {
		proposals[i] = core.Value(fmt.Sprintf("v%d", i))
		det := oracle.NewHOmega(world, oracle.AdversaryRotate)
		insts[i] = core.NewFig8(det, 2, proposals[i])
		eng.AddProcess(sim.NewNode().Add("homega", det).Add("consensus", insts[i]))
	}
	// p1 crashes during its first broadcast at or after t=25: some peers
	// get its message, others never do.
	eng.CrashDuringBroadcast(1, 25, deliverProb)
	eng.RunUntil(1_000_000, func() bool {
		for _, p := range truth.Correct() {
			if !insts[p].Decided().Decided {
				return false
			}
		}
		return true
	})
	outcomes := make([]core.Outcome, n)
	for i, inst := range insts {
		outcomes[i] = inst.Decided()
		if err := inst.InvariantErr(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := check.Consensus(truth, proposals, outcomes); err != nil {
		t.Fatal(err)
	}
}

func TestFig8CrashMidBroadcast(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, prob := range []float64{0.0, 0.3, 0.7} {
			runFig8WithPartialCrash(t, seed, prob)
		}
	}
}

func TestFig9CrashMidBroadcast(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		ids := ident.Balanced(6, 3)
		n := ids.N()
		proposals := make([]core.Value, n)
		eng := sim.New(sim.Config{IDs: ids, Net: sim.Async{MaxDelay: 8}, Seed: seed})
		truth := fd.NewGroundTruth(ids, map[sim.PID]sim.Time{0: 20, 3: 45})
		world := oracle.NewWorld(truth, 100)
		insts := make([]*core.Fig9, n)
		for i := 0; i < n; i++ {
			proposals[i] = core.Value(fmt.Sprintf("v%d", i))
			hs := oracle.NewHSigma(world)
			ho := oracle.NewHOmega(world, oracle.AdversaryRotate)
			insts[i] = core.NewFig9(ho, hs, proposals[i])
			eng.AddProcess(sim.NewNode().Add("hsigma", hs).Add("homega", ho).Add("consensus", insts[i]))
		}
		eng.CrashDuringBroadcast(0, 20, 0.5)
		eng.CrashDuringBroadcast(3, 45, 0.3)
		eng.RunUntil(1_000_000, func() bool {
			for _, p := range truth.Correct() {
				if !insts[p].Decided().Decided {
					return false
				}
			}
			return true
		})
		outcomes := make([]core.Outcome, n)
		for i, inst := range insts {
			outcomes[i] = inst.Decided()
			if err := inst.InvariantErr(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := check.Consensus(truth, proposals, outcomes); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestFig8AblatedSafetyUnderHomonymy: the ablation (no Leaders'
// Coordination Phase) must keep validity/agreement even when it fails to
// terminate — decided values, if any, must be consistent.
func TestFig8AblatedSafetyUnderHomonymy(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		ids := ident.Balanced(6, 2)
		n := ids.N()
		proposals := make([]core.Value, n)
		eng := sim.New(sim.Config{IDs: ids, Net: sim.Async{MaxDelay: 8}, Seed: seed, KnownN: true})
		truth := fd.NewGroundTruth(ids, nil)
		world := oracle.NewWorld(truth, 0)
		insts := make([]*core.Fig8, n)
		for i := 0; i < n; i++ {
			proposals[i] = core.Value(fmt.Sprintf("v%d", i))
			det := oracle.NewHOmega(world, oracle.AdversaryNone)
			insts[i] = core.NewFig8NoCoordination(det, 2, proposals[i])
			insts[i].SetMaxRounds(15)
			eng.AddProcess(sim.NewNode().Add("homega", det).Add("consensus", insts[i]))
		}
		eng.RunUntil(100_000, func() bool {
			for _, inst := range insts {
				if !inst.Decided().Decided {
					return false
				}
			}
			return true
		})
		proposed := make(map[core.Value]bool)
		for _, v := range proposals {
			proposed[v] = true
		}
		var val core.Value
		have := false
		for i, inst := range insts {
			out := inst.Decided()
			if !out.Decided {
				continue
			}
			if out.Value == core.Bottom || !proposed[out.Value] {
				t.Fatalf("seed %d: process %d decided invalid value %q", seed, i, out.Value)
			}
			if have && out.Value != val {
				t.Fatalf("seed %d: agreement violated: %q vs %q", seed, val, out.Value)
			}
			val, have = out.Value, true
		}
	}
}
