package core

import (
	"sort"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// Ph1QMsg is Fig. 9's Phase 1 message (PH1, id, r, sr, current_labels,
// est1): the sender's identifier, round, sub-round, its current HΣ label
// knowledge, and its estimate.
type Ph1QMsg struct {
	ID     ident.ID
	Round  int
	SR     int
	Labels []fd.Label
	Est    Value
}

// MsgTag implements sim.Tagger.
func (Ph1QMsg) MsgTag() string { return "PH1" }

// Ph2QMsg is Fig. 9's Phase 2 message (PH2, id, r, sr, current_labels,
// est2); Est may be Bottom.
type Ph2QMsg struct {
	ID     ident.ID
	Round  int
	SR     int
	Labels []fd.Label
	Est    Value
}

// MsgTag implements sim.Tagger.
func (Ph2QMsg) MsgTag() string { return "PH2" }

type quorMsg struct {
	id     ident.ID
	sr     int
	labels map[fd.Label]bool
	est    Value
}

type fig9Phase int

const (
	f9Coord fig9Phase = iota + 1
	f9Ph0
	f9Ph1
	f9Ph2
)

// Fig9 is the per-process consensus instance for HAS[HΩ, HΣ] (Figure 9,
// Theorem 8): it tolerates any number of crashes and needs neither n nor t
// nor the membership. Quorums come from the HΣ detector: Phases 1 and 2
// run in sub-rounds, re-broadcasting whenever the local h_labels knowledge
// grows or a peer is seen in a later sub-round, until some h_quora pair
// (x, mset) is matched by messages of one sub-round all carrying label x
// whose sender identifiers form exactly mset.
//
// Constructed with NewFig9Anonymous instead, it becomes the anonymous
// baseline the paper derives it from (§5.3 closing remark): leadership
// comes from an AΩ detector and the Leaders' Coordination Phase is
// removed — the resulting Phase 0 matches Figure 3 of [6].
type Fig9 struct {
	decider
	d1       fd.HOmega // HΩ leadership (homonymous variant)
	d3       fd.AOmega // AΩ leadership (anonymous baseline variant)
	d2       fd.HSigma
	proposal Value

	round int
	phase fig9Phase
	est1  Value
	est2  Value

	sr            int
	currentLabels []fd.Label

	coord     map[int][]Value // estimates from homonym co-leaders, per round
	coordSeen map[int]bool    // any COORD seen for a round (Phase 2 exit)
	ph0       map[int]*Value
	ph1       map[int][]quorMsg
	ph2       map[int][]quorMsg
	maxRounds int // safety valve for adversarial tests; 0 = unlimited

	// epoch and rejoining implement the crash-recovery rejoin protocol,
	// exactly as in Fig8: epoch invalidates timers stranded across an
	// outage, rejoining enables the round-resync fast-forward until the
	// process closes a full Phase 2 quorum again.
	epoch     int
	rejoining bool
}

var (
	_ sim.Process   = (*Fig9)(nil)
	_ sim.Poller    = (*Fig9)(nil)
	_ sim.Recoverer = (*Fig9)(nil)
)

// NewFig9 creates the homonymous instance with detectors D1 ∈ HΩ, D2 ∈ HΣ.
func NewFig9(d1 fd.HOmega, d2 fd.HSigma, proposal Value) *Fig9 {
	return newFig9(d1, nil, d2, proposal)
}

// NewFig9Anonymous creates the anonymous baseline with D3 ∈ AΩ, D2 ∈ HΣ
// (an AΣ detector can be lifted to HΣ with reduce.ASigmaToHSigma, matching
// the paper's AAS[AΩ, AΣ] setting).
func NewFig9Anonymous(d3 fd.AOmega, d2 fd.HSigma, proposal Value) *Fig9 {
	return newFig9(nil, d3, d2, proposal)
}

func newFig9(d1 fd.HOmega, d3 fd.AOmega, d2 fd.HSigma, proposal Value) *Fig9 {
	return &Fig9{
		d1:        d1,
		d3:        d3,
		d2:        d2,
		proposal:  proposal,
		coord:     make(map[int][]Value),
		coordSeen: make(map[int]bool),
		ph0:       make(map[int]*Value),
		ph1:       make(map[int][]quorMsg),
		ph2:       make(map[int][]quorMsg),
	}
}

// Init implements sim.Process: propose(v).
func (c *Fig9) Init(env sim.Environment) {
	c.env = env
	if c.proposal == Bottom {
		panic("core: Bottom must not be proposed")
	}
	c.est1 = c.proposal
	c.round = 1
	c.startRound()
	env.SetTimer(heartbeat, c.epoch)
	c.step()
}

func (c *Fig9) startRound() {
	if c.anonymous() {
		// The baseline drops the Leaders' Coordination Phase entirely.
		c.phase = f9Ph0
		return
	}
	c.phase = f9Coord
	c.env.Broadcast(CoordMsg{ID: c.env.ID(), Round: c.round, Est: c.est1})
}

func (c *Fig9) anonymous() bool { return c.d3 != nil }

// OnTimer implements sim.Process. Timers of an older epoch are stale
// pre-outage survivors and are ignored (see OnRecover).
func (c *Fig9) OnTimer(tag int) {
	if tag != c.epoch {
		return
	}
	if !c.outcome.Decided {
		c.env.SetTimer(heartbeat, c.epoch)
	}
	c.step()
}

// OnRecover implements sim.Recoverer — the same rejoin protocol as Fig8:
// restart the timer chain under a fresh epoch, broadcast (REJOIN, r), and
// either fast-forward into the live round from the acks or adopt an
// already-taken decision through the re-armed Task T2 relay. The sub-round
// machinery then catches the rejoiner up within the round: its Phase 1
// entry starts at sub-round 1 and climbs on every peer message carrying a
// higher sub-round, broadcasting once per sub-round passed.
func (c *Fig9) OnRecover() {
	if c.env == nil {
		return // crashed before Init ran; the engine never started this instance
	}
	c.epoch++
	if c.outcome.Decided {
		c.env.Broadcast(DecideMsg{Val: c.outcome.Value, Round: c.outcome.Round})
		return
	}
	c.rejoining = true
	c.env.SetTimer(heartbeat, c.epoch)
	c.env.Broadcast(RejoinMsg{Round: c.round})
	c.step()
}

// Poll implements sim.Poller: detector output changes (h_labels growth in
// particular) drive the sub-round machinery.
func (c *Fig9) Poll() { c.step() }

// OnMessage implements sim.Process. As in Fig8, round-stamped messages
// double as resync signals for a rejoining process, after being recorded
// in the reception buffers.
func (c *Fig9) OnMessage(payload any) {
	switch m := payload.(type) {
	case DecideMsg:
		c.onDecide(m)
	case RejoinMsg:
		c.onRejoin()
	case RejoinAckMsg:
		c.onRejoinAck(m)
	case CoordMsg:
		c.coordSeen[m.Round] = true
		if m.ID == c.env.ID() {
			c.coord[m.Round] = append(c.coord[m.Round], m.Est)
		}
		c.maybeResync(m.Round, m.Est, true)
	case Ph0Msg:
		if c.ph0[m.Round] == nil {
			v := m.Est
			c.ph0[m.Round] = &v
		}
		c.maybeResync(m.Round, m.Est, true)
	case Ph1QMsg:
		c.ph1[m.Round] = append(c.ph1[m.Round], toQuorMsg(m.ID, m.SR, m.Labels, m.Est))
		c.maybeResync(m.Round, m.Est, true)
	case Ph2QMsg:
		c.ph2[m.Round] = append(c.ph2[m.Round], toQuorMsg(m.ID, m.SR, m.Labels, m.Est))
		c.maybeResync(m.Round, m.Est, m.Est != Bottom)
	}
	c.step()
}

// onRejoin answers a peer's (REJOIN, r); see Fig8.onRejoin.
func (c *Fig9) onRejoin() {
	if c.answerRejoin() {
		return
	}
	c.env.Broadcast(RejoinAckMsg{Round: c.round, Phase: int(c.phase), SR: c.sr, Est: c.est1, Est2: c.est2})
}

// onRejoinAck handles a peer's position report. Besides the generic resync
// (round jumps and Coord/Ph0 escapes), a rejoiner stranded *inside*
// Phase 1 or 2 of the responder's round follows the responder: a responder
// already in Phase 2 concludes Phase 1 for the rejoiner (the ack plays the
// role of the buffered PH2 of lines 23–24, whose copies died with the
// outage), and a responder deeper into the same phase pulls the rejoiner's
// sub-round forward — it jumps to the responder's sub-round and broadcasts
// there, a (round, sub-round) it has never broadcast in (its sub-round
// counter survives the outage and only moves forward), so the per-sender
// uniqueness the HΣ quorum matching relies on is preserved. Without this,
// a rejoiner whose label set never changes again (recovery after the
// detector stabilized) has no trigger left and wedges the everyone-quorums
// of the whole system.
func (c *Fig9) onRejoinAck(m RejoinAckMsg) {
	c.maybeResync(m.Round, m.Est, true)
	if !c.rejoining || c.outcome.Decided || m.Round != c.round {
		return
	}
	switch {
	case c.phase == f9Ph1 && fig9Phase(m.Phase) == f9Ph2:
		// Phase 1 concluded elsewhere (lines 23–24, ack-carried).
		c.est2 = m.Est2
		c.enterPhase2()
	case c.phase == fig9Phase(m.Phase) && (c.phase == f9Ph1 || c.phase == f9Ph2) && m.SR > c.sr && wedgeCanary != "wedge":
		c.sr = m.SR
		c.currentLabels = c.d2.Labels()
		if c.phase == f9Ph1 {
			c.env.Broadcast(Ph1QMsg{ID: c.env.ID(), Round: c.round, SR: c.sr, Labels: c.currentLabels, Est: c.est1})
		} else {
			c.env.Broadcast(Ph2QMsg{ID: c.env.ID(), Round: c.round, SR: c.sr, Labels: c.currentLabels, Est: c.est2})
		}
	}
}

// maybeResync fast-forwards a rejoining process toward the live protocol
// state — see Fig8.maybeResync for the full safety argument. Higher rounds
// are joined at Phase 1 / sub-round 1 (the HΣ quorum matching is per
// (round, sub-round, sender), and the rejoiner's sub-round climb
// broadcasts at most once per sub-round, so sender multisets never see a
// duplicate); within the local round, a Coordination-Phase or Phase 0 wait
// whose messages were lost in the outage is skipped. Fig. 9 in particular
// needs the within-round escape: its HΣ quorums can require every
// eventually-up process, so a single wedged rejoiner would wedge the whole
// system.
func (c *Fig9) maybeResync(round int, est Value, adopt bool) {
	if !c.rejoining || c.outcome.Decided || wedgeCanary == "wedge" {
		// The wedgeCanary escape is CI-only: a canary build disables the
		// whole resync exchange to recreate the pre-fix rejoin wedge and
		// prove the scenario hunter still catches this bug class.
		return
	}
	switch {
	case round > c.round:
		if adopt {
			c.est1 = est
		}
		c.round = round
		// As in Fig8.maybeResync: a jumping leader still owes the target
		// round its COORD (homonymous variant only) and its Phase 0 push —
		// when churn takes out a whole leader group, the rejoiners are the
		// only processes that can unwedge the co-leader waits and the
		// followers' Phase 0.
		if c.leaderNow() {
			if !c.anonymous() {
				c.env.Broadcast(CoordMsg{ID: c.env.ID(), Round: c.round, Est: c.est1})
			}
			c.env.Broadcast(Ph0Msg{Round: c.round, Est: c.est1})
		}
		c.enterPhase1()
	case round == c.round && c.phase == f9Coord:
		if adopt {
			c.est1 = est
		}
		c.phase = f9Ph0
	case round == c.round && c.phase == f9Ph0 && !c.leaderNow():
		if adopt {
			c.est1 = est
		}
		c.enterPhase1()
	}
}

func toQuorMsg(id ident.ID, sr int, labels []fd.Label, est Value) quorMsg {
	set := make(map[fd.Label]bool, len(labels))
	for _, l := range labels {
		set[l] = true
	}
	return quorMsg{id: id, sr: sr, labels: set, est: est}
}

func (c *Fig9) step() {
	if c.env == nil {
		return
	}
	for !c.outcome.Decided {
		if c.maxRounds > 0 && c.round > c.maxRounds {
			return
		}
		var progress bool
		switch c.phase {
		case f9Coord:
			progress = c.stepCoord()
		case f9Ph0:
			progress = c.stepPh0()
		case f9Ph1:
			progress = c.stepPh1()
		case f9Ph2:
			progress = c.stepPh2()
		}
		if !progress {
			return
		}
	}
}

// stepCoord mirrors Fig. 8's Leaders' Coordination Phase (lines 9–14).
func (c *Fig9) stepCoord() bool {
	ld, ok := c.d1.Leader()
	iAmLeader := ok && ld.ID == c.env.ID()
	need := ld.Multiplicity
	if need < 1 {
		need = 1
	}
	if iAmLeader && len(c.coord[c.round]) < need {
		return false
	}
	if ests := c.coord[c.round]; len(ests) > 0 {
		c.est1 = minValue(ests)
	}
	c.phase = f9Ph0
	return true
}

// stepPh0 is Phase 0 (lines 16–18) and the entry to Phase 1 (lines 20–21).
func (c *Fig9) stepPh0() bool {
	v := c.ph0[c.round]
	if !c.leaderNow() && v == nil {
		return false
	}
	if v != nil {
		c.est1 = *v
	}
	c.env.Broadcast(Ph0Msg{Round: c.round, Est: c.est1})
	c.enterPhase1()
	return true
}

func (c *Fig9) leaderNow() bool {
	if c.anonymous() {
		return c.d3.IsLeader()
	}
	ld, ok := c.d1.Leader()
	return ok && ld.ID == c.env.ID()
}

func (c *Fig9) enterPhase1() {
	c.phase = f9Ph1
	c.sr = 1
	c.currentLabels = c.d2.Labels()
	c.env.Broadcast(Ph1QMsg{ID: c.env.ID(), Round: c.round, SR: c.sr, Labels: c.currentLabels, Est: c.est1})
}

func (c *Fig9) enterPhase2() {
	c.phase = f9Ph2
	c.sr = 1
	c.currentLabels = c.d2.Labels()
	c.env.Broadcast(Ph2QMsg{ID: c.env.ID(), Round: c.round, SR: c.sr, Labels: c.currentLabels, Est: c.est2})
}

// stepPh1 is Phase 1's repeat loop (lines 22–38).
func (c *Fig9) stepPh1() bool {
	// Lines 23–24: a PH2 for this round means Phase 1 concluded elsewhere.
	if msgs := c.ph2[c.round]; len(msgs) > 0 {
		c.est2 = msgs[0].est
		c.enterPhase2()
		return true
	}
	// Lines 25–31: quorum match.
	if rec, ok := c.matchQuorum(c.ph1[c.round]); ok {
		if allSame(rec) {
			c.est2 = rec[0]
		} else {
			c.est2 = Bottom
		}
		c.enterPhase2()
		return true
	}
	// Lines 32–36: sub-round advance.
	if c.advanceSubRound(c.ph1[c.round]) {
		c.env.Broadcast(Ph1QMsg{ID: c.env.ID(), Round: c.round, SR: c.sr, Labels: c.currentLabels, Est: c.est1})
		return true
	}
	return false
}

// stepPh2 is Phase 2's repeat loop (lines 42–61).
func (c *Fig9) stepPh2() bool {
	// Lines 43–44: someone reached round r+1; follow.
	if c.nextRoundSignal() {
		c.nextRound()
		return true
	}
	// Lines 45–54: quorum match and the three reception cases.
	if rec, ok := c.matchQuorum(c.ph2[c.round]); ok {
		// A matched Phase 2 quorum means the process is a normal
		// participant again: no further rejoin fast-forwards.
		c.rejoining = false
		kind, v := classifyRec(distinct(rec))
		switch kind {
		case recAllSameValue:
			c.decide(v, c.round)
			return true
		case recValueAndBot:
			c.est1 = v
		case recAllBot:
			// skip
		default:
			c.invariant(false, "fig9: round %d rec contains two non-⊥ values: %v", c.round, rec)
		}
		c.nextRound()
		return true
	}
	// Lines 55–59: sub-round advance.
	if c.advanceSubRound(c.ph2[c.round]) {
		c.env.Broadcast(Ph2QMsg{ID: c.env.ID(), Round: c.round, SR: c.sr, Labels: c.currentLabels, Est: c.est2})
		return true
	}
	return false
}

// nextRoundSignal detects that some process already started round r+1: a
// COORD of r+1 in the homonymous variant (line 43), any round-r+1 traffic
// in the anonymous baseline (which has no COORD messages).
func (c *Fig9) nextRoundSignal() bool {
	if !c.anonymous() {
		return c.coordSeen[c.round+1]
	}
	return c.ph0[c.round+1] != nil || len(c.ph1[c.round+1]) > 0
}

func (c *Fig9) nextRound() {
	c.round++
	c.startRound()
}

// advanceSubRound implements the two triggers of lines 32–33 / 55–56:
// the local h_labels grew, or a peer message of this round carries a
// higher sub-round.
func (c *Fig9) advanceSubRound(msgs []quorMsg) bool {
	labels := c.d2.Labels()
	trigger := !fd.LabelsEqual(c.currentLabels, labels)
	if !trigger {
		for _, m := range msgs {
			if m.sr > c.sr {
				trigger = true
				break
			}
		}
	}
	if !trigger {
		return false
	}
	c.sr++
	c.currentLabels = labels
	return true
}

// matchQuorum searches for a pair (x, mset) ∈ D2.h_quora, a sub-round sr,
// and a set M of this round's messages of sub-round sr, all carrying label
// x, whose sender identifiers form exactly the multiset mset (lines
// 25–28 / 45–48). It returns the estimates of a deterministic such M
// (earliest arrivals per identifier).
func (c *Fig9) matchQuorum(msgs []quorMsg) ([]Value, bool) {
	if len(msgs) == 0 {
		return nil, false
	}
	srs := make(map[int]bool)
	for _, m := range msgs {
		srs[m.sr] = true
	}
	srList := make([]int, 0, len(srs))
	for sr := range srs {
		srList = append(srList, sr)
	}
	sort.Ints(srList)

	for _, pair := range c.d2.Quora() {
		for _, sr := range srList {
			avail := multiset.New[ident.ID]()
			for _, m := range msgs {
				if m.sr == sr && m.labels[pair.Label] {
					avail.Add(m.id)
				}
			}
			if avail.Empty() || !pair.M.SubsetOf(avail) {
				continue
			}
			need := pair.M.Counts()
			rec := make([]Value, 0, pair.M.Len())
			for _, m := range msgs {
				if m.sr == sr && m.labels[pair.Label] && need[m.id] > 0 {
					need[m.id]--
					rec = append(rec, m.est)
				}
			}
			return rec, true
		}
	}
	return nil, false
}

func allSame(vs []Value) bool {
	for _, v := range vs[1:] {
		if v != vs[0] {
			return false
		}
	}
	return true
}

// Round returns the current round (observability).
func (c *Fig9) Round() int { return c.round }

// SubRound returns the current sub-round (observability).
func (c *Fig9) SubRound() int { return c.sr }

// Rejoining reports whether the process is in rejoin catch-up: recovered
// from an outage and not yet through a full Phase 2 quorum (observability).
func (c *Fig9) Rejoining() bool { return c.rejoining }

// SetMaxRounds bounds the rounds executed (0 = unlimited); adversarial
// experiments use it to stop non-deciding configurations gracefully.
func (c *Fig9) SetMaxRounds(k int) { c.maxRounds = k }
