package core

import (
	"sort"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// Ph1QMsg is Fig. 9's Phase 1 message (PH1, id, r, sr, current_labels,
// est1): the sender's identifier, round, sub-round, its current HΣ label
// knowledge, and its estimate.
type Ph1QMsg struct {
	ID     ident.ID
	Round  int
	SR     int
	Labels []fd.Label
	Est    Value
}

// MsgTag implements sim.Tagger.
func (Ph1QMsg) MsgTag() string { return "PH1" }

// Ph2QMsg is Fig. 9's Phase 2 message (PH2, id, r, sr, current_labels,
// est2); Est may be Bottom.
type Ph2QMsg struct {
	ID     ident.ID
	Round  int
	SR     int
	Labels []fd.Label
	Est    Value
}

// MsgTag implements sim.Tagger.
func (Ph2QMsg) MsgTag() string { return "PH2" }

type quorMsg struct {
	id     ident.ID
	sr     int
	labels map[fd.Label]bool
	est    Value
}

type fig9Phase int

const (
	f9Coord fig9Phase = iota + 1
	f9Ph0
	f9Ph1
	f9Ph2
)

// Fig9 is the per-process consensus instance for HAS[HΩ, HΣ] (Figure 9,
// Theorem 8): it tolerates any number of crashes and needs neither n nor t
// nor the membership. Quorums come from the HΣ detector: Phases 1 and 2
// run in sub-rounds, re-broadcasting whenever the local h_labels knowledge
// grows or a peer is seen in a later sub-round, until some h_quora pair
// (x, mset) is matched by messages of one sub-round all carrying label x
// whose sender identifiers form exactly mset.
//
// Constructed with NewFig9Anonymous instead, it becomes the anonymous
// baseline the paper derives it from (§5.3 closing remark): leadership
// comes from an AΩ detector and the Leaders' Coordination Phase is
// removed — the resulting Phase 0 matches Figure 3 of [6].
type Fig9 struct {
	decider
	d1       fd.HOmega // HΩ leadership (homonymous variant)
	d3       fd.AOmega // AΩ leadership (anonymous baseline variant)
	d2       fd.HSigma
	proposal Value

	round int
	phase fig9Phase
	est1  Value
	est2  Value

	sr            int
	currentLabels []fd.Label

	coord     map[int][]Value // estimates from homonym co-leaders, per round
	coordSeen map[int]bool    // any COORD seen for a round (Phase 2 exit)
	ph0       map[int]*Value
	ph1       map[int][]quorMsg
	ph2       map[int][]quorMsg
	maxRounds int // safety valve for adversarial tests; 0 = unlimited
}

var (
	_ sim.Process = (*Fig9)(nil)
	_ sim.Poller  = (*Fig9)(nil)
)

// NewFig9 creates the homonymous instance with detectors D1 ∈ HΩ, D2 ∈ HΣ.
func NewFig9(d1 fd.HOmega, d2 fd.HSigma, proposal Value) *Fig9 {
	return newFig9(d1, nil, d2, proposal)
}

// NewFig9Anonymous creates the anonymous baseline with D3 ∈ AΩ, D2 ∈ HΣ
// (an AΣ detector can be lifted to HΣ with reduce.ASigmaToHSigma, matching
// the paper's AAS[AΩ, AΣ] setting).
func NewFig9Anonymous(d3 fd.AOmega, d2 fd.HSigma, proposal Value) *Fig9 {
	return newFig9(nil, d3, d2, proposal)
}

func newFig9(d1 fd.HOmega, d3 fd.AOmega, d2 fd.HSigma, proposal Value) *Fig9 {
	return &Fig9{
		d1:        d1,
		d3:        d3,
		d2:        d2,
		proposal:  proposal,
		coord:     make(map[int][]Value),
		coordSeen: make(map[int]bool),
		ph0:       make(map[int]*Value),
		ph1:       make(map[int][]quorMsg),
		ph2:       make(map[int][]quorMsg),
	}
}

// Init implements sim.Process: propose(v).
func (c *Fig9) Init(env sim.Environment) {
	c.env = env
	if c.proposal == Bottom {
		panic("core: Bottom must not be proposed")
	}
	c.est1 = c.proposal
	c.round = 1
	c.startRound()
	env.SetTimer(heartbeat, 0)
	c.step()
}

func (c *Fig9) startRound() {
	if c.anonymous() {
		// The baseline drops the Leaders' Coordination Phase entirely.
		c.phase = f9Ph0
		return
	}
	c.phase = f9Coord
	c.env.Broadcast(CoordMsg{ID: c.env.ID(), Round: c.round, Est: c.est1})
}

func (c *Fig9) anonymous() bool { return c.d3 != nil }

// OnTimer implements sim.Process.
func (c *Fig9) OnTimer(tag int) {
	if !c.outcome.Decided {
		c.env.SetTimer(heartbeat, tag)
	}
	c.step()
}

// Poll implements sim.Poller: detector output changes (h_labels growth in
// particular) drive the sub-round machinery.
func (c *Fig9) Poll() { c.step() }

// OnMessage implements sim.Process.
func (c *Fig9) OnMessage(payload any) {
	switch m := payload.(type) {
	case DecideMsg:
		c.onDecide(m, c.round)
	case CoordMsg:
		c.coordSeen[m.Round] = true
		if m.ID == c.env.ID() {
			c.coord[m.Round] = append(c.coord[m.Round], m.Est)
		}
	case Ph0Msg:
		if c.ph0[m.Round] == nil {
			v := m.Est
			c.ph0[m.Round] = &v
		}
	case Ph1QMsg:
		c.ph1[m.Round] = append(c.ph1[m.Round], toQuorMsg(m.ID, m.SR, m.Labels, m.Est))
	case Ph2QMsg:
		c.ph2[m.Round] = append(c.ph2[m.Round], toQuorMsg(m.ID, m.SR, m.Labels, m.Est))
	}
	c.step()
}

func toQuorMsg(id ident.ID, sr int, labels []fd.Label, est Value) quorMsg {
	set := make(map[fd.Label]bool, len(labels))
	for _, l := range labels {
		set[l] = true
	}
	return quorMsg{id: id, sr: sr, labels: set, est: est}
}

func (c *Fig9) step() {
	if c.env == nil {
		return
	}
	for !c.outcome.Decided {
		if c.maxRounds > 0 && c.round > c.maxRounds {
			return
		}
		var progress bool
		switch c.phase {
		case f9Coord:
			progress = c.stepCoord()
		case f9Ph0:
			progress = c.stepPh0()
		case f9Ph1:
			progress = c.stepPh1()
		case f9Ph2:
			progress = c.stepPh2()
		}
		if !progress {
			return
		}
	}
}

// stepCoord mirrors Fig. 8's Leaders' Coordination Phase (lines 9–14).
func (c *Fig9) stepCoord() bool {
	ld, ok := c.d1.Leader()
	iAmLeader := ok && ld.ID == c.env.ID()
	need := ld.Multiplicity
	if need < 1 {
		need = 1
	}
	if iAmLeader && len(c.coord[c.round]) < need {
		return false
	}
	if ests := c.coord[c.round]; len(ests) > 0 {
		c.est1 = minValue(ests)
	}
	c.phase = f9Ph0
	return true
}

// stepPh0 is Phase 0 (lines 16–18) and the entry to Phase 1 (lines 20–21).
func (c *Fig9) stepPh0() bool {
	v := c.ph0[c.round]
	if !c.leaderNow() && v == nil {
		return false
	}
	if v != nil {
		c.est1 = *v
	}
	c.env.Broadcast(Ph0Msg{Round: c.round, Est: c.est1})
	c.enterPhase1()
	return true
}

func (c *Fig9) leaderNow() bool {
	if c.anonymous() {
		return c.d3.IsLeader()
	}
	ld, ok := c.d1.Leader()
	return ok && ld.ID == c.env.ID()
}

func (c *Fig9) enterPhase1() {
	c.phase = f9Ph1
	c.sr = 1
	c.currentLabels = c.d2.Labels()
	c.env.Broadcast(Ph1QMsg{ID: c.env.ID(), Round: c.round, SR: c.sr, Labels: c.currentLabels, Est: c.est1})
}

func (c *Fig9) enterPhase2() {
	c.phase = f9Ph2
	c.sr = 1
	c.currentLabels = c.d2.Labels()
	c.env.Broadcast(Ph2QMsg{ID: c.env.ID(), Round: c.round, SR: c.sr, Labels: c.currentLabels, Est: c.est2})
}

// stepPh1 is Phase 1's repeat loop (lines 22–38).
func (c *Fig9) stepPh1() bool {
	// Lines 23–24: a PH2 for this round means Phase 1 concluded elsewhere.
	if msgs := c.ph2[c.round]; len(msgs) > 0 {
		c.est2 = msgs[0].est
		c.enterPhase2()
		return true
	}
	// Lines 25–31: quorum match.
	if rec, ok := c.matchQuorum(c.ph1[c.round]); ok {
		if allSame(rec) {
			c.est2 = rec[0]
		} else {
			c.est2 = Bottom
		}
		c.enterPhase2()
		return true
	}
	// Lines 32–36: sub-round advance.
	if c.advanceSubRound(c.ph1[c.round]) {
		c.env.Broadcast(Ph1QMsg{ID: c.env.ID(), Round: c.round, SR: c.sr, Labels: c.currentLabels, Est: c.est1})
		return true
	}
	return false
}

// stepPh2 is Phase 2's repeat loop (lines 42–61).
func (c *Fig9) stepPh2() bool {
	// Lines 43–44: someone reached round r+1; follow.
	if c.nextRoundSignal() {
		c.nextRound()
		return true
	}
	// Lines 45–54: quorum match and the three reception cases.
	if rec, ok := c.matchQuorum(c.ph2[c.round]); ok {
		kind, v := classifyRec(distinct(rec))
		switch kind {
		case recAllSameValue:
			c.decide(v, c.round)
			return true
		case recValueAndBot:
			c.est1 = v
		case recAllBot:
			// skip
		default:
			c.invariant(false, "fig9: round %d rec contains two non-⊥ values: %v", c.round, rec)
		}
		c.nextRound()
		return true
	}
	// Lines 55–59: sub-round advance.
	if c.advanceSubRound(c.ph2[c.round]) {
		c.env.Broadcast(Ph2QMsg{ID: c.env.ID(), Round: c.round, SR: c.sr, Labels: c.currentLabels, Est: c.est2})
		return true
	}
	return false
}

// nextRoundSignal detects that some process already started round r+1: a
// COORD of r+1 in the homonymous variant (line 43), any round-r+1 traffic
// in the anonymous baseline (which has no COORD messages).
func (c *Fig9) nextRoundSignal() bool {
	if !c.anonymous() {
		return c.coordSeen[c.round+1]
	}
	return c.ph0[c.round+1] != nil || len(c.ph1[c.round+1]) > 0
}

func (c *Fig9) nextRound() {
	c.round++
	c.startRound()
}

// advanceSubRound implements the two triggers of lines 32–33 / 55–56:
// the local h_labels grew, or a peer message of this round carries a
// higher sub-round.
func (c *Fig9) advanceSubRound(msgs []quorMsg) bool {
	labels := c.d2.Labels()
	trigger := !fd.LabelsEqual(c.currentLabels, labels)
	if !trigger {
		for _, m := range msgs {
			if m.sr > c.sr {
				trigger = true
				break
			}
		}
	}
	if !trigger {
		return false
	}
	c.sr++
	c.currentLabels = labels
	return true
}

// matchQuorum searches for a pair (x, mset) ∈ D2.h_quora, a sub-round sr,
// and a set M of this round's messages of sub-round sr, all carrying label
// x, whose sender identifiers form exactly the multiset mset (lines
// 25–28 / 45–48). It returns the estimates of a deterministic such M
// (earliest arrivals per identifier).
func (c *Fig9) matchQuorum(msgs []quorMsg) ([]Value, bool) {
	if len(msgs) == 0 {
		return nil, false
	}
	srs := make(map[int]bool)
	for _, m := range msgs {
		srs[m.sr] = true
	}
	srList := make([]int, 0, len(srs))
	for sr := range srs {
		srList = append(srList, sr)
	}
	sort.Ints(srList)

	for _, pair := range c.d2.Quora() {
		for _, sr := range srList {
			avail := multiset.New[ident.ID]()
			for _, m := range msgs {
				if m.sr == sr && m.labels[pair.Label] {
					avail.Add(m.id)
				}
			}
			if avail.Empty() || !pair.M.SubsetOf(avail) {
				continue
			}
			need := pair.M.Counts()
			rec := make([]Value, 0, pair.M.Len())
			for _, m := range msgs {
				if m.sr == sr && m.labels[pair.Label] && need[m.id] > 0 {
					need[m.id]--
					rec = append(rec, m.est)
				}
			}
			return rec, true
		}
	}
	return nil, false
}

func allSame(vs []Value) bool {
	for _, v := range vs[1:] {
		if v != vs[0] {
			return false
		}
	}
	return true
}

// Round returns the current round (observability).
func (c *Fig9) Round() int { return c.round }

// SubRound returns the current sub-round (observability).
func (c *Fig9) SubRound() int { return c.sr }

// SetMaxRounds bounds the rounds executed (0 = unlimited); adversarial
// experiments use it to stop non-deciding configurations gracefully.
func (c *Fig9) SetMaxRounds(k int) { c.maxRounds = k }
