package core_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/fd/ohp"
	"repro/internal/fd/oracle"
	"repro/internal/ident"
	"repro/internal/sim"
)

// Stress suites: many random schedules, adversarial detectors, mixed
// crash patterns. Everything is seeded, so any failure is reproducible by
// its seed. Skipped with -short.

func TestFig8Stress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep")
	}
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		n := 4 + int(seed%5)      // 4..8
		l := 1 + int(seed)%n      // 1..n
		tt := (n - 1) / 2         // max tolerated
		f := int(seed) % (tt + 1) // actual crashes ≤ t
		crashes := make(map[sim.PID]sim.Time, f)
		for i := 0; i < f; i++ {
			crashes[sim.PID((int(seed)+i*2)%n)] = sim.Time(10 + 17*i)
		}
		mode := oracle.Adversary(seed % 3)
		runConsensusStress(t, seed, ident.Balanced(n, l), crashes, func(det fd.HOmega, world *oracle.World, proposal core.Value) consensusInst {
			return core.NewFig8(det, tt, proposal)
		}, mode, true)
	}
}

func TestFig9Stress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep")
	}
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		n := 4 + int(seed%5) // 4..8
		l := 1 + int(seed)%n // 1..n
		f := int(seed) % n   // up to n-1 crashes
		crashes := make(map[sim.PID]sim.Time, f)
		for i := 0; i < f; i++ {
			crashes[sim.PID((int(seed)+i*3)%n)] = sim.Time(10 + 13*i)
		}
		mode := oracle.Adversary(seed % 3)
		runFig9Stress(t, seed, ident.Balanced(n, l), crashes, mode)
	}
}

type consensusInst interface {
	sim.Process
	Decided() core.Outcome
	InvariantErr() error
}

func runConsensusStress(t *testing.T, seed int64, ids ident.Assignment, crashes map[sim.PID]sim.Time,
	build func(fd.HOmega, *oracle.World, core.Value) consensusInst, mode oracle.Adversary, knownN bool,
) {
	t.Helper()
	n := ids.N()
	eng := sim.New(sim.Config{IDs: ids, Net: sim.Async{MaxDelay: 1 + sim.Time(seed%12)}, Seed: seed, KnownN: knownN})
	truth := fd.NewGroundTruth(ids, crashes)
	world := oracle.NewWorld(truth, 60+sim.Time(seed%100))
	proposals := make([]core.Value, n)
	insts := make([]consensusInst, n)
	for i := 0; i < n; i++ {
		proposals[i] = core.Value(fmt.Sprintf("v%d", i))
		det := oracle.NewHOmega(world, mode)
		insts[i] = build(det, world, proposals[i])
		eng.AddProcess(sim.NewNode().Add("homega", det).Add("consensus", insts[i]))
	}
	eng.CrashSchedule(crashes)
	eng.RunUntil(2_000_000, func() bool {
		for _, p := range truth.Correct() {
			if !insts[p].Decided().Decided {
				return false
			}
		}
		return true
	})
	outcomes := make([]core.Outcome, n)
	for i, inst := range insts {
		outcomes[i] = inst.Decided()
		if err := inst.InvariantErr(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if _, err := check.Consensus(truth, proposals, outcomes); err != nil {
		t.Fatalf("seed %d (n=%d): %v", seed, n, err)
	}
}

func runFig9Stress(t *testing.T, seed int64, ids ident.Assignment, crashes map[sim.PID]sim.Time, mode oracle.Adversary) {
	t.Helper()
	n := ids.N()
	eng := sim.New(sim.Config{IDs: ids, Net: sim.Async{MaxDelay: 1 + sim.Time(seed%12)}, Seed: seed})
	truth := fd.NewGroundTruth(ids, crashes)
	world := oracle.NewWorld(truth, 60+sim.Time(seed%100))
	proposals := make([]core.Value, n)
	insts := make([]*core.Fig9, n)
	for i := 0; i < n; i++ {
		proposals[i] = core.Value(fmt.Sprintf("v%d", i))
		hs := oracle.NewHSigma(world)
		ho := oracle.NewHOmega(world, mode)
		insts[i] = core.NewFig9(ho, hs, proposals[i])
		eng.AddProcess(sim.NewNode().Add("hsigma", hs).Add("homega", ho).Add("consensus", insts[i]))
	}
	eng.CrashSchedule(crashes)
	eng.RunUntil(2_000_000, func() bool {
		for _, p := range truth.Correct() {
			if !insts[p].Decided().Decided {
				return false
			}
		}
		return true
	})
	outcomes := make([]core.Outcome, n)
	for i, inst := range insts {
		outcomes[i] = inst.Decided()
		if err := inst.InvariantErr(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if _, err := check.Consensus(truth, proposals, outcomes); err != nil {
		t.Fatalf("seed %d (n=%d): %v", seed, n, err)
	}
}

// TestEndToEndStress runs the full HPS stack (Fig 6 under Fig 8) across
// seeds and GST values.
func TestEndToEndStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep")
	}
	for seed := int64(0); seed < 12; seed++ {
		ids := ident.Balanced(5, 1+int(seed%5))
		n := ids.N()
		crashes := map[sim.PID]sim.Time{sim.PID(seed % 5): 20 + sim.Time(seed*5)}
		eng := sim.New(sim.Config{
			IDs:    ids,
			Net:    sim.PartialSync{GST: 30 + sim.Time(seed*20), Delta: 2 + sim.Time(seed%4)},
			Seed:   seed,
			KnownN: true,
		})
		truth := fd.NewGroundTruth(ids, crashes)
		proposals := make([]core.Value, n)
		insts := make([]*core.Fig8, n)
		for i := 0; i < n; i++ {
			proposals[i] = core.Value(fmt.Sprintf("v%d", i))
			det := ohp.New()
			insts[i] = core.NewFig8(det, 2, proposals[i])
			eng.AddProcess(sim.NewNode().Add("ohp", det).Add("consensus", insts[i]))
		}
		eng.CrashSchedule(crashes)
		eng.RunUntil(3_000_000, func() bool {
			for _, p := range truth.Correct() {
				if !insts[p].Decided().Decided {
					return false
				}
			}
			return true
		})
		outcomes := make([]core.Outcome, n)
		for i, inst := range insts {
			outcomes[i] = inst.Decided()
		}
		if _, err := check.Consensus(truth, proposals, outcomes); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
