// Package core implements the paper's two consensus algorithms for
// homonymous asynchronous systems (§5):
//
//   - Fig8: consensus in HAS[t < n/2, HΩ] — the system size n is known, a
//     majority of processes is correct, and the only failure detector is a
//     detector of class HΩ (Theorem 7).
//   - Fig9: consensus in HAS[HΩ, HΣ] — any number of crashes, membership
//     and n unknown, using detectors of classes HΩ and HΣ (Theorem 8).
//     Fig9 also provides the anonymous baseline variant the paper derives
//     it from (AΩ leadership, no Leaders' Coordination Phase).
//
// Both algorithms proceed in rounds of four phases. The Leaders'
// Coordination Phase is the paper's key addition for homonymy: HΩ elects a
// set of homonymous leaders (all correct holders of one identifier), and
// before proposing they exchange COORD messages until each has heard all
// h_multiplicity co-leaders and adopted the minimum estimate — from then on
// the leader group speaks with one voice and the anonymous-system protocols
// the algorithms descend from ([4], [3]/[6]) apply unchanged.
//
// The implementations are event-driven state machines for the simulator:
// every paper "wait until" is a guard re-evaluated whenever a message
// arrives, a timer fires, or a co-located failure-detector module changes
// output (sim.Poller).
//
// Beyond the paper's crash-stop model, both algorithms implement
// sim.Recoverer with a rejoin protocol for crash-recovery churn: a
// recovered process re-arms its timer chain under a fresh epoch,
// broadcasts (REJOIN, r), and either adopts an already-taken decision via
// the re-armed DECIDE relay or fast-forwards into the live round from the
// peers' (REJOIN_ACK, round, est) answers — joining only rounds it never
// voted in, so the quorum-intersection safety arguments are unchanged.
package core
