package sweep_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// benchScenario is one self-contained simulation: 8 homonymous processes
// flooding pings over an async network for 2000 time units. Each call
// builds its own engine, so scenarios share nothing and the sweep's
// speedup ceiling is set by the hardware, not by contention.
func benchScenario(seed int64) int {
	eng := sim.New(sim.Config{
		IDs:  ident.Balanced(8, 4),
		Net:  sim.Async{MaxDelay: 5},
		Seed: seed,
	})
	for i := 0; i < 8; i++ {
		eng.AddProcess(&pollster{})
	}
	eng.Run(2000)
	return eng.Processed()
}

// BenchmarkSweepWorkers sweeps a fixed 64-scenario batch at increasing
// worker counts. ns/op is the wall time of the whole batch, so near-linear
// scaling shows up as ns/op dropping in proportion to the worker count
// (until the core count is exhausted).
func BenchmarkSweepWorkers(b *testing.B) {
	seeds := make([]int64, 64)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	counts := []int{1, 2, 4}
	if max := runtime.GOMAXPROCS(0); max > 4 {
		counts = append(counts, max)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				events := sweep.MapOpt(sweep.Options{Workers: workers}, seeds, func(_ int, s int64) int {
					return benchScenario(s)
				})
				if events[0] == 0 {
					b.Fatal("scenario processed no events")
				}
			}
		})
	}
}
