// Package sweep fans independent simulation scenarios across CPU cores.
//
// The simulator (internal/sim) is strictly deterministic but single-
// goroutine: one engine is one totally ordered event queue. Experiment
// campaigns, however, run hundreds of independent (seed, assignment,
// network model, crash pattern) scenarios, and those parallelize
// perfectly — engines share no mutable state. The sweep runner is the
// repository's one concurrency primitive for that fan-out.
//
// # Determinism contract
//
// Map and MapErr guarantee order-independent, reproducible aggregation:
// result i is produced by f(i, inputs[i]) alone, each worker writes only
// its own result slot, and the output slice is ordered by input index —
// never by completion order. Provided f is itself deterministic per input
// (every scenario seeds its own engine and builds its own recorder and
// ground truth), a sweep's output is byte-identical for every worker
// count, including Workers=1 (fully serial, no goroutines). The test
// suite pins this: serial and parallel sweeps of the experiment tables
// must agree bit for bit, under the race detector.
//
// f must not share mutable state across calls; everything an engine
// touches (rand source, recorder, probes, truth) must be created inside f.
package sweep
