package sweep_test

import (
	"errors"
	"fmt"
	"hash/fnv"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	hds "repro"
	"repro/internal/experiments"
	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
)

func TestMapPreservesInputOrder(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	for _, workers := range []int{1, 2, 7, 64} {
		out := sweep.MapOpt(sweep.Options{Workers: workers}, in, func(i, v int) int {
			return v * v
		})
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if out := sweep.Map(nil, func(i, v int) int { return v }); len(out) != 0 {
		t.Fatalf("empty input produced %v", out)
	}
	out := sweep.Map([]int{7}, func(i, v int) int { return v + 1 })
	if len(out) != 1 || out[0] != 8 {
		t.Fatalf("single input produced %v", out)
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	in := []int{0, 1, 2, 3, 4, 5, 6, 7}
	wantErr := errors.New("boom-2")
	for _, workers := range []int{1, 4} {
		out, err := sweep.MapErr(sweep.Options{Workers: workers}, in, func(i, v int) (int, error) {
			switch v {
			case 2:
				return 0, wantErr
			case 5:
				return 0, errors.New("boom-5")
			}
			return v * 10, nil
		})
		if err == nil || err.Error() != "boom-2" {
			t.Fatalf("workers=%d: err = %v, want boom-2 (lowest index, order-independent)", workers, err)
		}
		// All non-failing inputs still ran to completion.
		if out[7] != 70 {
			t.Fatalf("workers=%d: out[7] = %d, want 70", workers, out[7])
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("workers=%d: panic did not propagate", workers)
				}
			}()
			sweep.MapOpt(sweep.Options{Workers: workers}, []int{0, 1, 2, 3}, func(i, v int) int {
				if v == 1 {
					panic("scenario exploded")
				}
				return v
			})
		}()
	}
}

// TestMapPanicLowestIndexMatchesSerial pins the panic determinism
// contract: whatever the worker count and completion order, the panic that
// reaches the caller is the one a serial run would have raised — the
// lowest-index one. Index 10 here panics immediately while index 9 sleeps
// first, so under any parallel schedule a completion-order implementation
// would surface boom-10.
func TestMapPanicLowestIndexMatchesSerial(t *testing.T) {
	capture := func(workers int) (val any) {
		defer func() { val = recover() }()
		sweep.MapOpt(sweep.Options{Workers: workers}, make([]struct{}, 64), func(i int, _ struct{}) int {
			switch i {
			case 9:
				time.Sleep(30 * time.Millisecond)
				panic(fmt.Sprintf("boom-%d", i))
			case 10:
				panic(fmt.Sprintf("boom-%d", i))
			}
			return i
		})
		return nil
	}
	serial := capture(1)
	if serial != "boom-9" {
		t.Fatalf("serial panic = %v, want boom-9", serial)
	}
	for _, workers := range []int{2, 4, 16, 64} {
		if got := capture(workers); got != serial {
			t.Fatalf("workers=%d: panic = %v, want %v (serial semantics)", workers, got, serial)
		}
	}
}

// TestMapPanicStopsDispatch verifies the pool stops handing out new
// indices once a panic is captured: with the first index panicking
// immediately and every other job taking a few milliseconds, only the
// jobs already in flight may still run — not the whole input.
func TestMapPanicStopsDispatch(t *testing.T) {
	const n = 10_000
	var ran atomic.Int64
	func() {
		defer func() { recover() }()
		sweep.MapOpt(sweep.Options{Workers: 4}, make([]struct{}, n), func(i int, _ struct{}) int {
			ran.Add(1)
			if i == 0 {
				panic("early")
			}
			time.Sleep(2 * time.Millisecond)
			return i
		})
	}()
	if got := ran.Load(); got > n/10 {
		t.Fatalf("pool kept dispatching after panic: %d of %d jobs ran", got, n)
	}
}

func TestDefaultWorkers(t *testing.T) {
	defer sweep.SetDefaultWorkers(0)
	sweep.SetDefaultWorkers(3)
	if got := sweep.DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers = %d, want 3", got)
	}
	sweep.SetDefaultWorkers(0)
	if got := sweep.DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers = %d, want >= 1 (GOMAXPROCS)", got)
	}
}

// ohpDigest runs one full OHP scenario and digests everything observable:
// the verified results, the aggregate statistics, and an FNV hash of the
// complete event trace. Any divergence between two runs of the same seed —
// from scheduling, shared state, or nondeterministic iteration — changes
// the digest.
func ohpDigest(t *testing.T, seed int64) string {
	t.Helper()
	res, err := hds.RunOHP(hds.OHPExperiment{
		IDs:     ident.Balanced(6, 3),
		Crashes: map[hds.PID]hds.Time{1: 30},
		GST:     50, Delta: 3,
		Seed:    seed,
		Horizon: 3000,
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "stab=%d leaderstab=%d leader=%v to=%v ", res.TrustedStabilization,
		res.LeaderStabilization, res.Leader, res.FinalTimeouts)
	fmt.Fprintf(h, "bcast=%d deliver=%d drop=%d ", res.Stats.Broadcasts, res.Stats.Delivered, res.Stats.Dropped)
	// Per-tag counts live in a map: fold them commutatively (XOR) so the
	// digest does not depend on Go's randomized iteration order.
	var tags uint64
	//detlint:ignore maprange XOR of per-entry hashes is commutative; each entry is hashed independently
	for tag, n := range res.Stats.ByTag {
		th := fnv.New64a()
		fmt.Fprintf(th, "%s=%d", tag, n)
		tags ^= th.Sum64()
	}
	fmt.Fprintf(h, "tags=%d", tags)
	return fmt.Sprintf("%x", h.Sum64())
}

// TestSweepSerialParallelIdenticalDigests reruns the same seeded scenarios
// serially and with many workers, twice each, and demands identical
// digests — the determinism contract on real simulator workloads.
func TestSweepSerialParallelIdenticalDigests(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	digest := func(workers int) []string {
		return sweep.MapOpt(sweep.Options{Workers: workers}, seeds, func(_ int, s int64) string {
			return ohpDigest(t, s)
		})
	}
	serial := digest(1)
	for run := 0; run < 2; run++ {
		for _, workers := range []int{1, 4, 16} {
			if got := digest(workers); !reflect.DeepEqual(got, serial) {
				t.Fatalf("digests diverged: workers=%d run=%d\n got %v\nwant %v", workers, run, got, serial)
			}
		}
	}
}

// TestSweepTraceEventsIdentical compares full event traces — not just
// digests — between a serial and a heavily parallel sweep of raw engines.
func TestSweepTraceEventsIdentical(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	runAll := func(workers int) [][]trace.Event {
		return sweep.MapOpt(sweep.Options{Workers: workers}, seeds, func(_ int, s int64) []trace.Event {
			rec := trace.NewRecorder()
			eng := sim.New(sim.Config{IDs: ident.Balanced(5, 2), Net: sim.Async{MaxDelay: 7}, Seed: s, Recorder: rec})
			for i := 0; i < 5; i++ {
				eng.AddProcess(&pollster{})
			}
			eng.CrashAt(2, 40)
			eng.Run(300)
			return rec.Events()
		})
	}
	serial, parallel := runAll(1), runAll(8)
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("seed %d: traces differ between serial and parallel sweeps", seeds[i])
		}
	}
}

// pollster broadcasts every 5 units forever (enough traffic to make any
// cross-engine interference visible in the trace).
type pollster struct{ env sim.Environment }

type ping struct{}

func (ping) MsgTag() string { return "PING" }

func (p *pollster) Init(env sim.Environment) {
	p.env = env
	env.Broadcast(ping{})
	env.SetTimer(5, 0)
}
func (p *pollster) OnMessage(any) {}
func (p *pollster) OnTimer(tag int) {
	p.env.Broadcast(ping{})
	p.env.SetTimer(5, tag)
}

// TestChurnHeavyTailSweepDeterminism pins the determinism contract on the
// new workload families: crash-recovery churn (with OnRecover callbacks
// and timer epochs), truncated heavy-tailed delays, and an n=1000 engine —
// swept serially and in parallel, the digests must match byte for byte.
func TestChurnHeavyTailSweepDeterminism(t *testing.T) {
	scenarios := []func() string{
		func() string { // Figure 6 detector under churn
			res, err := hds.RunChurnOHP(hds.ChurnOHPExperiment{
				IDs:   ident.Balanced(12, 4),
				Churn: hds.ChurnSpec{Fraction: 0.25, Cycles: 2, Start: 30, Down: 40, Up: 60, Stagger: 7},
				Seed:  1, Horizon: 2000,
			})
			return fmt.Sprintf("churn-ohp %+v %v", res, err)
		},
		func() string { // heavy-tailed delays under the same detector
			res, err := hds.RunOHP(hds.OHPExperiment{
				IDs:     ident.Balanced(6, 3),
				Crashes: map[hds.PID]hds.Time{1: 30},
				Net:     sim.Pareto{Scale: 2, Alpha: 1.5, Cap: 15},
				Seed:    2, Horizon: 12000,
			})
			return fmt.Sprintf("pareto-ohp %d %d %d %v", res.TrustedStabilization,
				res.LeaderStabilization, res.Stats.Broadcasts, err)
		},
		func() string { // n=1000: churn + heavy tail on the heartbeat engine
			res, err := hds.RunHeartbeatChurn(hds.HeartbeatExperiment{
				IDs:   ident.Balanced(1000, 50),
				Churn: hds.ChurnSpec{Fraction: 0.2, Cycles: 1, Start: 5, Down: 10},
				Net:   sim.Pareto{Scale: 1, Alpha: 1.3, Cap: 40},
				Seed:  3, Period: 12, Horizon: 24, MaxEvents: 20_000_000,
			})
			return fmt.Sprintf("hb-1000 %+v %v", res, err)
		},
		func() string { // consensus under churn: Fig. 8 with the rejoin protocol
			res, err := hds.RunChurnFig8(hds.ChurnFig8Experiment{
				IDs: ident.Balanced(5, 2), T: 2,
				Churn: hds.ChurnSpec{Fraction: 0.3, Cycles: 1, Start: 2, Down: 60},
				Net:   sim.Async{MaxDelay: 8}, Seed: 4,
			})
			return fmt.Sprintf("churn-fig8 %+v %v", res, err)
		},
		func() string { // consensus under churn: Fig. 9, final-down churners
			res, err := hds.RunChurnFig9(hds.ChurnFig9Experiment{
				IDs:   ident.Balanced(6, 3),
				Churn: hds.ChurnSpec{Fraction: 0.34, Cycles: 2, Start: 2, Down: 30, Up: 40, FinalDown: true},
				Net:   sim.Async{MaxDelay: 8}, Seed: 5,
			})
			return fmt.Sprintf("churn-fig9 %+v %v", res, err)
		},
	}
	run := func(workers int) []string {
		return sweep.MapOpt(sweep.Options{Workers: workers}, scenarios, func(_ int, f func() string) string {
			return f()
		})
	}
	serial := run(1)
	for _, d := range serial {
		// Every digest ends with the scenario's error, "%v"-formatted.
		if !strings.HasSuffix(d, "<nil>") {
			t.Fatalf("scenario failed: %s", d)
		}
	}
	for _, workers := range []int{4, 8} {
		if got := run(workers); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: digests diverged\n got %v\nwant %v", workers, got, serial)
		}
	}
}

// TestExperimentTablesIdenticalAcrossWorkerCounts builds a representative
// subset of the experiment tables under different default worker counts
// and demands byte-identical markdown.
func TestExperimentTablesIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment tables")
	}
	defer sweep.SetDefaultWorkers(0)
	builders := []func() (experiments.Table, error){
		experiments.E5RelationMatrix,
		experiments.E6DiamondHPbar,
		experiments.E9Fig8Consensus,
		experiments.E10Fig9Consensus,
		experiments.E20ChurnConsensus,
	}
	render := func(workers int) []string {
		sweep.SetDefaultWorkers(workers)
		out := make([]string, len(builders))
		for i, b := range builders {
			table, err := b()
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			out[i] = table.Markdown()
		}
		return out
	}
	serial := render(1)
	for _, workers := range []int{0, 2, 8} {
		got := render(workers)
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: table %d markdown differs from serial build", workers, i)
			}
		}
	}
}
