package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures one sweep.
type Options struct {
	// Workers is the number of concurrent scenarios. 0 means the
	// process-wide default (SetDefaultWorkers), which itself defaults to
	// GOMAXPROCS; 1 runs serially on the calling goroutine.
	Workers int
}

// defaultWorkers is the process-wide worker count used when Options.Workers
// is 0. Zero means GOMAXPROCS.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker count (n <= 0
// resets to GOMAXPROCS). CLIs expose it as -workers; tests use it to force
// serial runs.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers reports the effective default worker count.
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs f(i, inputs[i]) for every input on the default worker pool and
// returns the results in input order.
func Map[I, R any](inputs []I, f func(i int, in I) R) []R {
	return MapOpt(Options{}, inputs, f)
}

// MapOpt is Map with explicit options.
func MapOpt[I, R any](opt Options, inputs []I, f func(i int, in I) R) []R {
	results := make([]R, len(inputs))
	run(opt, len(inputs), func(i int) { results[i] = f(i, inputs[i]) })
	return results
}

// MapErr is MapOpt for fallible scenarios. All inputs run to completion;
// the returned error is the lowest-index one, so the aggregate outcome
// does not depend on completion order.
func MapErr[I, R any](opt Options, inputs []I, f func(i int, in I) (R, error)) ([]R, error) {
	results := make([]R, len(inputs))
	errs := make([]error, len(inputs))
	run(opt, len(inputs), func(i int) { results[i], errs[i] = f(i, inputs[i]) })
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// run executes job(0..n-1) on a pool. Workers pull the next index from an
// atomic counter; each index is executed exactly once. Panic semantics
// match serial execution deterministically: after the first panic the pool
// stops dispatching new indices, already-dispatched jobs run to
// completion, and the panic re-raised on the calling goroutine is the
// lowest-index one. That index is exactly the index a serial run would
// have panicked at — dispatch is monotone, so every index below a
// panicking one was dispatched (hence ran, hence had its own panic
// captured) before dispatch stopped.
func run(opt Options, n int, job func(i int)) {
	if n == 0 {
		return
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicIdx = -1
		panicked any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							stop.Store(true)
							panicMu.Lock()
							if panicIdx < 0 || i < panicIdx {
								panicIdx, panicked = i, r
							}
							panicMu.Unlock()
						}
					}()
					job(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicIdx >= 0 {
		panic(panicked)
	}
}
