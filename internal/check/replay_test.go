package check

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

func decideEvent(t int64, pid int, v core.Value, round int, relayed bool) trace.Event {
	return trace.Event{Time: t, Kind: trace.KindDecide, PID: pid, MsgTag: "DECIDE",
		Detail: core.DecideDetail(v, round, relayed)}
}

// TestOutcomeTracker pins the replay reconstruction: decide events round
// trip through core.DecideDetail into the same outcome vector a live
// driver would read, non-decide events are ignored, and the first
// decision per process wins.
func TestOutcomeTracker(t *testing.T) {
	tr := NewOutcomeTracker(3)
	tr.Observe(trace.Event{Time: 1, Kind: trace.KindBroadcast, PID: 0, MsgTag: "PH1"})
	tr.Observe(decideEvent(5, 0, "v2", 2, false))
	tr.Observe(decideEvent(6, 2, "v2", 2, true))
	tr.Observe(trace.Event{Time: 7, Kind: trace.KindCrash, PID: 1})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	want := []core.Outcome{
		{Decided: true, Value: "v2", Round: 2, Time: 5},
		{},
		{Decided: true, Value: "v2", Round: 2, Time: 6, Relayed: true},
	}
	got := tr.Outcomes()
	for p := range want {
		if got[p] != want[p] {
			t.Errorf("process %d: got %+v, want %+v", p, got[p], want[p])
		}
	}
}

// TestOutcomeTrackerStability pins verdict equivalence with the live
// DecisionMonitor: a process re-deciding differently after an outage
// surfaces with the monitor's exact error string.
func TestOutcomeTrackerStability(t *testing.T) {
	tr := NewOutcomeTracker(2)
	tr.Observe(decideEvent(5, 0, "v0", 1, false))
	tr.Observe(decideEvent(9, 0, "v1", 2, false))
	err := tr.Err()
	if err == nil || !strings.Contains(err.Error(), `process 0 changed its decision from "v0" (round 1) to "v1" (round 2)`) {
		t.Fatalf("got %v, want the live monitor's changed-decision error", err)
	}

	// A repeated identical decide (relay echo after recovery) is not a
	// violation.
	tr = NewOutcomeTracker(2)
	tr.Observe(decideEvent(5, 1, "v0", 1, false))
	tr.Observe(decideEvent(9, 1, "v0", 1, false))
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestOutcomeTrackerMalformed pins the error paths: out-of-range pids and
// details that do not parse.
func TestOutcomeTrackerMalformed(t *testing.T) {
	tr := NewOutcomeTracker(2)
	tr.Observe(decideEvent(1, 5, "v0", 1, false))
	if err := tr.Err(); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("got %v, want out-of-range error", err)
	}

	tr = NewOutcomeTracker(2)
	tr.Observe(trace.Event{Time: 1, Kind: trace.KindDecide, PID: 0, MsgTag: "DECIDE", Detail: "garbage"})
	if err := tr.Err(); err == nil || !strings.Contains(err.Error(), "no round marker") {
		t.Fatalf("got %v, want parse error", err)
	}
}

// TestDecideDetailRoundTrip pins DecideDetail/ParseDecideDetail as exact
// inverses, including values containing spaces.
func TestDecideDetailRoundTrip(t *testing.T) {
	cases := []struct {
		v       core.Value
		round   int
		relayed bool
	}{
		{"v0", 0, false},
		{"v17", 3, true},
		{"odd value r=9", 12, false},
		{"odd value r=9", 12, true},
	}
	for _, c := range cases {
		d := core.DecideDetail(c.v, c.round, c.relayed)
		v, round, relayed, err := core.ParseDecideDetail(d)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if v != c.v || round != c.round || relayed != c.relayed {
			t.Errorf("%+v round-tripped to (%q, %d, %v) via %q", c, v, round, relayed, d)
		}
	}
}
