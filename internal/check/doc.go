// Package check verifies consensus executions against the problem's three
// properties (§5.1): Termination (every correct process decides), Validity
// (every decided value was proposed), and Agreement (no two processes
// decide differently). It also rejects decisions on the reserved ⊥ value,
// which Fig. 8/9 must never emit (their validity proofs hinge on it), and
// asserts round agreement: a relayed decision must report the round some
// process actually decided in, not the receiver's local round.
//
// For crash-recovery executions, ConsensusChurn restates Termination over
// the eventually-up processes (recovered churners must decide; only the
// permanently down are exempt), and DecisionMonitor — fed from
// sim.Engine.AfterEvent — pins that a decision taken before an outage
// survives it unchanged. DecisionMonitor is this package's streaming
// checker: like fd's StreamProbe/SigmaMonitor it consumes samples as they
// arrive and keeps O(1) state per process, so consensus verification does
// not materialize histories either.
package check
