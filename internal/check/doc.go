// Package check verifies consensus executions against the problem's three
// properties (§5.1): Termination (every correct process decides), Validity
// (every decided value was proposed), and Agreement (no two processes
// decide differently). It also rejects decisions on the reserved ⊥ value,
// which Fig. 8/9 must never emit (their validity proofs hinge on it).
package check
