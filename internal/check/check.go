package check

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/sim"
)

// Report aggregates a verified execution's headline numbers.
type Report struct {
	Value         core.Value
	MaxRound      int      // largest decision round among deciders
	LastDecision  sim.Time // virtual time of the last decision Termination demands
	FirstDecision sim.Time
	Deciders      int
}

// Consensus verifies one crash-stop execution: outcomes[p] is process p's
// outcome, proposals[p] its proposal, truth the fault pattern. Crashed
// processes may or may not have decided; if they did, their decisions must
// still agree (uniform agreement, which both algorithms provide via the
// PH2 quorum logic and which the paper's Agreement property demands for
// all decided values). Termination quantifies over the correct (never
// crashing) processes.
func Consensus(truth *fd.GroundTruth, proposals []core.Value, outcomes []core.Outcome) (Report, error) {
	return consensus(truth.Correct(), "correct", proposals, outcomes)
}

// ConsensusChurn restates the consensus properties for crash-recovery
// executions: Validity, Agreement and the round-agreement check are
// unchanged (they range over every decided value, crashed, recovered or
// not), but Termination is quantified over the eventually-up processes —
// under churn a recovered process rejoins the computation, so it too must
// decide; only the permanently-down are exempt. Decision survival across
// outages (a decision taken before a crash must still be reported after
// the recovery) is a run-time property; drivers verify it with a
// DecisionMonitor, since final outcomes alone cannot reveal a decision
// that was lost and re-taken identically.
func ConsensusChurn(truth *fd.GroundTruth, proposals []core.Value, outcomes []core.Outcome) (Report, error) {
	return consensus(truth.EventuallyUp(), "eventually-up", proposals, outcomes)
}

// consensus checks Validity, Agreement, round agreement, and Termination
// over the `must` set (whose elements the caller names with class, for
// error messages).
func consensus(must []sim.PID, class string, proposals []core.Value, outcomes []core.Outcome) (Report, error) {
	if len(proposals) != len(outcomes) {
		return Report{}, fmt.Errorf("check: %d proposals vs %d outcomes", len(proposals), len(outcomes))
	}
	proposed := make(map[core.Value]bool, len(proposals))
	for _, v := range proposals {
		proposed[v] = true
	}

	var rep Report
	var decidedVal core.Value
	haveVal := false
	originRounds := make(map[int]bool)
	for p, out := range outcomes {
		if !out.Decided {
			continue
		}
		if out.Value == core.Bottom {
			return Report{}, fmt.Errorf("check: process %d decided ⊥", p)
		}
		if !proposed[out.Value] {
			return Report{}, fmt.Errorf("check: validity violated — process %d decided %q, never proposed", p, out.Value)
		}
		if haveVal && out.Value != decidedVal {
			return Report{}, fmt.Errorf("check: agreement violated — %q vs %q", decidedVal, out.Value)
		}
		decidedVal, haveVal = out.Value, true
		if !out.Relayed {
			originRounds[out.Round] = true
		}
		rep.Deciders++
		if out.Round > rep.MaxRound {
			rep.MaxRound = out.Round
		}
		if rep.FirstDecision == 0 || out.Time < rep.FirstDecision {
			rep.FirstDecision = out.Time
		}
	}

	// Round agreement: a relayed decision must report the round the
	// decision was actually reached in, i.e. the round of some process that
	// decided through its own Phase 2 quorum. (Distinct quorum decisions in
	// different rounds are legal — they already agree on the value — but a
	// relayed round naming no quorum decision means the relay recorded the
	// receiver's local round instead of the deciding one.)
	for p, out := range outcomes {
		if out.Decided && out.Relayed && !originRounds[out.Round] {
			return Report{}, fmt.Errorf("check: round agreement violated — process %d reports a relayed decision in round %d, but no process decided in that round", p, out.Round)
		}
	}

	for _, p := range must {
		out := outcomes[p]
		if !out.Decided {
			return Report{}, fmt.Errorf("check: termination violated — %s process %d did not decide", class, p)
		}
		if out.Time > rep.LastDecision {
			rep.LastDecision = out.Time
		}
	}
	rep.Value = decidedVal
	return rep, nil
}

// DecisionMonitor asserts decision stability over a running execution:
// once a process reports a decision, every later observation must report
// the same (value, round) — in particular across crashes and recoveries,
// pinning the crash-recovery property that a decision taken before an
// outage survives it. Drivers feed it from sim.Engine.AfterEvent:
//
//	mon := check.NewDecisionMonitor()
//	eng.AfterEvent(func(_ sim.Time, p sim.PID) {
//		if p >= 0 {
//			mon.Observe(p, insts[p].Decided())
//		}
//	})
//
// and read Err after the run.
type DecisionMonitor struct {
	seen map[sim.PID]core.Outcome
	err  error
}

// NewDecisionMonitor builds an empty monitor.
func NewDecisionMonitor() *DecisionMonitor {
	return &DecisionMonitor{seen: make(map[sim.PID]core.Outcome)}
}

// Observe records process p's current outcome; the first decided
// observation is pinned and any later divergence is an error.
func (m *DecisionMonitor) Observe(p sim.PID, out core.Outcome) {
	if m.err != nil {
		return
	}
	prev, ok := m.seen[p]
	if !ok {
		if out.Decided {
			m.seen[p] = out
		}
		return
	}
	switch {
	case !out.Decided:
		m.err = fmt.Errorf("check: process %d lost its decision %q (round %d) — decisions must survive crashes and recoveries", p, prev.Value, prev.Round)
	case out.Value != prev.Value || out.Round != prev.Round:
		m.err = fmt.Errorf("check: process %d changed its decision from %q (round %d) to %q (round %d)", p, prev.Value, prev.Round, out.Value, out.Round)
	}
}

// Err reports the first stability violation observed (nil in correct runs).
func (m *DecisionMonitor) Err() error {
	return m.err
}
