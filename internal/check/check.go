package check

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/sim"
)

// Report aggregates a verified execution's headline numbers.
type Report struct {
	Value         core.Value
	MaxRound      int      // largest decision round among deciders
	LastDecision  sim.Time // virtual time of the last correct decision
	FirstDecision sim.Time
	Deciders      int
}

// Consensus verifies one execution: outcomes[p] is process p's outcome,
// proposals[p] its proposal, truth the fault pattern. Crashed processes may
// or may not have decided; if they did, their decisions must still agree
// (uniform agreement, which both algorithms provide via the PH2 quorum
// logic and which the paper's Agreement property demands for all decided
// values).
func Consensus(truth *fd.GroundTruth, proposals []core.Value, outcomes []core.Outcome) (Report, error) {
	if len(proposals) != len(outcomes) {
		return Report{}, fmt.Errorf("check: %d proposals vs %d outcomes", len(proposals), len(outcomes))
	}
	proposed := make(map[core.Value]bool, len(proposals))
	for _, v := range proposals {
		proposed[v] = true
	}

	var rep Report
	var decidedVal core.Value
	haveVal := false
	for p, out := range outcomes {
		if !out.Decided {
			continue
		}
		if out.Value == core.Bottom {
			return Report{}, fmt.Errorf("check: process %d decided ⊥", p)
		}
		if !proposed[out.Value] {
			return Report{}, fmt.Errorf("check: validity violated — process %d decided %q, never proposed", p, out.Value)
		}
		if haveVal && out.Value != decidedVal {
			return Report{}, fmt.Errorf("check: agreement violated — %q vs %q", decidedVal, out.Value)
		}
		decidedVal, haveVal = out.Value, true
		rep.Deciders++
		if out.Round > rep.MaxRound {
			rep.MaxRound = out.Round
		}
		if rep.FirstDecision == 0 || out.Time < rep.FirstDecision {
			rep.FirstDecision = out.Time
		}
	}

	for _, p := range truth.Correct() {
		out := outcomes[p]
		if !out.Decided {
			return Report{}, fmt.Errorf("check: termination violated — correct process %d did not decide", p)
		}
		if out.Time > rep.LastDecision {
			rep.LastDecision = out.Time
		}
	}
	rep.Value = decidedVal
	return rep, nil
}
