package check

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// OutcomeTracker reconstructs per-process outcomes from a trace's decide
// events — the replay-side stand-in for querying instance Decided()
// methods that no longer exist once the engine is gone. Each KindDecide
// event carries a core.DecideDetail; the first one per process pins its
// outcome, and every one is also fed to an embedded DecisionMonitor, so a
// replayed run reports decision-stability violations with the exact error
// strings the live monitor would have produced.
type OutcomeTracker struct {
	outcomes []core.Outcome
	mon      *DecisionMonitor
	err      error
}

// NewOutcomeTracker tracks outcomes for processes 0..n-1.
func NewOutcomeTracker(n int) *OutcomeTracker {
	return &OutcomeTracker{outcomes: make([]core.Outcome, n), mon: NewDecisionMonitor()}
}

// Observe consumes one trace event; non-decide events are ignored, so the
// tracker can sit on an unfiltered event stream.
func (t *OutcomeTracker) Observe(e trace.Event) {
	if e.Kind != trace.KindDecide || t.err != nil {
		return
	}
	if e.PID < 0 || e.PID >= len(t.outcomes) {
		t.err = fmt.Errorf("check: decide event for process %d outside [0,%d)", e.PID, len(t.outcomes))
		return
	}
	v, round, relayed, err := core.ParseDecideDetail(e.Detail)
	if err != nil {
		t.err = err
		return
	}
	out := core.Outcome{Decided: true, Value: v, Round: round, Time: sim.Time(e.Time), Relayed: relayed}
	t.mon.Observe(sim.PID(e.PID), out)
	if !t.outcomes[e.PID].Decided {
		t.outcomes[e.PID] = out
	}
}

// Outcomes returns the reconstructed outcome vector (first decision per
// process, exactly what the live driver reads after the run).
func (t *OutcomeTracker) Outcomes() []core.Outcome { return t.outcomes }

// Err reports the first malformed decide event or decision-stability
// violation (via the embedded DecisionMonitor), nil in correct runs.
func (t *OutcomeTracker) Err() error {
	if t.err != nil {
		return t.err
	}
	return t.mon.Err()
}
