package check

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/sim"
)

func truth(n int, crashed ...sim.PID) *fd.GroundTruth {
	ct := make(map[sim.PID]sim.Time)
	for _, p := range crashed {
		ct[p] = 10
	}
	return fd.NewGroundTruth(ident.Unique(n), ct)
}

func dec(v core.Value, round int, at sim.Time) core.Outcome {
	return core.Outcome{Decided: true, Value: v, Round: round, Time: at}
}

func TestConsensusHappyPath(t *testing.T) {
	g := truth(3, 1)
	props := []core.Value{"a", "b", "c"}
	outs := []core.Outcome{dec("b", 2, 50), {}, dec("b", 1, 40)}
	rep, err := Consensus(g, props, outs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Value != "b" || rep.Deciders != 2 || rep.MaxRound != 2 {
		t.Errorf("report = %+v", rep)
	}
	if rep.FirstDecision != 40 || rep.LastDecision != 50 {
		t.Errorf("decision times = %d..%d", rep.FirstDecision, rep.LastDecision)
	}
}

func TestConsensusViolations(t *testing.T) {
	g := truth(3)
	props := []core.Value{"a", "b", "c"}
	tests := []struct {
		name string
		outs []core.Outcome
		want string
	}{
		{"termination", []core.Outcome{dec("a", 1, 5), dec("a", 1, 5), {}}, "termination"},
		{"agreement", []core.Outcome{dec("a", 1, 5), dec("b", 1, 5), dec("a", 1, 5)}, "agreement"},
		{"validity", []core.Outcome{dec("z", 1, 5), dec("z", 1, 5), dec("z", 1, 5)}, "validity"},
		{"bottom", []core.Outcome{dec(core.Bottom, 1, 5), dec(core.Bottom, 1, 5), dec(core.Bottom, 1, 5)}, "⊥"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Consensus(g, props, tt.outs)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("err = %v, want containing %q", err, tt.want)
			}
		})
	}
}

func TestConsensusCrashedDeciderMustAgree(t *testing.T) {
	// Uniform agreement: a process that decided before crashing still
	// counts.
	g := truth(3, 0)
	props := []core.Value{"a", "b", "c"}
	outs := []core.Outcome{dec("a", 1, 5), dec("b", 1, 9), dec("b", 1, 9)}
	if _, err := Consensus(g, props, outs); err == nil {
		t.Error("disagreeing crashed decider accepted")
	}
}

func TestConsensusLengthMismatch(t *testing.T) {
	g := truth(2)
	if _, err := Consensus(g, []core.Value{"a"}, make([]core.Outcome, 2)); err == nil {
		t.Error("length mismatch accepted")
	}
}
