package check

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/sim"
)

func truth(n int, crashed ...sim.PID) *fd.GroundTruth {
	ct := make(map[sim.PID]sim.Time)
	for _, p := range crashed {
		ct[p] = 10
	}
	return fd.NewGroundTruth(ident.Unique(n), ct)
}

func dec(v core.Value, round int, at sim.Time) core.Outcome {
	return core.Outcome{Decided: true, Value: v, Round: round, Time: at}
}

func TestConsensusHappyPath(t *testing.T) {
	g := truth(3, 1)
	props := []core.Value{"a", "b", "c"}
	outs := []core.Outcome{dec("b", 2, 50), {}, dec("b", 1, 40)}
	rep, err := Consensus(g, props, outs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Value != "b" || rep.Deciders != 2 || rep.MaxRound != 2 {
		t.Errorf("report = %+v", rep)
	}
	if rep.FirstDecision != 40 || rep.LastDecision != 50 {
		t.Errorf("decision times = %d..%d", rep.FirstDecision, rep.LastDecision)
	}
}

func TestConsensusViolations(t *testing.T) {
	g := truth(3)
	props := []core.Value{"a", "b", "c"}
	tests := []struct {
		name string
		outs []core.Outcome
		want string
	}{
		{"termination", []core.Outcome{dec("a", 1, 5), dec("a", 1, 5), {}}, "termination"},
		{"agreement", []core.Outcome{dec("a", 1, 5), dec("b", 1, 5), dec("a", 1, 5)}, "agreement"},
		{"validity", []core.Outcome{dec("z", 1, 5), dec("z", 1, 5), dec("z", 1, 5)}, "validity"},
		{"bottom", []core.Outcome{dec(core.Bottom, 1, 5), dec(core.Bottom, 1, 5), dec(core.Bottom, 1, 5)}, "⊥"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Consensus(g, props, tt.outs)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("err = %v, want containing %q", err, tt.want)
			}
		})
	}
}

func TestConsensusCrashedDeciderMustAgree(t *testing.T) {
	// Uniform agreement: a process that decided before crashing still
	// counts.
	g := truth(3, 0)
	props := []core.Value{"a", "b", "c"}
	outs := []core.Outcome{dec("a", 1, 5), dec("b", 1, 9), dec("b", 1, 9)}
	if _, err := Consensus(g, props, outs); err == nil {
		t.Error("disagreeing crashed decider accepted")
	}
}

func TestConsensusLengthMismatch(t *testing.T) {
	g := truth(2)
	if _, err := Consensus(g, []core.Value{"a"}, make([]core.Outcome, 2)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func relayed(v core.Value, round int, at sim.Time) core.Outcome {
	out := dec(v, round, at)
	out.Relayed = true
	return out
}

// TestConsensusRoundAgreement pins the relayed-round bugfix: a relayed
// decision must name a round in which some process decided through its own
// quorum — the receiver's local round (what the old code recorded) does
// not qualify.
func TestConsensusRoundAgreement(t *testing.T) {
	g := truth(3)
	props := []core.Value{"a", "b", "c"}
	// Origin decided in round 2; both relays carry round 2 → fine.
	if _, err := Consensus(g, props, []core.Outcome{dec("a", 2, 5), relayed("a", 2, 8), relayed("a", 2, 9)}); err != nil {
		t.Fatalf("matching relayed rounds rejected: %v", err)
	}
	// A relay reporting round 3 — no quorum decision there — must fail.
	_, err := Consensus(g, props, []core.Outcome{dec("a", 2, 5), relayed("a", 3, 8), relayed("a", 2, 9)})
	if err == nil || !strings.Contains(err.Error(), "round agreement") {
		t.Fatalf("err = %v, want round-agreement violation", err)
	}
	// Two genuine quorum decisions in different rounds are legal, and
	// relays may descend from either.
	if _, err := Consensus(g, props, []core.Outcome{dec("a", 2, 5), dec("a", 3, 7), relayed("a", 3, 9)}); err != nil {
		t.Fatalf("multi-round quorum decisions rejected: %v", err)
	}
}

// churnTruth builds a crash-recovery pattern: every listed process crashes
// at 10 and recovers at 60, except those also listed in finalDown.
func churnTruth(n int, churners []sim.PID, finalDown ...sim.PID) *fd.GroundTruth {
	down := make(map[sim.PID]bool, len(finalDown))
	for _, p := range finalDown {
		down[p] = true
	}
	var evs []sim.ChurnEvent
	for _, p := range churners {
		evs = append(evs, sim.ChurnEvent{P: p, At: 10})
		if !down[p] {
			evs = append(evs, sim.ChurnEvent{P: p, At: 60, Recover: true})
		}
	}
	return fd.NewGroundTruthFromChurn(ident.Unique(n), evs)
}

// TestConsensusChurnTermination: Termination quantifies over the
// eventually-up set — a recovered churner must decide, a final-down one is
// exempt.
func TestConsensusChurnTermination(t *testing.T) {
	props := []core.Value{"a", "b", "c", "d"}
	g := churnTruth(4, []sim.PID{1, 2}, 2) // p1 recovers, p2 stays down
	// p2 undecided is fine; everyone else decided.
	if _, err := ConsensusChurn(g, props, []core.Outcome{dec("a", 1, 5), dec("a", 1, 70), {}, dec("a", 1, 6)}); err != nil {
		t.Fatalf("eventually-up deciders rejected: %v", err)
	}
	// The recovered churner p1 not deciding violates churn Termination...
	_, err := ConsensusChurn(g, props, []core.Outcome{dec("a", 1, 5), {}, {}, dec("a", 1, 6)})
	if err == nil || !strings.Contains(err.Error(), "eventually-up") {
		t.Fatalf("err = %v, want eventually-up termination violation", err)
	}
	// ...while the crash-stop checker would also demand it of nobody else:
	// the same outcomes pass the strict reading, whose Correct set excludes
	// both churners.
	if _, err := Consensus(g, props, []core.Outcome{dec("a", 1, 5), {}, {}, dec("a", 1, 6)}); err != nil {
		t.Fatalf("crash-stop reading rejected churner non-decision: %v", err)
	}
}

func TestDecisionMonitor(t *testing.T) {
	mon := NewDecisionMonitor()
	mon.Observe(0, core.Outcome{})
	mon.Observe(0, dec("a", 2, 5))
	mon.Observe(0, dec("a", 2, 5))
	if err := mon.Err(); err != nil {
		t.Fatalf("stable decision flagged: %v", err)
	}
	// A decision disappearing (e.g. wiped by a recovery path) is an error.
	mon.Observe(0, core.Outcome{})
	if err := mon.Err(); err == nil || !strings.Contains(err.Error(), "lost") {
		t.Fatalf("err = %v, want lost-decision violation", err)
	}
	// A changed decision likewise.
	mon2 := NewDecisionMonitor()
	mon2.Observe(1, dec("a", 2, 5))
	mon2.Observe(1, dec("b", 2, 6))
	if err := mon2.Err(); err == nil || !strings.Contains(err.Error(), "changed") {
		t.Fatalf("err = %v, want changed-decision violation", err)
	}
	mon3 := NewDecisionMonitor()
	mon3.Observe(2, dec("a", 2, 5))
	mon3.Observe(2, dec("a", 3, 5))
	if err := mon3.Err(); err == nil {
		t.Fatal("changed decision round accepted")
	}
}
