package experiments

import (
	"strings"
	"testing"
)

// TestAllTablesVerified runs every experiment end to end and asserts no
// row reports a verification failure — the experiment suite is itself a
// regression test for the whole stack.
func TestAllTablesVerified(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	ids := make(map[string]bool)
	for _, table := range All() {
		table := table
		t.Run(table.ID, func(t *testing.T) {
			if table.ID == "" || table.Title == "" || table.Paper == "" {
				t.Fatalf("table metadata incomplete: %+v", table)
			}
			if ids[table.ID] {
				t.Fatalf("duplicate experiment id %s", table.ID)
			}
			ids[table.ID] = true
			if len(table.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Header) {
					t.Fatalf("row width %d != header width %d: %v", len(row), len(table.Header), row)
				}
				for _, cell := range row {
					if strings.HasPrefix(cell, "✗") {
						t.Fatalf("verification failure in row %v", row)
					}
				}
			}
		})
	}
}

func TestMarkdownRendering(t *testing.T) {
	tb := Table{
		ID:     "EX",
		Title:  "demo",
		Paper:  "Figure 0",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"note."},
	}
	md := tb.Markdown()
	for _, want := range []string{"### EX — demo", "| a | b |", "| 1 | 2 |", "note.", "Figure 0"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
