package experiments

import (
	"os"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// TestAllTablesVerified runs every experiment end to end and asserts no
// row reports a verification failure — the experiment suite is itself a
// regression test for the whole stack.
func TestAllTablesVerified(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	tables, err := All()
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool)
	for _, table := range tables {
		table := table
		t.Run(table.ID, func(t *testing.T) {
			if table.ID == "" || table.Title == "" || table.Paper == "" {
				t.Fatalf("table metadata incomplete: %+v", table)
			}
			if ids[table.ID] {
				t.Fatalf("duplicate experiment id %s", table.ID)
			}
			ids[table.ID] = true
			if table.Partial {
				t.Fatal("default campaign config produced a partial table")
			}
			if table.Digest == "" {
				t.Fatal("table has no campaign digest")
			}
			if len(table.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Header) {
					t.Fatalf("row width %d != header width %d: %v", len(row), len(table.Header), row)
				}
				for _, cell := range row {
					if strings.HasPrefix(cell, "✗") {
						t.Fatalf("verification failure in row %v", row)
					}
				}
			}
		})
	}
}

func TestMarkdownRendering(t *testing.T) {
	tb := Table{
		ID:     "EX",
		Title:  "demo",
		Paper:  "Figure 0",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"note."},
	}
	md := tb.Markdown()
	for _, want := range []string{"### EX — demo", "| a | b |", "| 1 | 2 |", "note.", "Figure 0"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

// TestTablesSelection asserts Tables builds exactly the requested
// experiments, in index order, without running the rest.
func TestTablesSelection(t *testing.T) {
	tables, err := Tables([]string{"E5", "E1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].ID != "E1" || tables[1].ID != "E5" {
		got := make([]string, len(tables))
		for i, tb := range tables {
			got[i] = tb.ID
		}
		t.Fatalf("Tables([E5 E1]) built %v, want [E1 E5]", got)
	}
	// A typo'd id must error, not silently drop the table.
	if _, err := Tables([]string{"E5", "E61"}); err == nil || !strings.Contains(err.Error(), "E61") {
		t.Fatalf("Tables with unknown id E61: err = %v, want error naming it", err)
	}
}

// assertCampaignModesByteIdentical pins one table's byte-identity across
// campaign layouts: (a) the default single-shard in-memory mode, (b) 3
// in-process shards with checkpoints, and (c) 3 shard-only runs — one
// campaign.Run call per shard, exactly what three separate processes
// execute — then merged via -resume semantics.
func assertCampaignModesByteIdentical(t *testing.T, id string, builder func() (Table, error)) {
	t.Helper()
	defer SetCampaign(campaign.Config{})

	build := func(cfg campaign.Config) Table {
		t.Helper()
		SetCampaign(cfg)
		table, err := builder()
		if err != nil {
			t.Fatal(err)
		}
		return table
	}

	serial := build(campaign.Config{})
	if serial.Digest == "" || len(serial.Rows) == 0 {
		t.Fatalf("serial table incomplete: %+v", serial)
	}

	inproc := build(campaign.Config{Shards: 3, Shard: -1})
	if inproc.Markdown() != serial.Markdown() || inproc.Digest != serial.Digest {
		t.Fatalf("3 in-process shards diverge from serial:\n%s\nvs\n%s", inproc.Markdown(), serial.Markdown())
	}

	dir := t.TempDir()
	for s := 0; s < 3; s++ {
		shard := build(campaign.Config{Shards: 3, Shard: s, Dir: dir})
		if !shard.Partial || shard.Rows != nil {
			t.Fatalf("shard-only run %d returned a full table: %+v", s, shard)
		}
		if _, err := os.Stat(campaign.ShardPath(dir, id, 3, s)); err != nil {
			t.Fatalf("shard %d checkpoint not written: %v", s, err)
		}
	}
	merged := build(campaign.Config{Shards: 3, Shard: -1, Dir: dir, Resume: true})
	if merged.Markdown() != serial.Markdown() || merged.Digest != serial.Digest {
		t.Fatalf("merged multi-process table diverges from serial:\n%s\nvs\n%s", merged.Markdown(), serial.Markdown())
	}

	// A damaged checkpoint must be rejected by a bare merge.
	path := campaign.ShardPath(dir, id, 3, 1)
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Merge[[]string](dir, id, 3, 3); err == nil {
		t.Fatal("merge accepted a corrupt shard checkpoint")
	}
}

// TestCampaignModesByteIdentical is the acceptance pin at the experiments
// layer (reduction workload, E1).
func TestCampaignModesByteIdentical(t *testing.T) {
	assertCampaignModesByteIdentical(t, "E1", E1SigmaToHSigmaKnown)
}

// TestE20CampaignModesByteIdentical extends the pin to the churn-consensus
// table: the rejoin protocol, decision-stability monitoring, and the churn
// cross-checks must all be deterministic under every shard layout.
func TestE20CampaignModesByteIdentical(t *testing.T) {
	assertCampaignModesByteIdentical(t, "E20", E20ChurnConsensus)
}

// TestE21CampaignModesByteIdentical pins serial-vs-parallel byte-identity
// at population scale: the lazy fan-out fate streams and the streaming
// verifiers must be exactly as deterministic at n=50,000 as the eager
// path was at n=50 — same digest whatever the shard/worker layout.
func TestE21CampaignModesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the population-scaling table four times")
	}
	assertCampaignModesByteIdentical(t, "E21", E21PopulationScaling)
}
