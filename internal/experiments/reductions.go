package experiments

import (
	"repro/internal/fd"
	"repro/internal/fd/alive"
	"repro/internal/fd/oracle"
	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/reduce"
	"repro/internal/sim"
	"repro/internal/trace"
	"slices"
)

const (
	redStabilize sim.Time = 120
	redHorizon   sim.Time = 800
)

// redHarness runs one reduction deployment and returns the check result
// plus message statistics.
type redHarness struct {
	ids     ident.Assignment
	crashes map[sim.PID]sim.Time
	seed    int64
	rec     *trace.Recorder
	eng     *sim.Engine
	truth   *fd.GroundTruth
	world   *oracle.World
}

func newRedHarness(ids ident.Assignment, crashes map[sim.PID]sim.Time, seed int64) *redHarness {
	rec := &trace.Recorder{}
	h := &redHarness{
		ids:     ids,
		crashes: crashes,
		seed:    seed,
		rec:     rec,
		eng:     sim.New(sim.Config{IDs: ids, Seed: seed, Recorder: rec}),
		truth:   fd.NewGroundTruth(ids, crashes),
	}
	h.world = oracle.NewWorld(h.truth, redStabilize)
	return h
}

func (h *redHarness) run() {
	h.eng.CrashSchedule(h.crashes)
	h.eng.Run(redHorizon)
}

func (h *redHarness) hsigmaProbes(dets []fd.HSigma) (*fd.Probe[[]fd.QuorumPair], *fd.Probe[[]fd.Label]) {
	quora := fd.NewProbe(h.eng, len(dets), func(p sim.PID) ([]fd.QuorumPair, bool) {
		if h.eng.Crashed(p) {
			return nil, false
		}
		return dets[p].Quora(), true
	}, quoraEqual)
	labels := fd.NewProbe(h.eng, len(dets), func(p sim.PID) ([]fd.Label, bool) {
		if h.eng.Crashed(p) {
			return nil, false
		}
		return dets[p].Labels(), true
	}, fd.LabelsEqual)
	return quora, labels
}

func quoraEqual(a, b []fd.QuorumPair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Label != b[i].Label || !a[i].M.Equal(b[i].M) {
			return false
		}
	}
	return true
}

// E1SigmaToHSigmaKnown measures Figure 1 (Σ→HΣ, membership known): a
// communication-free transformation whose label sets grow exponentially
// with the known membership.
func E1SigmaToHSigmaKnown() (Table, error) {
	t := Table{
		ID:     "E1",
		Title:  "Σ → HΣ with known membership",
		Paper:  "Figure 1, Theorem 1(1)",
		Header: []string{"n", "crashes", "HΣ verified", "stabilization (vt)", "broadcasts", "|h_labels| per proc"},
		Notes:  []string{"Zero broadcasts: the Figure 1 transformation is communication-free; h_labels is the 2^(n−1) subsets of I(Π) containing id(p)."},
	}
	err := tableRows(&t, []int{3, 5, 7}, func(_ int, n int) []string {
		ids := ident.Unique(n)
		crashes := map[sim.PID]sim.Time{0: 40}
		h := newRedHarness(ids, crashes, int64(n))
		dets := make([]fd.HSigma, n)
		var labelCount int
		for i := 0; i < n; i++ {
			src := oracle.NewSigma(h.world)
			xf := reduce.NewSigmaToHSigmaKnown(src, ids.I(), 0)
			dets[i] = xf
			h.eng.AddProcess(sim.NewNode().Add("sigma", src).Add("fig1", xf))
		}
		quora, labels := h.hsigmaProbes(dets)
		h.run()
		res, err := fd.CheckHSigma(h.truth, quora, labels)
		status := "✓"
		if err != nil {
			status = "✗ " + err.Error()
		}
		if ls, ok := labels.Last(1); ok {
			labelCount = len(ls)
		}
		return []string{
			itoaI(n), "1", status, itoa(res.StabilizationTime),
			itoaI(h.rec.Stats().Broadcasts), itoaI(labelCount),
		}
	})
	return t, err
}

// E2SigmaToHSigmaUnknown measures Figure 2 (Σ→HΣ, membership unknown):
// the IDENT discovery traffic and the horizon at which HΣ stabilizes.
func E2SigmaToHSigmaUnknown() (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "Σ → HΣ without membership knowledge",
		Paper:  "Figure 2, Theorem 1(2)",
		Header: []string{"n", "crashes", "HΣ verified", "stabilization (vt)", "IDENT broadcasts"},
		Notes:  []string{"IDENT traffic grows linearly in n per unit time — the price of membership discovery; stabilization tracks the oracle's Σ convergence."},
	}
	err := tableRows(&t, []int{3, 5, 7}, func(_ int, n int) []string {
		ids := ident.Unique(n)
		crashes := map[sim.PID]sim.Time{sim.PID(n - 1): 60}
		h := newRedHarness(ids, crashes, int64(10+n))
		dets := make([]fd.HSigma, n)
		for i := 0; i < n; i++ {
			src := oracle.NewSigma(h.world)
			xf := reduce.NewSigmaToHSigmaUnknown(src, 0)
			dets[i] = xf
			h.eng.AddProcess(sim.NewNode().Add("sigma", src).Add("fig2", xf))
		}
		quora, labels := h.hsigmaProbes(dets)
		h.run()
		res, err := fd.CheckHSigma(h.truth, quora, labels)
		status := "✓"
		if err != nil {
			status = "✗ " + err.Error()
		}
		return []string{
			itoaI(n), "1", status, itoa(res.StabilizationTime),
			itoaI(h.rec.Stats().ByTag["IDENT"]),
		}
	})
	return t, err
}

// E3AliveList measures Figure 3 (class 𝔈): how fast the correct
// identifiers conquer the prefix of the alive list as crashes mount.
func E3AliveList() (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  "𝔈 alive list: prefix convergence",
		Paper:  "Figure 3, Definition 1, Lemma 1",
		Header: []string{"n", "crashes", "last crash (vt)", "𝔈 verified", "prefix stable (vt)", "ALIVE broadcasts"},
		Notes:  []string{"\"Prefix stable\" is when the *set* of identifiers occupying the first |Correct| positions stopped changing (the list keeps reordering within the prefix forever, which the class permits). It lands shortly after the last crash: crashed identifiers stop being refreshed and sink below every correct one."},
	}
	type e3cfg struct {
		n       int
		crashes map[sim.PID]sim.Time
	}
	cfgs := []e3cfg{
		{4, nil},
		{6, map[sim.PID]sim.Time{1: 100}},
		{8, map[sim.PID]sim.Time{1: 100, 3: 200, 5: 300}},
		{12, map[sim.PID]sim.Time{0: 50, 2: 100, 4: 150, 6: 200, 8: 250}},
	}
	err := tableRows(&t, cfgs, func(_ int, cfg e3cfg) []string {
		ids := ident.Unique(cfg.n)
		rec := &trace.Recorder{}
		eng := sim.New(sim.Config{IDs: ids, Net: sim.Async{MaxDelay: 8}, Seed: int64(cfg.n), Recorder: rec})
		dets := make([]*alive.Detector, cfg.n)
		for i := range dets {
			dets[i] = alive.New(0)
			eng.AddProcess(dets[i])
		}
		eng.CrashSchedule(cfg.crashes)
		probe := fd.NewProbe(eng, cfg.n, func(p sim.PID) ([]ident.ID, bool) {
			if eng.Crashed(p) {
				return nil, false
			}
			return dets[p].Alive(), true
		}, slicesEqual)
		// Prefix probe: the sorted set of the first |Correct| identifiers,
		// whose last change is the meaningful stabilization instant.
		truth := fd.NewGroundTruth(ids, cfg.crashes)
		k := len(truth.Correct())
		prefix := fd.NewProbe(eng, cfg.n, func(p sim.PID) ([]ident.ID, bool) {
			if eng.Crashed(p) {
				return nil, false
			}
			a := dets[p].Alive()
			if len(a) < k {
				return nil, false
			}
			top := append([]ident.ID(nil), a[:k]...)
			slices.Sort(top)
			return top, true
		}, slicesEqual)
		eng.Run(1200)
		res, err := fd.CheckAliveList(truth, probe)
		status := "✓"
		if err != nil {
			status = "✗ " + err.Error()
		}
		_ = res
		var prefixStable sim.Time
		for _, p := range truth.Correct() {
			if ts := prefix.LastChange(p); ts > prefixStable {
				prefixStable = ts
			}
		}
		return []string{
			itoaI(cfg.n), itoaI(len(cfg.crashes)), itoa(truth.LastCrashTime()), status,
			itoa(prefixStable), itoaI(rec.Stats().ByTag["ALIVE"]),
		}
	})
	return t, err
}

func slicesEqual(a, b []ident.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// E4HSigmaToSigma measures Figure 4 (HΣ→Σ via 𝔈): the emulated Σ detector
// and the LABELS gossip it costs.
func E4HSigmaToSigma() (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "HΣ → Σ using the 𝔈 alive list",
		Paper:  "Figure 4, Theorem 2",
		Header: []string{"n", "crashes", "Σ verified", "stabilization (vt)", "LABELS broadcasts", "ALIVE broadcasts"},
		Notes:  []string{"The emulated Σ trusts I(Correct) once the 𝔈 ranking prefers the all-correct HΣ candidate; both gossip streams run at the poll rate."},
	}
	err := tableRows(&t, []int{3, 5, 7}, func(_ int, n int) []string {
		ids := ident.Unique(n)
		crashes := map[sim.PID]sim.Time{0: 50}
		h := newRedHarness(ids, crashes, int64(20+n))
		dets := make([]*reduce.HSigmaToSigma, n)
		for i := 0; i < n; i++ {
			src := oracle.NewHSigma(h.world)
			al := alive.New(0)
			xf := reduce.NewHSigmaToSigma(src, al, 0)
			dets[i] = xf
			h.eng.AddProcess(sim.NewNode().Add("hsigma", src).Add("alive", al).Add("fig4", xf))
		}
		pr := fd.NewProbe(h.eng, n, func(p sim.PID) (*multiset.Multiset[ident.ID], bool) {
			if h.eng.Crashed(p) || !dets[p].HasOutput() {
				return nil, false
			}
			return dets[p].TrustedQuorum(), true
		}, msEq)
		h.run()
		res, err := fd.CheckSigma(h.truth, pr)
		status := "✓"
		if err != nil {
			status = "✗ " + err.Error()
		}
		return []string{
			itoaI(n), "1", status, itoa(res.StabilizationTime),
			itoaI(h.rec.Stats().ByTag["LABELS"]), itoaI(h.rec.Stats().ByTag["ALIVE"]),
		}
	})
	return t, err
}

func msEq(a, b *multiset.Multiset[ident.ID]) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Equal(b)
}

// E5RelationMatrix executes every Figure-5 arrow and reports the verified
// matrix.
func E5RelationMatrix() (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  "Machine-checked failure detector relation matrix",
		Paper:  "Figure 5; Theorems 1–4, Observation 1, Corollaries 1–2",
		Header: []string{"from", "to", "paper source", "model", "verified", "stabilization (vt)"},
		Notes:  []string{"Each arrow is an executable reduction; \"verified\" means the emulated detector passed every axiom of the target class on the recorded execution (4 seeds; worst stabilization shown)."},
	}
	err := tableRows(&t, reduce.All(), func(_ int, rel reduce.Relation) []string {
		status := "✓"
		var worst sim.Time
		for seed := int64(1); seed <= 4; seed++ {
			res, err := rel.Run(seed)
			if err != nil {
				status = "✗ " + err.Error()
				break
			}
			if res.StabilizationTime > worst {
				worst = res.StabilizationTime
			}
		}
		return []string{rel.From, rel.To, rel.Source, rel.Model, status, itoa(worst)}
	})
	return t, err
}

// E13APReductions measures Lemmas 2–3: AP lifted to ◇HP̄ and HΣ in
// anonymous systems, across crash loads.
func E13APReductions() (Table, error) {
	t := Table{
		ID:     "E13",
		Title:  "AP → ◇HP̄ and AP → HΣ in anonymous systems",
		Paper:  "Lemmas 2–3, Theorem 4",
		Header: []string{"n", "crashes", "◇HP̄ verified", "◇HP̄ stab (vt)", "HΣ verified", "HΣ stab (vt)"},
		Notes:  []string{"Both transformations are communication-free; stabilization is inherited from AP tightening to |Correct| after the last crash."},
	}
	err := tableRows(&t, []map[sim.PID]sim.Time{
		nil,
		{1: 40},
		{0: 30, 2: 60, 4: 90},
	}, func(_ int, crashes map[sim.PID]sim.Time) []string {
		n := 6
		ids := ident.AnonymousN(n)

		// ◇HP̄ via Lemma 2.
		h1 := newRedHarness(ids, crashes, 31)
		ohpDets := make([]fd.DiamondHPbar, n)
		for i := 0; i < n; i++ {
			src := oracle.NewAP(h1.world, 0)
			xf := reduce.NewAPToDiamondHPbar(src, 0)
			ohpDets[i] = xf
			h1.eng.AddProcess(sim.NewNode().Add("ap", src).Add("lemma2", xf))
		}
		pr := fd.NewProbe(h1.eng, n, func(p sim.PID) (*multiset.Multiset[ident.ID], bool) {
			if h1.eng.Crashed(p) {
				return nil, false
			}
			return ohpDets[p].Trusted(), true
		}, msEq)
		h1.run()
		res1, err1 := fd.CheckDiamondHPbar(h1.truth, pr)
		s1 := "✓"
		if err1 != nil {
			s1 = "✗ " + err1.Error()
		}

		// HΣ via Lemma 3.
		h2 := newRedHarness(ids, crashes, 32)
		hsDets := make([]fd.HSigma, n)
		for i := 0; i < n; i++ {
			src := oracle.NewAP(h2.world, 0)
			xf := reduce.NewAPToHSigma(src, 0)
			hsDets[i] = xf
			h2.eng.AddProcess(sim.NewNode().Add("ap", src).Add("lemma3", xf))
		}
		quora, labels := h2.hsigmaProbes(hsDets)
		h2.run()
		res2, err2 := fd.CheckHSigma(h2.truth, quora, labels)
		s2 := "✓"
		if err2 != nil {
			s2 = "✗ " + err2.Error()
		}

		return []string{
			itoaI(n), itoaI(len(crashes)), s1, itoa(res1.StabilizationTime), s2, itoa(res2.StabilizationTime),
		}
	})
	return t, err
}
