package experiments

import (
	"fmt"

	hds "repro"
	"repro/internal/ident"
	"repro/internal/sim"
)

// E18ChurnSweep opens the crash-recovery workload family: churners cycle
// down and up, and the stack must re-converge to the eventually-up
// processes. Small systems run the full Figure 6 detector and verify the
// churn-restated ◇HP̄/HΩ class properties; large systems (up to n = 1000)
// run the heartbeat workload, which verifies the engine's incremental
// Correct/EventuallyUp bookkeeping against the schedule-derived ground
// truth at a scale the detector's n² polling cannot reach.
func E18ChurnSweep() (Table, error) {
	t := Table{
		ID:     "E18",
		Title:  "Crash-recovery churn sweep (◇HP̄ re-convergence, large-n engine truth)",
		Paper:  "§2 model extension: crash-recovery beyond the paper's crash-stop patterns",
		Header: []string{"workload", "n", "ℓ", "churn", "eventually-up", "recoveries", "events", "re-stab (vt)", "stop"},
		Notes: []string{
			"Shape to observe: ◇HP̄ re-stabilizes shortly after the fault pattern's last change (crash or recovery), and the target is I(EventuallyUp) — recovered churners re-enter the trusted multiset, which the strict crash-stop reading of Correct would forbid. The heartbeat rows scale the same churn engine to n=1000: every row cross-checks the engine's incremental Correct/EventuallyUp sets against the schedule-derived ground truth.",
		},
	}
	type cfg struct {
		workload string
		n, l     int
		churn    sim.ChurnSpec
		horizon  hds.Time
		seed     int64
	}
	cfgs := []cfg{
		{"fig6-ohp", 12, 4, sim.ChurnSpec{Fraction: 0.25, Cycles: 2, Start: 30, Down: 40, Up: 60, Stagger: 7}, 4000, 1},
		{"fig6-ohp", 30, 6, sim.ChurnSpec{Fraction: 0.2, Cycles: 2, Start: 30, Down: 40, Up: 60, Stagger: 7}, 4000, 2},
		{"fig6-ohp", 50, 10, sim.ChurnSpec{Fraction: 0.2, Cycles: 1, Start: 30, Down: 50, Stagger: 5}, 3000, 3},
		{"heartbeat", 50, 10, sim.ChurnSpec{Fraction: 0.3, Cycles: 2, Start: 10, Down: 20, Up: 25}, 150, 4},
		{"heartbeat", 200, 20, sim.ChurnSpec{Fraction: 0.2, Cycles: 2, Start: 10, Down: 20, Up: 25, FinalDown: true}, 120, 5},
		{"heartbeat", 1000, 50, sim.ChurnSpec{Fraction: 0.2, Cycles: 1, Start: 5, Down: 12}, 40, 6},
	}
	err := tableRows(&t, cfgs, func(_ int, c cfg) []string {
		ids := ident.Balanced(c.n, c.l)
		base := []string{c.workload, itoaI(c.n), itoaI(c.l), c.churn.String()}
		switch c.workload {
		case "fig6-ohp":
			res, err := hds.RunChurnOHP(hds.ChurnOHPExperiment{
				IDs: ids, Churn: c.churn, Seed: c.seed, Horizon: c.horizon,
			})
			if err != nil {
				return append(base, "✗ "+err.Error(), "-", "-", "-", "-")
			}
			return append(base,
				fmt.Sprintf("%d/%d", res.EventuallyUp, c.n), itoaI(res.Recoveries),
				itoaI(res.Stats.Delivered+res.Stats.Dropped),
				fmt.Sprintf("%d (last change %d)", res.TrustedRestab, res.LastChange),
				res.Stopped.String())
		default:
			res, err := hds.RunHeartbeatChurn(hds.HeartbeatExperiment{
				IDs: ids, Churn: c.churn, Period: 15, Seed: c.seed, Horizon: c.horizon,
				MaxEvents: 20_000_000,
			})
			if err != nil {
				return append(base, "✗ "+err.Error(), "-", "-", "-", "-")
			}
			return append(base,
				fmt.Sprintf("%d/%d", res.EventuallyUp, c.n), itoaI(res.Recoveries),
				itoaI(res.Processed), "-", res.Stopped.String())
		}
	})
	return t, err
}

// E20ChurnConsensus extends the crash-recovery workload family from the
// detector layer (E18) to end-to-end consensus: Figures 8 and 9 run with
// the rejoin protocol live — churners crash mid-protocol, recover, resync
// their round through the (REJOIN, r) exchange, and must still decide.
// Every row is checker-verified under the crash-recovery restatement
// (Termination over the eventually-up set, decision stability across
// outages, relayed rounds matching a real deciding round) and cross-checks
// the engine's fault bookkeeping against the schedule-derived truth.
func E20ChurnConsensus() (Table, error) {
	t := Table{
		ID:     "E20",
		Title:  "Consensus under crash-recovery churn (Fig. 8/9 with the rejoin protocol)",
		Paper:  "§5 consensus algorithms beyond the paper's crash-stop fault model",
		Header: []string{"workload", "n", "ℓ", "t", "churn", "deciders", "rounds", "decided (vt)", "after churn (vt)", "recoveries", "stop"},
		Notes: []string{
			"Shape to observe: every eventually-up process decides — recovered churners rejoin through the round-resync exchange or adopt the decision via the re-armed DECIDE relay — and the post-churn decision latency (`after churn`) stays small once the detector layer re-converges. Final-down rows shrink the deciding population to the eventually-up set; the `fig8-mp` row runs the full Figure 6 stack (itself recovery-capable) underneath the consensus.",
		},
	}
	type cfg struct {
		workload string
		n, l, t  int
		churn    sim.ChurnSpec
		net      sim.Model
		seed     int64
	}
	cfgs := []cfg{
		{"fig8-oracle", 5, 2, 2, sim.ChurnSpec{Fraction: 0.2, Cycles: 1, Start: 2, Down: 60}, hds.Async{MaxDelay: 8}, 1},
		{"fig8-oracle", 7, 3, 3, sim.ChurnSpec{Fraction: 0.3, Cycles: 2, Start: 2, Down: 30, Up: 40, Stagger: 7}, hds.Async{MaxDelay: 8}, 2},
		{"fig8-mp", 5, 2, 2, sim.ChurnSpec{Fraction: 0.3, Cycles: 1, Start: 3, Down: 50, Stagger: 5}, hds.PartialSync{Delta: 3}, 3},
		{"fig9", 6, 3, 0, sim.ChurnSpec{Fraction: 0.34, Cycles: 1, Start: 2, Down: 60, Stagger: 7}, hds.Async{MaxDelay: 8}, 4},
		{"fig9", 6, 2, 0, sim.ChurnSpec{Fraction: 0.34, Cycles: 2, Start: 2, Down: 30, Up: 40, FinalDown: true}, hds.Async{MaxDelay: 8}, 5},
		{"fig9-anon", 5, 1, 0, sim.ChurnSpec{Fraction: 0.2, Cycles: 1, Start: 2, Down: 50}, hds.Async{MaxDelay: 8}, 6},
	}
	err := tableRows(&t, cfgs, func(_ int, c cfg) []string {
		ids := ident.Balanced(c.n, c.l)
		base := []string{c.workload, itoaI(c.n), itoaI(c.l), itoaI(c.t), c.churn.String()}
		var res hds.ChurnConsensusResult
		var err error
		switch c.workload {
		case "fig9", "fig9-anon":
			res, err = hds.RunChurnFig9(hds.ChurnFig9Experiment{
				IDs: ids, Churn: c.churn, Net: c.net,
				AnonymousBaseline: c.workload == "fig9-anon", Seed: c.seed,
			})
		default:
			det := hds.OracleDetectors
			if c.workload == "fig8-mp" {
				det = hds.MessagePassingDetectors
			}
			res, err = hds.RunChurnFig8(hds.ChurnFig8Experiment{
				IDs: ids, T: c.t, Churn: c.churn, Net: c.net, Detectors: det, Seed: c.seed,
			})
		}
		if err != nil {
			return append(base, "✗ "+err.Error(), "-", "-", "-", "-", "-")
		}
		return append(base,
			fmt.Sprintf("%d/%d up", res.Report.Deciders, res.EventuallyUp),
			itoaI(res.Report.MaxRound), itoa(res.Report.LastDecision),
			itoa(res.DecideAfterChurn), itoaI(res.Recoveries),
			res.Stopped.String())
	})
	return t, err
}

// E21PopulationScaling sweeps the population into the tens of thousands —
// the scale the lazy fan-out + streaming-verification pipeline exists for.
// Every row runs the heartbeat workload under churn with a fixed beater
// pool (event volume Θ(beaters·n), so n is the stressed dimension: every
// broadcast still fans out to all n live recipients), verifies the
// engine's incremental Correct/EventuallyUp bookkeeping against the
// schedule-derived ground truth, the per-process delivery counters
// against the recorder's Delivered total, and delivery liveness through a
// streaming probe. The max-queue column is the lazy fan-out witness: the
// event-queue high-water mark stays proportional to live broadcasts,
// timers, and churn entries — never to the n² message copies in flight.
func E21PopulationScaling() (Table, error) {
	t := Table{
		ID:     "E21",
		Title:  "Population scaling: lazy fan-out + streaming verification (n to 50,000)",
		Paper:  "§1 population-scale premise: detector properties are about populations, not n ≤ 1000",
		Header: []string{"n", "ℓ", "beaters", "churn", "eventually-up", "recoveries", "delivered", "max queue", "stop"},
		Notes: []string{
			"Shape to observe: delivered messages grow linearly in n (fixed beater pool × n recipients) while the queue high-water mark stays in the thousands — bounded by live broadcasts, timers, and the churn schedule, independent of the n² copies the eager path would enqueue. Every row is verified: engine fault bookkeeping against schedule-derived truth, heard-sum against the recorder's delivery count, and per-process delivery liveness via a streaming probe with O(1) state per process.",
		},
	}
	type cfg struct {
		n, l, beaters int
		churn         sim.ChurnSpec
		horizon       hds.Time
		seed          int64
	}
	cfgs := []cfg{
		{1000, 50, 0 /* all beat: the old ceiling, now dense baseline */, sim.ChurnSpec{Fraction: 0.2, Cycles: 1, Start: 5, Down: 12}, 40, 1},
		{10_000, 100, 100, sim.ChurnSpec{Fraction: 0.1, Cycles: 1, Start: 5, Down: 12}, 45, 2},
		{50_000, 200, 100, sim.ChurnSpec{Fraction: 0.05, Cycles: 1, Start: 5, Down: 12}, 45, 3},
	}
	err := tableRows(&t, cfgs, func(_ int, c cfg) []string {
		ids := ident.Balanced(c.n, c.l)
		beaters := c.beaters
		if beaters == 0 {
			beaters = c.n
		}
		base := []string{itoaI(c.n), itoaI(c.l), itoaI(beaters), c.churn.String()}
		res, err := hds.RunHeartbeatChurn(hds.HeartbeatExperiment{
			IDs: ids, Churn: c.churn, Period: 15, Seed: c.seed, Horizon: c.horizon,
			Beaters: c.beaters, MaxEvents: 100_000_000, StreamVerify: true,
		})
		if err != nil {
			return append(base, "✗ "+err.Error(), "-", "-", "-", "-")
		}
		return append(base,
			fmt.Sprintf("%d/%d", res.EventuallyUp, c.n), itoaI(res.Recoveries),
			itoaI(res.Stats.Delivered), itoaI(res.MaxQueue), res.Stopped.String())
	})
	return t, err
}

// E19HeavyTailDelays ablates the delay distribution under the Figure 6
// detector: the uniform-delay HPS baseline against truncated Pareto and
// log-normal tails, time-varying partial synchrony, and per-link
// asymmetric skew. Every network here is eventually timely (the heavy
// tails are capped), so the class properties must still hold — what the
// tail buys is a harder adaptation problem and a later stabilization.
func E19HeavyTailDelays() (Table, error) {
	t := Table{
		ID:     "E19",
		Title:  "Delay-model ablation: heavy tails, time-varying synchrony, asymmetric links",
		Paper:  "Theorem 5 beyond uniform delays (Figure 6 under adversarial timing)",
		Header: []string{"network", "◇HP̄ stab (vt)", "HΩ stab (vt)", "broadcasts (POLL+REPLY)", "max adapted timeout"},
		Notes: []string{
			"Shape to observe: the adaptive timeout (Lines 33–34) tracks the tail, not the mean — heavier tails (smaller α, larger σ) push the settled timeout toward the truncation cap and delay stabilization, while the uniform baseline settles just above δ. Per-link skew adds the asymmetry the paper's link-symmetric model never exercises; correctness is unaffected.",
		},
	}
	nets := []sim.Model{
		sim.PartialSync{GST: 50, Delta: 3},
		sim.Pareto{Scale: 2, Alpha: 2.5, Cap: 15},
		sim.Pareto{Scale: 2, Alpha: 1.5, Cap: 15},
		sim.Pareto{Scale: 2, Alpha: 1.1, Cap: 15},
		sim.LogNormal{Median: 3, Sigma: 0.7, Cap: 15},
		sim.LogNormal{Median: 3, Sigma: 1.5, Cap: 15},
		sim.Alternating{Period: 40, GoodDelta: 3, BadMax: 30, BadLoss: 0.3, CalmAfter: 200},
		sim.AsymmetricLinks{Base: sim.Async{MaxDelay: 6}, MaxSkew: 10},
	}
	err := tableRows(&t, nets, func(i int, net sim.Model) []string {
		res, err := hds.RunOHP(hds.OHPExperiment{
			IDs:     ident.Balanced(6, 3),
			Crashes: map[hds.PID]hds.Time{1: 30},
			Net:     net,
			Seed:    int64(90 + i),
			Horizon: 12000,
		})
		if err != nil {
			return []string{net.String(), "✗ " + err.Error(), "-", "-", "-"}
		}
		var maxTO hds.Time
		for _, to := range res.FinalTimeouts {
			if to > maxTO {
				maxTO = to
			}
		}
		traffic := res.Stats.ByTag["POLLING"] + res.Stats.ByTag["P_REPLY"]
		return []string{
			net.String(),
			itoa(res.TrustedStabilization), itoa(res.LeaderStabilization),
			itoaI(traffic), itoa(maxTO),
		}
	})
	return t, err
}
