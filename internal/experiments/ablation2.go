package experiments

import (
	hds "repro"
	"repro/internal/fd"
	"repro/internal/fd/ohp"
	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
	"repro/internal/trace"
)

// E16TimeoutAdaptation ablates Figure 6's timeout-adaptation rule (Lines
// 33–34): with a fixed timeout below the (unknown) network bound, rounds
// close before replies arrive and h_trusted flaps forever; the adaptive
// rule grows the timeout exactly until outdated replies stop. This is the
// mechanism behind Lemma 5.
func E16TimeoutAdaptation() (Table, error) {
	t := Table{
		ID:     "E16",
		Title:  "Ablation: Figure 6 without timeout adaptation",
		Paper:  "Figure 6 Lines 33–34, Lemma 5; DESIGN.md §8",
		Header: []string{"variant", "δ", "◇HP̄ holds", "final |h_trusted| (want 4)", "output changes in last 25%", "final timeout"},
		Notes: []string{
			"A fixed timeout of 1 under δ=6 closes every round before any reply's round-trip completes: h_trusted collapses to the empty multiset and the class check fails (as it must — the ablated algorithm is not a ◇HP̄ implementation). A lucky large constant (20) works for THIS δ, but that is exactly the unknown-bound guess partial synchrony forbids; the adaptive rule needs no guess and settles just above the real round-trip for whatever δ the run has.",
		},
	}
	type variant struct {
		name  string
		make  func() *ohp.Detector
		delta sim.Time
	}
	variants := []variant{
		{"fixed timeout 1", func() *ohp.Detector { return ohp.NewFixedTimeout(1) }, 6},
		{"fixed timeout 20", func() *ohp.Detector { return ohp.NewFixedTimeout(20) }, 6},
		{"adaptive (paper)", ohp.New, 6},
		{"adaptive (paper)", ohp.New, 12},
	}
	const horizon sim.Time = 4000
	err := tableRows(&t, variants, func(_ int, v variant) []string {
		ids := ident.Balanced(4, 2)
		n := ids.N()
		eng := sim.New(sim.Config{IDs: ids, Net: sim.PartialSync{GST: 40, Delta: v.delta, PreLoss: 0.5}, Seed: 5})
		dets := make([]*ohp.Detector, n)
		for i := range dets {
			dets[i] = v.make()
			eng.AddProcess(dets[i])
		}
		truth := fd.NewGroundTruth(ids, nil)
		probe := fd.NewProbe(eng, n, func(p sim.PID) (*multiset.Multiset[ident.ID], bool) {
			return dets[p].Trusted(), true
		}, func(a, b *multiset.Multiset[ident.ID]) bool { return a.Equal(b) })
		eng.Run(horizon)

		_, err := fd.CheckDiamondHPbar(truth, probe)
		holds := "yes"
		if err != nil {
			holds = "no (stuck/flapping, as predicted)"
		}
		lateChanges := 0
		cutoff := horizon * 3 / 4
		for p := 0; p < n; p++ {
			for _, s := range probe.History(sim.PID(p)) {
				if s.Time >= cutoff {
					lateChanges++
				}
			}
		}
		var maxTO sim.Time
		for _, d := range dets {
			if d.Timeout() > maxTO {
				maxTO = d.Timeout()
			}
		}
		finalTrusted := dets[0].Trusted().Len()
		return []string{v.name, itoa(v.delta), holds, itoaI(finalTrusted), itoaI(lateChanges), itoa(maxTO)}
	})
	return t, err
}

// E17PhaseMessageBreakdown decomposes consensus traffic by message type
// for both algorithms on a common workload: where the homonymy surcharge
// (COORD) and the quorum machinery (PH1/PH2 sub-rounds) actually spend
// messages.
func E17PhaseMessageBreakdown() (Table, error) {
	t := Table{
		ID:     "E17",
		Title:  "Message-cost breakdown by phase/type",
		Paper:  "Figures 8 and 9 (cost anatomy)",
		Header: []string{"algorithm", "crashes", "COORD", "PH0", "PH1", "PH2", "DECIDE", "total"},
		Notes: []string{
			"Common workload: n=6, ℓ=3, stable detectors. Fig. 9's quorum phases re-broadcast per sub-round, so its PH1/PH2 counts grow when detector labels change mid-round; Fig. 8 instead pays fixed per-round quorum waits. DECIDE is the Task-T2 reliable broadcast relay (one per process that learns the decision).",
		},
	}
	type scenario struct {
		algo    string
		crashes map[sim.PID]sim.Time
	}
	scenarios := []scenario{
		{"fig8", nil},
		{"fig8", map[sim.PID]sim.Time{1: 1, 4: 2}},
		{"fig9", nil},
		{"fig9", map[sim.PID]sim.Time{1: 1, 4: 2}},
		{"fig9 (4 crashes)", map[sim.PID]sim.Time{0: 2, 1: 5, 2: 8, 3: 11}},
	}
	err := tableRows(&t, scenarios, func(i int, sc scenario) []string {
		stats, err := runBreakdown(sc.algo, sc.crashes, int64(100+i))
		if err != nil {
			return []string{sc.algo, itoaI(len(sc.crashes)), "✗ " + err.Error(), "-", "-", "-", "-", "-"}
		}
		return []string{
			sc.algo, itoaI(len(sc.crashes)),
			itoaI(stats.ByTag["COORD"]), itoaI(stats.ByTag["PH0"]),
			itoaI(stats.ByTag["PH1"]), itoaI(stats.ByTag["PH2"]),
			itoaI(stats.ByTag["DECIDE"]), itoaI(stats.Broadcasts),
		}
	})
	return t, err
}

func runBreakdown(algo string, crashes map[sim.PID]sim.Time, seed int64) (trace.Stats, error) {
	ids := ident.Balanced(6, 3)
	if algo == "fig8" {
		_, stats, err := hds.RunFig8(hds.Fig8Experiment{
			IDs: ids, T: 2, Crashes: crashes, Stabilize: 80, Seed: seed,
		})
		return stats, err
	}
	_, stats, err := hds.RunFig9(hds.Fig9Experiment{
		IDs: ids, Crashes: crashes, Stabilize: 80, Seed: seed,
	})
	return stats, err
}
