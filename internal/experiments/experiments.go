// Package experiments regenerates, as printable tables, the evaluation of
// every figure and theorem of the paper (experiment index E1–E13 in
// DESIGN.md). The paper is a theory paper — its figures are algorithms —
// so each experiment demonstrates the proved behaviour quantitatively:
// stabilization times, message costs, decision rounds, and how they scale
// with n, the homonymy degree ℓ, GST, δ, and the crash pattern.
//
// All runs are seeded and deterministic: `go run ./cmd/experiments`
// reproduces EXPERIMENTS.md verbatim. Scenarios fan out across all cores
// through the internal/sweep runner; by its determinism contract the
// tables are byte-identical for every worker count (including -workers 1).
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/sweep"
)

// Table is one experiment's output.
type Table struct {
	ID     string // experiment id, e.g. "E6"
	Title  string
	Paper  string // the paper artifact reproduced (figure/theorem)
	Header []string
	Rows   [][]string
	Notes  []string
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Reproduces: %s.*\n\n", t.Paper)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}

// Builders lists every experiment's table builder in index order.
func Builders() []func() Table {
	return []func() Table{
		E1SigmaToHSigmaKnown,
		E2SigmaToHSigmaUnknown,
		E3AliveList,
		E4HSigmaToSigma,
		E5RelationMatrix,
		E6DiamondHPbar,
		E7HOmegaExtraction,
		E8HSigmaSync,
		E9Fig8Consensus,
		E10Fig9Consensus,
		E11HomonymyExtremes,
		E12EndToEndHPS,
		E13APReductions,
		E14CoordinationAblation,
		E15LeaderGroupSize,
		E16TimeoutAdaptation,
		E17PhaseMessageBreakdown,
		E18ChurnSweep,
		E19HeavyTailDelays,
	}
}

// All runs every experiment and returns the tables in index order. The
// builders execute on the sweep worker pool (each builder additionally
// fans its scenarios out); by the sweep determinism contract the tables
// are identical for every worker count.
func All() []Table {
	return sweep.Map(Builders(), func(_ int, build func() Table) Table {
		return build()
	})
}

func itoa(v int64) string { return fmt.Sprintf("%d", v) }
func itoaI(v int) string  { return fmt.Sprintf("%d", v) }
