package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/campaign"
	"repro/internal/sweep"
)

// Table is one experiment's output.
type Table struct {
	ID     string // experiment id, e.g. "E6"
	Title  string
	Paper  string // the paper artifact reproduced (figure/theorem)
	Header []string
	Rows   [][]string
	Notes  []string

	// Digest is the campaign digest over the table's scenario rows: equal
	// digests mean byte-identical rows, whatever the shard/worker/process
	// layout that produced them. Empty when Partial.
	Digest string
	// Partial marks a shard-only run (campaign Config.Shard >= 0): the
	// selected shard's checkpoint was written, Rows is nil, and the full
	// table exists only after a merge (e.g. a -resume run).
	Partial bool
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Reproduces: %s.*\n\n", t.Paper)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}

// campaignCfg is the process-wide campaign configuration every table's
// scenario sweep runs under. The zero value is the single-shard in-memory
// mode (no files). Guarded for race-clean reads from concurrent builders.
var (
	campaignMu  sync.RWMutex
	campaignCfg campaign.Config
)

// SetCampaign installs the campaign configuration (sharding, checkpoint
// directory, resume) used by every subsequent table build. Call it before
// All/Tables, not concurrently with them.
func SetCampaign(cfg campaign.Config) {
	campaignMu.Lock()
	campaignCfg = cfg
	campaignMu.Unlock()
}

func currentCampaign() campaign.Config {
	campaignMu.RLock()
	defer campaignMu.RUnlock()
	return campaignCfg
}

// tableRows runs one table's scenario list through the campaign layer:
// scenario i is f(i, inputs[i]), the table id is the campaign id. The
// returned rows are nil (and partial is true) when the configuration
// selected a single shard of a multi-shard campaign.
//
// Checkpoint caveat: the campaign id is the bare table id, so checkpoints
// verify against the table id and scenario count only — the scenario
// parameters themselves live in this package's source and are not
// fingerprinted. A checkpoint directory is therefore only valid for the
// code revision that wrote it; discard it (or skip -resume) after editing
// any table's scenario list.
func tableRows[I any](t *Table, inputs []I, f func(i int, in I) []string) error {
	res, err := campaign.Run(currentCampaign(), t.ID, len(inputs), func(i int) []string {
		return f(i, inputs[i])
	})
	if err != nil {
		return fmt.Errorf("%s: %w", t.ID, err)
	}
	t.Rows, t.Digest, t.Partial = res.Rows, res.Digest, !res.Complete
	return nil
}

// Builder pairs an experiment id with its table builder. The id is
// declared here, not derived from list position, so selection and the
// campaign layer (whose checkpoints are keyed by table id) stay correct
// if builders are ever inserted or reordered.
type Builder struct {
	ID    string
	Build func() (Table, error)
}

// Registry lists every experiment in index order.
func Registry() []Builder {
	return []Builder{
		{"E1", E1SigmaToHSigmaKnown},
		{"E2", E2SigmaToHSigmaUnknown},
		{"E3", E3AliveList},
		{"E4", E4HSigmaToSigma},
		{"E5", E5RelationMatrix},
		{"E6", E6DiamondHPbar},
		{"E7", E7HOmegaExtraction},
		{"E8", E8HSigmaSync},
		{"E9", E9Fig8Consensus},
		{"E10", E10Fig9Consensus},
		{"E11", E11HomonymyExtremes},
		{"E12", E12EndToEndHPS},
		{"E13", E13APReductions},
		{"E14", E14CoordinationAblation},
		{"E15", E15LeaderGroupSize},
		{"E16", E16TimeoutAdaptation},
		{"E17", E17PhaseMessageBreakdown},
		{"E18", E18ChurnSweep},
		{"E19", E19HeavyTailDelays},
		{"E20", E20ChurnConsensus},
		{"E21", E21PopulationScaling},
	}
}

// Builders lists every experiment's table builder in index order.
func Builders() []func() (Table, error) {
	reg := Registry()
	out := make([]func() (Table, error), len(reg))
	for i, b := range reg {
		out[i] = b.Build
	}
	return out
}

// All runs every experiment and returns the tables in index order.
func All() ([]Table, error) {
	return Tables(nil)
}

// Tables runs the experiments whose ids appear in only (nil or empty =
// all) and returns their tables in index order. A requested id that
// matches no experiment is an error — a typo must not silently drop a
// table. The builders execute on the sweep worker pool (each builder
// additionally runs its scenarios through the campaign layer); the first
// error by experiment index is returned, so failures are as
// deterministic as the tables.
func Tables(only []string) ([]Table, error) {
	want := make(map[string]bool, len(only))
	for _, id := range only {
		want[id] = true
	}
	selectAll := len(want) == 0
	var selected []Builder
	for _, b := range Registry() {
		if selectAll || want[b.ID] {
			selected = append(selected, b)
			delete(want, b.ID)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for id := range want {
			unknown = append(unknown, id)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown experiment id(s) %s (have E1–E%d)", strings.Join(unknown, ", "), len(Registry()))
	}
	return sweep.MapErr(sweep.Options{}, selected, func(_ int, b Builder) (Table, error) {
		table, err := b.Build()
		if err == nil && table.ID != b.ID {
			err = fmt.Errorf("registry id %s built table %s (registry out of sync)", b.ID, table.ID)
		}
		return table, err
	})
}

func itoa(v int64) string { return fmt.Sprintf("%d", v) }
func itoaI(v int) string  { return fmt.Sprintf("%d", v) }
