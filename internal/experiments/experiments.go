// Package experiments regenerates, as printable tables, the evaluation of
// every figure and theorem of the paper (experiment index E1–E13 in
// DESIGN.md). The paper is a theory paper — its figures are algorithms —
// so each experiment demonstrates the proved behaviour quantitatively:
// stabilization times, message costs, decision rounds, and how they scale
// with n, the homonymy degree ℓ, GST, δ, and the crash pattern.
//
// All runs are seeded and deterministic: `go run ./cmd/experiments`
// reproduces EXPERIMENTS.md verbatim.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID     string // experiment id, e.g. "E6"
	Title  string
	Paper  string // the paper artifact reproduced (figure/theorem)
	Header []string
	Rows   [][]string
	Notes  []string
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Reproduces: %s.*\n\n", t.Paper)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}

// All runs every experiment and returns the tables in index order.
func All() []Table {
	return []Table{
		E1SigmaToHSigmaKnown(),
		E2SigmaToHSigmaUnknown(),
		E3AliveList(),
		E4HSigmaToSigma(),
		E5RelationMatrix(),
		E6DiamondHPbar(),
		E7HOmegaExtraction(),
		E8HSigmaSync(),
		E9Fig8Consensus(),
		E10Fig9Consensus(),
		E11HomonymyExtremes(),
		E12EndToEndHPS(),
		E13APReductions(),
		E14CoordinationAblation(),
		E15LeaderGroupSize(),
		E16TimeoutAdaptation(),
		E17PhaseMessageBreakdown(),
	}
}

func itoa(v int64) string { return fmt.Sprintf("%d", v) }
func itoaI(v int) string  { return fmt.Sprintf("%d", v) }
