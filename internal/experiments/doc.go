// Package experiments regenerates, as printable tables, the evaluation of
// every figure and theorem of the paper (experiment index E1–E13 in
// DESIGN.md), the ablations E14–E17, and the scenario-space sweeps E18
// (crash-recovery churn up to n=1000), E19 (heavy-tail delay ablation),
// E20 (consensus under churn via the Fig. 8/9 rejoin protocol), and E21
// (population scaling to n=50,000 on the lazy fan-out + streaming
// verification pipeline). The
// paper is a theory paper — its figures are algorithms —
// so each experiment demonstrates the proved behaviour quantitatively:
// stabilization times, message costs, decision rounds, and how they scale
// with n, the homonymy degree ℓ, GST, δ, and the crash pattern.
//
// All runs are seeded and deterministic: `go run ./cmd/experiments`
// reproduces EXPERIMENTS.md verbatim. Every table's scenario list runs
// through the internal/campaign layer (table id = campaign id), which in
// turn fans scenarios across cores through internal/sweep. In the default
// configuration — one shard, no checkpoint directory — that is a plain
// in-memory sweep; SetCampaign switches the whole suite to sharded,
// checkpointed, resumable execution. By the campaign determinism contract
// the tables are byte-identical for every worker count, shard count, and
// process count (including -workers 1 and single-shard runs).
package experiments
