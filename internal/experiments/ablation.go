package experiments

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/fd/oracle"
	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// E14CoordinationAblation removes the Leaders' Coordination Phase from
// Fig. 8 — i.e. uses the anonymous-system protocol of [4] with HΩ naively —
// and measures what breaks. DESIGN.md §8 calls this ablation out: safety
// must survive (it rests on the majority quorums), termination must not
// (homonymous co-leaders keep pushing different estimates, Lemma 7's
// convergence argument is gone).
func E14CoordinationAblation() (Table, error) {
	t := Table{
		ID:     "E14",
		Title:  "Ablation: Fig. 8 without the Leaders' Coordination Phase",
		Paper:  "§5.2 (the phase's purpose); DESIGN.md §8 ablation",
		Header: []string{"ℓ", "variant", "runs", "decided", "safety violations", "max rounds seen"},
		Notes: []string{
			"With unique identifiers (ℓ=n, a single leader) the ablated protocol is just [4] and behaves identically. With homonymous leaders (ℓ<n) the co-leaders push different Phase-0 estimates, Phase 1 finds no majority, and rounds repeat until random delivery order happens to break the symmetry: measured round counts inflate by an order of magnitude in the worst seed, and termination is no longer *guaranteed* (an adversarial scheduler can repeat the split state forever — Lemma 7's argument is gone). The checker confirms agreement/validity never break either way: the Leaders' Coordination Phase buys exactly termination.",
			"Runs are capped at 40 rounds; \"decided\" counts runs where every correct process decided under the cap.",
		},
	}
	const (
		n        = 6
		tt       = 2
		runs     = 12
		roundCap = 40
	)
	type combo struct {
		l      int
		ablate bool
	}
	combos := []combo{{n, false}, {n, true}, {2, false}, {2, true}}
	seeds := make([]int64, runs)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	err := tableRows(&t, combos, func(_ int, c combo) []string {
		variant := "full (with COORD)"
		if c.ablate {
			variant = "ablated (no COORD)"
		}
		type outcome struct {
			ok     bool
			rounds int
			unsafe bool
		}
		outcomes := sweep.Map(seeds, func(_ int, seed int64) outcome {
			ok, rounds, unsafe := runAblated(n, c.l, tt, c.ablate, roundCap, seed)
			return outcome{ok, rounds, unsafe}
		})
		decided, safetyViolations, maxRounds := 0, 0, 0
		for _, o := range outcomes {
			if o.ok {
				decided++
			}
			if o.unsafe {
				safetyViolations++
			}
			if o.rounds > maxRounds {
				maxRounds = o.rounds
			}
		}
		return []string{
			itoaI(c.l), variant, itoaI(runs), itoaI(decided), itoaI(safetyViolations), itoaI(maxRounds),
		}
	})
	return t, err
}

// runAblated executes one (possibly ablated) Fig. 8 run with distinct
// proposals and a stable HΩ detector. It reports whether all correct
// processes decided under the round cap, the max round reached, and
// whether any *safety* property (validity/agreement/no-⊥) was violated.
func runAblated(n, l, tt int, ablate bool, roundCap int, seed int64) (allDecided bool, maxRound int, unsafe bool) {
	ids := ident.Balanced(n, l)
	eng := sim.New(sim.Config{IDs: ids, Net: sim.Async{MaxDelay: 8}, Seed: seed, KnownN: true})
	truth := fd.NewGroundTruth(ids, nil)
	world := oracle.NewWorld(truth, 0)
	proposals := make([]core.Value, n)
	insts := make([]*core.Fig8, n)
	for i := 0; i < n; i++ {
		proposals[i] = core.Value(fmt.Sprintf("v%d", i))
		det := oracle.NewHOmega(world, oracle.AdversaryNone)
		if ablate {
			insts[i] = core.NewFig8NoCoordination(det, tt, proposals[i])
		} else {
			insts[i] = core.NewFig8(det, tt, proposals[i])
		}
		insts[i].SetMaxRounds(roundCap)
		eng.AddProcess(sim.NewNode().Add("homega", det).Add("consensus", insts[i]))
	}
	eng.RunUntil(200_000, func() bool {
		for _, inst := range insts {
			if !inst.Decided().Decided {
				return false
			}
		}
		return true
	})

	outcomes := make([]core.Outcome, n)
	allDecided = true
	for i, inst := range insts {
		outcomes[i] = inst.Decided()
		if !outcomes[i].Decided {
			allDecided = false
		}
		if r := inst.Round(); r > maxRound {
			if r > roundCap {
				r = roundCap
			}
			maxRound = r
		}
	}
	// Safety-only check: ignore termination, verify every decision made.
	_, err := check.Consensus(truth, proposals, outcomes)
	if err != nil && allDecided {
		unsafe = true // with all decided, any failure is a safety failure
	}
	if err != nil && !allDecided {
		// Re-check safety alone over the deciders.
		unsafe = !safeDecisions(proposals, outcomes)
	}
	return allDecided, maxRound, unsafe
}

// safeDecisions verifies validity/agreement/no-⊥ over whoever decided.
func safeDecisions(proposals []core.Value, outcomes []core.Outcome) bool {
	proposed := make(map[core.Value]bool, len(proposals))
	for _, v := range proposals {
		proposed[v] = true
	}
	var have bool
	var val core.Value
	for _, o := range outcomes {
		if !o.Decided {
			continue
		}
		if o.Value == core.Bottom || !proposed[o.Value] {
			return false
		}
		if have && o.Value != val {
			return false
		}
		val, have = o.Value, true
	}
	return true
}

// E15LeaderGroupSize sweeps the size of the elected leader group: the
// Leaders' Coordination Phase waits for h_multiplicity COORD messages, so
// its latency and traffic grow with the group size c — the price the
// homonymous algorithm pays per round, measured directly.
func E15LeaderGroupSize() (Table, error) {
	t := Table{
		ID:     "E15",
		Title:  "Leader-group size vs. coordination cost (skewed homonymy)",
		Paper:  "§5.2 Leaders' Coordination Phase (cost model); DESIGN.md §8",
		Header: []string{"n", "leader group c", "rounds", "decided at (vt)", "COORD broadcasts", "total broadcasts"},
		Notes: []string{
			"Assignments put c processes on the leading identifier and give everyone else unique identifiers. Each round every process broadcasts COORD once (the paper's Line 9), so COORD traffic is n per round regardless of c; the c-dependence shows in the *latency* of the coordination wait (leaders block for all c co-leader messages) and in extra rounds when c is large relative to the quorum.",
		},
	}
	n := 7
	err := tableRows(&t, []int{1, 2, 3, 4, 5}, func(_ int, c int) []string {
		// "aaa" sorts before "solo…", so the heavy group leads.
		ids := make(ident.Assignment, n)
		for i := range ids {
			if i < c {
				ids[i] = "aaa"
			} else {
				ids[i] = ident.ID(fmt.Sprintf("solo%02d", i))
			}
		}
		rec := trace.NewRecorder()
		rec.KeepEvents = false
		eng := sim.New(sim.Config{IDs: ids, Net: sim.Async{MaxDelay: 8}, Seed: int64(90 + c), KnownN: true, Recorder: rec})
		truth := fd.NewGroundTruth(ids, nil)
		world := oracle.NewWorld(truth, 0)
		proposals := make([]core.Value, n)
		insts := make([]*core.Fig8, n)
		for i := 0; i < n; i++ {
			proposals[i] = core.Value(fmt.Sprintf("v%d", i))
			det := oracle.NewHOmega(world, oracle.AdversaryNone)
			insts[i] = core.NewFig8(det, 3, proposals[i])
			eng.AddProcess(sim.NewNode().Add("homega", det).Add("consensus", insts[i]))
		}
		eng.RunUntil(200_000, func() bool {
			for _, inst := range insts {
				if !inst.Decided().Decided {
					return false
				}
			}
			return true
		})
		outcomes := make([]core.Outcome, n)
		for i, inst := range insts {
			outcomes[i] = inst.Decided()
		}
		rep, err := check.Consensus(truth, proposals, outcomes)
		if err != nil {
			return []string{itoaI(n), itoaI(c), "✗ " + err.Error(), "-", "-", "-"}
		}
		return []string{
			itoaI(n), itoaI(c), itoaI(rep.MaxRound), itoa(rep.LastDecision),
			itoaI(rec.Stats().ByTag["COORD"]), itoaI(rec.Stats().Broadcasts),
		}
	})
	return t, err
}
