package experiments

import (
	hds "repro"
	"repro/internal/fd/oracle"
	"repro/internal/ident"
	"repro/internal/sim"
)

// E6DiamondHPbar sweeps the Figure 6 detector over n, homonymy degree ℓ,
// GST and δ in the partially synchronous system (with lossy pre-GST
// links), measuring stabilization and polling traffic.
func E6DiamondHPbar() (Table, error) {
	t := Table{
		ID:     "E6",
		Title:  "◇HP̄ in HPS (polling, adaptive timeouts)",
		Paper:  "Figure 6, Theorem 5",
		Header: []string{"n", "ℓ", "GST", "δ", "crashes", "◇HP̄ stab (vt)", "broadcasts (POLL+REPLY)", "max adapted timeout"},
		Notes: []string{
			"Shape to observe: stabilization lands after max(GST, last crash); the adaptive timeout settles above δ and grows with δ; traffic per unit time scales with n·ℓ (one reply per identifier, not per process).",
		},
	}
	type cfg struct {
		n, l       int
		gst, delta hds.Time
		crashes    map[hds.PID]hds.Time
		seed       int64
	}
	cfgs := []cfg{
		{4, 2, 50, 3, nil, 1},
		{6, 2, 50, 3, map[hds.PID]hds.Time{1: 30}, 2},
		{6, 3, 50, 3, map[hds.PID]hds.Time{1: 30}, 3},
		{6, 6, 50, 3, map[hds.PID]hds.Time{1: 30}, 4},
		{6, 1, 50, 3, map[hds.PID]hds.Time{1: 30}, 5},
		{6, 3, 150, 3, map[hds.PID]hds.Time{1: 30}, 6},
		{6, 3, 400, 3, map[hds.PID]hds.Time{1: 30}, 7},
		{6, 3, 50, 8, map[hds.PID]hds.Time{1: 30}, 8},
		{6, 3, 50, 16, map[hds.PID]hds.Time{1: 30}, 9},
		{9, 3, 50, 3, map[hds.PID]hds.Time{1: 30, 7: 60}, 10},
	}
	err := tableRows(&t, cfgs, func(_ int, c cfg) []string {
		res, err := hds.RunOHP(hds.OHPExperiment{
			IDs:     ident.Balanced(c.n, c.l),
			Crashes: c.crashes,
			GST:     c.gst,
			Delta:   c.delta,
			Seed:    c.seed,
			Horizon: 6000,
		})
		if err != nil {
			return []string{itoaI(c.n), itoaI(c.l), itoa(c.gst), itoa(c.delta),
				itoaI(len(c.crashes)), "✗ " + err.Error(), "-", "-"}
		}
		var maxTO hds.Time
		for _, to := range res.FinalTimeouts {
			if to > maxTO {
				maxTO = to
			}
		}
		traffic := res.Stats.ByTag["POLLING"] + res.Stats.ByTag["P_REPLY"]
		return []string{
			itoaI(c.n), itoaI(c.l), itoa(c.gst), itoa(c.delta), itoaI(len(c.crashes)),
			itoa(res.TrustedStabilization), itoaI(traffic), itoa(maxTO),
		}
	})
	return t, err
}

// E7HOmegaExtraction compares the HΩ output's stabilization with ◇HP̄'s
// on the same runs: the extraction is free and can stabilize earlier (the
// minimum identifier can settle before the full multiset does).
func E7HOmegaExtraction() (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  "HΩ extracted from ◇HP̄ (no extra communication)",
		Paper:  "Observation 1, Corollary 2",
		Header: []string{"n", "ℓ", "crashes", "◇HP̄ stab (vt)", "HΩ stab (vt)", "elected (id, mult)"},
		Notes:  []string{"The HΩ output is min(h_trusted) with its multiplicity; it never stabilizes later than h_trusted and needs no messages beyond Figure 6's."},
	}
	type cfg struct {
		n, l    int
		crashes map[hds.PID]hds.Time
	}
	cfgs := []cfg{
		{5, 2, nil},
		{5, 2, map[hds.PID]hds.Time{0: 40}},
		{6, 3, map[hds.PID]hds.Time{0: 40, 3: 80}},
		{8, 4, map[hds.PID]hds.Time{0: 40, 1: 60, 2: 80}},
	}
	err := tableRows(&t, cfgs, func(i int, c cfg) []string {
		res, err := hds.RunOHP(hds.OHPExperiment{
			IDs:     ident.Balanced(c.n, c.l),
			Crashes: c.crashes,
			GST:     50, Delta: 3,
			Seed:    int64(40 + i),
			Horizon: 6000,
		})
		if err != nil {
			return []string{itoaI(c.n), itoaI(c.l), itoaI(len(c.crashes)), "✗ " + err.Error(), "-", "-"}
		}
		return []string{
			itoaI(c.n), itoaI(c.l), itoaI(len(c.crashes)),
			itoa(res.TrustedStabilization), itoa(res.LeaderStabilization),
			res.Leader.String(),
		}
	})
	return t, err
}

// E8HSigmaSync measures Figure 7 in the synchronous system: the liveness
// quorum appears one step after the last crash, and mid-broadcast crashes
// multiply the distinct quora without ever breaking safety.
func E8HSigmaSync() (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "HΣ in HSS (synchronous steps)",
		Paper:  "Figure 7, Theorem 6",
		Header: []string{"n", "ℓ", "crash steps", "mid-broadcast?", "HΣ verified", "stab (step)", "final |h_quora| (max)"},
		Notes:  []string{"Stabilization is within one step of the last crash (Theorem 6's liveness argument); partial-broadcast crashes create divergent per-process snapshots — more quora — while safety holds across all of them."},
	}
	type cfg struct {
		n, l    int
		crashes map[hds.PID]hds.CrashStep
		partial string
	}
	cfgs := []cfg{
		{5, 2, nil, "-"},
		{6, 3, map[hds.PID]hds.CrashStep{1: {Step: 3, DeliverProb: 1}}, "no"},
		{6, 3, map[hds.PID]hds.CrashStep{1: {Step: 3, DeliverProb: 0.5}}, "yes"},
		{8, 2, map[hds.PID]hds.CrashStep{1: {Step: 2, DeliverProb: 0.4}, 5: {Step: 4, DeliverProb: 0.6}}, "yes"},
		{8, 8, map[hds.PID]hds.CrashStep{0: {Step: 2, DeliverProb: 0.4}, 7: {Step: 5, DeliverProb: 0.5}}, "yes"},
	}
	err := tableRows(&t, cfgs, func(i int, c cfg) []string {
		res, err := hds.RunHSigma(hds.HSigmaExperiment{
			IDs:        ident.Balanced(c.n, c.l),
			CrashSteps: c.crashes,
			Steps:      12,
			Seed:       int64(50 + i),
		})
		status := "✓"
		if err != nil {
			status = "✗ " + err.Error()
		}
		maxQ := 0
		for _, q := range res.QuoraPerProcess {
			if q > maxQ {
				maxQ = q
			}
		}
		return []string{
			itoaI(c.n), itoaI(c.l), itoaI(len(c.crashes)), c.partial, status,
			itoa(res.StabilizationStep), itoaI(maxQ),
		}
	})
	return t, err
}

// E9Fig8Consensus sweeps the Figure 8 consensus across homonymy degrees,
// crash loads and adversarial detector stabilization.
func E9Fig8Consensus() (Table, error) {
	t := Table{
		ID:     "E9",
		Title:  "Consensus in HAS[t<n/2, HΩ]",
		Paper:  "Figure 8, Theorem 7",
		Header: []string{"n", "ℓ", "t", "crashes", "FD stab (vt)", "adversary", "rounds", "decided at (vt)", "broadcasts"},
		Notes: []string{
			"Shape to observe: with a stable detector, one round suffices regardless of ℓ. Pre-stabilization flapping costs only termination time — the split-brain rows burn rounds until the detector settles, while lucky rotating leadership can even decide early — and agreement/validity hold in every row (each run is checker-verified). COORD traffic is the homonymy surcharge.",
		},
	}
	type cfg struct {
		n, l, tt int
		crashes  map[hds.PID]hds.Time
		stab     hds.Time
		adv      oracle.Adversary
		advName  string
		seed     int64
	}
	cfgs := []cfg{
		{5, 5, 2, nil, 0, oracle.AdversaryNone, "none", 1},
		{5, 2, 2, nil, 0, oracle.AdversaryNone, "none", 2},
		{5, 1, 2, nil, 0, oracle.AdversaryNone, "none", 3},
		{5, 2, 2, map[hds.PID]hds.Time{1: 30}, 80, oracle.AdversaryRotate, "rotate", 4},
		{5, 2, 2, map[hds.PID]hds.Time{1: 30, 3: 60}, 80, oracle.AdversaryRotate, "rotate", 5},
		{7, 3, 3, map[hds.PID]hds.Time{0: 30, 4: 60, 6: 90}, 120, oracle.AdversarySplit, "split", 6},
		{9, 3, 4, map[hds.PID]hds.Time{0: 20, 2: 40, 4: 60, 6: 80}, 150, oracle.AdversarySplit, "split", 7},
		{9, 3, 4, nil, 300, oracle.AdversaryRotate, "rotate", 8},
	}
	err := tableRows(&t, cfgs, func(_ int, c cfg) []string {
		rep, stats, err := hds.RunFig8(hds.Fig8Experiment{
			IDs:       ident.Balanced(c.n, c.l),
			T:         c.tt,
			Crashes:   c.crashes,
			Stabilize: c.stab,
			Adversary: c.adv,
			Seed:      c.seed,
		})
		if err != nil {
			return []string{itoaI(c.n), itoaI(c.l), itoaI(c.tt), itoaI(len(c.crashes)),
				itoa(c.stab), c.advName, "✗ " + err.Error(), "-", "-"}
		}
		return []string{
			itoaI(c.n), itoaI(c.l), itoaI(c.tt), itoaI(len(c.crashes)), itoa(c.stab), c.advName,
			itoaI(rep.MaxRound), itoa(rep.LastDecision), itoaI(stats.Broadcasts),
		}
	})
	return t, err
}

// E10Fig9Consensus sweeps the Figure 9 consensus up to n−1 crashes — the
// regime Figure 8 cannot enter.
func E10Fig9Consensus() (Table, error) {
	t := Table{
		ID:     "E10",
		Title:  "Consensus in HAS[HΩ, HΣ] — any number of crashes",
		Paper:  "Figure 9, Theorem 8",
		Header: []string{"n", "ℓ", "crashes", "correct", "FD stab (vt)", "rounds", "decided at (vt)", "broadcasts"},
		Notes: []string{
			"Shape to observe: decisions survive up to n−1 crashes (t ≥ n/2 included), which Figure 8's majority quorums cannot; the cost is HΣ sub-round traffic after each h_labels change.",
		},
	}
	n := 6
	ks := make([]int, n)
	for k := range ks {
		ks[k] = k
	}
	err := tableRows(&t, ks, func(_ int, k int) []string {
		crashes := make(map[hds.PID]hds.Time, k)
		for i := 0; i < k; i++ {
			crashes[hds.PID(i)] = hds.Time(20 + 15*i)
		}
		rep, stats, err := hds.RunFig9(hds.Fig9Experiment{
			IDs:       ident.Balanced(n, 3),
			Crashes:   crashes,
			Stabilize: 140,
			Adversary: oracle.AdversaryRotate,
			Seed:      int64(60 + k),
		})
		if err != nil {
			return []string{itoaI(n), "3", itoaI(k), itoaI(n - k), "140", "✗ " + err.Error(), "-", "-"}
		}
		return []string{
			itoaI(n), "3", itoaI(k), itoaI(n - k), "140",
			itoaI(rep.MaxRound), itoa(rep.LastDecision), itoaI(stats.Broadcasts),
		}
	})
	return t, err
}

// E11HomonymyExtremes compares the extremes of homonymy on one workload:
// unique identifiers (ℓ=n, HΩ ≍ Ω), balanced homonymy, anonymous with HΩ,
// and the paper's anonymous AΩ baseline without the coordination phase.
func E11HomonymyExtremes() (Table, error) {
	t := Table{
		ID:     "E11",
		Title:  "Extremes of homonymy on one workload",
		Paper:  "§1–2 (AS and AAS as extreme cases), §5.3 closing remark",
		Header: []string{"variant", "ℓ", "algorithm", "rounds", "decided at (vt)", "broadcasts", "COORD broadcasts"},
		Notes: []string{
			"The same library instance covers the whole identity spectrum. The AΩ baseline saves the COORD traffic but is only defined for anonymous systems; the homonymous algorithms subsume both extremes.",
		},
	}
	n := 6
	crashes := map[hds.PID]hds.Time{1: 40}
	type variant struct {
		name string
		l    int
		algo string
		run  func() (hds.Report, hds.Stats, error)
	}
	variants := []variant{
		{"unique (classical)", n, "Fig 8 (HΩ)", func() (hds.Report, hds.Stats, error) {
			return hds.RunFig8(hds.Fig8Experiment{
				IDs: ident.Unique(n), T: 2, Crashes: crashes, Stabilize: 80, Seed: 71,
			})
		}},
		{"homonymous", 2, "Fig 8 (HΩ)", func() (hds.Report, hds.Stats, error) {
			return hds.RunFig8(hds.Fig8Experiment{
				IDs: ident.Balanced(n, 2), T: 2, Crashes: crashes, Stabilize: 80, Seed: 72,
			})
		}},
		{"anonymous", 1, "Fig 8 (HΩ)", func() (hds.Report, hds.Stats, error) {
			return hds.RunFig8(hds.Fig8Experiment{
				IDs: ident.AnonymousN(n), T: 2, Crashes: crashes, Stabilize: 80, Seed: 73,
			})
		}},
		{"anonymous", 1, "Fig 9 (HΩ+HΣ)", func() (hds.Report, hds.Stats, error) {
			return hds.RunFig9(hds.Fig9Experiment{
				IDs: ident.AnonymousN(n), Crashes: crashes, Stabilize: 80, Seed: 74,
			})
		}},
		{"anonymous baseline", 1, "Fig 9 (AΩ, no COORD)", func() (hds.Report, hds.Stats, error) {
			return hds.RunFig9(hds.Fig9Experiment{
				IDs: ident.AnonymousN(n), Crashes: crashes, Stabilize: 80, Seed: 75,
				AnonymousBaseline: true,
			})
		}},
	}
	err := tableRows(&t, variants, func(_ int, v variant) []string {
		rep, stats, err := v.run()
		if err != nil {
			return []string{v.name, itoaI(v.l), v.algo, "✗ " + err.Error(), "-", "-", "-"}
		}
		return []string{
			v.name, itoaI(v.l), v.algo, itoaI(rep.MaxRound), itoa(rep.LastDecision),
			itoaI(stats.Broadcasts), itoaI(stats.ByTag["COORD"]),
		}
	})
	return t, err
}

// E12EndToEndHPS runs the full stack — Figure 6 detector under Figure 8
// consensus — in HPS and shows decision time tracking GST.
func E12EndToEndHPS() (Table, error) {
	t := Table{
		ID:     "E12",
		Title:  "End-to-end: Fig 6 (◇HP̄→HΩ) under Fig 8 in HPS",
		Paper:  "§1 Contributions (combined partial-synchrony result)",
		Header: []string{"n", "ℓ", "GST", "δ", "crashes", "rounds", "decided at (vt)", "broadcasts"},
		Notes: []string{
			"The paper's headline composition: consensus with partially synchronous processes, eventually timely (reliable) links, a correct majority and no initial membership knowledge. Decision time tracks GST — before it, harsh pre-GST delays stall both the detector's convergence and the consensus quorums.",
		},
	}
	err := tableRows(&t, []hds.Time{0, 100, 300, 600}, func(i int, gst hds.Time) []string {
		rep, stats, err := hds.RunFig8(hds.Fig8Experiment{
			IDs:       ident.Balanced(5, 2),
			T:         2,
			Crashes:   map[hds.PID]hds.Time{3: 40},
			Net:       sim.PartialSync{GST: gst, Delta: 3, PreMax: 120},
			Detectors: hds.MessagePassingDetectors,
			Seed:      int64(80 + i),
			Horizon:   3_000_000,
		})
		if err != nil {
			return []string{"5", "2", itoa(gst), "3", "1", "✗ " + err.Error(), "-", "-"}
		}
		return []string{
			"5", "2", itoa(gst), "3", "1",
			itoaI(rep.MaxRound), itoa(rep.LastDecision), itoaI(stats.Broadcasts),
		}
	})
	return t, err
}
