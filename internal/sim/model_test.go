package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAsyncDelayBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Async{MinDelay: 2, MaxDelay: 9}
		for i := 0; i < 50; i++ {
			d, ok := m.Delay(Time(r.Int63n(1000)), r)
			if !ok || d < 2 || d > 9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAsyncDefaultsSane(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := Async{} // zero value must behave
	for i := 0; i < 100; i++ {
		d, ok := m.Delay(0, r)
		if !ok || d < 1 {
			t.Fatalf("Async zero-value delay = %d, %v", d, ok)
		}
	}
	if (Async{}).String() == "" {
		t.Error("empty String()")
	}
}

func TestPartialSyncLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := PartialSync{GST: 100, Delta: 4, PreLoss: 0.5, PreMax: 30}
		for i := 0; i < 200; i++ {
			sendAt := Time(r.Int63n(200))
			d, ok := m.Delay(sendAt, r)
			if sendAt >= 100 {
				// Post-GST: never lost, within δ.
				if !ok || d < 1 || d > 4 {
					return false
				}
			} else if ok && (d < 1 || d > 31) {
				// Pre-GST: if delivered, delay ≤ PreMax+1 (finite).
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPartialSyncLosslessIsReliable(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m := PartialSync{GST: 100, Delta: 3} // PreLoss 0 → reliable
	for i := 0; i < 500; i++ {
		if _, ok := m.Delay(Time(i%200), r); !ok {
			t.Fatal("PreLoss=0 must never lose a message")
		}
	}
}

func TestTimelyExact(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := Timely{Delta: 7}
	for i := 0; i < 50; i++ {
		d, ok := m.Delay(Time(i), r)
		if !ok || d != 7 {
			t.Fatalf("Timely delay = %d, want 7", d)
		}
	}
	if d, ok := (Timely{}).Delay(0, r); !ok || d != 1 {
		t.Errorf("Timely zero-value delay = %d, want 1", d)
	}
}

func TestModelStrings(t *testing.T) {
	for _, m := range []Model{Async{MaxDelay: 5}, PartialSync{GST: 10, Delta: 2}, Timely{Delta: 3}} {
		if m.String() == "" {
			t.Errorf("%T has empty String()", m)
		}
	}
}
