package sim

import (
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/trace"
)

func sampleDelays(t *testing.T, m Model, n int, seed int64) []Time {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	out := make([]Time, 0, n)
	for i := 0; i < n; i++ {
		d, ok := m.Delay(Time(i), r)
		if !ok {
			continue
		}
		out = append(out, d)
	}
	return out
}

func TestParetoDelaysBoundedAndHeavyTailed(t *testing.T) {
	m := Pareto{Scale: 2, Alpha: 1.2, Cap: 500}
	ds := sampleDelays(t, m, 20000, 1)
	if len(ds) != 20000 {
		t.Fatal("pareto lost messages; it is a reliable model")
	}
	tail := 0
	for _, d := range ds {
		if d < 2 || d > 500 {
			t.Fatalf("delay %d outside [scale, cap]", d)
		}
		if d > 50 {
			tail++
		}
	}
	if tail == 0 {
		t.Fatal("no delay above 25x the scale in 20k draws; tail is not heavy")
	}
	if tail > len(ds)/2 {
		t.Fatalf("%d/%d draws in the tail; body is missing", tail, len(ds))
	}
}

func TestLogNormalDelaysBounded(t *testing.T) {
	m := LogNormal{Median: 4, Sigma: 1.2, Cap: 300}
	ds := sampleDelays(t, m, 20000, 2)
	below, above := 0, 0
	for _, d := range ds {
		if d < 1 || d > 300 {
			t.Fatalf("delay %d outside [1, cap]", d)
		}
		if d <= 4 {
			below++
		} else {
			above++
		}
	}
	// The median parameter must roughly split the draws.
	if below < len(ds)/3 || above < len(ds)/3 {
		t.Fatalf("median split %d/%d is far from the configured median", below, above)
	}
}

func TestModelDeterminismPerSeed(t *testing.T) {
	for _, m := range []Model{
		Pareto{Scale: 1, Alpha: 1.5},
		LogNormal{Median: 3, Sigma: 1},
		Alternating{Period: 20, GoodDelta: 3, BadMax: 40, BadLoss: 0.3},
	} {
		a := sampleDelays(t, m, 500, 7)
		b := sampleDelays(t, m, 500, 7)
		if len(a) != len(b) {
			t.Fatalf("%s: draw counts differ", m)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: draw %d differs: %d vs %d", m, i, a[i], b[i])
			}
		}
	}
}

func TestAlternatingWindows(t *testing.T) {
	m := Alternating{Period: 10, GoodDelta: 2, BadMax: 50, BadLoss: 0, CalmAfter: 100}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		tm := Time(i % 200)
		d, ok := m.Delay(tm, r)
		if !ok {
			t.Fatalf("loss with BadLoss=0 at t=%d", tm)
		}
		inBad := (tm/10)%2 == 1 && tm < 100
		if !inBad && d > 2 {
			t.Fatalf("good-window delay %d > δ=2 at t=%d", d, tm)
		}
		if d > 50 {
			t.Fatalf("delay %d above BadMax at t=%d", d, tm)
		}
	}
	lossy := Alternating{Period: 10, GoodDelta: 2, BadLoss: 1}
	if _, ok := lossy.Delay(15, r); ok {
		t.Fatal("bad window with BadLoss=1 delivered")
	}
	if _, ok := lossy.Delay(5, r); !ok {
		t.Fatal("good window lost a message")
	}
}

func TestAsymmetricLinksSkewDeterministicAndAsymmetric(t *testing.T) {
	m := AsymmetricLinks{Base: Timely{Delta: 1}, MaxSkew: 20}
	if m.Skew(1, 2) != m.Skew(1, 2) {
		t.Fatal("skew not deterministic")
	}
	diff := false
	for from := PID(0); from < 8 && !diff; from++ {
		for to := PID(0); to < 8; to++ {
			if m.Skew(from, to) != m.Skew(to, from) {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("no asymmetric link pair among 64 links")
	}
	for from := PID(0); from < 8; from++ {
		for to := PID(0); to < 8; to++ {
			if s := m.Skew(from, to); s < 0 || s > 20 {
				t.Fatalf("skew %d outside [0, MaxSkew]", s)
			}
		}
	}
}

// TestEngineUsesLinkDelays pins the LinkModel wiring: with a timely base
// and per-link skew, one broadcast's copies arrive at link-dependent times.
func TestEngineUsesLinkDelays(t *testing.T) {
	net := AsymmetricLinks{Base: Timely{Delta: 1}, MaxSkew: 30}
	rec := trace.NewRecorder()
	eng := New(Config{IDs: ident.Unique(6), Net: net, Seed: 1, Recorder: rec})
	for i := 0; i < 6; i++ {
		eng.AddProcess(&echoProc{})
	}
	eng.Run(100)
	arrivals := map[int64]bool{}
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindDeliver {
			arrivals[ev.Time] = true
		}
	}
	if len(arrivals) < 3 {
		t.Fatalf("only %d distinct delivery times; per-link skew not applied", len(arrivals))
	}
	// Replays must be identical: the skew is part of the deterministic run.
	rec2 := trace.NewRecorder()
	eng2 := New(Config{IDs: ident.Unique(6), Net: net, Seed: 1, Recorder: rec2})
	for i := 0; i < 6; i++ {
		eng2.AddProcess(&echoProc{})
	}
	eng2.Run(100)
	a, b := rec.Events(), rec2.Events()
	if len(a) != len(b) {
		t.Fatalf("replay trace length differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay event %d differs", i)
		}
	}
}
