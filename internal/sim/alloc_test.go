package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ident"
	"repro/internal/trace"
)

// allocPing is a non-empty payload: boxing it into `any` without the arena
// costs one heap allocation per conversion, which is exactly what the
// zero-allocation assertions below would catch.
type allocPing struct {
	Round int
}

func (allocPing) MsgTag() string { return "ALLOC_PING" }

// pinger broadcasts the same interned payload every period.
type pinger struct {
	env   Environment
	heard int
}

func (p *pinger) Init(env Environment) {
	p.env = env
	env.SetTimer(5, 0)
}

func (p *pinger) OnMessage(any) { p.heard++ }

func (p *pinger) OnTimer(int) {
	p.env.Broadcast(Intern(p.env, allocPing{Round: 7}))
	p.env.SetTimer(5, 0)
}

// TestUntracedDeliverZeroAlloc pins the PR's headline contract: at steady
// state, the untraced deliver path (broadcast fan-out, queue churn,
// payload table, delivery dispatch) performs zero heap allocations per
// run segment. Warm-up grows the queue, payload table, and arena to their
// steady-state capacities first.
func TestUntracedDeliverZeroAlloc(t *testing.T) {
	const n = 8
	eng := New(Config{IDs: ident.Unique(n), Net: Async{MaxDelay: 4}, Seed: 42})
	for i := 0; i < n; i++ {
		eng.AddProcess(&pinger{})
	}
	horizon := Time(1000)
	eng.Run(horizon) // warm-up: reach steady-state capacities

	before := eng.Processed()
	avg := testing.AllocsPerRun(20, func() {
		horizon += 200
		eng.Run(horizon)
	})
	if eng.Processed() == before {
		t.Fatal("measurement processed no events")
	}
	if avg != 0 {
		t.Fatalf("untraced deliver path allocates %.1f allocs/run, want 0", avg)
	}
}

// TestInternCanonical pins the arena contract: equal values yield the
// same box, distinct values distinct boxes, and distinct engines do not
// share arenas.
func TestInternCanonical(t *testing.T) {
	mk := func() *Engine {
		eng := New(Config{IDs: ident.Unique(1), Seed: 1})
		eng.AddProcess(&pinger{})
		return eng
	}
	e1, e2 := mk(), mk()
	env1, env2 := e1.Env(0), e2.Env(0)

	a := Intern(env1, allocPing{Round: 3})
	if a != (allocPing{Round: 3}) {
		t.Fatal("interned box must hold the value")
	}
	if Intern(env1, allocPing{Round: 4}) == a {
		t.Fatal("distinct values must not share a box")
	}
	// Re-interning an existing value returns the canonical box without
	// boxing again — the zero-allocation property everything rests on.
	if avg := testing.AllocsPerRun(100, func() { _ = Intern(env1, allocPing{Round: 3}) }); avg != 0 {
		t.Fatalf("interned lookup allocates %.1f allocs/run, want 0", avg)
	}
	_ = Intern(env2, allocPing{Round: 3}) // different engine: separate arena
	if len(e1.arena.tables) != 1 || len(e2.arena.tables) != 1 {
		t.Fatal("arenas must be per-engine")
	}
}

// nonInterner is an Environment without an engine arena behind it.
type nonInterner struct{ Environment }

// TestInternFallback pins that Intern degrades to plain boxing for
// environments that do not reach an arena, and when the per-type cap is
// exhausted.
func TestInternFallback(t *testing.T) {
	v := Intern(nonInterner{}, allocPing{Round: 1})
	if v != (allocPing{Round: 1}) {
		t.Fatal("fallback must still box the value")
	}

	eng := New(Config{IDs: ident.Unique(1), Seed: 1})
	eng.AddProcess(&pinger{})
	env := eng.Env(0)
	for i := 0; i < arenaMaxPerType; i++ {
		Intern(env, allocPing{Round: i})
	}
	if got := Intern(env, allocPing{Round: arenaMaxPerType + 1}); got != (allocPing{Round: arenaMaxPerType + 1}) {
		t.Fatal("cap overflow must still box the value")
	}
	m := eng.arena.tables[reflect.TypeFor[allocPing]()].(map[allocPing]any)
	if len(m) != arenaMaxPerType {
		t.Fatalf("arena grew past its cap: %d entries", len(m))
	}
	// Existing entries keep being served without re-boxing.
	if avg := testing.AllocsPerRun(100, func() { _ = Intern(env, allocPing{Round: 5}) }); avg != 0 {
		t.Fatalf("post-cap interned lookup allocates %.1f allocs/run, want 0", avg)
	}
}

// sliceMsg is deliberately non-comparable: interning it through a map key
// would panic, so the node's envelope interning must skip it.
type sliceMsg struct {
	Vals []int
}

type sliceSender struct {
	env  Environment
	got  int
	send bool
}

func (s *sliceSender) Init(env Environment) {
	s.env = env
	if s.send {
		env.Broadcast(sliceMsg{Vals: []int{1, 2}})
	}
}

func (s *sliceSender) OnMessage(payload any) {
	if m, ok := payload.(sliceMsg); ok && len(m.Vals) == 2 {
		s.got++
	}
}

func (s *sliceSender) OnTimer(int) {}

// TestNodeNonComparablePayload pins the envelope-interning guard: modules
// broadcasting non-comparable payloads must not panic and must still
// deliver.
func TestNodeNonComparablePayload(t *testing.T) {
	const n = 3
	eng := New(Config{IDs: ident.Unique(n), Net: Timely{Delta: 1}, Seed: 7})
	senders := make([]*sliceSender, n)
	for i := 0; i < n; i++ {
		senders[i] = &sliceSender{send: i == 0}
		node := NewNode().Add("m", senders[i])
		eng.AddProcess(node)
	}
	eng.Run(50)
	for i, s := range senders {
		if s.got != 1 {
			t.Fatalf("process %d received %d slice messages, want 1", i, s.got)
		}
	}
}

// TestStatsOnlyMatchesRetainedStats pins that the retention-aware lazy
// formatting did not change what is counted: the same seeded scenario run
// with a stats-only recorder and with a retaining recorder yields equal
// statistics, and the retained trace renders byte-identically to a
// spilled one.
func TestStatsOnlyMatchesRetainedStats(t *testing.T) {
	run := func(rec *trace.Recorder) {
		eng := New(Config{IDs: ident.Unique(5), Net: Async{MaxDelay: 3}, Seed: 11, Recorder: rec})
		for i := 0; i < 5; i++ {
			eng.AddProcess(&pinger{})
		}
		eng.CrashAt(2, 40)
		eng.RecoverAt(2, 60)
		eng.Run(200)
	}

	statsOnly := &trace.Recorder{}
	run(statsOnly)

	retained := trace.NewRecorder()
	retained.BufSize = 32 // force many wraparounds
	run(retained)

	var spillBuf bytes.Buffer
	spilled := trace.NewSpillRecorder(trace.NewWriterSink(&spillBuf), 32)
	run(spilled)
	if err := spilled.Flush(); err != nil {
		t.Fatal(err)
	}

	so, re, sp := statsOnly.Stats(), retained.Stats(), spilled.Stats()
	if fmt.Sprintf("%+v", so) != fmt.Sprintf("%+v", re) || fmt.Sprintf("%+v", re) != fmt.Sprintf("%+v", sp) {
		t.Fatalf("stats diverge across recorder modes:\nstats-only: %+v\n  retained: %+v\n   spilled: %+v", so, re, sp)
	}

	var rendered bytes.Buffer
	if err := trace.WriteText(&rendered, retained.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rendered.Bytes(), spillBuf.Bytes()) {
		t.Fatal("spilled trace differs from rendered retained trace")
	}

	// The binary sink must agree end to end: the same run spilled through
	// BinarySink, decoded, and rendered is byte-identical to the text
	// spill — engine-driven coverage of the encode/decode/WriteText chain.
	var binBuf bytes.Buffer
	binary := trace.NewSpillRecorder(trace.NewBinarySink(&binBuf), 32)
	run(binary)
	if err := binary.Flush(); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.ReadBinary(&binBuf)
	if err != nil {
		t.Fatal(err)
	}
	var fromBin bytes.Buffer
	if err := trace.WriteText(&fromBin, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromBin.Bytes(), spillBuf.Bytes()) {
		t.Fatal("decoded binary trace differs from text spill of the same run")
	}
}
