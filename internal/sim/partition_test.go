package sim

import (
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/trace"
)

// TestPartitionWindowActive pins the cut semantics: a window severs exactly
// the cross-cut links, exactly inside [From, To).
func TestPartitionWindowActive(t *testing.T) {
	w := PartitionWindow{From: 10, To: 20, Cut: 2}
	cases := []struct {
		t        Time
		from, to PID
		want     bool
	}{
		{9, 0, 3, false},  // before the window
		{10, 0, 3, true},  // boundary: From is inclusive
		{19, 3, 0, true},  // crossing in the other direction severs too
		{20, 0, 3, false}, // boundary: To is exclusive
		{15, 0, 1, false}, // same side (both < Cut)
		{15, 2, 3, false}, // same side (both >= Cut)
		{15, 1, 2, true},  // adjacent across the cut
	}
	for _, c := range cases {
		if got := w.Active(c.t, c.from, c.to); got != c.want {
			t.Errorf("Active(t=%d, %d->%d) = %v, want %v", c.t, c.from, c.to, got, c.want)
		}
	}
}

// TestPartitionSeversDelivery runs a broadcast workload under a total
// mid-run partition and asserts the trace shows cross-cut copies dropped
// during the window and delivered outside it.
func TestPartitionSeversDelivery(t *testing.T) {
	const n = 4
	net := Partition{Base: Timely{Delta: 1}, Windows: []PartitionWindow{{From: 10, To: 30, Cut: 2}}}
	rec := trace.NewRecorder()
	eng := New(Config{IDs: ident.Unique(n), Net: net, Seed: 1, Recorder: rec})
	for i := 0; i < n; i++ {
		eng.AddProcess(&fanPoll{period: 5})
	}
	eng.Run(50)

	// Before t=10 and from t=30 on, every broadcast reaches all n processes;
	// inside the window each broadcast reaches only its own side (2 of 4).
	st := rec.Stats()
	if st.Dropped == 0 {
		t.Fatalf("no drops recorded across a total partition window: %+v", st)
	}
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindDrop {
			if ev.Time < 10 || ev.Time >= 31 {
				// Copies sent at the window edge (t in [10,30)) with Delta=1
				// land by t=30; nothing sent outside the window may drop.
				t.Fatalf("drop outside the partition window at t=%d: %s", ev.Time, ev.String())
			}
		}
	}

	// The same run without windows drops nothing.
	rec2 := trace.NewRecorder()
	eng2 := New(Config{IDs: ident.Unique(n), Net: Partition{Base: Timely{Delta: 1}}, Seed: 1, Recorder: rec2})
	for i := 0; i < n; i++ {
		eng2.AddProcess(&fanPoll{period: 5})
	}
	eng2.Run(50)
	if st2 := rec2.Stats(); st2.Dropped != 0 {
		t.Fatalf("windowless Partition dropped %d copies", st2.Dropped)
	}
}

// TestPartitionDelegatesToLinkBase pins per-link delegation: wrapping an
// AsymmetricLinks base must preserve its per-link skews for unsevered
// copies (the partition consumes no randomness of its own).
func TestPartitionDelegatesToLinkBase(t *testing.T) {
	base := AsymmetricLinks{Base: Timely{Delta: 2}, MaxSkew: 9}
	part := Partition{Base: base, Windows: []PartitionWindow{{From: 100, To: 200, Cut: 1}}}
	r := rand.New(rand.NewSource(7))
	for from := PID(0); from < 4; from++ {
		for to := PID(0); to < 4; to++ {
			d1, ok1 := base.LinkDelay(5, from, to, r)
			d2, ok2 := part.LinkDelay(5, from, to, r)
			if ok1 != ok2 || d1 != d2 {
				// Timely consumes no randomness, so the shared r stays in
				// phase between the two calls.
				t.Fatalf("link %d->%d: base (%d,%v) vs partition (%d,%v)", from, to, d1, ok1, d2, ok2)
			}
		}
	}
}

// TestLossyLossRate samples the Lossy model and checks the loss rate lands
// near P with the remaining copies delayed by the base model.
func TestLossyLossRate(t *testing.T) {
	net := Lossy{Base: Timely{Delta: 3}, P: 0.25}
	r := rand.New(rand.NewSource(1))
	lost, delivered := 0, 0
	for i := 0; i < 10000; i++ {
		d, ok := net.Delay(0, r)
		if !ok {
			lost++
			continue
		}
		delivered++
		if d != 3 {
			t.Fatalf("surviving copy delayed %d, want the base model's 3", d)
		}
	}
	rate := float64(lost) / float64(lost+delivered)
	if rate < 0.22 || rate > 0.28 {
		t.Fatalf("loss rate %.3f, want ~0.25", rate)
	}
}

// TestLossyClamp pins the liveness guard: P >= 1 clamps to MaxLossP rather
// than silently making every link dead.
func TestLossyClamp(t *testing.T) {
	net := Lossy{P: 1.5}
	if got := net.p(); got != MaxLossP {
		t.Fatalf("p() = %v, want MaxLossP %v", got, MaxLossP)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if _, ok := net.Delay(0, r); ok {
			return // at least one copy survives
		}
	}
	t.Fatal("no copy survived 1000 draws under the clamped model")
}

// TestPartitionLossyStrings pins the canonical renderings used in logs and
// scenario fingerprints.
func TestPartitionLossyStrings(t *testing.T) {
	p := Partition{Base: Async{MaxDelay: 8}, Windows: []PartitionWindow{{From: 10, To: 30, Cut: 2}, {From: 50, To: 60, Cut: 3}}}
	if got, want := p.String(), "part[async[1..8] 10-30@2 50-60@3]"; got != want {
		t.Errorf("Partition.String() = %q, want %q", got, want)
	}
	l := Lossy{P: 0.3}
	if got, want := l.String(), "lossy[p=0.30 async[1..1]]"; got != want {
		t.Errorf("Lossy.String() = %q, want %q", got, want)
	}
	if got := LastWindowEnd(p.Windows); got != 60 {
		t.Errorf("LastWindowEnd = %d, want 60", got)
	}
	if got := LastWindowEnd(nil); got != 0 {
		t.Errorf("LastWindowEnd(nil) = %d, want 0", got)
	}
}
