package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"sync"

	"repro/internal/ident"
	"repro/internal/trace"
)

// Config describes one simulated system.
type Config struct {
	// IDs is the identity assignment; IDs.N() is the system size n.
	IDs ident.Assignment
	// Net is the network timing model. Defaults to Async{}.
	Net Model
	// Seed drives all randomness (delays, adversarial choices).
	Seed int64
	// KnownN exposes n to processes via Env.N. Only the Fig. 8 consensus
	// model HAS[t<n/2, HΩ] sets it; the paper's other algorithms run with
	// unknown membership.
	KnownN bool
	// Recorder, when non-nil, receives trace events. With a nil Recorder the
	// engine constructs no trace data at all: the hot path neither formats
	// details nor computes message tags.
	Recorder *trace.Recorder
	// MaxEvents caps the number of processed events as a runaway guard.
	// Defaults to 5,000,000.
	MaxEvents int
	// EagerFanout restores the pre-lazy broadcast expansion: n evDeliver
	// events pushed at send time, one per recipient. The queue then grows
	// with in-flight copies instead of in-flight broadcasts, so it is
	// unusable at large n; it exists as the differential oracle for the
	// lazy path (both draw per-copy fates from the same keyed streams, so
	// runs are byte-identical — see fanout.go) and is exercised by tests.
	EagerFanout bool
}

type eventKind int32

const (
	evDeliver eventKind = iota + 1
	evTimer
	evCrash
	evRecover
	// evFanout is the lazy path's per-broadcast entry: arg indexes the
	// engine's fanout table, and the entry's (time, seq) are those of the
	// earliest undelivered copy of the broadcast's current wave.
	evFanout
)

// event is stored by value in the queue; scheduling one costs no heap
// allocation beyond the queue slice's amortized growth. The struct is kept
// to 32 bytes — at n=1000 the queue holds millions of in-flight events, so
// its footprint dominates a run's memory. Deliveries do not carry their
// payload: all fan-out copies of one broadcast share a single refcounted
// slot in the engine's payload table, referenced by arg.
type event struct {
	time Time
	seq  uint64 // tie-break: FIFO among simultaneous events
	kind eventKind
	pid  int32
	arg  int32 // evDeliver: payload-table slot; evTimer: timer tag; evFanout: fanout-table index
}

// before is the total queue order: (time, seq) lexicographically. seq is
// unique per engine, so the order is strict and runs are deterministic
// regardless of the heap's internal layout.
func (a *event) before(b *event) bool {
	return a.time < b.time || (a.time == b.time && a.seq < b.seq)
}

// eventQueue is a 4-ary min-heap of events by value. A wider fan-out trades
// a few extra comparisons per level for half the depth (and half the moves)
// of a binary heap, which wins on the deliver-heavy workloads here; keeping
// values instead of pointers removes the per-event allocation and the
// pointer chasing of container/heap.
type eventQueue []event

func (q eventQueue) up(i int) {
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !ev.before(&q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ev
}

func (q eventQueue) down(i int) {
	n := len(q)
	ev := q[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q[c].before(&q[best]) {
				best = c
			}
		}
		if !q[best].before(&ev) {
			break
		}
		q[i] = q[best]
		i = best
	}
	q[i] = ev
}

// StopReason reports why the most recent Run/RunUntil call returned.
// Callers that must distinguish a quiescent execution from a truncated one
// (the MaxEvents runaway guard) check Stopped after the run; experiment
// drivers treat StopMaxEvents as an error.
type StopReason int

const (
	// StopNone: the engine has not run yet.
	StopNone StopReason = iota
	// StopQuiescent: the event queue drained — nothing can ever happen
	// again; the execution's suffix is silent.
	StopQuiescent
	// StopHorizon: the next event lies beyond the `until` horizon.
	StopHorizon
	// StopPredicate: the RunUntil early-exit predicate returned true.
	StopPredicate
	// StopMaxEvents: the MaxEvents runaway guard tripped — the run was
	// truncated and its results must not be read as a complete execution.
	StopMaxEvents
)

var stopNames = map[StopReason]string{
	StopNone:      "not-run",
	StopQuiescent: "quiescent",
	StopHorizon:   "horizon",
	StopPredicate: "predicate",
	StopMaxEvents: "max-events",
}

// String returns the lowercase reason name.
func (s StopReason) String() string {
	if name, ok := stopNames[s]; ok {
		return name
	}
	return fmt.Sprintf("stop(%d)", int(s))
}

// schedKey orders schedule entries for one process by (time, seq) — the
// same total order the event queue pops in — so the engine can answer
// "which of this process's crash/recover events fires last" without
// rescanning the queue.
type schedKey struct {
	t   Time
	seq int64
	set bool
}

func (k schedKey) after(o schedKey) bool {
	return k.t > o.t || (k.t == o.t && k.seq > o.seq)
}

// Engine runs one execution. Create it with New, attach processes with
// AddProcess, optionally schedule crashes, then Run. Engines are not safe
// for concurrent use; all determinism comes from the single event queue.
// Distinct engines share nothing mutable, so independent engines may run
// concurrently (see the sweep package).
type Engine struct {
	cfg   Config
	ids   ident.Assignment
	rng   *rand.Rand
	rec   *trace.Recorder
	queue eventQueue
	seq   uint64
	now   Time
	procs []Process
	envs  []*Env
	// retain caches rec.Retaining() for the run: when the recorder keeps
	// statistics only, the engine skips all per-event tag/detail formatting
	// (broadcast tags are still computed — the ByTag statistic needs them).
	retain bool
	// payloads is the broadcast payload table: every fan-out copy of one
	// broadcast references the same slot, which is freed to the freelist
	// when its last copy pops. At steady state delivery costs no payload
	// storage beyond one slot per in-flight broadcast.
	payloads  []payloadSlot
	freeSlots []int32
	// arena interns boxed payloads by (type, value) — see Intern.
	arena   payloadArena
	crashed []bool
	// everCrashed[p] is sticky: recovery clears crashed[p] but never this.
	// CorrectSet ("correct = never crashes") keys off it.
	everCrashed []bool
	// pendingCrash[p] counts evCrash events for p still in the queue, so
	// CorrectSet is O(n) instead of rescanning the queue per call.
	pendingCrash []int
	// lastCrash/lastRecover hold the (time, seq) of the latest scheduled or
	// executed crash/recover per process; EventuallyUpSet compares them to
	// decide a process's final state without rescanning the queue.
	lastCrash   []schedKey
	lastRecover []schedKey
	// partialCrash[p], when set, makes p's next broadcast at or after the
	// stored time partial: each copy is delivered independently with the
	// stored probability, then p crashes. Quiescence disarms unfired arms:
	// a process that never broadcasts after `after` never crashes.
	partialCrash []*partialCrash
	afterEvent   []func(now Time, p PID)
	processed    int
	recoveries   int
	started      bool
	stopped      StopReason
	// Lazy fan-out state (fanout.go). fanSrc/fanRand are the engine's one
	// reusable per-copy fate stream; fanouts/freeFans the record table and
	// its freelist; bcasts keys fate streams; perLink/linkNet cache the
	// Net's LinkModel assertion for the per-copy hot path.
	fanSrc   fanSource
	fanRand  *rand.Rand
	fanouts  []fanoutRec
	freeFans []int32
	bcasts   uint64
	perLink  bool
	linkNet  LinkModel
	// done is the active RunUntil predicate, visible to deliverWave so a
	// wave can stop between copies exactly as the eager path stops between
	// events.
	done func() bool
	// maxQueue is the high-water mark of the event queue, the direct
	// witness that fan-out is lazy: it tracks in-flight broadcasts, not
	// in-flight copies.
	maxQueue int
	// curSeq is the seq of the event being processed (-1 during start), so
	// mid-event state changes (partial crashes) order correctly against
	// scheduled events at the same instant.
	curSeq int64
}

type partialCrash struct {
	after       Time
	deliverProb float64
}

// Recoverer is implemented by processes that restart activity after a
// recovery — typically re-arming their timer chains, which break while the
// process is down (timers that fire during downtime are dropped). The
// engine calls OnRecover when an evRecover event revives the process;
// processes that do not implement it simply resume receiving messages and
// any still-pending timers.
type Recoverer interface {
	OnRecover()
}

// New builds an engine for the given configuration. It panics on an invalid
// identity assignment, which is an experiment-setup programming error.
func New(cfg Config) *Engine {
	if err := cfg.IDs.Validate(); err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	if cfg.Net == nil {
		cfg.Net = Async{}
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 5_000_000
	}
	n := cfg.IDs.N()
	e := &Engine{
		cfg:          cfg,
		ids:          cfg.IDs,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		rec:          cfg.Recorder,
		crashed:      make([]bool, n),
		everCrashed:  make([]bool, n),
		pendingCrash: make([]int, n),
		lastCrash:    make([]schedKey, n),
		lastRecover:  make([]schedKey, n),
		partialCrash: make([]*partialCrash, n),
		curSeq:       -1,
	}
	e.fanRand = rand.New(&e.fanSrc)
	e.linkNet, e.perLink = cfg.Net.(LinkModel)
	return e
}

// AddProcess binds the algorithm instance for the next unbound process
// index and returns that index. Engines require exactly n processes before
// Run; Init is deferred until the run starts so that all processes begin
// together at time 0.
func (e *Engine) AddProcess(p Process) PID {
	if e.started {
		panic("sim: AddProcess after run started")
	}
	if len(e.procs) >= e.ids.N() {
		panic("sim: more processes than identities")
	}
	e.procs = append(e.procs, p)
	e.envs = append(e.envs, &Env{eng: e, pid: PID(len(e.procs) - 1)})
	return PID(len(e.procs) - 1)
}

// Env returns the environment of process p, mainly so tests and checkers
// can read Now/ID through the same lens the process does.
func (e *Engine) Env(p PID) *Env { return e.envs[p] }

// IDs returns the identity assignment.
func (e *Engine) IDs() ident.Assignment { return e.ids }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// CrashAt schedules process p to crash at time t: from then on it takes no
// steps, receives nothing, and its broadcasts are ignored (until a later
// RecoverAt, if any). Times in the past are clamped to the current virtual
// time — scheduling can never rewind the clock.
func (e *Engine) CrashAt(p PID, t Time) {
	if t < e.now {
		t = e.now
	}
	e.pendingCrash[p]++
	if k := (schedKey{t: t, seq: int64(e.seq), set: true}); k.after(e.lastCrash[p]) || !e.lastCrash[p].set {
		e.lastCrash[p] = k
	}
	e.push(event{time: t, kind: evCrash, pid: int32(p)})
}

// CrashSchedule registers a whole crash schedule, applying the entries in
// ascending PID order. Simultaneous events are tie-broken by registration
// sequence, so scheduling crashes directly from a Go map range would bake
// the runtime's randomized iteration order into the event queue — and from
// there into trace bytes. This is the one deterministic way to feed a
// map-shaped schedule to the engine.
func (e *Engine) CrashSchedule(sched map[PID]Time) {
	pids := make([]PID, 0, len(sched))
	for p := range sched {
		pids = append(pids, p)
	}
	slices.Sort(pids)
	for _, p := range pids {
		e.CrashAt(p, sched[p])
	}
}

// RecoverAt schedules process p to recover at time t: if it is down at that
// instant it resumes taking steps and receiving messages. State held in the
// Process value survives the outage (crash = pause plus message loss);
// messages delivered and timers fired while down are lost. Processes that
// implement Recoverer get an OnRecover callback to restart their timer
// chains. Times in the past are clamped to the current virtual time.
func (e *Engine) RecoverAt(p PID, t Time) {
	if t < e.now {
		t = e.now
	}
	if k := (schedKey{t: t, seq: int64(e.seq), set: true}); k.after(e.lastRecover[p]) || !e.lastRecover[p].set {
		e.lastRecover[p] = k
	}
	e.push(event{time: t, kind: evRecover, pid: int32(p)})
}

// CrashDuringBroadcast makes process p crash during its first broadcast at
// or after time `after`: each copy of that final broadcast is delivered
// independently with probability deliverProb (the "arbitrary subset" of the
// model), and p is crashed immediately afterwards.
func (e *Engine) CrashDuringBroadcast(p PID, after Time, deliverProb float64) {
	e.partialCrash[p] = &partialCrash{after: after, deliverProb: deliverProb}
}

// Crashed reports whether p is down right now (crashed and not yet
// recovered).
func (e *Engine) Crashed(p PID) bool { return e.crashed[p] }

// EverCrashed reports whether p has crashed at least once, recovered or
// not.
func (e *Engine) EverCrashed(p PID) bool { return e.everCrashed[p] }

// Recoveries returns the number of recover events executed so far.
func (e *Engine) Recoveries() int { return e.recoveries }

// correct reports whether p belongs to the ground-truth Correct set under
// the paper's strict reading: p never crashes — no crash executed, none
// scheduled, and no live CrashDuringBroadcast arm. An arm is live until it
// fires or the run quiesces; a quiescent run can never broadcast again, so
// an armed process that never broadcast after `after` never crashes and is
// disarmed (and correct) from that point on.
func (e *Engine) correct(p PID) bool {
	return !e.everCrashed[p] && e.pendingCrash[p] == 0 && e.partialCrash[p] == nil
}

// CorrectSet returns the indexes of processes that never crash — the
// ground truth Correct set, assuming all scheduled crashes eventually fire.
// Checkers use it; algorithms cannot. Pending crashes are tracked
// incrementally, so the call is O(n) regardless of queue depth. Under
// crash-recovery schedules a process that crashes and recovers is NOT
// correct in this strict sense; see EventuallyUpSet for the weaker class.
func (e *Engine) CorrectSet() []PID {
	var out []PID
	for p := range e.crashed {
		if e.correct(PID(p)) {
			out = append(out, PID(p))
		}
	}
	return out
}

// EventuallyUpSet returns the processes whose final state is up, assuming
// all scheduled crash/recover events fire: the never-crashing processes
// plus those whose latest recovery is scheduled after their latest crash.
// In crash-stop executions it equals CorrectSet. Failure-detector classes
// under churn are stated relative to this set — a detector can only
// converge to the processes that are eventually permanently up.
func (e *Engine) EventuallyUpSet() []PID {
	var out []PID
	for p := range e.crashed {
		if e.correct(PID(p)) {
			out = append(out, PID(p))
			continue
		}
		if e.partialCrash[p] != nil {
			// A live arm is a crash with an unknowable future time: it
			// outranks any already-scheduled recovery.
			continue
		}
		if e.lastRecover[p].set && e.lastRecover[p].after(e.lastCrash[p]) {
			out = append(out, PID(p))
		}
	}
	return out
}

// CorrectIDs returns I(Correct), the multiset of identifiers of correct
// processes.
func (e *Engine) CorrectIDs() []ident.ID {
	var out []ident.ID
	for _, p := range e.CorrectSet() {
		out = append(out, e.ids[p])
	}
	return out
}

// AfterEvent registers an observer invoked after every processed event,
// with the then-current virtual time and the process the event concerned
// (p = -1 for the initial time-0 notification, where every process just
// ran Init). Property checkers use it to sample failure-detector outputs
// exactly when they can change: a process's output may change only during
// its own events or when virtual time advances.
func (e *Engine) AfterEvent(f func(now Time, p PID)) {
	e.afterEvent = append(e.afterEvent, f)
}

// Processed returns the number of events processed so far.
func (e *Engine) Processed() int { return e.processed }

// MaxQueueLen returns the event queue's high-water mark (entries, not
// bytes). Under lazy fan-out it grows with in-flight broadcasts plus
// timers and schedules — not with in-flight message copies — which is the
// measurable witness that population size is no longer a memory dimension;
// the population-scaling experiment reports it per row.
func (e *Engine) MaxQueueLen() int { return e.maxQueue }

// Stopped reports why the most recent Run/RunUntil call returned. Callers
// must check for StopMaxEvents before trusting a run's results: the guard
// silently truncates the execution, and a truncated run is
// indistinguishable from a quiescent one by event count alone.
func (e *Engine) Stopped() StopReason { return e.stopped }

// Run processes events until the queue is empty, virtual time would exceed
// `until`, or the MaxEvents guard trips. It returns the number of events
// processed during this call; Stopped reports which of the three ended it.
func (e *Engine) Run(until Time) int {
	return e.RunUntil(until, nil)
}

// RunUntil is Run with an early-exit predicate, evaluated after every
// event; it returns the number of events processed during this call.
func (e *Engine) RunUntil(until Time, done func() bool) int {
	e.start()
	startProcessed := e.processed
	e.done = done
	e.stopped = StopQuiescent
	for len(e.queue) > 0 {
		if e.processed >= e.cfg.MaxEvents {
			e.stopped = StopMaxEvents
			break
		}
		if e.queue[0].time > until {
			e.stopped = StopHorizon
			break
		}
		if r := e.step(); r != StopNone {
			e.stopped = r
			break
		}
	}
	e.done = nil
	if e.stopped == StopQuiescent {
		// Quiescence: no event will ever be processed again, so no process
		// will ever broadcast again — unfired CrashDuringBroadcast arms can
		// never fire. Disarm them: a process that never broadcasts after
		// `after` never crashes, and belongs in the Correct set.
		for p, pc := range e.partialCrash {
			if pc != nil {
				e.partialCrash[p] = nil
			}
		}
	}
	return e.processed - startProcessed
}

// start initializes all processes at time 0 (idempotent).
func (e *Engine) start() {
	if e.started {
		return
	}
	if len(e.procs) != e.ids.N() {
		panic(fmt.Sprintf("sim: %d processes bound, need %d", len(e.procs), e.ids.N()))
	}
	e.started = true
	e.retain = e.rec.Retaining()
	for p, proc := range e.procs {
		if !e.crashed[p] {
			proc.Init(e.envs[p])
		}
	}
	e.notifyAfter(-1)
}

// step processes the single earliest queue entry and reports whether the
// run must stop (StopNone to continue): a wave entry can trip the
// MaxEvents guard or the RunUntil predicate between its copies, so the
// stop surfaces from inside the entry rather than from the outer loop.
// All trace construction sits behind the nil-recorder check, and all
// tag/detail formatting additionally behind the retention check: with
// tracing off the engine formats nothing and computes no tags, and with a
// stats-only recorder it counts kinds without building strings.
func (e *Engine) step() StopReason {
	ev := e.pop()
	e.now = ev.time
	if ev.kind == evFanout {
		// Per-copy accounting (processed, curSeq, observers, the done
		// predicate) happens inside the wave, per delivered copy.
		return e.deliverWave(ev)
	}
	e.curSeq = int64(ev.seq)
	e.processed++
	pid := PID(ev.pid)
	switch ev.kind {
	case evCrash:
		e.pendingCrash[pid]--
		if !e.crashed[pid] {
			e.crashed[pid] = true
			e.everCrashed[pid] = true
			if e.rec != nil {
				e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindCrash, PID: int(pid)})
			}
		}
	case evRecover:
		if e.crashed[pid] {
			e.crashed[pid] = false
			e.recoveries++
			if e.rec != nil {
				e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindRecover, PID: int(pid)})
			}
			if r, ok := e.procs[pid].(Recoverer); ok {
				r.OnRecover()
			}
		}
	case evDeliver:
		payload := e.takePayload(ev.arg)
		if e.crashed[pid] {
			if e.rec != nil {
				if e.retain {
					e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindDrop, PID: int(pid), MsgTag: tagOf(payload), Detail: "recipient crashed"})
				} else {
					e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindDrop, PID: int(pid)})
				}
			}
			break
		}
		if e.rec != nil {
			if e.retain {
				e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindDeliver, PID: int(pid), MsgTag: tagOf(payload)})
			} else {
				e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindDeliver, PID: int(pid)})
			}
		}
		e.procs[pid].OnMessage(payload)
	case evTimer:
		if e.crashed[pid] {
			// A timer on a down process is dropped, exactly like a message
			// copy — and, like one, it leaves a trace: silently vanishing
			// timers made crash interleavings unreproducible from traces.
			if e.rec != nil {
				if e.retain {
					e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindTimerDrop, PID: int(pid), Detail: timerDetail(int(ev.arg))})
				} else {
					e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindTimerDrop, PID: int(pid)})
				}
			}
			break
		}
		if e.rec != nil {
			if e.retain {
				e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindTimer, PID: int(pid), Detail: timerDetail(int(ev.arg))})
			} else {
				e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindTimer, PID: int(pid)})
			}
		}
		e.procs[pid].OnTimer(int(ev.arg))
	}
	e.notifyAfter(pid)
	if e.done != nil && e.done() {
		return StopPredicate
	}
	return StopNone
}

func (e *Engine) notifyAfter(p PID) {
	for _, f := range e.afterEvent {
		f(e.now, p)
	}
}

// broadcast fans payload out to every process. Each copy's fate (survival
// of a partial crash, loss, delay) comes from its own keyed stream — see
// fanout.go — so the lazy default (one queue entry per broadcast, waves
// resolved at delivery time) and the eager oracle (one entry per copy,
// Config.EagerFanout) schedule byte-identical executions.
func (e *Engine) broadcast(from PID, payload any) {
	if e.crashed[from] {
		return
	}
	pc := e.partialCrash[from]
	partial := pc != nil && e.now >= pc.after
	prob := 0.0
	if partial {
		prob = pc.deliverProb
	}
	var tag string
	if e.rec != nil {
		// The tag is computed even for stats-only recorders: the per-tag
		// broadcast counts (Stats.ByTag) depend on it. tagOf is
		// allocation-free for Tagger payloads and cached otherwise.
		tag = tagOf(payload)
		e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindBroadcast, PID: int(from), MsgTag: tag})
	}
	key := e.nextFanKey()
	if e.cfg.EagerFanout {
		e.broadcastEager(key, from, payload, partial, prob, tag)
	} else {
		scheduled, minDelay, firstK := e.fanoutScan(key, from, partial, prob, tag)
		if scheduled > 0 {
			baseSeq := e.seq
			e.seq += uint64(scheduled)
			idx := e.allocFanout(fanoutRec{
				key:     key,
				baseSeq: baseSeq,
				sent:    e.now,
				slot:    e.allocSlot(payload),
				from:    int32(from),
				partial: partial,
				prob:    prob,
				delay:   minDelay,
			})
			e.requeue(event{time: e.now + minDelay, seq: baseSeq + uint64(firstK), kind: evFanout, pid: int32(from), arg: idx})
		}
	}
	if partial {
		e.partialCrash[from] = nil
		e.crashed[from] = true
		e.everCrashed[from] = true
		// The crash happens during the event being processed: key it by the
		// current event's (time, seq) so recoveries scheduled at the same
		// instant order against it exactly as the queue will pop them. A
		// crash scheduled even later (CrashAt) keeps precedence.
		if k := (schedKey{t: e.now, seq: e.curSeq, set: true}); k.after(e.lastCrash[from]) || !e.lastCrash[from].set {
			e.lastCrash[from] = k
		}
		if e.rec != nil {
			e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindCrash, PID: int(from), Detail: "mid-broadcast"})
		}
	}
}

// broadcastEager materializes every copy at send time (Config.EagerFanout):
// the pre-lazy expansion, kept as the lazy path's differential oracle. It
// draws fates from the same keyed streams, records the same drop traces in
// the same recipient order, and pushes scheduled copies in that order, so
// copy k receives exactly the seq the lazy path reserves for it.
func (e *Engine) broadcastEager(key uint64, from PID, payload any, partial bool, prob float64, tag string) {
	slot := e.allocSlot(payload)
	copies := int32(0)
	for to := range e.procs {
		d, st := e.copyFate(key, e.now, int32(from), partial, prob, to)
		switch st {
		case fatePartialDrop:
			if e.rec != nil {
				if e.retain {
					e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindDrop, PID: to, MsgTag: tag, Detail: "sender crashed mid-broadcast"})
				} else {
					e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindDrop, PID: to})
				}
			}
		case fateLost:
			if e.rec != nil {
				if e.retain {
					e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindDrop, PID: to, MsgTag: tag, Detail: "lost"})
				} else {
					e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindDrop, PID: to})
				}
			}
		case fateDeliver:
			e.push(event{time: e.now + d, kind: evDeliver, pid: int32(to), arg: slot})
			copies++
		}
	}
	e.payloads[slot].refs = copies
	if copies == 0 {
		e.freeSlot(slot)
	}
}

func (e *Engine) setTimer(p PID, d Time, tag int) {
	if d < 1 {
		d = 1
	}
	if tag != int(int32(tag)) {
		panic("sim: timer tag exceeds 32 bits")
	}
	e.push(event{time: e.now + d, kind: evTimer, pid: int32(p), arg: int32(tag)})
}

// push enqueues an event, clamping its time to the present: virtual time is
// monotone by construction, no matter how hostile a Model's delays or how
// stale a crash/recover schedule is.
func (e *Engine) push(ev event) {
	if ev.time < e.now {
		ev.time = e.now
	}
	ev.seq = e.seq
	e.seq++
	e.enqueue(ev)
}

// requeue enqueues an event that already carries its seq — a fanout wave
// entry keyed by the seq reserved for its earliest undelivered copy. The
// seq counter is untouched: wave entries reuse seqs from their broadcast's
// reserved interval, never mint new ones.
func (e *Engine) requeue(ev event) {
	if ev.time < e.now {
		ev.time = e.now
	}
	e.enqueue(ev)
}

func (e *Engine) enqueue(ev event) {
	e.queue = append(e.queue, ev)
	e.queue.up(len(e.queue) - 1)
	if len(e.queue) > e.maxQueue {
		e.maxQueue = len(e.queue)
	}
}

func (e *Engine) pop() event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	e.queue = q[:n]
	if n > 1 {
		e.queue.down(0)
	}
	return top
}

// allocSlot stores a broadcast payload in the payload table and returns its
// slot index. Slots are recycled through a freelist, so at steady state
// broadcasting allocates nothing here.
func (e *Engine) allocSlot(payload any) int32 {
	if n := len(e.freeSlots); n > 0 {
		s := e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
		e.payloads[s] = payloadSlot{payload: payload}
		return s
	}
	e.payloads = append(e.payloads, payloadSlot{payload: payload})
	return int32(len(e.payloads) - 1)
}

// takePayload reads a delivery's payload and releases one reference; the
// last copy frees the slot (dropping the payload reference for the GC).
func (e *Engine) takePayload(slot int32) any {
	s := &e.payloads[slot]
	payload := s.payload
	s.refs--
	if s.refs == 0 {
		e.freeSlot(slot)
	}
	return payload
}

func (e *Engine) freeSlot(slot int32) {
	e.payloads[slot] = payloadSlot{}
	e.freeSlots = append(e.freeSlots, slot)
}

func (e *Engine) record(ev trace.Event) {
	if e.rec != nil {
		e.rec.Record(ev)
	}
}

// Note records a custom trace event on behalf of process p; algorithms use
// it (via Env.Note) to mark decisions and failure-detector output changes.
func (e *Engine) note(p PID, kind trace.Kind, tag, detail string) {
	e.record(trace.Event{Time: e.now, Kind: kind, PID: int(p), MsgTag: tag, Detail: detail})
}

// tagCache memoizes the reflected type name of untagged payloads. It is a
// process-wide sync.Map because engines may run concurrently in sweep
// workers; payload type universes are tiny, so the map stays small and
// reads are lock-free.
var tagCache sync.Map // reflect.Type -> string

func tagOf(payload any) string {
	if t, ok := payload.(Tagger); ok {
		return t.MsgTag()
	}
	rt := reflect.TypeOf(payload)
	if s, ok := tagCache.Load(rt); ok {
		return s.(string)
	}
	s := fmt.Sprintf("%T", payload)
	tagCache.Store(rt, s)
	return s
}
