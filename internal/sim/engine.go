package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/ident"
	"repro/internal/trace"
)

// Config describes one simulated system.
type Config struct {
	// IDs is the identity assignment; IDs.N() is the system size n.
	IDs ident.Assignment
	// Net is the network timing model. Defaults to Async{}.
	Net Model
	// Seed drives all randomness (delays, adversarial choices).
	Seed int64
	// KnownN exposes n to processes via Env.N. Only the Fig. 8 consensus
	// model HAS[t<n/2, HΩ] sets it; the paper's other algorithms run with
	// unknown membership.
	KnownN bool
	// Recorder, when non-nil, receives trace events.
	Recorder *trace.Recorder
	// MaxEvents caps the number of processed events as a runaway guard.
	// Defaults to 5,000,000.
	MaxEvents int
}

type eventKind int

const (
	evDeliver eventKind = iota + 1
	evTimer
	evCrash
)

type event struct {
	time    Time
	seq     uint64 // tie-break: FIFO among simultaneous events
	kind    eventKind
	pid     PID
	payload any // evDeliver
	tag     int // evTimer
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine runs one execution. Create it with New, attach processes with
// AddProcess, optionally schedule crashes, then Run. Engines are not safe
// for concurrent use; all determinism comes from the single event queue.
type Engine struct {
	cfg     Config
	ids     ident.Assignment
	rng     *rand.Rand
	queue   eventQueue
	seq     uint64
	now     Time
	procs   []Process
	envs    []*Env
	crashed []bool
	// crashDuringBroadcast[p], when set, makes p's next broadcast at or
	// after the stored time partial: each copy is delivered independently
	// with the stored probability, then p crashes.
	partialCrash []*partialCrash
	afterEvent   []func(now Time)
	processed    int
	started      bool
}

type partialCrash struct {
	after       Time
	deliverProb float64
}

// New builds an engine for the given configuration. It panics on an invalid
// identity assignment, which is an experiment-setup programming error.
func New(cfg Config) *Engine {
	if err := cfg.IDs.Validate(); err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	if cfg.Net == nil {
		cfg.Net = Async{}
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 5_000_000
	}
	n := cfg.IDs.N()
	return &Engine{
		cfg:          cfg,
		ids:          cfg.IDs,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		crashed:      make([]bool, n),
		partialCrash: make([]*partialCrash, n),
	}
}

// AddProcess binds the algorithm instance for the next unbound process
// index and returns that index. Engines require exactly n processes before
// Run; Init is deferred until the run starts so that all processes begin
// together at time 0.
func (e *Engine) AddProcess(p Process) PID {
	if e.started {
		panic("sim: AddProcess after run started")
	}
	if len(e.procs) >= e.ids.N() {
		panic("sim: more processes than identities")
	}
	e.procs = append(e.procs, p)
	e.envs = append(e.envs, &Env{eng: e, pid: PID(len(e.procs) - 1)})
	return PID(len(e.procs) - 1)
}

// Env returns the environment of process p, mainly so tests and checkers
// can read Now/ID through the same lens the process does.
func (e *Engine) Env(p PID) *Env { return e.envs[p] }

// IDs returns the identity assignment.
func (e *Engine) IDs() ident.Assignment { return e.ids }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// CrashAt schedules process p to crash at time t: from then on it takes no
// steps, receives nothing, and its broadcasts are ignored.
func (e *Engine) CrashAt(p PID, t Time) {
	e.push(&event{time: t, kind: evCrash, pid: p})
}

// CrashDuringBroadcast makes process p crash during its first broadcast at
// or after time `after`: each copy of that final broadcast is delivered
// independently with probability deliverProb (the "arbitrary subset" of the
// model), and p is crashed immediately afterwards.
func (e *Engine) CrashDuringBroadcast(p PID, after Time, deliverProb float64) {
	e.partialCrash[p] = &partialCrash{after: after, deliverProb: deliverProb}
}

// Crashed reports whether p has crashed (so far).
func (e *Engine) Crashed(p PID) bool { return e.crashed[p] }

// CorrectSet returns the indexes of processes with no crash scheduled or
// executed — the ground truth Correct set, assuming all scheduled crashes
// eventually fire. Checkers use it; algorithms cannot.
func (e *Engine) CorrectSet() []PID {
	pending := make([]bool, e.ids.N())
	for _, ev := range e.queue {
		if ev.kind == evCrash {
			pending[ev.pid] = true
		}
	}
	var out []PID
	for p := range e.crashed {
		if !e.crashed[p] && !pending[p] && e.partialCrash[p] == nil {
			out = append(out, PID(p))
		}
	}
	return out
}

// CorrectIDs returns I(Correct), the multiset of identifiers of correct
// processes.
func (e *Engine) CorrectIDs() []ident.ID {
	var out []ident.ID
	for _, p := range e.CorrectSet() {
		out = append(out, e.ids[p])
	}
	return out
}

// AfterEvent registers an observer invoked after every processed event,
// with the then-current virtual time. Property checkers use it to sample
// failure-detector outputs exactly when they can change.
func (e *Engine) AfterEvent(f func(now Time)) {
	e.afterEvent = append(e.afterEvent, f)
}

// Processed returns the number of events processed so far.
func (e *Engine) Processed() int { return e.processed }

// Run processes events until the queue is empty, virtual time would exceed
// `until`, or the MaxEvents guard trips. It returns the number of events
// processed during this call.
func (e *Engine) Run(until Time) int {
	return e.RunUntil(until, nil)
}

// RunUntil is Run with an early-exit predicate, evaluated after every
// event; it returns the number of events processed during this call.
func (e *Engine) RunUntil(until Time, done func() bool) int {
	e.start()
	count := 0
	for len(e.queue) > 0 && e.processed < e.cfg.MaxEvents {
		if e.queue[0].time > until {
			break
		}
		e.step()
		count++
		if done != nil && done() {
			break
		}
	}
	return count
}

// start initializes all processes at time 0 (idempotent).
func (e *Engine) start() {
	if e.started {
		return
	}
	if len(e.procs) != e.ids.N() {
		panic(fmt.Sprintf("sim: %d processes bound, need %d", len(e.procs), e.ids.N()))
	}
	e.started = true
	for p, proc := range e.procs {
		if !e.crashed[p] {
			proc.Init(e.envs[p])
		}
	}
	e.notifyAfter()
}

// step processes the single earliest event.
func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.time
	e.processed++
	switch ev.kind {
	case evCrash:
		if !e.crashed[ev.pid] {
			e.crashed[ev.pid] = true
			e.record(trace.Event{Time: e.now, Kind: trace.KindCrash, PID: int(ev.pid)})
		}
	case evDeliver:
		if e.crashed[ev.pid] {
			e.record(trace.Event{Time: e.now, Kind: trace.KindDrop, PID: int(ev.pid), MsgTag: tagOf(ev.payload), Detail: "recipient crashed"})
			break
		}
		e.record(trace.Event{Time: e.now, Kind: trace.KindDeliver, PID: int(ev.pid), MsgTag: tagOf(ev.payload)})
		e.procs[ev.pid].OnMessage(ev.payload)
	case evTimer:
		if e.crashed[ev.pid] {
			break
		}
		e.record(trace.Event{Time: e.now, Kind: trace.KindTimer, PID: int(ev.pid), Detail: fmt.Sprintf("tag=%d", ev.tag)})
		e.procs[ev.pid].OnTimer(ev.tag)
	}
	e.notifyAfter()
}

func (e *Engine) notifyAfter() {
	for _, f := range e.afterEvent {
		f(e.now)
	}
}

func (e *Engine) broadcast(from PID, payload any) {
	if e.crashed[from] {
		return
	}
	pc := e.partialCrash[from]
	partial := pc != nil && e.now >= pc.after
	e.record(trace.Event{Time: e.now, Kind: trace.KindBroadcast, PID: int(from), MsgTag: tagOf(payload)})
	for to := range e.procs {
		if partial && e.rng.Float64() >= pc.deliverProb {
			e.record(trace.Event{Time: e.now, Kind: trace.KindDrop, PID: to, MsgTag: tagOf(payload), Detail: "sender crashed mid-broadcast"})
			continue
		}
		d, ok := e.cfg.Net.Delay(e.now, e.rng)
		if !ok {
			e.record(trace.Event{Time: e.now, Kind: trace.KindDrop, PID: to, MsgTag: tagOf(payload), Detail: "lost"})
			continue
		}
		if d < 1 {
			d = 1
		}
		e.push(&event{time: e.now + d, kind: evDeliver, pid: PID(to), payload: payload})
	}
	if partial {
		e.partialCrash[from] = nil
		e.crashed[from] = true
		e.record(trace.Event{Time: e.now, Kind: trace.KindCrash, PID: int(from), Detail: "mid-broadcast"})
	}
}

func (e *Engine) setTimer(p PID, d Time, tag int) {
	if d < 1 {
		d = 1
	}
	e.push(&event{time: e.now + d, kind: evTimer, pid: p, tag: tag})
}

func (e *Engine) push(ev *event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.queue, ev)
}

func (e *Engine) record(ev trace.Event) {
	if e.cfg.Recorder != nil {
		e.cfg.Recorder.Record(ev)
	}
}

// Note records a custom trace event on behalf of process p; algorithms use
// it (via Env.Note) to mark decisions and failure-detector output changes.
func (e *Engine) note(p PID, kind trace.Kind, tag, detail string) {
	e.record(trace.Event{Time: e.now, Kind: kind, PID: int(p), MsgTag: tag, Detail: detail})
}

func tagOf(payload any) string {
	if t, ok := payload.(Tagger); ok {
		return t.MsgTag()
	}
	return fmt.Sprintf("%T", payload)
}
