package sim

import (
	"fmt"
	"math/rand"
)

// Model decides the fate of each message copy: its delivery latency, or
// loss. A Model sees only the send time and the random source, which keeps
// link behaviour identical in distribution across all directed links, as in
// the paper's model.
type Model interface {
	// Delay returns the latency for one message copy sent at time t, or
	// ok=false if the copy is lost. Latencies must be >= 1.
	Delay(t Time, r *rand.Rand) (d Time, ok bool)
	// String describes the model for traces and experiment logs.
	String() string
}

// Async is the HAS[∅] network: reliable asynchronous links. Every copy is
// delivered after a finite delay drawn uniformly from [MinDelay, MaxDelay].
// There is no bound the algorithms may rely on; the parameters only shape
// the adversary within fairness.
type Async struct {
	MinDelay Time // default 1
	MaxDelay Time // default 10
}

// Delay implements Model.
func (a Async) Delay(_ Time, r *rand.Rand) (Time, bool) {
	lo, hi := a.MinDelay, a.MaxDelay
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo + Time(r.Int63n(int64(hi-lo+1))), true
}

func (a Async) String() string {
	return fmt.Sprintf("async[%d..%d]", max(a.MinDelay, 1), max(a.MaxDelay, max(a.MinDelay, 1)))
}

// PartialSync is the HPS[∅] network: eventually timely links. Copies sent
// at or after GST are delivered within Delta. Copies sent before GST are
// lost with probability PreLoss, and otherwise delayed up to PreMax (which
// may land after GST — "arbitrary but finite").
//
// PreLoss = 0 keeps the links reliable (the model permits, but does not
// require, pre-GST loss). That lossless configuration simultaneously
// satisfies HPS (for the Fig. 6 detector) and the HAS reliability the
// consensus layer assumes, which is exactly the setting of the paper's
// combined partial-synchrony result. Use PreLoss > 0 when exercising the
// detector's loss tolerance alone.
//
// GST and Delta are, of course, unknown to the algorithms; they exist only
// in the model.
type PartialSync struct {
	GST     Time
	Delta   Time    // default 5
	PreLoss float64 // 0 = reliable links
	PreMax  Time    // default 4*Delta
}

// Delay implements Model.
func (p PartialSync) Delay(t Time, r *rand.Rand) (Time, bool) {
	delta := p.Delta
	if delta < 1 {
		delta = 5
	}
	if t >= p.GST {
		return 1 + Time(r.Int63n(int64(delta))), true
	}
	if p.PreLoss > 0 && r.Float64() < p.PreLoss {
		return 0, false
	}
	preMax := p.PreMax
	if preMax < 1 {
		preMax = 4 * delta
	}
	return 1 + Time(r.Int63n(int64(preMax))), true
}

func (p PartialSync) String() string {
	return fmt.Sprintf("partial-sync[GST=%d δ=%d]", p.GST, p.Delta)
}

// Timely is a fully synchronous-latency network for the event engine: every
// copy is delivered after exactly Delta units. Lock-step executions (HSS)
// use the dedicated SyncEngine instead; Timely is useful as a best-case
// network and for tests that need exact delivery times.
type Timely struct {
	Delta Time // default 1
}

// Delay implements Model.
func (s Timely) Delay(_ Time, _ *rand.Rand) (Time, bool) {
	if s.Delta < 1 {
		return 1, true
	}
	return s.Delta, true
}

func (s Timely) String() string { return fmt.Sprintf("timely[δ=%d]", max(s.Delta, 1)) }

var (
	_ Model = Async{}
	_ Model = PartialSync{}
	_ Model = Timely{}
)
