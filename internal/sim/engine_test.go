package sim

import (
	"sync/atomic"
	"testing"

	"repro/internal/ident"
	"repro/internal/trace"
)

// echoProc broadcasts one HELLO at init and counts everything it receives.
type echoProc struct {
	env      Environment
	received []any
	timers   []int
}

type hello struct{ From ident.ID }

func (hello) MsgTag() string { return "HELLO" }

func (p *echoProc) Init(env Environment) {
	p.env = env
	env.Broadcast(hello{From: env.ID()})
}
func (p *echoProc) OnMessage(payload any) { p.received = append(p.received, payload) }
func (p *echoProc) OnTimer(tag int)       { p.timers = append(p.timers, tag) }

func newEngine(t *testing.T, ids ident.Assignment, net Model, seed int64) (*Engine, []*echoProc) {
	t.Helper()
	rec := trace.NewRecorder()
	eng := New(Config{IDs: ids, Net: net, Seed: seed, Recorder: rec})
	procs := make([]*echoProc, ids.N())
	for i := range procs {
		procs[i] = &echoProc{}
		eng.AddProcess(procs[i])
	}
	return eng, procs
}

func TestBroadcastReachesAllIncludingSelf(t *testing.T) {
	eng, procs := newEngine(t, ident.Unique(4), Async{MaxDelay: 5}, 1)
	eng.Run(100)
	for i, p := range procs {
		if got := len(p.received); got != 4 {
			t.Errorf("process %d received %d messages, want 4 (one per sender incl. self)", i, got)
		}
	}
}

func TestReceiverCannotSeeSenderLink(t *testing.T) {
	// The payload is all a receiver gets; with homonyms the sender is
	// genuinely ambiguous. This is a compile-shape test of the model: two
	// homonymous processes send identical payloads.
	eng, procs := newEngine(t, ident.AnonymousN(3), Async{}, 7)
	eng.Run(100)
	for _, p := range procs {
		for _, m := range p.received {
			if m.(hello).From != ident.Anonymous {
				t.Fatalf("unexpected payload %v", m)
			}
		}
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	eng, procs := newEngine(t, ident.Unique(3), Timely{Delta: 5}, 3)
	eng.CrashAt(2, 1) // crashes before any delivery at t=5
	eng.Run(100)
	if got := len(procs[2].received); got != 0 {
		t.Errorf("crashed process received %d messages, want 0", got)
	}
	if !eng.Crashed(2) {
		t.Error("process 2 should be crashed")
	}
	for i := 0; i < 2; i++ {
		if got := len(procs[i].received); got != 3 {
			t.Errorf("process %d received %d, want 3 (crash at t=1 is after t=0 broadcasts)", i, got)
		}
	}
}

func TestCorrectSetExcludesScheduledCrashes(t *testing.T) {
	eng, _ := newEngine(t, ident.Unique(4), Async{}, 5)
	eng.CrashAt(1, 50)
	got := eng.CorrectSet()
	want := []PID{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("CorrectSet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CorrectSet = %v, want %v", got, want)
		}
	}
	ids := eng.CorrectIDs()
	if len(ids) != 3 {
		t.Fatalf("CorrectIDs = %v", ids)
	}
}

func TestTimerFires(t *testing.T) {
	eng := New(Config{IDs: ident.Unique(1), Seed: 1})
	p := &timerProc{}
	eng.AddProcess(p)
	eng.Run(100)
	if len(p.fired) != 3 {
		t.Fatalf("timers fired = %v, want 3 chained firings", p.fired)
	}
	for i, at := range []Time{10, 20, 30} {
		if p.fired[i] != at {
			t.Errorf("timer %d fired at %d, want %d", i, p.fired[i], at)
		}
	}
}

type timerProc struct {
	env   Environment
	fired []Time
}

func (p *timerProc) Init(env Environment) {
	p.env = env
	env.SetTimer(10, 0)
}
func (p *timerProc) OnMessage(any) {}
func (p *timerProc) OnTimer(tag int) {
	p.fired = append(p.fired, p.env.Now())
	if len(p.fired) < 3 {
		p.env.SetTimer(10, tag)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []trace.Event {
		rec := trace.NewRecorder()
		eng := New(Config{IDs: ident.Balanced(5, 2), Net: Async{MaxDelay: 7}, Seed: 42, Recorder: rec})
		for i := 0; i < 5; i++ {
			eng.AddProcess(&echoProc{})
		}
		eng.CrashAt(4, 3)
		eng.Run(200)
		return rec.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	run := func(seed int64) []trace.Event {
		rec := trace.NewRecorder()
		eng := New(Config{IDs: ident.Unique(5), Net: Async{MaxDelay: 20}, Seed: seed, Recorder: rec})
		for i := 0; i < 5; i++ {
			eng.AddProcess(&echoProc{})
		}
		eng.Run(200)
		return rec.Events()
	}
	a, b := run(1), run(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical executions; adversary is not random")
	}
}

func TestPartialSyncDropsOnlyBeforeGST(t *testing.T) {
	rec := trace.NewRecorder()
	net := PartialSync{GST: 50, Delta: 3, PreLoss: 1.0, PreMax: 10}
	eng := New(Config{IDs: ident.Unique(2), Net: net, Seed: 9, Recorder: rec})
	var procs []*pollster
	for i := 0; i < 2; i++ {
		p := &pollster{}
		procs = append(procs, p)
		eng.AddProcess(p)
	}
	eng.Run(100)
	// With PreLoss=1 every pre-GST copy is dropped; every post-GST copy
	// must arrive within Delta.
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindDeliver && ev.Time < 50 {
			t.Errorf("delivery at t=%d before GST despite PreLoss=1", ev.Time)
		}
	}
	for _, p := range procs {
		if len(p.received) == 0 {
			t.Error("no post-GST deliveries; links not eventually timely")
		}
	}
	for _, lat := range latencies(rec.Events(), 50) {
		if lat > 3 {
			t.Errorf("post-GST latency %d exceeds δ=3", lat)
		}
	}
}

// pollster broadcasts every 5 units forever.
type pollster struct {
	env      Environment
	received []any
}

func (p *pollster) Init(env Environment) {
	p.env = env
	env.Broadcast(hello{From: env.ID()})
	env.SetTimer(5, 0)
}
func (p *pollster) OnMessage(m any) { p.received = append(p.received, m) }
func (p *pollster) OnTimer(tag int) {
	p.env.Broadcast(hello{From: p.env.ID()})
	p.env.SetTimer(5, tag)
}

// latencies pairs broadcast and deliver events after the cutoff. With a
// per-broadcast fan-out this is approximate, so it conservatively computes
// delivery_time - latest_broadcast_time <= observed bound.
func latencies(events []trace.Event, cutoff int64) []int64 {
	var lastBroadcast int64
	var out []int64
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindBroadcast:
			lastBroadcast = ev.Time
		case trace.KindDeliver:
			if ev.Time >= cutoff && lastBroadcast >= cutoff {
				out = append(out, ev.Time-lastBroadcast)
			}
		}
	}
	return out
}

func TestCrashDuringBroadcastDeliversSubset(t *testing.T) {
	// With deliverProb 0.5 over many recipients, some but not all copies
	// of the final broadcast should arrive, and the sender must be crashed.
	n := 40
	rec := trace.NewRecorder()
	eng := New(Config{IDs: ident.Unique(n), Net: Timely{Delta: 1}, Seed: 11, Recorder: rec})
	procs := make([]*pollster, n)
	for i := range procs {
		procs[i] = &pollster{}
		eng.AddProcess(procs[i])
	}
	eng.CrashDuringBroadcast(0, 4, 0.5)
	eng.Run(9) // p0 broadcasts at t=0 and t=5; the t=5 one is partial
	if !eng.Crashed(0) {
		t.Fatal("process 0 should have crashed during its t=5 broadcast")
	}
	delivered := 0
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindDrop && ev.Detail == "sender crashed mid-broadcast" {
			delivered++ // count drops to confirm partial delivery happened
		}
	}
	if delivered == 0 || delivered == n {
		t.Errorf("mid-broadcast drops = %d, want strictly between 0 and %d", delivered, n)
	}
}

func TestMaxEventsGuard(t *testing.T) {
	eng := New(Config{IDs: ident.Unique(1), Seed: 1, MaxEvents: 10})
	eng.AddProcess(&foreverTimer{})
	eng.Run(1 << 40)
	if eng.Processed() > 10 {
		t.Errorf("processed %d events, guard was 10", eng.Processed())
	}
}

type foreverTimer struct{ env Environment }

func (p *foreverTimer) Init(env Environment) { p.env = env; env.SetTimer(1, 0) }
func (p *foreverTimer) OnMessage(any)        {}
func (p *foreverTimer) OnTimer(tag int)      { p.env.SetTimer(1, tag) }

func TestRunUntilPredicate(t *testing.T) {
	eng, procs := newEngine(t, ident.Unique(3), Timely{Delta: 2}, 1)
	eng.RunUntil(100, func() bool { return len(procs[0].received) >= 2 })
	if got := len(procs[0].received); got != 2 {
		t.Errorf("stopped with %d received, want exactly 2", got)
	}
}

func TestKnownNVisibility(t *testing.T) {
	eng := New(Config{IDs: ident.Unique(3), Seed: 1, KnownN: true})
	p := &echoProc{}
	eng.AddProcess(p)
	eng.AddProcess(&echoProc{})
	eng.AddProcess(&echoProc{})
	eng.Run(10)
	if n, ok := p.env.N(); !ok || n != 3 {
		t.Errorf("N() = %d,%v want 3,true", n, ok)
	}

	eng2 := New(Config{IDs: ident.Unique(2), Seed: 1})
	q := &echoProc{}
	eng2.AddProcess(q)
	eng2.AddProcess(&echoProc{})
	eng2.Run(10)
	if _, ok := q.env.N(); ok {
		t.Error("N() should be unknown when KnownN is false")
	}
}

func TestEngineAccessors(t *testing.T) {
	rec := trace.NewRecorder()
	eng := New(Config{IDs: ident.Unique(2), Net: Timely{Delta: 1}, Seed: 1, Recorder: rec})
	p := &echoProc{}
	eng.AddProcess(p)
	eng.AddProcess(&echoProc{})
	samples := 0
	eng.AfterEvent(func(now Time, p PID) { samples++ })
	eng.Run(20)
	if eng.Now() == 0 {
		t.Error("Now should advance past 0 after deliveries")
	}
	if samples == 0 {
		t.Error("AfterEvent observer never fired")
	}
	if got := eng.IDs().N(); got != 2 {
		t.Errorf("IDs().N() = %d", got)
	}
	env := eng.Env(0)
	if env.ID() != eng.IDs()[0] || env.PID() != 0 {
		t.Errorf("Env(0) = id %v pid %v", env.ID(), env.PID())
	}
	if env.Rand() == nil {
		t.Error("Rand is nil")
	}
	env.Note(trace.KindNote, "X", "detail")
	found := false
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindNote && ev.MsgTag == "X" {
			found = true
		}
	}
	if !found {
		t.Error("Note event not recorded")
	}
}

func TestEngineSetupPanics(t *testing.T) {
	t.Run("too many processes", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		eng := New(Config{IDs: ident.Unique(1), Seed: 1})
		eng.AddProcess(&echoProc{})
		eng.AddProcess(&echoProc{})
	})
	t.Run("too few processes", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		eng := New(Config{IDs: ident.Unique(2), Seed: 1})
		eng.AddProcess(&echoProc{})
		eng.Run(10)
	})
	t.Run("invalid assignment", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		New(Config{IDs: ident.Assignment{}, Seed: 1})
	})
	t.Run("add after start", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		eng := New(Config{IDs: ident.Unique(1), Seed: 1})
		eng.AddProcess(&echoProc{})
		eng.Run(10)
		eng.AddProcess(&echoProc{})
	})
}

// moduleEnv accessors are normally exercised from other packages; cover
// them here too so the package documents its own contract.
func TestModuleEnvAccessors(t *testing.T) {
	eng := New(Config{IDs: ident.Unique(1), Seed: 4, KnownN: true})
	probe := &envProbe{}
	eng.AddProcess(NewNode().Add("m", probe))
	eng.Run(10)
	if probe.id != eng.IDs()[0] || probe.pid != 0 || probe.n != 1 || !probe.nOK {
		t.Errorf("module env saw id=%v pid=%v n=%d ok=%v", probe.id, probe.pid, probe.n, probe.nOK)
	}
	if !probe.randOK || probe.now < 0 {
		t.Error("module env Rand/Now not functional")
	}
}

type envProbe struct {
	id     ident.ID
	pid    PID
	n      int
	nOK    bool
	now    Time
	randOK bool
}

func (e *envProbe) Init(env Environment) {
	e.id = env.ID()
	e.pid = env.PID()
	e.n, e.nOK = env.N()
	e.now = env.Now()
	e.randOK = env.Rand() != nil
	env.Note(trace.KindNote, "probe", "init")
}
func (e *envProbe) OnMessage(any) {}
func (e *envProbe) OnTimer(int)   {}

func TestModuleNegativeTimerTagPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative module timer tag")
		}
	}()
	eng := New(Config{IDs: ident.Unique(1), Seed: 1})
	eng.AddProcess(NewNode().Add("m", &badTimerMod{}))
	eng.Run(5)
}

type badTimerMod struct{}

func (m *badTimerMod) Init(env Environment) { env.SetTimer(1, -1) }
func (m *badTimerMod) OnMessage(any)        {}
func (m *badTimerMod) OnTimer(int)          {}

// TestCorrectSetCrashThenQueryOrdering is the regression test for the
// incremental pending-crash bookkeeping: CorrectSet must give the same
// answer at every interleaving of scheduling, firing, and querying —
// including duplicate crash schedules for one process and crashes
// scheduled for already-crashed processes.
func TestCorrectSetCrashThenQueryOrdering(t *testing.T) {
	eng, _ := newEngine(t, ident.Unique(4), Timely{Delta: 2}, 1)
	// Two crash events for p1 (the schedule API allows duplicates) and one
	// for p2, later.
	eng.CrashAt(1, 10)
	eng.CrashAt(1, 20)
	eng.CrashAt(2, 30)

	correct := func() map[PID]bool {
		out := map[PID]bool{}
		for _, p := range eng.CorrectSet() {
			out[p] = true
		}
		return out
	}
	// Before running: both scheduled processes are excluded.
	if c := correct(); !c[0] || c[1] || c[2] || !c[3] {
		t.Fatalf("pre-run CorrectSet = %v", eng.CorrectSet())
	}
	// Query after every event: the answer must be stable at every point —
	// a scheduled-but-unfired crash excludes exactly like a fired one.
	eng.AfterEvent(func(now Time, p PID) {
		if c := correct(); !c[0] || c[1] || c[2] || !c[3] {
			t.Fatalf("t=%d: CorrectSet = %v", now, eng.CorrectSet())
		}
	})
	eng.Run(100)
	if !eng.Crashed(1) || !eng.Crashed(2) {
		t.Fatal("scheduled crashes did not fire")
	}
	if got := len(eng.CorrectSet()); got != 2 {
		t.Fatalf("final CorrectSet size = %d, want 2", got)
	}
	if ids := eng.CorrectIDs(); len(ids) != 2 {
		t.Fatalf("CorrectIDs = %v", ids)
	}
}

// TestCorrectSetWithCrashDuringBroadcast pins the interaction between the
// pending-crash counters and the partial-crash path: a process marked
// CrashDuringBroadcast is excluded from CorrectSet before, during and
// after its final partial broadcast, and combining both crash APIs on one
// process cannot resurrect it.
func TestCorrectSetWithCrashDuringBroadcast(t *testing.T) {
	eng := New(Config{IDs: ident.Unique(6), Net: Timely{Delta: 1}, Seed: 3})
	procs := make([]*pollster, 6)
	for i := range procs {
		procs[i] = &pollster{}
		eng.AddProcess(procs[i])
	}
	eng.CrashDuringBroadcast(0, 4, 0.5)
	// p0 also has a (redundant) timed crash after the partial one fires.
	eng.CrashAt(0, 50)
	eng.CrashAt(1, 8)

	sawDuring := false
	eng.AfterEvent(func(now Time, p PID) {
		for _, q := range eng.CorrectSet() {
			if q == 0 || q == 1 {
				t.Fatalf("t=%d: process %d in CorrectSet despite scheduled/partial crash", now, q)
			}
		}
		if eng.Crashed(0) {
			sawDuring = true
		}
	})
	eng.Run(100)
	if !eng.Crashed(0) {
		t.Fatal("process 0 never crashed during broadcast")
	}
	if !sawDuring {
		t.Fatal("observer never saw the post-crash state")
	}
	// All crash events drained: CorrectSet must now be exactly {2,3,4,5}.
	got := eng.CorrectSet()
	want := []PID{2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("CorrectSet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CorrectSet = %v, want %v", got, want)
		}
	}
}

// TestAfterEventReportsEventProcess pins the AfterEvent contract: the
// callback receives the PID the event concerned, and -1 exactly once for
// the initial time-0 notification.
func TestAfterEventReportsEventProcess(t *testing.T) {
	eng := New(Config{IDs: ident.Unique(3), Net: Timely{Delta: 2}, Seed: 1})
	for i := 0; i < 3; i++ {
		eng.AddProcess(&echoProc{})
	}
	eng.CrashAt(2, 1)
	inits, events := 0, 0
	eng.AfterEvent(func(now Time, p PID) {
		if p == -1 {
			inits++
			if now != 0 {
				t.Fatalf("init notification at t=%d", now)
			}
			return
		}
		events++
		if p < 0 || int(p) >= 3 {
			t.Fatalf("event PID %d out of range", p)
		}
	})
	eng.Run(50)
	if inits != 1 {
		t.Fatalf("got %d init notifications, want 1", inits)
	}
	if events != eng.Processed() {
		t.Fatalf("observer saw %d events, engine processed %d", events, eng.Processed())
	}
}

// TestEventQueueOrdering is a property test for the value-typed 4-ary
// heap: pushes with random times must pop in nondecreasing (time, seq)
// order, FIFO among equal times.
func TestEventQueueOrdering(t *testing.T) {
	eng := New(Config{IDs: ident.Unique(1), Seed: 99})
	rng := eng.rng
	for i := 0; i < 5000; i++ {
		eng.push(event{time: Time(rng.Int63n(50)), kind: evTimer, pid: 0, arg: int32(i)})
	}
	lastTime := Time(-1)
	lastSeq := uint64(0)
	for i := 0; i < 5000; i++ {
		ev := eng.pop()
		if ev.time < lastTime || (ev.time == lastTime && ev.seq < lastSeq) {
			t.Fatalf("pop %d out of order: t=%d seq=%d after t=%d seq=%d", i, ev.time, ev.seq, lastTime, lastSeq)
		}
		lastTime, lastSeq = ev.time, ev.seq
	}
	if len(eng.queue) != 0 {
		t.Fatalf("queue not drained: %d left", len(eng.queue))
	}
}

// TestTraceOffNoTagComputation pins the lazy-trace contract: with a nil
// recorder the engine must not call MsgTag or format details.
func TestTraceOffNoTagComputation(t *testing.T) {
	eng := New(Config{IDs: ident.Unique(2), Net: Timely{Delta: 1}, Seed: 1})
	probes := []*tagCounter{{}, {}}
	eng.AddProcess(probes[0])
	eng.AddProcess(probes[1])
	eng.Run(20)
	if n := tagCalls.Load(); n != 0 {
		t.Fatalf("MsgTag called %d times with tracing off", n)
	}
}

var tagCalls atomic.Int64

type countedPayload struct{}

func (countedPayload) MsgTag() string { tagCalls.Add(1); return "COUNTED" }

type tagCounter struct{ env Environment }

func (p *tagCounter) Init(env Environment) { p.env = env; env.Broadcast(countedPayload{}) }
func (p *tagCounter) OnMessage(any)        {}
func (p *tagCounter) OnTimer(int)          {}
