package sim

import (
	"testing"

	"repro/internal/ident"
	"repro/internal/trace"
)

// identSender is the shape of the paper's synchronous algorithms: broadcast
// your identity each step, collect what arrives.
type identSender struct {
	perStep [][]ident.ID
}

type identMsg struct{ ID ident.ID }

func (identMsg) MsgTag() string { return "IDENT" }

func (p *identSender) StepSend(env *SyncEnv) []any {
	return []any{identMsg{ID: env.ID()}}
}

func (p *identSender) StepRecv(_ *SyncEnv, received []any) {
	var ids []ident.ID
	for _, m := range received {
		ids = append(ids, m.(identMsg).ID)
	}
	p.perStep = append(p.perStep, ids)
}

func newSync(t *testing.T, ids ident.Assignment, seed int64) (*SyncEngine, []*identSender) {
	t.Helper()
	eng := NewSync(SyncConfig{IDs: ids, Seed: seed, Recorder: trace.NewRecorder()})
	procs := make([]*identSender, ids.N())
	for i := range procs {
		procs[i] = &identSender{}
		eng.AddProcess(procs[i])
	}
	return eng, procs
}

func TestSyncStepDeliversAll(t *testing.T) {
	eng, procs := newSync(t, ident.Balanced(4, 2), 1)
	eng.RunSteps(3)
	for i, p := range procs {
		if len(p.perStep) != 3 {
			t.Fatalf("process %d saw %d steps, want 3", i, len(p.perStep))
		}
		for s, ids := range p.perStep {
			if len(ids) != 4 {
				t.Errorf("process %d step %d received %d idents, want 4", i, s+1, len(ids))
			}
		}
	}
}

func TestSyncCrashAtStep(t *testing.T) {
	eng, procs := newSync(t, ident.Unique(3), 2)
	eng.CrashAtStep(2, 2, 0) // deliverProb 0: nobody gets its step-2 broadcast
	eng.RunSteps(4)
	if !eng.Crashed(2) {
		t.Fatal("process 2 should be crashed after step 2")
	}
	// Step 1: everyone got 3. Steps 2..4: survivors get 2.
	for i := 0; i < 2; i++ {
		got := procs[i].perStep
		if len(got[0]) != 3 {
			t.Errorf("process %d step 1: %d idents, want 3", i, len(got[0]))
		}
		for s := 1; s < 4; s++ {
			if len(got[s]) != 2 {
				t.Errorf("process %d step %d: %d idents, want 2", i, s+1, len(got[s]))
			}
		}
	}
	// The crashed process stops observing steps after its crash step.
	if len(procs[2].perStep) != 1 {
		t.Errorf("crashed process observed %d steps, want 1 (it receives nothing in its crash step)", len(procs[2].perStep))
	}
}

func TestSyncCrashPartialBroadcast(t *testing.T) {
	// deliverProb 0.5 over many receivers: some but not all copies land.
	n := 30
	eng, procs := newSync(t, ident.Unique(n), 7)
	eng.CrashAtStep(0, 1, 0.5)
	eng.RunSteps(1)
	withCopy, withoutCopy := 0, 0
	crashedID := eng.IDs()[0]
	for i := 1; i < n; i++ {
		found := false
		for _, id := range procs[i].perStep[0] {
			if id == crashedID {
				found = true
			}
		}
		if found {
			withCopy++
		} else {
			withoutCopy++
		}
	}
	if withCopy == 0 || withoutCopy == 0 {
		t.Errorf("partial broadcast not partial: %d got copy, %d did not", withCopy, withoutCopy)
	}
}

func TestSyncCorrectSet(t *testing.T) {
	eng, _ := newSync(t, ident.Unique(5), 3)
	eng.CrashAtStep(1, 3, 1)
	eng.CrashAtStep(4, 9, 1)
	got := eng.CorrectSet()
	want := []PID{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("CorrectSet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CorrectSet = %v, want %v", got, want)
		}
	}
}

func TestSyncDeterminism(t *testing.T) {
	run := func() [][]ident.ID {
		eng, procs := newSync(t, ident.Balanced(6, 3), 99)
		eng.CrashAtStep(1, 2, 0.5)
		eng.RunSteps(5)
		var out [][]ident.ID
		for _, p := range procs {
			out = append(out, p.perStep...)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("step slice %d differs", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("entry %d/%d differs: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}
