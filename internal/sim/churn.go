package sim

import "fmt"

// ChurnEvent is one entry of a crash-recovery schedule: process P crashes
// (Recover=false) or recovers (Recover=true) at time At. Schedules are
// plain data so the same slice drives both the engine (ApplyChurn) and the
// ground truth (fd.NewGroundTruthFromChurn).
type ChurnEvent struct {
	P       PID
	At      Time
	Recover bool
}

// ChurnSpec generates deterministic crash-recovery churn: a fraction of
// the processes cycle down and up with configurable down-time. The
// schedule is a pure function of the spec and n — no randomness — so churn
// scenarios compose with the engine's seeded determinism and sweep
// byte-identically across worker counts.
type ChurnSpec struct {
	// Fraction of processes that churn (rounded to nearest, at least one
	// when > 0). Churners are spread evenly over the index space, so
	// homonymy groups (which Balanced assigns contiguously) all feel churn.
	Fraction float64
	// Start is the first crash time (default 20).
	Start Time
	// Down is how long each outage lasts (default 20).
	Down Time
	// Up is how long a churner stays up between recovery and its next
	// crash (default 30).
	Up Time
	// Cycles is the number of crash→recover cycles per churner (default 1).
	Cycles int
	// Stagger offsets successive churners' schedules so outages overlap
	// partially rather than aligning. Zero keeps all churners in phase.
	Stagger Time
	// FinalDown, when set, leaves each churner crashed after its last
	// cycle (no final recovery): churn degenerating into crash-stop.
	FinalDown bool
}

func (s ChurnSpec) defaults() ChurnSpec {
	if s.Start <= 0 {
		s.Start = 20
	}
	if s.Down <= 0 {
		s.Down = 20
	}
	if s.Up <= 0 {
		s.Up = 30
	}
	if s.Cycles <= 0 {
		s.Cycles = 1
	}
	if s.Stagger < 0 {
		s.Stagger = 0
	}
	return s
}

// Churners returns the process indexes that churn under this spec in a
// system of n processes.
func (s ChurnSpec) Churners(n int) []PID {
	if n <= 0 || s.Fraction <= 0 {
		return nil
	}
	k := int(s.Fraction*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([]PID, 0, k)
	for i := 0; i < k; i++ {
		// Spread churners evenly over [0, n).
		out = append(out, PID(i*n/k))
	}
	return out
}

// Events expands the spec into the full crash/recover schedule for a
// system of n processes, one churner's events after another's (ordered by
// process, then time; consumers — ApplyChurn, the ground truth — are
// order-insensitive).
func (s ChurnSpec) Events(n int) []ChurnEvent {
	s = s.defaults()
	var evs []ChurnEvent
	for i, p := range s.Churners(n) {
		at := s.Start + Time(i)*s.Stagger
		for c := 0; c < s.Cycles; c++ {
			evs = append(evs, ChurnEvent{P: p, At: at})
			at += s.Down
			if s.FinalDown && c == s.Cycles-1 {
				break
			}
			evs = append(evs, ChurnEvent{P: p, At: at, Recover: true})
			at += s.Up
		}
	}
	return evs
}

// String describes the spec for logs and experiment tables.
func (s ChurnSpec) String() string {
	d := s.defaults()
	tail := ""
	if d.FinalDown {
		tail = " final-down"
	}
	return fmt.Sprintf("churn[%.0f%% ×%d down=%d up=%d%s]", d.Fraction*100, d.Cycles, d.Down, d.Up, tail)
}

// ApplyChurn schedules every event of a churn schedule on the engine.
func (e *Engine) ApplyChurn(evs []ChurnEvent) {
	for _, ev := range evs {
		if ev.Recover {
			e.RecoverAt(ev.P, ev.At)
		} else {
			e.CrashAt(ev.P, ev.At)
		}
	}
}
