package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// LinkModel is an optional extension of Model for networks whose behaviour
// differs per directed link. When the engine's Net implements it, broadcast
// fan-out draws each copy's fate from LinkDelay(from, to) instead of the
// link-symmetric Delay. The base Delay remains the model's "typical link"
// description (used by String and by consumers that cannot name links).
type LinkModel interface {
	Model
	// LinkDelay returns the latency of the copy sent at time t along the
	// directed link from→to, or ok=false if that copy is lost.
	LinkDelay(t Time, from, to PID, r *rand.Rand) (d Time, ok bool)
}

// Pareto is a heavy-tailed reliable network: delays follow a truncated
// Pareto distribution with scale (minimum) Scale and shape Alpha. Small
// Alpha means a heavier tail — for Alpha <= 1 the untruncated distribution
// has infinite mean. Cap truncates the tail so that every execution is
// eventually timely (delays are bounded by Cap), which keeps adaptive
// detectors convergent while still hammering them with rare, huge delays.
type Pareto struct {
	Scale Time    // minimum delay, default 1
	Alpha float64 // tail index, default 1.5
	Cap   Time    // max delay (tail truncation), default 200*Scale
}

func (p Pareto) params() (scale Time, alpha float64, cap Time) {
	scale = p.Scale
	if scale < 1 {
		scale = 1
	}
	alpha = p.Alpha
	if alpha <= 0 {
		alpha = 1.5
	}
	cap = p.Cap
	if cap < scale {
		cap = 200 * scale
	}
	return scale, alpha, cap
}

// Delay implements Model.
func (p Pareto) Delay(_ Time, r *rand.Rand) (Time, bool) {
	scale, alpha, cap := p.params()
	// Inverse-CDF sampling: X = scale / U^(1/alpha), U uniform in (0,1].
	u := 1 - r.Float64() // (0, 1]
	d := Time(float64(scale) * math.Pow(u, -1/alpha))
	if d < scale {
		d = scale
	}
	if d > cap {
		d = cap
	}
	return d, true
}

func (p Pareto) String() string {
	scale, alpha, cap := p.params()
	return fmt.Sprintf("pareto[xm=%d α=%.2f cap=%d]", scale, alpha, cap)
}

// LogNormal is a heavy-tailed reliable network with log-normally
// distributed delays: ln(d) ~ Normal(ln(Median), Sigma²). Sigma controls
// the tail weight; Cap truncates it (see Pareto).
type LogNormal struct {
	Median Time    // median delay, default 3
	Sigma  float64 // shape (log-space std dev), default 1
	Cap    Time    // max delay, default 200*Median
}

func (l LogNormal) params() (median Time, sigma float64, cap Time) {
	median = l.Median
	if median < 1 {
		median = 3
	}
	sigma = l.Sigma
	if sigma <= 0 {
		sigma = 1
	}
	cap = l.Cap
	if cap < 1 {
		cap = 200 * median
	}
	return median, sigma, cap
}

// Delay implements Model.
func (l LogNormal) Delay(_ Time, r *rand.Rand) (Time, bool) {
	median, sigma, cap := l.params()
	d := Time(math.Round(float64(median) * math.Exp(sigma*r.NormFloat64())))
	if d < 1 {
		d = 1
	}
	if d > cap {
		d = cap
	}
	return d, true
}

func (l LogNormal) String() string {
	median, sigma, cap := l.params()
	return fmt.Sprintf("lognormal[med=%d σ=%.2f cap=%d]", median, sigma, cap)
}

// Alternating is time-varying partial synchrony: the network cycles
// between good windows (delays within GoodDelta) and bad windows (delays
// up to BadMax, copies lost with probability BadLoss), each Period long,
// until CalmAfter — from then on every window is good, so the system is
// eventually timely with an effective GST of CalmAfter. CalmAfter = 0
// keeps the network oscillating forever (no convergence guarantee for
// eventually-timely detectors; use it for stress, not for class checks).
type Alternating struct {
	Period    Time    // window length, default 50
	GoodDelta Time    // good-window latency bound, default 3
	BadMax    Time    // bad-window max latency, default 10*GoodDelta
	BadLoss   float64 // bad-window loss probability
	CalmAfter Time    // time after which all windows are good
}

func (a Alternating) params() (period, good, bad Time) {
	period = a.Period
	if period < 1 {
		period = 50
	}
	good = a.GoodDelta
	if good < 1 {
		good = 3
	}
	bad = a.BadMax
	if bad < good {
		bad = 10 * good
	}
	return period, good, bad
}

// Delay implements Model.
func (a Alternating) Delay(t Time, r *rand.Rand) (Time, bool) {
	period, good, bad := a.params()
	inBad := (t/period)%2 == 1
	if a.CalmAfter > 0 && t >= a.CalmAfter {
		inBad = false
	}
	if !inBad {
		return 1 + Time(r.Int63n(int64(good))), true
	}
	if a.BadLoss > 0 && r.Float64() < a.BadLoss {
		return 0, false
	}
	return 1 + Time(r.Int63n(int64(bad))), true
}

func (a Alternating) String() string {
	period, good, bad := a.params()
	return fmt.Sprintf("alternating[T=%d δ=%d bad=%d loss=%.2f calm=%d]", period, good, bad, a.BadLoss, a.CalmAfter)
}

// AsymmetricLinks wraps a base model with a deterministic per-directed-link
// latency skew: link (from, to) adds a fixed offset in [0, MaxSkew] derived
// from the link's endpoints, so the triangle inequality and symmetry of the
// base model both break — p may hear q long before q hears p. The skew is a
// pure function of (from, to), not of the run's randomness, so two runs
// with equal seeds remain identical.
type AsymmetricLinks struct {
	Base    Model // default Async{}
	MaxSkew Time  // default 10
}

func (a AsymmetricLinks) base() Model {
	if a.Base == nil {
		return Async{}
	}
	return a.Base
}

func (a AsymmetricLinks) maxSkew() Time {
	if a.MaxSkew < 1 {
		return 10
	}
	return a.MaxSkew
}

// Skew returns the fixed extra latency of the directed link from→to.
func (a AsymmetricLinks) Skew(from, to PID) Time {
	// splitmix-style integer hash of the link endpoints: cheap, stateless,
	// and identical across runs and platforms.
	x := uint64(from)*0x9E3779B97F4A7C15 + uint64(to)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return Time(x % uint64(a.maxSkew()+1))
}

// Delay implements Model (the typical link: base delay plus median skew).
func (a AsymmetricLinks) Delay(t Time, r *rand.Rand) (Time, bool) {
	d, ok := a.base().Delay(t, r)
	if !ok {
		return 0, false
	}
	return d + a.maxSkew()/2, true
}

// LinkDelay implements LinkModel.
func (a AsymmetricLinks) LinkDelay(t Time, from, to PID, r *rand.Rand) (Time, bool) {
	d, ok := a.base().Delay(t, r)
	if !ok {
		return 0, false
	}
	return d + a.Skew(from, to), true
}

func (a AsymmetricLinks) String() string {
	return fmt.Sprintf("asym[%s skew<=%d]", a.base(), a.maxSkew())
}

var (
	_ Model     = Pareto{}
	_ Model     = LogNormal{}
	_ Model     = Alternating{}
	_ LinkModel = AsymmetricLinks{}
)
