// Package sim is a deterministic discrete-event simulator for homonymous
// message-passing systems, the substrate every algorithm in this repository
// runs on. It reproduces the paper's system model (§2):
//
//   - n processes Π, each knowing only its own identifier id(p); several
//     processes may share an identifier (homonymy). Internal process indexes
//     (PIDs) are a formalization tool and are never visible to algorithms.
//   - communication by broadcast(m): one copy of m is sent along the
//     directed link from the sender to every process, including itself; a
//     receiver cannot tell which link a message arrived on.
//   - crash failures: a crashed process stops taking steps; a process that
//     crashes while broadcasting delivers to an arbitrary subset. Beyond
//     the paper, the engine also runs crash-recovery churn (RecoverAt,
//     ChurnSpec schedules): recovery resumes the process where it paused,
//     and Recoverer implementations restart their timer chains.
//   - timing models: HAS (asynchronous, reliable links), HPS (partially
//     synchronous: messages sent after an unknown GST are delivered within
//     an unknown bound δ; earlier messages may be lost or delayed
//     arbitrarily but finitely), and HSS (synchronous lock-step; see the
//     SyncEngine in sync.go). models.go adds heavy-tailed, time-varying,
//     and per-link-asymmetric delay models for scenario sweeps.
//
// Executions are driven by a single seeded event queue, so every run is
// reproducible and costs (messages, virtual stabilization times) are exact.
// Per-message delivery fates (loss, partial-crash survival, per-link
// delay) are drawn from deterministic fate streams keyed by (seed,
// broadcast, recipient) — pure functions, re-evaluable in any order — so
// the lazy fan-out below reproduces the eager expansion bit for bit.
//
// # Hot-path design
//
// The deliver path is built to allocate nothing at steady state, and a
// broadcast costs O(1) queue space:
//
//   - queue events are 32-byte values in a 4-ary min-heap — no per-event
//     heap allocation, no pointer chasing;
//   - fan-out is lazy: a broadcast enqueues one evFanout entry instead of
//     n delivery copies; the entry delivers one delay-wave at a time
//     against live membership and re-enqueues itself for the next wave,
//     preserving the exact (time, seq) pop order the eager path would
//     produce (Config.EagerFanout retains the eager path as a
//     differential oracle). The queue high-water mark (MaxQueueLen)
//     therefore tracks live broadcasts, not n² copies in flight;
//   - all fan-out copies of one broadcast share a single refcounted slot in
//     the engine's payload table (freed to a freelist when the last copy
//     pops), instead of carrying the boxed payload once per copy;
//   - repeated payload values can be interned through the engine's
//     type-indexed arena (Intern), so periodic algorithms do not re-box
//     their messages every period;
//   - trace costs are pay-for-what-you-use: with a nil trace.Recorder the
//     engine formats nothing and computes no tags, and with a stats-only
//     recorder it counts event kinds without building tag/detail strings.
//
// TestUntracedDeliverZeroAlloc pins the zero-allocation property with
// testing.AllocsPerRun.
package sim
