package sim

import (
	"reflect"
	"testing"
)

func TestChurnSpecEvents(t *testing.T) {
	spec := ChurnSpec{Fraction: 0.5, Start: 10, Down: 5, Up: 20, Cycles: 2, Stagger: 3}
	evs := spec.Events(4)
	// 2 churners (0 and 2), 2 cycles each, crash+recover per cycle.
	if len(evs) != 8 {
		t.Fatalf("got %d events, want 8: %v", len(evs), evs)
	}
	want := []ChurnEvent{
		{P: 0, At: 10}, {P: 0, At: 15, Recover: true},
		{P: 0, At: 35}, {P: 0, At: 40, Recover: true},
		{P: 2, At: 13}, {P: 2, At: 18, Recover: true},
		{P: 2, At: 38}, {P: 2, At: 43, Recover: true},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("schedule mismatch:\n got %v\nwant %v", evs, want)
	}
	// Pure function: same spec, same schedule.
	if !reflect.DeepEqual(spec.Events(4), evs) {
		t.Fatal("schedule generation is not deterministic")
	}
}

func TestChurnSpecFinalDown(t *testing.T) {
	spec := ChurnSpec{Fraction: 1, Cycles: 2, FinalDown: true, Stagger: -1}
	evs := spec.Events(1)
	// crash, recover, crash — the last cycle omits the recovery.
	if len(evs) != 3 || evs[2].Recover {
		t.Fatalf("final-down schedule = %v, want trailing crash", evs)
	}
}

func TestChurnSpecFractionBounds(t *testing.T) {
	if got := (ChurnSpec{}).Churners(10); got != nil {
		t.Fatalf("zero fraction churns %v", got)
	}
	if got := (ChurnSpec{Fraction: 0.01}).Churners(10); len(got) != 1 {
		t.Fatalf("tiny fraction churns %v, want exactly one process", got)
	}
	if got := (ChurnSpec{Fraction: 5}).Churners(10); len(got) != 10 {
		t.Fatalf("fraction > 1 churns %v, want all", got)
	}
}

func TestApplyChurnMatchesEngineTruth(t *testing.T) {
	spec := ChurnSpec{Fraction: 0.3, Start: 15, Down: 10, Up: 12, Cycles: 3}
	eng, _ := newBeeperEngine(10, 17, nil)
	evs := spec.Events(10)
	eng.ApplyChurn(evs)

	// The schedule's view of eventual state: every churner recovers last.
	churners := spec.Churners(10)
	eng.Run(400)
	if eng.Stopped() != StopHorizon {
		t.Fatalf("run ended %v, want horizon", eng.Stopped())
	}
	up := map[PID]bool{}
	for _, p := range eng.EventuallyUpSet() {
		up[p] = true
	}
	if len(up) != 10 {
		t.Fatalf("EventuallyUpSet = %v, want all 10 (every cycle ends in recovery)", eng.EventuallyUpSet())
	}
	correct := map[PID]bool{}
	for _, p := range eng.CorrectSet() {
		correct[p] = true
	}
	for _, p := range churners {
		if correct[p] {
			t.Fatalf("churner %d in CorrectSet", p)
		}
	}
	if len(correct) != 10-len(churners) {
		t.Fatalf("CorrectSet size = %d, want %d", len(correct), 10-len(churners))
	}
	if eng.Recoveries() != len(churners)*3 {
		t.Fatalf("Recoveries = %d, want %d", eng.Recoveries(), len(churners)*3)
	}
}

func TestChurnedRunStaysDeterministic(t *testing.T) {
	digest := func() (int, int, Time) {
		eng, procs := newBeeperEngine(8, 23, nil)
		eng.ApplyChurn(ChurnSpec{Fraction: 0.25, Cycles: 2}.Events(8))
		eng.Run(250)
		heard := 0
		for _, p := range procs {
			heard += p.heard
		}
		return eng.Processed(), heard, eng.Now()
	}
	p1, h1, t1 := digest()
	p2, h2, t2 := digest()
	if p1 != p2 || h1 != h2 || t1 != t2 {
		t.Fatalf("churned runs diverged: (%d,%d,%d) vs (%d,%d,%d)", p1, h1, t1, p2, h2, t2)
	}
}

func TestChurnSpecString(t *testing.T) {
	s := ChurnSpec{Fraction: 0.2, Cycles: 2, Down: 25, Up: 30}.String()
	if s == "" {
		t.Fatal("empty churn description")
	}
}
