package sim

// Lazy broadcast fan-out.
//
// The engine used to expand a broadcast eagerly: n evDeliver events pushed
// into the heap at send time, one per recipient, each carrying its own
// delay drawn from the engine's main random stream. That makes the queue —
// and therefore memory — O(in-flight copies): at n = 50,000 one heartbeat
// wave alone is 2.5 billion queue entries.
//
// The lazy path keeps ONE live queue entry per in-flight broadcast. The
// trick that makes this possible without storing n delays is making every
// copy's fate a pure function: copy (b, to) of broadcast b draws its
// partial-crash survival, loss, and delay from a private splitmix64 stream
// keyed by (broadcast key, recipient index). Any pass over the recipients
// can then recompute every copy's fate at will, in any order, and always
// get the same answer — so the broadcast's expansion state compresses to
// "which wave is next" instead of "here are n scheduled copies".
//
// Delivery proceeds in waves, one per distinct delay value: the queue
// entry for a broadcast carries the current wave's delay d; popping it
// delivers every copy with fate delay == d (in recipient order, with the
// copy's reserved seq), while the same pass computes the next wave's delay
// (the minimum fate delay > d); the entry is then re-pushed at that wave's
// time, or retired when no wave remains. Because the broadcast reserves
// the contiguous seq interval its copies would have received from the
// eager path, the wave entry can always be keyed by the seq of its
// earliest undelivered copy, and the global (time, seq) pop order — and
// hence every trace byte and every downstream random draw — is identical
// to the eager expansion's. The eager path is retained behind
// Config.EagerFanout as the differential oracle for exactly that claim.
//
// Cost: a broadcast is Θ(n · waves) recipient-fate evaluations instead of
// n heap pushes and pops, where waves is the number of distinct delay
// values the model produces (bounded by the delay range, e.g. ≤ 10 for
// Async{MaxDelay: 10} — independent of n). Memory per in-flight broadcast
// drops from Θ(n) queue entries to one entry plus one fanout record.

import (
	"math/rand"

	"repro/internal/trace"
)

// fanSource is a splitmix64 rand.Source64. The engine keeps exactly one,
// wrapped in one reusable *rand.Rand, and reseeds it in place before every
// copy-fate evaluation: per-copy streams cost zero allocation, unlike
// rand.NewSource (which builds a ~5KB lagged-Fibonacci table per call).
type fanSource struct{ state uint64 }

func (s *fanSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (s *fanSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *fanSource) Seed(seed int64) { s.state = uint64(seed) }

var _ rand.Source64 = (*fanSource)(nil)

// fateSeed mixes a broadcast's fate key with a recipient index into the
// seed of that copy's private stream. The finalizer is splitmix64's, so
// adjacent recipients land in statistically unrelated streams.
func fateSeed(key uint64, to int) uint64 {
	x := key + (uint64(to)+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// nextFanKey returns the fate key for the next broadcast: a mix of the
// run's seed and the per-engine broadcast counter. Keys — and therefore
// every copy fate in the run — are a pure function of (Config.Seed,
// broadcast order), which is what keeps lazy and eager expansion, and
// serial and parallel sweeps, byte-identical.
func (e *Engine) nextFanKey() uint64 {
	e.bcasts++
	x := uint64(e.cfg.Seed) ^ (e.bcasts * 0xD1342543DE82EF95)
	x ^= x >> 32
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 32
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 32
	return x
}

// fateStatus classifies one copy's fate.
type fateStatus int8

const (
	// fateDeliver: the copy is scheduled with the returned delay.
	fateDeliver fateStatus = iota
	// fateLost: the network loses the copy (Model returned ok=false).
	fateLost
	// fatePartialDrop: the sender's CrashDuringBroadcast arm drops the copy.
	fatePartialDrop
)

// copyFate computes the fate of the copy of broadcast (key, sent, from,
// partial, prob) addressed to recipient `to`. It is a pure function of its
// arguments plus the engine's network model: callers may evaluate any
// copy, any number of times, in any order. Delays are clamped to >= 1
// exactly as the eager path clamps them.
func (e *Engine) copyFate(key uint64, sent Time, from int32, partial bool, prob float64, to int) (Time, fateStatus) {
	e.fanSrc.state = fateSeed(key, to)
	r := e.fanRand
	if partial && r.Float64() >= prob {
		return 0, fatePartialDrop
	}
	var d Time
	var ok bool
	if e.perLink {
		d, ok = e.linkNet.LinkDelay(sent, PID(from), PID(to), r)
	} else {
		d, ok = e.cfg.Net.Delay(sent, r)
	}
	if !ok {
		return 0, fateLost
	}
	if d < 1 {
		d = 1
	}
	return d, fateDeliver
}

// fanoutRec is the per-in-flight-broadcast state of the lazy path. The
// first six fields are fixed at broadcast time; delay/resumeI advance as
// waves complete. Records are recycled through a freelist, so at steady
// state broadcasting allocates nothing here.
type fanoutRec struct {
	key     uint64  // fate-stream key (nextFanKey)
	baseSeq uint64  // first seq of the reserved copy-seq interval
	sent    Time    // broadcast time, passed to Model.Delay as t
	slot    int32   // payload-table slot, freed when the record retires
	from    int32   // sender, for LinkModel fates
	partial bool    // CrashDuringBroadcast was armed for this broadcast
	prob    float64 // partial-crash per-copy deliver probability
	// delay is the current wave: copies whose fate delay equals it are
	// delivered when the wave entry pops.
	delay Time
	// resumeI is the recipient index delivery resumes at within the
	// current wave, after a mid-wave MaxEvents or predicate stop.
	resumeI int32
}

// allocFanout stores a record and returns its index.
func (e *Engine) allocFanout(f fanoutRec) int32 {
	if n := len(e.freeFans); n > 0 {
		idx := e.freeFans[n-1]
		e.freeFans = e.freeFans[:n-1]
		e.fanouts[idx] = f
		return idx
	}
	e.fanouts = append(e.fanouts, f)
	return int32(len(e.fanouts) - 1)
}

func (e *Engine) freeFanout(idx int32) {
	e.fanouts[idx] = fanoutRec{}
	e.freeFans = append(e.freeFans, idx)
}

// fanoutScan walks the recipients of a broadcast once at send time: it
// records the loss/partial-crash drop traces (at the broadcast instant,
// exactly as the eager path does), counts the scheduled copies, and finds
// the first wave — the minimum fate delay and the scheduled index of the
// first copy carrying it. tag is the broadcast's trace tag ("" when the
// recorder retains nothing).
func (e *Engine) fanoutScan(key uint64, from PID, partial bool, prob float64, tag string) (scheduled int, minDelay Time, firstK int32) {
	minDelay = -1
	for to := range e.procs {
		d, st := e.copyFate(key, e.now, int32(from), partial, prob, to)
		switch st {
		case fatePartialDrop:
			if e.rec != nil {
				if e.retain {
					e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindDrop, PID: to, MsgTag: tag, Detail: "sender crashed mid-broadcast"})
				} else {
					e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindDrop, PID: to})
				}
			}
		case fateLost:
			if e.rec != nil {
				if e.retain {
					e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindDrop, PID: to, MsgTag: tag, Detail: "lost"})
				} else {
					e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindDrop, PID: to})
				}
			}
		case fateDeliver:
			if minDelay < 0 || d < minDelay {
				minDelay = d
				firstK = int32(scheduled)
			}
			scheduled++
		}
	}
	return scheduled, minDelay, firstK
}

// deliverWave pops one wave of a lazy broadcast: every copy whose fate
// delay equals the record's current wave delay, in recipient order, each
// with its reserved seq. The same pass finds the next wave (minimum fate
// delay beyond the current one); the entry is re-pushed at that wave's
// time, or the record retires. Mid-wave stops (the MaxEvents guard, a
// RunUntil predicate) re-push the entry keyed by the seq of the first
// undelivered copy, so a later Run resumes exactly where the eager path
// would have.
//
// The record and payload are copied to locals up front: a delivered
// process may broadcast, growing e.fanouts/e.payloads and invalidating
// any held pointers.
func (e *Engine) deliverWave(ev event) StopReason {
	idx := ev.arg
	f := e.fanouts[idx]
	payload := e.payloads[f.slot].payload
	stop := StopNone
	resumeI := -1
	var resumeSeq uint64
	var nextDelay Time = -1
	var nextFirstK int32
	k := int32(0)
	for to := range e.procs {
		d, st := e.copyFate(f.key, f.sent, f.from, f.partial, f.prob, to)
		if st != fateDeliver {
			continue
		}
		ck := k
		k++
		if d < f.delay {
			continue // delivered in an earlier wave
		}
		if d > f.delay {
			if nextDelay < 0 || d < nextDelay {
				nextDelay = d
				nextFirstK = ck
			}
			continue
		}
		if to < int(f.resumeI) {
			continue // delivered before a mid-wave stop
		}
		if stop != StopNone {
			// Already stopping: just find the wave's resume point.
			if resumeI < 0 {
				resumeI = to
				resumeSeq = f.baseSeq + uint64(ck)
			}
			continue
		}
		if e.processed >= e.cfg.MaxEvents {
			stop = StopMaxEvents
			resumeI = to
			resumeSeq = f.baseSeq + uint64(ck)
			continue
		}
		e.deliverCopy(to, payload, f.baseSeq+uint64(ck))
		if e.done != nil && e.done() {
			stop = StopPredicate
		}
	}
	switch {
	case resumeI >= 0:
		e.fanouts[idx].resumeI = int32(resumeI)
		e.requeue(event{time: ev.time, seq: resumeSeq, kind: evFanout, pid: ev.pid, arg: idx})
	case nextDelay >= 0:
		e.fanouts[idx].delay = nextDelay
		e.fanouts[idx].resumeI = 0
		e.requeue(event{time: f.sent + nextDelay, seq: f.baseSeq + uint64(nextFirstK), kind: evFanout, pid: ev.pid, arg: idx})
	default:
		e.freeSlot(f.slot)
		e.freeFanout(idx)
	}
	return stop
}

// deliverCopy delivers (or drops, if the recipient is down) one fan-out
// copy. It is the lazy path's evDeliver arm: same traces, same counters,
// same observer notification, with seq the copy's reserved position in
// the global event order.
func (e *Engine) deliverCopy(to int, payload any, seq uint64) {
	e.curSeq = int64(seq)
	e.processed++
	pid := PID(to)
	if e.crashed[to] {
		if e.rec != nil {
			if e.retain {
				e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindDrop, PID: to, MsgTag: tagOf(payload), Detail: "recipient crashed"})
			} else {
				e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindDrop, PID: to})
			}
		}
		e.notifyAfter(pid)
		return
	}
	if e.rec != nil {
		if e.retain {
			e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindDeliver, PID: to, MsgTag: tagOf(payload)})
		} else {
			e.rec.Record(trace.Event{Time: e.now, Kind: trace.KindDeliver, PID: to})
		}
	}
	e.procs[to].OnMessage(payload)
	e.notifyAfter(pid)
}
