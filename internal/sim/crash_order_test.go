package sim

import (
	"testing"

	"repro/internal/ident"
	"repro/internal/trace"
)

// TestCrashScheduleDeterministicOrder registers many same-time crashes from
// a map and demands byte-identical executions across repeated runs.
// Simultaneous events are tie-broken by registration sequence, so scheduling
// straight from a map range (the bug CrashSchedule replaces) bakes the
// runtime's randomized iteration order into the trace.
func TestCrashScheduleDeterministicOrder(t *testing.T) {
	sched := map[PID]Time{0: 10, 1: 10, 2: 10, 3: 10, 5: 10, 6: 10}
	run := func() []trace.Event {
		rec := trace.NewRecorder()
		eng := New(Config{IDs: ident.Unique(8), Net: Async{MaxDelay: 7}, Seed: 3, Recorder: rec})
		for i := 0; i < 8; i++ {
			eng.AddProcess(&echoProc{})
		}
		eng.CrashSchedule(sched)
		eng.Run(100)
		return rec.Events()
	}
	base := run()
	var crashPIDs []int
	for _, ev := range base {
		if ev.Kind == trace.KindCrash {
			crashPIDs = append(crashPIDs, ev.PID)
		}
	}
	if len(crashPIDs) != len(sched) {
		t.Fatalf("recorded %d crash events, want %d", len(crashPIDs), len(sched))
	}
	for i := 1; i < len(crashPIDs); i++ {
		if crashPIDs[i-1] >= crashPIDs[i] {
			t.Fatalf("same-time crash events out of PID order: %v", crashPIDs)
		}
	}
	for rep := 0; rep < 10; rep++ {
		got := run()
		if len(got) != len(base) {
			t.Fatalf("rerun %d: event counts differ: %d vs %d", rep, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("rerun %d: event %d differs: %v vs %v", rep, i, got[i], base[i])
			}
		}
	}
}

// TestSyncCrashSameStepDeterministicOrder crashes several processes in the
// same synchronous step (registered deliberately out of PID order) and
// demands the recorded KindCrash events come out sorted and the whole trace
// replays identically — the crash sub-phase used to iterate its map of
// crashing processes in randomized order.
func TestSyncCrashSameStepDeterministicOrder(t *testing.T) {
	run := func() []trace.Event {
		rec := trace.NewRecorder()
		eng := NewSync(SyncConfig{IDs: ident.Unique(6), Seed: 2, Recorder: rec})
		for i := 0; i < 6; i++ {
			eng.AddProcess(&identSender{})
		}
		eng.CrashAtStep(5, 2, 1)
		eng.CrashAtStep(1, 2, 1)
		eng.CrashAtStep(3, 2, 1)
		eng.RunSteps(4)
		return rec.Events()
	}
	base := run()
	var crashPIDs []int
	for _, ev := range base {
		if ev.Kind == trace.KindCrash {
			crashPIDs = append(crashPIDs, ev.PID)
		}
	}
	if want := []int{1, 3, 5}; len(crashPIDs) != len(want) {
		t.Fatalf("recorded %d crash events, want %d", len(crashPIDs), len(want))
	} else {
		for i := range want {
			if crashPIDs[i] != want[i] {
				t.Fatalf("crash events in order %v, want %v", crashPIDs, want)
			}
		}
	}
	for rep := 0; rep < 10; rep++ {
		got := run()
		if len(got) != len(base) {
			t.Fatalf("rerun %d: event counts differ: %d vs %d", rep, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("rerun %d: event %d differs: %v vs %v", rep, i, got[i], base[i])
			}
		}
	}
}
