package sim

import (
	"reflect"
	"strconv"
)

// payloadSlot is one entry of the engine's broadcast payload table: the
// boxed payload plus the number of still-undelivered fan-out copies
// referencing it. 24 bytes; recycled through the engine's freelist.
type payloadSlot struct {
	payload any
	refs    int32
}

// arenaMaxPerType bounds the intern arena per payload type. Payload values
// that never repeat (monotone counters, unique intervals) would otherwise
// grow the arena with entries that are never hit; past the cap, Intern
// keeps serving existing entries but stops admitting new ones.
const arenaMaxPerType = 1 << 15

// payloadArena interns boxed payloads by (type, value). It is type-indexed:
// one map[T]any per payload type, discovered via reflect.TypeFor, so
// lookups never box the value being looked up. Engines are single-
// goroutine, so the arena needs no locking.
type payloadArena struct {
	tables map[reflect.Type]any // reflect.Type -> map[T]any
	cmp    map[reflect.Type]bool
	// canon records every box the arena handed out, so non-generic code
	// (the Node envelope wrapper) can ask "was this payload interned?"
	// without knowing its type. Only interned payloads propagate interning
	// outward — never-repeating values must not grow the arena.
	canon map[any]struct{}
}

// interned reports whether p is (value-equal to) a box this arena handed
// out. Callers must have established comparability first (comparableDyn):
// map lookup with an unhashable key panics.
func (a *payloadArena) interned(p any) bool {
	_, ok := a.canon[p]
	return ok
}

// interner is the optional Environment extension through which Intern
// reaches the engine's arena. Both engine-backed environments (*Env and
// the module environment of Node) implement it; other Environment
// implementations simply get Intern's boxing fallback.
type interner interface {
	payloadArena() *payloadArena
}

func (e *Env) payloadArena() *payloadArena { return &e.eng.arena }

// Intern returns a canonical boxed copy of v, allocated at most once per
// distinct value per engine. Broadcasting an interned payload is
// allocation-free: the usual conversion to `any` at the Broadcast call
// site hits the arena's existing box instead of the heap. Periodic
// algorithms (heartbeats, pollers) whose payload values repeat should
// wrap their broadcast payloads in it:
//
//	env.Broadcast(sim.Intern(env, Polling{Round: r, ID: env.ID()}))
//
// If env does not reach an engine arena, or the per-type cap is full,
// Intern degrades to a plain conversion. Interned payloads are shared
// across all processes of the engine (broadcast delivery already shares
// one payload among all receivers), so they must be treated as immutable
// — which the simulator's model requires of every payload anyway.
func Intern[T comparable](env Environment, v T) any {
	h, ok := env.(interner)
	if !ok {
		return v
	}
	a := h.payloadArena()
	if a == nil {
		return v
	}
	t := reflect.TypeFor[T]()
	var m map[T]any
	if tab, ok := a.tables[t]; ok {
		m = tab.(map[T]any)
	} else {
		m = make(map[T]any)
		if a.tables == nil {
			a.tables = make(map[reflect.Type]any)
		}
		a.tables[t] = m
	}
	if b, ok := m[v]; ok {
		return b
	}
	if len(m) >= arenaMaxPerType {
		return v
	}
	var b any = v
	m[v] = b
	if a.canon == nil {
		a.canon = make(map[any]struct{})
	}
	a.canon[b] = struct{}{}
	return b
}

// comparableDyn reports whether a payload's dynamic type supports ==
// (required before interning a value of that type through a map key). The
// verdict is cached per type.
func (a *payloadArena) comparableDyn(payload any) bool {
	rt := reflect.TypeOf(payload)
	if rt == nil {
		return false
	}
	if c, ok := a.cmp[rt]; ok {
		return c
	}
	c := rt.Comparable()
	if a.cmp == nil {
		a.cmp = make(map[reflect.Type]bool)
	}
	a.cmp[rt] = c
	return c
}

// timerDetails caches the "tag=N" detail strings for small timer tags, so
// traced timer events stop allocating one string per event. Tags are tiny
// in practice (module-multiplexed epochs); larger ones fall back to
// formatting.
var timerDetails = func() [64]string {
	var d [64]string
	for i := range d {
		d[i] = "tag=" + strconv.Itoa(i)
	}
	return d
}()

func timerDetail(tag int) string {
	if tag >= 0 && tag < len(timerDetails) {
		return timerDetails[tag]
	}
	return "tag=" + strconv.Itoa(tag)
}
