package sim

import (
	"math/rand"

	"repro/internal/ident"
	"repro/internal/trace"
)

// Time is virtual time. Timer durations and network delays are measured in
// the same abstract units; processes execute their steps instantaneously.
type Time = int64

// PID is the internal index of a process in Π. It exists for the simulator,
// crash schedules, and checkers; algorithm code must not use it.
type PID int

// Process is an event-driven algorithm instance. The simulator calls Init
// exactly once before any other method, then OnMessage for every delivered
// message and OnTimer for every expired timer. Calls for one process are
// strictly sequential, so implementations need no locking.
type Process interface {
	// Init gives the process its environment. Implementations typically
	// broadcast an initial message or set an initial timer here.
	Init(env Environment)
	// OnMessage delivers a broadcast payload. The receiver cannot identify
	// the sender link, matching the model.
	OnMessage(payload any)
	// OnTimer fires a timer previously set with Environment.SetTimer.
	OnTimer(tag int)
}

// Environment is a process's handle on the system. The engine provides the
// real implementation (*Env); node composition wraps it so that stacked
// modules share one simulated process (see Node).
type Environment interface {
	// ID returns this process's identifier id(p) — the only identity
	// knowledge a process starts with.
	ID() ident.ID
	// N returns the system size n and whether it is known. Only models
	// that grant initial knowledge of n (the paper's §5.2) report ok.
	N() (n int, ok bool)
	// Now returns the current virtual time.
	Now() Time
	// Rand returns the run's deterministic random source.
	Rand() *rand.Rand
	// Broadcast sends payload to every process, including the caller.
	Broadcast(payload any)
	// SetTimer schedules OnTimer(tag) after d units (clamped to >= 1).
	// Timers are one-shot and tags must be non-negative.
	SetTimer(d Time, tag int)
	// Note records a custom trace event (decision, detector change).
	Note(kind trace.Kind, tag, detail string)
	// PID returns the internal index, for traces and checkers only.
	PID() PID
}

// Tagger is implemented by payloads that want a message-type tag in traces
// and statistics (e.g. "POLLING", "PH1"). Untagged payloads are traced with
// their Go type name.
type Tagger interface {
	MsgTag() string
}

// Env is the engine-backed Environment given to top-level processes.
type Env struct {
	eng *Engine
	pid PID
}

var _ Environment = (*Env)(nil)

// ID implements Environment.
func (e *Env) ID() ident.ID { return e.eng.ids[e.pid] }

// N implements Environment.
func (e *Env) N() (n int, ok bool) {
	if !e.eng.cfg.KnownN {
		return 0, false
	}
	return len(e.eng.ids), true
}

// Now implements Environment.
func (e *Env) Now() Time { return e.eng.now }

// Rand implements Environment. Event processing order is deterministic, so
// draws are reproducible per seed.
func (e *Env) Rand() *rand.Rand { return e.eng.rng }

// Broadcast implements Environment. A crashed process's broadcasts are
// ignored.
func (e *Env) Broadcast(payload any) { e.eng.broadcast(e.pid, payload) }

// SetTimer implements Environment.
func (e *Env) SetTimer(d Time, tag int) { e.eng.setTimer(e.pid, d, tag) }

// PID implements Environment.
func (e *Env) PID() PID { return e.pid }

// Note implements Environment.
func (e *Env) Note(kind trace.Kind, tag, detail string) {
	e.eng.note(e.pid, kind, tag, detail)
}
