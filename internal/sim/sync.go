package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ident"
	"repro/internal/trace"
)

// SyncProcess is an algorithm for the synchronous model HSS[∅]: execution
// proceeds in lock-step steps. In each step every alive process first
// broadcasts (StepSend), then receives every message sent in the same step
// by processes that did not crash mid-broadcast (StepRecv). This is exactly
// the execution structure the paper's Fig. 7 HΣ implementation assumes.
type SyncProcess interface {
	// StepSend returns the payloads this process broadcasts in the current
	// step (usually exactly one).
	StepSend(env *SyncEnv) []any
	// StepRecv delivers all payloads broadcast in this step that reached
	// this process, in a deterministic order.
	StepRecv(env *SyncEnv, received []any)
}

// SyncEnv is the environment visible to a synchronous process.
type SyncEnv struct {
	eng *SyncEngine
	pid PID
}

// ID returns this process's identifier.
func (e *SyncEnv) ID() ident.ID { return e.eng.ids[e.pid] }

// Step returns the current step number, starting at 1.
func (e *SyncEnv) Step() int { return e.eng.step }

// Rand returns the run's deterministic random source.
func (e *SyncEnv) Rand() *rand.Rand { return e.eng.rng }

// PID returns the internal index, for traces and checkers only.
func (e *SyncEnv) PID() PID { return e.pid }

// SyncConfig describes a synchronous system.
type SyncConfig struct {
	IDs      ident.Assignment
	Seed     int64
	Recorder *trace.Recorder
}

// SyncEngine runs lock-step executions.
type SyncEngine struct {
	cfg       SyncConfig
	ids       ident.Assignment
	rng       *rand.Rand
	procs     []SyncProcess
	envs      []*SyncEnv
	crashed   []bool
	schedule  map[int][]syncCrash // step -> crashes happening in that step
	step      int
	afterStep []func(step int)
}

type syncCrash struct {
	pid         PID
	deliverProb float64
}

// NewSync builds a synchronous engine.
func NewSync(cfg SyncConfig) *SyncEngine {
	if err := cfg.IDs.Validate(); err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	return &SyncEngine{
		cfg:      cfg,
		ids:      cfg.IDs,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		crashed:  make([]bool, cfg.IDs.N()),
		schedule: make(map[int][]syncCrash),
	}
}

// AddProcess binds the next process and returns its index.
func (e *SyncEngine) AddProcess(p SyncProcess) PID {
	if len(e.procs) >= e.ids.N() {
		panic("sim: more processes than identities")
	}
	e.procs = append(e.procs, p)
	e.envs = append(e.envs, &SyncEnv{eng: e, pid: PID(len(e.procs) - 1)})
	return PID(len(e.procs) - 1)
}

// CrashAtStep schedules process p to crash during the given step (1-based):
// its broadcast in that step reaches each other process independently with
// probability deliverProb (the model's "arbitrary subset"), it receives
// nothing in that step, and it takes no further steps.
func (e *SyncEngine) CrashAtStep(p PID, step int, deliverProb float64) {
	e.schedule[step] = append(e.schedule[step], syncCrash{pid: p, deliverProb: deliverProb})
}

// Crashed reports whether p has crashed so far.
func (e *SyncEngine) Crashed(p PID) bool { return e.crashed[p] }

// CorrectSet returns the ground-truth correct processes, assuming every
// scheduled crash fires.
func (e *SyncEngine) CorrectSet() []PID {
	pending := make([]bool, e.ids.N())
	for _, crashes := range e.schedule {
		for _, c := range crashes {
			pending[c.pid] = true
		}
	}
	var out []PID
	for p := range e.crashed {
		if !e.crashed[p] && !pending[p] {
			out = append(out, PID(p))
		}
	}
	return out
}

// IDs returns the identity assignment.
func (e *SyncEngine) IDs() ident.Assignment { return e.ids }

// Step returns the number of completed steps.
func (e *SyncEngine) Step() int { return e.step }

// AfterStep registers an observer invoked at the end of every step; the
// property checkers sample detector outputs there.
func (e *SyncEngine) AfterStep(f func(step int)) {
	e.afterStep = append(e.afterStep, f)
}

// RunSteps executes k synchronous steps.
func (e *SyncEngine) RunSteps(k int) {
	if len(e.procs) != e.ids.N() {
		panic(fmt.Sprintf("sim: %d processes bound, need %d", len(e.procs), e.ids.N()))
	}
	for i := 0; i < k; i++ {
		e.runOneStep()
	}
}

func (e *SyncEngine) runOneStep() {
	e.step++
	crashingNow := make(map[PID]float64)
	for _, c := range e.schedule[e.step] {
		if !e.crashed[c.pid] {
			crashingNow[c.pid] = c.deliverProb
		}
	}

	// Send sub-phase: every alive process broadcasts; a process crashing in
	// this step broadcasts to an arbitrary subset.
	inboxes := make([][]any, e.ids.N())
	for p := range e.procs {
		pid := PID(p)
		if e.crashed[p] {
			continue
		}
		payloads := e.procs[p].StepSend(e.envs[p])
		prob, crashing := crashingNow[pid]
		for _, payload := range payloads {
			var tag string
			if e.cfg.Recorder != nil {
				tag = tagOf(payload)
			}
			e.record(trace.Event{Time: int64(e.step), Kind: trace.KindBroadcast, PID: p, MsgTag: tag})
			for q := range e.procs {
				if e.crashed[q] {
					continue
				}
				if _, qc := crashingNow[PID(q)]; qc {
					continue // a process crashing this step receives nothing
				}
				if crashing && e.rng.Float64() >= prob {
					e.record(trace.Event{Time: int64(e.step), Kind: trace.KindDrop, PID: q, MsgTag: tag, Detail: "sender crashed mid-broadcast"})
					continue
				}
				inboxes[q] = append(inboxes[q], payload)
			}
		}
	}

	// Crash sub-phase. Apply in ascending PID order: crashingNow is a map,
	// and recording KindCrash events in its iteration order would make the
	// trace bytes for same-step crashes differ run to run.
	crashIDs := make([]int, 0, len(crashingNow))
	for pid := range crashingNow {
		crashIDs = append(crashIDs, int(pid))
	}
	sort.Ints(crashIDs)
	for _, pid := range crashIDs {
		e.crashed[pid] = true
		e.record(trace.Event{Time: int64(e.step), Kind: trace.KindCrash, PID: pid})
	}

	// Receive sub-phase: every still-alive process receives this step's
	// messages.
	for p := range e.procs {
		if e.crashed[p] {
			continue
		}
		if e.cfg.Recorder != nil {
			retain := e.cfg.Recorder.Retaining()
			for _, payload := range inboxes[p] {
				var tag string
				if retain {
					tag = tagOf(payload)
				}
				e.record(trace.Event{Time: int64(e.step), Kind: trace.KindDeliver, PID: p, MsgTag: tag})
			}
		}
		e.procs[p].StepRecv(e.envs[p], inboxes[p])
	}

	for _, f := range e.afterStep {
		f(e.step)
	}
}

func (e *SyncEngine) record(ev trace.Event) {
	if e.cfg.Recorder != nil {
		e.cfg.Recorder.Record(ev)
	}
}
