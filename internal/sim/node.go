package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/ident"
	"repro/internal/trace"
)

// A Node composes several modules (algorithm layers) on one simulated
// process: typically a failure-detector implementation underneath a
// consensus algorithm, exactly as the paper combines, e.g., the Fig. 6
// detector with the Fig. 8 consensus to solve consensus in HPS.
//
// Each module broadcasts and receives through its own namespaced channel
// (payloads are wrapped in envelopes), and modules on the same node may
// share memory directly — a failure detector is a local oracle to the
// layers above it. After any event is dispatched to any module, every
// module implementing Poller is polled, so guard conditions that observe
// another module's output (e.g. "wait until D.h_leader ≠ id(p)") are
// re-evaluated whenever that output may have changed.
type Node struct {
	modules []namedModule
	byName  map[string]int
	env     Environment
}

type namedModule struct {
	name string
	proc Process
}

// Poller is implemented by modules whose guard conditions depend on state
// outside their own message stream (another module's output). Poll is
// invoked after every event processed by the node.
type Poller interface {
	Poll()
}

// NewNode creates an empty node; attach layers with Add in bottom-up order,
// then register the node itself with Engine.AddProcess.
func NewNode() *Node {
	return &Node{byName: make(map[string]int)}
}

// Add attaches a module under a unique name and returns the node for
// chaining. It panics on duplicate names (an experiment-setup error).
func (n *Node) Add(name string, p Process) *Node {
	if _, dup := n.byName[name]; dup {
		panic(fmt.Sprintf("sim: duplicate module name %q", name))
	}
	n.byName[name] = len(n.modules)
	n.modules = append(n.modules, namedModule{name: name, proc: p})
	return n
}

// envelope carries a module's payload on the wire, namespaced by module
// name so that co-located stacks on different processes interoperate.
type envelope struct {
	Module  string
	Payload any
}

// MsgTag implements Tagger, preserving the inner payload's tag.
func (e envelope) MsgTag() string { return tagOf(e.Payload) }

// Init implements Process.
func (n *Node) Init(env Environment) {
	n.env = env
	for i, m := range n.modules {
		m.proc.Init(&moduleEnv{node: n, index: i})
	}
	n.pollAll()
}

// OnMessage implements Process: it unwraps the envelope and dispatches to
// the addressed module. Messages for modules this node does not run are
// ignored (heterogeneous deployments are legal).
func (n *Node) OnMessage(payload any) {
	env, ok := payload.(envelope)
	if !ok {
		// Unwrapped payloads go to every module; this keeps single-module
		// nodes interoperable with bare processes.
		for _, m := range n.modules {
			m.proc.OnMessage(payload)
		}
		n.pollAll()
		return
	}
	if i, ok := n.byName[env.Module]; ok {
		n.modules[i].proc.OnMessage(env.Payload)
	}
	n.pollAll()
}

// OnRecover implements Recoverer: it forwards the recovery to every module
// that restarts after an outage, then re-polls guard conditions.
func (n *Node) OnRecover() {
	for _, m := range n.modules {
		if r, ok := m.proc.(Recoverer); ok {
			r.OnRecover()
		}
	}
	n.pollAll()
}

// OnTimer implements Process, demultiplexing the namespaced timer tag.
func (n *Node) OnTimer(tag int) {
	k := len(n.modules)
	idx, inner := tag%k, tag/k
	n.modules[idx].proc.OnTimer(inner)
	n.pollAll()
}

func (n *Node) pollAll() {
	for _, m := range n.modules {
		if p, ok := m.proc.(Poller); ok {
			p.Poll()
		}
	}
}

// moduleEnv is the namespaced Environment handed to each module.
type moduleEnv struct {
	node  *Node
	index int
}

var _ Environment = (*moduleEnv)(nil)

func (m *moduleEnv) ID() ident.ID     { return m.node.env.ID() }
func (m *moduleEnv) N() (int, bool)   { return m.node.env.N() }
func (m *moduleEnv) Now() Time        { return m.node.env.Now() }
func (m *moduleEnv) Rand() *rand.Rand { return m.node.env.Rand() }
func (m *moduleEnv) PID() PID         { return m.node.env.PID() }

// payloadArena forwards to the engine arena when the node runs on one, so
// modules can Intern their payloads too.
func (m *moduleEnv) payloadArena() *payloadArena {
	if h, ok := m.node.env.(interner); ok {
		return h.payloadArena()
	}
	return nil
}

func (m *moduleEnv) Broadcast(payload any) {
	env := envelope{Module: m.node.modules[m.index].name, Payload: payload}
	// An envelope repeats exactly as often as its payload does, so extend
	// interning to the wrapper — but only when the module interned the
	// payload itself: that is the module's signal that the value repeats.
	// Interning every comparable envelope would fill the arena with
	// never-repeating consensus messages (monotone rounds) that are never
	// hit again. The comparability check guards the canon lookup (an
	// unhashable key would panic).
	if a := m.payloadArena(); a != nil && a.comparableDyn(payload) && a.interned(payload) {
		m.node.env.Broadcast(Intern(m.node.env, env))
		return
	}
	m.node.env.Broadcast(env)
}

func (m *moduleEnv) SetTimer(d Time, tag int) {
	if tag < 0 {
		panic("sim: module timer tags must be non-negative")
	}
	m.node.env.SetTimer(d, tag*len(m.node.modules)+m.index)
}

func (m *moduleEnv) Note(kind trace.Kind, tag, detail string) {
	m.node.env.Note(kind, tag, detail)
}
