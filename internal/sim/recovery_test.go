package sim

import (
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/trace"
)

// beeper broadcasts every `period` units and restarts after recovery; it
// counts deliveries and recoveries. It is the minimal recovery-aware
// process: timer epochs guarantee one live chain.
type beeper struct {
	env       Environment
	period    Time
	epoch     int
	heard     int
	recovered int
}

type beep struct{}

func (beep) MsgTag() string { return "BEEP" }

func (b *beeper) Init(env Environment) {
	b.env = env
	env.Broadcast(beep{})
	env.SetTimer(b.period, b.epoch)
}
func (b *beeper) OnMessage(any) { b.heard++ }
func (b *beeper) OnTimer(tag int) {
	if tag != b.epoch {
		return
	}
	b.env.Broadcast(beep{})
	b.env.SetTimer(b.period, b.epoch)
}
func (b *beeper) OnRecover() {
	b.epoch++
	b.recovered++
	b.env.Broadcast(beep{})
	b.env.SetTimer(b.period, b.epoch)
}

func newBeeperEngine(n int, seed int64, rec *trace.Recorder) (*Engine, []*beeper) {
	eng := New(Config{IDs: ident.Unique(n), Net: Timely{Delta: 2}, Seed: seed, Recorder: rec})
	procs := make([]*beeper, n)
	for i := range procs {
		procs[i] = &beeper{period: 5}
		eng.AddProcess(procs[i])
	}
	return eng, procs
}

func TestRecoverResumesProcess(t *testing.T) {
	eng, procs := newBeeperEngine(3, 1, nil)
	eng.CrashAt(2, 10)
	eng.RecoverAt(2, 30)
	eng.Run(60)

	if eng.Crashed(2) {
		t.Fatal("process 2 still down after RecoverAt")
	}
	if !eng.EverCrashed(2) {
		t.Fatal("EverCrashed must stay sticky across recovery")
	}
	if eng.Recoveries() != 1 {
		t.Fatalf("Recoveries = %d, want 1", eng.Recoveries())
	}
	if procs[2].recovered != 1 {
		t.Fatalf("OnRecover called %d times, want 1", procs[2].recovered)
	}
	// The recovered process must hear post-recovery traffic again.
	heardAtRecovery := procs[2].heard
	eng2, procs2 := newBeeperEngine(3, 1, nil)
	eng2.CrashAt(2, 10)
	eng2.Run(60)
	if procs[2].heard <= procs2[2].heard {
		t.Fatalf("recovered process heard %d, crash-stop twin heard %d — recovery did not resume delivery (heard at recovery %d)",
			procs[2].heard, procs2[2].heard, heardAtRecovery)
	}
}

func TestRecoverOnUpProcessIsNoOp(t *testing.T) {
	eng, procs := newBeeperEngine(2, 3, nil)
	eng.RecoverAt(1, 10) // never crashed
	eng.Run(30)
	if eng.Recoveries() != 0 {
		t.Fatalf("Recoveries = %d, want 0 (recover on an up process)", eng.Recoveries())
	}
	if procs[1].recovered != 0 {
		t.Fatal("OnRecover fired for a process that never crashed")
	}
}

// TestPastTimeSchedulingClampsMonotone is the regression test for the
// time-rewind bug: CrashAt/RecoverAt with t < now (and hostile Model
// delays) must clamp to the present, never rewind virtual time.
func TestPastTimeSchedulingClampsMonotone(t *testing.T) {
	eng, _ := newBeeperEngine(2, 5, nil)
	last := Time(-1)
	eng.AfterEvent(func(now Time, p PID) {
		if now < last {
			t.Fatalf("virtual time rewound: %d after %d", now, last)
		}
		last = now
	})
	eng.RunUntil(1000, func() bool { return eng.Now() >= 40 })
	if eng.Now() < 40 {
		t.Fatalf("setup: engine only reached t=%d", eng.Now())
	}
	// Hostile schedule: a crash and a recovery far in the past.
	eng.CrashAt(0, 3)
	eng.RecoverAt(0, 7)
	eng.Run(80)
	if last < 40 {
		t.Fatalf("post-schedule events ran at t=%d < 40", last)
	}
	if eng.Crashed(0) {
		t.Fatal("clamped crash+recover pair should leave process 0 up")
	}
	if !eng.EverCrashed(0) {
		t.Fatal("clamped crash never fired")
	}
}

// hostileModel returns delays that would move time backwards if the engine
// trusted them.
type hostileModel struct{}

func (hostileModel) Delay(_ Time, _ *rand.Rand) (Time, bool) { return -1000, true }
func (hostileModel) String() string                          { return "hostile" }

func TestHostileModelDelaysCannotRewindTime(t *testing.T) {
	eng := New(Config{IDs: ident.Unique(2), Net: hostileModel{}, Seed: 1})
	eng.AddProcess(&beeper{period: 5})
	eng.AddProcess(&beeper{period: 5})
	last := Time(-1)
	eng.AfterEvent(func(now Time, p PID) {
		if now < last {
			t.Fatalf("virtual time rewound: %d after %d", now, last)
		}
		last = now
	})
	eng.Run(30)
	if eng.Now() < 1 {
		t.Fatal("negative delays froze the clock; want clamping to >= 1")
	}
}

// TestStopReasons pins the Run/RunUntil exit-cause contract (the MaxEvents
// guard used to be indistinguishable from quiescence).
func TestStopReasons(t *testing.T) {
	t.Run("not-run", func(t *testing.T) {
		eng, _ := newBeeperEngine(1, 1, nil)
		if eng.Stopped() != StopNone {
			t.Fatalf("Stopped = %v before any run", eng.Stopped())
		}
	})
	t.Run("horizon", func(t *testing.T) {
		eng, _ := newBeeperEngine(1, 1, nil)
		eng.Run(17)
		if eng.Stopped() != StopHorizon {
			t.Fatalf("Stopped = %v, want horizon (beeper timers never stop)", eng.Stopped())
		}
	})
	t.Run("predicate", func(t *testing.T) {
		eng, _ := newBeeperEngine(1, 1, nil)
		eng.RunUntil(1000, func() bool { return eng.Processed() >= 3 })
		if eng.Stopped() != StopPredicate {
			t.Fatalf("Stopped = %v, want predicate", eng.Stopped())
		}
	})
	t.Run("max-events", func(t *testing.T) {
		eng, _ := newBeeperEngine(1, 1, nil)
		eng.cfg.MaxEvents = 5
		eng.Run(1000)
		if eng.Stopped() != StopMaxEvents {
			t.Fatalf("Stopped = %v, want max-events", eng.Stopped())
		}
	})
	t.Run("quiescent", func(t *testing.T) {
		eng := New(Config{IDs: ident.Unique(2), Net: Timely{Delta: 1}, Seed: 1})
		eng.AddProcess(&echoProc{})
		eng.AddProcess(&echoProc{})
		eng.Run(1000) // echoProc sets no timers: the queue drains
		if eng.Stopped() != StopQuiescent {
			t.Fatalf("Stopped = %v, want quiescent", eng.Stopped())
		}
	})
}

// TestCorrectSetPartialCrashNeverFires is the regression test for the
// ground-truth misclassification: a process armed with CrashDuringBroadcast
// that never broadcasts after `after` never actually crashes, so once the
// run quiesces (no broadcast can ever happen again) it belongs in the
// Correct set. It used to be excluded forever.
func TestCorrectSetPartialCrashNeverFires(t *testing.T) {
	eng := New(Config{IDs: ident.Unique(3), Net: Timely{Delta: 1}, Seed: 2})
	for i := 0; i < 3; i++ {
		eng.AddProcess(&echoProc{}) // broadcasts only at t=0, then goes silent
	}
	eng.CrashDuringBroadcast(1, 5, 0.5) // t=0 broadcast is before `after`: never fires
	// While the run can still broadcast, the armed process is excluded.
	if got := len(eng.CorrectSet()); got != 2 {
		t.Fatalf("pre-run CorrectSet size = %d, want 2 (armed process pending)", got)
	}
	eng.Run(1000)
	if eng.Stopped() != StopQuiescent {
		t.Fatalf("setup: run ended with %v, want quiescent", eng.Stopped())
	}
	if eng.Crashed(1) {
		t.Fatal("process 1 crashed despite never broadcasting after `after`")
	}
	if got := len(eng.CorrectSet()); got != 3 {
		t.Fatalf("CorrectSet size = %d, want 3: an arm that can never fire is not a crash", got)
	}
	if got := len(eng.EventuallyUpSet()); got != 3 {
		t.Fatalf("EventuallyUpSet size = %d, want 3", got)
	}
}

// TestTimerDropRecorded is the regression test for silently vanishing
// timers: a timer expiring on a down process must leave a trace event,
// exactly like a dropped message copy.
func TestTimerDropRecorded(t *testing.T) {
	rec := trace.NewRecorder()
	eng, _ := newBeeperEngine(2, 4, rec)
	eng.CrashAt(1, 7) // p1's t=10 timer expires while down
	eng.Run(12)
	drops := 0
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindTimerDrop {
			drops++
			if ev.PID != 1 {
				t.Fatalf("timer drop recorded for p%d, want p1", ev.PID)
			}
		}
	}
	if drops == 0 {
		t.Fatal("no KindTimerDrop recorded for a timer on a down process")
	}
	if got := rec.Stats().TimerDrops; got != drops {
		t.Fatalf("Stats.TimerDrops = %d, want %d", got, drops)
	}
}

// TestTraceEqualityChurnInterleavings pins trace-drop consistency across
// crash interleavings with timers, deliveries and recoveries: two runs of
// the same seeded scenario must produce byte-identical traces, and the
// trace must account for every suppressed action (message drops, timer
// drops) and state change (crashes, recoveries).
func TestTraceEqualityChurnInterleavings(t *testing.T) {
	run := func() []trace.Event {
		rec := trace.NewRecorder()
		eng, _ := newBeeperEngine(4, 9, rec)
		eng.CrashAt(1, 6)
		eng.RecoverAt(1, 21)
		eng.CrashAt(2, 11)
		eng.RecoverAt(2, 16)
		eng.CrashAt(2, 33)
		eng.Run(60)
		return rec.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	seen := map[trace.Kind]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
		seen[a[i].Kind]++
	}
	for _, want := range []trace.Kind{
		trace.KindBroadcast, trace.KindDeliver, trace.KindTimer,
		trace.KindCrash, trace.KindRecover, trace.KindDrop, trace.KindTimerDrop,
	} {
		if seen[want] == 0 {
			t.Errorf("scenario never produced a %v event; the interleaving is not covered", want)
		}
	}
}

// TestEventuallyUpSet pins the engine-side ground truth for crash-recovery
// schedules, including orderings the queue resolves by sequence number.
func TestEventuallyUpSet(t *testing.T) {
	eng, _ := newBeeperEngine(6, 11, nil)
	eng.CrashAt(1, 10) // crash-stop: down forever
	eng.CrashAt(2, 10) // crash, recover: eventually up
	eng.RecoverAt(2, 20)
	eng.CrashAt(3, 10) // crash, recover, crash: down forever
	eng.RecoverAt(3, 20)
	eng.CrashAt(3, 30)
	eng.RecoverAt(4, 5) // recovery scheduled before its crash fires: down
	eng.CrashAt(4, 15)
	check := func(stage string) {
		t.Helper()
		want := map[PID]bool{0: true, 2: true, 5: true}
		got := map[PID]bool{}
		for _, p := range eng.EventuallyUpSet() {
			got[p] = true
		}
		for p := PID(0); p < 6; p++ {
			if got[p] != want[p] {
				t.Fatalf("%s: EventuallyUpSet = %v, want {0 2 5}", stage, eng.EventuallyUpSet())
			}
		}
	}
	check("pre-run (scheduled only)")
	eng.Run(100)
	check("post-run (all fired)")
	// Correct remains strict: only the never-crashed processes.
	if got := len(eng.CorrectSet()); got != 2 { // p0, p5 (p4's crash fired)
		t.Fatalf("CorrectSet size = %d, want 2, set %v", got, eng.CorrectSet())
	}
}

// TestEventuallyUpWithPartialCrash: a fired mid-broadcast crash followed by
// a scheduled recovery counts as eventually up; a live arm never does.
func TestEventuallyUpWithPartialCrash(t *testing.T) {
	eng, _ := newBeeperEngine(3, 13, nil)
	eng.CrashDuringBroadcast(1, 4, 0.5)
	eng.RecoverAt(1, 40)
	if got := eng.EventuallyUpSet(); len(got) != 2 {
		t.Fatalf("live arm: EventuallyUpSet = %v, want {0 2} (arm outranks scheduled recovery)", got)
	}
	eng.Run(60)
	if !eng.EverCrashed(1) || eng.Crashed(1) {
		t.Fatalf("setup: p1 everCrashed=%v crashed=%v, want fired then recovered", eng.EverCrashed(1), eng.Crashed(1))
	}
	if got := eng.EventuallyUpSet(); len(got) != 3 {
		t.Fatalf("post-run EventuallyUpSet = %v, want all 3 (crash fired before recovery)", got)
	}
	if got := len(eng.CorrectSet()); got != 2 {
		t.Fatalf("CorrectSet size = %d, want 2 (p1 crashed)", got)
	}
}

// TestEventuallyUpSetOutOfOrderSchedule pins the schedule bookkeeping for
// hand-built schedules whose calls are not sorted by time: the final state
// depends on the latest event in SCHEDULE time, not on call order.
func TestEventuallyUpSetOutOfOrderSchedule(t *testing.T) {
	eng, _ := newBeeperEngine(3, 29, nil)
	// p1, scheduled newest-first: pops as crash@50, recover@150, crash@200
	// — eventually down.
	eng.CrashAt(1, 200)
	eng.RecoverAt(1, 150)
	eng.CrashAt(1, 50)
	// p2, same shape plus a final recovery — eventually up.
	eng.CrashAt(2, 220)
	eng.RecoverAt(2, 300)
	eng.RecoverAt(2, 150)
	eng.CrashAt(2, 50)
	check := func(stage string) {
		t.Helper()
		got := map[PID]bool{}
		for _, p := range eng.EventuallyUpSet() {
			got[p] = true
		}
		if !got[0] || got[1] || !got[2] {
			t.Fatalf("%s: EventuallyUpSet = %v, want {0 2}", stage, eng.EventuallyUpSet())
		}
	}
	check("pre-run")
	eng.Run(400)
	check("post-run")
	if eng.Crashed(1) != true || eng.Crashed(2) != false {
		t.Fatalf("execution disagrees: p1 down=%v p2 down=%v, want true/false", eng.Crashed(1), eng.Crashed(2))
	}
}

// TestEventuallyUpPartialCrashWithLaterScheduledCrash: a fired partial
// crash must not mask a crash scheduled even later in time.
func TestEventuallyUpPartialCrashWithLaterScheduledCrash(t *testing.T) {
	eng, _ := newBeeperEngine(2, 31, nil)
	eng.CrashDuringBroadcast(1, 4, 0.5) // fires at the t=5 beep
	eng.RecoverAt(1, 50)
	eng.CrashAt(1, 100) // after the recovery: p1 ends down
	eng.Run(200)
	if !eng.EverCrashed(1) || !eng.Crashed(1) {
		t.Fatalf("setup: everCrashed=%v down=%v, want partial fire then final crash", eng.EverCrashed(1), eng.Crashed(1))
	}
	for _, p := range eng.EventuallyUpSet() {
		if p == 1 {
			t.Fatal("p1 in EventuallyUpSet despite a crash after its recovery")
		}
	}
}

// nodeRecoverMod counts recoveries forwarded through a Node.
type nodeRecoverMod struct {
	env       Environment
	recovered int
}

func (m *nodeRecoverMod) Init(env Environment) { m.env = env; env.SetTimer(5, 0) }
func (m *nodeRecoverMod) OnMessage(any)        {}
func (m *nodeRecoverMod) OnTimer(int)          { m.env.SetTimer(5, 0) }
func (m *nodeRecoverMod) OnRecover()           { m.recovered++ }

func TestNodeForwardsRecovery(t *testing.T) {
	eng := New(Config{IDs: ident.Unique(1), Net: Timely{Delta: 1}, Seed: 1})
	mod := &nodeRecoverMod{}
	eng.AddProcess(NewNode().Add("m", mod))
	eng.CrashAt(0, 10)
	eng.RecoverAt(0, 20)
	eng.Run(40)
	if mod.recovered != 1 {
		t.Fatalf("module OnRecover called %d times, want 1", mod.recovered)
	}
}
