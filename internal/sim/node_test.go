package sim

import (
	"testing"

	"repro/internal/ident"
)

// lowerMod broadcasts a PING at init and exposes how many PINGs it saw.
type lowerMod struct {
	env   Environment
	pings int
}

type ping struct{}

func (ping) MsgTag() string { return "PING" }

func (m *lowerMod) Init(env Environment) { m.env = env; env.Broadcast(ping{}) }
func (m *lowerMod) OnMessage(any)        { m.pings++ }
func (m *lowerMod) OnTimer(int)          {}

// upperMod observes the lower module's state via shared memory and records
// Poll invocations; it also exchanges its own QUERY messages.
type upperMod struct {
	env     Environment
	lower   *lowerMod
	queries int
	polls   int
	sawPing bool
}

type query struct{}

func (query) MsgTag() string { return "QUERY" }

func (m *upperMod) Init(env Environment) { m.env = env; env.Broadcast(query{}) }
func (m *upperMod) OnMessage(any)        { m.queries++ }
func (m *upperMod) OnTimer(int)          {}
func (m *upperMod) Poll() {
	m.polls++
	if m.lower.pings > 0 {
		m.sawPing = true
	}
}

func TestNodeModulesAreNamespaced(t *testing.T) {
	n := 3
	eng := New(Config{IDs: ident.Unique(n), Net: Timely{Delta: 1}, Seed: 1})
	lowers := make([]*lowerMod, n)
	uppers := make([]*upperMod, n)
	for i := 0; i < n; i++ {
		lowers[i] = &lowerMod{}
		uppers[i] = &upperMod{lower: lowers[i]}
		node := NewNode().Add("fd", lowers[i]).Add("cons", uppers[i])
		eng.AddProcess(node)
	}
	eng.Run(50)
	for i := 0; i < n; i++ {
		if lowers[i].pings != n {
			t.Errorf("node %d lower got %d PINGs, want %d", i, lowers[i].pings, n)
		}
		if uppers[i].queries != n {
			t.Errorf("node %d upper got %d QUERYs, want %d", i, uppers[i].queries, n)
		}
		if !uppers[i].sawPing {
			t.Errorf("node %d upper never observed lower state via Poll", i)
		}
		if uppers[i].polls == 0 {
			t.Errorf("node %d upper was never polled", i)
		}
	}
}

func TestNodeTimerDemux(t *testing.T) {
	eng := New(Config{IDs: ident.Unique(1), Seed: 1})
	a, b := &tickMod{delay: 3, tag: 5}, &tickMod{delay: 7, tag: 9}
	eng.AddProcess(NewNode().Add("a", a).Add("b", b))
	eng.Run(20)
	if len(a.fired) == 0 || a.fired[0] != 5 {
		t.Errorf("module a timer tags = %v, want leading 5", a.fired)
	}
	if len(b.fired) == 0 || b.fired[0] != 9 {
		t.Errorf("module b timer tags = %v, want leading 9", b.fired)
	}
}

type tickMod struct {
	env   Environment
	delay Time
	tag   int
	fired []int
}

func (m *tickMod) Init(env Environment) { m.env = env; env.SetTimer(m.delay, m.tag) }
func (m *tickMod) OnMessage(any)        {}
func (m *tickMod) OnTimer(tag int) {
	m.fired = append(m.fired, tag)
	m.env.SetTimer(m.delay, m.tag)
}

func TestNodeDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate module name should panic")
		}
	}()
	NewNode().Add("x", &lowerMod{}).Add("x", &lowerMod{})
}

func TestBareProcessAndNodeInterop(t *testing.T) {
	// An envelope-less payload from a bare process reaches node modules.
	eng := New(Config{IDs: ident.Unique(2), Net: Timely{Delta: 1}, Seed: 2})
	bare := &echoProc{}
	lower := &lowerMod{}
	eng.AddProcess(bare)
	eng.AddProcess(NewNode().Add("fd", lower))
	eng.Run(20)
	// bare broadcasts hello{} unwrapped: the node fans it to all modules.
	if lower.pings != 2 {
		// lower sees: its own PING envelope + unwrapped hello = 2 OnMessage calls.
		t.Errorf("lower OnMessage count = %d, want 2", lower.pings)
	}
}
