package sim

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/ident"
	"repro/internal/trace"
)

// fanPoll broadcasts every `period` units forever and re-arms after a
// recovery, so churn schedules keep traffic flowing.
type fanPoll struct {
	env    Environment
	period Time
}

func (p *fanPoll) Init(env Environment) {
	p.env = env
	env.Broadcast(hello{From: env.ID()})
	env.SetTimer(p.period, 0)
}
func (p *fanPoll) OnMessage(any) {}
func (p *fanPoll) OnTimer(tag int) {
	p.env.Broadcast(hello{From: p.env.ID()})
	p.env.SetTimer(p.period, tag)
}
func (p *fanPoll) OnRecover() { p.env.SetTimer(p.period, 0) }

// buildFanEngine assembles one churn-heavy engine: n pollsters, a crash
// with recovery, a crash-stop, and a partial (mid-broadcast) crash, over
// the given network model.
func buildFanEngine(n int, net Model, seed int64, eager bool, maxEvents int) (*Engine, *trace.Recorder) {
	rec := trace.NewRecorder()
	eng := New(Config{
		IDs:         ident.Balanced(n, 2),
		Net:         net,
		Seed:        seed,
		Recorder:    rec,
		EagerFanout: eager,
		MaxEvents:   maxEvents,
	})
	for i := 0; i < n; i++ {
		eng.AddProcess(&fanPoll{period: 5})
	}
	eng.CrashAt(1, 12)
	eng.RecoverAt(1, 31)
	eng.CrashAt(2, 40)
	eng.CrashDuringBroadcast(3, 20, 0.5)
	return eng, rec
}

// runPair runs the same scenario through the lazy path and the eager
// oracle and returns both (engine, recorder) pairs after identical Run
// calls driven by the caller.
func runPair(t *testing.T, n int, net Model, seed int64, maxEvents int, drive func(e *Engine)) (lazy, eager *Engine, lazyRec, eagerRec *trace.Recorder) {
	t.Helper()
	lazy, lazyRec = buildFanEngine(n, net, seed, false, maxEvents)
	eager, eagerRec = buildFanEngine(n, net, seed, true, maxEvents)
	drive(lazy)
	drive(eager)
	return lazy, eager, lazyRec, eagerRec
}

// requireIdentical asserts the two runs are byte-identical in trace and
// equal in every observable the engine exposes.
func requireIdentical(t *testing.T, lazy, eager *Engine, lazyRec, eagerRec *trace.Recorder) {
	t.Helper()
	var lb, eb bytes.Buffer
	if err := trace.WriteText(&lb, lazyRec.Events()); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteText(&eb, eagerRec.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb.Bytes(), eb.Bytes()) {
		ll, el := lb.Bytes(), eb.Bytes()
		i := 0
		for i < len(ll) && i < len(el) && ll[i] == el[i] {
			i++
		}
		lo := i - 120
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("lazy and eager traces diverge at byte %d:\nlazy:  ...%q\neager: ...%q",
			i, string(ll[lo:min(i+120, len(ll))]), string(el[lo:min(i+120, len(el))]))
	}
	if ls, es := fmt.Sprintf("%+v", lazyRec.Stats()), fmt.Sprintf("%+v", eagerRec.Stats()); ls != es {
		t.Errorf("stats diverge:\nlazy:  %s\neager: %s", ls, es)
	}
	if lazy.Processed() != eager.Processed() {
		t.Errorf("processed: lazy %d, eager %d", lazy.Processed(), eager.Processed())
	}
	if lazy.Stopped() != eager.Stopped() {
		t.Errorf("stopped: lazy %v, eager %v", lazy.Stopped(), eager.Stopped())
	}
	if lazy.Now() != eager.Now() {
		t.Errorf("now: lazy %d, eager %d", lazy.Now(), eager.Now())
	}
	if l, e := fmt.Sprint(lazy.CorrectSet()), fmt.Sprint(eager.CorrectSet()); l != e {
		t.Errorf("correct set: lazy %s, eager %s", l, e)
	}
	if l, e := fmt.Sprint(lazy.EventuallyUpSet()), fmt.Sprint(eager.EventuallyUpSet()); l != e {
		t.Errorf("eventually-up set: lazy %s, eager %s", l, e)
	}
}

// TestLazyFanoutMatchesEager is the lazy path's differential oracle: over
// every network model family — uniform, partially synchronous with loss,
// deterministic, heavy-tailed, oscillating, per-link asymmetric, lossy,
// partitioned — a
// churn-heavy run under lazy fan-out must be byte-identical in trace (and
// equal in all engine observables) to the same run under eager expansion.
func TestLazyFanoutMatchesEager(t *testing.T) {
	nets := []Model{
		Async{MaxDelay: 8},
		PartialSync{GST: 30, Delta: 4, PreLoss: 0.3, PreMax: 12},
		Timely{Delta: 3},
		Pareto{Scale: 1, Alpha: 1.2, Cap: 40},
		LogNormal{Median: 3, Sigma: 1, Cap: 40},
		Alternating{Period: 15, GoodDelta: 3, BadMax: 20, BadLoss: 0.25, CalmAfter: 45},
		AsymmetricLinks{Base: Async{MaxDelay: 5}, MaxSkew: 6},
		Lossy{Base: Async{MaxDelay: 6}, P: 0.3},
		Partition{Base: Async{MaxDelay: 6}, Windows: []PartitionWindow{
			{From: 10, To: 25, Cut: 8}, {From: 35, To: 50, Cut: 15},
		}},
		Partition{Base: AsymmetricLinks{Base: Async{MaxDelay: 5}, MaxSkew: 6}, Windows: []PartitionWindow{
			{From: 5, To: 40, Cut: 11},
		}},
	}
	for _, net := range nets {
		net := net
		t.Run(net.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				lazy, eager, lr, er := runPair(t, 23, net, seed, 0, func(e *Engine) { e.Run(60) })
				requireIdentical(t, lazy, eager, lr, er)
			}
		})
	}
}

// TestLazyFanoutMaxEventsMidWave pins truncation parity: with a MaxEvents
// cap chosen to trip in the middle of a delivery wave, the lazy run must
// cut at exactly the same event as the eager run and leave identical
// traces, and resuming the run must not deliver anything further.
func TestLazyFanoutMaxEventsMidWave(t *testing.T) {
	// Timely puts a whole broadcast in one wave of 23 copies, so caps that
	// are not multiples of 23 stop mid-wave.
	for _, cap := range []int{10, 57, 100, 149} {
		lazy, eager, lr, er := runPair(t, 23, Timely{Delta: 3}, 7, cap, func(e *Engine) { e.Run(60) })
		if lazy.Stopped() != StopMaxEvents {
			t.Fatalf("cap %d: lazy stopped %v, want max-events", cap, lazy.Stopped())
		}
		if lazy.Processed() != cap {
			t.Fatalf("cap %d: lazy processed %d", cap, lazy.Processed())
		}
		requireIdentical(t, lazy, eager, lr, er)
	}
}

// TestLazyFanoutPredicateMidWave pins early-exit parity: a predicate that
// stops the run after every single event forces a resume into the middle
// of each wave, and the single-stepped execution must remain byte-identical
// to the eager one driven the same way.
func TestLazyFanoutPredicateMidWave(t *testing.T) {
	stepAll := func(e *Engine) {
		always := func() bool { return true }
		for {
			if e.RunUntil(45, always) == 0 && (e.Stopped() == StopQuiescent || e.Stopped() == StopHorizon) {
				return
			}
			if e.Stopped() == StopQuiescent || e.Stopped() == StopHorizon {
				return
			}
		}
	}
	lazy, eager, lr, er := runPair(t, 17, Async{MaxDelay: 6}, 11, 0, stepAll)
	requireIdentical(t, lazy, eager, lr, er)
}

// TestLazyFanoutConstantQueue pins the tentpole's O(1) claim: after one
// broadcast at n=1000 the queue holds one wave entry — not n deliveries —
// and a full churn run's queue high-water mark stays far below the
// in-flight copy count the eager path would enqueue.
func TestLazyFanoutConstantQueue(t *testing.T) {
	const n = 1000
	rec := trace.NewRecorder()
	eng := New(Config{IDs: ident.Balanced(n, 2), Net: Async{MaxDelay: 8}, Seed: 1, Recorder: rec})
	for i := 0; i < n; i++ {
		eng.AddProcess(&quietBroadcaster{bcast: i == 0})
	}
	eng.start()
	if got := len(eng.queue); got != 1 {
		t.Fatalf("queue holds %d entries after one broadcast at n=%d, want 1 (one wave entry per broadcast)", got, n)
	}
	eng.Run(100)
	if st := rec.Stats(); st.Delivered != n {
		t.Fatalf("delivered %d, want %d", st.Delivered, n)
	}
	if hw := eng.MaxQueueLen(); hw > 4 {
		t.Errorf("queue high-water mark %d for a single broadcast, want <= 4", hw)
	}

	// The same at full churn load: every process polls, so the eager queue
	// would hold ~n in-flight copies per in-flight broadcast. The lazy
	// high-water mark must stay O(broadcasts + timers), i.e. a few entries
	// per process, independent of fan-out.
	eng2, _ := buildFanEngine(200, Async{MaxDelay: 8}, 3, false, 0)
	eng2.Run(40)
	if hw := eng2.MaxQueueLen(); hw > 4*200 {
		t.Errorf("churn-run queue high-water mark %d at n=200, want O(n) entries (<= 800), not O(n * in-flight copies)", hw)
	}
}

type quietBroadcaster struct{ bcast bool }

func (q *quietBroadcaster) Init(env Environment) {
	if q.bcast {
		env.Broadcast(hello{From: env.ID()})
	}
}
func (q *quietBroadcaster) OnMessage(any) {}
func (q *quietBroadcaster) OnTimer(int)   {}
