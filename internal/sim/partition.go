package sim

import (
	"fmt"
	"math/rand"
	"strings"
)

// Lossy promotes message loss to a first-class network model: every copy is
// lost independently with probability P, and surviving copies take their
// delay from the Base model. Before this model existed, loss was reachable
// only inside PartialSync's pre-GST window and Alternating's bad windows —
// which made "lossy but otherwise calm" scenarios unwritable and therefore
// unfuzzable. Loss draws ride the engine's keyed per-copy fate streams, so
// a copy's fate stays a pure function of (seed, broadcast, recipient) and
// the lazy and eager fan-out paths see identical outcomes.
//
// P must be < 1 for liveness-checked runs: the detectors and consensus
// algorithms assume fair-lossy links at worst, and the scenario hunter's
// mutators keep P inside [0, MaxLossP] for exactly that reason.
type Lossy struct {
	Base Model   // default Async{}
	P    float64 // per-copy loss probability, clamped to [0, 1)
}

// MaxLossP is the highest loss probability the scenario layer admits for
// verified runs: above it, runs stop terminating for reasons no checker
// distinguishes from a real liveness bug.
const MaxLossP = 0.9

func (l Lossy) base() Model {
	if l.Base == nil {
		return Async{}
	}
	return l.Base
}

func (l Lossy) p() float64 {
	if l.P < 0 {
		return 0
	}
	if l.P >= 1 {
		return MaxLossP
	}
	return l.P
}

// Delay implements Model: the loss draw happens first, then the base delay,
// in one fate stream — the draw order is part of the byte-identity contract
// (LinkDelay must consume randomness in the same order).
func (l Lossy) Delay(t Time, r *rand.Rand) (Time, bool) {
	if p := l.p(); p > 0 && r.Float64() < p {
		return 0, false
	}
	return l.base().Delay(t, r)
}

// LinkDelay implements LinkModel, delegating to the base model's per-link
// behaviour when it has one.
func (l Lossy) LinkDelay(t Time, from, to PID, r *rand.Rand) (Time, bool) {
	if p := l.p(); p > 0 && r.Float64() < p {
		return 0, false
	}
	if lm, ok := l.base().(LinkModel); ok {
		return lm.LinkDelay(t, from, to, r)
	}
	return l.base().Delay(t, r)
}

func (l Lossy) String() string {
	return fmt.Sprintf("lossy[p=%.2f %s]", l.p(), l.base())
}

// PartitionWindow is one scheduled split-brain interval: during [From, To)
// the population is cut into {p : p < Cut} and {p : p >= Cut}, and every
// copy crossing the cut is lost. Cut is an index boundary rather than an
// arbitrary set so a window is three integers — trivially serializable,
// mutable by the scenario hunter, and (because Balanced identity
// assignments are contiguous) still able to isolate exactly a homonymy
// group, e.g. the leader group, by cutting at the group boundary.
type PartitionWindow struct {
	From Time `json:"from"`
	To   Time `json:"to"`
	Cut  PID  `json:"cut"`
}

// Active reports whether the window severs the directed link from→to at
// time t.
func (w PartitionWindow) Active(t Time, from, to PID) bool {
	return t >= w.From && t < w.To && (from < w.Cut) != (to < w.Cut)
}

// Partition promotes network partitions to a first-class model: a base
// model wrapped with scheduled split windows. While a window is active,
// copies crossing its cut are lost; intra-side copies and copies sent
// outside every window behave exactly like the base model. The windows are
// plain data — parseable (cliutil.ParsePartitions), fuzzable, and a pure
// function of the spec — so partition schedules compose with the engine's
// determinism the same way ChurnSpec schedules do.
//
// Healing is implicit: a copy *sent* during a window is lost, a copy sent
// after the window's To is delivered normally. (The model decides fates at
// send time, like every Model; a partition that swallowed in-flight copies
// would need engine cooperation and buy no extra scenario power, since the
// window edges are free parameters.)
type Partition struct {
	Base    Model
	Windows []PartitionWindow
}

func (p Partition) base() Model {
	if p.Base == nil {
		return Async{}
	}
	return p.Base
}

// severed reports whether any window cuts the link from→to at time t.
func (p Partition) severed(t Time, from, to PID) bool {
	for _, w := range p.Windows {
		if w.Active(t, from, to) {
			return true
		}
	}
	return false
}

// Delay implements Model (the typical link: the base model's behaviour —
// a partition is per-link by nature, so the link-blind view never severs).
func (p Partition) Delay(t Time, r *rand.Rand) (Time, bool) {
	return p.base().Delay(t, r)
}

// LinkDelay implements LinkModel: a severed copy is lost before any base
// draw, so the base model's randomness is consumed only for copies the
// partition lets through — the severed fate is a pure function of
// (t, from, to) and stays identical across the lazy and eager paths.
func (p Partition) LinkDelay(t Time, from, to PID, r *rand.Rand) (Time, bool) {
	if p.severed(t, from, to) {
		return 0, false
	}
	if lm, ok := p.base().(LinkModel); ok {
		return lm.LinkDelay(t, from, to, r)
	}
	return p.base().Delay(t, r)
}

func (p Partition) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "part[%s", p.base())
	for _, w := range p.Windows {
		fmt.Fprintf(&b, " %d-%d@%d", w.From, w.To, w.Cut)
	}
	b.WriteString("]")
	return b.String()
}

// LastWindowEnd returns the largest To over the windows (0 when empty):
// the instant the network is whole again, which horizon validation
// compares against exactly like a churn schedule's last event.
func LastWindowEnd(ws []PartitionWindow) Time {
	var last Time
	for _, w := range ws {
		if w.To > last {
			last = w.To
		}
	}
	return last
}

var (
	_ LinkModel = Lossy{}
	_ LinkModel = Partition{}
)
