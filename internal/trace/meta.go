package trace

// Meta is the scenario fingerprint a v2 binary trace carries in its
// header: everything needed to rebuild the run's configuration — and
// therefore its ground truth, proposals and checkers — from the trace
// file alone. Fields mirror the hdsim flag surface verbatim (specs stay
// in their flag syntax, e.g. Net "psync:60:3", Churn "0.2:1:20:30"),
// so replay resolves them through exactly the parsers and defaulting
// rules the live run used; anything structured would have to duplicate
// those rules and could drift.
//
// The block is encoded as JSON: self-describing, so future fields are
// backward-compatible (unknown fields are ignored on decode), and
// deterministic (encoding/json emits struct fields in declaration
// order, keeping byte-identity contracts intact).
type Meta struct {
	// Algo names the workload: fig8, fig9, fig9-anon, ohp, heartbeat.
	Algo string `json:"algo"`
	// N and L are the population size and distinct-identifier count of
	// the balanced assignment BalancedIDs(N, L).
	N int `json:"n"`
	L int `json:"l"`
	// T is the Fig. 8 crash budget (0 otherwise).
	T int `json:"t,omitempty"`
	// Crashes, Churn, Net and Partitions are the flag-syntax scenario
	// specs ("" = flag absent, scenario default applies).
	Crashes    string `json:"crashes,omitempty"`
	Churn      string `json:"churn,omitempty"`
	Net        string `json:"net,omitempty"`
	Partitions string `json:"partitions,omitempty"`
	// GST and Delta are the -gst/-delta fallback network parameters,
	// consulted only when Net is empty.
	GST   int64 `json:"gst,omitempty"`
	Delta int64 `json:"delta,omitempty"`
	Seed  int64 `json:"seed"`
	// Stabilize, Adversary and Detectors configure the detector layer
	// (consensus algorithms only).
	Stabilize int64  `json:"stabilize,omitempty"`
	Adversary string `json:"adversary,omitempty"`
	Detectors string `json:"detectors,omitempty"`
	// Horizon is the -horizon flag value verbatim (0 = per-algorithm
	// default, which replay resolves with the same rules as the driver).
	Horizon int64 `json:"horizon,omitempty"`
	// Period and Beaters are the heartbeat workload parameters.
	Period  int64 `json:"period,omitempty"`
	Beaters int   `json:"beaters,omitempty"`
	// MaxEvents overrides the engine's runaway guard (0 = default).
	MaxEvents int `json:"maxEvents,omitempty"`
}
