package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Kind classifies an event.
type Kind int

// Event kinds. Broadcast counts one per broadcast invocation; Deliver/Drop
// count per (sender, receiver) copy, matching the paper's model where
// broadcast(m) sends one copy along every directed link.
const (
	KindBroadcast Kind = iota + 1
	KindDeliver
	KindDrop
	KindCrash
	KindTimer
	KindDecide
	KindFDChange
	KindNote
	// KindRecover marks a crashed process resuming (crash-recovery model).
	KindRecover
	// KindTimerDrop marks a timer that expired on a down process. It is the
	// timer analogue of KindDrop: without it, crash interleavings involving
	// timers were unreconstructable from traces.
	KindTimerDrop
)

var kindNames = map[Kind]string{
	KindBroadcast: "broadcast",
	KindDeliver:   "deliver",
	KindDrop:      "drop",
	KindCrash:     "crash",
	KindTimer:     "timer",
	KindDecide:    "decide",
	KindFDChange:  "fd-change",
	KindNote:      "note",
	KindRecover:   "recover",
	KindTimerDrop: "timer-drop",
}

// String returns the lowercase event-kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one timed occurrence in an execution. PID is the internal
// process index the event concerns (the receiver for deliveries).
type Event struct {
	Time   int64
	Kind   Kind
	PID    int
	MsgTag string // message type tag, e.g. "POLLING", "PH1"
	Detail string
}

// String renders the event for logs. It is also the canonical text form
// used by WriteText and WriterSink, so a spilled trace file and a rendered
// in-memory trace are byte-identical.
func (e Event) String() string {
	if e.MsgTag == "" {
		return fmt.Sprintf("t=%d p%d %s %s", e.Time, e.PID, e.Kind, e.Detail)
	}
	return fmt.Sprintf("t=%d p%d %s %s %s", e.Time, e.PID, e.Kind, e.MsgTag, e.Detail)
}

// Stats aggregates execution costs.
type Stats struct {
	Broadcasts int
	Delivered  int
	Dropped    int
	Crashes    int
	Recoveries int
	Timers     int
	TimerDrops int
	Decisions  int
	ByTag      map[string]int // broadcasts per message tag
}

// DefaultBufSize is the staging-buffer capacity (events per batch) used
// when Recorder.BufSize is zero.
const DefaultBufSize = 4096

// Recorder accumulates events and statistics. The zero value is ready to
// use, records statistics only, and is safe for concurrent use (the
// goroutine runtime shares one across delivery goroutines). Statistics are
// kept in atomic counters, so stats-only recording never contends on a
// lock.
//
// Event retention (KeepEvents) runs through a fixed-size staging buffer of
// BufSize events. When the write position wraps (the buffer fills), the
// full batch is spilled in one step: to the attached Sink if SetSink was
// called, otherwise to an in-memory chunk list. Either way the recorder
// never re-copies previously recorded events the way a grow-forever
// append slice does, and with a Sink a trace of any length runs in
// constant memory.
//
// KeepEvents and BufSize must be set before the first Record call and not
// changed afterwards; concurrent Record calls read them without locking.
type Recorder struct {
	// KeepEvents controls whether events are retained (or spilled); when
	// false only statistics are kept.
	KeepEvents bool
	// BufSize is the staging-buffer capacity; 0 means DefaultBufSize.
	BufSize int

	broadcasts atomic.Int64
	delivered  atomic.Int64
	dropped    atomic.Int64
	crashes    atomic.Int64
	recoveries atomic.Int64
	timers     atomic.Int64
	timerDrops atomic.Int64
	decisions  atomic.Int64
	byTag      sync.Map // string -> *atomic.Int64

	mu       sync.Mutex
	buf      []Event   // staging buffer, cap = BufSize
	chunks   [][]Event // spilled batches (in-memory mode)
	sink     Sink      // spill target (streaming mode), nil = in-memory
	spilled  int       // events handed to the sink so far
	recorded int       // events retained so far (skew canary ordinal)
	err      error     // first sink error
}

// skewCanary, when set via the linker
// (-ldflags "-X repro/internal/trace.skewCanary=skew"), perturbs the
// detail of exactly one retained event (ordinal skewEventOrdinal). It
// exists so CI can plant a single-event determinism regression and
// require cmd/tracediff to localize it — the trace-layer analogue of
// internal/core's wedgeCanary. It must never be set in production builds.
var skewCanary string

// skewEventOrdinal is the retained-event ordinal the canary perturbs.
const skewEventOrdinal = 100

// NewRecorder returns a recorder that retains full event lists in memory.
func NewRecorder() *Recorder {
	return &Recorder{KeepEvents: true}
}

// NewSpillRecorder returns a recorder that streams full batches of
// bufSize events (0 = DefaultBufSize) to sink instead of retaining them.
// Call Flush after the run to push the final partial batch.
func NewSpillRecorder(sink Sink, bufSize int) *Recorder {
	return &Recorder{KeepEvents: true, BufSize: bufSize, sink: sink}
}

// SetSink attaches the spill target. It must be called before the first
// Record; attaching a sink after events were retained panics (the retained
// prefix would silently bypass the sink).
func (r *Recorder) SetSink(s Sink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) > 0 || len(r.chunks) > 0 {
		panic("trace: SetSink after events were recorded")
	}
	r.sink = s
}

// Retaining reports whether the recorder keeps (or spills) full events, as
// opposed to statistics only. The engine reads it once per run to skip
// tag/detail formatting entirely for stats-only recorders; a nil recorder
// is not retaining.
func (r *Recorder) Retaining() bool {
	return r != nil && r.KeepEvents
}

// Record adds an event.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	switch e.Kind {
	case KindBroadcast:
		r.broadcasts.Add(1)
		c, ok := r.byTag.Load(e.MsgTag)
		if !ok {
			c, _ = r.byTag.LoadOrStore(e.MsgTag, new(atomic.Int64))
		}
		c.(*atomic.Int64).Add(1)
	case KindDeliver:
		r.delivered.Add(1)
	case KindDrop:
		r.dropped.Add(1)
	case KindCrash:
		r.crashes.Add(1)
	case KindRecover:
		r.recoveries.Add(1)
	case KindTimer:
		r.timers.Add(1)
	case KindTimerDrop:
		r.timerDrops.Add(1)
	case KindDecide:
		r.decisions.Add(1)
	}
	if !r.KeepEvents {
		return
	}
	r.mu.Lock()
	if skewCanary != "" && r.recorded == skewEventOrdinal {
		e.Detail += " [" + skewCanary + "]"
	}
	r.recorded++
	if r.buf == nil {
		size := r.BufSize
		if size <= 0 {
			size = DefaultBufSize
		}
		r.buf = make([]Event, 0, size)
	}
	r.buf = append(r.buf, e)
	if len(r.buf) == cap(r.buf) {
		r.spillLocked()
	}
	r.mu.Unlock()
}

// spillLocked hands the full staging buffer off as one batch — to the sink
// in streaming mode, to the chunk list otherwise — and resets the write
// position. The batch slice's ownership passes to its destination; the
// recorder allocates a fresh buffer rather than copying, so a batch is
// written exactly once.
func (r *Recorder) spillLocked() {
	batch := r.buf
	r.buf = make([]Event, 0, cap(batch))
	if r.sink != nil {
		r.spilled += len(batch)
		if err := r.sink.Spill(batch); err != nil && r.err == nil {
			r.err = err
		}
		return
	}
	r.chunks = append(r.chunks, batch)
}

// Flush pushes the staging buffer's partial batch to the sink (a no-op in
// in-memory mode, where Events reads the buffer in place) and flushes the
// sink itself if it implements Flusher. It returns the first error the
// sink ever reported. Call it after a run before reading the sink's
// output.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sink != nil && len(r.buf) > 0 {
		r.spillLocked()
	}
	if f, ok := r.sink.(Flusher); ok {
		if err := f.Flush(); err != nil && r.err == nil {
			r.err = err
		}
	}
	return r.err
}

// Err returns the first error reported by the sink, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Stats returns a snapshot of the aggregate statistics.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	s := Stats{
		Broadcasts: int(r.broadcasts.Load()),
		Delivered:  int(r.delivered.Load()),
		Dropped:    int(r.dropped.Load()),
		Crashes:    int(r.crashes.Load()),
		Recoveries: int(r.recoveries.Load()),
		Timers:     int(r.timers.Load()),
		TimerDrops: int(r.timerDrops.Load()),
		Decisions:  int(r.decisions.Load()),
		ByTag:      make(map[string]int),
	}
	r.byTag.Range(func(k, v any) bool {
		s.ByTag[k.(string)] = int(v.(*atomic.Int64).Load())
		return true
	})
	return s
}

// Events returns a copy of the retained events in recording order: all
// spilled in-memory chunks followed by the staging buffer. It returns nil
// for stats-only recorders and in streaming mode (with a Sink attached the
// events live wherever the sink put them).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.KeepEvents || r.sink != nil {
		return nil
	}
	total := len(r.buf)
	for _, c := range r.chunks {
		total += len(c)
	}
	if total == 0 {
		return nil
	}
	out := make([]Event, 0, total)
	for _, c := range r.chunks {
		out = append(out, c...)
	}
	return append(out, r.buf...)
}

// Filter returns the recorded events matching the given kind.
func (r *Recorder) Filter(k Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}
