// Package trace records what happens during a simulated execution: message
// sends, deliveries, drops, crashes, timers, decisions, and failure-detector
// output changes. Recorders feed the property checkers (which need timed
// output samples and the ground-truth fault pattern) and the experiment
// harness (which reports message/round costs).
package trace

import (
	"fmt"
	"sync"
)

// Kind classifies an event.
type Kind int

// Event kinds. Broadcast counts one per broadcast invocation; Deliver/Drop
// count per (sender, receiver) copy, matching the paper's model where
// broadcast(m) sends one copy along every directed link.
const (
	KindBroadcast Kind = iota + 1
	KindDeliver
	KindDrop
	KindCrash
	KindTimer
	KindDecide
	KindFDChange
	KindNote
	// KindRecover marks a crashed process resuming (crash-recovery model).
	KindRecover
	// KindTimerDrop marks a timer that expired on a down process. It is the
	// timer analogue of KindDrop: without it, crash interleavings involving
	// timers were unreconstructable from traces.
	KindTimerDrop
)

var kindNames = map[Kind]string{
	KindBroadcast: "broadcast",
	KindDeliver:   "deliver",
	KindDrop:      "drop",
	KindCrash:     "crash",
	KindTimer:     "timer",
	KindDecide:    "decide",
	KindFDChange:  "fd-change",
	KindNote:      "note",
	KindRecover:   "recover",
	KindTimerDrop: "timer-drop",
}

// String returns the lowercase event-kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one timed occurrence in an execution. PID is the internal
// process index the event concerns (the receiver for deliveries).
type Event struct {
	Time   int64
	Kind   Kind
	PID    int
	MsgTag string // message type tag, e.g. "POLLING", "PH1"
	Detail string
}

// String renders the event for logs.
func (e Event) String() string {
	if e.MsgTag == "" {
		return fmt.Sprintf("t=%d p%d %s %s", e.Time, e.PID, e.Kind, e.Detail)
	}
	return fmt.Sprintf("t=%d p%d %s %s %s", e.Time, e.PID, e.Kind, e.MsgTag, e.Detail)
}

// Stats aggregates execution costs.
type Stats struct {
	Broadcasts int
	Delivered  int
	Dropped    int
	Crashes    int
	Recoveries int
	Timers     int
	TimerDrops int
	Decisions  int
	ByTag      map[string]int // broadcasts per message tag
}

// Recorder accumulates events and statistics. The zero value is ready to
// use and safe for concurrent use (the goroutine runtime shares one).
// KeepEvents controls whether the full event list is retained; statistics
// are always kept.
type Recorder struct {
	mu         sync.Mutex
	KeepEvents bool
	events     []Event
	stats      Stats
}

// NewRecorder returns a recorder that retains full event lists.
func NewRecorder() *Recorder {
	return &Recorder{KeepEvents: true}
}

// Record adds an event.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch e.Kind {
	case KindBroadcast:
		r.stats.Broadcasts++
		if r.stats.ByTag == nil {
			r.stats.ByTag = make(map[string]int)
		}
		r.stats.ByTag[e.MsgTag]++
	case KindDeliver:
		r.stats.Delivered++
	case KindDrop:
		r.stats.Dropped++
	case KindCrash:
		r.stats.Crashes++
	case KindRecover:
		r.stats.Recoveries++
	case KindTimer:
		r.stats.Timers++
	case KindTimerDrop:
		r.stats.TimerDrops++
	case KindDecide:
		r.stats.Decisions++
	}
	if r.KeepEvents {
		r.events = append(r.events, e)
	}
}

// Stats returns a snapshot of the aggregate statistics.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.ByTag = make(map[string]int, len(r.stats.ByTag))
	for k, v := range r.stats.ByTag {
		s.ByTag[k] = v
	}
	return s
}

// Events returns a copy of the recorded events (empty unless KeepEvents).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Filter returns the recorded events matching the given kind.
func (r *Recorder) Filter(k Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}
