// Package trace records what happens during a simulated execution: message
// sends, deliveries, drops, crashes, recoveries, timers, decisions, and
// failure-detector output changes. Recorders feed the property checkers
// (which need timed output samples and the ground-truth fault pattern) and
// the experiment harness (which reports message/round costs).
//
// # Recording modes
//
// A Recorder always keeps aggregate statistics (Stats), held in atomic
// counters so stats-only recording is lock-free. Full event retention is
// opt-in (KeepEvents) and runs through a fixed-size staging ring of
// BufSize events; when the write position wraps, the full batch spills in
// one step:
//
//   - in-memory mode (default): the batch moves to a chunk list; Events()
//     concatenates chunks plus the staging tail in recording order. Unlike
//     a grow-forever append slice, previously recorded events are never
//     re-copied.
//   - streaming mode (SetSink / NewSpillRecorder): the batch is handed to
//     a caller-provided Sink and never retained, so a trace of any length
//     records in constant memory. WriterSink streams the canonical text
//     rendering (one Event.String per line) to an io.Writer; a spilled
//     trace file is byte-identical to WriteText over the same run's
//     in-memory events. BinarySink streams the compact binary format
//     instead (varint fields, delta-coded times, inline string interning;
//     see binary.go) — about an order of magnitude smaller and free of
//     per-event formatting; BinaryReader/ReadBinary decode it back to the
//     exact Event values, so its text rendering is byte-identical too.
//
// The zero value is a ready, concurrency-safe, stats-only recorder; a nil
// *Recorder is safe to record into and reports empty results.
package trace
