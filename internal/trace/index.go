package trace

// The footer index of a v2 stream: one record per frame, enough to seek
// by virtual time or byte offset without scanning the body, to skip
// frames that cannot mention a pid (a 64-bit bloom per frame), and to
// binary-search the first divergence between two traces (the cumulative
// digest-before of each frame: two traces agree on every body byte before
// frame k iff their DigestBefore[k] agree — what cmd/tracediff exploits).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Frame is one index record: a run of FrameEvents consecutive events that
// decodes from Offset with fresh decoder state.
type Frame struct {
	// Ordinal is the index of the frame's first event in the stream.
	Ordinal uint64
	// Start is the virtual time of the frame's first event.
	Start int64
	// Offset is the absolute byte offset of the frame's first event.
	Offset uint64
	// PIDBloom is a 64-bit bloom filter (two bits per pid) over the
	// frame's event PIDs: a clear MayHavePID skips the frame for sure.
	PIDBloom uint64
	// DigestBefore is the FNV-64a digest of every body byte before the
	// frame (restart controls included). Frame 0 carries the digest's
	// offset basis.
	DigestBefore uint64
}

// MayHavePID reports whether the frame may contain events for pid; false
// is definitive, true may be a bloom collision.
func (f Frame) MayHavePID(pid int) bool {
	b := pidBloomBits(pid)
	return f.PIDBloom&b == b
}

// Index is a v2 stream's frame directory.
type Index struct {
	Frames []Frame
	// TotalEvents counts every event in the body.
	TotalEvents uint64
	// TotalDigest is the FNV-64a digest of the whole body (events and
	// restart controls; the end-of-events control is excluded).
	TotalDigest uint64
}

// FrameForTime returns the index of the last frame starting at or before
// t — for traces recorded in engine pop order (monotone time), the frame
// where events at time t begin. It returns 0 when every frame starts
// later, and -1 for an empty index.
func (ix *Index) FrameForTime(t int64) int {
	i := sort.Search(len(ix.Frames), func(i int) bool { return ix.Frames[i].Start > t })
	if i == 0 {
		if len(ix.Frames) == 0 {
			return -1
		}
		return 0
	}
	return i - 1
}

// parseIndex decodes the index section (frame directory through total
// digest, trailer excluded) and validates its internal consistency.
func parseIndex(r io.Reader) (*Index, error) {
	br, ok := r.(io.ByteReader)
	if !ok {
		bb := bufio.NewReader(r)
		br = bb
		r = bb
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, indexCorrupt("frame count", err)
	}
	if count > maxBinaryString {
		return nil, fmt.Errorf("%w: frame count %d exceeds limit", ErrBinaryTrace, count)
	}
	ix := &Index{Frames: make([]Frame, count)}
	var fixed [16]byte
	for i := range ix.Frames {
		f := &ix.Frames[i]
		if f.Ordinal, err = binary.ReadUvarint(br); err != nil {
			return nil, indexCorrupt("frame ordinal", err)
		}
		if f.Start, err = binary.ReadVarint(br); err != nil {
			return nil, indexCorrupt("frame start time", err)
		}
		if f.Offset, err = binary.ReadUvarint(br); err != nil {
			return nil, indexCorrupt("frame offset", err)
		}
		if _, err = io.ReadFull(r, fixed[:]); err != nil {
			return nil, indexCorrupt("frame bloom/digest", err)
		}
		f.PIDBloom = binary.LittleEndian.Uint64(fixed[:8])
		f.DigestBefore = binary.LittleEndian.Uint64(fixed[8:])
		if i > 0 {
			prev := ix.Frames[i-1]
			if f.Ordinal <= prev.Ordinal || f.Offset <= prev.Offset {
				return nil, fmt.Errorf("%w: frame %d not after its predecessor (ordinal %d≤%d or offset %d≤%d)",
					ErrBinaryTrace, i, f.Ordinal, prev.Ordinal, f.Offset, prev.Offset)
			}
		}
	}
	if ix.TotalEvents, err = binary.ReadUvarint(br); err != nil {
		return nil, indexCorrupt("total events", err)
	}
	if _, err = io.ReadFull(r, fixed[:8]); err != nil {
		return nil, indexCorrupt("total digest", err)
	}
	ix.TotalDigest = binary.LittleEndian.Uint64(fixed[:8])
	for _, f := range ix.Frames {
		if f.Ordinal >= ix.TotalEvents {
			return nil, fmt.Errorf("%w: frame ordinal %d beyond total events %d", ErrBinaryTrace, f.Ordinal, ix.TotalEvents)
		}
	}
	return ix, nil
}

func indexCorrupt(field string, err error) error {
	return fmt.Errorf("%w: index: truncated or invalid %s (%v)", ErrBinaryTrace, field, err)
}

// TraceFile is a v2 trace opened for random access: the trailer locates
// the index, the index locates frames, and OpenFrame decodes any frame
// without touching the rest of the body. This is what lets cmd/tracediff
// binary-search a multi-gigabyte pair of traces and decode only the
// divergent frame.
type TraceFile struct {
	r        io.ReaderAt
	meta     *Meta
	index    *Index
	indexOff uint64
}

// OpenTraceFile opens a complete v2 stream of the given size via random
// access. v1 streams and unfinalized v2 streams have no trailer and are
// rejected; stream them with NewBinaryReader instead.
func OpenTraceFile(r io.ReaderAt, size int64) (*TraceFile, error) {
	if size < 24 { // magic + end control + trailer
		return nil, fmt.Errorf("%w: file too short (%d bytes) for a finalized v2 trace", ErrBinaryTrace, size)
	}
	var trailer [16]byte
	if _, err := r.ReadAt(trailer[:], size-16); err != nil {
		return nil, err
	}
	if string(trailer[8:]) != string(indexEndMagic[:]) {
		return nil, fmt.Errorf("%w: no trailer end magic — not a finalized v2 trace (stream it with NewBinaryReader)", ErrBinaryTrace)
	}
	indexOff := binary.LittleEndian.Uint64(trailer[:8])
	if indexOff < 10 || int64(indexOff) > size-16 {
		return nil, fmt.Errorf("%w: trailer index offset %d outside file of %d bytes", ErrBinaryTrace, indexOff, size)
	}
	ix, err := parseIndex(io.NewSectionReader(r, int64(indexOff), size-16-int64(indexOff)))
	if err != nil {
		return nil, err
	}
	// The header parse both validates the magic/metadata and rejects v1.
	hr, err := newBinaryReader(bufio.NewReaderSize(io.NewSectionReader(r, 0, int64(indexOff)), 1<<12))
	if err != nil {
		return nil, err
	}
	if hr.Version() != 2 {
		return nil, fmt.Errorf("%w: version %d streams carry no index", ErrBinaryTrace, hr.Version())
	}
	for _, f := range ix.Frames {
		if f.Offset >= indexOff {
			return nil, fmt.Errorf("%w: frame offset %d beyond index at %d", ErrBinaryTrace, f.Offset, indexOff)
		}
	}
	return &TraceFile{r: r, meta: hr.Meta(), index: ix, indexOff: indexOff}, nil
}

// Meta returns the scenario fingerprint (nil if the stream carried none).
func (f *TraceFile) Meta() *Meta { return f.meta }

// Index returns the frame directory.
func (f *TraceFile) Index() *Index { return f.index }

// OpenFrame returns a reader over exactly frame i's events, positioned at
// its first event with fresh decoder state.
func (f *TraceFile) OpenFrame(i int) (*BinaryReader, error) {
	if i < 0 || i >= len(f.index.Frames) {
		return nil, fmt.Errorf("trace: frame %d out of range [0,%d)", i, len(f.index.Frames))
	}
	start := f.index.Frames[i].Offset
	end := f.indexOff - 2 // the end-of-events control precedes the index
	if i+1 < len(f.index.Frames) {
		end = f.index.Frames[i+1].Offset - 2 // the restart control precedes the next frame
	}
	section := io.NewSectionReader(f.r, int64(start), int64(end-start))
	return &BinaryReader{
		r:       &byteCounter{r: bufio.NewReaderSize(section, 1<<16)},
		version: 2,
		meta:    f.meta,
		bounded: true,
	}, nil
}
