package trace

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// genEvents builds a deterministic event stream long enough to wrap the
// staging buffer several times.
func genEvents(n int) []Event {
	out := make([]Event, 0, n)
	kinds := []Kind{KindBroadcast, KindDeliver, KindDrop, KindTimer, KindCrash, KindRecover, KindDecide}
	for i := 0; i < n; i++ {
		out = append(out, Event{
			Time:   int64(i),
			Kind:   kinds[i%len(kinds)],
			PID:    i % 5,
			MsgTag: fmt.Sprintf("T%d", i%3),
			Detail: fmt.Sprintf("e%d", i),
		})
	}
	return out
}

// TestRingWraparoundOrdering pins that events recorded across many staging-
// buffer wraparounds come back in recording order, with no event lost or
// duplicated at chunk boundaries.
func TestRingWraparoundOrdering(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 5, 8, 9, 1000} {
		r := &Recorder{KeepEvents: true, BufSize: 4}
		in := genEvents(n)
		for _, e := range in {
			r.Record(e)
		}
		got := r.Events()
		if len(got) != n {
			t.Fatalf("n=%d: got %d events", n, len(got))
		}
		for i := range got {
			if got[i] != in[i] {
				t.Fatalf("n=%d: event %d = %+v, want %+v", n, i, got[i], in[i])
			}
		}
	}
}

// sliceSink collects spilled batches and remembers their boundaries.
type sliceSink struct {
	batches [][]Event
}

func (s *sliceSink) Spill(batch []Event) error {
	s.batches = append(s.batches, batch)
	return nil
}

func (s *sliceSink) all() []Event {
	var out []Event
	for _, b := range s.batches {
		out = append(out, b...)
	}
	return out
}

// TestSpillChunkBoundaries pins batch sizes and cross-boundary ordering in
// streaming mode: every batch but the last is exactly BufSize events, the
// concatenation equals the recorded stream, and Events() reports nothing
// (the sink owns the trace).
func TestSpillChunkBoundaries(t *testing.T) {
	sink := &sliceSink{}
	r := NewSpillRecorder(sink, 8)
	in := genEvents(100)
	for _, e := range in {
		r.Record(e)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, b := range sink.batches[:len(sink.batches)-1] {
		if len(b) != 8 {
			t.Fatalf("batch %d has %d events, want 8", i, len(b))
		}
	}
	got := sink.all()
	if len(got) != len(in) {
		t.Fatalf("sink got %d events, want %d", len(got), len(in))
	}
	for i := range got {
		if got[i] != in[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], in[i])
		}
	}
	if r.Events() != nil {
		t.Fatal("Events() must be nil in streaming mode")
	}
}

// TestSpilledVsInMemoryIdentical runs the same stream through an in-memory
// recorder and a WriterSink recorder: the statistics must be equal and the
// rendered traces byte-identical.
func TestSpilledVsInMemoryIdentical(t *testing.T) {
	in := genEvents(777)

	mem := NewRecorder()
	mem.BufSize = 16
	var file bytes.Buffer
	spill := NewSpillRecorder(NewWriterSink(&file), 16)

	for _, e := range in {
		mem.Record(e)
		spill.Record(e)
	}
	if err := spill.Flush(); err != nil {
		t.Fatal(err)
	}

	ms, ss := mem.Stats(), spill.Stats()
	if fmt.Sprintf("%+v", ms) != fmt.Sprintf("%+v", ss) {
		t.Fatalf("stats diverge:\n in-memory: %+v\n   spilled: %+v", ms, ss)
	}

	var rendered bytes.Buffer
	if err := WriteText(&rendered, mem.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rendered.Bytes(), file.Bytes()) {
		t.Fatalf("spilled trace differs from rendered in-memory trace (%d vs %d bytes)", file.Len(), rendered.Len())
	}
}

type failSink struct{ err error }

func (s failSink) Spill([]Event) error { return s.err }

// TestSinkErrorSurfaces pins that the first sink error is kept and
// surfaced by Flush and Err (Record itself cannot return one).
func TestSinkErrorSurfaces(t *testing.T) {
	boom := errors.New("disk full")
	r := NewSpillRecorder(failSink{err: boom}, 2)
	for _, e := range genEvents(10) {
		r.Record(e)
	}
	if !errors.Is(r.Err(), boom) {
		t.Fatalf("Err() = %v, want %v", r.Err(), boom)
	}
	if !errors.Is(r.Flush(), boom) {
		t.Fatalf("Flush() = %v, want %v", r.Flush(), boom)
	}
}

// TestSetSinkAfterRecordPanics pins the SetSink precondition: attaching a
// sink once events were retained would silently lose the retained prefix.
func TestSetSinkAfterRecordPanics(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{Kind: KindBroadcast, MsgTag: "X"})
	defer func() {
		if recover() == nil {
			t.Fatal("SetSink after Record must panic")
		}
	}()
	r.SetSink(&sliceSink{})
}

// TestNilAndZeroValueSpillSafety pins that the spill additions keep the
// nil-receiver and zero-value contracts.
func TestNilAndZeroValueSpillSafety(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Flush() != nil || nilRec.Err() != nil {
		t.Fatal("nil recorder Flush/Err must be nil")
	}
	if nilRec.Retaining() {
		t.Fatal("nil recorder must not be retaining")
	}

	zero := &Recorder{}
	for _, e := range genEvents(10) {
		zero.Record(e)
	}
	if zero.Events() != nil {
		t.Fatal("zero-value recorder must retain nothing")
	}
	if zero.Flush() != nil {
		t.Fatal("zero-value Flush must be nil")
	}
	if zero.Retaining() {
		t.Fatal("zero-value recorder is stats-only")
	}
	if !NewRecorder().Retaining() {
		t.Fatal("NewRecorder must be retaining")
	}
	if got := zero.Stats().Delivered; got != 2 {
		t.Fatalf("zero-value stats broken: delivered = %d", got)
	}
}
