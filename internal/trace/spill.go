package trace

import (
	"bufio"
	"io"
)

// Sink receives batches of events spilled from a Recorder. Spill is called
// with batches in recording order; ownership of the batch slice passes to
// the sink (the recorder never touches it again), so sinks may retain it
// without copying. A Recorder calls Spill from at most one goroutine at a
// time (under its own lock); sinks need no locking of their own.
type Sink interface {
	Spill(batch []Event) error
}

// Flusher is implemented by sinks with buffered output; Recorder.Flush
// calls it after spilling the final partial batch.
type Flusher interface {
	Flush() error
}

// WriterSink streams spilled batches to an io.Writer as text, one event
// per line in Event.String form — the same rendering WriteText produces
// for an in-memory trace, so a spilled trace file is byte-identical to the
// rendered Events() of an in-memory recorder of the same run. Output is
// buffered; call Recorder.Flush (which reaches Flush here) before reading
// the destination.
type WriterSink struct {
	w *bufio.Writer
}

// NewWriterSink wraps w.
func NewWriterSink(w io.Writer) *WriterSink {
	return &WriterSink{w: bufio.NewWriter(w)}
}

// Spill implements Sink.
func (s *WriterSink) Spill(batch []Event) error {
	return WriteText(s.w, batch)
}

// Flush implements Flusher.
func (s *WriterSink) Flush() error { return s.w.Flush() }

// WriteText renders events one per line in their canonical String form.
// It is the single text serialization of traces: WriterSink uses it per
// batch, and callers rendering in-memory events through it get output
// byte-identical to a spilled trace file.
func WriteText(w io.Writer, events []Event) error {
	// A bufio.Writer is not re-wrapped: Writer.WriteString on the
	// underlying writer is enough, and WriterSink already buffers.
	for _, e := range events {
		if _, err := io.WriteString(w, e.String()); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
