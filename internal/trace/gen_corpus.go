//go:build ignore

// Generates the checked-in seed corpus for FuzzBinaryReader:
//
//	go run gen_corpus.go
//
// writes testdata/fuzz/FuzzBinaryReader/seed-* in the go-fuzz corpus file
// format. The seeds mirror the f.Add cases (valid v2 and v1 streams,
// truncations, and targeted header/index/trailer mutations) so
// `go test -run Fuzz` — the CI smoke — exercises them without a fuzzing
// engine.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/trace"
)

// encodeV1 hand-builds a version-1 stream (the old writer is gone; this
// mirrors index_test.go's helper of the same name).
func encodeV1(events []trace.Event) []byte {
	out := []byte{'H', 'D', 'T', 'R', 'A', 'C', 'E', 1}
	strs := map[string]uint64{}
	putStr := func(v string) {
		if v == "" {
			out = append(out, 0)
			return
		}
		if ref, ok := strs[v]; ok {
			out = binary.AppendUvarint(out, ref)
			return
		}
		ref := uint64(len(strs)) + 1
		strs[v] = ref
		out = binary.AppendUvarint(out, ref)
		out = binary.AppendUvarint(out, uint64(len(v)))
		out = append(out, v...)
	}
	var lastT int64
	for _, e := range events {
		out = binary.AppendUvarint(out, uint64(e.Kind))
		out = binary.AppendVarint(out, e.Time-lastT)
		lastT = e.Time
		out = binary.AppendUvarint(out, uint64(e.PID))
		putStr(e.MsgTag)
		putStr(e.Detail)
	}
	return out
}

func main() {
	events := []trace.Event{
		{Time: 1, Kind: trace.KindBroadcast, PID: 0, MsgTag: "HB"},
		{Time: 1, Kind: trace.KindDeliver, PID: 1, MsgTag: "HB"},
		{Time: 3, Kind: trace.KindDrop, PID: 2, MsgTag: "HB", Detail: "sender crashed mid-broadcast"},
		{Time: 7, Kind: trace.KindCrash, PID: 2},
		{Time: 9, Kind: trace.KindTimer, PID: 0, MsgTag: "T"},
	}
	var buf bytes.Buffer
	sink := trace.NewBinarySink(&buf)
	sink.FrameEvents = 2 // several frames from five events
	sink.SetMeta(&trace.Meta{Algo: "fig8", N: 3, L: 2, Seed: 1})
	if err := sink.Spill(events); err != nil {
		log.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		log.Fatal(err)
	}
	valid := buf.Bytes()

	badMagic := bytes.Clone(valid)
	badMagic[0] ^= 0xff
	badVersion := bytes.Clone(valid)
	badVersion[7] = 0x7f
	wildLen := bytes.Clone(valid)
	for i := 8; i < len(wildLen); i++ {
		wildLen[i] = 0xff
	}
	corruptIndex := bytes.Clone(valid)
	for i := len(corruptIndex) - 40; i < len(corruptIndex)-16; i++ {
		corruptIndex[i] ^= 0x55
	}
	v1 := encodeV1(events)

	seeds := map[string][]byte{
		"seed-valid":         valid,
		"seed-truncated":     valid[:len(valid)/2],
		"seed-header-only":   valid[:8],
		"seed-empty":         {},
		"seed-bad-magic":     badMagic,
		"seed-bad-version":   badVersion,
		"seed-wild-len":      wildLen,
		"seed-corrupt-index": corruptIndex,
		"seed-meta-cut":      valid[:12],
		"seed-trailing-byte": append(bytes.Clone(valid), 0x00),
		"seed-v1":            v1,
		"seed-v1-garbage":    append(bytes.Clone(v1), 0, 0, 0, 0, 0),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzBinaryReader")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
