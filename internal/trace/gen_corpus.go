//go:build ignore

// Generates the checked-in seed corpus for FuzzBinaryReader:
//
//	go run gen_corpus.go
//
// writes testdata/fuzz/FuzzBinaryReader/seed-* in the go-fuzz corpus file
// format. The seeds mirror the f.Add cases (a valid stream, truncations,
// and targeted header/length mutations) so `go test -run Fuzz` — the CI
// smoke — exercises them without a fuzzing engine.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/trace"
)

func main() {
	events := []trace.Event{
		{Time: 1, Kind: trace.KindBroadcast, PID: 0, MsgTag: "HB"},
		{Time: 1, Kind: trace.KindDeliver, PID: 1, MsgTag: "HB"},
		{Time: 3, Kind: trace.KindDrop, PID: 2, MsgTag: "HB", Detail: "sender crashed mid-broadcast"},
		{Time: 7, Kind: trace.KindCrash, PID: 2},
		{Time: 9, Kind: trace.KindTimer, PID: 0, MsgTag: "T"},
	}
	var buf bytes.Buffer
	sink := trace.NewBinarySink(&buf)
	if err := sink.Spill(events); err != nil {
		log.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		log.Fatal(err)
	}
	valid := buf.Bytes()

	badMagic := bytes.Clone(valid)
	badMagic[0] ^= 0xff
	badVersion := bytes.Clone(valid)
	badVersion[7] = 0x7f
	wildLen := bytes.Clone(valid)
	for i := 8; i < len(wildLen); i++ {
		wildLen[i] = 0xff
	}

	seeds := map[string][]byte{
		"seed-valid":       valid,
		"seed-truncated":   valid[:len(valid)/2],
		"seed-header-only": valid[:8],
		"seed-empty":       {},
		"seed-bad-magic":   badMagic,
		"seed-bad-version": badVersion,
		"seed-wild-len":    wildLen,
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzBinaryReader")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
