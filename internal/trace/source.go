package trace

import "io"

// EventSource is the pull face of an event stream: Next returns events
// in recording order and io.EOF at the end. It is the seam that decouples
// checkers from live engines — a BinaryReader over a spilled trace file
// and a SliceSource over an in-memory event list are both EventSources,
// so every consumer written against this interface replays a recorded
// run exactly as it would have observed the live one.
type EventSource interface {
	Next() (Event, error)
}

// SliceSource is an EventSource over an in-memory event slice, in order.
type SliceSource struct {
	evs []Event
	i   int
}

// NewSliceSource wraps evs; the slice is read, not copied or mutated.
func NewSliceSource(evs []Event) *SliceSource { return &SliceSource{evs: evs} }

// Next implements EventSource.
func (s *SliceSource) Next() (Event, error) {
	if s.i >= len(s.evs) {
		return Event{}, io.EOF
	}
	e := s.evs[s.i]
	s.i++
	return e, nil
}

// Drain pulls src to exhaustion, handing each event to fn. It stops at
// the first error from either side; io.EOF from the source is the clean
// end and returns nil.
func Drain(src EventSource, fn func(Event) error) error {
	for {
		e, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(e); err != nil {
			return err
		}
	}
}
