package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecorderStats(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{Time: 1, Kind: KindBroadcast, PID: 0, MsgTag: "PH1"})
	r.Record(Event{Time: 1, Kind: KindBroadcast, PID: 1, MsgTag: "PH1"})
	r.Record(Event{Time: 2, Kind: KindBroadcast, PID: 0, MsgTag: "COORD"})
	r.Record(Event{Time: 2, Kind: KindDeliver, PID: 1, MsgTag: "PH1"})
	r.Record(Event{Time: 3, Kind: KindDrop, PID: 1})
	r.Record(Event{Time: 4, Kind: KindCrash, PID: 2})
	r.Record(Event{Time: 5, Kind: KindTimer, PID: 0})
	r.Record(Event{Time: 6, Kind: KindDecide, PID: 0})

	s := r.Stats()
	if s.Broadcasts != 3 || s.Delivered != 1 || s.Dropped != 1 || s.Crashes != 1 || s.Timers != 1 || s.Decisions != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.ByTag["PH1"] != 2 || s.ByTag["COORD"] != 1 {
		t.Errorf("ByTag = %v", s.ByTag)
	}
	if got := len(r.Events()); got != 8 {
		t.Errorf("events = %d, want 8", got)
	}
	if got := len(r.Filter(KindBroadcast)); got != 3 {
		t.Errorf("Filter(broadcast) = %d, want 3", got)
	}
}

func TestStatsSnapshotIsolated(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{Kind: KindBroadcast, MsgTag: "X"})
	s := r.Stats()
	s.ByTag["X"] = 99
	if r.Stats().ByTag["X"] != 1 {
		t.Error("Stats must return a copied ByTag map")
	}
}

func TestKeepEventsOff(t *testing.T) {
	r := &Recorder{} // zero value: stats only
	r.Record(Event{Kind: KindBroadcast, MsgTag: "X"})
	if len(r.Events()) != 0 {
		t.Error("zero-value recorder should not retain events")
	}
	if r.Stats().Broadcasts != 1 {
		t.Error("stats must still accumulate")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindBroadcast}) // must not panic
	if r.Stats().Broadcasts != 0 {
		t.Error("nil recorder stats should be zero")
	}
	if r.Events() != nil {
		t.Error("nil recorder events should be nil")
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		//detlint:ignore unsortedgo concurrency smoke for the atomic stats counters; asserts totals only, nothing here reaches replayed trace bytes
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Record(Event{Kind: KindBroadcast, MsgTag: "T"})
			}
		}()
	}
	wg.Wait()
	if got := r.Stats().Broadcasts; got != 800 {
		t.Errorf("Broadcasts = %d, want 800", got)
	}
}

func TestKindAndEventStrings(t *testing.T) {
	if KindBroadcast.String() != "broadcast" || KindFDChange.String() != "fd-change" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should embed its number")
	}
	e := Event{Time: 7, Kind: KindDeliver, PID: 2, MsgTag: "PH1"}
	if s := e.String(); !strings.Contains(s, "t=7") || !strings.Contains(s, "PH1") {
		t.Errorf("event string = %q", s)
	}
	e2 := Event{Time: 1, Kind: KindCrash, PID: 0}
	if s := e2.String(); !strings.Contains(s, "crash") {
		t.Errorf("event string = %q", s)
	}
}
