package trace

// Compact binary trace format. Text rendering dominates spill cost (every
// event is a fmt.Sprintf), and text traces at large n dominate disk: the
// binary sink writes roughly an order of magnitude less and formats
// nothing. The encoding is self-describing and streaming-decodable:
//
//	header:  8-byte magic "HDTRACE\x01" (the trailing byte is the format
//	         version), then no global tables — strings are interned inline.
//	event:   kind     uvarint
//	         Δtime    signed varint (zigzag), delta vs the previous
//	                  event's time (first event: delta vs 0)
//	         pid      uvarint
//	         tag      string ref
//	         detail   string ref
//	string ref: uvarint r. r == 0 is the empty string; r <= len(table) is
//	         table entry r-1; r == len(table)+1 introduces a new string —
//	         a uvarint byte length and the bytes follow, and the string is
//	         appended to the table. Any larger r is a corruption error.
//
// Both sides build the identical table in stream order, so references
// never need transmitting ahead of use and decoding needs one pass.
// Deltas are signed because recording order is engine pop order, which is
// monotone in time only within one engine; merged or hand-built traces
// may step backwards.
//
// The decoder reproduces Event values exactly, so rendering a decoded
// trace with WriteText is byte-identical to what WriterSink would have
// written for the same run.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// binaryMagic identifies a binary trace stream; the last byte is the
// format version.
var binaryMagic = [8]byte{'H', 'D', 'T', 'R', 'A', 'C', 'E', 1}

// maxBinaryString caps one interned string's byte length — far beyond any
// tag or detail the engine emits — so a corrupt length prefix fails fast
// instead of driving a giant allocation.
const maxBinaryString = 1 << 20

// ErrBinaryTrace tags all binary-trace format errors; decode failures wrap
// it, so errors.Is(err, ErrBinaryTrace) distinguishes corruption from I/O.
var ErrBinaryTrace = errors.New("trace: binary format error")

// BinarySink streams spilled batches in the binary format. Create with
// NewBinarySink, attach via NewSpillRecorder or Recorder.SetSink, and call
// Recorder.Flush after the run (BinarySink buffers). Decode the result
// with BinaryReader or ReadBinary.
type BinarySink struct {
	w       *bufio.Writer
	wrote   bool
	strs    map[string]uint64
	lastT   int64
	scratch [2 * binary.MaxVarintLen64]byte
}

// NewBinarySink wraps w. The header is written lazily with the first
// spill, so constructing a sink on a file never touched by the run leaves
// it empty rather than header-only.
func NewBinarySink(w io.Writer) *BinarySink {
	return &BinarySink{w: bufio.NewWriterSize(w, 1<<16), strs: make(map[string]uint64)}
}

// Spill implements Sink.
func (s *BinarySink) Spill(batch []Event) error {
	if !s.wrote {
		s.wrote = true
		if _, err := s.w.Write(binaryMagic[:]); err != nil {
			return err
		}
	}
	for _, e := range batch {
		n := binary.PutUvarint(s.scratch[:], uint64(e.Kind))
		n += binary.PutVarint(s.scratch[n:], e.Time-s.lastT)
		s.lastT = e.Time
		if _, err := s.w.Write(s.scratch[:n]); err != nil {
			return err
		}
		n = binary.PutUvarint(s.scratch[:], uint64(e.PID))
		if _, err := s.w.Write(s.scratch[:n]); err != nil {
			return err
		}
		if err := s.putString(e.MsgTag); err != nil {
			return err
		}
		if err := s.putString(e.Detail); err != nil {
			return err
		}
	}
	return nil
}

func (s *BinarySink) putString(v string) error {
	if v == "" {
		return s.w.WriteByte(0)
	}
	if ref, ok := s.strs[v]; ok {
		n := binary.PutUvarint(s.scratch[:], ref)
		_, err := s.w.Write(s.scratch[:n])
		return err
	}
	ref := uint64(len(s.strs)) + 1
	s.strs[v] = ref
	n := binary.PutUvarint(s.scratch[:], ref)
	n += binary.PutUvarint(s.scratch[n:], uint64(len(v)))
	if _, err := s.w.Write(s.scratch[:n]); err != nil {
		return err
	}
	_, err := s.w.WriteString(v)
	return err
}

// Flush implements Flusher.
func (s *BinarySink) Flush() error { return s.w.Flush() }

// BinaryReader decodes a binary trace stream event by event, holding only
// the string table — a trace of any length decodes in memory proportional
// to its distinct tags/details, not its events.
type BinaryReader struct {
	r     *bufio.Reader
	strs  []string
	lastT int64
}

// NewBinaryReader validates the stream header and returns a reader
// positioned at the first event.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: stream shorter than header", ErrBinaryTrace)
		}
		return nil, err
	}
	if magic != binaryMagic {
		if bytes.Equal(magic[:7], binaryMagic[:7]) {
			return nil, fmt.Errorf("%w: unsupported version %d", ErrBinaryTrace, magic[7])
		}
		return nil, fmt.Errorf("%w: bad magic %q", ErrBinaryTrace, magic[:])
	}
	return &BinaryReader{r: br}, nil
}

// Next returns the next event. It returns io.EOF at a clean end of stream;
// a stream truncated mid-event returns an error wrapping ErrBinaryTrace.
func (d *BinaryReader) Next() (Event, error) {
	kind, err := binary.ReadUvarint(d.r)
	if err != nil {
		if err == io.EOF {
			return Event{}, io.EOF // clean boundary: stream ends between events
		}
		return Event{}, d.corrupt("event kind", err)
	}
	dt, err := binary.ReadVarint(d.r)
	if err != nil {
		return Event{}, d.corrupt("time delta", err)
	}
	d.lastT += dt
	pid, err := binary.ReadUvarint(d.r)
	if err != nil {
		return Event{}, d.corrupt("pid", err)
	}
	tag, err := d.getString()
	if err != nil {
		return Event{}, d.corrupt("tag", err)
	}
	detail, err := d.getString()
	if err != nil {
		return Event{}, d.corrupt("detail", err)
	}
	return Event{Time: d.lastT, Kind: Kind(kind), PID: int(pid), MsgTag: tag, Detail: detail}, nil
}

func (d *BinaryReader) getString() (string, error) {
	ref, err := binary.ReadUvarint(d.r)
	if err != nil {
		return "", err
	}
	switch {
	case ref == 0:
		return "", nil
	case ref <= uint64(len(d.strs)):
		return d.strs[ref-1], nil
	case ref == uint64(len(d.strs))+1:
		size, err := binary.ReadUvarint(d.r)
		if err != nil {
			return "", err
		}
		if size > maxBinaryString {
			return "", fmt.Errorf("string length %d exceeds limit", size)
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(d.r, buf); err != nil {
			return "", err
		}
		s := string(buf)
		d.strs = append(d.strs, s)
		return s, nil
	default:
		return "", fmt.Errorf("string ref %d beyond table size %d", ref, len(d.strs))
	}
}

func (d *BinaryReader) corrupt(field string, err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: stream truncated reading %s", ErrBinaryTrace, field)
	}
	if errors.Is(err, ErrBinaryTrace) {
		return err
	}
	return fmt.Errorf("%w: %s: %v", ErrBinaryTrace, field, err)
}

// ReadBinary decodes a whole binary trace into memory. Large traces should
// stream through BinaryReader.Next instead.
func ReadBinary(r io.Reader) ([]Event, error) {
	d, err := NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	var out []Event
	for {
		e, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}
