package trace

// Compact binary trace format. Text rendering dominates spill cost (every
// event is a fmt.Sprintf), and text traces at large n dominate disk: the
// binary sink writes roughly an order of magnitude less and formats
// nothing. Version 2 (what BinarySink writes) is self-describing and
// seekable; version 1 streams remain readable.
//
//	header:  8-byte magic "HDTRACE\x02" (the trailing byte is the format
//	         version), then the metadata block: a uvarint byte length and
//	         that many bytes of JSON (Meta). Length 0 = no metadata.
//	body:    events, grouped into frames of FrameEvents events each. The
//	         string table and the time base reset at every frame boundary,
//	         so a frame decodes from its own first byte with fresh state —
//	         that self-containment is what makes the index useful.
//	event:   kind     uvarint (1..KindTimerDrop; 0 escapes to a control
//	                  record, any other value is a corruption error)
//	         Δtime    signed varint (zigzag), delta vs the previous
//	                  event's time (first event of a frame: delta vs 0)
//	         pid      uvarint
//	         tag      string ref
//	         detail   string ref
//	control: kind 0, then a uvarint code: 1 = frame restart (reset string
//	         table and time base), 2 = end of events (the index follows).
//	string ref: uvarint r. r == 0 is the empty string; r <= len(table) is
//	         table entry r-1; r == len(table)+1 introduces a new string —
//	         a uvarint byte length and the bytes follow, and the string is
//	         appended to the table. Any larger r is a corruption error.
//	index:   frame count uvarint, then per frame: ordinal uvarint (index
//	         of the frame's first event), start time varint, byte offset
//	         uvarint (absolute file offset of the frame's first event),
//	         pid bloom 8 bytes LE, digest-before 8 bytes LE (FNV-64a of
//	         every body byte before the frame, restart controls included);
//	         then total events uvarint and total digest 8 bytes LE.
//	trailer: index offset 8 bytes LE, then the 8-byte end magic
//	         "HDIXEND2" — fixed-size, so a reader with random access finds
//	         the index by reading the last 16 bytes (OpenTraceFile).
//
// Both sides build the identical string table in stream order, so
// references never need transmitting ahead of use and decoding needs one
// pass. Deltas are signed because recording order is engine pop order,
// which is monotone in time only within one engine; merged or hand-built
// traces may step backwards.
//
// Version 1 is the same event encoding with no metadata, no frames, no
// index and no trailer: the stream simply ends after the last event. The
// v2 end-of-events control plus trailer make truncation and trailing
// garbage detectable exactly; in v1 the kind-range check catches stray
// bytes that version's reader silently accepted as phantom events.
//
// The decoder reproduces Event values exactly, so rendering a decoded
// trace with WriteText is byte-identical to what WriterSink would have
// written for the same run.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// binaryMagic identifies a binary trace stream; the last byte is the
// format version BinarySink writes.
var binaryMagic = [8]byte{'H', 'D', 'T', 'R', 'A', 'C', 'E', 2}

// binaryMagicV1 is the version-1 header, still accepted by readers.
var binaryMagicV1 = [8]byte{'H', 'D', 'T', 'R', 'A', 'C', 'E', 1}

// indexEndMagic closes a v2 stream; OpenTraceFile seeks it from the end.
var indexEndMagic = [8]byte{'H', 'D', 'I', 'X', 'E', 'N', 'D', '2'}

// Control codes following an escaped kind 0.
const (
	controlRestart = 1 // frame boundary: reset string table and time base
	controlEnd     = 2 // end of events: the index follows
)

// DefaultFrameEvents is the events-per-frame stride used when
// BinarySink.FrameEvents is zero. One frame per spill batch keeps index
// granularity aligned with the recorder's staging buffer.
const DefaultFrameEvents = 4096

// maxBinaryString caps one interned string's byte length — far beyond any
// tag or detail the engine emits — so a corrupt length prefix fails fast
// instead of driving a giant allocation. The same cap bounds the metadata
// block and the frame count.
const maxBinaryString = 1 << 20

// ErrBinaryTrace tags all binary-trace format errors; decode failures wrap
// it, so errors.Is(err, ErrBinaryTrace) distinguishes corruption from I/O.
var ErrBinaryTrace = errors.New("trace: binary format error")

// ErrTrailingData reports bytes following a complete stream — after the
// v2 trailer, where nothing legitimate can live. It wraps ErrBinaryTrace.
// Version-1 streams have no end marker, so for them stray bytes surface
// as an invalid-kind or truncated-event error instead; either way extra
// bytes are never silently ignored.
var ErrTrailingData = fmt.Errorf("%w: trailing data after end of stream", ErrBinaryTrace)

// fnvOffset/fnvPrime are the FNV-64a parameters; the digest is computed
// incrementally over body bytes as they stream out, so no hashing pass
// re-reads the file.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvSum(h uint64, p []byte) uint64 {
	for _, b := range p {
		h = (h ^ uint64(b)) * fnvPrime
	}
	return h
}

// splitmix64 is the mixer behind the frame pid blooms (and the engine's
// fate streams): two bit positions per pid in a 64-bit filter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func pidBloomBits(pid int) uint64 {
	h := splitmix64(uint64(pid))
	return 1<<(h&63) | 1<<((h>>6)&63)
}

// BinarySink streams spilled batches in the binary format. Create with
// NewBinarySink, attach via NewSpillRecorder or Recorder.SetSink, and call
// Recorder.Flush after the run — Flush finalizes the stream (writes the
// end-of-events marker, the index and the trailer), so it must come after
// the last event. Decode the result with BinaryReader, ReadBinary, or —
// for seeking — OpenTraceFile.
type BinarySink struct {
	// FrameEvents is the events-per-frame stride (0 = DefaultFrameEvents).
	// Set before the first spill.
	FrameEvents int

	w       *bufio.Writer
	wrote   bool
	closed  bool
	meta    *Meta
	strs    map[string]uint64
	lastT   int64
	enc     []byte // per-event encode buffer
	err     error
	off     uint64  // bytes written to the stream so far
	digest  uint64  // FNV-64a over body bytes (events + restarts)
	count   uint64  // events written
	inFrame int     // events in the open frame
	cur     Frame   // the open frame's index record
	frames  []Frame // completed frame records
}

// NewBinarySink wraps w. The header is written lazily with the first
// spill, so constructing a sink on a file never touched by the run leaves
// it empty rather than header-only.
func NewBinarySink(w io.Writer) *BinarySink {
	return &BinarySink{w: bufio.NewWriterSize(w, 1<<16), strs: make(map[string]uint64), digest: fnvOffset}
}

// SetMeta attaches the scenario fingerprint written into the stream
// header. It must be called before the first spill; later calls panic
// (the header is already on the wire).
func (s *BinarySink) SetMeta(m *Meta) {
	if s.wrote {
		panic("trace: SetMeta after the header was written")
	}
	s.meta = m
}

// header writes the magic and metadata block.
func (s *BinarySink) header() error {
	s.wrote = true
	var metaJSON []byte
	if s.meta != nil {
		b, err := json.Marshal(s.meta)
		if err != nil {
			return fmt.Errorf("trace: encoding metadata: %w", err)
		}
		metaJSON = b
	}
	hdr := append([]byte{}, binaryMagic[:]...)
	hdr = binary.AppendUvarint(hdr, uint64(len(metaJSON)))
	hdr = append(hdr, metaJSON...)
	if _, err := s.w.Write(hdr); err != nil {
		return err
	}
	s.off = uint64(len(hdr))
	return nil
}

// writeBody writes p as body bytes: counted and digested.
func (s *BinarySink) writeBody(p []byte) error {
	if _, err := s.w.Write(p); err != nil {
		return err
	}
	s.off += uint64(len(p))
	s.digest = fnvSum(s.digest, p)
	return nil
}

// Spill implements Sink.
func (s *BinarySink) Spill(batch []Event) error {
	if s.closed {
		return fmt.Errorf("trace: spill after the stream was finalized")
	}
	if !s.wrote {
		if err := s.header(); err != nil {
			return err
		}
	}
	stride := s.FrameEvents
	if stride <= 0 {
		stride = DefaultFrameEvents
	}
	for _, e := range batch {
		if s.inFrame == 0 {
			s.cur = Frame{Ordinal: s.count, Start: e.Time, Offset: s.off, DigestBefore: s.digest}
		}
		s.enc = s.enc[:0]
		s.enc = binary.AppendUvarint(s.enc, uint64(e.Kind))
		s.enc = binary.AppendVarint(s.enc, e.Time-s.lastT)
		s.lastT = e.Time
		s.enc = binary.AppendUvarint(s.enc, uint64(e.PID))
		s.enc = s.appendString(s.enc, e.MsgTag)
		s.enc = s.appendString(s.enc, e.Detail)
		if err := s.writeBody(s.enc); err != nil {
			return err
		}
		s.cur.PIDBloom |= pidBloomBits(e.PID)
		s.count++
		s.inFrame++
		if s.inFrame == stride {
			if err := s.closeFrame(); err != nil {
				return err
			}
		}
	}
	return nil
}

// closeFrame records the open frame in the index and writes the restart
// control that resets the decoder's string table and time base, making
// the next frame self-contained.
func (s *BinarySink) closeFrame() error {
	s.frames = append(s.frames, s.cur)
	s.inFrame = 0
	s.lastT = 0
	clear(s.strs)
	return s.writeBody([]byte{0, controlRestart})
}

func (s *BinarySink) appendString(enc []byte, v string) []byte {
	if v == "" {
		return append(enc, 0)
	}
	if ref, ok := s.strs[v]; ok {
		return binary.AppendUvarint(enc, ref)
	}
	ref := uint64(len(s.strs)) + 1
	s.strs[v] = ref
	enc = binary.AppendUvarint(enc, ref)
	enc = binary.AppendUvarint(enc, uint64(len(v)))
	return append(enc, v...)
}

// Flush implements Flusher: it finalizes the stream — end-of-events
// control, index, trailer — and flushes the underlying writer. The first
// call finalizes; later calls only re-flush (so Recorder.Flush stays
// idempotent), and spilling after finalization is an error.
func (s *BinarySink) Flush() error {
	if s.wrote && !s.closed {
		s.closed = true
		if s.inFrame > 0 {
			s.frames = append(s.frames, s.cur)
		}
		// The end control is body-positioned but deliberately outside the
		// digest: digests cover event bytes, and every frame's
		// DigestBefore precedes it anyway.
		if _, err := s.w.Write([]byte{0, controlEnd}); err != nil {
			return err
		}
		s.off += 2
		indexOff := s.off
		s.enc = s.enc[:0]
		s.enc = binary.AppendUvarint(s.enc, uint64(len(s.frames)))
		for _, f := range s.frames {
			s.enc = binary.AppendUvarint(s.enc, f.Ordinal)
			s.enc = binary.AppendVarint(s.enc, f.Start)
			s.enc = binary.AppendUvarint(s.enc, f.Offset)
			s.enc = binary.LittleEndian.AppendUint64(s.enc, f.PIDBloom)
			s.enc = binary.LittleEndian.AppendUint64(s.enc, f.DigestBefore)
		}
		s.enc = binary.AppendUvarint(s.enc, s.count)
		s.enc = binary.LittleEndian.AppendUint64(s.enc, s.digest)
		s.enc = binary.LittleEndian.AppendUint64(s.enc, indexOff)
		s.enc = append(s.enc, indexEndMagic[:]...)
		if _, err := s.w.Write(s.enc); err != nil {
			return err
		}
	}
	return s.w.Flush()
}

// byteCounter counts consumed bytes so the reader can cross-check the
// trailer's index offset and position frame errors.
type byteCounter struct {
	r *bufio.Reader
	n uint64
}

func (b *byteCounter) ReadByte() (byte, error) {
	c, err := b.r.ReadByte()
	if err == nil {
		b.n++
	}
	return c, err
}

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += uint64(n)
	return n, err
}

// BinaryReader decodes a binary trace stream event by event, holding only
// the string table — a trace of any length decodes in memory proportional
// to its distinct tags/details, not its events. It implements EventSource.
type BinaryReader struct {
	r       *byteCounter
	version int
	meta    *Meta
	index   *Index
	strs    []string
	lastT   int64
	counted uint64
	done    bool
	// bounded marks a reader over a frame section cut out of a larger
	// file: the section ends between events with no end-of-events marker,
	// so a clean EOF there is the legitimate end.
	bounded bool
}

var _ EventSource = (*BinaryReader)(nil)

// NewBinaryReader validates the stream header (either version) and
// returns a reader positioned at the first event.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	return newBinaryReader(bufio.NewReaderSize(r, 1<<16))
}

func newBinaryReader(br *bufio.Reader) (*BinaryReader, error) {
	d := &BinaryReader{r: &byteCounter{r: br}}
	var magic [8]byte
	if _, err := io.ReadFull(d.r, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: stream shorter than header", ErrBinaryTrace)
		}
		return nil, err
	}
	switch magic {
	case binaryMagic:
		d.version = 2
	case binaryMagicV1:
		d.version = 1
		return d, nil
	default:
		if bytes.Equal(magic[:7], binaryMagic[:7]) {
			return nil, fmt.Errorf("%w: unsupported version %d", ErrBinaryTrace, magic[7])
		}
		return nil, fmt.Errorf("%w: bad magic %q", ErrBinaryTrace, magic[:])
	}
	size, err := binary.ReadUvarint(d.r)
	if err != nil {
		return nil, d.corrupt("metadata length", err)
	}
	if size > maxBinaryString {
		return nil, fmt.Errorf("%w: metadata length %d exceeds limit", ErrBinaryTrace, size)
	}
	if size > 0 {
		buf := make([]byte, size)
		if _, err := io.ReadFull(d.r, buf); err != nil {
			return nil, d.corrupt("metadata", err)
		}
		m := new(Meta)
		if err := json.Unmarshal(buf, m); err != nil {
			return nil, fmt.Errorf("%w: metadata: %v", ErrBinaryTrace, err)
		}
		d.meta = m
	}
	return d, nil
}

// Version reports the stream's format version (1 or 2).
func (d *BinaryReader) Version() int { return d.version }

// Meta returns the stream's scenario fingerprint, or nil for v1 streams
// and v2 streams written without one.
func (d *BinaryReader) Meta() *Meta { return d.meta }

// Index returns the stream's frame index. It is available only after
// Next returned io.EOF (the index trails the events); v1 streams and
// frame sections have none.
func (d *BinaryReader) Index() *Index { return d.index }

// Next implements EventSource: it returns the next event, io.EOF at a
// clean end of stream, and an error wrapping ErrBinaryTrace for any
// corruption — truncation mid-event, an invalid kind, a v2 stream cut
// off before its end-of-events marker, or trailing bytes after the
// trailer (ErrTrailingData).
func (d *BinaryReader) Next() (Event, error) {
	for {
		if d.done {
			return Event{}, io.EOF
		}
		kind, err := binary.ReadUvarint(d.r)
		if err != nil {
			if err == io.EOF {
				if d.version == 1 || d.bounded {
					d.done = true
					return Event{}, io.EOF // clean boundary between events
				}
				return Event{}, fmt.Errorf("%w: stream ends without an end-of-events marker", ErrBinaryTrace)
			}
			return Event{}, d.corrupt("event kind", err)
		}
		if kind == 0 && d.version >= 2 {
			code, err := binary.ReadUvarint(d.r)
			if err != nil {
				return Event{}, d.corrupt("control code", err)
			}
			switch code {
			case controlRestart:
				d.strs = d.strs[:0]
				d.lastT = 0
				continue
			case controlEnd:
				d.done = true
				if d.bounded {
					return Event{}, io.EOF
				}
				if err := d.readIndexAndTrailer(); err != nil {
					return Event{}, err
				}
				return Event{}, io.EOF
			default:
				return Event{}, fmt.Errorf("%w: unknown control code %d", ErrBinaryTrace, code)
			}
		}
		if kind == 0 || kind > uint64(KindTimerDrop) {
			return Event{}, fmt.Errorf("%w: invalid event kind %d at offset %d", ErrBinaryTrace, kind, d.r.n)
		}
		dt, err := binary.ReadVarint(d.r)
		if err != nil {
			return Event{}, d.corrupt("time delta", err)
		}
		d.lastT += dt
		pid, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Event{}, d.corrupt("pid", err)
		}
		tag, err := d.getString()
		if err != nil {
			return Event{}, d.corrupt("tag", err)
		}
		detail, err := d.getString()
		if err != nil {
			return Event{}, d.corrupt("detail", err)
		}
		d.counted++
		return Event{Time: d.lastT, Kind: Kind(kind), PID: int(pid), MsgTag: tag, Detail: detail}, nil
	}
}

// readIndexAndTrailer parses the index that follows the end-of-events
// control, validates it against the events just decoded, and requires the
// stream to end exactly at the trailer.
func (d *BinaryReader) readIndexAndTrailer() error {
	indexStart := d.r.n
	ix, err := parseIndex(d.r)
	if err != nil {
		return err
	}
	if ix.TotalEvents != d.counted {
		return fmt.Errorf("%w: index records %d events but the stream holds %d", ErrBinaryTrace, ix.TotalEvents, d.counted)
	}
	var trailer [16]byte
	if _, err := io.ReadFull(d.r, trailer[:]); err != nil {
		return d.corrupt("trailer", err)
	}
	if !bytes.Equal(trailer[8:], indexEndMagic[:]) {
		return fmt.Errorf("%w: bad end magic %q", ErrBinaryTrace, trailer[8:])
	}
	if off := binary.LittleEndian.Uint64(trailer[:8]); off != indexStart {
		return fmt.Errorf("%w: trailer points the index at offset %d, found at %d", ErrBinaryTrace, off, indexStart)
	}
	if _, err := d.r.ReadByte(); err != io.EOF {
		return ErrTrailingData
	}
	d.index = ix
	return nil
}

func (d *BinaryReader) getString() (string, error) {
	ref, err := binary.ReadUvarint(d.r)
	if err != nil {
		return "", err
	}
	switch {
	case ref == 0:
		return "", nil
	case ref <= uint64(len(d.strs)):
		return d.strs[ref-1], nil
	case ref == uint64(len(d.strs))+1:
		size, err := binary.ReadUvarint(d.r)
		if err != nil {
			return "", err
		}
		if size > maxBinaryString {
			return "", fmt.Errorf("string length %d exceeds limit", size)
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(d.r, buf); err != nil {
			return "", err
		}
		s := string(buf)
		d.strs = append(d.strs, s)
		return s, nil
	default:
		return "", fmt.Errorf("string ref %d beyond table size %d", ref, len(d.strs))
	}
}

func (d *BinaryReader) corrupt(field string, err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: stream truncated reading %s", ErrBinaryTrace, field)
	}
	if errors.Is(err, ErrBinaryTrace) {
		return err
	}
	return fmt.Errorf("%w: %s: %v", ErrBinaryTrace, field, err)
}

// ReadBinary decodes a whole binary trace into memory. Large traces should
// stream through BinaryReader.Next instead.
func ReadBinary(r io.Reader) ([]Event, error) {
	d, err := NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	var out []Event
	for {
		e, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}
