package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// encodeV2 spills events through a BinarySink with the given frame stride
// and metadata and returns the finalized stream.
func encodeV2(t *testing.T, events []Event, stride int, meta *Meta) []byte {
	t.Helper()
	var buf bytes.Buffer
	s := NewBinarySink(&buf)
	s.FrameEvents = stride
	if meta != nil {
		s.SetMeta(meta)
	}
	if err := s.Spill(events); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// encodeV1 hand-builds a version-1 stream (the old writer is gone): same
// event encoding, no metadata, frames, index or trailer. Compatibility
// tests decode these to prove v1 streams remain readable.
func encodeV1(events []Event) []byte {
	out := append([]byte{}, binaryMagicV1[:]...)
	strs := map[string]uint64{}
	putStr := func(v string) {
		if v == "" {
			out = append(out, 0)
			return
		}
		if ref, ok := strs[v]; ok {
			out = binary.AppendUvarint(out, ref)
			return
		}
		ref := uint64(len(strs)) + 1
		strs[v] = ref
		out = binary.AppendUvarint(out, ref)
		out = binary.AppendUvarint(out, uint64(len(v)))
		out = append(out, v...)
	}
	var lastT int64
	for _, e := range events {
		out = binary.AppendUvarint(out, uint64(e.Kind))
		out = binary.AppendVarint(out, e.Time-lastT)
		lastT = e.Time
		out = binary.AppendUvarint(out, uint64(e.PID))
		putStr(e.MsgTag)
		putStr(e.Detail)
	}
	return out
}

// TestBinaryV1Compat pins backward compatibility: a version-1 stream
// decodes to the same events, reports Version 1, and ends with a clean
// io.EOF (v1 has no end marker).
func TestBinaryV1Compat(t *testing.T) {
	events := genEvents(100)
	bin := encodeV1(events)
	d, err := NewBinaryReader(bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	if d.Version() != 1 {
		t.Fatalf("Version() = %d, want 1", d.Version())
	}
	if d.Meta() != nil {
		t.Fatalf("v1 stream reports metadata %+v", d.Meta())
	}
	var got []Event
	if err := Drain(d, func(e Event) error { got = append(got, e); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
	if d.Index() != nil {
		t.Error("v1 stream reports an index")
	}
}

// TestBinaryV1TrailingGarbage pins the regression the satellite fix is
// for: in v1, five stray zero bytes after the last event used to decode
// silently as a phantom Kind(0) event. The kind-range check must reject
// them — and any other out-of-range lead byte — with ErrBinaryTrace.
func TestBinaryV1TrailingGarbage(t *testing.T) {
	events := genEvents(5)
	for _, garbage := range [][]byte{
		{0, 0, 0, 0, 0},           // phantom kind-0 event (the silent case)
		{0x7f, 0, 0, 0, 0},        // kind 127: out of range
		{byte(KindTimerDrop + 1)}, // first unassigned kind
	} {
		bin := append(encodeV1(events), garbage...)
		got, err := ReadBinary(bytes.NewReader(bin))
		if err == nil {
			t.Fatalf("garbage %v: decoded silently to %d events", garbage, len(got))
		}
		if !errors.Is(err, ErrBinaryTrace) {
			t.Fatalf("garbage %v: error %v does not wrap ErrBinaryTrace", garbage, err)
		}
	}
}

// TestBinaryV2TrailingGarbage pins the airtight v2 case: any byte after
// the trailer is ErrTrailingData, and a v2 stream cut off before its
// end-of-events marker is a truncation error — both wrap ErrBinaryTrace,
// and both are distinct from a clean EOF.
func TestBinaryV2TrailingGarbage(t *testing.T) {
	bin := encodeV2(t, genEvents(10), 4, nil)

	if _, err := ReadBinary(bytes.NewReader(append(bytes.Clone(bin), 0x00))); !errors.Is(err, ErrTrailingData) {
		t.Fatalf("one stray byte: got %v, want ErrTrailingData", err)
	}
	if _, err := ReadBinary(bytes.NewReader(append(bytes.Clone(bin), []byte("junk")...))); !errors.Is(err, ErrTrailingData) {
		t.Fatalf("stray tail: got %v, want ErrTrailingData", err)
	}
	// A whole second stream appended is trailing garbage too.
	if _, err := ReadBinary(bytes.NewReader(append(bytes.Clone(bin), bin...))); !errors.Is(err, ErrTrailingData) {
		t.Fatalf("doubled stream: got %v, want ErrTrailingData", err)
	}
	// Truncation before the end marker must not read as a clean end.
	if _, err := ReadBinary(bytes.NewReader(bin[:len(bin)-20])); !errors.Is(err, ErrBinaryTrace) {
		t.Fatalf("truncated: got %v, want ErrBinaryTrace", err)
	}
}

// TestBinaryMetaRoundTrip pins the self-describing header: the scenario
// fingerprint written by the sink comes back field-identical from both
// the streaming reader and the random-access opener.
func TestBinaryMetaRoundTrip(t *testing.T) {
	meta := &Meta{
		Algo: "fig8", N: 7, L: 3, T: 2,
		Crashes: "3:40", Churn: "0.2:1:20:30", Net: "psync:60:3",
		Partitions: "10-20@3", Seed: 42, Stabilize: 100,
		Adversary: "rotate", Detectors: "mp", Horizon: 3_000_000,
	}
	bin := encodeV2(t, genEvents(10), 4, meta)

	d, err := NewBinaryReader(bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta() == nil || *d.Meta() != *meta {
		t.Fatalf("streaming reader meta = %+v, want %+v", d.Meta(), meta)
	}
	tf, err := OpenTraceFile(bytes.NewReader(bin), int64(len(bin)))
	if err != nil {
		t.Fatal(err)
	}
	if tf.Meta() == nil || *tf.Meta() != *meta {
		t.Fatalf("trace file meta = %+v, want %+v", tf.Meta(), meta)
	}
}

// TestBinaryIndex pins the footer index: frame records partition the
// event stream at the configured stride, carry the right ordinals and
// start times, and every frame decodes independently through OpenFrame
// to exactly its slice of the stream.
func TestBinaryIndex(t *testing.T) {
	const n, stride = 1000, 64
	events := genEvents(n)
	bin := encodeV2(t, events, stride, nil)

	// The streaming reader surfaces the same index after EOF.
	d, err := NewBinaryReader(bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	if err := Drain(d, func(Event) error { return nil }); err != nil {
		t.Fatal(err)
	}
	sIx := d.Index()
	if sIx == nil {
		t.Fatal("streaming reader has no index after EOF")
	}

	tf, err := OpenTraceFile(bytes.NewReader(bin), int64(len(bin)))
	if err != nil {
		t.Fatal(err)
	}
	ix := tf.Index()
	wantFrames := (n + stride - 1) / stride
	if len(ix.Frames) != wantFrames {
		t.Fatalf("%d frames, want %d", len(ix.Frames), wantFrames)
	}
	if ix.TotalEvents != n {
		t.Fatalf("TotalEvents = %d, want %d", ix.TotalEvents, n)
	}
	if len(sIx.Frames) != len(ix.Frames) || sIx.TotalDigest != ix.TotalDigest {
		t.Fatal("streaming and random-access index disagree")
	}

	var all []Event
	for i, f := range ix.Frames {
		if f.Ordinal != uint64(i*stride) {
			t.Fatalf("frame %d ordinal = %d, want %d", i, f.Ordinal, i*stride)
		}
		if f.Start != events[f.Ordinal].Time {
			t.Fatalf("frame %d start = %d, want %d", i, f.Start, events[f.Ordinal].Time)
		}
		fr, err := tf.OpenFrame(i)
		if err != nil {
			t.Fatal(err)
		}
		var count int
		if err := Drain(fr, func(e Event) error {
			if want := events[int(f.Ordinal)+count]; e != want {
				t.Fatalf("frame %d event %d = %+v, want %+v", i, count, e, want)
			}
			if !f.MayHavePID(e.PID) {
				t.Fatalf("frame %d bloom misses pid %d", i, e.PID)
			}
			count++
			all = append(all, e)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		want := stride
		if i == len(ix.Frames)-1 {
			want = n - i*stride
		}
		if count != want {
			t.Fatalf("frame %d decoded %d events, want %d", i, count, want)
		}
	}
	if len(all) != n {
		t.Fatalf("frames concatenate to %d events, want %d", len(all), n)
	}
}

// TestIndexFrameForTime pins the seek primitive over a monotone trace.
func TestIndexFrameForTime(t *testing.T) {
	events := make([]Event, 300)
	for i := range events {
		events[i] = Event{Time: int64(i * 10), Kind: KindNote, PID: i % 5, Detail: "x"}
	}
	bin := encodeV2(t, events, 100, nil)
	tf, err := OpenTraceFile(bytes.NewReader(bin), int64(len(bin)))
	if err != nil {
		t.Fatal(err)
	}
	ix := tf.Index()
	for _, tc := range []struct {
		t    int64
		want int
	}{{-5, 0}, {0, 0}, {999, 0}, {1000, 1}, {1500, 1}, {2000, 2}, {1 << 40, 2}} {
		if got := ix.FrameForTime(tc.t); got != tc.want {
			t.Errorf("FrameForTime(%d) = %d, want %d", tc.t, got, tc.want)
		}
	}
	// Seeking the frame and scanning within it finds the exact event.
	target := int64(1570)
	fr, err := tf.OpenFrame(ix.FrameForTime(target))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	if err := Drain(fr, func(e Event) error {
		if e.Time == target {
			found = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("event at t=%d not found in its indexed frame", target)
	}
}

// TestBinaryIndexDigests pins the divergence-search invariant tracediff
// relies on: two traces equal through frame k share DigestBefore up to
// and including k, and diverge in DigestBefore from the first frame after
// the first differing event.
func TestBinaryIndexDigests(t *testing.T) {
	const n, stride = 512, 32
	a := genEvents(n)
	b := append([]Event(nil), a...)
	divergeAt := 200
	b[divergeAt].Detail = "skewed"

	binA := encodeV2(t, a, stride, nil)
	binB := encodeV2(t, b, stride, nil)
	fa, err := OpenTraceFile(bytes.NewReader(binA), int64(len(binA)))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := OpenTraceFile(bytes.NewReader(binB), int64(len(binB)))
	if err != nil {
		t.Fatal(err)
	}
	divergeFrame := divergeAt / stride
	for i := range fa.Index().Frames {
		da, db := fa.Index().Frames[i].DigestBefore, fb.Index().Frames[i].DigestBefore
		if i <= divergeFrame && da != db {
			t.Fatalf("frame %d digests diverge before the planted event (frame %d)", i, divergeFrame)
		}
		if i > divergeFrame && da == db {
			t.Fatalf("frame %d digests agree past the planted divergence", i)
		}
	}
	if fa.Index().TotalDigest == fb.Index().TotalDigest {
		t.Fatal("total digests agree across a divergence")
	}
}

// TestOpenTraceFileErrors covers the random-access failure modes: v1
// streams, unfinalized streams, and corrupt trailers must all reject with
// ErrBinaryTrace rather than misparse.
func TestOpenTraceFileErrors(t *testing.T) {
	v1 := encodeV1(genEvents(50))
	if _, err := OpenTraceFile(bytes.NewReader(v1), int64(len(v1))); !errors.Is(err, ErrBinaryTrace) {
		t.Errorf("v1: got %v, want ErrBinaryTrace", err)
	}
	v2 := encodeV2(t, genEvents(50), 8, nil)
	if _, err := OpenTraceFile(bytes.NewReader(v2[:len(v2)-1]), int64(len(v2)-1)); !errors.Is(err, ErrBinaryTrace) {
		t.Errorf("clipped trailer: got %v, want ErrBinaryTrace", err)
	}
	mangled := bytes.Clone(v2)
	binary.LittleEndian.PutUint64(mangled[len(mangled)-16:], uint64(len(mangled))) // index offset past EOF
	if _, err := OpenTraceFile(bytes.NewReader(mangled), int64(len(mangled))); !errors.Is(err, ErrBinaryTrace) {
		t.Errorf("wild index offset: got %v, want ErrBinaryTrace", err)
	}
}

// TestBinarySinkFlushIdempotent pins that Recorder.Flush-then-Flush (the
// hdsim fatal path can flush twice) does not corrupt the stream, and that
// spilling after finalization fails loudly instead of appending events
// the index will never cover.
func TestBinarySinkFlushIdempotent(t *testing.T) {
	var buf bytes.Buffer
	s := NewBinarySink(&buf)
	if err := s.Spill(genEvents(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	first := bytes.Clone(buf.Bytes())
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf.Bytes()) {
		t.Fatal("second Flush changed the stream")
	}
	if err := s.Spill(genEvents(1)); err == nil {
		t.Fatal("Spill after finalization succeeded")
	}
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("stream corrupt after double flush: %v", err)
	}
}

// TestBinaryReaderIsEventSource pins the EventSource seam and the Drain
// helper against a reader mid-stream error.
func TestBinaryReaderIsEventSource(t *testing.T) {
	bin := encodeV2(t, genEvents(10), 4, nil)
	var src EventSource
	d, err := NewBinaryReader(bytes.NewReader(bin[:len(bin)-20]))
	if err != nil {
		t.Fatal(err)
	}
	src = d
	if err := Drain(src, func(Event) error { return nil }); !errors.Is(err, ErrBinaryTrace) {
		t.Fatalf("Drain over truncated stream: got %v, want ErrBinaryTrace", err)
	}
	if err := Drain(NewSliceSource(genEvents(3)), func(Event) error { return nil }); err != nil {
		t.Fatalf("SliceSource drain: %v", err)
	}
	want := io.ErrClosedPipe
	if err := Drain(NewSliceSource(genEvents(3)), func(Event) error { return want }); err != want {
		t.Fatalf("Drain consumer error: got %v, want %v", err, want)
	}
}
