package trace

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzBinaryReader pins the decoder's corruption contract: arbitrary input
// must never panic, and every decode failure must wrap ErrBinaryTrace so
// callers can tell corruption from I/O errors. Inputs that do decode are
// re-encoded and decoded again — the decoder must be a left inverse of the
// encoder on its own output.
func FuzzBinaryReader(f *testing.F) {
	// Seed with a valid stream, its truncations, and targeted mutations
	// (bad magic, bad version, wild lengths) so the fuzzer starts on the
	// format's interesting edges rather than random bytes.
	events := []Event{
		{Time: 1, Kind: KindBroadcast, PID: 0, MsgTag: "HB"},
		{Time: 1, Kind: KindDeliver, PID: 1, MsgTag: "HB"},
		{Time: 3, Kind: KindDrop, PID: 2, MsgTag: "HB", Detail: "sender crashed mid-broadcast"},
		{Time: 7, Kind: KindCrash, PID: 2},
		{Time: 9, Kind: KindTimer, PID: 0, MsgTag: "T"},
	}
	var buf bytes.Buffer
	sink := NewBinarySink(&buf)
	if err := sink.Spill(events); err != nil {
		f.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:8])
	f.Add([]byte{})
	badMagic := bytes.Clone(valid)
	badMagic[0] ^= 0xff
	f.Add(badMagic)
	badVersion := bytes.Clone(valid)
	badVersion[7] = 0x7f
	f.Add(badVersion)
	wildLen := bytes.Clone(valid)
	for i := 8; i < len(wildLen); i++ {
		wildLen[i] = 0xff
	}
	f.Add(wildLen)

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBinaryTrace) {
				t.Fatalf("decode error does not wrap ErrBinaryTrace: %v", err)
			}
			return
		}
		// Successful decode: re-encoding must reproduce a stream that
		// decodes to the same events.
		var out bytes.Buffer
		s := NewBinarySink(&out)
		if err := s.Spill(decoded); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("re-encode flush: %v", err)
		}
		again, err := ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoded stream: %v", err)
		}
		if len(again) != len(decoded) {
			t.Fatalf("round trip changed event count: %d -> %d", len(decoded), len(again))
		}
		for i := range again {
			if again[i] != decoded[i] {
				t.Fatalf("round trip changed event %d: %v -> %v", i, decoded[i], again[i])
			}
		}
	})
}
