package trace

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzEvents is the event shape both the fuzz seeds and gen_corpus.go
// encode — keep the two in sync.
func fuzzEvents() []Event {
	return []Event{
		{Time: 1, Kind: KindBroadcast, PID: 0, MsgTag: "HB"},
		{Time: 1, Kind: KindDeliver, PID: 1, MsgTag: "HB"},
		{Time: 3, Kind: KindDrop, PID: 2, MsgTag: "HB", Detail: "sender crashed mid-broadcast"},
		{Time: 7, Kind: KindCrash, PID: 2},
		{Time: 9, Kind: KindTimer, PID: 0, MsgTag: "T"},
	}
}

// FuzzBinaryReader pins the decoder's corruption contract: arbitrary input
// must never panic, and every decode failure must wrap ErrBinaryTrace so
// callers can tell corruption from I/O errors — through the streaming
// reader and the random-access opener alike. Inputs that do decode are
// re-encoded and decoded again — the decoder must be a left inverse of the
// encoder on its own output.
func FuzzBinaryReader(f *testing.F) {
	// Seed with valid v2 and v1 streams, their truncations, and targeted
	// mutations (bad magic, bad version, wild lengths, corrupt index and
	// metadata, trailing bytes) so the fuzzer starts on the format's
	// interesting edges rather than random bytes.
	events := fuzzEvents()
	var buf bytes.Buffer
	sink := NewBinarySink(&buf)
	sink.FrameEvents = 2 // several frames from five events
	sink.SetMeta(&Meta{Algo: "fig8", N: 3, L: 2, Seed: 1})
	if err := sink.Spill(events); err != nil {
		f.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:8])
	f.Add([]byte{})
	badMagic := bytes.Clone(valid)
	badMagic[0] ^= 0xff
	f.Add(badMagic)
	badVersion := bytes.Clone(valid)
	badVersion[7] = 0x7f
	f.Add(badVersion)
	wildLen := bytes.Clone(valid)
	for i := 8; i < len(wildLen); i++ {
		wildLen[i] = 0xff
	}
	f.Add(wildLen)
	// v2-specific edges: body intact, index/trailer corrupted; metadata
	// cut mid-JSON; bytes after the trailer; v1 with and without garbage.
	corruptIndex := bytes.Clone(valid)
	for i := len(corruptIndex) - 40; i < len(corruptIndex)-16; i++ {
		corruptIndex[i] ^= 0x55
	}
	f.Add(corruptIndex)
	f.Add(valid[:12]) // magic + truncated metadata
	f.Add(append(bytes.Clone(valid), 0x00))
	v1 := encodeV1(events)
	f.Add(v1)
	f.Add(append(bytes.Clone(v1), 0, 0, 0, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Random access must uphold the same contract on the same bytes.
		if tf, err := OpenTraceFile(bytes.NewReader(data), int64(len(data))); err == nil {
			for i := range tf.Index().Frames {
				fr, err := tf.OpenFrame(i)
				if err != nil {
					t.Fatalf("OpenFrame(%d): %v", i, err)
				}
				if err := Drain(fr, func(Event) error { return nil }); err != nil && !errors.Is(err, ErrBinaryTrace) {
					t.Fatalf("frame %d decode error does not wrap ErrBinaryTrace: %v", i, err)
				}
			}
		} else if !errors.Is(err, ErrBinaryTrace) {
			t.Fatalf("OpenTraceFile error does not wrap ErrBinaryTrace: %v", err)
		}

		decoded, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBinaryTrace) {
				t.Fatalf("decode error does not wrap ErrBinaryTrace: %v", err)
			}
			return
		}
		// Successful decode: re-encoding must reproduce a stream that
		// decodes to the same events.
		var out bytes.Buffer
		s := NewBinarySink(&out)
		if err := s.Spill(decoded); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("re-encode flush: %v", err)
		}
		again, err := ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoded stream: %v", err)
		}
		if len(again) != len(decoded) {
			t.Fatalf("round trip changed event count: %d -> %d", len(decoded), len(again))
		}
		for i := range again {
			if again[i] != decoded[i] {
				t.Fatalf("round trip changed event %d: %v -> %v", i, decoded[i], again[i])
			}
		}
	})
}
