package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// encodeBinary spills events through a BinarySink-backed recorder with the
// given staging-buffer size and returns the encoded stream.
func encodeBinary(t *testing.T, events []Event, bufSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	r := NewSpillRecorder(NewBinarySink(&buf), bufSize)
	for _, e := range events {
		r.Record(e)
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// TestBinaryRoundTripByteIdentical pins the format's contract: encode
// through BinarySink, decode, render with WriteText — and the text must be
// byte-identical to what a WriterSink produced from the same recording,
// across ring-wraparound and chunk-boundary batch sizes (including sizes
// that split an event stream mid-batch and leave final partial batches).
func TestBinaryRoundTripByteIdentical(t *testing.T) {
	for _, n := range []int{0, 1, 3, 7, 64, 1000} {
		for _, bufSize := range []int{1, 3, 4, 7, 64, DefaultBufSize} {
			events := genEvents(n)
			bin := encodeBinary(t, events, bufSize)

			var text bytes.Buffer
			r := NewSpillRecorder(NewWriterSink(&text), bufSize)
			for _, e := range events {
				r.Record(e)
			}
			if err := r.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}

			decoded, err := ReadBinary(bytes.NewReader(bin))
			if err != nil {
				if n == 0 && errors.Is(err, ErrBinaryTrace) {
					// No spill ever happened: the stream is empty, not
					// header-only — decoding it is a format error by
					// design. The text side is empty too.
					if text.Len() != 0 || len(bin) != 0 {
						t.Fatalf("n=0: text %d bytes, bin %d bytes", text.Len(), len(bin))
					}
					continue
				}
				t.Fatalf("n=%d buf=%d: decode: %v", n, bufSize, err)
			}
			if len(decoded) != n {
				t.Fatalf("n=%d buf=%d: decoded %d events", n, bufSize, len(decoded))
			}
			for i := range decoded {
				if decoded[i] != events[i] {
					t.Fatalf("n=%d buf=%d: event %d = %+v, want %+v", n, bufSize, i, decoded[i], events[i])
				}
			}
			var rendered bytes.Buffer
			if err := WriteText(&rendered, decoded); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rendered.Bytes(), text.Bytes()) {
				t.Fatalf("n=%d buf=%d: decoded rendering diverges from WriterSink output", n, bufSize)
			}
		}
	}
}

// TestBinaryRoundTripNonMonotoneTime pins the signed time delta: merged or
// hand-built traces may step backwards in time, and negative/zero/large
// deltas plus empty tags and details must survive the round trip.
func TestBinaryRoundTripNonMonotoneTime(t *testing.T) {
	events := []Event{
		{Time: 1 << 40, Kind: KindBroadcast, PID: 0, MsgTag: "A"},
		{Time: 3, Kind: KindDeliver, PID: 1 << 20, MsgTag: "A"},
		{Time: 3, Kind: KindDeliver, PID: 2},
		{Time: -17, Kind: KindNote, PID: 0, Detail: "negative time"},
		{Time: 0, Kind: KindTimerDrop, PID: 5, MsgTag: "", Detail: ""},
	}
	bin := encodeBinary(t, events, 2)
	decoded, err := ReadBinary(bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(events))
	}
	for i := range decoded {
		if decoded[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, decoded[i], events[i])
		}
	}
}

// TestBinaryStringTableSharing pins the size win the string table exists
// for: a stream of events repeating the same few tags encodes each string
// once, so the stream is far smaller than its text rendering.
func TestBinaryStringTableSharing(t *testing.T) {
	events := make([]Event, 0, 4096)
	for i := 0; i < 4096; i++ {
		events = append(events, Event{Time: int64(i), Kind: KindDeliver, PID: i % 7, MsgTag: "HEARTBEAT"})
	}
	bin := encodeBinary(t, events, 0)
	var text bytes.Buffer
	if err := WriteText(&text, events); err != nil {
		t.Fatal(err)
	}
	if len(bin)*4 > text.Len() {
		t.Errorf("binary %d bytes vs text %d bytes; want at least 4x smaller", len(bin), text.Len())
	}
}

// TestBinaryDecodeErrors covers the corruption paths: short/bad headers,
// unknown versions, mid-event truncation at every byte offset, dangling
// string references, and absurd string lengths. Corruption must always
// surface as ErrBinaryTrace, never as a panic or a silent short read.
func TestBinaryDecodeErrors(t *testing.T) {
	valid := encodeBinary(t, genEvents(20), 4)

	t.Run("empty", func(t *testing.T) {
		if _, err := ReadBinary(bytes.NewReader(nil)); !errors.Is(err, ErrBinaryTrace) {
			t.Errorf("got %v, want ErrBinaryTrace", err)
		}
	})
	t.Run("short-header", func(t *testing.T) {
		if _, err := ReadBinary(bytes.NewReader(valid[:5])); !errors.Is(err, ErrBinaryTrace) {
			t.Errorf("got %v, want ErrBinaryTrace", err)
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		corrupt := append([]byte{}, valid...)
		corrupt[0] = 'X'
		if _, err := ReadBinary(bytes.NewReader(corrupt)); !errors.Is(err, ErrBinaryTrace) {
			t.Errorf("got %v, want ErrBinaryTrace", err)
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		corrupt := append([]byte{}, valid...)
		corrupt[7] = 99
		_, err := ReadBinary(bytes.NewReader(corrupt))
		if !errors.Is(err, ErrBinaryTrace) {
			t.Fatalf("got %v, want ErrBinaryTrace", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		// Every proper prefix must decode to some event prefix cleanly (cut
		// on an event boundary) or fail with ErrBinaryTrace — never panic.
		sawTruncation := false
		for cut := 8; cut < len(valid); cut++ {
			events, err := ReadBinary(bytes.NewReader(valid[:cut]))
			if err != nil {
				if !errors.Is(err, ErrBinaryTrace) {
					t.Fatalf("cut=%d: got %v, want ErrBinaryTrace", cut, err)
				}
				sawTruncation = true
				continue
			}
			if len(events) >= 20 {
				t.Fatalf("cut=%d: decoded all %d events from a truncated stream", cut, len(events))
			}
		}
		if !sawTruncation {
			t.Error("no cut position produced a truncation error")
		}
	})
	t.Run("dangling-string-ref", func(t *testing.T) {
		// header + empty meta + kind=1, dt=0, pid=0, tag ref=9 with an
		// empty table.
		stream := append(append([]byte{}, binaryMagic[:]...), 0, 1, 0, 0, 9)
		if _, err := ReadBinary(bytes.NewReader(stream)); !errors.Is(err, ErrBinaryTrace) {
			t.Errorf("got %v, want ErrBinaryTrace", err)
		}
	})
	t.Run("oversized-string", func(t *testing.T) {
		// header + empty meta + kind=1, dt=0, pid=0, tag ref=1 (new string)
		// with a 1 GiB length prefix (uvarint 0x80 0x80 0x80 0x80 0x04).
		stream := append(append([]byte{}, binaryMagic[:]...), 0, 1, 0, 0, 1, 0x80, 0x80, 0x80, 0x80, 0x04)
		if _, err := ReadBinary(bytes.NewReader(stream)); !errors.Is(err, ErrBinaryTrace) {
			t.Errorf("got %v, want ErrBinaryTrace", err)
		}
	})
	t.Run("oversized-meta", func(t *testing.T) {
		// header + a 1 GiB metadata length prefix.
		stream := append(append([]byte{}, binaryMagic[:]...), 0x80, 0x80, 0x80, 0x80, 0x04)
		if _, err := ReadBinary(bytes.NewReader(stream)); !errors.Is(err, ErrBinaryTrace) {
			t.Errorf("got %v, want ErrBinaryTrace", err)
		}
	})
}

// TestBinaryReaderStreams pins that Next is truly streaming: events arrive
// one at a time and a clean end of stream is io.EOF.
func TestBinaryReaderStreams(t *testing.T) {
	events := genEvents(10)
	bin := encodeBinary(t, events, 3)
	d, err := NewBinaryReader(bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		e, err := d.Next()
		if err == io.EOF {
			if i != len(events) {
				t.Fatalf("EOF after %d events, want %d", i, len(events))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if e != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, e, events[i])
		}
	}
}

// genSpillBatch builds a spill batch shaped like engine output: a few hot
// tags, per-event details only on drops.
func genSpillBatch(n int) []Event {
	batch := make([]Event, n)
	tags := []string{"BEAT", "POLLING", "P_REPLY"}
	for i := range batch {
		batch[i] = Event{Time: int64(i / 7), Kind: KindDeliver, PID: i % 997, MsgTag: tags[i%len(tags)]}
		if i%50 == 0 {
			batch[i].Kind = KindDrop
			batch[i].Detail = "lost"
		}
	}
	return batch
}

// BenchmarkBinarySinkSpill compares the per-event spill cost of the binary
// sink against the text sink it replaces — the formatting work that used
// to dominate traced large-n runs.
func BenchmarkBinarySinkSpill(b *testing.B) {
	batch := genSpillBatch(4096)
	b.Run("binary", func(b *testing.B) {
		s := NewBinarySink(io.Discard)
		for i := 0; i < b.N; i++ {
			if err := s.Spill(batch); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("text", func(b *testing.B) {
		s := NewWriterSink(io.Discard)
		for i := 0; i < b.N; i++ {
			if err := s.Spill(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}
