package fd

import (
	"strings"
	"testing"

	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestViewRenderParse pins the codecs as exact inverses on representative
// detector outputs, including empty values.
func TestViewRenderParse(t *testing.T) {
	views := []*multiset.Multiset[ident.ID]{
		multiset.New[ident.ID](),
		multiset.From[ident.ID]("g001"),
		multiset.From[ident.ID]("g001", "g001", "g002", "p017"),
	}
	for _, v := range views {
		got, err := ParseView(RenderView(v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !got.Equal(v) {
			t.Errorf("view %v round-tripped to %v", v, got)
		}
	}

	leaders := []LeaderInfo{{}, {ID: "g001", Multiplicity: 3}}
	for _, l := range leaders {
		got, err := ParseLeader(RenderLeader(l))
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if got != l {
			t.Errorf("leader %v round-tripped to %v", l, got)
		}
	}

	alives := [][]ident.ID{nil, {"g002"}, {"g002", "g001", "g003"}}
	for _, a := range alives {
		got, err := ParseAlive(RenderAlive(a))
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if len(got) != len(a) {
			t.Fatalf("alive %v round-tripped to %v", a, got)
		}
		for i := range a {
			if got[i] != a[i] {
				t.Errorf("alive %v round-tripped to %v", a, got)
			}
		}
	}

	for _, bad := range []string{"g001", "g001*", "g001*0", "g001*x", "|"} {
		if _, err := ParseView(bad); err == nil {
			t.Errorf("ParseView(%q) succeeded", bad)
		}
	}
	if _, err := ParseLeader("g001"); err == nil {
		t.Error("ParseLeader without multiplicity succeeded")
	}
	if _, err := ParseAlive("g001||g002"); err == nil {
		t.Error("ParseAlive with empty identifier succeeded")
	}
}

// TestRecordReplayChanges pins the replay equivalence this layer exists
// for: feed a live StreamProbe a change stream, record it through
// RecordChanges, replay the trace — and the reconstructed probe must agree
// with the live one on every final view and last-change time.
func TestRecordReplayChanges(t *testing.T) {
	const n = 4
	rec := trace.NewRecorder()
	live := NewStaticStreamProbe(n, (*multiset.Multiset[ident.ID]).Equal)
	RecordChanges(rec, live, TagTrusted, RenderView)
	liveLeader := NewStaticStreamProbe(n, func(a, b LeaderInfo) bool { return a == b })
	RecordChanges(rec, liveLeader, TagLeader, RenderLeader)

	// A churn-shaped sample stream: views shrink on crashes, re-grow on
	// recoveries, with repeated (deduplicated) samples along the way.
	all := multiset.From[ident.ID]("g001", "g001", "g002")
	down := multiset.From[ident.ID]("g001", "g002")
	for p := 0; p < n; p++ {
		live.Feed(1, sim.PID(p), all)
		liveLeader.Feed(1, sim.PID(p), LeaderInfo{ID: "g001", Multiplicity: 2})
	}
	live.Feed(5, 0, all) // unchanged: must not reach the trace
	for p := 0; p < 3; p++ {
		live.Feed(7, sim.PID(p), down)
	}
	for p := 0; p < n; p++ {
		live.Feed(19, sim.PID(p), all)
		liveLeader.Feed(23, sim.PID(p), LeaderInfo{ID: "g001", Multiplicity: 2}) // unchanged
	}

	trusted := NewTrustedReplayer(n)
	leader := NewLeaderReplayer(n)
	for _, e := range rec.Events() {
		trusted.Observe(e)
		leader.Observe(e)
	}
	if err := trusted.Err(); err != nil {
		t.Fatal(err)
	}
	if err := leader.Err(); err != nil {
		t.Fatal(err)
	}

	for p := sim.PID(0); p < n; p++ {
		lv, lok := live.Last(p)
		rv, rok := trusted.Probe().Last(p)
		if lok != rok || (lok && !lv.Equal(rv)) {
			t.Errorf("process %d: live view %v/%v, replay %v/%v", p, lv, lok, rv, rok)
		}
		if lt, rt := live.LastChange(p), trusted.Probe().LastChange(p); lt != rt {
			t.Errorf("process %d: live last change %d, replay %d", p, lt, rt)
		}
		ll, lok := liveLeader.Last(p)
		rl, rok := leader.Probe().Last(p)
		if lok != rok || ll != rl {
			t.Errorf("process %d: live leader %v/%v, replay %v/%v", p, ll, lok, rl, rok)
		}
		if lt, rt := liveLeader.LastChange(p), leader.Probe().LastChange(p); lt != rt {
			t.Errorf("process %d: live leader change %d, replay %d", p, lt, rt)
		}
	}
}

// TestChangeReplayerErrors pins the malformed-trace paths: out-of-range
// pids and unparseable details surface, foreign tags are ignored.
func TestChangeReplayerErrors(t *testing.T) {
	r := NewTrustedReplayer(2)
	r.Observe(trace.Event{Time: 1, Kind: trace.KindFDChange, PID: 5, MsgTag: TagTrusted, Detail: "g001*1"})
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("got %v, want out-of-range error", err)
	}

	r = NewTrustedReplayer(2)
	r.Observe(trace.Event{Time: 1, Kind: trace.KindFDChange, PID: 0, MsgTag: TagTrusted, Detail: "garbage"})
	if err := r.Err(); err == nil {
		t.Fatal("unparseable view accepted")
	}

	r = NewTrustedReplayer(2)
	r.Observe(trace.Event{Time: 1, Kind: trace.KindFDChange, PID: 0, MsgTag: TagLeader, Detail: "g001*1"})
	r.Observe(trace.Event{Time: 1, Kind: trace.KindDeliver, PID: 0, MsgTag: "BEAT"})
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Probe().Last(0); ok {
		t.Error("foreign-tag event reached the probe")
	}
}
