package fd

import (
	"fmt"
	"testing"

	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// gossiper is a toy detector for probe-equivalence tests: it broadcasts
// its id periodically and outputs the multiset of distinct senders heard
// so far. Its output changes often and at irregular instants, which is
// exactly what the sampling equivalence claim needs exercised.
type gossiper struct {
	env   sim.Environment
	heard *multiset.Multiset[ident.ID]
}

type gossip struct{ From ident.ID }

func (gossip) MsgTag() string { return "GOSSIP" }

func (g *gossiper) Init(env sim.Environment) {
	g.env = env
	g.heard = multiset.New[ident.ID]()
	env.Broadcast(gossip{From: env.ID()})
	env.SetTimer(4, 0)
}

func (g *gossiper) OnMessage(payload any) {
	if m, ok := payload.(gossip); ok && g.heard.Count(m.From) == 0 {
		g.heard.Add(m.From)
	}
}

func (g *gossiper) OnTimer(tag int) {
	g.env.Broadcast(gossip{From: g.env.ID()})
	g.env.SetTimer(4, tag)
}

func (g *gossiper) OnRecover() { g.env.SetTimer(4, 0) }

// TestStreamProbeMatchesProbeLive pins the core streaming-equivalence
// claim on a live engine: a StreamProbe and a Probe attached to the same
// run see identical sample streams — the observer feed reproduces the
// materialized history exactly, and the final views agree — and the
// final-state checkers produce identical verdicts through either.
func TestStreamProbeMatchesProbeLive(t *testing.T) {
	const n = 9
	eng := sim.New(sim.Config{IDs: ident.Balanced(n, 3), Net: sim.Async{MaxDelay: 6}, Seed: 5})
	dets := make([]*gossiper, n)
	for i := range dets {
		dets[i] = &gossiper{}
		eng.AddProcess(dets[i])
	}
	eng.CrashAt(2, 15)
	eng.RecoverAt(2, 33)
	eng.CrashAt(5, 21)

	get := func(p sim.PID) (*multiset.Multiset[ident.ID], bool) {
		if eng.Crashed(p) || dets[p].heard == nil {
			return nil, false
		}
		return dets[p].heard.Clone(), true
	}
	eq := func(a, b *multiset.Multiset[ident.ID]) bool { return a.Equal(b) }

	probe := NewProbe(eng, n, get, eq)
	sp := NewStreamProbe(eng, n, get, eq)
	streamed := make([][]Sample[*multiset.Multiset[ident.ID]], n)
	sp.Observe(func(p sim.PID, s Sample[*multiset.Multiset[ident.ID]]) {
		streamed[p] = append(streamed[p], s)
	})

	eng.Run(60)

	for p := 0; p < n; p++ {
		h := probe.History(sim.PID(p))
		if len(h) != len(streamed[p]) {
			t.Fatalf("p%d: probe stored %d samples, stream observed %d", p, len(h), len(streamed[p]))
		}
		for i := range h {
			if h[i].Time != streamed[p][i].Time || !h[i].Value.Equal(streamed[p][i].Value) {
				t.Fatalf("p%d sample %d: probe %v@%d, stream %v@%d",
					p, i, h[i].Value, h[i].Time, streamed[p][i].Value, streamed[p][i].Time)
			}
		}
		pv, pok := probe.Last(sim.PID(p))
		sv, sok := sp.Last(sim.PID(p))
		if pok != sok || (pok && !pv.Equal(sv)) {
			t.Fatalf("p%d: Last diverges: probe (%v,%v), stream (%v,%v)", p, pv, pok, sv, sok)
		}
		if probe.LastChange(sim.PID(p)) != sp.LastChange(sim.PID(p)) {
			t.Fatalf("p%d: LastChange diverges: %d vs %d", p, probe.LastChange(sim.PID(p)), sp.LastChange(sim.PID(p)))
		}
	}

	// Identical verdicts through either pipeline, for passing or failing
	// checks alike. (The toy detector need not satisfy ◇HP̄; what must hold
	// is agreement.)
	g := NewGroundTruth(eng.IDs(), map[sim.PID]sim.Time{5: 21})
	rp, errP := CheckDiamondHPbar(g, probe)
	rs, errS := CheckDiamondHPbar(g, sp)
	if fmt.Sprint(rp, errP) != fmt.Sprint(rs, errS) {
		t.Errorf("◇HP̄ verdicts diverge:\nprobe:  %v %v\nstream: %v %v", rp, errP, rs, errS)
	}
}

// feedStream replays static histories through a stream probe in global
// time order, the order a live run would produce them.
func feedStream[T any](sp *StreamProbe[T], histories [][]Sample[T]) {
	idx := make([]int, len(histories))
	for {
		best, bp := -1, -1
		for p, h := range histories {
			if idx[p] < len(h) {
				if bp < 0 || h[idx[p]].Time < sim.Time(best) {
					best, bp = int(h[idx[p]].Time), p
				}
			}
		}
		if bp < 0 {
			return
		}
		s := histories[bp][idx[bp]]
		sp.Feed(s.Time, sim.PID(bp), s.Value)
		idx[bp]++
	}
}

// TestCheckSigmaStreamMatchesCheckSigma pins monitor/checker equivalence
// on the three static cases the materialized checker is tested with: a
// passing run, a safety violation (disjoint quorums), and a liveness
// violation (quorum outside I(EventuallyUp)).
func TestCheckSigmaStreamMatchesCheckSigma(t *testing.T) {
	g := truth3AAB(1)
	eq := func(a, b *multiset.Multiset[ident.ID]) bool { return a.Equal(b) }
	cases := []struct {
		name string
		h    [][]Sample[*multiset.Multiset[ident.ID]]
	}{
		{"good", [][]Sample[*multiset.Multiset[ident.ID]]{
			hist(ms("A", "A", "B"), ms("A", "B")),
			nil,
			hist(ms("A", "B")),
		}},
		{"disjoint-quorums", [][]Sample[*multiset.Multiset[ident.ID]]{
			hist(ms("A")),
			nil,
			hist(ms("B")),
		}},
		{"liveness", [][]Sample[*multiset.Multiset[ident.ID]]{
			hist(ms("A", "A", "B")), // ⊄ I(EventuallyUp) = {A, B}
			nil,
			hist(ms("A", "B")),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			matRes, matErr := CheckSigma(g, NewStaticProbe(tc.h))

			sp := NewStaticStreamProbe(len(tc.h), eq)
			m := NewSigmaMonitor()
			m.Attach(sp)
			feedStream(sp, tc.h)
			strRes, strErr := CheckSigmaStream(g, sp, m)

			if (matErr == nil) != (strErr == nil) {
				t.Fatalf("verdicts diverge: materialized err=%v, streaming err=%v", matErr, strErr)
			}
			if matErr == nil && matRes != strRes {
				t.Fatalf("results diverge: materialized %+v, streaming %+v", matRes, strRes)
			}
		})
	}
}

// TestSigmaMonitorAntichainBounded pins the monitor's memory claim: a long
// stream of nested (comparable) quorums keeps the antichain at one entry —
// state tracks incomparable quorums, not samples.
func TestSigmaMonitorAntichainBounded(t *testing.T) {
	m := NewSigmaMonitor()
	ids := []ident.ID{"A", "B", "C", "D", "E", "F"}
	// Growing chain: {A}, {A,B}, {A,B,C}, ... then shrinking back.
	for i := 1; i <= len(ids); i++ {
		m.Observe(0, Sample[*multiset.Multiset[ident.ID]]{Time: sim.Time(i), Value: ms(ids[:i]...)})
	}
	for i := len(ids); i >= 1; i-- {
		m.Observe(1, Sample[*multiset.Multiset[ident.ID]]{Time: sim.Time(20 + i), Value: ms(ids[:i]...)})
	}
	if m.Err() != nil {
		t.Fatalf("nested quorums flagged: %v", m.Err())
	}
	if len(m.kept) != 1 {
		t.Errorf("antichain holds %d quorums after a nested chain, want 1", len(m.kept))
	}
	if !m.kept[0].q.Equal(ms("A")) {
		t.Errorf("kept quorum %v, want the minimal {A}", m.kept[0].q)
	}
}
