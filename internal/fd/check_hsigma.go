package fd

import (
	"fmt"
	"sort"

	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// CheckHSigma verifies all four HΣ properties on a recorded execution.
//
//   - Validity: no sampled h_quora value contains two pairs with one label.
//   - Monotonicity: per process, h_labels never shrinks, and once (x, m) is
//     in h_quora, every later sample contains some (x, m') with m' ⊆ m.
//   - Liveness: each correct process's final h_quora has a pair (x, m) with
//     m ⊆ I(S(x) ∩ Correct), where S(x) is the set of processes that ever
//     held label x in h_labels.
//   - Safety: for any two sampled pairs (x₁, m₁), (x₂, m₂) — across all
//     processes and times — every realization Q₁ ⊆ S(x₁) with I(Q₁) = m₁
//     intersects every realization Q₂ ⊆ S(x₂) with I(Q₂) = m₂.
//
// Safety is decided in polynomial time: disjoint realizations exist iff,
// independently for every identifier i, the demands m₁(i) and m₂(i) can be
// packed into S(x₁), S(x₂) without sharing a process — a per-identifier
// counting condition (see disjointRealizable).
func CheckHSigma(g *GroundTruth, quora *Probe[[]QuorumPair], labels *Probe[[]Label]) (Result, error) {
	n := quora.N()

	// Validity + quora monotonicity, per process.
	for p := 0; p < n; p++ {
		hist := quora.History(sim.PID(p))
		for _, s := range hist {
			seen := make(map[Label]bool, len(s.Value))
			for _, pair := range s.Value {
				if seen[pair.Label] {
					return Result{}, fmt.Errorf("HΣ validity: process %d at t=%d holds two pairs with label %q", p, s.Time, pair.Label)
				}
				seen[pair.Label] = true
			}
		}
		for i := 1; i < len(hist); i++ {
			prev, cur := hist[i-1].Value, hist[i].Value
			for _, old := range prev {
				ok := false
				for _, nw := range cur {
					if nw.Label == old.Label && nw.M.SubsetOf(old.M) {
						ok = true
						break
					}
				}
				if !ok {
					return Result{}, fmt.Errorf("HΣ monotonicity: process %d dropped/grew pair (%q, %v) at t=%d",
						p, old.Label, old.M, hist[i].Time)
				}
			}
		}
	}

	// Labels monotonicity.
	for p := 0; p < n; p++ {
		hist := labels.History(sim.PID(p))
		for i := 1; i < len(hist); i++ {
			prevSet := labelSet(hist[i-1].Value)
			curSet := labelSet(hist[i].Value)
			// Collect every lost label and report the sorted set: the
			// error string reaches campaign row bytes, so which witness a
			// map range happens to visit first must not leak into it.
			var lost []string
			for l := range prevSet {
				if !curSet[l] {
					lost = append(lost, string(l))
				}
			}
			if len(lost) > 0 {
				sort.Strings(lost)
				return Result{}, fmt.Errorf("HΣ monotonicity: process %d lost label(s) %q at t=%d", p, lost, hist[i].Time)
			}
		}
	}

	// S(x): every process that EVER held x in h_labels.
	member := make(map[Label]map[sim.PID]bool)
	for p := 0; p < n; p++ {
		for _, s := range labels.History(sim.PID(p)) {
			for _, l := range s.Value {
				if member[l] == nil {
					member[l] = make(map[sim.PID]bool)
				}
				member[l][sim.PID(p)] = true
			}
		}
	}
	sOf := func(x Label) []sim.PID {
		var out []sim.PID
		for p := 0; p < n; p++ {
			if member[x][sim.PID(p)] {
				out = append(out, sim.PID(p))
			}
		}
		return out
	}

	// Liveness.
	correctSet := make(map[sim.PID]bool)
	for _, p := range g.Correct() {
		correctSet[p] = true
	}
	for _, p := range g.Correct() {
		final, ok := quora.Last(p)
		if !ok {
			return Result{}, fmt.Errorf("HΣ liveness: correct process %d produced no h_quora output", p)
		}
		live := false
		for _, pair := range final {
			quorum := multiset.New[ident.ID]()
			for _, q := range sOf(pair.Label) {
				if correctSet[q] {
					quorum.Add(g.IDs[q])
				}
			}
			if pair.M.SubsetOf(quorum) {
				live = true
				break
			}
		}
		if !live {
			return Result{}, fmt.Errorf("HΣ liveness: process %d has no final pair (x, m) with m ⊆ I(S(x) ∩ Correct); quora=%v", p, final)
		}
	}

	// Safety over all distinct sampled pairs.
	type obs struct {
		pair QuorumPair
		s    []sim.PID // S(label)
	}
	seenPair := make(map[string]bool)
	var pairs []obs
	for p := 0; p < n; p++ {
		for _, s := range quora.History(sim.PID(p)) {
			for _, pair := range s.Value {
				key := string(pair.Label) + "\x00" + pair.M.Key()
				if seenPair[key] {
					continue
				}
				seenPair[key] = true
				pairs = append(pairs, obs{pair: pair, s: sOf(pair.Label)})
			}
		}
	}
	for i := 0; i < len(pairs); i++ {
		for j := i; j < len(pairs); j++ {
			a, b := pairs[i], pairs[j]
			if !realizable(g.IDs, a.pair.M, a.s) || !realizable(g.IDs, b.pair.M, b.s) {
				continue // vacuous: some realization does not exist
			}
			if disjointRealizable(g.IDs, a.pair.M, a.s, b.pair.M, b.s) {
				return Result{}, fmt.Errorf("HΣ safety: pairs (%q, %v) and (%q, %v) admit disjoint realizations",
					a.pair.Label, a.pair.M, b.pair.Label, b.pair.M)
			}
		}
	}

	stab := stabilization(g, quora)
	if s := stabilization(g, labels); s > stab {
		stab = s
	}
	return Result{StabilizationTime: stab}, nil
}

// realizable reports whether some Q ⊆ s has I(Q) = m: for every identifier,
// s must contain at least the demanded number of processes with it.
func realizable(ids ident.Assignment, m *multiset.Multiset[ident.ID], s []sim.PID) bool {
	avail := multiset.New[ident.ID]()
	for _, p := range s {
		avail.Add(ids[p])
	}
	return m.SubsetOf(avail)
}

// disjointRealizable reports whether there exist DISJOINT Q₁ ⊆ s1 with
// I(Q₁) = m1 and Q₂ ⊆ s2 with I(Q₂) = m2. Identifiers are independent: for
// identifier i, with a = m1(i) demanded from the processes of s1 carrying
// i (|·| = A exclusive + C shared) and b = m2(i) from s2's (B exclusive +
// C shared), disjoint picks exist iff a ≤ A+C, b ≤ B+C and a+b ≤ A+B+C.
func disjointRealizable(ids ident.Assignment, m1 *multiset.Multiset[ident.ID], s1 []sim.PID, m2 *multiset.Multiset[ident.ID], s2 []sim.PID) bool {
	in1 := make(map[sim.PID]bool, len(s1))
	for _, p := range s1 {
		in1[p] = true
	}
	in2 := make(map[sim.PID]bool, len(s2))
	for _, p := range s2 {
		in2[p] = true
	}
	count := func(id ident.ID) (a, b, c int) {
		for _, p := range s1 {
			if ids[p] == id && !in2[p] {
				a++
			}
		}
		for _, p := range s2 {
			if ids[p] == id && !in1[p] {
				b++
			}
		}
		for _, p := range s1 {
			if ids[p] == id && in2[p] {
				c++
			}
		}
		return a, b, c
	}
	union := m1.Union(m2)
	for _, id := range union.Support() {
		d1, d2 := m1.Count(id), m2.Count(id)
		a, b, c := count(id)
		if d1 > a+c || d2 > b+c || d1+d2 > a+b+c {
			return false
		}
	}
	return true
}

func labelSet(ls []Label) map[Label]bool {
	out := make(map[Label]bool, len(ls))
	for _, l := range ls {
		out[l] = true
	}
	return out
}

// CheckASigma verifies the anonymous class AΣ analogously: S_A(x) is the
// set of processes that ever held a pair labelled x; liveness requires a
// final pair (x, y) with |S_A(x) ∩ Correct| ≥ y; safety requires that no
// two pairs admit disjoint sub-quora, i.e. NOT (y₁ ≤ |S₁| ∧ y₂ ≤ |S₂| ∧
// y₁+y₂ ≤ |S₁ ∪ S₂|) for any sampled (x₁,y₁), (x₂,y₂).
func CheckASigma(g *GroundTruth, pr *Probe[[]APair]) (Result, error) {
	n := pr.N()

	member := make(map[Label]map[sim.PID]bool)
	for p := 0; p < n; p++ {
		for _, s := range pr.History(sim.PID(p)) {
			seen := make(map[Label]bool, len(s.Value))
			for _, pair := range s.Value {
				if seen[pair.Label] {
					return Result{}, fmt.Errorf("AΣ validity: process %d at t=%d holds two pairs with label %q", p, s.Time, pair.Label)
				}
				seen[pair.Label] = true
				if member[pair.Label] == nil {
					member[pair.Label] = make(map[sim.PID]bool)
				}
				member[pair.Label][sim.PID(p)] = true
			}
		}
		// Monotonicity: (x, y) must persist as (x, y') with y' ≤ y.
		hist := pr.History(sim.PID(p))
		for i := 1; i < len(hist); i++ {
			for _, old := range hist[i-1].Value {
				ok := false
				for _, nw := range hist[i].Value {
					if nw.Label == old.Label && nw.Y <= old.Y {
						ok = true
						break
					}
				}
				if !ok {
					return Result{}, fmt.Errorf("AΣ monotonicity: process %d pair (%q, %d) not preserved at t=%d", p, old.Label, old.Y, hist[i].Time)
				}
			}
		}
	}

	correctSet := make(map[sim.PID]bool)
	for _, p := range g.Correct() {
		correctSet[p] = true
	}
	for _, p := range g.Correct() {
		final, ok := pr.Last(p)
		if !ok {
			return Result{}, fmt.Errorf("AΣ liveness: correct process %d produced no output", p)
		}
		live := false
		for _, pair := range final {
			inter := 0
			for q := range member[pair.Label] {
				if correctSet[q] {
					inter++
				}
			}
			if inter >= pair.Y {
				live = true
				break
			}
		}
		if !live {
			return Result{}, fmt.Errorf("AΣ liveness: process %d has no final pair (x, y) with |S_A(x) ∩ Correct| ≥ y", p)
		}
	}

	// Safety.
	type obs struct {
		label Label
		y     int
	}
	seen := make(map[obs]bool)
	var all []obs
	for p := 0; p < n; p++ {
		for _, s := range pr.History(sim.PID(p)) {
			for _, pair := range s.Value {
				o := obs{pair.Label, pair.Y}
				if !seen[o] {
					seen[o] = true
					all = append(all, o)
				}
			}
		}
	}
	sizeOf := func(x Label) int { return len(member[x]) }
	unionOf := func(x1, x2 Label) int {
		u := make(map[sim.PID]bool)
		for p := range member[x1] {
			u[p] = true
		}
		for p := range member[x2] {
			u[p] = true
		}
		return len(u)
	}
	for i := 0; i < len(all); i++ {
		for j := i; j < len(all); j++ {
			a, b := all[i], all[j]
			if a.y <= sizeOf(a.label) && b.y <= sizeOf(b.label) && a.y+b.y <= unionOf(a.label, b.label) {
				return Result{}, fmt.Errorf("AΣ safety: pairs (%q, %d) and (%q, %d) admit disjoint quora", a.label, a.y, b.label, b.y)
			}
		}
	}
	return Result{StabilizationTime: stabilization(g, pr)}, nil
}
