package fd

import (
	"strings"
	"testing"

	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

func ms(ids ...ident.ID) *multiset.Multiset[ident.ID] { return multiset.From(ids...) }

func truth3AAB(crashed ...sim.PID) *GroundTruth {
	// The paper's running example: Π = {1,2,3}, id(1)=A, id(2)=A, id(3)=B.
	ct := make(map[sim.PID]sim.Time)
	for _, p := range crashed {
		ct[p] = 10
	}
	return NewGroundTruth(ident.Assignment{"A", "A", "B"}, ct)
}

func hist[T any](vals ...T) []Sample[T] {
	out := make([]Sample[T], len(vals))
	for i, v := range vals {
		out[i] = Sample[T]{Time: sim.Time(i + 1), Value: v}
	}
	return out
}

func TestGroundTruthBasics(t *testing.T) {
	g := truth3AAB(1)
	if got := g.Correct(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Correct = %v", got)
	}
	if !g.CorrectIDs().Equal(ms("A", "B")) {
		t.Errorf("CorrectIDs = %v", g.CorrectIDs())
	}
	if got := g.AliveAt(5); len(got) != 3 {
		t.Errorf("AliveAt(5) = %v, want all 3 (crash at 10)", got)
	}
	if got := g.AliveAt(10); len(got) != 2 {
		t.Errorf("AliveAt(10) = %v, want 2", got)
	}
	li, ok := g.ExpectedLeader()
	if !ok || li.ID != "A" || li.Multiplicity != 1 {
		t.Errorf("ExpectedLeader = %v, %v", li, ok)
	}
	if g.LastCrashTime() != 10 {
		t.Errorf("LastCrashTime = %d", g.LastCrashTime())
	}
}

func TestCheckDiamondHPbar(t *testing.T) {
	g := truth3AAB(1)
	good := NewStaticProbe([][]Sample[*multiset.Multiset[ident.ID]]{
		hist(ms("A", "A", "B"), ms("A", "B")),
		nil, // crashed: no requirement
		hist(ms("A", "B")),
	})
	res, err := CheckDiamondHPbar(g, good)
	if err != nil {
		t.Fatalf("good history rejected: %v", err)
	}
	if res.StabilizationTime != 2 {
		t.Errorf("StabilizationTime = %d, want 2", res.StabilizationTime)
	}

	bad := NewStaticProbe([][]Sample[*multiset.Multiset[ident.ID]]{
		hist(ms("A", "A", "B")), // never converges to I(Correct)
		nil,
		hist(ms("A", "B")),
	})
	if _, err := CheckDiamondHPbar(g, bad); err == nil {
		t.Error("non-converged history accepted")
	}
}

func TestCheckHOmega(t *testing.T) {
	g := truth3AAB(1)
	good := NewStaticProbe([][]Sample[LeaderInfo]{
		hist(LeaderInfo{"B", 9}, LeaderInfo{"A", 1}),
		nil,
		hist(LeaderInfo{"A", 1}),
	})
	if _, err := CheckHOmega(g, good); err != nil {
		t.Fatalf("good history rejected: %v", err)
	}

	tests := []struct {
		name string
		p0   LeaderInfo
		p2   LeaderInfo
		want string
	}{
		{"disagree", LeaderInfo{"A", 1}, LeaderInfo{"B", 1}, "disagree"},
		{"faulty leader elected", LeaderInfo{"Z", 1}, LeaderInfo{"Z", 1}, "not the identifier"},
		{"wrong multiplicity", LeaderInfo{"A", 2}, LeaderInfo{"A", 2}, "multiplicity"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pr := NewStaticProbe([][]Sample[LeaderInfo]{hist(tt.p0), nil, hist(tt.p2)})
			_, err := CheckHOmega(g, pr)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("err = %v, want containing %q", err, tt.want)
			}
		})
	}
}

func TestCheckHOmegaMultiplicityCountsCorrectOnly(t *testing.T) {
	// id A held by p0 (correct) and p1 (faulty): multiplicity must be 1.
	g := truth3AAB(1)
	pr := NewStaticProbe([][]Sample[LeaderInfo]{
		hist(LeaderInfo{"A", 1}),
		hist(LeaderInfo{"A", 2}), // faulty process's output is unconstrained
		hist(LeaderInfo{"A", 1}),
	})
	if _, err := CheckHOmega(g, pr); err != nil {
		t.Fatalf("faulty process output should be ignored: %v", err)
	}
}

func TestCheckSigma(t *testing.T) {
	// Unique ids, 4 processes, p3 crashes.
	g := NewGroundTruth(ident.Unique(4), map[sim.PID]sim.Time{3: 5})
	ids := g.IDs
	maj1 := ms(ids[0], ids[1])
	maj2 := ms(ids[1], ids[2])
	good := NewStaticProbe([][]Sample[*multiset.Multiset[ident.ID]]{
		hist(maj1, maj2),
		hist(maj2),
		hist(maj1.Union(maj2), maj2),
		nil,
	})
	if _, err := CheckSigma(g, good); err != nil {
		t.Fatalf("good Σ history rejected: %v", err)
	}

	// Safety violation: {p0} and {p2} are disjoint quorums.
	badSafety := NewStaticProbe([][]Sample[*multiset.Multiset[ident.ID]]{
		hist(ms(ids[0])),
		hist(ms(ids[2])),
		hist(maj2),
		nil,
	})
	if _, err := CheckSigma(g, badSafety); err == nil || !strings.Contains(err.Error(), "safety") {
		t.Errorf("disjoint quorums accepted: %v", err)
	}

	// Liveness violation: trusting the crashed p3 forever.
	badLive := NewStaticProbe([][]Sample[*multiset.Multiset[ident.ID]]{
		hist(ms(ids[0], ids[3])),
		hist(maj2),
		hist(maj2),
		nil,
	})
	if _, err := CheckSigma(g, badLive); err == nil || !strings.Contains(err.Error(), "liveness") {
		t.Errorf("faulty-trusting quorum accepted: %v", err)
	}
}

func TestCheckAliveList(t *testing.T) {
	g := NewGroundTruth(ident.Unique(3), map[sim.PID]sim.Time{2: 5})
	ids := g.IDs
	good := NewStaticProbe([][]Sample[[]ident.ID]{
		hist([]ident.ID{ids[2], ids[0], ids[1]}, []ident.ID{ids[0], ids[1], ids[2]}),
		hist([]ident.ID{ids[1], ids[0], ids[2]}),
		nil,
	})
	if _, err := CheckAliveList(g, good); err != nil {
		t.Fatalf("good 𝔈 history rejected: %v", err)
	}
	bad := NewStaticProbe([][]Sample[[]ident.ID]{
		hist([]ident.ID{ids[0], ids[2], ids[1]}), // crashed id ranked 2nd forever
		hist([]ident.ID{ids[0], ids[1]}),
		nil,
	})
	if _, err := CheckAliveList(g, bad); err == nil {
		t.Error("bad prefix accepted")
	}
}

func TestCheckAP(t *testing.T) {
	g := NewGroundTruth(ident.AnonymousN(4), map[sim.PID]sim.Time{3: 100})
	good := NewStaticProbe([][]Sample[int]{
		{{Time: 1, Value: 4}, {Time: 150, Value: 3}},
		{{Time: 1, Value: 4}, {Time: 160, Value: 3}},
		{{Time: 1, Value: 4}, {Time: 170, Value: 3}},
		nil,
	})
	res, err := CheckAP(g, good)
	if err != nil {
		t.Fatalf("good AP history rejected: %v", err)
	}
	if res.StabilizationTime != 170 {
		t.Errorf("StabilizationTime = %d, want 170", res.StabilizationTime)
	}

	// Safety violation: outputs 2 while 4 processes are alive.
	badSafety := NewStaticProbe([][]Sample[int]{
		{{Time: 1, Value: 2}, {Time: 150, Value: 3}},
		{{Time: 1, Value: 4}, {Time: 150, Value: 3}},
		{{Time: 1, Value: 4}, {Time: 150, Value: 3}},
		nil,
	})
	if _, err := CheckAP(g, badSafety); err == nil || !strings.Contains(err.Error(), "safety") {
		t.Errorf("under-count accepted: %v", err)
	}

	// Liveness violation: stuck at 4 forever.
	badLive := NewStaticProbe([][]Sample[int]{
		{{Time: 1, Value: 4}},
		{{Time: 1, Value: 4}, {Time: 150, Value: 3}},
		{{Time: 1, Value: 4}, {Time: 150, Value: 3}},
		nil,
	})
	if _, err := CheckAP(g, badLive); err == nil || !strings.Contains(err.Error(), "liveness") {
		t.Errorf("non-tight bound accepted: %v", err)
	}
}

func TestCheckAOmega(t *testing.T) {
	g := NewGroundTruth(ident.AnonymousN(3), map[sim.PID]sim.Time{1: 5})
	good := NewStaticProbe([][]Sample[bool]{
		hist(false, true),
		nil,
		hist(true, false),
	})
	if _, err := CheckAOmega(g, good); err != nil {
		t.Fatalf("good AΩ history rejected: %v", err)
	}
	bad := NewStaticProbe([][]Sample[bool]{
		hist(true),
		nil,
		hist(true),
	})
	if _, err := CheckAOmega(g, bad); err == nil {
		t.Error("two leaders accepted")
	}
}

func TestCheckOmega(t *testing.T) {
	g := NewGroundTruth(ident.Unique(3), map[sim.PID]sim.Time{0: 5})
	ids := g.IDs
	good := NewStaticProbe([][]Sample[ident.ID]{
		nil,
		hist(ids[0], ids[1]),
		hist(ids[1]),
	})
	if _, err := CheckOmega(g, good); err != nil {
		t.Fatalf("good Ω history rejected: %v", err)
	}
	bad := NewStaticProbe([][]Sample[ident.ID]{
		nil,
		hist(ids[0]), // crashed leader forever
		hist(ids[0]),
	})
	if _, err := CheckOmega(g, bad); err == nil {
		t.Error("crashed leader accepted")
	}
}

func TestRankHelpers(t *testing.T) {
	alive := []ident.ID{"c", "a", "b"}
	if Rank("a", alive) != 2 {
		t.Errorf("Rank(a) = %d", Rank("a", alive))
	}
	if Rank("zz", alive) != 0 {
		t.Errorf("Rank(zz) = %d", Rank("zz", alive))
	}
	if MaxRank([]ident.ID{"a", "c"}, alive) != 2 {
		t.Errorf("MaxRank = %d", MaxRank([]ident.ID{"a", "c"}, alive))
	}
	if got := MaxRank([]ident.ID{"a", "zz"}, alive); got <= 3 {
		t.Errorf("MaxRank with missing = %d, want > len(alive)", got)
	}
}

func TestLabelsEqual(t *testing.T) {
	if !LabelsEqual([]Label{"b", "a"}, []Label{"a", "b"}) {
		t.Error("order should not matter")
	}
	if LabelsEqual([]Label{"a"}, []Label{"a", "b"}) {
		t.Error("different sizes equal")
	}
	if !LabelsEqual(nil, nil) {
		t.Error("nil sets should be equal")
	}
}

func TestIsCorrect(t *testing.T) {
	g := truth3AAB(1)
	if !g.IsCorrect(0) || g.IsCorrect(1) || !g.IsCorrect(2) {
		t.Error("IsCorrect wrong")
	}
}

func TestProbeLastOnEmpty(t *testing.T) {
	pr := NewStaticProbe([][]Sample[int]{nil})
	if _, ok := pr.Last(0); ok {
		t.Error("Last on empty history should report false")
	}
	if pr.LastChange(0) != 0 {
		t.Error("LastChange on empty history should be 0")
	}
	if pr.N() != 1 {
		t.Error("N wrong")
	}
}

func TestCheckOmegaNoOutput(t *testing.T) {
	g := NewGroundTruth(ident.Unique(2), nil)
	pr := NewStaticProbe([][]Sample[ident.ID]{nil, nil})
	if _, err := CheckOmega(g, pr); err == nil {
		t.Error("missing output accepted")
	}
}
