package fd

// Streaming verification. Probe retains every distinct output a process
// ever showed, so its memory grows with the execution; at n = 50,000 the
// histories — not the simulator — become the memory ceiling. StreamProbe
// keeps only each process's latest output and the time it last changed
// (O(1) state per process, independent of event count) and pushes each
// change through registered observers as it happens. Checkers that only
// need final outputs (◇HP̄, HΩ, 𝔈, Ω, AΩ, and the stabilization time)
// accept the FinalView interface, which both probes implement — so the
// same checker code verifies a materialized run and a streaming one.
// Properties quantified over whole histories (Σ safety) become online
// monitors: see SigmaMonitor. Equivalence of the two pipelines is pinned
// by tests running both over identical executions.

import (
	"fmt"

	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// FinalView is the read surface shared by Probe (full histories) and
// StreamProbe (latest sample only): everything a final-state checker
// needs. Last returns p's latest output (ok=false if p never output);
// LastChange the time that output last changed; N the process count.
type FinalView[T any] interface {
	Last(p sim.PID) (T, bool)
	LastChange(p sim.PID) sim.Time
	N() int
}

var (
	_ FinalView[int] = (*Probe[int])(nil)
	_ FinalView[int] = (*StreamProbe[int])(nil)
)

// StreamProbe samples a detector output exactly as Probe does — the
// event's process after every event, every process when the clock moves —
// but retains only the latest value per process. Observers registered
// with Observe see every change (the same sample stream Probe would have
// appended), which is how online monitors consume an execution without
// anyone materializing it.
type StreamProbe[T any] struct {
	last       []T
	seen       []bool
	lastChange []sim.Time
	eq         func(a, b T) bool
	obs        []func(p sim.PID, s Sample[T])
}

// NewStreamProbe attaches a streaming probe to the engine; get and eq are
// exactly NewProbe's. Register observers before the run starts.
func NewStreamProbe[T any](eng *sim.Engine, n int, get func(p sim.PID) (T, bool), eq func(a, b T) bool) *StreamProbe[T] {
	sp := newStreamProbe[T](n, eq)
	lastNow := sim.Time(-1)
	eng.AfterEvent(func(now sim.Time, p sim.PID) {
		if p >= 0 && now == lastNow {
			if int(p) < n {
				sp.sample(now, p, get)
			}
			return
		}
		lastNow = now
		for q := 0; q < n; q++ {
			sp.sample(now, sim.PID(q), get)
		}
	})
	return sp
}

// NewStaticStreamProbe builds a detached streaming probe fed by hand
// through Feed — the streaming counterpart of NewStaticProbe, for checker
// tests and offline replay (e.g. driving monitors from a decoded trace).
func NewStaticStreamProbe[T any](n int, eq func(a, b T) bool) *StreamProbe[T] {
	return newStreamProbe[T](n, eq)
}

func newStreamProbe[T any](n int, eq func(a, b T) bool) *StreamProbe[T] {
	return &StreamProbe[T]{
		last:       make([]T, n),
		seen:       make([]bool, n),
		lastChange: make([]sim.Time, n),
		eq:         eq,
	}
}

func (sp *StreamProbe[T]) sample(now sim.Time, p sim.PID, get func(p sim.PID) (T, bool)) {
	v, ok := get(p)
	if !ok {
		return
	}
	sp.Feed(now, p, v)
}

// Feed records one observation: a no-op if p's output is unchanged,
// otherwise the latest sample is replaced and observers run. Live probes
// feed themselves from engine events; static probes are fed by the caller
// in sample order.
func (sp *StreamProbe[T]) Feed(now sim.Time, p sim.PID, v T) {
	if sp.seen[p] && sp.eq(sp.last[p], v) {
		return
	}
	sp.last[p] = v
	sp.seen[p] = true
	sp.lastChange[p] = now
	for _, f := range sp.obs {
		f(p, Sample[T]{Time: now, Value: v})
	}
}

// Observe registers an observer for every sample a Probe would have
// stored: p's output changed to s.Value at s.Time. Observers run in
// registration order, synchronously, inside the engine's event loop.
func (sp *StreamProbe[T]) Observe(f func(p sim.PID, s Sample[T])) {
	sp.obs = append(sp.obs, f)
}

// Last implements FinalView.
func (sp *StreamProbe[T]) Last(p sim.PID) (T, bool) {
	if !sp.seen[p] {
		var zero T
		return zero, false
	}
	return sp.last[p], true
}

// LastChange implements FinalView.
func (sp *StreamProbe[T]) LastChange(p sim.PID) sim.Time { return sp.lastChange[p] }

// N implements FinalView.
func (sp *StreamProbe[T]) N() int { return len(sp.last) }

// SigmaMonitor checks Σ safety online: every pair of quorums sampled
// anywhere in the execution must intersect. Instead of materializing all
// samples and testing all pairs (the O(samples²) pass in CheckSigma), it
// keeps the antichain of minimal quorums seen so far: a new quorum is
// tested against the antichain only — if Q intersects every kept minimal
// quorum, it intersects every quorum ever seen, because each seen quorum
// is a superset of some kept one (supersets are pruned on insertion and
// never kept). State is therefore bounded by the number of pairwise-
// incomparable distinct quorums in the run — for converging detectors a
// handful — not by the event count. The first violation is retained with
// both offending sample points.
type SigmaMonitor struct {
	kept []sigmaSample
	err  error
}

type sigmaSample struct {
	q   *multiset.Multiset[ident.ID]
	pid sim.PID
	t   sim.Time
}

// NewSigmaMonitor returns an empty monitor; attach it to a quorum probe
// with Attach, or drive it directly through Observe.
func NewSigmaMonitor() *SigmaMonitor { return &SigmaMonitor{} }

// Attach subscribes the monitor to every quorum sample the probe sees.
func (m *SigmaMonitor) Attach(sp *StreamProbe[*multiset.Multiset[ident.ID]]) {
	sp.Observe(m.Observe)
}

// Observe feeds one quorum sample. The quorum value must not be mutated
// after the call (probes already require snapshot semantics from get).
func (m *SigmaMonitor) Observe(p sim.PID, s Sample[*multiset.Multiset[ident.ID]]) {
	if m.err != nil {
		return
	}
	keep := true
	w := 0
	for _, k := range m.kept {
		if !k.q.Intersects(s.Value) {
			m.err = fmt.Errorf("Σ safety: quorum %v (p%d@%d) and %v (p%d@%d) are disjoint",
				k.q, k.pid, k.t, s.Value, p, s.Time)
			return
		}
		if keep && k.q.SubsetOf(s.Value) {
			// A kept quorum is contained in the new one: anything
			// intersecting the kept one intersects Q, so Q adds nothing.
			keep = false
		}
		if keep && s.Value.SubsetOf(k.q) {
			// Q is smaller: the kept superset becomes redundant. Drop it
			// (Q will stand in for it from now on).
			continue
		}
		m.kept[w] = k
		w++
	}
	m.kept = m.kept[:w]
	if keep {
		m.kept = append(m.kept, sigmaSample{q: s.Value, pid: p, t: s.Time})
	}
}

// Err returns the first safety violation observed, if any.
func (m *SigmaMonitor) Err() error { return m.err }

// CheckSigmaStream is CheckSigma's streaming form: safety comes from the
// monitor that watched the run, liveness and stabilization from the final
// view. Run both over the same probe: attach the monitor before the run,
// call this after it.
func CheckSigmaStream(g *GroundTruth, pr FinalView[*multiset.Multiset[ident.ID]], m *SigmaMonitor) (Result, error) {
	if err := m.Err(); err != nil {
		return Result{}, err
	}
	want := g.EventuallyUpIDs()
	for _, p := range g.EventuallyUp() {
		got, ok := pr.Last(p)
		if !ok {
			return Result{}, fmt.Errorf("Σ liveness: eventually-up process %d produced no output", p)
		}
		if !got.SubsetOf(want) {
			return Result{}, fmt.Errorf("Σ liveness: process %d trusts %v ⊄ I(EventuallyUp) = %v", p, got, want)
		}
	}
	return Result{StabilizationTime: stabilization(g, pr)}, nil
}
