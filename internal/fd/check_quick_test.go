package fd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// bruteDisjoint decides ∃ disjoint realizations by exhaustive enumeration
// over subsets of s1 and s2 — the ground truth the polynomial
// disjointRealizable must match.
func bruteDisjoint(ids ident.Assignment, m1 *multiset.Multiset[ident.ID], s1 []sim.PID, m2 *multiset.Multiset[ident.ID], s2 []sim.PID) bool {
	reals := func(m *multiset.Multiset[ident.ID], s []sim.PID) []map[sim.PID]bool {
		var out []map[sim.PID]bool
		k := len(s)
		for mask := 0; mask < 1<<k; mask++ {
			pick := multiset.New[ident.ID]()
			set := make(map[sim.PID]bool)
			for i := 0; i < k; i++ {
				if mask&(1<<i) != 0 {
					pick.Add(ids[s[i]])
					set[s[i]] = true
				}
			}
			if pick.Equal(m) {
				out = append(out, set)
			}
		}
		return out
	}
	for _, q1 := range reals(m1, s1) {
		for _, q2 := range reals(m2, s2) {
			disjoint := true
			//detlint:ignore maprange existence scan: breaks on the first shared member; the boolean outcome is the same whichever witness is visited first
			for p := range q1 {
				if q2[p] {
					disjoint = false
					break
				}
			}
			if disjoint {
				return true
			}
		}
	}
	return false
}

// TestDisjointRealizableMatchesBruteForce cross-checks the per-identifier
// counting criterion against exhaustive enumeration on random small
// instances (the criterion is where HΣ safety checking gets its
// polynomial bound, so it must be exact).
func TestDisjointRealizableMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		idSpace := []ident.ID{"A", "B", "C"}
		ids := make(ident.Assignment, n)
		for i := range ids {
			ids[i] = idSpace[r.Intn(len(idSpace))]
		}
		randSet := func() []sim.PID {
			var s []sim.PID
			for p := 0; p < n; p++ {
				if r.Intn(2) == 0 {
					s = append(s, sim.PID(p))
				}
			}
			return s
		}
		randDemand := func(s []sim.PID) *multiset.Multiset[ident.ID] {
			m := multiset.New[ident.ID]()
			if len(s) == 0 {
				m.Add(idSpace[r.Intn(len(idSpace))])
				return m
			}
			// Mostly realizable demands: sample from the set's ids.
			k := 1 + r.Intn(len(s))
			for i := 0; i < k; i++ {
				m.Add(ids[s[r.Intn(len(s))]])
			}
			return m
		}
		s1, s2 := randSet(), randSet()
		m1, m2 := randDemand(s1), randDemand(s2)
		if !realizable(ids, m1, s1) || !realizable(ids, m2, s2) {
			// The criterion is only consulted for realizable pairs.
			return true
		}
		return disjointRealizable(ids, m1, s1, m2, s2) == bruteDisjoint(ids, m1, s1, m2, s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestRealizableMatchesBruteForce: realizable(m, S) iff some subset of S
// realizes m exactly.
func TestRealizableMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		idSpace := []ident.ID{"A", "B"}
		ids := make(ident.Assignment, n)
		for i := range ids {
			ids[i] = idSpace[r.Intn(len(idSpace))]
		}
		var s []sim.PID
		for p := 0; p < n; p++ {
			if r.Intn(2) == 0 {
				s = append(s, sim.PID(p))
			}
		}
		m := multiset.New[ident.ID]()
		for i := 0; i < r.Intn(4); i++ {
			m.Add(idSpace[r.Intn(len(idSpace))])
		}
		brute := false
		for mask := 0; mask < 1<<len(s); mask++ {
			pick := multiset.New[ident.ID]()
			for i := range s {
				if mask&(1<<i) != 0 {
					pick.Add(ids[s[i]])
				}
			}
			if pick.Equal(m) {
				brute = true
				break
			}
		}
		return realizable(ids, m, s) == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
