package fd

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Detector outputs cross the trace boundary as KindFDChange events: the
// live run records every accepted StreamProbe sample (RecordChanges), and
// a replay parses the events back into a static probe with identical final
// views and last-change times (ChangeReplayer). The render/parse pairs
// below are exact inverses on every value a detector can output — process
// identifiers ("g003", "p017") never contain '*' or '|', which the
// encodings exploit. MsgTag names the probed output, so one trace can
// carry several view streams side by side.

// FDChange tags for the probed detector outputs.
const (
	TagTrusted = "TRUSTED" // *multiset.Multiset[ident.ID] (◇HP̄, Σ)
	TagLeader  = "LEADER"  // LeaderInfo (HΩ)
	TagAlive   = "ALIVE"   // []ident.ID (𝔈)
	TagOmega   = "OMEGA"   // ident.ID (Ω)
	TagAOmega  = "AOMEGA"  // bool (AΩ)
	TagAP      = "AP"      // int (AP)
)

// RenderView encodes a trusted/quorum multiset as its canonical Key
// ("g001*2|g002*1"; empty multiset is "").
func RenderView(m *multiset.Multiset[ident.ID]) string { return m.Key() }

// ParseView inverts RenderView.
func ParseView(s string) (*multiset.Multiset[ident.ID], error) {
	m := multiset.New[ident.ID]()
	if s == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, "|") {
		i := strings.LastIndex(part, "*")
		if i < 0 {
			return nil, fmt.Errorf("fd: view element %q has no multiplicity", part)
		}
		c, err := strconv.Atoi(part[i+1:])
		if err != nil || c <= 0 {
			return nil, fmt.Errorf("fd: view element %q has bad multiplicity", part)
		}
		m.AddN(ident.ID(part[:i]), c)
	}
	return m, nil
}

// RenderLeader encodes an HΩ output as "id*multiplicity".
func RenderLeader(l LeaderInfo) string {
	return string(l.ID) + "*" + strconv.Itoa(l.Multiplicity)
}

// ParseLeader inverts RenderLeader.
func ParseLeader(s string) (LeaderInfo, error) {
	i := strings.LastIndex(s, "*")
	if i < 0 {
		return LeaderInfo{}, fmt.Errorf("fd: leader %q has no multiplicity", s)
	}
	c, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return LeaderInfo{}, fmt.Errorf("fd: leader %q has bad multiplicity", s)
	}
	return LeaderInfo{ID: ident.ID(s[:i]), Multiplicity: c}, nil
}

// RenderAlive encodes an 𝔈 alive list in order ("g002|g001"; empty is "").
func RenderAlive(ids []ident.ID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, "|")
}

// ParseAlive inverts RenderAlive.
func ParseAlive(s string) ([]ident.ID, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, "|")
	ids := make([]ident.ID, len(parts))
	for i, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("fd: alive list %q has an empty identifier", s)
		}
		ids[i] = ident.ID(p)
	}
	return ids, nil
}

// RecordChanges subscribes rec to the probe: every accepted sample becomes
// a KindFDChange event carrying tag and render(value), in sample order.
// Register it only on retaining recorders — rendering is wasted work on a
// stats-only run, where KindFDChange events are dropped anyway.
func RecordChanges[T any](rec *trace.Recorder, sp *StreamProbe[T], tag string, render func(T) string) {
	sp.Observe(func(p sim.PID, s Sample[T]) {
		rec.Record(trace.Event{Time: int64(s.Time), Kind: trace.KindFDChange, PID: int(p), MsgTag: tag, Detail: render(s.Value)})
	})
}

// ChangeReplayer rebuilds one detector-output stream from a trace: feed it
// every event (Observe ignores everything but KindFDChange events carrying
// its tag) and Probe exposes the reconstructed views to the same checkers
// the live run used. Because RecordChanges records exactly the samples the
// live probe accepted, the replayed probe's final views and last-change
// times are identical to the live ones.
type ChangeReplayer[T any] struct {
	probe *StreamProbe[T]
	tag   string
	parse func(string) (T, error)
	err   error
}

// NewChangeReplayer replays tag-carrying FDChange events for processes
// 0..n-1; eq and parse must match the live probe's eq and renderer.
func NewChangeReplayer[T any](n int, eq func(a, b T) bool, tag string, parse func(string) (T, error)) *ChangeReplayer[T] {
	return &ChangeReplayer[T]{probe: NewStaticStreamProbe[T](n, eq), tag: tag, parse: parse}
}

// Observe consumes one trace event.
func (r *ChangeReplayer[T]) Observe(e trace.Event) {
	if e.Kind != trace.KindFDChange || e.MsgTag != r.tag || r.err != nil {
		return
	}
	if e.PID < 0 || e.PID >= r.probe.N() {
		r.err = fmt.Errorf("fd: %s change for process %d outside [0,%d)", r.tag, e.PID, r.probe.N())
		return
	}
	v, err := r.parse(e.Detail)
	if err != nil {
		r.err = err
		return
	}
	r.probe.Feed(sim.Time(e.Time), sim.PID(e.PID), v)
}

// Probe returns the reconstructed probe (attach monitors before feeding).
func (r *ChangeReplayer[T]) Probe() *StreamProbe[T] { return r.probe }

// Err reports the first malformed change event (nil on well-formed traces).
func (r *ChangeReplayer[T]) Err() error { return r.err }

// The ohp detector pair (◇HP̄ trusted views + HΩ leaders) is what the E6
// and churn drivers probe; these constructors pin the (eq, tag, codec)
// triples so live and replay cannot drift apart.

// NewTrustedReplayer replays TagTrusted multiset views.
func NewTrustedReplayer(n int) *ChangeReplayer[*multiset.Multiset[ident.ID]] {
	return NewChangeReplayer(n, (*multiset.Multiset[ident.ID]).Equal, TagTrusted, ParseView)
}

// NewLeaderReplayer replays TagLeader HΩ outputs.
func NewLeaderReplayer(n int) *ChangeReplayer[LeaderInfo] {
	return NewChangeReplayer(n, func(a, b LeaderInfo) bool { return a == b }, TagLeader, ParseLeader)
}
