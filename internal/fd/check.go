package fd

import (
	"fmt"

	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// Result reports a successful class check, with the measured stabilization
// time: the latest instant at which any correct process's output changed
// for the last time. (A checker can only certify the recorded prefix of an
// infinite execution; "eventually forever" is read as "held from the final
// change to the end of the recording", which is exact for detectors that
// provably stop changing.)
type Result struct {
	StabilizationTime sim.Time
}

// stabilization computes the max last-change time over correct processes.
func stabilization[T any](g *GroundTruth, pr *Probe[T]) sim.Time {
	var worst sim.Time
	for _, p := range g.Correct() {
		if t := pr.LastChange(p); t > worst {
			worst = t
		}
	}
	return worst
}

// CheckDiamondHPbar verifies class ◇HP̄: every correct process's final
// trusted multiset equals I(Correct).
func CheckDiamondHPbar(g *GroundTruth, pr *Probe[*multiset.Multiset[ident.ID]]) (Result, error) {
	want := g.CorrectIDs()
	for _, p := range g.Correct() {
		got, ok := pr.Last(p)
		if !ok {
			return Result{}, fmt.Errorf("◇HP̄ liveness: correct process %d produced no output", p)
		}
		if !got.Equal(want) {
			return Result{}, fmt.Errorf("◇HP̄ liveness: process %d trusts %v, want I(Correct) = %v", p, got, want)
		}
	}
	return Result{StabilizationTime: stabilization(g, pr)}, nil
}

// CheckHOmega verifies class HΩ: eventually all correct processes output
// the same pair (ℓ, c) with ℓ ∈ I(Correct) and c = mult_{I(Correct)}(ℓ).
func CheckHOmega(g *GroundTruth, pr *Probe[LeaderInfo]) (Result, error) {
	correct := g.Correct()
	if len(correct) == 0 {
		return Result{}, nil
	}
	first, ok := pr.Last(correct[0])
	if !ok {
		return Result{}, fmt.Errorf("HΩ election: correct process %d produced no output", correct[0])
	}
	for _, p := range correct[1:] {
		got, ok := pr.Last(p)
		if !ok {
			return Result{}, fmt.Errorf("HΩ election: correct process %d produced no output", p)
		}
		if got != first {
			return Result{}, fmt.Errorf("HΩ election: processes %d and %d disagree: %v vs %v", correct[0], p, first, got)
		}
	}
	cids := g.CorrectIDs()
	if !cids.Contains(first.ID) {
		return Result{}, fmt.Errorf("HΩ election: elected id %s is not the identifier of any correct process", first.ID)
	}
	if want := cids.Count(first.ID); first.Multiplicity != want {
		return Result{}, fmt.Errorf("HΩ election: multiplicity %d for id %s, want %d", first.Multiplicity, first.ID, want)
	}
	return Result{StabilizationTime: stabilization(g, pr)}, nil
}

// CheckSigma verifies the (multiset-generalized) class Σ.
// Liveness: each correct process's final quorum ⊆ I(Correct).
// Safety: every two sampled quorums, across all processes and times, share
// an identifier; in unique-identifier systems a shared identifier is a
// shared process, which is the paper's setting for Σ.
func CheckSigma(g *GroundTruth, pr *Probe[*multiset.Multiset[ident.ID]]) (Result, error) {
	want := g.CorrectIDs()
	for _, p := range g.Correct() {
		got, ok := pr.Last(p)
		if !ok {
			return Result{}, fmt.Errorf("Σ liveness: correct process %d produced no output", p)
		}
		if !got.SubsetOf(want) {
			return Result{}, fmt.Errorf("Σ liveness: process %d trusts %v ⊄ I(Correct) = %v", p, got, want)
		}
	}
	var all []sampleAt[*multiset.Multiset[ident.ID]]
	for p := 0; p < pr.N(); p++ {
		for _, s := range pr.History(sim.PID(p)) {
			all = append(all, sampleAt[*multiset.Multiset[ident.ID]]{pid: sim.PID(p), s: s})
		}
	}
	for i := 0; i < len(all); i++ {
		for j := i; j < len(all); j++ {
			if !all[i].s.Value.Intersects(all[j].s.Value) {
				return Result{}, fmt.Errorf("Σ safety: quorum %v (p%d@%d) and %v (p%d@%d) are disjoint",
					all[i].s.Value, all[i].pid, all[i].s.Time, all[j].s.Value, all[j].pid, all[j].s.Time)
			}
		}
	}
	return Result{StabilizationTime: stabilization(g, pr)}, nil
}

type sampleAt[T any] struct {
	pid sim.PID
	s   Sample[T]
}

// CheckAliveList verifies class 𝔈 (Definition 1): in every correct
// process's final alive list, each correct identifier has rank ≤ |Correct|.
func CheckAliveList(g *GroundTruth, pr *Probe[[]ident.ID]) (Result, error) {
	correct := g.Correct()
	for _, p := range correct {
		alive, ok := pr.Last(p)
		if !ok {
			return Result{}, fmt.Errorf("𝔈 liveness: correct process %d produced no output", p)
		}
		for _, q := range correct {
			r := Rank(g.IDs[q], alive)
			if r == 0 || r > len(correct) {
				return Result{}, fmt.Errorf("𝔈 liveness: at process %d, rank(%s) = %d > |Correct| = %d (alive=%v)",
					p, g.IDs[q], r, len(correct), alive)
			}
		}
	}
	return Result{StabilizationTime: stabilization(g, pr)}, nil
}

// CheckAP verifies class AP. Safety: at every sample time T the output is
// ≥ the number of alive processes at T. Liveness: every correct process's
// final output equals |Correct|.
func CheckAP(g *GroundTruth, pr *Probe[int]) (Result, error) {
	for p := 0; p < pr.N(); p++ {
		for _, s := range pr.History(sim.PID(p)) {
			if alive := g.AliveCountAt(s.Time); s.Value < alive {
				return Result{}, fmt.Errorf("AP safety: process %d output %d at t=%d with %d processes alive", p, s.Value, s.Time, alive)
			}
		}
	}
	want := len(g.Correct())
	for _, p := range g.Correct() {
		got, ok := pr.Last(p)
		if !ok {
			return Result{}, fmt.Errorf("AP liveness: correct process %d produced no output", p)
		}
		if got != want {
			return Result{}, fmt.Errorf("AP liveness: process %d converged to %d, want |Correct| = %d", p, got, want)
		}
	}
	return Result{StabilizationTime: stabilization(g, pr)}, nil
}

// CheckAOmega verifies class AΩ: in the final samples, exactly one correct
// process's Boolean is true.
func CheckAOmega(g *GroundTruth, pr *Probe[bool]) (Result, error) {
	leaders := 0
	for _, p := range g.Correct() {
		v, ok := pr.Last(p)
		if !ok {
			return Result{}, fmt.Errorf("AΩ election: correct process %d produced no output", p)
		}
		if v {
			leaders++
		}
	}
	if leaders != 1 {
		return Result{}, fmt.Errorf("AΩ election: %d correct processes consider themselves leader, want exactly 1", leaders)
	}
	return Result{StabilizationTime: stabilization(g, pr)}, nil
}

// CheckOmega verifies the classical Ω: all correct processes' final leader
// is one common identifier of a correct process.
func CheckOmega(g *GroundTruth, pr *Probe[ident.ID]) (Result, error) {
	correct := g.Correct()
	if len(correct) == 0 {
		return Result{}, nil
	}
	first, ok := pr.Last(correct[0])
	if !ok {
		return Result{}, fmt.Errorf("Ω election: correct process %d produced no output", correct[0])
	}
	for _, p := range correct[1:] {
		got, ok := pr.Last(p)
		if !ok || got != first {
			return Result{}, fmt.Errorf("Ω election: process %d has leader %v, process %d has %v", correct[0], first, p, got)
		}
	}
	if !g.CorrectIDs().Contains(first) {
		return Result{}, fmt.Errorf("Ω election: leader %s is not a correct process", first)
	}
	return Result{StabilizationTime: stabilization(g, pr)}, nil
}
