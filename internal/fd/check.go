package fd

import (
	"fmt"

	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// Result reports a successful class check, with the measured stabilization
// time: the latest instant at which any correct process's output changed
// for the last time. (A checker can only certify the recorded prefix of an
// infinite execution; "eventually forever" is read as "held from the final
// change to the end of the recording", which is exact for detectors that
// provably stop changing.)
type Result struct {
	StabilizationTime sim.Time
}

// stabilization computes the max last-change time over eventually-up
// processes (= correct processes in crash-stop). It needs only final
// views, so it serves the materialized and streaming pipelines alike.
func stabilization[T any](g *GroundTruth, pr FinalView[T]) sim.Time {
	var worst sim.Time
	for _, p := range g.EventuallyUp() {
		if t := pr.LastChange(p); t > worst {
			worst = t
		}
	}
	return worst
}

// CheckDiamondHPbar verifies class ◇HP̄: every eventually-up process's
// final trusted multiset equals I(EventuallyUp). In crash-stop executions
// EventuallyUp is exactly the Correct set, so this is the paper's property
// verbatim; under crash-recovery churn the class is restated relative to
// the eventually-up processes — the only set a heartbeat-driven detector
// can converge to.
func CheckDiamondHPbar(g *GroundTruth, pr FinalView[*multiset.Multiset[ident.ID]]) (Result, error) {
	want := g.EventuallyUpIDs()
	for _, p := range g.EventuallyUp() {
		got, ok := pr.Last(p)
		if !ok {
			return Result{}, fmt.Errorf("◇HP̄ liveness: eventually-up process %d produced no output", p)
		}
		if !got.Equal(want) {
			return Result{}, fmt.Errorf("◇HP̄ liveness: process %d trusts %v, want I(EventuallyUp) = %v", p, got, want)
		}
	}
	return Result{StabilizationTime: stabilization(g, pr)}, nil
}

// CheckHOmega verifies class HΩ: eventually all eventually-up processes
// output the same pair (ℓ, c) with ℓ ∈ I(EventuallyUp) and
// c = mult_{I(EventuallyUp)}(ℓ). In crash-stop executions this is the
// paper's property over the Correct set.
func CheckHOmega(g *GroundTruth, pr FinalView[LeaderInfo]) (Result, error) {
	up := g.EventuallyUp()
	if len(up) == 0 {
		return Result{}, nil
	}
	first, ok := pr.Last(up[0])
	if !ok {
		return Result{}, fmt.Errorf("HΩ election: eventually-up process %d produced no output", up[0])
	}
	for _, p := range up[1:] {
		got, ok := pr.Last(p)
		if !ok {
			return Result{}, fmt.Errorf("HΩ election: eventually-up process %d produced no output", p)
		}
		if got != first {
			return Result{}, fmt.Errorf("HΩ election: processes %d and %d disagree: %v vs %v", up[0], p, first, got)
		}
	}
	cids := g.EventuallyUpIDs()
	if !cids.Contains(first.ID) {
		return Result{}, fmt.Errorf("HΩ election: elected id %s is not the identifier of any eventually-up process", first.ID)
	}
	if want := cids.Count(first.ID); first.Multiplicity != want {
		return Result{}, fmt.Errorf("HΩ election: multiplicity %d for id %s, want %d", first.Multiplicity, first.ID, want)
	}
	return Result{StabilizationTime: stabilization(g, pr)}, nil
}

// CheckSigma verifies the (multiset-generalized) class Σ.
// Liveness: each correct process's final quorum ⊆ I(Correct).
// Safety: every two sampled quorums, across all processes and times, share
// an identifier; in unique-identifier systems a shared identifier is a
// shared process, which is the paper's setting for Σ.
func CheckSigma(g *GroundTruth, pr *Probe[*multiset.Multiset[ident.ID]]) (Result, error) {
	want := g.EventuallyUpIDs()
	for _, p := range g.EventuallyUp() {
		got, ok := pr.Last(p)
		if !ok {
			return Result{}, fmt.Errorf("Σ liveness: eventually-up process %d produced no output", p)
		}
		if !got.SubsetOf(want) {
			return Result{}, fmt.Errorf("Σ liveness: process %d trusts %v ⊄ I(EventuallyUp) = %v", p, got, want)
		}
	}
	var all []sampleAt[*multiset.Multiset[ident.ID]]
	for p := 0; p < pr.N(); p++ {
		for _, s := range pr.History(sim.PID(p)) {
			all = append(all, sampleAt[*multiset.Multiset[ident.ID]]{pid: sim.PID(p), s: s})
		}
	}
	for i := 0; i < len(all); i++ {
		for j := i; j < len(all); j++ {
			if !all[i].s.Value.Intersects(all[j].s.Value) {
				return Result{}, fmt.Errorf("Σ safety: quorum %v (p%d@%d) and %v (p%d@%d) are disjoint",
					all[i].s.Value, all[i].pid, all[i].s.Time, all[j].s.Value, all[j].pid, all[j].s.Time)
			}
		}
	}
	return Result{StabilizationTime: stabilization(g, pr)}, nil
}

type sampleAt[T any] struct {
	pid sim.PID
	s   Sample[T]
}

// CheckAliveList verifies class 𝔈 (Definition 1), restated over the
// eventually-up set (= Correct in crash-stop): in every eventually-up
// process's final alive list, each eventually-up identifier has
// rank ≤ |EventuallyUp|.
func CheckAliveList(g *GroundTruth, pr FinalView[[]ident.ID]) (Result, error) {
	up := g.EventuallyUp()
	for _, p := range up {
		alive, ok := pr.Last(p)
		if !ok {
			return Result{}, fmt.Errorf("𝔈 liveness: eventually-up process %d produced no output", p)
		}
		for _, q := range up {
			r := Rank(g.IDs[q], alive)
			if r == 0 || r > len(up) {
				return Result{}, fmt.Errorf("𝔈 liveness: at process %d, rank(%s) = %d > |EventuallyUp| = %d (alive=%v)",
					p, g.IDs[q], r, len(up), alive)
			}
		}
	}
	return Result{StabilizationTime: stabilization(g, pr)}, nil
}

// CheckAP verifies class AP. Safety: at every sample time T the output is
// ≥ the number of alive processes at T. Liveness: every correct process's
// final output equals |Correct|.
func CheckAP(g *GroundTruth, pr *Probe[int]) (Result, error) {
	for p := 0; p < pr.N(); p++ {
		for _, s := range pr.History(sim.PID(p)) {
			if alive := g.AliveCountAt(s.Time); s.Value < alive {
				return Result{}, fmt.Errorf("AP safety: process %d output %d at t=%d with %d processes alive", p, s.Value, s.Time, alive)
			}
		}
	}
	want := len(g.EventuallyUp())
	for _, p := range g.EventuallyUp() {
		got, ok := pr.Last(p)
		if !ok {
			return Result{}, fmt.Errorf("AP liveness: eventually-up process %d produced no output", p)
		}
		if got != want {
			return Result{}, fmt.Errorf("AP liveness: process %d converged to %d, want |EventuallyUp| = %d", p, got, want)
		}
	}
	return Result{StabilizationTime: stabilization(g, pr)}, nil
}

// CheckAOmega verifies class AΩ: in the final samples, exactly one correct
// process's Boolean is true.
func CheckAOmega(g *GroundTruth, pr FinalView[bool]) (Result, error) {
	leaders := 0
	for _, p := range g.EventuallyUp() {
		v, ok := pr.Last(p)
		if !ok {
			return Result{}, fmt.Errorf("AΩ election: eventually-up process %d produced no output", p)
		}
		if v {
			leaders++
		}
	}
	if leaders != 1 {
		return Result{}, fmt.Errorf("AΩ election: %d eventually-up processes consider themselves leader, want exactly 1", leaders)
	}
	return Result{StabilizationTime: stabilization(g, pr)}, nil
}

// CheckOmega verifies the classical Ω, restated over the eventually-up set
// (= Correct in crash-stop): all eventually-up processes' final leader is
// one common identifier of an eventually-up process.
func CheckOmega(g *GroundTruth, pr FinalView[ident.ID]) (Result, error) {
	up := g.EventuallyUp()
	if len(up) == 0 {
		return Result{}, nil
	}
	first, ok := pr.Last(up[0])
	if !ok {
		return Result{}, fmt.Errorf("Ω election: eventually-up process %d produced no output", up[0])
	}
	for _, p := range up[1:] {
		got, ok := pr.Last(p)
		if !ok || got != first {
			return Result{}, fmt.Errorf("Ω election: process %d has leader %v, process %d has %v", up[0], first, p, got)
		}
	}
	if !g.EventuallyUpIDs().Contains(first) {
		return Result{}, fmt.Errorf("Ω election: leader %s is not an eventually-up process", first)
	}
	return Result{StabilizationTime: stabilization(g, pr)}, nil
}
