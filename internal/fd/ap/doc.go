// Package ap implements the anonymous failure detector class AP of Bonnet
// and Raynal ([5] in the paper): each process outputs an upper bound on the
// number of currently alive processes that eventually becomes, forever, the
// exact number of correct processes.
//
// The paper uses AP as a reduction source (Lemmas 2–3: AP → ◇HP̄ and
// AP → HΣ in anonymous systems) and notes that AP is implementable in
// synchronous anonymous systems but not in most partially synchronous ones.
// This package provides the synchronous implementation: in each lock-step
// step every process broadcasts ALIVE and outputs the number of messages it
// received in that step — a snapshot of the alive population, which is
// always an upper bound on the future alive population and is exact one
// step after the last crash.
package ap
