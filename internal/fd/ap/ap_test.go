package ap

import (
	"slices"
	"testing"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/sim"
)

func runAP(t *testing.T, n int, crashes map[sim.PID]int, seed int64, steps int) (fd.Result, error) {
	t.Helper()
	ids := ident.AnonymousN(n)
	eng := sim.NewSync(sim.SyncConfig{IDs: ids, Seed: seed})
	dets := make([]*Detector, n)
	for i := range dets {
		dets[i] = New()
		eng.AddProcess(dets[i])
	}
	crashPids := make([]sim.PID, 0, len(crashes))
	for p := range crashes {
		crashPids = append(crashPids, p)
	}
	slices.Sort(crashPids)
	crashTimes := make(map[sim.PID]sim.Time)
	for _, p := range crashPids {
		eng.CrashAtStep(p, crashes[p], 0.5)
		crashTimes[p] = sim.Time(crashes[p])
	}
	probe := fd.NewSyncProbe(eng, n, func(p sim.PID) (int, bool) {
		if eng.Crashed(p) || !dets[p].Valid() {
			return 0, false
		}
		return dets[p].AliveCount(), true
	}, func(a, b int) bool { return a == b })
	eng.RunSteps(steps)
	return fd.CheckAP(fd.NewGroundTruth(ids, crashTimes), probe)
}

func TestFailureFree(t *testing.T) {
	if _, err := runAP(t, 5, nil, 1, 8); err != nil {
		t.Fatal(err)
	}
}

func TestConvergesToCorrectCount(t *testing.T) {
	crashes := map[sim.PID]int{1: 2, 3: 5}
	if _, err := runAP(t, 6, crashes, 2, 12); err != nil {
		t.Fatal(err)
	}
}

func TestManySchedules(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		crashes := map[sim.PID]int{
			sim.PID(seed % 5): 2,
			5:                 int(seed%3) + 3,
		}
		if _, err := runAP(t, 6, crashes, seed, 15); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCountIsUpperBoundDuringCascade(t *testing.T) {
	// A crash per step: at no sampled instant may the estimate dip below
	// the live population (CheckAP verifies exactly this safety clause).
	crashes := map[sim.PID]int{0: 2, 1: 3, 2: 4, 3: 5}
	if _, err := runAP(t, 8, crashes, 7, 12); err != nil {
		t.Fatal(err)
	}
}

func TestValidFlag(t *testing.T) {
	d := New()
	if d.Valid() {
		t.Error("detector valid before any step")
	}
	d.StepRecv(nil, []any{Msg{}, Msg{}})
	if !d.Valid() || d.AliveCount() != 2 {
		t.Errorf("AliveCount = %d, valid = %v", d.AliveCount(), d.Valid())
	}
}
