package ap

import (
	"repro/internal/fd"
	"repro/internal/sim"
)

// Msg is the ALIVE heartbeat.
type Msg struct{}

// MsgTag implements sim.Tagger.
func (Msg) MsgTag() string { return "ALIVE" }

// Detector is the per-process synchronous AP instance. It implements
// sim.SyncProcess and fd.AP.
type Detector struct {
	count int
	valid bool
}

var (
	_ sim.SyncProcess = (*Detector)(nil)
	_ fd.AP           = (*Detector)(nil)
)

// New creates a detector.
func New() *Detector { return &Detector{} }

// StepSend implements sim.SyncProcess.
func (d *Detector) StepSend(*sim.SyncEnv) []any { return []any{Msg{}} }

// StepRecv implements sim.SyncProcess: the step's message count is the
// current alive estimate.
func (d *Detector) StepRecv(_ *sim.SyncEnv, received []any) {
	n := 0
	for _, payload := range received {
		if _, ok := payload.(Msg); ok {
			n++
		}
	}
	if n > 0 {
		d.count = n
		d.valid = true
	}
}

// AliveCount implements fd.AP.
func (d *Detector) AliveCount() int { return d.count }

// Valid reports whether at least one step completed (before that the
// output is meaningless; consumers polling at step boundaries never see an
// invalid detector).
func (d *Detector) Valid() bool { return d.valid }
