package fd

import (
	"testing"

	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// Mutation tests: start from a class-valid execution history and apply a
// catalogue of realistic corruptions; every corruption must be rejected by
// the corresponding checker. This guards the guards — a checker that
// silently stopped checking would otherwise green-light everything.

func validHSigmaHistory() (*GroundTruth, [][]Sample[[]QuorumPair], [][]Sample[[]Label]) {
	// 4 processes, ids A A B C, p1 crashes at t=10. Stable behaviour:
	// everyone first holds ("all", {A,A,B,C}), later the correct ones add
	// ("corr", {A,B,C}).
	g := NewGroundTruth(ident.Assignment{"A", "A", "B", "C"}, map[sim.PID]sim.Time{1: 10})
	all := ms("A", "A", "B", "C")
	corr := ms("A", "B", "C")
	labels := [][]Sample[[]Label]{
		hist([]Label{"all"}, []Label{"all", "corr"}),
		hist([]Label{"all"}),
		hist([]Label{"all"}, []Label{"all", "corr"}),
		hist([]Label{"all"}, []Label{"all", "corr"}),
	}
	quora := [][]Sample[[]QuorumPair]{
		hist(
			[]QuorumPair{{Label: "all", M: all}},
			[]QuorumPair{{Label: "all", M: all}, {Label: "corr", M: corr}},
		),
		hist([]QuorumPair{{Label: "all", M: all}}),
		hist(
			[]QuorumPair{{Label: "all", M: all}},
			[]QuorumPair{{Label: "all", M: all}, {Label: "corr", M: corr}},
		),
		hist(
			[]QuorumPair{{Label: "all", M: all}},
			[]QuorumPair{{Label: "all", M: all}, {Label: "corr", M: corr}},
		),
	}
	return g, quora, labels
}

func TestHSigmaMutationCatalogue(t *testing.T) {
	base := func() (*GroundTruth, [][]Sample[[]QuorumPair], [][]Sample[[]Label]) {
		return validHSigmaHistory()
	}

	t.Run("baseline is valid", func(t *testing.T) {
		g, q, l := base()
		if _, err := CheckHSigma(g, NewStaticProbe(q), NewStaticProbe(l)); err != nil {
			t.Fatalf("baseline rejected: %v", err)
		}
	})

	mutations := []struct {
		name   string
		mutate func(q [][]Sample[[]QuorumPair], l [][]Sample[[]Label])
	}{
		{"duplicate label in one sample", func(q [][]Sample[[]QuorumPair], l [][]Sample[[]Label]) {
			last := &q[0][len(q[0])-1]
			last.Value = append(last.Value, QuorumPair{Label: "all", M: ms("A")})
		}},
		{"label set shrinks", func(q [][]Sample[[]QuorumPair], l [][]Sample[[]Label]) {
			l[0] = append(l[0], Sample[[]Label]{Time: 99, Value: []Label{"corr"}})
		}},
		{"quorum pair vanishes", func(q [][]Sample[[]QuorumPair], l [][]Sample[[]Label]) {
			q[2] = append(q[2], Sample[[]QuorumPair]{Time: 99, Value: []QuorumPair{{Label: "corr", M: ms("A", "B", "C")}}})
		}},
		{"quorum multiset grows", func(q [][]Sample[[]QuorumPair], l [][]Sample[[]Label]) {
			q[3] = append(q[3], Sample[[]QuorumPair]{Time: 99, Value: []QuorumPair{
				{Label: "all", M: ms("A", "A", "A", "B", "C")},
				{Label: "corr", M: ms("A", "B", "C")},
			}})
		}},
		{"liveness lost: final quorum demands the crashed homonym", func(q [][]Sample[[]QuorumPair], l [][]Sample[[]Label]) {
			for p := 0; p < 4; p++ {
				if p == 1 {
					continue
				}
				// Rewrite history: the only pair ever held demands both As.
				q[p] = hist([]QuorumPair{{Label: "all", M: ms("A", "A")}})
			}
		}},
		{"safety lost: two disjoint singleton quora", func(q [][]Sample[[]QuorumPair], l [][]Sample[[]Label]) {
			// p2 alone holds label "x"; p3 alone holds "y". Singleton
			// quora over disjoint member sets can be realized disjointly.
			l[2] = append(l[2], Sample[[]Label]{Time: 99, Value: []Label{"all", "corr", "x"}})
			l[3] = append(l[3], Sample[[]Label]{Time: 99, Value: []Label{"all", "corr", "y"}})
			q[2] = append(q[2], Sample[[]QuorumPair]{Time: 100, Value: []QuorumPair{
				{Label: "all", M: ms("A", "A", "B", "C")}, {Label: "corr", M: ms("A", "B", "C")},
				{Label: "x", M: ms("B")},
			}})
			q[3] = append(q[3], Sample[[]QuorumPair]{Time: 100, Value: []QuorumPair{
				{Label: "all", M: ms("A", "A", "B", "C")}, {Label: "corr", M: ms("A", "B", "C")},
				{Label: "y", M: ms("C")},
			}})
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			g, q, l := base()
			m.mutate(q, l)
			if _, err := CheckHSigma(g, NewStaticProbe(q), NewStaticProbe(l)); err == nil {
				t.Error("mutated history accepted")
			}
		})
	}
}

func TestDiamondHPbarMutationCatalogue(t *testing.T) {
	g := NewGroundTruth(ident.Assignment{"A", "A", "B"}, map[sim.PID]sim.Time{0: 10})
	valid := func() [][]Sample[*multiset.Multiset[ident.ID]] {
		return [][]Sample[*multiset.Multiset[ident.ID]]{
			nil,
			hist(ms("A", "A", "B"), ms("A", "B")),
			hist(ms("A", "B")),
		}
	}
	if _, err := CheckDiamondHPbar(g, NewStaticProbe(valid())); err != nil {
		t.Fatalf("baseline rejected: %v", err)
	}

	mutations := []struct {
		name   string
		mutate func(h [][]Sample[*multiset.Multiset[ident.ID]])
	}{
		{"keeps trusting the crashed homonym", func(h [][]Sample[*multiset.Multiset[ident.ID]]) {
			h[1] = hist(ms("A", "A", "B"))
		}},
		{"drops a correct process", func(h [][]Sample[*multiset.Multiset[ident.ID]]) {
			h[2] = append(h[2], Sample[*multiset.Multiset[ident.ID]]{Time: 99, Value: ms("A")})
		}},
		{"wrong multiplicity", func(h [][]Sample[*multiset.Multiset[ident.ID]]) {
			h[1] = append(h[1], Sample[*multiset.Multiset[ident.ID]]{Time: 99, Value: ms("A", "B", "B")})
		}},
		{"silent process", func(h [][]Sample[*multiset.Multiset[ident.ID]]) {
			h[1] = nil
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			h := valid()
			m.mutate(h)
			if _, err := CheckDiamondHPbar(g, NewStaticProbe(h)); err == nil {
				t.Error("mutated history accepted")
			}
		})
	}
}
