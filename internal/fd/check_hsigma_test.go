package fd

import (
	"strings"
	"testing"

	"repro/internal/ident"
	"repro/internal/sim"
)

// The paper's §3.2 worked example: Π = {1,2,3} with id(1)=A, id(2)=A,
// id(3)=B (0-indexed here), labels la ↦ {1,2}, lb ↦ {2,3}, lc ↦ {1,3},
// process 2 faulty, h_quora₁ = {(lb, B)} and h_quora₃ = {(la, AB), (lc, AB)}.
func paperExample() (*GroundTruth, *Probe[[]QuorumPair], *Probe[[]Label]) {
	g := truth3AAB(1)
	labels := NewStaticProbe([][]Sample[[]Label]{
		hist([]Label{"la", "lc"}),
		hist([]Label{"la", "lb"}),
		hist([]Label{"lb", "lc"}),
	})
	quora := NewStaticProbe([][]Sample[[]QuorumPair]{
		hist([]QuorumPair{{Label: "lb", M: ms("B")}}),
		nil, // faulty process output unconstrained; keep empty
		hist([]QuorumPair{
			{Label: "la", M: ms("A", "B")},
			{Label: "lc", M: ms("A", "B")},
		}),
	})
	return g, quora, labels
}

func TestCheckHSigmaPaperExample(t *testing.T) {
	g, quora, labels := paperExample()
	if _, err := CheckHSigma(g, quora, labels); err != nil {
		t.Fatalf("the paper's own example must satisfy HΣ: %v", err)
	}
}

func TestCheckHSigmaLivenessFailure(t *testing.T) {
	g := truth3AAB(1)
	labels := NewStaticProbe([][]Sample[[]Label]{
		hist([]Label{"la"}),
		hist([]Label{"la"}),
		hist([]Label{"la"}),
	})
	// (la, {A,A,B}) requires all three members correct, but p1 crashed:
	// I(S(la) ∩ Correct) = {A, B} ⊉ {A,A,B}.
	quora := NewStaticProbe([][]Sample[[]QuorumPair]{
		hist([]QuorumPair{{Label: "la", M: ms("A", "A", "B")}}),
		nil,
		hist([]QuorumPair{{Label: "la", M: ms("A", "A", "B")}}),
	})
	if _, err := CheckHSigma(g, quora, labels); err == nil || !strings.Contains(err.Error(), "liveness") {
		t.Errorf("err = %v, want liveness failure", err)
	}
}

func TestCheckHSigmaSafetyFailure(t *testing.T) {
	// Two homonymous correct processes: label x held only by p0, label y
	// only by p1. Pairs (x, {A}) and (y, {A}) admit the disjoint
	// realizations {p0} and {p1}.
	g := NewGroundTruth(ident.Assignment{"A", "A"}, nil)
	labels := NewStaticProbe([][]Sample[[]Label]{
		hist([]Label{"x"}),
		hist([]Label{"y"}),
	})
	quora := NewStaticProbe([][]Sample[[]QuorumPair]{
		hist([]QuorumPair{{Label: "x", M: ms("A")}}),
		hist([]QuorumPair{{Label: "y", M: ms("A")}}),
	})
	if _, err := CheckHSigma(g, quora, labels); err == nil || !strings.Contains(err.Error(), "safety") {
		t.Errorf("err = %v, want safety failure", err)
	}
}

func TestCheckHSigmaSafetyVacuousWhenUnrealizable(t *testing.T) {
	// A pair demanding an identity its member set cannot supply imposes no
	// safety obligation (no realization exists) — but it must not be the
	// only pair of a correct process, or liveness fails. Give each process
	// a good pair plus an unrealizable one.
	g := NewGroundTruth(ident.Assignment{"A", "B"}, nil)
	labels := NewStaticProbe([][]Sample[[]Label]{
		hist([]Label{"all"}),
		hist([]Label{"all"}),
	})
	quora := NewStaticProbe([][]Sample[[]QuorumPair]{
		hist([]QuorumPair{
			{Label: "all", M: ms("A", "B")},
			{Label: "ghost", M: ms("Z")}, // S(ghost) = ∅: unrealizable
		}),
		hist([]QuorumPair{{Label: "all", M: ms("A", "B")}}),
	})
	if _, err := CheckHSigma(g, quora, labels); err != nil {
		t.Errorf("unrealizable pair should be vacuous for safety: %v", err)
	}
}

func TestCheckHSigmaValidity(t *testing.T) {
	g := NewGroundTruth(ident.Assignment{"A"}, nil)
	labels := NewStaticProbe([][]Sample[[]Label]{hist([]Label{"x"})})
	quora := NewStaticProbe([][]Sample[[]QuorumPair]{
		hist([]QuorumPair{
			{Label: "x", M: ms("A")},
			{Label: "x", M: ms("A", "A")},
		}),
	})
	if _, err := CheckHSigma(g, quora, labels); err == nil || !strings.Contains(err.Error(), "validity") {
		t.Errorf("err = %v, want validity failure", err)
	}
}

func TestCheckHSigmaMonotonicity(t *testing.T) {
	g := NewGroundTruth(ident.Assignment{"A"}, nil)

	t.Run("labels shrink", func(t *testing.T) {
		labels := NewStaticProbe([][]Sample[[]Label]{
			hist([]Label{"x", "y"}, []Label{"x"}),
		})
		quora := NewStaticProbe([][]Sample[[]QuorumPair]{
			hist([]QuorumPair{{Label: "x", M: ms("A")}}),
		})
		if _, err := CheckHSigma(g, quora, labels); err == nil || !strings.Contains(err.Error(), "monotonicity") {
			t.Errorf("err = %v, want monotonicity failure", err)
		}
	})

	t.Run("quorum pair dropped", func(t *testing.T) {
		labels := NewStaticProbe([][]Sample[[]Label]{hist([]Label{"x"})})
		quora := NewStaticProbe([][]Sample[[]QuorumPair]{
			hist(
				[]QuorumPair{{Label: "x", M: ms("A")}},
				[]QuorumPair{},
			),
		})
		if _, err := CheckHSigma(g, quora, labels); err == nil || !strings.Contains(err.Error(), "monotonicity") {
			t.Errorf("err = %v, want monotonicity failure", err)
		}
	})

	t.Run("quorum multiset may only shrink", func(t *testing.T) {
		// Shrinking (x, {A,B}) to (x, {B}) is legal monotone behaviour and
		// stays safe: every realization of either pair contains process 1
		// (the only B).
		g2 := NewGroundTruth(ident.Assignment{"A", "B"}, nil)
		labels2 := NewStaticProbe([][]Sample[[]Label]{hist([]Label{"x"}), hist([]Label{"x"})})
		quora2 := NewStaticProbe([][]Sample[[]QuorumPair]{
			hist(
				[]QuorumPair{{Label: "x", M: ms("A", "B")}},
				[]QuorumPair{{Label: "x", M: ms("B")}},
			),
			hist([]QuorumPair{{Label: "x", M: ms("B")}}),
		})
		if _, err := CheckHSigma(g2, quora2, labels2); err != nil {
			t.Errorf("shrinking multiset is monotone per the class: %v", err)
		}
	})
}

func TestDisjointRealizable(t *testing.T) {
	ids := ident.Assignment{"A", "A", "B", "B"}
	tests := []struct {
		name   string
		m1     []ident.ID
		s1     []sim.PID
		m2     []ident.ID
		s2     []sim.PID
		wantDj bool
	}{
		{"shared single supplier", []ident.ID{"B"}, []sim.PID{2}, []ident.ID{"B"}, []sim.PID{2}, false},
		{"separate suppliers", []ident.ID{"B"}, []sim.PID{2}, []ident.ID{"B"}, []sim.PID{3}, true},
		{"shared pool too small", []ident.ID{"A", "A"}, []sim.PID{0, 1}, []ident.ID{"A"}, []sim.PID{0, 1}, false},
		{"overlap big enough", []ident.ID{"A"}, []sim.PID{0, 1}, []ident.ID{"A"}, []sim.PID{0, 1}, true},
		{"cross identity independent", []ident.ID{"A", "B"}, []sim.PID{0, 2}, []ident.ID{"A", "B"}, []sim.PID{1, 3}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := disjointRealizable(ids, ms(tt.m1...), tt.s1, ms(tt.m2...), tt.s2)
			if got != tt.wantDj {
				t.Errorf("disjointRealizable = %v, want %v", got, tt.wantDj)
			}
		})
	}
}

func TestCheckASigma(t *testing.T) {
	g := NewGroundTruth(ident.AnonymousN(3), map[sim.PID]sim.Time{2: 5})
	good := NewStaticProbe([][]Sample[[]APair]{
		hist([]APair{{Label: "all", Y: 3}}, []APair{{Label: "all", Y: 3}, {Label: "c", Y: 2}}),
		hist([]APair{{Label: "all", Y: 3}, {Label: "c", Y: 2}}),
		nil,
	})
	// Membership: "all" held by p0, p1; "c" by p0, p1.
	if _, err := CheckASigma(g, good); err != nil {
		t.Fatalf("good AΣ history rejected: %v", err)
	}

	// Safety violation: (x,1) at p0 and (y,1) at p1 with disjoint members.
	bad := NewStaticProbe([][]Sample[[]APair]{
		hist([]APair{{Label: "x", Y: 1}}),
		hist([]APair{{Label: "y", Y: 1}}),
		nil,
	})
	if _, err := CheckASigma(g, bad); err == nil || !strings.Contains(err.Error(), "safety") {
		t.Errorf("err = %v, want safety failure", err)
	}

	// Monotonicity: y may only decrease.
	badMono := NewStaticProbe([][]Sample[[]APair]{
		hist([]APair{{Label: "all", Y: 2}}, []APair{{Label: "all", Y: 3}}),
		hist([]APair{{Label: "all", Y: 2}}),
		nil,
	})
	if _, err := CheckASigma(g, badMono); err == nil || !strings.Contains(err.Error(), "monotonicity") {
		t.Errorf("err = %v, want monotonicity failure", err)
	}
}
