// Package hsigma implements the paper's Figure 7: a failure detector of
// class HΣ in the synchronous homonymous system HSS[∅], without initial
// knowledge of the membership (Theorem 6).
//
// In every synchronous step each process broadcasts IDENT(id(p)), waits for
// the step's messages, and gathers the received identifiers into a multiset
// mset. The multiset itself serves as the label of a new quorum pair
// (mset, mset) added to h_quora, and mset is added to h_labels. One step
// after the last crash, every correct process observes exactly I(Correct),
// which yields the liveness quorum; safety follows because any two gathered
// multisets were complete snapshots that both contain every correct
// process.
package hsigma
