package hsigma

import (
	"testing"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/sim"
)

type syncCrash struct {
	pid         sim.PID
	step        int
	deliverProb float64
}

// runHSigma executes Figure 7 and verifies all four HΣ properties.
func runHSigma(t *testing.T, ids ident.Assignment, crashes []syncCrash, seed int64, steps int) (fd.Result, error) {
	t.Helper()
	eng := sim.NewSync(sim.SyncConfig{IDs: ids, Seed: seed})
	dets := make([]*Detector, ids.N())
	for i := range dets {
		dets[i] = New()
		eng.AddProcess(dets[i])
	}
	crashTimes := make(map[sim.PID]sim.Time)
	for _, c := range crashes {
		eng.CrashAtStep(c.pid, c.step, c.deliverProb)
		crashTimes[c.pid] = sim.Time(c.step)
	}
	quora := fd.NewSyncProbe(eng, ids.N(), func(p sim.PID) ([]fd.QuorumPair, bool) {
		if eng.Crashed(p) {
			return nil, false
		}
		return dets[p].Quora(), true
	}, quoraEqual)
	labels := fd.NewSyncProbe(eng, ids.N(), func(p sim.PID) ([]fd.Label, bool) {
		if eng.Crashed(p) {
			return nil, false
		}
		return dets[p].Labels(), true
	}, fd.LabelsEqual)
	eng.RunSteps(steps)
	truth := fd.NewGroundTruth(ids, crashTimes)
	return fd.CheckHSigma(truth, quora, labels)
}

func quoraEqual(a, b []fd.QuorumPair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Label != b[i].Label || !a[i].M.Equal(b[i].M) {
			return false
		}
	}
	return true
}

func TestFailureFree(t *testing.T) {
	if _, err := runHSigma(t, ident.Balanced(5, 2), nil, 1, 10); err != nil {
		t.Fatal(err)
	}
}

func TestWithCleanCrashes(t *testing.T) {
	crashes := []syncCrash{{pid: 1, step: 3, deliverProb: 1}, {pid: 4, step: 6, deliverProb: 1}}
	if _, err := runHSigma(t, ident.Balanced(6, 3), crashes, 2, 15); err != nil {
		t.Fatal(err)
	}
}

func TestWithPartialBroadcastCrashes(t *testing.T) {
	// Crashing mid-broadcast makes different survivors gather different
	// multisets in the crash step — the interesting case for HΣ safety.
	for seed := int64(0); seed < 10; seed++ {
		crashes := []syncCrash{
			{pid: 0, step: 2, deliverProb: 0.5},
			{pid: 3, step: 4, deliverProb: 0.3},
		}
		if _, err := runHSigma(t, ident.Balanced(7, 3), crashes, seed, 15); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestAnonymousExtreme(t *testing.T) {
	crashes := []syncCrash{{pid: 2, step: 3, deliverProb: 0.5}}
	if _, err := runHSigma(t, ident.AnonymousN(5), crashes, 3, 12); err != nil {
		t.Fatal(err)
	}
}

func TestUniqueExtreme(t *testing.T) {
	crashes := []syncCrash{{pid: 2, step: 3, deliverProb: 0.5}}
	if _, err := runHSigma(t, ident.Unique(5), crashes, 4, 12); err != nil {
		t.Fatal(err)
	}
}

func TestLivenessQuorumAppearsOneStepAfterLastCrash(t *testing.T) {
	// Theorem 6's liveness argument: from the step after the last crash,
	// every correct process gathers exactly I(Correct).
	ids := ident.Balanced(5, 2)
	eng := sim.NewSync(sim.SyncConfig{IDs: ids, Seed: 5})
	dets := make([]*Detector, ids.N())
	for i := range dets {
		dets[i] = New()
		eng.AddProcess(dets[i])
	}
	eng.CrashAtStep(1, 4, 0.5)
	eng.RunSteps(6)
	truth := fd.NewGroundTruth(ids, map[sim.PID]sim.Time{1: 4})
	want := truth.CorrectIDs()
	for _, p := range truth.Correct() {
		found := false
		for _, pair := range dets[p].Quora() {
			if pair.M.Equal(want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("process %d lacks the (I(Correct), I(Correct)) pair after last crash", p)
		}
	}
}

func TestQuoraReturnsDefensiveCopies(t *testing.T) {
	d := New()
	d.StepRecv(nil, []any{Msg{ID: "a"}, Msg{ID: "b"}})
	q := d.Quora()
	q[0].M.Add("z")
	if d.Quora()[0].M.Contains("z") {
		t.Error("Quora must return cloned multisets")
	}
}

func TestEmptyStepIgnored(t *testing.T) {
	d := New()
	d.StepRecv(nil, nil)
	if len(d.Quora()) != 0 || len(d.Labels()) != 0 {
		t.Error("empty receive set must not create an empty quorum")
	}
}
