package hsigma

import (
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// Msg is the IDENT(id) message of Figure 7.
type Msg struct {
	ID ident.ID
}

// MsgTag implements sim.Tagger.
func (Msg) MsgTag() string { return "IDENT" }

// Detector is the per-process Figure 7 instance for the synchronous
// engine. It implements sim.SyncProcess and fd.HSigma.
type Detector struct {
	quora  []fd.QuorumPair
	known  map[fd.Label]bool
	labels []fd.Label
}

var (
	_ sim.SyncProcess = (*Detector)(nil)
	_ fd.HSigma       = (*Detector)(nil)
)

// New creates a detector.
func New() *Detector {
	return &Detector{known: make(map[fd.Label]bool)}
}

// StepSend implements sim.SyncProcess: broadcast IDENT(id(p)).
func (d *Detector) StepSend(env *sim.SyncEnv) []any {
	return []any{Msg{ID: env.ID()}}
}

// StepRecv implements sim.SyncProcess: gather the step's identifiers and
// extend h_quora and h_labels.
func (d *Detector) StepRecv(_ *sim.SyncEnv, received []any) {
	mset := multiset.New[ident.ID]()
	for _, payload := range received {
		if m, ok := payload.(Msg); ok {
			mset.Add(m.ID)
		}
	}
	if mset.Empty() {
		return
	}
	label := fd.Label(mset.Key())
	if d.known[label] {
		return // set union: (mset, mset) already present
	}
	d.known[label] = true
	d.quora = append(d.quora, fd.QuorumPair{Label: label, M: mset})
	d.labels = append(d.labels, label)
}

// Quora implements fd.HSigma.
func (d *Detector) Quora() []fd.QuorumPair {
	out := make([]fd.QuorumPair, len(d.quora))
	for i, p := range d.quora {
		out[i] = fd.QuorumPair{Label: p.Label, M: p.M.Clone()}
	}
	return out
}

// Labels implements fd.HSigma.
func (d *Detector) Labels() []fd.Label {
	out := make([]fd.Label, len(d.labels))
	copy(out, d.labels)
	return out
}
