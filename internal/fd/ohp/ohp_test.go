package ohp

import (
	"testing"

	"math/rand"
	"repro/internal/fd"
	"repro/internal/ident"

	"repro/internal/multiset"
	"repro/internal/sim"
	"repro/internal/trace"
)

type run struct {
	eng   *sim.Engine
	dets  []*Detector
	truth *fd.GroundTruth
	tr    *fd.Probe[*multiset.Multiset[ident.ID]]
	ld    *fd.Probe[fd.LeaderInfo]
}

func setup(ids ident.Assignment, net sim.Model, crashes map[sim.PID]sim.Time, seed int64) *run {
	eng := sim.New(sim.Config{IDs: ids, Net: net, Seed: seed})
	dets := make([]*Detector, ids.N())
	for i := range dets {
		dets[i] = New()
		eng.AddProcess(dets[i])
	}
	eng.CrashSchedule(crashes)
	tr := fd.NewProbe(eng, ids.N(), func(p sim.PID) (*multiset.Multiset[ident.ID], bool) {
		if eng.Crashed(p) {
			return nil, false
		}
		return dets[p].Trusted(), true
	}, func(a, b *multiset.Multiset[ident.ID]) bool { return a.Equal(b) })
	ld := fd.NewProbe(eng, ids.N(), func(p sim.PID) (fd.LeaderInfo, bool) {
		if eng.Crashed(p) {
			return fd.LeaderInfo{}, false
		}
		return dets[p].Leader()
	}, func(a, b fd.LeaderInfo) bool { return a == b })
	return &run{eng: eng, dets: dets, truth: fd.NewGroundTruth(ids, crashes), tr: tr, ld: ld}
}

func (r *run) check(t *testing.T, horizon sim.Time) (fd.Result, fd.Result) {
	t.Helper()
	r.eng.Run(horizon)
	resT, err := fd.CheckDiamondHPbar(r.truth, r.tr)
	if err != nil {
		t.Fatalf("◇HP̄: %v", err)
	}
	resL, err := fd.CheckHOmega(r.truth, r.ld)
	if err != nil {
		t.Fatalf("HΩ: %v", err)
	}
	return resT, resL
}

func TestFailureFreePartialSync(t *testing.T) {
	r := setup(ident.Balanced(4, 2), sim.PartialSync{GST: 50, Delta: 3, PreLoss: 0.5}, nil, 1)
	r.check(t, 3000)
}

func TestCrashesBeforeGST(t *testing.T) {
	crashes := map[sim.PID]sim.Time{1: 20, 4: 40}
	r := setup(ident.Balanced(5, 2), sim.PartialSync{GST: 60, Delta: 4, PreLoss: 0.5}, crashes, 2)
	r.check(t, 4000)
}

func TestCrashesAfterGST(t *testing.T) {
	crashes := map[sim.PID]sim.Time{0: 200}
	r := setup(ident.Balanced(5, 3), sim.PartialSync{GST: 50, Delta: 3, PreLoss: 0.5}, crashes, 3)
	r.check(t, 4000)
}

func TestLeaderGroupCrash(t *testing.T) {
	// All holders of the smallest identifier crash; HΩ must elect the next
	// identifier with the right multiplicity.
	ids := ident.Assignment{"a", "a", "b", "b", "b"}
	crashes := map[sim.PID]sim.Time{0: 100, 1: 150}
	r := setup(ids, sim.PartialSync{GST: 40, Delta: 3, PreLoss: 0.5}, crashes, 4)
	_, resL := r.check(t, 4000)
	li, _ := r.ld.Last(2)
	if li.ID != "b" || li.Multiplicity != 3 {
		t.Errorf("leader = %v, want (b, 3)", li)
	}
	if resL.StabilizationTime < 150 {
		t.Errorf("leader stabilized at %d, before the last crash", resL.StabilizationTime)
	}
}

func TestAnonymousExtreme(t *testing.T) {
	// ℓ=1: ◇HP̄ reduces to counting alive processes (cf. AP).
	crashes := map[sim.PID]sim.Time{3: 30}
	r := setup(ident.AnonymousN(4), sim.PartialSync{GST: 50, Delta: 3, PreLoss: 0.5}, crashes, 5)
	r.check(t, 3000)
	got, _ := r.tr.Last(0)
	if got.Len() != 3 || got.Count(ident.Anonymous) != 3 {
		t.Errorf("trusted = %v, want {⊥,⊥,⊥}", got)
	}
}

func TestUniqueExtreme(t *testing.T) {
	crashes := map[sim.PID]sim.Time{2: 30}
	r := setup(ident.Unique(5), sim.PartialSync{GST: 50, Delta: 3, PreLoss: 0.5}, crashes, 6)
	r.check(t, 3000)
}

func TestManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for seed := int64(0); seed < 6; seed++ {
		crashes := map[sim.PID]sim.Time{sim.PID(seed % 5): 25 + sim.Time(seed)*7}
		r := setup(ident.Balanced(5, 2), sim.PartialSync{GST: 30 + sim.Time(seed)*11, Delta: 2 + sim.Time(seed%3), PreLoss: 0.5}, crashes, seed)
		r.check(t, 6000)
	}
}

func TestTimeoutAdapts(t *testing.T) {
	// With δ far above the initial timeout, the adaptive rule must grow
	// timeouts well beyond their initial value of 1.
	r := setup(ident.Unique(3), sim.PartialSync{GST: 10, Delta: 12, PreLoss: 0.5}, nil, 7)
	r.check(t, 8000)
	for i, d := range r.dets {
		if d.Timeout() <= 2 {
			t.Errorf("process %d timeout = %d, expected adaptation above 2", i, d.Timeout())
		}
	}
}

func TestMembershipDiscovered(t *testing.T) {
	r := setup(ident.Balanced(6, 3), sim.PartialSync{GST: 40, Delta: 3, PreLoss: 0.5}, nil, 8)
	r.check(t, 3000)
	for i, d := range r.dets {
		if d.MembershipSize() != 3 {
			t.Errorf("process %d discovered %d identifiers, want 3", i, d.MembershipSize())
		}
	}
}

func TestStabilizationAfterGSTAndCrashes(t *testing.T) {
	crashes := map[sim.PID]sim.Time{1: 80}
	r := setup(ident.Balanced(4, 2), sim.PartialSync{GST: 100, Delta: 4, PreLoss: 0.5}, crashes, 9)
	resT, _ := r.check(t, 5000)
	if resT.StabilizationTime < 80 {
		t.Errorf("◇HP̄ stabilized at %d, before the crash at 80", resT.StabilizationTime)
	}
}

func TestLeaderBeforeFirstRoundNotOK(t *testing.T) {
	d := New()
	if _, ok := d.Leader(); ok {
		t.Error("Leader should not report ok before the first round closes")
	}
}

func TestOneReplyPerIdentifierPerRoundRange(t *testing.T) {
	// Two homonymous pollers: a responder must answer their shared
	// identifier once per round range, not once per process.
	rec := trace.NewRecorder()
	rec.KeepEvents = false
	ids := ident.Assignment{"x", "x", "y"}
	eng := sim.New(sim.Config{IDs: ids, Net: sim.Timely{Delta: 1}, Seed: 10, Recorder: rec})
	dets := make([]*Detector, 3)
	for i := range dets {
		dets[i] = New()
		eng.AddProcess(dets[i])
	}
	eng.Run(200)
	polls := rec.Stats().ByTag["POLLING"]
	replies := rec.Stats().ByTag["P_REPLY"]
	if replies > polls*3 {
		t.Errorf("replies %d exceed pollers×responders bound (%d POLLINGs)", replies, polls)
	}
	if replies == 0 || polls == 0 {
		t.Fatalf("no traffic: polls=%d replies=%d", polls, replies)
	}
}

// TestReplyRangesTile: the P_REPLY intervals one responder emits for one
// polled identity must tile 1..latest contiguously — no gaps (a round
// would never be answerable) and no overlaps (a round would be counted
// twice). This is the invariant behind Lemma 5's "for each round y > x
// there is some covering reply".
func TestReplyRangesTile(t *testing.T) {
	d := New()
	env := &scriptEnv{id: "me"}
	d.Init(env)
	env.sent = nil // discard the initial POLLING

	rounds := []int{1, 3, 2, 7, 7, 4, 12}
	for _, r := range rounds {
		d.onPolling(Polling{Round: r, ID: "them"})
	}
	var replies []Reply
	for _, m := range env.sent {
		if rep, ok := m.(Reply); ok && rep.Dest == "them" {
			replies = append(replies, rep)
		}
	}
	next := 1
	for i, rep := range replies {
		if rep.From != next {
			t.Fatalf("reply %d covers [%d,%d], expected to start at %d (gap or overlap)", i, rep.From, rep.To, next)
		}
		if rep.To < rep.From {
			t.Fatalf("reply %d has inverted range [%d,%d]", i, rep.From, rep.To)
		}
		next = rep.To + 1
	}
	if next != 13 {
		t.Fatalf("ranges cover 1..%d, want 1..12", next-1)
	}
}

// scriptEnv is a minimal Environment for white-box driving of a detector.
type scriptEnv struct {
	id   ident.ID
	now  sim.Time
	sent []any
	rng  *rand.Rand
}

func (e *scriptEnv) ID() ident.ID   { return e.id }
func (e *scriptEnv) N() (int, bool) { return 0, false }
func (e *scriptEnv) Now() sim.Time  { return e.now }
func (e *scriptEnv) Rand() *rand.Rand {
	if e.rng == nil {
		e.rng = rand.New(rand.NewSource(1))
	}
	return e.rng
}
func (e *scriptEnv) Broadcast(payload any)                 { e.sent = append(e.sent, payload) }
func (e *scriptEnv) SetTimer(d sim.Time, tag int)          {}
func (e *scriptEnv) Note(k trace.Kind, tag, detail string) {}
func (e *scriptEnv) PID() sim.PID                          { return 0 }

func TestFixedTimeoutVariant(t *testing.T) {
	d := NewFixedTimeout(7)
	if d.Timeout() != 7 {
		t.Errorf("Timeout = %d, want 7", d.Timeout())
	}
	if d2 := NewFixedTimeout(0); d2.Timeout() != 1 {
		t.Errorf("Timeout = %d, want clamped 1", d2.Timeout())
	}
	// The ablated detector must not adapt: feed an outdated reply.
	env := &scriptEnv{id: "me"}
	d.Init(env)
	d.OnTimer(0) // round 1 -> 2; a From=1 reply is now outdated
	d.onReply(Reply{From: 1, To: 1, Dest: "me", Sender: "x"})
	if d.Timeout() != 7 {
		t.Errorf("fixed timeout adapted to %d", d.Timeout())
	}
	// The paper's detector does adapt in the same situation.
	a := New()
	a.Init(&scriptEnv{id: "me"})
	a.OnTimer(0)
	a.onReply(Reply{From: 1, To: 1, Dest: "me", Sender: "x"})
	if a.Timeout() != 2 {
		t.Errorf("adaptive timeout = %d, want 2", a.Timeout())
	}
}
