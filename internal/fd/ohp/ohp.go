package ohp

import (
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// Polling is the (POLLING, r, id) message.
type Polling struct {
	Round int
	ID    ident.ID
}

// MsgTag implements sim.Tagger.
func (Polling) MsgTag() string { return "POLLING" }

// Reply is the (P_REPLY, r, r', dest, sender) message: it answers all
// POLLING rounds r..r' of identifier Dest; Sender is the responder's
// identifier.
type Reply struct {
	From, To int // covered round interval [From, To]
	Dest     ident.ID
	Sender   ident.ID
}

// MsgTag implements sim.Tagger.
func (Reply) MsgTag() string { return "P_REPLY" }

// Detector is the per-process Figure 6 instance. It implements
// sim.Process, sim.Recoverer, fd.DiamondHPbar and fd.HOmega.
type Detector struct {
	env     sim.Environment
	round   int
	timeout sim.Time
	trusted *multiset.Multiset[ident.ID]
	hasOut  bool

	// epoch is carried as the round timer's tag. An outage can strand a
	// pre-crash timer that fires only after recovery; bumping the epoch on
	// recovery makes such stale timers recognizable, so the restarted
	// polling loop is the only live timer chain (never two in parallel).
	epoch int
	// resync, set on recovery, allows one round fast-forward: a homonym
	// that kept polling during our outage has moved the responders'
	// per-identifier reply cursor past our round, and rounds below it can
	// never gather a full reply set again.
	resync bool

	// leaderFor/leader memoize the HΩ extraction for the current trusted
	// value (see Leader).
	leaderFor *multiset.Multiset[ident.ID]
	leader    fd.LeaderInfo

	mship   map[ident.ID]bool
	latestR map[ident.ID]int

	// pending holds received replies addressed to id(p) whose interval can
	// still cover the current or a future round.
	pending []Reply

	// adapt enables the timeout-adaptation rule of Lines 33–34. It is on
	// in New; NewFixedTimeout disables it for the ablation experiment that
	// shows why the rule is necessary (a fixed timeout below 2δ+γ keeps
	// closing rounds before replies arrive, so h_trusted flaps forever).
	adapt bool
}

var (
	_ sim.Process     = (*Detector)(nil)
	_ sim.Recoverer   = (*Detector)(nil)
	_ fd.DiamondHPbar = (*Detector)(nil)
	_ fd.HOmega       = (*Detector)(nil)
)

// New creates a detector.
func New() *Detector {
	return &Detector{
		round:   1,
		timeout: 1,
		adapt:   true,
		trusted: multiset.New[ident.ID](),
		mship:   make(map[ident.ID]bool),
		latestR: make(map[ident.ID]int),
	}
}

// NewFixedTimeout creates the ABLATED detector whose timeout never adapts
// (Lines 33–34 removed). It is NOT a class-◇HP̄ implementation in HPS —
// the ablation experiment (E16) demonstrates exactly that — but converges
// when the fixed timeout happens to exceed the (unknown!) 2δ+γ bound,
// illustrating why adaptivity, not magic constants, is the right design.
func NewFixedTimeout(timeout sim.Time) *Detector {
	d := New()
	d.adapt = false
	if timeout >= 1 {
		d.timeout = timeout
	}
	return d
}

// Init implements sim.Process: start round 1.
func (d *Detector) Init(env sim.Environment) {
	d.env = env
	env.Broadcast(sim.Intern(env, Polling{Round: d.round, ID: env.ID()}))
	env.SetTimer(d.timeout, d.epoch)
}

// OnRecover implements sim.Recoverer: restart the polling loop after an
// outage. The round counter keeps advancing (peers answer each identifier
// round at most once, so reusing a pre-crash round number would lose
// replies), and the timer epoch is bumped so a timer stranded across the
// outage cannot double the polling rate.
func (d *Detector) OnRecover() {
	d.epoch++
	d.round++
	d.resync = true
	d.pending = d.pending[:0]
	d.env.Broadcast(sim.Intern(d.env, Polling{Round: d.round, ID: d.env.ID()}))
	d.env.SetTimer(d.timeout, d.epoch)
}

// OnTimer implements sim.Process: close the current round (gather
// h_trusted), then open the next one. When the gathered multiset equals
// the previous output the old value is kept, so h_trusted is
// pointer-stable across unchanged rounds and probes can compare samples
// with a pointer check.
func (d *Detector) OnTimer(tag int) {
	if tag != d.epoch {
		return // stale pre-outage timer
	}
	tmp := multiset.New[ident.ID]()
	for _, rep := range d.pending {
		if rep.From <= d.round && d.round <= rep.To {
			tmp.Add(rep.Sender)
		}
	}
	if !tmp.Equal(d.trusted) {
		d.trusted = tmp
	}
	d.hasOut = true
	d.round++

	// Prune replies that can no longer cover any round >= d.round.
	kept := d.pending[:0]
	for _, rep := range d.pending {
		if rep.To >= d.round {
			kept = append(kept, rep)
		}
	}
	d.pending = kept

	d.env.Broadcast(sim.Intern(d.env, Polling{Round: d.round, ID: d.env.ID()}))
	d.env.SetTimer(d.timeout, d.epoch)
}

// OnMessage implements sim.Process (Task T2 and timeout adaptation).
func (d *Detector) OnMessage(payload any) {
	switch m := payload.(type) {
	case Polling:
		d.onPolling(m)
	case Reply:
		d.onReply(m)
	}
}

func (d *Detector) onPolling(m Polling) {
	if !d.mship[m.ID] {
		d.mship[m.ID] = true
		d.latestR[m.ID] = 0
	}
	if d.latestR[m.ID] < m.Round {
		// Replies are NOT interned: their covered interval makes most
		// values unique, so the arena would retain entries it rarely hits
		// (Polling repeats across homonyms and is interned instead).
		d.env.Broadcast(Reply{
			From:   d.latestR[m.ID] + 1,
			To:     m.Round,
			Dest:   m.ID,
			Sender: d.env.ID(),
		})
		d.latestR[m.ID] = m.Round
	}
}

func (d *Detector) onReply(m Reply) {
	if m.Dest != d.env.ID() {
		return
	}
	if m.From < d.round && d.adapt {
		// Outdated reply: the round it answers already closed, so the
		// timeout was too short (Lines 33–34).
		d.timeout++
	}
	if m.To >= d.round {
		if d.resync && m.From > d.round {
			// Post-outage catch-up: a faster homonym polled past us while
			// we were down, so the responders answer our identifier only
			// from round m.From on — rounds below it can never gather a
			// full reply set. Jump once to the covered interval.
			d.round = m.From
			d.resync = false
		}
		d.pending = append(d.pending, m)
	}
}

// Trusted implements fd.DiamondHPbar: the current h_trustedₚ multiset.
func (d *Detector) Trusted() *multiset.Multiset[ident.ID] {
	return d.trusted.Clone()
}

// TrustedView returns the live h_trustedₚ multiset without copying. It is
// replaced wholesale (never mutated in place) when the output changes, so
// view probes may retain it as an immutable snapshot; callers must not
// mutate it.
func (d *Detector) TrustedView() *multiset.Multiset[ident.ID] {
	return d.trusted
}

// Leader implements fd.HOmega via Corollary 2: the smallest identifier of
// h_trustedₚ with its multiplicity. ok is false until the first round
// closed or while h_trustedₚ is empty. The election is memoized per
// h_trusted value, which OnTimer keeps pointer-stable across unchanged
// rounds.
func (d *Detector) Leader() (fd.LeaderInfo, bool) {
	if !d.hasOut {
		return fd.LeaderInfo{}, false
	}
	if d.leaderFor != d.trusted {
		id, ok := d.trusted.Min()
		if !ok {
			return fd.LeaderInfo{}, false
		}
		d.leaderFor = d.trusted
		d.leader = fd.LeaderInfo{ID: id, Multiplicity: d.trusted.Count(id)}
	}
	return d.leader, true
}

// Round returns the current round number (experiments observability).
func (d *Detector) Round() int { return d.round }

// Timeout returns the adapted timeout (experiments observability).
func (d *Detector) Timeout() sim.Time { return d.timeout }

// MembershipSize returns |mshipₚ|, the number of identifiers learned so
// far — how much membership knowledge polling has recovered.
func (d *Detector) MembershipSize() int { return len(d.mship) }
