// Package ohp implements the paper's Figure 6: a failure detector of class
// ◇HP̄ in the partially synchronous homonymous system HPS[∅] (processes
// partially synchronous, links eventually timely), without initial
// knowledge of the membership (Theorem 5). With the trivial extension of
// Corollary 2 / Observation 1 the same detector also provides class HΩ at
// no additional communication cost.
//
// The algorithm is polling-based and proceeds in locally-paced rounds:
//
//   - Task T1: in round r, broadcast (POLLING, r, id(p)), wait timeoutₚ,
//     then gather into h_trustedₚ one identifier instance per
//     (P_REPLY, ρ, ρ′, id(p), id(q)) received with ρ ≤ r ≤ ρ′.
//   - Task T2: upon (POLLING, r_q, id_q), reply once per identifier with a
//     (P_REPLY, latest+1, r_q, id_q, id(p)) covering all rounds not yet
//     answered for identifier id_q; track latest_r[id_q]. Replies are
//     broadcast, so all homonyms of id_q benefit from one reply.
//   - Adaptation: receiving a P_REPLY addressed to id(p) for an
//     already-finished round (ρ < rₚ) reveals the timeout is too short and
//     increments it. After GST the timeout stops growing (Lemma 5) and
//     h_trustedₚ equals I(Correct) forever (Theorem 5).
//
// Because replies are addressed to identifiers rather than processes, the
// multiplicity of id(q) gathered in a round equals the number of distinct
// responding processes carrying id(q) — which is how the output converges
// to the multiset I(Correct) rather than a set.
package ohp
