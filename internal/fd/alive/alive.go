package alive

import (
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/sim"
)

// DefaultPollInterval is the re-broadcast period of the ALIVE task.
const DefaultPollInterval sim.Time = 5

// Msg is the ALIVE(id) message of Figure 3.
type Msg struct {
	ID ident.ID
}

// MsgTag implements sim.Tagger.
func (Msg) MsgTag() string { return "ALIVE" }

// Detector is the per-process Figure 3 instance. It implements
// sim.Process and fd.AliveList.
type Detector struct {
	env   sim.Environment
	poll  sim.Time
	alive []ident.ID // index 0 is the first (freshest) position
}

var (
	_ sim.Process  = (*Detector)(nil)
	_ fd.AliveList = (*Detector)(nil)
)

// New creates a detector broadcasting every pollInterval units (values < 1
// fall back to DefaultPollInterval).
func New(pollInterval sim.Time) *Detector {
	if pollInterval < 1 {
		pollInterval = DefaultPollInterval
	}
	return &Detector{poll: pollInterval}
}

// Init implements sim.Process: it starts Task T1 (periodic ALIVE).
func (d *Detector) Init(env sim.Environment) {
	d.env = env
	env.Broadcast(sim.Intern(env, Msg{ID: env.ID()}))
	env.SetTimer(d.poll, 0)
}

// OnTimer implements sim.Process (Task T1's "repeat forever").
func (d *Detector) OnTimer(tag int) {
	d.env.Broadcast(sim.Intern(d.env, Msg{ID: d.env.ID()}))
	d.env.SetTimer(d.poll, tag)
}

// OnMessage implements sim.Process (Task T2): move the received identifier
// to the first position of alive, inserting it if new.
func (d *Detector) OnMessage(payload any) {
	m, ok := payload.(Msg)
	if !ok {
		return
	}
	for i, id := range d.alive {
		if id == m.ID {
			copy(d.alive[1:i+1], d.alive[:i])
			d.alive[0] = m.ID
			return
		}
	}
	d.alive = append([]ident.ID{m.ID}, d.alive...)
}

// Alive implements fd.AliveList: a copy of the current list, first
// position first.
func (d *Detector) Alive() []ident.ID {
	out := make([]ident.ID, len(d.alive))
	copy(out, d.alive)
	return out
}
