// Package alive implements the paper's Figure 3: a failure detector of
// class 𝔈 (Definition 1) for asynchronous systems with unique identifiers
// AS[∅], without initial knowledge of the membership.
//
// Every process repeatedly broadcasts ALIVE(id(p)); on receiving ALIVE(i),
// the receiver moves i to the first position of its alive list (inserting
// it if absent). A crashed process eventually stops being refreshed, so its
// identifier sinks below every correct identifier: eventually the correct
// identifiers permanently occupy the prefix of the list (Lemma 1).
package alive
