package alive

import (
	"slices"
	"testing"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/sim"
)

// runAlive executes Figure 3 on n unique-id processes with the given crash
// schedule and verifies class 𝔈 via the checker.
func runAlive(t *testing.T, n int, crashes map[sim.PID]sim.Time, net sim.Model, seed int64, horizon sim.Time) (fd.Result, error) {
	t.Helper()
	ids := ident.Unique(n)
	eng := sim.New(sim.Config{IDs: ids, Net: net, Seed: seed})
	dets := make([]*Detector, n)
	for i := range dets {
		dets[i] = New(0)
		eng.AddProcess(dets[i])
	}
	eng.CrashSchedule(crashes)
	probe := fd.NewProbe(eng, n, func(p sim.PID) ([]ident.ID, bool) {
		if eng.Crashed(p) {
			return nil, false
		}
		return dets[p].Alive(), true
	}, slices.Equal)
	eng.Run(horizon)
	truth := fd.NewGroundTruth(ids, crashes)
	return fd.CheckAliveList(truth, probe)
}

func TestNoFailuresAllRanked(t *testing.T) {
	if _, err := runAlive(t, 5, nil, sim.Async{MaxDelay: 8}, 1, 500); err != nil {
		t.Fatal(err)
	}
}

func TestCrashedSinkBelowCorrect(t *testing.T) {
	crashes := map[sim.PID]sim.Time{1: 100, 3: 150}
	if _, err := runAlive(t, 6, crashes, sim.Async{MaxDelay: 6}, 2, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestManySeedsAndSchedules(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		crashes := map[sim.PID]sim.Time{
			0:                   50 + sim.Time(seed*10),
			sim.PID(seed%4) + 1: 200,
		}
		if _, err := runAlive(t, 6, crashes, sim.Async{MaxDelay: 10}, seed, 1500); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestStabilizationAfterLastCrash(t *testing.T) {
	crashes := map[sim.PID]sim.Time{2: 300}
	res, err := runAlive(t, 4, crashes, sim.Async{MaxDelay: 5}, 3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.StabilizationTime < 300 {
		t.Errorf("stabilized at %d, before the crash at 300 — suspicious sampling", res.StabilizationTime)
	}
}

func TestMoveToFrontSemantics(t *testing.T) {
	d := New(1)
	// Drive OnMessage directly; Init is not needed for list maintenance.
	d.OnMessage(Msg{ID: "a"})
	d.OnMessage(Msg{ID: "b"})
	d.OnMessage(Msg{ID: "c"})
	want := []ident.ID{"c", "b", "a"}
	if got := d.Alive(); !slices.Equal(got, want) {
		t.Fatalf("Alive = %v, want %v", got, want)
	}
	d.OnMessage(Msg{ID: "a"}) // move, not duplicate
	want = []ident.ID{"a", "c", "b"}
	if got := d.Alive(); !slices.Equal(got, want) {
		t.Fatalf("Alive = %v, want %v", got, want)
	}
	if got := d.Alive(); len(got) != 3 {
		t.Fatalf("duplicate inserted: %v", got)
	}
}

func TestIgnoresForeignPayloads(t *testing.T) {
	d := New(1)
	d.OnMessage(struct{ X int }{1})
	if len(d.Alive()) != 0 {
		t.Error("foreign payload mutated the alive list")
	}
}

func TestAliveReturnsCopy(t *testing.T) {
	d := New(1)
	d.OnMessage(Msg{ID: "a"})
	got := d.Alive()
	got[0] = "mutated"
	if d.Alive()[0] != "a" {
		t.Error("Alive must return a defensive copy")
	}
}
