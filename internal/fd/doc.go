// Package fd defines the failure detector classes the paper works with —
// both the previously known ones (◇P̄, Σ, Ω, AΩ, AP, AΣ, and the class 𝔈
// the paper formalizes in Definition 1) and the new homonymous classes
// (◇HP̄, HΩ, HΣ) — together with trace-based property checkers that verify
// the class axioms on recorded executions.
//
// A failure detector is a distributed oracle: each process owns local
// output variables that the detector updates over time. In this codebase a
// detector instance is the per-process object; algorithms query it through
// the small interfaces below, and the simulator's observers sample those
// same interfaces to feed the checkers.
//
// Verification runs in two equivalent pipelines. Probe materializes full
// per-process sample histories; StreamProbe sees the same sample stream
// but keeps O(1) state per process, pushing changes to online monitors
// (SigmaMonitor checks Σ safety against an antichain of minimal quorums).
// Checkers that judge final outputs and stabilization times take the
// FinalView interface both probes implement, so one checker body serves
// materialized and streaming runs alike; stream_test.go pins that both
// pipelines produce identical verdicts over identical executions.
package fd
