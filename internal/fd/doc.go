// Package fd defines the failure detector classes the paper works with —
// both the previously known ones (◇P̄, Σ, Ω, AΩ, AP, AΣ, and the class 𝔈
// the paper formalizes in Definition 1) and the new homonymous classes
// (◇HP̄, HΩ, HΣ) — together with trace-based property checkers that verify
// the class axioms on recorded executions.
//
// A failure detector is a distributed oracle: each process owns local
// output variables that the detector updates over time. In this codebase a
// detector instance is the per-process object; algorithms query it through
// the small interfaces below, and the simulator's observers sample those
// same interfaces to feed the checkers.
package fd
