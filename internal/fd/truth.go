package fd

import (
	"math"
	"sort"

	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// Forever marks a down interval that never ends (a crash-stop crash).
const Forever = sim.Time(math.MaxInt64)

// Interval is one outage [From, To): the process is down at exactly the
// times t with From <= t < To. To = Forever means the process never
// recovers.
type Interval struct {
	From, To sim.Time
}

// GroundTruth is the omniscient view of one execution's fault pattern,
// available to checkers and oracles but never to algorithms. The pattern
// is a set of down intervals per process; crash-stop is the special case
// where every interval extends to Forever.
//
// Two process sets derive from the pattern:
//
//   - Correct: processes that never crash ("correct = never crashes", the
//     paper's crash-stop reading). Consensus Termination quantifies over
//     this set.
//   - EventuallyUp: processes that are up from some point on — Correct
//     plus the churners whose last outage ends. Failure-detector class
//     properties under crash-recovery are stated relative to this set (a
//     detector can only converge to what is eventually permanently up);
//     in crash-stop executions it equals Correct.
//
// The fault pattern is fixed for the whole execution, so the derived views
// are computed once and shared: callers must treat the returned slices and
// multisets as read-only.
type GroundTruth struct {
	IDs ident.Assignment
	// CrashTimes holds the first crash time of each process that crashes
	// at least once; processes absent from it are correct.
	CrashTimes map[sim.PID]sim.Time
	// Down holds each process's outage intervals, sorted by From.
	Down map[sim.PID][]Interval

	correct      []sim.PID
	eventuallyUp []sim.PID
	correctIDs   *multiset.Multiset[ident.ID]
	euIDs        *multiset.Multiset[ident.ID]
	leader       LeaderInfo
	leaderOK     bool
}

// NewGroundTruth builds a crash-stop ground truth for the assignment with
// the given crash schedule: every crash is final.
func NewGroundTruth(ids ident.Assignment, crashTimes map[sim.PID]sim.Time) *GroundTruth {
	down := make(map[sim.PID][]Interval, len(crashTimes))
	for p, t := range crashTimes {
		down[p] = []Interval{{From: t, To: Forever}}
	}
	return newGroundTruth(ids, down)
}

// NewGroundTruthFromChurn builds a crash-recovery ground truth from the
// same schedule the engine executes (sim.ChurnSpec.Events, or a hand-built
// slice of crash/recover entries). A recover entry for an up process is
// ignored and consecutive crashes merge, mirroring the engine's semantics.
func NewGroundTruthFromChurn(ids ident.Assignment, evs []sim.ChurnEvent) *GroundTruth {
	byProc := make(map[sim.PID][]sim.ChurnEvent)
	for _, ev := range evs {
		byProc[ev.P] = append(byProc[ev.P], ev)
	}
	down := make(map[sim.PID][]Interval, len(byProc))
	//detlint:ignore maprange per-key build: each process's intervals derive only from its own (locally sorted) events, written under its own key
	for p, pevs := range byProc {
		sort.SliceStable(pevs, func(i, j int) bool { return pevs[i].At < pevs[j].At })
		var ivs []Interval
		open := false
		for _, ev := range pevs {
			switch {
			case !ev.Recover && !open:
				ivs = append(ivs, Interval{From: ev.At, To: Forever})
				open = true
			case ev.Recover && open:
				ivs[len(ivs)-1].To = ev.At
				open = false
			}
		}
		// A recover at the same instant as the crash leaves a zero-length
		// interval [t, t). It is kept: the crash DID happen (the engine's
		// sticky everCrashed excludes the process from CorrectSet, and so
		// must the truth), even though no AliveAt sample can observe the
		// outage (From <= t < To never holds for an empty interval).
		if len(ivs) > 0 {
			down[p] = ivs
		}
	}
	return newGroundTruth(ids, down)
}

func newGroundTruth(ids ident.Assignment, down map[sim.PID][]Interval) *GroundTruth {
	g := &GroundTruth{
		IDs:        ids,
		CrashTimes: make(map[sim.PID]sim.Time, len(down)),
		Down:       down,
	}
	for p, ivs := range down {
		g.CrashTimes[p] = ivs[0].From
	}
	g.derive()
	return g
}

// derive precomputes the execution-constant views; it runs once from the
// constructors.
func (g *GroundTruth) derive() {
	g.correct = g.correct[:0]
	g.eventuallyUp = g.eventuallyUp[:0]
	for p := 0; p < g.IDs.N(); p++ {
		ivs := g.Down[sim.PID(p)]
		if len(ivs) == 0 {
			g.correct = append(g.correct, sim.PID(p))
			g.eventuallyUp = append(g.eventuallyUp, sim.PID(p))
			continue
		}
		if ivs[len(ivs)-1].To != Forever {
			g.eventuallyUp = append(g.eventuallyUp, sim.PID(p))
		}
	}
	g.correctIDs = multiset.New[ident.ID]()
	for _, p := range g.correct {
		g.correctIDs.Add(g.IDs[p])
	}
	g.euIDs = multiset.New[ident.ID]()
	for _, p := range g.eventuallyUp {
		g.euIDs.Add(g.IDs[p])
	}
	if id, ok := g.euIDs.Min(); ok {
		g.leader, g.leaderOK = LeaderInfo{ID: id, Multiplicity: g.euIDs.Count(id)}, true
	} else {
		g.leader, g.leaderOK = LeaderInfo{}, false
	}
}

// Correct returns the indexes of processes that never crash. The slice is
// shared; callers must not mutate it.
func (g *GroundTruth) Correct() []sim.PID {
	if len(g.correct) == 0 {
		return nil
	}
	return g.correct
}

// EventuallyUp returns the indexes of processes that are up from some
// point on (Correct plus recovered churners). The slice is shared; callers
// must not mutate it.
func (g *GroundTruth) EventuallyUp() []sim.PID {
	if len(g.eventuallyUp) == 0 {
		return nil
	}
	return g.eventuallyUp
}

// IsCorrect reports whether p never crashes in this execution.
func (g *GroundTruth) IsCorrect(p sim.PID) bool {
	return len(g.Down[p]) == 0
}

// IsEventuallyUp reports whether p is up from some point on.
func (g *GroundTruth) IsEventuallyUp(p sim.PID) bool {
	ivs := g.Down[p]
	return len(ivs) == 0 || ivs[len(ivs)-1].To != Forever
}

// downAt reports whether p is down at time t. A process crashing at t is
// down at exactly t (matching the simulator, which processes crashes
// before deliveries at equal times only by sequence order — checkers use
// it with ±1 slack); a process recovering at t is up at t.
func (g *GroundTruth) downAt(p sim.PID, t sim.Time) bool {
	for _, iv := range g.Down[p] {
		if iv.From <= t && t < iv.To {
			return true
		}
	}
	return false
}

// AliveAt returns the processes alive at time t.
func (g *GroundTruth) AliveAt(t sim.Time) []sim.PID {
	var out []sim.PID
	for p := 0; p < g.IDs.N(); p++ {
		if !g.downAt(sim.PID(p), t) {
			out = append(out, sim.PID(p))
		}
	}
	return out
}

// AliveCountAt returns |AliveAt(t)| without building the slice.
func (g *GroundTruth) AliveCountAt(t sim.Time) int {
	n := g.IDs.N()
	//detlint:ignore maprange commutative count: downAt is a pure read of immutable intervals and n-- folds order-independently
	for p := range g.Down {
		if g.downAt(p, t) {
			n--
		}
	}
	return n
}

// CorrectIDs returns I(Correct) as a multiset. The multiset is shared;
// callers must not mutate it.
func (g *GroundTruth) CorrectIDs() *multiset.Multiset[ident.ID] {
	return g.correctIDs
}

// EventuallyUpIDs returns I(EventuallyUp) as a multiset — the target every
// heartbeat-driven detector converges to under churn. The multiset is
// shared; callers must not mutate it.
func (g *GroundTruth) EventuallyUpIDs() *multiset.Multiset[ident.ID] {
	return g.euIDs
}

// LastCrashTime returns the time of the last crash (0 if none).
func (g *GroundTruth) LastCrashTime() sim.Time {
	var last sim.Time
	for _, ivs := range g.Down {
		for _, iv := range ivs {
			if iv.From > last {
				last = iv.From
			}
		}
	}
	return last
}

// LastChange returns the time of the last fault-pattern change — the final
// crash or recovery (0 if none). Detector outputs cannot stabilize before
// it; churn checkers use it as the re-stabilization baseline.
func (g *GroundTruth) LastChange() sim.Time {
	var last sim.Time
	for _, ivs := range g.Down {
		for _, iv := range ivs {
			if iv.From > last {
				last = iv.From
			}
			if iv.To != Forever && iv.To > last {
				last = iv.To
			}
		}
	}
	return last
}

// Recoveries returns the total number of recoveries in the pattern.
func (g *GroundTruth) Recoveries() int {
	n := 0
	for _, ivs := range g.Down {
		for _, iv := range ivs {
			if iv.To != Forever {
				n++
			}
		}
	}
	return n
}

// ExpectedLeader returns the stabilized HΩ output this repository's
// detectors converge to: the smallest identifier among eventually-up
// processes (= correct processes in crash-stop), with its multiplicity in
// I(EventuallyUp). ok is false when no process is eventually up.
func (g *GroundTruth) ExpectedLeader() (LeaderInfo, bool) {
	return g.leader, g.leaderOK
}
