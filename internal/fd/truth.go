package fd

import (
	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// GroundTruth is the omniscient view of one execution's fault pattern,
// available to checkers and oracles but never to algorithms. CrashTimes
// holds the virtual time of each crash that occurred; processes absent
// from it are correct.
type GroundTruth struct {
	IDs        ident.Assignment
	CrashTimes map[sim.PID]sim.Time
}

// NewGroundTruth builds a ground truth for the assignment with the given
// crash schedule.
func NewGroundTruth(ids ident.Assignment, crashTimes map[sim.PID]sim.Time) *GroundTruth {
	ct := make(map[sim.PID]sim.Time, len(crashTimes))
	for p, t := range crashTimes {
		ct[p] = t
	}
	return &GroundTruth{IDs: ids, CrashTimes: ct}
}

// Correct returns the indexes of correct processes.
func (g *GroundTruth) Correct() []sim.PID {
	var out []sim.PID
	for p := 0; p < g.IDs.N(); p++ {
		if _, crashed := g.CrashTimes[sim.PID(p)]; !crashed {
			out = append(out, sim.PID(p))
		}
	}
	return out
}

// IsCorrect reports whether p never crashes in this execution.
func (g *GroundTruth) IsCorrect(p sim.PID) bool {
	_, crashed := g.CrashTimes[p]
	return !crashed
}

// AliveAt returns the processes alive at time t (crashed strictly before t
// are dead; a process crashing at t is counted as dead at t, matching the
// simulator, which processes crashes before deliveries at equal times only
// by sequence order — checkers use it with ±1 slack).
func (g *GroundTruth) AliveAt(t sim.Time) []sim.PID {
	var out []sim.PID
	for p := 0; p < g.IDs.N(); p++ {
		if ct, crashed := g.CrashTimes[sim.PID(p)]; !crashed || ct > t {
			out = append(out, sim.PID(p))
		}
	}
	return out
}

// CorrectIDs returns I(Correct) as a multiset.
func (g *GroundTruth) CorrectIDs() *multiset.Multiset[ident.ID] {
	m := multiset.New[ident.ID]()
	for _, p := range g.Correct() {
		m.Add(g.IDs[p])
	}
	return m
}

// LastCrashTime returns the time of the last crash (0 if none).
func (g *GroundTruth) LastCrashTime() sim.Time {
	var last sim.Time
	for _, t := range g.CrashTimes {
		if t > last {
			last = t
		}
	}
	return last
}

// ExpectedLeader returns the stabilized HΩ output this repository's
// detectors converge to: the smallest identifier among correct processes,
// with its multiplicity in I(Correct). ok is false when no process is
// correct.
func (g *GroundTruth) ExpectedLeader() (LeaderInfo, bool) {
	ids := g.CorrectIDs()
	leader, ok := ids.Min()
	if !ok {
		return LeaderInfo{}, false
	}
	return LeaderInfo{ID: leader, Multiplicity: ids.Count(leader)}, true
}
