package fd

import (
	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// GroundTruth is the omniscient view of one execution's fault pattern,
// available to checkers and oracles but never to algorithms. CrashTimes
// holds the virtual time of each crash that occurred; processes absent
// from it are correct.
//
// The fault pattern is fixed for the whole execution, so the derived views
// (Correct, CorrectIDs, ExpectedLeader) are computed once and shared:
// callers must treat the returned slices and multisets as read-only.
type GroundTruth struct {
	IDs        ident.Assignment
	CrashTimes map[sim.PID]sim.Time

	correct    []sim.PID
	correctIDs *multiset.Multiset[ident.ID]
	leader     LeaderInfo
	leaderOK   bool
}

// NewGroundTruth builds a ground truth for the assignment with the given
// crash schedule.
func NewGroundTruth(ids ident.Assignment, crashTimes map[sim.PID]sim.Time) *GroundTruth {
	ct := make(map[sim.PID]sim.Time, len(crashTimes))
	for p, t := range crashTimes {
		ct[p] = t
	}
	g := &GroundTruth{IDs: ids, CrashTimes: ct}
	g.derive()
	return g
}

// derive precomputes the execution-constant views; it runs once from
// NewGroundTruth, the only constructor.
func (g *GroundTruth) derive() {
	g.correct = g.correct[:0]
	for p := 0; p < g.IDs.N(); p++ {
		if _, crashed := g.CrashTimes[sim.PID(p)]; !crashed {
			g.correct = append(g.correct, sim.PID(p))
		}
	}
	m := multiset.New[ident.ID]()
	for _, p := range g.correct {
		m.Add(g.IDs[p])
	}
	g.correctIDs = m
	if id, ok := m.Min(); ok {
		g.leader, g.leaderOK = LeaderInfo{ID: id, Multiplicity: m.Count(id)}, true
	} else {
		g.leader, g.leaderOK = LeaderInfo{}, false
	}
}

// Correct returns the indexes of correct processes. The slice is shared;
// callers must not mutate it.
func (g *GroundTruth) Correct() []sim.PID {
	if len(g.correct) == 0 {
		return nil
	}
	return g.correct
}

// IsCorrect reports whether p never crashes in this execution.
func (g *GroundTruth) IsCorrect(p sim.PID) bool {
	_, crashed := g.CrashTimes[p]
	return !crashed
}

// AliveAt returns the processes alive at time t (crashed strictly before t
// are dead; a process crashing at t is counted as dead at t, matching the
// simulator, which processes crashes before deliveries at equal times only
// by sequence order — checkers use it with ±1 slack).
func (g *GroundTruth) AliveAt(t sim.Time) []sim.PID {
	var out []sim.PID
	for p := 0; p < g.IDs.N(); p++ {
		if ct, crashed := g.CrashTimes[sim.PID(p)]; !crashed || ct > t {
			out = append(out, sim.PID(p))
		}
	}
	return out
}

// AliveCountAt returns |AliveAt(t)| without building the slice.
func (g *GroundTruth) AliveCountAt(t sim.Time) int {
	n := g.IDs.N()
	for _, ct := range g.CrashTimes {
		if ct <= t {
			n--
		}
	}
	return n
}

// CorrectIDs returns I(Correct) as a multiset. The multiset is shared;
// callers must not mutate it.
func (g *GroundTruth) CorrectIDs() *multiset.Multiset[ident.ID] {
	return g.correctIDs
}

// LastCrashTime returns the time of the last crash (0 if none).
func (g *GroundTruth) LastCrashTime() sim.Time {
	var last sim.Time
	for _, t := range g.CrashTimes {
		if t > last {
			last = t
		}
	}
	return last
}

// ExpectedLeader returns the stabilized HΩ output this repository's
// detectors converge to: the smallest identifier among correct processes,
// with its multiplicity in I(Correct). ok is false when no process is
// correct.
func (g *GroundTruth) ExpectedLeader() (LeaderInfo, bool) {
	return g.leader, g.leaderOK
}
