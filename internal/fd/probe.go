package fd

import (
	"repro/internal/sim"
)

// Sample is one timed observation of a detector output at one process.
type Sample[T any] struct {
	Time  sim.Time
	Value T
}

// Probe collects, per process, the history of a detector output. It
// samples after every simulator event (the only instants outputs can
// change) and stores a new sample only when the value changed, so the
// history is the exact sequence of distinct outputs with their first
// occurrence times.
type Probe[T any] struct {
	histories [][]Sample[T]
}

// NewProbe attaches a probe to the engine. get returns the current output
// of process p (ok=false while the process has no output or has crashed);
// eq decides whether two outputs are equal.
//
// Sampling exploits the engine's change contract: a process's output can
// change only during its own events or when virtual time advances (oracle
// detectors are functions of the clock). The probe therefore samples the
// event's process after every event, and all processes whenever the clock
// moved — which observes exactly the same history as sampling everyone
// after every event, at a fraction of the cost.
func NewProbe[T any](eng *sim.Engine, n int, get func(p sim.PID) (T, bool), eq func(a, b T) bool) *Probe[T] {
	pr := &Probe[T]{histories: make([][]Sample[T], n)}
	sample := func(now sim.Time, p int) {
		v, ok := get(sim.PID(p))
		if !ok {
			return
		}
		h := pr.histories[p]
		if len(h) > 0 && eq(h[len(h)-1].Value, v) {
			return
		}
		pr.histories[p] = append(h, Sample[T]{Time: now, Value: v})
	}
	lastNow := sim.Time(-1)
	eng.AfterEvent(func(now sim.Time, p sim.PID) {
		if p >= 0 && now == lastNow {
			if int(p) < n {
				sample(now, int(p))
			}
			return
		}
		lastNow = now
		for q := 0; q < n; q++ {
			sample(now, q)
		}
	})
	return pr
}

// NewSyncProbe attaches a probe to a lock-step engine, sampling at the end
// of every synchronous step (Time carries the step number).
func NewSyncProbe[T any](eng *sim.SyncEngine, n int, get func(p sim.PID) (T, bool), eq func(a, b T) bool) *Probe[T] {
	pr := &Probe[T]{histories: make([][]Sample[T], n)}
	eng.AfterStep(func(step int) {
		for p := 0; p < n; p++ {
			v, ok := get(sim.PID(p))
			if !ok {
				continue
			}
			h := pr.histories[p]
			if len(h) > 0 && eq(h[len(h)-1].Value, v) {
				continue
			}
			pr.histories[p] = append(h, Sample[T]{Time: sim.Time(step), Value: v})
		}
	})
	return pr
}

// NewStaticProbe builds a probe from pre-recorded histories (one slice per
// process). Checker tests and offline analyses use it; live runs use
// NewProbe.
func NewStaticProbe[T any](histories [][]Sample[T]) *Probe[T] {
	return &Probe[T]{histories: histories}
}

// History returns process p's sample history (distinct consecutive values
// with their first-occurrence times).
func (pr *Probe[T]) History(p sim.PID) []Sample[T] { return pr.histories[p] }

// Last returns the final sampled output of p, ok=false if p never output.
func (pr *Probe[T]) Last(p sim.PID) (T, bool) {
	h := pr.histories[p]
	if len(h) == 0 {
		var zero T
		return zero, false
	}
	return h[len(h)-1].Value, true
}

// LastChange returns the time of p's final output change, i.e. the moment
// p's output stabilized (0 if p never output). Checkers use the maximum
// over correct processes as the measured stabilization time.
func (pr *Probe[T]) LastChange(p sim.PID) sim.Time {
	h := pr.histories[p]
	if len(h) == 0 {
		return 0
	}
	return h[len(h)-1].Time
}

// N returns the number of processes probed.
func (pr *Probe[T]) N() int { return len(pr.histories) }
