package oracle

import (
	"testing"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// ticker keeps virtual time moving so that time-driven oracle outputs are
// observed; oracles themselves are passive.
type ticker struct{ env sim.Environment }

func (tk *ticker) Init(env sim.Environment) { tk.env = env; env.SetTimer(1, 0) }
func (tk *ticker) OnMessage(any)            {}
func (tk *ticker) OnTimer(tag int)          { tk.env.SetTimer(1, tag) }

type fixture struct {
	eng   *sim.Engine
	truth *fd.GroundTruth
	world *World
}

func newFixture(ids ident.Assignment, crashes map[sim.PID]sim.Time, stabilize sim.Time, build func(w *World, i int) sim.Process) *fixture {
	eng := sim.New(sim.Config{IDs: ids, Seed: 1})
	truth := fd.NewGroundTruth(ids, crashes)
	world := NewWorld(truth, stabilize)
	for i := 0; i < ids.N(); i++ {
		node := sim.NewNode().Add("tick", &ticker{}).Add("fd", build(world, i))
		eng.AddProcess(node)
	}
	eng.CrashSchedule(crashes)
	return &fixture{eng: eng, truth: truth, world: world}
}

func TestHOmegaOracleAllAdversaries(t *testing.T) {
	ids := ident.Assignment{"a", "a", "b"}
	crashes := map[sim.PID]sim.Time{0: 30}
	for _, mode := range []Adversary{AdversaryNone, AdversaryRotate, AdversarySplit} {
		oracles := make([]*HOmega, ids.N())
		fx := newFixture(ids, crashes, 100, func(w *World, i int) sim.Process {
			oracles[i] = NewHOmega(w, mode)
			return oracles[i]
		})
		pr := fd.NewProbe(fx.eng, ids.N(), func(p sim.PID) (fd.LeaderInfo, bool) {
			if fx.eng.Crashed(p) {
				return fd.LeaderInfo{}, false
			}
			return oracles[p].Leader()
		}, func(a, b fd.LeaderInfo) bool { return a == b })
		fx.eng.Run(300)
		if _, err := fd.CheckHOmega(fx.truth, pr); err != nil {
			t.Errorf("mode %d: %v", mode, err)
		}
		li, _ := oracles[1].Leader()
		if li.ID != "a" || li.Multiplicity != 1 {
			t.Errorf("mode %d: leader = %v, want (a, 1): p0 crashed so only one 'a' is correct", mode, li)
		}
	}
}

func TestHOmegaOracleFlapsBeforeStabilization(t *testing.T) {
	ids := ident.Unique(4)
	oracles := make([]*HOmega, ids.N())
	fx := newFixture(ids, nil, 200, func(w *World, i int) sim.Process {
		oracles[i] = NewHOmega(w, AdversaryRotate)
		return oracles[i]
	})
	pr := fd.NewProbe(fx.eng, ids.N(), func(p sim.PID) (fd.LeaderInfo, bool) {
		return oracles[p].Leader()
	}, func(a, b fd.LeaderInfo) bool { return a == b })
	fx.eng.Run(400)
	if len(pr.History(0)) < 3 {
		t.Errorf("rotating adversary produced only %d distinct outputs; no flapping", len(pr.History(0)))
	}
	if _, err := fd.CheckHOmega(fx.truth, pr); err != nil {
		t.Errorf("flapping must still satisfy the class eventually: %v", err)
	}
}

func TestDiamondHPbarOracle(t *testing.T) {
	ids := ident.Balanced(5, 2)
	crashes := map[sim.PID]sim.Time{2: 40}
	oracles := make([]*DiamondHPbar, ids.N())
	fx := newFixture(ids, crashes, 100, func(w *World, i int) sim.Process {
		oracles[i] = NewDiamondHPbar(w)
		return oracles[i]
	})
	pr := fd.NewProbe(fx.eng, ids.N(), func(p sim.PID) (*multiset.Multiset[ident.ID], bool) {
		if fx.eng.Crashed(p) {
			return nil, false
		}
		return oracles[p].Trusted(), true
	}, func(a, b *multiset.Multiset[ident.ID]) bool { return a.Equal(b) })
	fx.eng.Run(300)
	if _, err := fd.CheckDiamondHPbar(fx.truth, pr); err != nil {
		t.Fatal(err)
	}
}

func TestAPOracleWithSlack(t *testing.T) {
	ids := ident.AnonymousN(4)
	crashes := map[sim.PID]sim.Time{1: 50}
	oracles := make([]*AP, ids.N())
	fx := newFixture(ids, crashes, 120, func(w *World, i int) sim.Process {
		oracles[i] = NewAP(w, 2)
		return oracles[i]
	})
	pr := fd.NewProbe(fx.eng, ids.N(), func(p sim.PID) (int, bool) {
		if fx.eng.Crashed(p) {
			return 0, false
		}
		return oracles[p].AliveCount(), true
	}, func(a, b int) bool { return a == b })
	fx.eng.Run(300)
	if _, err := fd.CheckAP(fx.truth, pr); err != nil {
		t.Fatal(err)
	}
}

func TestSigmaOracle(t *testing.T) {
	ids := ident.Unique(4)
	crashes := map[sim.PID]sim.Time{3: 60}
	oracles := make([]*Sigma, ids.N())
	fx := newFixture(ids, crashes, 150, func(w *World, i int) sim.Process {
		oracles[i] = NewSigma(w)
		return oracles[i]
	})
	pr := fd.NewProbe(fx.eng, ids.N(), func(p sim.PID) (*multiset.Multiset[ident.ID], bool) {
		if fx.eng.Crashed(p) {
			return nil, false
		}
		return oracles[p].TrustedQuorum(), true
	}, func(a, b *multiset.Multiset[ident.ID]) bool { return a.Equal(b) })
	fx.eng.Run(400)
	if _, err := fd.CheckSigma(fx.truth, pr); err != nil {
		t.Fatal(err)
	}
}

func TestASigmaOracle(t *testing.T) {
	ids := ident.AnonymousN(5)
	crashes := map[sim.PID]sim.Time{0: 40, 1: 70}
	oracles := make([]*ASigma, ids.N())
	fx := newFixture(ids, crashes, 150, func(w *World, i int) sim.Process {
		oracles[i] = NewASigma(w)
		return oracles[i]
	})
	pr := fd.NewProbe(fx.eng, ids.N(), func(p sim.PID) ([]fd.APair, bool) {
		if fx.eng.Crashed(p) {
			return nil, false
		}
		return oracles[p].ASigma(), true
	}, func(a, b []fd.APair) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	})
	fx.eng.Run(400)
	if _, err := fd.CheckASigma(fx.truth, pr); err != nil {
		t.Fatal(err)
	}
}

func TestHSigmaOracle(t *testing.T) {
	ids := ident.Assignment{"A", "A", "B"}
	crashes := map[sim.PID]sim.Time{1: 30}
	oracles := make([]*HSigma, ids.N())
	fx := newFixture(ids, crashes, 100, func(w *World, i int) sim.Process {
		oracles[i] = NewHSigma(w)
		return oracles[i]
	})
	quora := fd.NewProbe(fx.eng, ids.N(), func(p sim.PID) ([]fd.QuorumPair, bool) {
		if fx.eng.Crashed(p) {
			return nil, false
		}
		return oracles[p].Quora(), true
	}, func(a, b []fd.QuorumPair) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Label != b[i].Label || !a[i].M.Equal(b[i].M) {
				return false
			}
		}
		return true
	})
	labels := fd.NewProbe(fx.eng, ids.N(), func(p sim.PID) ([]fd.Label, bool) {
		if fx.eng.Crashed(p) {
			return nil, false
		}
		return oracles[p].Labels(), true
	}, fd.LabelsEqual)
	fx.eng.Run(300)
	if _, err := fd.CheckHSigma(fx.truth, quora, labels); err != nil {
		t.Fatal(err)
	}
}

func TestAOmegaOracle(t *testing.T) {
	ids := ident.AnonymousN(4)
	crashes := map[sim.PID]sim.Time{0: 30}
	for _, mode := range []Adversary{AdversaryNone, AdversaryRotate, AdversarySplit} {
		oracles := make([]*AOmega, ids.N())
		fx := newFixture(ids, crashes, 100, func(w *World, i int) sim.Process {
			oracles[i] = NewAOmega(w, mode)
			return oracles[i]
		})
		pr := fd.NewProbe(fx.eng, ids.N(), func(p sim.PID) (bool, bool) {
			if fx.eng.Crashed(p) {
				return false, false
			}
			return oracles[p].IsLeader(), true
		}, func(a, b bool) bool { return a == b })
		fx.eng.Run(300)
		if _, err := fd.CheckAOmega(fx.truth, pr); err != nil {
			t.Errorf("mode %d: %v", mode, err)
		}
	}
}
