package oracle

import (
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// World is the shared ground truth oracles consult. Stabilize is the
// virtual time from which outputs are stable and truthful; before it,
// behaviour depends on the oracle's adversary mode.
//
// The ground truth never changes during a run, so the World precomputes
// every constant output (quorum pairs, label sets, I(Π)) once: oracle
// queries on the hot sampling path are allocation-free. All returned
// slices and multisets are shared and must be treated as read-only.
type World struct {
	Truth     *fd.GroundTruth
	Stabilize sim.Time

	allIDs       *multiset.Multiset[ident.ID]
	quoraAll     []fd.QuorumPair
	quoraStable  []fd.QuorumPair
	labelsAll    []fd.Label
	labelsStable []fd.Label
	asigmaAll    []fd.APair
	asigmaStable []fd.APair
}

// NewWorld builds a World.
func NewWorld(truth *fd.GroundTruth, stabilize sim.Time) *World {
	w := &World{Truth: truth, Stabilize: stabilize}
	w.allIDs = truth.IDs.I()
	w.quoraAll = []fd.QuorumPair{{Label: "all", M: w.allIDs}}
	w.quoraStable = append(w.quoraAll[:1:1], fd.QuorumPair{Label: "corr", M: truth.EventuallyUpIDs()})
	w.labelsAll = []fd.Label{"all"}
	w.labelsStable = append(w.labelsAll[:1:1], "corr")
	w.asigmaAll = []fd.APair{{Label: "all", Y: truth.IDs.N()}}
	w.asigmaStable = append(w.asigmaAll[:1:1], fd.APair{Label: "corr", Y: len(truth.EventuallyUp())})
	return w
}

func (w *World) stable(now sim.Time) bool { return now >= w.Stabilize }

// Adversary selects the pre-stabilization behaviour of leader oracles.
type Adversary int

const (
	// AdversaryNone outputs the stable value from the start.
	AdversaryNone Adversary = iota
	// AdversaryRotate cycles the elected identifier through all
	// identifiers in the system (with wrong multiplicities), changing
	// every RotatePeriod time units — the classic flapping-leader
	// adversary consensus must tolerate.
	AdversaryRotate
	// AdversarySplit makes different processes see different leaders
	// (each process sees a leader offset by its own index), violating
	// agreement until stabilization.
	AdversarySplit
)

// RotatePeriod is the flapping period of AdversaryRotate/AdversarySplit.
const RotatePeriod = 7

// HOmega is an HΩ-class oracle for one process.
type HOmega struct {
	w    *World
	env  sim.Environment
	mode Adversary
}

var _ fd.HOmega = (*HOmega)(nil)

// NewHOmega builds the oracle for one process; attach it to the process's
// node so it can observe virtual time.
func NewHOmega(w *World, mode Adversary) *HOmega {
	return &HOmega{w: w, mode: mode}
}

// Init implements sim.Process.
func (o *HOmega) Init(env sim.Environment) { o.env = env }

// OnMessage implements sim.Process; oracles use no messages.
func (o *HOmega) OnMessage(any) {}

// OnTimer implements sim.Process; oracles use no timers.
func (o *HOmega) OnTimer(int) {}

// Leader implements fd.HOmega.
func (o *HOmega) Leader() (fd.LeaderInfo, bool) {
	now := o.env.Now()
	if o.w.stable(now) || o.mode == AdversaryNone {
		return o.w.Truth.ExpectedLeader()
	}
	ids := o.w.Truth.IDs
	k := int(now / RotatePeriod)
	if o.mode == AdversarySplit {
		k += int(o.env.PID())
	}
	id := ids[k%ids.N()]
	// Multiplicity is deliberately unreliable pre-stabilization: the class
	// constrains only the eventual output.
	return fd.LeaderInfo{ID: id, Multiplicity: 1 + k%2}, true
}

// DiamondHPbar is a ◇HP̄-class oracle: it trusts I(alive(now)) before
// stabilization (a natural over-approximation) and I(Correct) afterwards.
type DiamondHPbar struct {
	w     *World
	env   sim.Environment
	pre   *multiset.Multiset[ident.ID] // memoized pre-stabilization output
	preAt sim.Time
}

var _ fd.DiamondHPbar = (*DiamondHPbar)(nil)

// NewDiamondHPbar builds the oracle.
func NewDiamondHPbar(w *World) *DiamondHPbar { return &DiamondHPbar{w: w} }

// Init implements sim.Process.
func (o *DiamondHPbar) Init(env sim.Environment) { o.env = env }

// OnMessage implements sim.Process.
func (o *DiamondHPbar) OnMessage(any) {}

// OnTimer implements sim.Process.
func (o *DiamondHPbar) OnTimer(int) {}

// Trusted implements fd.DiamondHPbar. The returned multiset is a shared
// snapshot and must not be mutated; the pre-stabilization value is memoized
// per instant, so repeated samples at one virtual time are allocation-free.
func (o *DiamondHPbar) Trusted() *multiset.Multiset[ident.ID] {
	now := o.env.Now()
	if o.w.stable(now) {
		return o.w.Truth.EventuallyUpIDs()
	}
	if o.pre == nil || o.preAt != now {
		m := multiset.New[ident.ID]()
		for _, p := range o.w.Truth.AliveAt(now) {
			m.Add(o.w.Truth.IDs[p])
		}
		o.pre, o.preAt = m, now
	}
	return o.pre
}

// AP is an AP-class oracle: the current number of alive processes (always
// a safe upper bound that converges to |Correct| once all crashes fired).
type AP struct {
	w   *World
	env sim.Environment
	// Slack inflates pre-stabilization outputs, exercising consumers that
	// must tolerate loose upper bounds.
	Slack int
}

var _ fd.AP = (*AP)(nil)

// NewAP builds the oracle.
func NewAP(w *World, slack int) *AP { return &AP{w: w, Slack: slack} }

// Init implements sim.Process.
func (o *AP) Init(env sim.Environment) { o.env = env }

// OnMessage implements sim.Process.
func (o *AP) OnMessage(any) {}

// OnTimer implements sim.Process.
func (o *AP) OnTimer(int) {}

// AliveCount implements fd.AP.
func (o *AP) AliveCount() int {
	now := o.env.Now()
	alive := o.w.Truth.AliveCountAt(now)
	if !o.w.stable(now) {
		return alive + o.Slack
	}
	return alive
}

// Sigma is a Σ-class oracle for unique-identifier systems: before
// stabilization it trusts I(Π) (safe: all quorums intersect), afterwards
// I(Correct). With a majority of correct processes one could emit majority
// quorums; the oracle keeps the simplest class-valid behaviour.
type Sigma struct {
	w   *World
	env sim.Environment
}

var _ fd.Sigma = (*Sigma)(nil)

// NewSigma builds the oracle.
func NewSigma(w *World) *Sigma { return &Sigma{w: w} }

// Init implements sim.Process.
func (o *Sigma) Init(env sim.Environment) { o.env = env }

// OnMessage implements sim.Process.
func (o *Sigma) OnMessage(any) {}

// OnTimer implements sim.Process.
func (o *Sigma) OnTimer(int) {}

// TrustedQuorum implements fd.Sigma. The returned multiset is shared and
// must not be mutated.
func (o *Sigma) TrustedQuorum() *multiset.Multiset[ident.ID] {
	if o.w.stable(o.env.Now()) {
		return o.w.Truth.EventuallyUpIDs()
	}
	return o.w.allIDs
}

// ASigma is an AΣ-class oracle. It emits ("all", n) always and, once
// stable, additionally ("corr", |Correct|). Both pairs are class-safe:
// sub-quora of size n and |Correct| over their member sets always
// intersect (the correct set is non-empty).
type ASigma struct {
	w   *World
	env sim.Environment
}

var _ fd.ASigma = (*ASigma)(nil)

// NewASigma builds the oracle.
func NewASigma(w *World) *ASigma { return &ASigma{w: w} }

// Init implements sim.Process.
func (o *ASigma) Init(env sim.Environment) { o.env = env }

// OnMessage implements sim.Process.
func (o *ASigma) OnMessage(any) {}

// OnTimer implements sim.Process.
func (o *ASigma) OnTimer(int) {}

// ASigma implements fd.ASigma. The returned slice is shared and must not
// be mutated.
func (o *ASigma) ASigma() []fd.APair {
	if o.w.stable(o.env.Now()) {
		return o.w.asigmaStable
	}
	return o.w.asigmaAll
}

// HSigma is an HΣ-class oracle: label "all" ↦ I(Π) always, and once stable
// label "corr" ↦ I(Correct) with membership of all correct processes.
type HSigma struct {
	w   *World
	env sim.Environment
}

var _ fd.HSigma = (*HSigma)(nil)

// NewHSigma builds the oracle.
func NewHSigma(w *World) *HSigma { return &HSigma{w: w} }

// Init implements sim.Process.
func (o *HSigma) Init(env sim.Environment) { o.env = env }

// OnMessage implements sim.Process.
func (o *HSigma) OnMessage(any) {}

// OnTimer implements sim.Process.
func (o *HSigma) OnTimer(int) {}

// Quora implements fd.HSigma. The returned slice and its multisets are
// shared and must not be mutated.
func (o *HSigma) Quora() []fd.QuorumPair {
	if o.w.stable(o.env.Now()) {
		return o.w.quoraStable
	}
	return o.w.quoraAll
}

// Labels implements fd.HSigma. Every process participates in "all"; the
// correct ones (and crashed ones too — membership of S(x) may include
// faulty processes) participate in "corr" once stable.
func (o *HSigma) Labels() []fd.Label {
	if o.w.stable(o.env.Now()) && o.w.Truth.IsEventuallyUp(o.env.PID()) {
		return o.w.labelsStable
	}
	return o.w.labelsAll
}

// AOmega is an AΩ-class oracle: after stabilization exactly the lowest-
// indexed correct process holds the flag.
type AOmega struct {
	w    *World
	env  sim.Environment
	mode Adversary
}

var _ fd.AOmega = (*AOmega)(nil)

// NewAOmega builds the oracle.
func NewAOmega(w *World, mode Adversary) *AOmega { return &AOmega{w: w, mode: mode} }

// Init implements sim.Process.
func (o *AOmega) Init(env sim.Environment) { o.env = env }

// OnMessage implements sim.Process.
func (o *AOmega) OnMessage(any) {}

// OnTimer implements sim.Process.
func (o *AOmega) OnTimer(int) {}

// IsLeader implements fd.AOmega.
func (o *AOmega) IsLeader() bool {
	now := o.env.Now()
	if !o.w.stable(now) {
		switch o.mode {
		case AdversaryRotate:
			return int(now/RotatePeriod)%o.w.Truth.IDs.N() == int(o.env.PID())
		case AdversarySplit:
			return true // everyone believes they lead
		}
	}
	up := o.w.Truth.EventuallyUp()
	return len(up) > 0 && up[0] == o.env.PID()
}
