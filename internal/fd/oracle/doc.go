// Package oracle provides failure detectors driven by the simulator's
// global knowledge instead of messages. Oracles serve two purposes:
//
//   - They let each consensus algorithm be exercised against the detector
//     *class* rather than one implementation: before a configurable
//     stabilization time the oracle may emit arbitrary (adversarial)
//     outputs that the class permits, and only afterwards the stable ones.
//   - They provide the reduction sources (AP, AΣ, Σ) whose own
//     implementations the paper does not include.
//
// An oracle is constructed per process from a shared World describing the
// ground truth. Oracles exchange no messages; their cost is zero, which
// makes consensus-layer costs in experiments attributable to consensus
// alone.
package oracle
