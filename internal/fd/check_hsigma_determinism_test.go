package fd

import (
	"testing"
)

// TestMonotonicityErrorDeterministic drops several labels at once between
// two samples and demands the violation message be identical across
// repeated checks: the checker used to report whichever lost label a map
// range visited first, and checker error strings reach campaign row bytes.
func TestMonotonicityErrorDeterministic(t *testing.T) {
	g := truth3AAB()
	quora := NewStaticProbe([][]Sample[[]QuorumPair]{nil, nil, nil})
	labels := NewStaticProbe([][]Sample[[]Label]{
		hist([]Label{"la", "lb", "lc", "ld"}, []Label{"la"}),
		nil,
		nil,
	})
	_, err := CheckHSigma(g, quora, labels)
	if err == nil {
		t.Fatal("shrinking label history must fail monotonicity")
	}
	want := err.Error()
	for i := 0; i < 20; i++ {
		_, err := CheckHSigma(g, quora, labels)
		if err == nil || err.Error() != want {
			t.Fatalf("rerun %d: error %q, want stable %q", i, err, want)
		}
	}
	if want != `HΣ monotonicity: process 0 lost label(s) ["lb" "lc" "ld"] at t=2` {
		t.Errorf("unexpected (or unsorted) violation message: %s", want)
	}
}
