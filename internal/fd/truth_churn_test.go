package fd

import (
	"testing"

	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

func churnTruth(t *testing.T) *GroundTruth {
	t.Helper()
	// p0 correct; p1 crash-stop at 10; p2 churns (down [20,30)); p3 churns
	// twice and stays down ([5,15), [40,∞)).
	ids := ident.Assignment{"A", "A", "B", "C"}
	return NewGroundTruthFromChurn(ids, []sim.ChurnEvent{
		{P: 1, At: 10},
		{P: 2, At: 20}, {P: 2, At: 30, Recover: true},
		{P: 3, At: 5}, {P: 3, At: 15, Recover: true}, {P: 3, At: 40},
	})
}

func TestChurnTruthSets(t *testing.T) {
	g := churnTruth(t)
	if got := g.Correct(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Correct = %v, want [0]", got)
	}
	if got := g.EventuallyUp(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("EventuallyUp = %v, want [0 2]", got)
	}
	if !g.IsEventuallyUp(2) || g.IsEventuallyUp(1) || g.IsEventuallyUp(3) || !g.IsEventuallyUp(0) {
		t.Fatal("IsEventuallyUp misclassifies")
	}
	if g.IsCorrect(2) {
		t.Fatal("a recovered churner is not correct in the strict sense")
	}
	want := multiset.New[ident.ID]()
	want.Add(ident.ID("A"))
	want.Add(ident.ID("B"))
	if !g.EventuallyUpIDs().Equal(want) {
		t.Fatalf("EventuallyUpIDs = %v, want {A, B}", g.EventuallyUpIDs())
	}
	if li, ok := g.ExpectedLeader(); !ok || li.ID != "A" || li.Multiplicity != 1 {
		t.Fatalf("ExpectedLeader = %v,%v, want (A, 1) over EventuallyUp", li, ok)
	}
}

func TestChurnTruthAliveAt(t *testing.T) {
	g := churnTruth(t)
	alive := func(tm sim.Time) map[sim.PID]bool {
		out := map[sim.PID]bool{}
		for _, p := range g.AliveAt(tm) {
			out[p] = true
		}
		return out
	}
	a := alive(0)
	if len(a) != 4 {
		t.Fatalf("AliveAt(0) = %v, want all", a)
	}
	a = alive(7) // p3 down [5,15)
	if a[3] || !a[0] || !a[1] || !a[2] {
		t.Fatalf("AliveAt(7) = %v", a)
	}
	a = alive(15) // recovery boundary: up at exactly To
	if !a[3] {
		t.Fatalf("AliveAt(15) = %v: recovery at 15 means up at 15", a)
	}
	a = alive(25) // p1 down (crash-stop), p2 down [20,30)
	if a[1] || a[2] || !a[3] {
		t.Fatalf("AliveAt(25) = %v", a)
	}
	a = alive(100)
	if a[1] || a[3] || !a[0] || !a[2] {
		t.Fatalf("AliveAt(100) = %v", a)
	}
	if got := g.AliveCountAt(25); got != 2 {
		t.Fatalf("AliveCountAt(25) = %d, want 2", got)
	}
}

func TestChurnTruthTimesAndCounts(t *testing.T) {
	g := churnTruth(t)
	if got := g.LastCrashTime(); got != 40 {
		t.Fatalf("LastCrashTime = %d, want 40", got)
	}
	if got := g.LastChange(); got != 40 {
		t.Fatalf("LastChange = %d, want 40", got)
	}
	if got := g.Recoveries(); got != 2 {
		t.Fatalf("Recoveries = %d, want 2", got)
	}
	// A pattern whose last change is a recovery.
	g2 := NewGroundTruthFromChurn(ident.Unique(2), []sim.ChurnEvent{
		{P: 1, At: 10}, {P: 1, At: 50, Recover: true},
	})
	if got := g2.LastChange(); got != 50 {
		t.Fatalf("LastChange = %d, want 50 (the recovery)", got)
	}
}

func TestChurnTruthDegeneratesToCrashStop(t *testing.T) {
	ids := ident.Assignment{"A", "B", "C"}
	fromChurn := NewGroundTruthFromChurn(ids, []sim.ChurnEvent{{P: 1, At: 10}})
	classic := NewGroundTruth(ids, map[sim.PID]sim.Time{1: 10})
	if !samePIDList(fromChurn.Correct(), classic.Correct()) ||
		!samePIDList(fromChurn.EventuallyUp(), classic.EventuallyUp()) {
		t.Fatal("churn truth without recoveries differs from crash-stop truth")
	}
	if !fromChurn.EventuallyUpIDs().Equal(classic.CorrectIDs()) {
		t.Fatal("EventuallyUpIDs != CorrectIDs in crash-stop")
	}
	// Crash-stop: EventuallyUp == Correct by construction.
	if !samePIDList(classic.Correct(), classic.EventuallyUp()) {
		t.Fatal("crash-stop EventuallyUp diverged from Correct")
	}
}

func TestChurnTruthDegenerateEvents(t *testing.T) {
	ids := ident.Assignment{"A", "B"}
	g := NewGroundTruthFromChurn(ids, []sim.ChurnEvent{
		{P: 1, At: 5, Recover: true},                  // recover while up: ignored
		{P: 1, At: 10}, {P: 1, At: 10, Recover: true}, // zero-length outage
	})
	// The instantaneous outage is a real crash (the engine's everCrashed is
	// sticky, so its CorrectSet excludes the process — the truth must
	// agree), but it is unobservable by AliveAt and ends in a recovery.
	if g.IsCorrect(1) {
		t.Fatal("a process that crashed for an instant is not correct")
	}
	if !g.IsEventuallyUp(1) {
		t.Fatal("an instantaneous outage ends in recovery: eventually up")
	}
	if got := g.AliveCountAt(10); got != 2 {
		t.Fatalf("AliveCountAt(10) = %d, want 2 (zero-length outage unobservable)", got)
	}
}

// TestSameInstantCrashRecoverEngineTruthAgree pins the engine and the
// schedule-derived truth to the same classification of an instantaneous
// outage — the seam checkTruthConsistency compares.
func TestSameInstantCrashRecoverEngineTruthAgree(t *testing.T) {
	evs := []sim.ChurnEvent{{P: 1, At: 10}, {P: 1, At: 10, Recover: true}}
	g := NewGroundTruthFromChurn(ident.Unique(3), evs)

	eng := sim.New(sim.Config{IDs: ident.Unique(3), Net: sim.Timely{Delta: 2}, Seed: 1})
	for i := 0; i < 3; i++ {
		eng.AddProcess(quietProc{})
	}
	eng.ApplyChurn(evs)
	eng.Run(50)
	if !samePIDList(eng.CorrectSet(), g.Correct()) {
		t.Fatalf("CorrectSet %v != truth %v", eng.CorrectSet(), g.Correct())
	}
	if !samePIDList(eng.EventuallyUpSet(), g.EventuallyUp()) {
		t.Fatalf("EventuallyUpSet %v != truth %v", eng.EventuallyUpSet(), g.EventuallyUp())
	}
}

type quietProc struct{}

func (quietProc) Init(sim.Environment) {}
func (quietProc) OnMessage(any)        {}
func (quietProc) OnTimer(int)          {}

// TestCheckDiamondHPbarUnderChurn pins the churn-restated class property:
// the final trusted multiset must equal I(EventuallyUp) — I(Correct) is
// now the wrong target when churners recover.
func TestCheckDiamondHPbarUnderChurn(t *testing.T) {
	g := churnTruth(t) // EventuallyUp = {0, 2}: I = {A, B}
	right := multiset.New[ident.ID]()
	right.Add(ident.ID("A"))
	right.Add(ident.ID("B"))
	wrong := multiset.New[ident.ID]() // I(Correct) = {A} alone: stale target
	wrong.Add(ident.ID("A"))

	histories := make([][]Sample[*multiset.Multiset[ident.ID]], 4)
	histories[0] = []Sample[*multiset.Multiset[ident.ID]]{{Time: 60, Value: right}}
	histories[2] = []Sample[*multiset.Multiset[ident.ID]]{{Time: 60, Value: right}}
	if _, err := CheckDiamondHPbar(g, NewStaticProbe(histories)); err != nil {
		t.Fatalf("correct churn output rejected: %v", err)
	}

	stale := make([][]Sample[*multiset.Multiset[ident.ID]], 4)
	stale[0] = []Sample[*multiset.Multiset[ident.ID]]{{Time: 60, Value: wrong}}
	stale[2] = []Sample[*multiset.Multiset[ident.ID]]{{Time: 60, Value: wrong}}
	if _, err := CheckDiamondHPbar(g, NewStaticProbe(stale)); err == nil {
		t.Fatal("output excluding a recovered churner must fail the churn check")
	}
}

func samePIDList(a, b []sim.PID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
