package fd

import (
	"fmt"
	"sort"

	"repro/internal/ident"
	"repro/internal/multiset"
)

// LeaderInfo is the output pair of class HΩ: an identifier ℓ of some
// correct process together with the number of correct processes that carry
// ℓ. Every correct process carrying ℓ is a leader; HΩ elects a *set* of
// homonymous leaders rather than a single process.
type LeaderInfo struct {
	ID           ident.ID
	Multiplicity int
}

// String renders the pair as (ℓ, c).
func (l LeaderInfo) String() string { return fmt.Sprintf("(%s, %d)", l.ID, l.Multiplicity) }

// HOmega is the query interface of class HΩ. ok is false while the
// detector has produced no output yet; outputs before stabilization are
// arbitrary, as the class permits.
type HOmega interface {
	Leader() (info LeaderInfo, ok bool)
}

// Label names a quorum in classes HΣ, AΣ.
type Label string

// QuorumPair is one element (x, m) of an HΣ h_quora variable: the multiset
// m of identifiers is a quorum template for the label x.
type QuorumPair struct {
	Label Label
	M     *multiset.Multiset[ident.ID]
}

// HSigma is the query interface of class HΣ: the h_quora set of
// (label, multiset) pairs and the h_labels set this process participates
// in. Implementations must return defensive copies or immutable values.
type HSigma interface {
	Quora() []QuorumPair
	Labels() []Label
}

// DiamondHPbar is the query interface of class ◇HP̄: the multiset of
// identifiers the process currently trusts, eventually forever equal to
// I(Correct).
type DiamondHPbar interface {
	Trusted() *multiset.Multiset[ident.ID]
}

// DiamondPbar is the classical ◇P̄ for unique-identifier systems: the set
// of trusted identifiers, eventually forever the identifiers of the correct
// processes. (In code it shares the multiset representation; in a unique
// system all multiplicities are one.)
type DiamondPbar = DiamondHPbar

// Sigma is the quorum class Σ generalized, as the paper does, so that the
// trusted value is a multiset of identifiers. Liveness: eventually forever
// trusted ⊆ I(Correct); safety: any two outputs, at any processes and
// times, intersect.
type Sigma interface {
	TrustedQuorum() *multiset.Multiset[ident.ID]
}

// Omega is the classical eventual-leader class Ω for unique systems.
type Omega interface {
	OmegaLeader() (ident.ID, bool)
}

// AOmega is the anonymous leader class AΩ: eventually, permanently, the
// Boolean of exactly one correct process is true and the Booleans of all
// other correct processes are false.
type AOmega interface {
	IsLeader() bool
}

// AP is the anonymous "alive count" class: an upper bound on the number of
// alive processes that eventually equals |Correct| forever.
type AP interface {
	AliveCount() int
}

// APair is one element (x, y) of an AΣ a_sigma variable: label x names a
// quorum of y processes that know x.
type APair struct {
	Label Label
	Y     int
}

// ASigma is the anonymous quorum class AΣ.
type ASigma interface {
	ASigma() []APair
}

// AliveList is the class 𝔈 of Definition 1 (unique-identifier systems): a
// sequence of identifiers such that eventually the correct processes'
// identifiers permanently occupy the prefix (rank ≤ |Correct|).
type AliveList interface {
	Alive() []ident.ID
}

// Rank returns the 1-based position of id in the alive list, or 0 if
// absent (the paper's rank is +∞ for absent identifiers; 0 encodes that
// sentinel and callers must treat 0 as "worst").
func Rank(id ident.ID, alive []ident.ID) int {
	for i, x := range alive {
		if x == id {
			return i + 1
		}
	}
	return 0
}

// MaxRank returns the worst rank among ids in the alive list, treating
// absence as +∞ (it returns len(alive)+1+missing so that any present set
// beats any set with absentees deterministically).
func MaxRank(ids []ident.ID, alive []ident.ID) int {
	worst := 0
	missing := 0
	for _, id := range ids {
		r := Rank(id, alive)
		if r == 0 {
			missing++
			continue
		}
		if r > worst {
			worst = r
		}
	}
	if missing > 0 {
		return len(alive) + 1 + missing
	}
	return worst
}

// SortLabels returns a sorted copy, the canonical form used to compare
// h_labels snapshots (Fig. 9's "current_labels ≠ D2.h_labels" guard).
func SortLabels(ls []Label) []Label {
	out := make([]Label, len(ls))
	copy(out, ls)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LabelsEqual compares two label sets disregarding order.
func LabelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	// Fast path: detectors almost always report labels in a stable order,
	// so an elementwise scan usually decides without the sorted copies.
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		return true
	}
	as, bs := SortLabels(a), SortLabels(b)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
