// Package replay re-verifies recorded executions offline: from a v2 trace
// (scenario fingerprint + event stream) alone it rebuilds the scenario the
// live run verified against — reusing the same spec parsers and defaulting
// rules as cmd/hdsim — reconstructs every checker input from the events,
// and re-runs the checkers. The rendered verdict block is produced by the
// same renderers the live driver prints through, so a healthy replay is
// byte-identical to the live report (minus engine-only counters), and any
// difference is a determinism regression, not a formatting accident.
package replay

import (
	"fmt"

	hds "repro"
	"repro/internal/cliutil"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Scenario is a trace's fingerprint resolved into runnable terms: the
// identifier assignment, the effective network model, the fault inputs and
// the per-algorithm horizon — everything the checkers need, derived with
// exactly cmd/hdsim's flag-processing rules so a spec string means the
// same thing live and offline.
type Scenario struct {
	Meta    *trace.Meta
	IDs     hds.Assignment
	Crashes map[hds.PID]hds.Time
	Churn   hds.ChurnSpec
	// Net is the effective network model (after the default chain and any
	// partition wrap) — what the run actually used and what headers print.
	Net sim.Model
	// Horizon is the effective virtual-time cap after per-algorithm
	// defaulting; fault schedules are validated against it.
	Horizon hds.Time
}

// BuildScenario resolves a scenario fingerprint. It mirrors cmd/hdsim:
// the base network is Async{MaxDelay: 8}, -gst>0 switches to PartialSync,
// an explicit -net spec overrides both, partitions wrap the result; ohp
// ignores the chain unless -net or -gst was given (its own defaults are
// PartialSync{GST, Delta} crash-stop and PartialSync{Delta: 3} under
// churn); horizons default to 3,000,000 for consensus, 5,000 for ohp and
// 10 periods for heartbeat.
func BuildScenario(m *trace.Meta) (*Scenario, error) {
	if m == nil {
		return nil, fmt.Errorf("replay: trace carries no scenario metadata (recorded by an older hdsim?)")
	}
	switch m.Algo {
	case "fig8", "fig9", "fig9-anon", "ohp", "heartbeat":
	default:
		return nil, fmt.Errorf("replay: unknown algorithm %q in trace metadata", m.Algo)
	}
	sc := &Scenario{Meta: m, IDs: hds.BalancedIDs(m.N, m.L)}
	var err error
	if sc.Crashes, err = cliutil.ParseCrashes(m.Crashes); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if sc.Churn, err = cliutil.ParseChurn(m.Churn); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}

	var net sim.Model = hds.Async{MaxDelay: 8}
	if m.GST > 0 {
		net = hds.PartialSync{GST: hds.Time(m.GST), Delta: hds.Time(m.Delta)}
	}
	if m.Net != "" {
		if net, err = cliutil.ParseNet(m.Net); err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}
	}
	if m.Partitions != "" {
		ws, err := cliutil.ParsePartitions(m.Partitions)
		if err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}
		net = sim.Partition{Base: net, Windows: ws}
	}
	sc.Net = net

	sc.Horizon = hds.Time(m.Horizon)
	switch m.Algo {
	case "ohp":
		// The override rule is the live driver's: the chain above applies
		// only when -net or -gst was given; otherwise ohp has its own
		// defaults (and renders them with the raw -delta, like the live
		// header does).
		if netGiven := m.Net != "" || m.GST > 0; !netGiven {
			if sc.Churn.Fraction > 0 {
				sc.Net = hds.PartialSync{Delta: 3}
			} else {
				sc.Net = hds.PartialSync{GST: hds.Time(m.GST), Delta: hds.Time(m.Delta)}
			}
		}
		if sc.Horizon <= 0 {
			sc.Horizon = 5000
		}
	case "heartbeat":
		if sc.Horizon <= 0 {
			period := hds.Time(m.Period)
			if period <= 0 {
				period = 10
			}
			sc.Horizon = 10 * period
		}
	default: // consensus
		if sc.Horizon <= 0 {
			sc.Horizon = 3_000_000
		}
	}
	return sc, nil
}
