package replay

import (
	"fmt"
	"io"

	hds "repro"
	"repro/internal/cliutil"
)

// The report renderers below are the single source of the driver's output
// format: cmd/hdsim prints live results through them and Verify prints
// replayed results through them, so live and replay reports can differ
// only in the verified numbers — never in formatting. Engine-only lines
// (event counts, queue high-water) exist solely on the live side and are
// gated by the `engine` parameter.

// WriteConsensusHeader writes the single-run consensus header line.
func WriteConsensusHeader(w io.Writer, sc *Scenario) {
	m := sc.Meta
	fmt.Fprintf(w, "algo=%s n=%d ℓ=%d ids=%v crashes=%s churn=%s seed=%d\n",
		m.Algo, m.N, m.L, sc.IDs, m.Crashes, m.Churn, m.Seed)
}

// ChurnInfo carries the churn-specific lines of a consensus block.
type ChurnInfo struct {
	EventuallyUp, Correct int
	Recoveries            int
	LastChange            hds.Time
	DecideAfterChurn      hds.Time
}

// WriteConsensusBlock writes the verified-consensus report; churn is nil
// for crash-stop runs.
func WriteConsensusBlock(w io.Writer, n int, rep hds.Report, churn *ChurnInfo, stats hds.Stats) {
	if churn != nil {
		fmt.Fprintln(w, "consensus verified ✔ (termination over the eventually-up set, validity, agreement, decision stability)")
	} else {
		fmt.Fprintln(w, "consensus verified ✔ (termination, validity, agreement)")
	}
	fmt.Fprintf(w, "  decided value:    %q\n", rep.Value)
	fmt.Fprintf(w, "  deciders:         %d\n", rep.Deciders)
	fmt.Fprintf(w, "  rounds:           %d\n", rep.MaxRound)
	fmt.Fprintf(w, "  decisions span:   t=%d .. t=%d\n", rep.FirstDecision, rep.LastDecision)
	if churn != nil {
		fmt.Fprintf(w, "  eventually up:    %d/%d (correct in the strict sense: %d)\n", churn.EventuallyUp, n, churn.Correct)
		fmt.Fprintf(w, "  recoveries:       %d\n", churn.Recoveries)
		fmt.Fprintf(w, "  last churn event: t=%d\n", churn.LastChange)
		fmt.Fprintf(w, "  decide after churn: +%d\n", churn.DecideAfterChurn)
	}
	fmt.Fprintf(w, "  broadcasts:       %d total — %s\n", stats.Broadcasts, cliutil.FormatTagCounts(stats.ByTag))
	fmt.Fprintf(w, "  deliveries/drops: %d/%d\n", stats.Delivered, stats.Dropped)
}

// WriteOHPHeader writes the standalone-detector header line (crash-stop or
// churn form, depending on the scenario).
func WriteOHPHeader(w io.Writer, sc *Scenario) {
	if sc.Churn.Fraction > 0 {
		fmt.Fprintf(w, "algo=ohp ids=%v churn=%s net=%s seed=%d\n", sc.IDs, sc.Churn, sc.Net, sc.Meta.Seed)
		return
	}
	fmt.Fprintf(w, "algo=ohp ids=%v crashes=%d net=%s seed=%d\n", sc.IDs, len(sc.Crashes), sc.Net, sc.Meta.Seed)
}

// WriteOHPBlock writes the crash-stop detector report.
func WriteOHPBlock(w io.Writer, res hds.OHPResult) {
	fmt.Fprintln(w, "detector verified ✔ (◇HP̄ + HΩ)")
	fmt.Fprintf(w, "  ◇HP̄ stabilized:  t=%d\n", res.TrustedStabilization)
	fmt.Fprintf(w, "  HΩ stabilized:    t=%d  leader=%s\n", res.LeaderStabilization, res.Leader)
	fmt.Fprintf(w, "  broadcasts:       %d — %s\n", res.Stats.Broadcasts, cliutil.FormatTagCounts(res.Stats.ByTag))
}

// WriteChurnOHPBlock writes the churn detector report.
func WriteChurnOHPBlock(w io.Writer, n int, res hds.ChurnOHPResult) {
	fmt.Fprintln(w, "detector verified ✔ (◇HP̄ + HΩ over the eventually-up set)")
	fmt.Fprintf(w, "  eventually up:    %d/%d (correct in the strict sense: %d)\n", res.EventuallyUp, n, res.Correct)
	fmt.Fprintf(w, "  recoveries:       %d\n", res.Recoveries)
	fmt.Fprintf(w, "  last change:      t=%d\n", res.LastChange)
	fmt.Fprintf(w, "  ◇HP̄ re-stab:     t=%d\n", res.TrustedRestab)
	fmt.Fprintf(w, "  HΩ re-stab:       t=%d  leader=%s\n", res.LeaderRestab, res.Leader)
	fmt.Fprintf(w, "  broadcasts:       %d — %s\n", res.Stats.Broadcasts, cliutil.FormatTagCounts(res.Stats.ByTag))
}

// WriteHeartbeatHeader writes the heartbeat header line.
func WriteHeartbeatHeader(w io.Writer, sc *Scenario) {
	m := sc.Meta
	fmt.Fprintf(w, "algo=heartbeat n=%d ℓ=%d beaters=%s churn=%s net=%s period=%d seed=%d\n",
		m.N, m.L, BeatersLabel(m.Beaters, m.N), sc.Churn, sc.Net, m.Period, m.Seed)
}

// BeatersLabel renders the -beaters flag for headers ("all" or a count).
func BeatersLabel(beaters, n int) string {
	if beaters <= 0 || beaters >= n {
		return "all"
	}
	return fmt.Sprintf("%d", beaters)
}

// WriteHeartbeatBlock writes the heartbeat report. engine selects the live
// form: the live driver additionally cross-checks the engine's fault
// bookkeeping and prints the engine-only counters (events processed, queue
// high-water) that a trace cannot carry; a replay verifies the
// trace-derivable properties and prints only the shared lines.
func WriteHeartbeatBlock(w io.Writer, n int, res hds.HeartbeatResult, engine bool) {
	if engine {
		fmt.Fprintln(w, "heartbeat churn verified ✔ (fault bookkeeping vs schedule truth, heard-sum vs delivered, delivery liveness)")
	} else {
		fmt.Fprintln(w, "heartbeat churn verified ✔ (recoveries vs schedule truth, delivery liveness)")
	}
	fmt.Fprintf(w, "  eventually up:    %d/%d (correct in the strict sense: %d)\n", res.EventuallyUp, n, res.Correct)
	fmt.Fprintf(w, "  recoveries:       %d\n", res.Recoveries)
	if engine {
		fmt.Fprintf(w, "  events processed: %d (stop: %s)\n", res.Processed, res.Stopped)
	}
	fmt.Fprintf(w, "  deliveries/drops: %d/%d\n", res.Stats.Delivered, res.Stats.Dropped)
	if engine {
		fmt.Fprintf(w, "  queue high-water: %d entries (lazy fan-out: tracks broadcasts, not n² copies)\n", res.MaxQueue)
	}
}
