package replay_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	hds "repro"
	"repro/internal/cliutil"
	"repro/internal/fd/oracle"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The differential contract: a live run's verdict report and the report
// Verify re-derives from that run's trace alone must be byte-identical.
// The live side below mirrors cmd/hdsim's experiment construction and
// header format strings independently of BuildScenario, so a drift in the
// scenario-resolution rules, the checker reconstruction, or the stats
// re-aggregation all surface as a byte diff.

// chainNet mirrors the driver's network defaulting chain.
func chainNet(t testing.TB, m *trace.Meta) sim.Model {
	t.Helper()
	var net sim.Model = hds.Async{MaxDelay: 8}
	if m.GST > 0 {
		net = hds.PartialSync{GST: m.GST, Delta: m.Delta}
	}
	if m.Net != "" {
		var err error
		if net, err = cliutil.ParseNet(m.Net); err != nil {
			t.Fatal(err)
		}
	}
	if m.Partitions != "" {
		ws, err := cliutil.ParsePartitions(m.Partitions)
		if err != nil {
			t.Fatal(err)
		}
		net = sim.Partition{Base: net, Windows: ws}
	}
	return net
}

// liveRun executes the scenario the way cmd/hdsim would — same experiment
// construction, same defaulting, same header format — with a retaining
// recorder, and returns the rendered live report plus the recorded events.
func liveRun(t testing.TB, m *trace.Meta) (string, []trace.Event) {
	t.Helper()
	ids := hds.BalancedIDs(m.N, m.L)
	sched, err := cliutil.ParseCrashes(m.Crashes)
	if err != nil {
		t.Fatal(err)
	}
	churn, err := cliutil.ParseChurn(m.Churn)
	if err != nil {
		t.Fatal(err)
	}
	net := chainNet(t, m)
	rec := trace.NewRecorder()
	var buf bytes.Buffer

	switch m.Algo {
	case "ohp":
		netGiven := m.Net != "" || m.GST > 0
		if churn.Fraction > 0 {
			var cnet sim.Model
			if netGiven {
				cnet = net
			}
			effective := cnet
			if effective == nil {
				effective = sim.PartialSync{Delta: 3}
			}
			fmt.Fprintf(&buf, "algo=ohp ids=%v churn=%s net=%s seed=%d\n", ids, churn, effective, m.Seed)
			res, err := hds.RunChurnOHP(hds.ChurnOHPExperiment{
				IDs: ids, Churn: churn, Net: cnet, Seed: m.Seed, Horizon: m.Horizon, Trace: rec,
			})
			if err != nil {
				t.Fatal(err)
			}
			replay.WriteChurnOHPBlock(&buf, m.N, res)
			break
		}
		exp := hds.OHPExperiment{
			IDs: ids, Crashes: sched, GST: m.GST, Delta: m.Delta,
			Seed: m.Seed, Horizon: m.Horizon, Trace: rec,
		}
		var effective sim.Model = sim.PartialSync{GST: m.GST, Delta: m.Delta}
		if netGiven {
			exp.Net = net
			effective = net
		}
		fmt.Fprintf(&buf, "algo=ohp ids=%v crashes=%d net=%s seed=%d\n", ids, len(sched), effective, m.Seed)
		res, err := hds.RunOHP(exp)
		if err != nil {
			t.Fatal(err)
		}
		replay.WriteOHPBlock(&buf, res)

	case "heartbeat":
		fmt.Fprintf(&buf, "algo=heartbeat n=%d ℓ=%d beaters=%s churn=%s net=%s period=%d seed=%d\n",
			m.N, m.L, replay.BeatersLabel(m.Beaters, m.N), churn, net, m.Period, m.Seed)
		res, err := hds.RunHeartbeatChurn(hds.HeartbeatExperiment{
			IDs: ids, Churn: churn, Net: net, Period: m.Period, Seed: m.Seed,
			Horizon: m.Horizon, Beaters: m.Beaters, MaxEvents: m.MaxEvents,
			Trace: rec, StreamVerify: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The replay form: the engine-only counters cannot be compared.
		replay.WriteHeartbeatBlock(&buf, m.N, res, false)

	default: // consensus
		adv := map[string]oracle.Adversary{
			"none": oracle.AdversaryNone, "rotate": oracle.AdversaryRotate, "split": oracle.AdversarySplit,
		}[m.Adversary]
		horizon := m.Horizon
		if horizon <= 0 {
			horizon = 3_000_000
		}
		fmt.Fprintf(&buf, "algo=%s n=%d ℓ=%d ids=%v crashes=%s churn=%s seed=%d\n",
			m.Algo, m.N, m.L, ids, m.Crashes, m.Churn, m.Seed)
		var rep hds.Report
		var stats hds.Stats
		var churnRes *hds.ChurnConsensusResult
		switch m.Algo {
		case "fig8":
			src := hds.OracleDetectors
			if m.Detectors == "mp" {
				src = hds.MessagePassingDetectors
			}
			if churn.Fraction > 0 {
				res, err := hds.RunChurnFig8(hds.ChurnFig8Experiment{
					IDs: ids, T: m.T, Churn: churn, Crashes: sched, Net: net,
					Detectors: src, Stabilize: m.Stabilize, Adversary: adv, Seed: m.Seed,
					Horizon: horizon, Trace: rec,
				})
				if err != nil {
					t.Fatal(err)
				}
				churnRes, rep, stats = &res, res.Report, res.Stats
			} else if rep, stats, err = hds.RunFig8(hds.Fig8Experiment{
				IDs: ids, T: m.T, Crashes: sched, Net: net,
				Detectors: src, Stabilize: m.Stabilize, Adversary: adv, Seed: m.Seed,
				Horizon: horizon, Trace: rec,
			}); err != nil {
				t.Fatal(err)
			}
		default: // fig9, fig9-anon
			if churn.Fraction > 0 {
				res, err := hds.RunChurnFig9(hds.ChurnFig9Experiment{
					IDs: ids, Churn: churn, Crashes: sched, Net: net,
					AnonymousBaseline: m.Algo == "fig9-anon",
					Stabilize:         m.Stabilize, Adversary: adv, Seed: m.Seed,
					Horizon: horizon, Trace: rec,
				})
				if err != nil {
					t.Fatal(err)
				}
				churnRes, rep, stats = &res, res.Report, res.Stats
			} else if rep, stats, err = hds.RunFig9(hds.Fig9Experiment{
				IDs: ids, Crashes: sched, Net: net,
				AnonymousBaseline: m.Algo == "fig9-anon",
				Stabilize:         m.Stabilize, Adversary: adv, Seed: m.Seed,
				Horizon: horizon, Trace: rec,
			}); err != nil {
				t.Fatal(err)
			}
		}
		var ci *replay.ChurnInfo
		if churnRes != nil {
			ci = &replay.ChurnInfo{
				EventuallyUp: churnRes.EventuallyUp, Correct: churnRes.Correct,
				Recoveries: churnRes.Recoveries, LastChange: churnRes.LastChange,
				DecideAfterChurn: churnRes.DecideAfterChurn,
			}
		}
		replay.WriteConsensusBlock(&buf, m.N, rep, ci, stats)
	}
	return buf.String(), rec.Events()
}

// grid is every (algorithm, fault pattern, network) shape the driver can
// record, each with the flag-level fingerprint hdsim would stamp on the
// trace. Every detector source, both churn and crash-stop fault inputs,
// and all four network families (async, psync, lossy, partition) appear.
var grid = []struct {
	name string
	meta *trace.Meta
}{
	{"fig8_oracle_async_crashes", &trace.Meta{
		Algo: "fig8", N: 5, L: 2, T: 2, Crashes: "1:40,3:60",
		Seed: 1, Stabilize: 100, Adversary: "rotate", Delta: 3,
	}},
	{"fig8_mp_psync", &trace.Meta{
		Algo: "fig8", N: 5, L: 2, T: 2, Crashes: "0:50", GST: 200, Delta: 5,
		Seed: 2, Stabilize: 100, Adversary: "rotate", Detectors: "mp",
	}},
	{"fig8_oracle_churn_psync", &trace.Meta{
		Algo: "fig8", N: 5, L: 3, T: 2, Churn: "0.4:1", GST: 100, Delta: 4,
		Seed: 3, Stabilize: 100, Adversary: "rotate",
	}},
	{"fig9_partition_split", &trace.Meta{
		Algo: "fig9", N: 4, L: 2, Partitions: "0-120@2",
		Seed: 4, Stabilize: 150, Adversary: "split", Delta: 3,
	}},
	{"fig9anon_async", &trace.Meta{
		Algo: "fig9-anon", N: 4, L: 1,
		Seed: 5, Stabilize: 100, Adversary: "none", Delta: 3,
	}},
	{"fig9_churn_async", &trace.Meta{
		Algo: "fig9", N: 6, L: 3, Churn: "0.34:1",
		Seed: 6, Stabilize: 100, Adversary: "rotate", Delta: 3,
	}},
	{"ohp_crashes_default_net", &trace.Meta{
		Algo: "ohp", N: 5, L: 2, Crashes: "1:100,4:200", Delta: 3, Seed: 7,
	}},
	{"ohp_crashes_psync_net", &trace.Meta{
		Algo: "ohp", N: 5, L: 2, Crashes: "2:150", Net: "psync:50:4", Delta: 3, Seed: 8,
	}},
	{"ohp_churn_default_net", &trace.Meta{
		Algo: "ohp", N: 6, L: 2, Churn: "0.33:1", Delta: 3, Seed: 9,
	}},
	{"ohp_churn_net_override", &trace.Meta{
		Algo: "ohp", N: 5, L: 2, Churn: "0.4:1", Net: "psync:0:2", Delta: 3, Seed: 10,
	}},
	{"heartbeat_churn_lossy_beaters", &trace.Meta{
		Algo: "heartbeat", N: 40, L: 4, Churn: "0.3:1", Net: "lossy:0.2:6",
		Period: 15, Beaters: 5, Seed: 11, Delta: 3,
	}},
}

func TestLiveReplayEquivalence(t *testing.T) {
	for _, tc := range grid {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			live, events := liveRun(t, tc.meta)
			var buf bytes.Buffer
			if err := replay.Verify(tc.meta, trace.NewSliceSource(events), &buf); err != nil {
				t.Fatalf("replay verify: %v\nlive report:\n%s", err, live)
			}
			if got := buf.String(); got != live {
				t.Errorf("replay report differs from live:\n--- live ---\n%s--- replay ---\n%s", live, got)
			}
		})
	}
}

// TestLiveReplayEquivalenceBinary round-trips the live events through the
// v2 binary encoding before verifying: the full product pipeline
// (record → spill → reopen → verify) must preserve the verdict bytes too.
func TestLiveReplayEquivalenceBinary(t *testing.T) {
	m := grid[0].meta
	live, events := liveRun(t, m)

	var file bytes.Buffer
	sink := trace.NewBinarySink(&file)
	sink.SetMeta(m)
	if err := sink.Spill(events); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := trace.NewBinaryReader(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := drainAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta() == nil || *r.Meta() != *m {
		t.Fatalf("metadata did not survive the binary round trip: %+v", r.Meta())
	}
	var buf bytes.Buffer
	if err := replay.Verify(r.Meta(), trace.NewSliceSource(got), &buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != live {
		t.Errorf("binary replay differs from live:\n--- live ---\n%s--- replay ---\n%s", live, buf.String())
	}
}

func drainAll(src trace.EventSource) ([]trace.Event, error) {
	var out []trace.Event
	err := trace.Drain(src, func(e trace.Event) error {
		out = append(out, e)
		return nil
	})
	return out, err
}

// TestVerifyDetectsTamperedTrace plants violations in healthy traces and
// checks Verify rejects them with the live checkers' own messages.
func TestVerifyDetectsTamperedTrace(t *testing.T) {
	m := grid[0].meta
	_, events := liveRun(t, m)

	t.Run("agreement", func(t *testing.T) {
		tampered := append([]trace.Event(nil), events...)
		flipped := false
		for i, e := range tampered {
			if e.Kind == trace.KindDecide && !flipped {
				tampered[i].Detail = "vBOGUS r=1"
				flipped = true
			}
		}
		if !flipped {
			t.Fatal("trace has no decide events")
		}
		err := replay.Verify(m, trace.NewSliceSource(tampered), new(bytes.Buffer))
		if err == nil {
			t.Fatal("tampered trace verified")
		}
		if !strings.Contains(err.Error(), "check:") {
			t.Fatalf("want a checker violation, got: %v", err)
		}
	})

	t.Run("instability", func(t *testing.T) {
		tampered := append([]trace.Event(nil), events...)
		for _, e := range events {
			if e.Kind == trace.KindDecide {
				dup := e
				dup.Detail = "vOTHER r=9"
				dup.Time++
				tampered = append(tampered, dup)
				break
			}
		}
		err := replay.Verify(m, trace.NewSliceSource(tampered), new(bytes.Buffer))
		if err == nil || !strings.Contains(err.Error(), "changed its decision") {
			t.Fatalf("want a stability violation, got: %v", err)
		}
	})

	t.Run("missing recovery", func(t *testing.T) {
		hb := grid[len(grid)-1].meta
		_, hbEvents := liveRun(t, hb)
		pruned := make([]trace.Event, 0, len(hbEvents))
		dropped := false
		for _, e := range hbEvents {
			if e.Kind == trace.KindRecover && !dropped {
				dropped = true
				continue
			}
			pruned = append(pruned, e)
		}
		if !dropped {
			t.Fatal("heartbeat trace has no recover events")
		}
		err := replay.Verify(hb, trace.NewSliceSource(pruned), new(bytes.Buffer))
		if err == nil || !strings.Contains(err.Error(), "recoveries") {
			t.Fatalf("want a recovery-count violation, got: %v", err)
		}
	})

	t.Run("no metadata", func(t *testing.T) {
		err := replay.Verify(nil, trace.NewSliceSource(events), new(bytes.Buffer))
		if err == nil || !strings.Contains(err.Error(), "no scenario metadata") {
			t.Fatalf("want the missing-metadata error, got: %v", err)
		}
	})
}

// BenchmarkReplayVerify measures offline re-verification throughput over
// an in-memory heartbeat trace (the population-scale workload shape).
func BenchmarkReplayVerify(b *testing.B) {
	m := &trace.Meta{
		Algo: "heartbeat", N: 500, L: 10, Churn: "0.2:1",
		Period: 15, Beaters: 20, Seed: 1, Delta: 3,
	}
	_, events := liveRun(b, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := replay.Verify(m, trace.NewSliceSource(events), new(bytes.Buffer)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(events)), "events/op")
}
