package replay

import (
	"fmt"
	"io"

	hds "repro"
	"repro/internal/check"
	"repro/internal/fd"
	"repro/internal/trace"
)

// Verify re-runs a recorded execution's property checkers from its trace
// alone — no engine, no re-execution — and writes the verdict report to w
// in the live driver's format. The event stream is consumed in one pass
// with state linear in the process count (never in the event count), so a
// population-scale spilled trace replays in constant memory exactly like
// it was recorded. A verification failure is returned as an error, with
// the same message the live checkers would have produced.
func Verify(m *trace.Meta, src trace.EventSource, w io.Writer) error {
	sc, err := BuildScenario(m)
	if err != nil {
		return err
	}
	switch m.Algo {
	case "fig8", "fig9", "fig9-anon":
		return verifyConsensus(sc, src, w)
	case "ohp":
		return verifyOHP(sc, src, w)
	case "heartbeat":
		return verifyHeartbeat(sc, src, w)
	}
	panic("unreachable: BuildScenario validated the algorithm")
}

// statsOf re-aggregates the execution statistics the live recorder kept:
// Record's counting path is the same code, so the replayed Stats agree
// with the live ones by construction.
type statsOf = trace.Recorder

func verifyConsensus(sc *Scenario, src trace.EventSource, w io.Writer) error {
	WriteConsensusHeader(w, sc)
	n := sc.Meta.N
	tracker := check.NewOutcomeTracker(n)
	rec := &statsOf{}
	recoveries := 0
	if err := trace.Drain(src, func(e trace.Event) error {
		rec.Record(e)
		if e.Kind == trace.KindRecover {
			recoveries++
		}
		tracker.Observe(e)
		return nil
	}); err != nil {
		return err
	}
	if err := tracker.Err(); err != nil {
		return err
	}

	proposals := hds.DefaultProposals(n)
	outcomes := tracker.Outcomes()
	var churn *ChurnInfo
	var rep hds.Report
	if sc.Churn.Fraction > 0 {
		_, truth, err := hds.FaultPattern(sc.IDs, sc.Churn, sc.Crashes, sc.Horizon)
		if err != nil {
			return err
		}
		if rep, err = check.ConsensusChurn(truth, proposals, outcomes); err != nil {
			return err
		}
		churn = &ChurnInfo{
			EventuallyUp: len(truth.EventuallyUp()),
			Correct:      len(truth.Correct()),
			Recoveries:   recoveries,
			LastChange:   truth.LastChange(),
		}
		if rep.LastDecision > churn.LastChange {
			churn.DecideAfterChurn = rep.LastDecision - churn.LastChange
		}
	} else {
		truth := fd.NewGroundTruth(sc.IDs, sc.Crashes)
		var err error
		if rep, err = check.Consensus(truth, proposals, outcomes); err != nil {
			return err
		}
	}
	WriteConsensusBlock(w, n, rep, churn, rec.Stats())
	return nil
}

func verifyOHP(sc *Scenario, src trace.EventSource, w io.Writer) error {
	WriteOHPHeader(w, sc)
	n := sc.Meta.N
	trusted := fd.NewTrustedReplayer(n)
	leader := fd.NewLeaderReplayer(n)
	rec := &statsOf{}
	recoveries := 0
	if err := trace.Drain(src, func(e trace.Event) error {
		rec.Record(e)
		if e.Kind == trace.KindRecover {
			recoveries++
		}
		trusted.Observe(e)
		leader.Observe(e)
		return nil
	}); err != nil {
		return err
	}
	if err := trusted.Err(); err != nil {
		return err
	}
	if err := leader.Err(); err != nil {
		return err
	}

	if sc.Churn.Fraction > 0 {
		_, truth, err := hds.FaultPattern(sc.IDs, sc.Churn, nil, sc.Horizon)
		if err != nil {
			return err
		}
		resT, err := fd.CheckDiamondHPbar(truth, trusted.Probe())
		if err != nil {
			return err
		}
		resL, err := fd.CheckHOmega(truth, leader.Probe())
		if err != nil {
			return err
		}
		res := hds.ChurnOHPResult{
			LastChange:    truth.LastChange(),
			TrustedRestab: resT.StabilizationTime,
			LeaderRestab:  resL.StabilizationTime,
			EventuallyUp:  len(truth.EventuallyUp()),
			Correct:       len(truth.Correct()),
			Recoveries:    recoveries,
			Stats:         rec.Stats(),
		}
		if up := truth.EventuallyUp(); len(up) > 0 {
			res.Leader, _ = leader.Probe().Last(up[0])
		}
		WriteChurnOHPBlock(w, n, res)
		return nil
	}

	truth := fd.NewGroundTruth(sc.IDs, sc.Crashes)
	resT, err := fd.CheckDiamondHPbar(truth, trusted.Probe())
	if err != nil {
		return err
	}
	resL, err := fd.CheckHOmega(truth, leader.Probe())
	if err != nil {
		return err
	}
	res := hds.OHPResult{
		TrustedStabilization: resT.StabilizationTime,
		LeaderStabilization:  resL.StabilizationTime,
		Stats:                rec.Stats(),
	}
	if correct := truth.Correct(); len(correct) > 0 {
		res.Leader, _ = leader.Probe().Last(correct[0])
	}
	WriteOHPBlock(w, res)
	return nil
}

func verifyHeartbeat(sc *Scenario, src trace.EventSource, w io.Writer) error {
	WriteHeartbeatHeader(w, sc)
	n := sc.Meta.N
	heard := make([]int, n)
	rec := &statsOf{}
	recoveries := 0
	if err := trace.Drain(src, func(e trace.Event) error {
		rec.Record(e)
		switch e.Kind {
		case trace.KindDeliver:
			if e.PID >= 0 && e.PID < n {
				heard[e.PID]++
			}
		case trace.KindRecover:
			recoveries++
		}
		return nil
	}); err != nil {
		return err
	}

	schedule, truth, err := hds.FaultPattern(sc.IDs, sc.Churn, nil, sc.Horizon)
	if err != nil {
		return err
	}
	want := 0
	for _, ev := range schedule {
		if ev.Recover {
			want++
		}
	}
	if recoveries != want {
		return fmt.Errorf("replay: trace records %d recoveries but the schedule fires %d", recoveries, want)
	}
	for _, p := range truth.EventuallyUp() {
		if heard[p] == 0 {
			return fmt.Errorf("hds: eventually-up process %d heard no beats", p)
		}
	}
	res := hds.HeartbeatResult{
		EventuallyUp: len(truth.EventuallyUp()),
		Correct:      len(truth.Correct()),
		Recoveries:   recoveries,
		Stats:        rec.Stats(),
	}
	WriteHeartbeatBlock(w, n, res, false)
	return nil
}
