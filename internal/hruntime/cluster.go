package hruntime

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/ident"
	"repro/internal/trace"
)

// Options configure a Cluster.
type Options struct {
	// MinDelay/MaxDelay bound each copy's delivery latency.
	// Defaults: 200µs .. 2ms.
	MinDelay, MaxDelay time.Duration
	// GST, when positive, enables partially synchronous behaviour: copies
	// sent before start+GST are dropped with probability PreLoss (0 keeps
	// links reliable, as the consensus layer requires) or delayed up to
	// 4×MaxDelay; copies sent after arrive within MaxDelay.
	GST     time.Duration
	PreLoss float64
	// Seed drives the delay/loss randomness.
	Seed int64
	// Recorder, when non-nil, receives trace events.
	Recorder *trace.Recorder
	// InboxSize is the per-process buffer (default 4096).
	InboxSize int
}

// Cluster is the live broadcast network for one run.
type Cluster struct {
	ids   ident.Assignment
	opts  Options
	start time.Time

	mu       sync.Mutex
	rng      *rand.Rand
	crashed  []bool
	isClosed bool

	inboxes []chan any
	done    chan struct{}
	wg      sync.WaitGroup
	closed  sync.Once
}

// NewCluster builds the network for the given identity assignment.
func NewCluster(ids ident.Assignment, opts Options) *Cluster {
	if err := ids.Validate(); err != nil {
		panic("hruntime: " + err.Error())
	}
	if opts.MinDelay <= 0 {
		opts.MinDelay = 200 * time.Microsecond
	}
	if opts.MaxDelay < opts.MinDelay {
		opts.MaxDelay = 10 * opts.MinDelay
	}
	if opts.InboxSize <= 0 {
		opts.InboxSize = 4096
	}
	c := &Cluster{
		ids:     ids,
		opts:    opts,
		start:   time.Now(),
		rng:     rand.New(rand.NewSource(opts.Seed)),
		crashed: make([]bool, ids.N()),
		inboxes: make([]chan any, ids.N()),
		done:    make(chan struct{}),
	}
	for i := range c.inboxes {
		c.inboxes[i] = make(chan any, opts.InboxSize)
	}
	return c
}

// N returns the system size (the runtime knows it; whether an algorithm
// may use it is the algorithm's contract).
func (c *Cluster) N() int { return c.ids.N() }

// ID returns id(p) for process index p.
func (c *Cluster) ID(p int) ident.ID { return c.ids[p] }

// IDs returns the identity assignment.
func (c *Cluster) IDs() ident.Assignment { return c.ids }

// Inbox returns process p's receive channel.
func (c *Cluster) Inbox(p int) <-chan any { return c.inboxes[p] }

// Crash marks p crashed: its future broadcasts are ignored and nothing
// more is delivered to it.
func (c *Cluster) Crash(p int) {
	c.mu.Lock()
	already := c.crashed[p]
	c.crashed[p] = true
	c.mu.Unlock()
	if !already && c.opts.Recorder != nil {
		c.opts.Recorder.Record(trace.Event{Time: c.sinceStart(), Kind: trace.KindCrash, PID: p})
	}
}

// Crashed reports whether p crashed.
func (c *Cluster) Crashed(p int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed[p]
}

// Broadcast sends payload from process `from` to every process including
// the sender, each copy after its own random delay. Crashed senders are
// silently ignored (they "take no steps").
func (c *Cluster) Broadcast(from int, payload any) {
	c.mu.Lock()
	if c.crashed[from] || c.isClosed {
		c.mu.Unlock()
		return
	}
	type plan struct {
		to    int
		delay time.Duration
		drop  bool
	}
	plans := make([]plan, 0, len(c.inboxes))
	for to := range c.inboxes {
		d, ok := c.drawDelay()
		plans = append(plans, plan{to: to, delay: d, drop: !ok})
	}
	// Register deliveries while still holding the lock: Close sets
	// isClosed under the same lock before waiting, so no wg.Add can race
	// its wg.Wait.
	live := 0
	for _, pl := range plans {
		if !pl.drop {
			live++
		}
	}
	c.wg.Add(live)
	c.mu.Unlock()

	if c.opts.Recorder != nil {
		c.opts.Recorder.Record(trace.Event{Time: c.sinceStart(), Kind: trace.KindBroadcast, PID: from, MsgTag: tagOf(payload)})
	}
	for _, pl := range plans {
		if pl.drop {
			continue
		}
		go c.deliver(pl.to, payload, pl.delay)
	}
}

// drawDelay picks one copy's latency; callers hold c.mu.
func (c *Cluster) drawDelay() (time.Duration, bool) {
	span := c.opts.MaxDelay - c.opts.MinDelay
	uniform := func(max time.Duration) time.Duration {
		if max <= 0 {
			return 0
		}
		return time.Duration(c.rng.Int63n(int64(max) + 1))
	}
	if c.opts.GST > 0 && time.Since(c.start) < c.opts.GST {
		if c.rng.Float64() < c.opts.PreLoss {
			return 0, false
		}
		return c.opts.MinDelay + uniform(4*c.opts.MaxDelay), true
	}
	return c.opts.MinDelay + uniform(span), true
}

func (c *Cluster) deliver(to int, payload any, after time.Duration) {
	defer c.wg.Done()
	t := time.NewTimer(after)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.done:
		return
	}
	c.mu.Lock()
	dead := c.crashed[to]
	c.mu.Unlock()
	if dead {
		return
	}
	select {
	case c.inboxes[to] <- payload:
		if c.opts.Recorder != nil {
			c.opts.Recorder.Record(trace.Event{Time: c.sinceStart(), Kind: trace.KindDeliver, PID: to, MsgTag: tagOf(payload)})
		}
	case <-c.done:
	}
}

// Close stops all pending deliveries and waits for delivery goroutines to
// exit; subsequent broadcasts are ignored. Processes blocked on their
// inbox must be released by their own contexts/deadlines; Close never
// closes inbox channels (receivers may still drain them).
func (c *Cluster) Close() {
	c.closed.Do(func() {
		c.mu.Lock()
		c.isClosed = true
		c.mu.Unlock()
		close(c.done)
	})
	c.wg.Wait()
}

func (c *Cluster) sinceStart() int64 { return int64(time.Since(c.start) / time.Microsecond) }

func tagOf(payload any) string {
	type tagger interface{ MsgTag() string }
	if t, ok := payload.(tagger); ok {
		return t.MsgTag()
	}
	return "?"
}
