package hruntime

import (
	"sync"
	"time"

	"repro/internal/fd"
	"repro/internal/fd/ohp"
	"repro/internal/ident"
	"repro/internal/multiset"
)

// OHP is the live rendering of Figure 6 (◇HP̄ + HΩ via Corollary 2): two
// real goroutines per process — Task T1 polls in timeout-paced rounds,
// Task T2 answers POLLING messages and adapts the timeout — exactly the
// paper's two-task structure. It reuses the simulator implementation's
// message types (ohp.Polling, ohp.Reply), so live and simulated stacks
// speak the same protocol.
type OHP struct {
	dm     *Demux
	module string
	id     ident.ID
	unit   time.Duration

	mu      sync.Mutex
	round   int
	timeout int // in units
	trusted *multiset.Multiset[ident.ID]
	hasOut  bool
	mship   map[ident.ID]bool
	latestR map[ident.ID]int
	pending []ohp.Reply

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

var (
	_ fd.DiamondHPbar = (*OHP)(nil)
	_ fd.HOmega       = (*OHP)(nil)
)

// StartOHP launches the detector for the process behind dm under the given
// module name. unit is the real-time length of one abstract timeout unit
// (e.g. 1ms); the adaptive timeout is a multiple of it.
func StartOHP(dm *Demux, module string, id ident.ID, unit time.Duration) *OHP {
	if unit <= 0 {
		unit = time.Millisecond
	}
	d := &OHP{
		dm:      dm,
		module:  module,
		id:      id,
		unit:    unit,
		round:   1,
		timeout: 1,
		trusted: multiset.New[ident.ID](),
		mship:   make(map[ident.ID]bool),
		latestR: make(map[ident.ID]int),
		stop:    make(chan struct{}),
	}
	d.wg.Add(2)
	go d.task1()
	go d.task2()
	return d
}

// task1 is the polling loop (Fig. 6 lines 8–19).
func (d *OHP) task1() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		r := d.round
		wait := time.Duration(d.timeout) * d.unit
		d.mu.Unlock()

		d.dm.Send(d.module, ohp.Polling{Round: r, ID: d.id})

		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-d.stop:
			t.Stop()
			return
		}

		d.mu.Lock()
		tmp := multiset.New[ident.ID]()
		for _, rep := range d.pending {
			if rep.From <= d.round && d.round <= rep.To {
				tmp.Add(rep.Sender)
			}
		}
		d.trusted = tmp
		d.hasOut = true
		d.round++
		kept := d.pending[:0]
		for _, rep := range d.pending {
			if rep.To >= d.round {
				kept = append(kept, rep)
			}
		}
		d.pending = kept
		d.mu.Unlock()
	}
}

// task2 is the message handler (Fig. 6 lines 21–34).
func (d *OHP) task2() {
	defer d.wg.Done()
	ch := d.dm.Chan(d.module)
	for {
		select {
		case <-d.stop:
			return
		case m := <-ch:
			switch msg := m.(type) {
			case ohp.Polling:
				d.onPolling(msg)
			case ohp.Reply:
				d.onReply(msg)
			}
		}
	}
}

func (d *OHP) onPolling(m ohp.Polling) {
	d.mu.Lock()
	if !d.mship[m.ID] {
		d.mship[m.ID] = true
		d.latestR[m.ID] = 0
	}
	var reply *ohp.Reply
	if d.latestR[m.ID] < m.Round {
		reply = &ohp.Reply{From: d.latestR[m.ID] + 1, To: m.Round, Dest: m.ID, Sender: d.id}
		d.latestR[m.ID] = m.Round
	}
	d.mu.Unlock()
	if reply != nil {
		d.dm.Send(d.module, *reply)
	}
}

func (d *OHP) onReply(m ohp.Reply) {
	if m.Dest != d.id {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if m.From < d.round {
		d.timeout++
	}
	if m.To >= d.round {
		d.pending = append(d.pending, m)
	}
}

// Trusted implements fd.DiamondHPbar.
func (d *OHP) Trusted() *multiset.Multiset[ident.ID] {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.trusted.Clone()
}

// Leader implements fd.HOmega (Corollary 2).
func (d *OHP) Leader() (fd.LeaderInfo, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.hasOut {
		return fd.LeaderInfo{}, false
	}
	id, ok := d.trusted.Min()
	if !ok {
		return fd.LeaderInfo{}, false
	}
	return fd.LeaderInfo{ID: id, Multiplicity: d.trusted.Count(id)}, true
}

// Stop terminates both tasks.
func (d *OHP) Stop() {
	d.once.Do(func() { close(d.stop) })
	d.wg.Wait()
}
