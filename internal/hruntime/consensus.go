package hruntime

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/ident"
)

// Config parameterizes a live Fig. 8 consensus participant.
type Config struct {
	// Module is the demux namespace (default "consensus").
	Module string
	// N is the system size, T the crash bound; Fig. 8 requires T < N/2.
	N, T int
	// Poll is the guard re-check period while waiting (default 500µs): how
	// often changing detector output is observed without message traffic.
	Poll time.Duration
}

// Propose runs the paper's Figure 8 consensus for one process in its
// blocking, paper-shaped form: the calling goroutine is the process; every
// "wait until" blocks on the inbox with a detector re-poll. It returns the
// decided value, or ctx's error if cancelled (e.g. to crash the process).
//
// The message types are the simulator implementation's — core.CoordMsg,
// core.Ph0Msg, core.Ph1Msg, core.Ph2Msg, core.DecideMsg — so both
// renderings of the algorithm speak the same protocol.
func Propose(ctx context.Context, dm *Demux, d fd.HOmega, id ident.ID, cfg Config, v core.Value) (core.Value, error) {
	if cfg.Module == "" {
		cfg.Module = "consensus"
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Microsecond
	}
	if cfg.T < 0 || 2*cfg.T >= cfg.N {
		return "", fmt.Errorf("hruntime: Fig8 requires t < n/2, got t=%d n=%d", cfg.T, cfg.N)
	}
	if v == core.Bottom {
		return "", fmt.Errorf("hruntime: Bottom must not be proposed")
	}
	p := &participant{
		dm:    dm,
		d:     d,
		id:    id,
		cfg:   cfg,
		coord: make(map[int][]core.Value),
		ph0:   make(map[int]*core.Value),
		ph1:   make(map[int][]core.Value),
		ph2:   make(map[int][]core.Value),
	}
	return p.run(ctx, v)
}

type participant struct {
	dm  *Demux
	d   fd.HOmega
	id  ident.ID
	cfg Config

	round   int
	coord   map[int][]core.Value
	ph0     map[int]*core.Value
	ph1     map[int][]core.Value
	ph2     map[int][]core.Value
	decided *core.Value
}

func (p *participant) run(ctx context.Context, v core.Value) (core.Value, error) {
	est1 := v
	for p.round = 1; ; p.round++ {
		r := p.round

		// Leaders' Coordination Phase (lines 8–14).
		p.dm.Send(p.cfg.Module, core.CoordMsg{ID: p.id, Round: r, Est: est1})
		if err := p.waitUntil(ctx, func() bool {
			ld, ok := p.d.Leader()
			if !ok || ld.ID != p.id {
				return true
			}
			need := max(ld.Multiplicity, 1)
			return len(p.coord[r]) >= need
		}); err != nil {
			return "", err
		}
		if p.decided != nil {
			return *p.decided, nil
		}
		if ests := p.coord[r]; len(ests) > 0 {
			est1 = minOf(ests)
		}

		// Phase 0 (lines 15–18).
		if err := p.waitUntil(ctx, func() bool {
			ld, ok := p.d.Leader()
			return (ok && ld.ID == p.id) || p.ph0[r] != nil
		}); err != nil {
			return "", err
		}
		if p.decided != nil {
			return *p.decided, nil
		}
		if w := p.ph0[r]; w != nil {
			est1 = *w
		}
		p.dm.Send(p.cfg.Module, core.Ph0Msg{Round: r, Est: est1})

		// Phase 1 (lines 19–26).
		p.dm.Send(p.cfg.Module, core.Ph1Msg{Round: r, Est: est1})
		if err := p.waitUntil(ctx, func() bool { return len(p.ph1[r]) >= p.cfg.N-p.cfg.T }); err != nil {
			return "", err
		}
		if p.decided != nil {
			return *p.decided, nil
		}
		est2 := core.Bottom
		counts := make(map[core.Value]int)
		for _, e := range p.ph1[r] {
			counts[e]++
			if 2*counts[e] > p.cfg.N {
				est2 = e
			}
		}

		// Phase 2 (lines 27–34).
		p.dm.Send(p.cfg.Module, core.Ph2Msg{Round: r, Est: est2})
		if err := p.waitUntil(ctx, func() bool { return len(p.ph2[r]) >= p.cfg.N-p.cfg.T }); err != nil {
			return "", err
		}
		if p.decided != nil {
			return *p.decided, nil
		}
		var sawVal *core.Value
		sawBot := false
		for _, e := range p.ph2[r] {
			if e == core.Bottom {
				sawBot = true
				continue
			}
			e := e
			sawVal = &e
		}
		switch {
		case sawVal != nil && !sawBot:
			p.dm.Send(p.cfg.Module, core.DecideMsg{Val: *sawVal, Round: r})
			return *sawVal, nil
		case sawVal != nil:
			est1 = *sawVal
		}
	}
}

// waitUntil drains messages and blocks until cond holds, a DECIDE arrives,
// or the context ends. The poll ticker re-evaluates conditions that depend
// on the failure detector alone.
func (p *participant) waitUntil(ctx context.Context, cond func() bool) error {
	ch := p.dm.Chan(p.cfg.Module)
	tick := time.NewTicker(p.cfg.Poll)
	defer tick.Stop()
	for {
		// Drain whatever is ready before evaluating.
		for {
			select {
			case m := <-ch:
				p.handle(m)
			default:
				goto drained
			}
		}
	drained:
		if p.decided != nil || cond() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case m := <-ch:
			p.handle(m)
		case <-tick.C:
		}
	}
}

func (p *participant) handle(m any) {
	switch msg := m.(type) {
	case core.DecideMsg:
		if p.decided == nil {
			v := msg.Val
			p.decided = &v
			// Relay once, preserving the deciding round (not the local one).
			p.dm.Send(p.cfg.Module, core.DecideMsg{Val: v, Round: msg.Round})
		}
	case core.CoordMsg:
		if msg.ID == p.id {
			p.coord[msg.Round] = append(p.coord[msg.Round], msg.Est)
		}
	case core.Ph0Msg:
		if p.ph0[msg.Round] == nil {
			v := msg.Est
			p.ph0[msg.Round] = &v
		}
	case core.Ph1Msg:
		p.ph1[msg.Round] = append(p.ph1[msg.Round], msg.Est)
	case core.Ph2Msg:
		p.ph2[msg.Round] = append(p.ph2[msg.Round], msg.Est)
	}
}

func minOf(vs []core.Value) core.Value {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
