package hruntime

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
)

func TestClusterBroadcastDelivery(t *testing.T) {
	c := NewCluster(ident.Unique(3), Options{Seed: 1})
	defer c.Close()
	c.Broadcast(0, Envelope{Module: "m", Payload: "hi"})
	deadline := time.After(2 * time.Second)
	for p := 0; p < 3; p++ {
		select {
		case m := <-c.Inbox(p):
			env := m.(Envelope)
			if env.Payload != "hi" {
				t.Fatalf("payload = %v", env.Payload)
			}
		case <-deadline:
			t.Fatalf("process %d never received", p)
		}
	}
}

func TestClusterCrashSilences(t *testing.T) {
	c := NewCluster(ident.Unique(2), Options{Seed: 2})
	defer c.Close()
	c.Crash(0)
	c.Broadcast(0, Envelope{Module: "m", Payload: "x"}) // ignored: sender dead
	c.Broadcast(1, Envelope{Module: "m", Payload: "y"})
	select {
	case m := <-c.Inbox(1):
		if m.(Envelope).Payload != "y" {
			t.Fatalf("got %v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery to live process")
	}
	select {
	case m := <-c.Inbox(0):
		t.Fatalf("crashed process received %v", m)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestDemuxRoutesByModule(t *testing.T) {
	c := NewCluster(ident.Unique(1), Options{Seed: 3})
	defer c.Close()
	dm := NewDemux(c, 0, "a", "b")
	defer dm.Close()
	dm.Send("a", "for-a")
	dm.Send("b", "for-b")
	select {
	case m := <-dm.Chan("a"):
		if m != "for-a" {
			t.Fatalf("a got %v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("module a starved")
	}
	select {
	case m := <-dm.Chan("b"):
		if m != "for-b" {
			t.Fatalf("b got %v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("module b starved")
	}
}

func TestLiveOHPConverges(t *testing.T) {
	ids := ident.Assignment{"a", "a", "b"}
	c := NewCluster(ids, Options{Seed: 4, MinDelay: 100 * time.Microsecond, MaxDelay: 500 * time.Microsecond})
	defer c.Close()
	dms := make([]*Demux, len(ids))
	dets := make([]*OHP, len(ids))
	for i := range ids {
		dms[i] = NewDemux(c, i, "fd")
		dets[i] = StartOHP(dms[i], "fd", ids[i], time.Millisecond)
	}
	defer func() {
		for i := range dets {
			dets[i].Stop()
			dms[i].Close()
		}
	}()

	// Crash p2 ("b") after a while; survivors must converge on {a, a}.
	time.Sleep(100 * time.Millisecond)
	c.Crash(2)

	deadline := time.Now().Add(8 * time.Second)
	for {
		good := true
		for i := 0; i < 2; i++ {
			tr := dets[i].Trusted()
			if tr.Len() != 2 || tr.Count("a") != 2 {
				good = false
			}
			li, ok := dets[i].Leader()
			if !ok || li.ID != "a" || li.Multiplicity != 2 {
				good = false
			}
		}
		if good {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("detectors did not converge: %v / %v", dets[0].Trusted(), dets[1].Trusted())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// liveConsensus wires a full live stack (OHP → Fig 8) and returns the
// decisions of correct processes.
func liveConsensus(t *testing.T, ids ident.Assignment, tt int, crash map[int]time.Duration, seed int64) []core.Value {
	t.Helper()
	n := ids.N()
	c := NewCluster(ids, Options{Seed: seed, MinDelay: 100 * time.Microsecond, MaxDelay: 600 * time.Microsecond})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	type result struct {
		p   int
		v   core.Value
		err error
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	cancels := make([]context.CancelFunc, n)
	for i := 0; i < n; i++ {
		dm := NewDemux(c, i, "fd", "consensus")
		det := StartOHP(dm, "fd", ids[i], 500*time.Microsecond)
		pctx, pcancel := context.WithCancel(ctx)
		cancels[i] = pcancel
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer det.Stop()
			defer dm.Close()
			v, err := Propose(pctx, dm, det, ids[i], Config{N: n, T: tt}, core.Value(string(rune('a'+i))))
			results <- result{p: i, v: v, err: err}
		}(i)
	}
	for p, after := range crash {
		p, after := p, after
		go func() {
			time.Sleep(after)
			c.Crash(p)
			cancels[p]()
		}()
	}

	crashed := make(map[int]bool, len(crash))
	for p := range crash {
		crashed[p] = true
	}
	var decisions []core.Value
	needed := n - len(crash)
	for got := 0; got < needed; {
		select {
		case r := <-results:
			if crashed[r.p] {
				continue // cancelled processes may error; ignore
			}
			if r.err != nil {
				t.Fatalf("correct process %d failed: %v", r.p, r.err)
			}
			decisions = append(decisions, r.v)
			got++
		case <-ctx.Done():
			t.Fatalf("timeout: %d/%d decisions", len(decisions), needed)
		}
	}
	cancel() // release any still-running participants, then drain them
	wg.Wait()
	return decisions
}

func TestLiveConsensusFailureFree(t *testing.T) {
	decisions := liveConsensus(t, ident.Balanced(4, 2), 1, nil, 5)
	for _, v := range decisions[1:] {
		if v != decisions[0] {
			t.Fatalf("agreement violated: %v", decisions)
		}
	}
}

func TestLiveConsensusWithCrash(t *testing.T) {
	ids := ident.Balanced(5, 2)
	decisions := liveConsensus(t, ids, 2, map[int]time.Duration{3: 5 * time.Millisecond}, 6)
	if len(decisions) != 4 {
		t.Fatalf("got %d decisions, want 4", len(decisions))
	}
	for _, v := range decisions[1:] {
		if v != decisions[0] {
			t.Fatalf("agreement violated: %v", decisions)
		}
	}
}

func TestLiveConsensusAnonymous(t *testing.T) {
	decisions := liveConsensus(t, ident.AnonymousN(3), 1, nil, 7)
	for _, v := range decisions[1:] {
		if v != decisions[0] {
			t.Fatalf("agreement violated: %v", decisions)
		}
	}
}

func TestClusterGSTLossAndRecovery(t *testing.T) {
	// With PreLoss=1 every pre-GST copy is dropped; after GST delivery
	// resumes within MaxDelay.
	c := NewCluster(ident.Unique(2), Options{
		Seed:     9,
		MinDelay: 100 * time.Microsecond,
		MaxDelay: 500 * time.Microsecond,
		GST:      50 * time.Millisecond,
		PreLoss:  1,
	})
	defer c.Close()
	c.Broadcast(0, Envelope{Module: "m", Payload: "early"})
	select {
	case m := <-c.Inbox(1):
		t.Fatalf("pre-GST message delivered despite PreLoss=1: %v", m)
	case <-time.After(20 * time.Millisecond):
	}
	time.Sleep(40 * time.Millisecond) // past GST
	c.Broadcast(0, Envelope{Module: "m", Payload: "late"})
	select {
	case m := <-c.Inbox(1):
		if m.(Envelope).Payload != "late" {
			t.Fatalf("got %v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("post-GST message never delivered")
	}
}

func TestOHPDetectorToleratesPreGSTLoss(t *testing.T) {
	// The Figure 6 detector must converge even when every message before
	// GST is lost — Theorem 5 needs only the post-GST suffix.
	ids := ident.Assignment{"a", "a", "b"}
	c := NewCluster(ids, Options{
		Seed:     10,
		MinDelay: 100 * time.Microsecond,
		MaxDelay: 400 * time.Microsecond,
		GST:      40 * time.Millisecond,
		PreLoss:  1,
	})
	defer c.Close()
	dms := make([]*Demux, len(ids))
	dets := make([]*OHP, len(ids))
	for i := range ids {
		dms[i] = NewDemux(c, i, "fd")
		dets[i] = StartOHP(dms[i], "fd", ids[i], time.Millisecond)
	}
	defer func() {
		for i := range dets {
			dets[i].Stop()
			dms[i].Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		good := true
		for i := range dets {
			tr := dets[i].Trusted()
			if tr.Len() != 3 || tr.Count("a") != 2 || tr.Count("b") != 1 {
				good = false
			}
		}
		if good {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no convergence after pre-GST blackout: %v / %v / %v",
				dets[0].Trusted(), dets[1].Trusted(), dets[2].Trusted())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
