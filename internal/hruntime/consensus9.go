package hruntime

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/multiset"
)

// Config9 parameterizes a live Fig. 9 consensus participant. Unlike Fig. 8
// (Config), no n or t is needed: quorums come from the HΣ detector.
type Config9 struct {
	// Module is the demux namespace (default "consensus9").
	Module string
	// Poll is the guard re-check period while waiting (default 500µs).
	Poll time.Duration
}

// Propose9 runs the paper's Figure 9 consensus for one process in blocking
// form, with detectors D1 ∈ HΩ and D2 ∈ HΣ. It tolerates any number of
// crashes. Message types are shared with the simulator implementation
// (core.CoordMsg, core.Ph0Msg, core.Ph1QMsg, core.Ph2QMsg, core.DecideMsg).
func Propose9(ctx context.Context, dm *Demux, d1 fd.HOmega, d2 fd.HSigma, id ident.ID, cfg Config9, v core.Value) (core.Value, error) {
	if cfg.Module == "" {
		cfg.Module = "consensus9"
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Microsecond
	}
	if v == core.Bottom {
		return "", fmt.Errorf("hruntime: Bottom must not be proposed")
	}
	p := &participant9{
		dm: dm, d1: d1, d2: d2, id: id, cfg: cfg,
		coord:     make(map[int][]core.Value),
		coordSeen: make(map[int]bool),
		ph0:       make(map[int]*core.Value),
		ph1:       make(map[int][]q9msg),
		ph2:       make(map[int][]q9msg),
	}
	return p.run(ctx, v)
}

type q9msg struct {
	id     ident.ID
	sr     int
	labels map[fd.Label]bool
	est    core.Value
}

type participant9 struct {
	dm  *Demux
	d1  fd.HOmega
	d2  fd.HSigma
	id  ident.ID
	cfg Config9

	round     int
	coord     map[int][]core.Value
	coordSeen map[int]bool
	ph0       map[int]*core.Value
	ph1       map[int][]q9msg
	ph2       map[int][]q9msg
	decided   *core.Value
}

func (p *participant9) run(ctx context.Context, v core.Value) (core.Value, error) {
	est1 := v
	for p.round = 1; ; p.round++ {
		r := p.round

		// Leaders' Coordination Phase.
		p.dm.Send(p.cfg.Module, core.CoordMsg{ID: p.id, Round: r, Est: est1})
		if err := p.waitUntil(ctx, func() bool {
			ld, ok := p.d1.Leader()
			if !ok || ld.ID != p.id {
				return true
			}
			return len(p.coord[r]) >= max(ld.Multiplicity, 1)
		}); err != nil {
			return "", err
		}
		if p.decided != nil {
			return *p.decided, nil
		}
		if ests := p.coord[r]; len(ests) > 0 {
			est1 = minOf(ests)
		}

		// Phase 0.
		if err := p.waitUntil(ctx, func() bool {
			ld, ok := p.d1.Leader()
			return (ok && ld.ID == p.id) || p.ph0[r] != nil
		}); err != nil {
			return "", err
		}
		if p.decided != nil {
			return *p.decided, nil
		}
		if w := p.ph0[r]; w != nil {
			est1 = *w
		}
		p.dm.Send(p.cfg.Module, core.Ph0Msg{Round: r, Est: est1})

		// Phase 1 (sub-rounds until a quorum matches or a PH2 appears).
		est2, err := p.quorumPhase(ctx, r, est1, false)
		if err != nil {
			return "", err
		}
		if p.decided != nil {
			return *p.decided, nil
		}

		// Phase 2.
		rec, next, err := p.quorumPhase2(ctx, r, est2)
		if err != nil {
			return "", err
		}
		if p.decided != nil {
			return *p.decided, nil
		}
		if !next {
			// A quorum matched; apply the three cases.
			var sawVal *core.Value
			sawBot := false
			for _, e := range rec {
				if e == core.Bottom {
					sawBot = true
					continue
				}
				e := e
				sawVal = &e
			}
			switch {
			case sawVal != nil && !sawBot:
				p.dm.Send(p.cfg.Module, core.DecideMsg{Val: *sawVal, Round: r})
				return *sawVal, nil
			case sawVal != nil:
				est1 = *sawVal
			}
		}
	}
}

// quorumPhase runs Fig. 9's Phase 1 loop and returns est2.
func (p *participant9) quorumPhase(ctx context.Context, r int, est1 core.Value, _ bool) (core.Value, error) {
	sr := 1
	labels := p.d2.Labels()
	p.dm.Send(p.cfg.Module, core.Ph1QMsg{ID: p.id, Round: r, SR: sr, Labels: labels, Est: est1})
	var est2 core.Value
	err := p.waitUntil(ctx, func() bool {
		// PH2 for this round: adopt and move on.
		if msgs := p.ph2[r]; len(msgs) > 0 {
			est2 = msgs[0].est
			return true
		}
		if rec, ok := p.matchQuorum(p.ph1[r]); ok {
			est2 = core.Bottom
			if allSame9(rec) {
				est2 = rec[0]
			}
			return true
		}
		cur := p.d2.Labels()
		advance := !fd.LabelsEqual(labels, cur)
		if !advance {
			for _, m := range p.ph1[r] {
				if m.sr > sr {
					advance = true
					break
				}
			}
		}
		if advance {
			sr++
			labels = cur
			p.dm.Send(p.cfg.Module, core.Ph1QMsg{ID: p.id, Round: r, SR: sr, Labels: labels, Est: est1})
		}
		return false
	})
	return est2, err
}

// quorumPhase2 runs Fig. 9's Phase 2 loop; next reports the COORD(r+1)
// early exit (no quorum outcome).
func (p *participant9) quorumPhase2(ctx context.Context, r int, est2 core.Value) (rec []core.Value, next bool, err error) {
	sr := 1
	labels := p.d2.Labels()
	p.dm.Send(p.cfg.Module, core.Ph2QMsg{ID: p.id, Round: r, SR: sr, Labels: labels, Est: est2})
	err = p.waitUntil(ctx, func() bool {
		if p.coordSeen[r+1] {
			next = true
			return true
		}
		if got, ok := p.matchQuorum(p.ph2[r]); ok {
			rec = got
			return true
		}
		cur := p.d2.Labels()
		advance := !fd.LabelsEqual(labels, cur)
		if !advance {
			for _, m := range p.ph2[r] {
				if m.sr > sr {
					advance = true
					break
				}
			}
		}
		if advance {
			sr++
			labels = cur
			p.dm.Send(p.cfg.Module, core.Ph2QMsg{ID: p.id, Round: r, SR: sr, Labels: labels, Est: est2})
		}
		return false
	})
	return rec, next, err
}

// matchQuorum mirrors the simulator implementation: find (x, mset) in
// D2.h_quora and a sub-round whose x-labelled messages' sender identifiers
// realize mset.
func (p *participant9) matchQuorum(msgs []q9msg) ([]core.Value, bool) {
	if len(msgs) == 0 {
		return nil, false
	}
	srs := map[int]bool{}
	for _, m := range msgs {
		srs[m.sr] = true
	}
	for _, pair := range p.d2.Quora() {
		for sr := range srs {
			avail := multiset.New[ident.ID]()
			for _, m := range msgs {
				if m.sr == sr && m.labels[pair.Label] {
					avail.Add(m.id)
				}
			}
			if avail.Empty() || !pair.M.SubsetOf(avail) {
				continue
			}
			need := pair.M.Counts()
			rec := make([]core.Value, 0, pair.M.Len())
			for _, m := range msgs {
				if m.sr == sr && m.labels[pair.Label] && need[m.id] > 0 {
					need[m.id]--
					rec = append(rec, m.est)
				}
			}
			return rec, true
		}
	}
	return nil, false
}

func (p *participant9) waitUntil(ctx context.Context, cond func() bool) error {
	ch := p.dm.Chan(p.cfg.Module)
	tick := time.NewTicker(p.cfg.Poll)
	defer tick.Stop()
	for {
		for {
			select {
			case m := <-ch:
				p.handle(m)
			default:
				goto drained
			}
		}
	drained:
		if p.decided != nil || cond() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case m := <-ch:
			p.handle(m)
		case <-tick.C:
		}
	}
}

func (p *participant9) handle(m any) {
	switch msg := m.(type) {
	case core.DecideMsg:
		if p.decided == nil {
			v := msg.Val
			p.decided = &v
			// Relay once, preserving the deciding round (not the local one).
			p.dm.Send(p.cfg.Module, core.DecideMsg{Val: v, Round: msg.Round})
		}
	case core.CoordMsg:
		p.coordSeen[msg.Round] = true
		if msg.ID == p.id {
			p.coord[msg.Round] = append(p.coord[msg.Round], msg.Est)
		}
	case core.Ph0Msg:
		if p.ph0[msg.Round] == nil {
			v := msg.Est
			p.ph0[msg.Round] = &v
		}
	case core.Ph1QMsg:
		p.ph1[msg.Round] = append(p.ph1[msg.Round], toQ9(msg.ID, msg.SR, msg.Labels, msg.Est))
	case core.Ph2QMsg:
		p.ph2[msg.Round] = append(p.ph2[msg.Round], toQ9(msg.ID, msg.SR, msg.Labels, msg.Est))
	}
}

func toQ9(id ident.ID, sr int, labels []fd.Label, est core.Value) q9msg {
	set := make(map[fd.Label]bool, len(labels))
	for _, l := range labels {
		set[l] = true
	}
	return q9msg{id: id, sr: sr, labels: set, est: est}
}

func allSame9(vs []core.Value) bool {
	for _, v := range vs[1:] {
		if v != vs[0] {
			return false
		}
	}
	return true
}
