package hruntime

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
)

// liveConsensus9 wires the live Fig. 9 stack with LiveWorld oracles and
// returns the decisions of correct processes.
func liveConsensus9(t *testing.T, ids ident.Assignment, crash map[int]time.Duration, seed int64) []core.Value {
	t.Helper()
	n := ids.N()
	c := NewCluster(ids, Options{Seed: seed, MinDelay: 100 * time.Microsecond, MaxDelay: 600 * time.Microsecond})
	defer c.Close()
	world := NewLiveWorld(c, 30*time.Millisecond)
	for p := range crash {
		world.DeclareCrashing(p)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	type result struct {
		p   int
		v   core.Value
		err error
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	cancels := make([]context.CancelFunc, n)
	for i := 0; i < n; i++ {
		dm := NewDemux(c, i, "consensus9")
		d1 := NewLiveHOmega(world)
		d2 := NewLiveHSigma(world, i)
		pctx, pcancel := context.WithCancel(ctx)
		cancels[i] = pcancel
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer dm.Close()
			v, err := Propose9(pctx, dm, d1, d2, ids[i], Config9{}, core.Value(string(rune('a'+i))))
			results <- result{p: i, v: v, err: err}
		}(i)
	}
	for p, after := range crash {
		p, after := p, after
		go func() {
			time.Sleep(after)
			c.Crash(p)
			cancels[p]()
		}()
	}

	crashed := make(map[int]bool, len(crash))
	for p := range crash {
		crashed[p] = true
	}
	var decisions []core.Value
	needed := n - len(crash)
	for got := 0; got < needed; {
		select {
		case r := <-results:
			if crashed[r.p] {
				continue
			}
			if r.err != nil {
				t.Fatalf("correct process %d failed: %v", r.p, r.err)
			}
			decisions = append(decisions, r.v)
			got++
		case <-ctx.Done():
			t.Fatalf("timeout: %d/%d decisions", len(decisions), needed)
		}
	}
	cancel() // release any still-running participants, then drain them
	wg.Wait()
	return decisions
}

func assertAgreement(t *testing.T, decisions []core.Value) {
	t.Helper()
	for _, v := range decisions[1:] {
		if v != decisions[0] {
			t.Fatalf("agreement violated: %v", decisions)
		}
	}
}

func TestLiveFig9FailureFree(t *testing.T) {
	assertAgreement(t, liveConsensus9(t, ident.Balanced(4, 2), nil, 11))
}

func TestLiveFig9MinorityCorrect(t *testing.T) {
	// 3 of 5 crash — beyond any majority; Fig. 9 still decides live.
	crash := map[int]time.Duration{
		0: 5 * time.Millisecond,
		2: 10 * time.Millisecond,
		4: 15 * time.Millisecond,
	}
	decisions := liveConsensus9(t, ident.Balanced(5, 2), crash, 12)
	if len(decisions) != 2 {
		t.Fatalf("got %d decisions, want 2", len(decisions))
	}
	assertAgreement(t, decisions)
}

func TestLiveFig9Anonymous(t *testing.T) {
	assertAgreement(t, liveConsensus9(t, ident.AnonymousN(4), nil, 13))
}

func TestLiveFig9Homonymous(t *testing.T) {
	crash := map[int]time.Duration{1: 8 * time.Millisecond}
	decisions := liveConsensus9(t, ident.Assignment{"x", "x", "y", "y", "z"}, crash, 14)
	if len(decisions) != 4 {
		t.Fatalf("got %d decisions, want 4", len(decisions))
	}
	assertAgreement(t, decisions)
}
