// Package hruntime is a live, goroutine-per-process runtime for the
// paper's algorithms: real concurrency, real channels, real timeouts. It
// is the second rendering of the system model next to the deterministic
// simulator (internal/sim) — the algorithms keep the paper's blocking
// "wait until" shape here, and the two implementations cross-validate each
// other. The partialsync example runs on this runtime.
//
// A Cluster is the broadcast network: it owns one inbox per process and
// delivers every broadcast copy after a per-copy random delay, optionally
// with partially-synchronous semantics (copies sent before GST may be
// dropped; copies sent after are delivered within Delta). Crashing a
// process stops its deliveries and its sends, as in the model.
package hruntime
