package hruntime

import (
	"sync"
	"time"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/multiset"
)

// LiveWorld is the live counterpart of the simulator's oracle world: it
// watches a Cluster's ground truth (identity assignment and crash marks)
// and serves class-conform detector outputs that stabilize after a real-
// time delay. It exists for the same reason as the simulator oracles —
// exercising consensus against the detector *class* without coupling the
// test to one implementation — and for detectors whose paper
// implementation lives in another timing model (HΣ is implementable in
// HSS; the live cluster is asynchronous).
type LiveWorld struct {
	c         *Cluster
	start     time.Time
	stabilize time.Duration

	mu      sync.Mutex
	correct map[int]bool // fixed by DeclareCorrect; nil = everyone
}

// NewLiveWorld creates a world that stabilizes after the given duration.
// DeclareCrashing must announce every process that will crash, so that the
// stabilized outputs reflect the eventual Correct set (live runs cannot
// know the future; the experiment script can).
func NewLiveWorld(c *Cluster, stabilize time.Duration) *LiveWorld {
	return &LiveWorld{c: c, start: time.Now(), stabilize: stabilize}
}

// DeclareCrashing marks processes that will crash during the run; the
// stabilized detector outputs exclude them.
func (w *LiveWorld) DeclareCrashing(pids ...int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.correct == nil {
		w.correct = make(map[int]bool, w.c.N())
		for p := 0; p < w.c.N(); p++ {
			w.correct[p] = true
		}
	}
	for _, p := range pids {
		w.correct[p] = false
	}
}

func (w *LiveWorld) stable() bool { return time.Since(w.start) >= w.stabilize }

// correctSet returns the declared-correct process indexes.
func (w *LiveWorld) correctSet() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []int
	for p := 0; p < w.c.N(); p++ {
		if w.correct == nil || w.correct[p] {
			out = append(out, p)
		}
	}
	return out
}

// correctIDs returns I(Correct) as a multiset.
func (w *LiveWorld) correctIDs() *multiset.Multiset[ident.ID] {
	m := multiset.New[ident.ID]()
	for _, p := range w.correctSet() {
		m.Add(w.c.ID(p))
	}
	return m
}

// LiveHOmega is an HΩ oracle over a LiveWorld: before stabilization the
// elected identifier rotates through the assignment; afterwards it is the
// smallest correct identifier with its multiplicity.
type LiveHOmega struct {
	w *LiveWorld
}

var _ fd.HOmega = (*LiveHOmega)(nil)

// NewLiveHOmega builds the oracle (shared safely by all processes, but by
// convention each process gets its own).
func NewLiveHOmega(w *LiveWorld) *LiveHOmega { return &LiveHOmega{w: w} }

// Leader implements fd.HOmega.
func (o *LiveHOmega) Leader() (fd.LeaderInfo, bool) {
	if !o.w.stable() {
		ids := o.w.c.IDs()
		k := int(time.Since(o.w.start) / (10 * time.Millisecond))
		return fd.LeaderInfo{ID: ids[k%ids.N()], Multiplicity: 1}, true
	}
	ids := o.w.correctIDs()
	id, ok := ids.Min()
	if !ok {
		return fd.LeaderInfo{}, false
	}
	return fd.LeaderInfo{ID: id, Multiplicity: ids.Count(id)}, true
}

// LiveHSigma is an HΣ oracle over a LiveWorld: the label "all" maps to
// I(Π) always; once stable, "corr" maps to I(Correct) and is carried by
// the declared-correct processes.
type LiveHSigma struct {
	w   *LiveWorld
	pid int
}

var _ fd.HSigma = (*LiveHSigma)(nil)

// NewLiveHSigma builds the per-process oracle.
func NewLiveHSigma(w *LiveWorld, pid int) *LiveHSigma { return &LiveHSigma{w: w, pid: pid} }

// Quora implements fd.HSigma.
func (o *LiveHSigma) Quora() []fd.QuorumPair {
	pairs := []fd.QuorumPair{{Label: "all", M: o.w.c.IDs().I()}}
	if o.w.stable() {
		pairs = append(pairs, fd.QuorumPair{Label: "corr", M: o.w.correctIDs()})
	}
	return pairs
}

// Labels implements fd.HSigma.
func (o *LiveHSigma) Labels() []fd.Label {
	ls := []fd.Label{"all"}
	if o.w.stable() {
		for _, p := range o.w.correctSet() {
			if p == o.pid {
				ls = append(ls, "corr")
				break
			}
		}
	}
	return ls
}
