package hruntime

import (
	"fmt"
	"sync"
)

// Envelope namespaces payloads per module, so a failure detector and a
// consensus algorithm can share one process's inbox — the live counterpart
// of sim.Node.
type Envelope struct {
	Module  string
	Payload any
}

// MsgTag preserves the inner payload's tag for traces.
func (e Envelope) MsgTag() string { return tagOf(e.Payload) }

// Demux splits a process inbox into per-module channels. Start it once per
// process; modules then receive from Chan(name) and send with Send.
type Demux struct {
	c    *Cluster
	p    int
	mu   sync.Mutex
	subs map[string]chan any
	wg   sync.WaitGroup
	stop chan struct{}
	once sync.Once
}

// NewDemux creates (and starts) a demultiplexer for process p.
func NewDemux(c *Cluster, p int, modules ...string) *Demux {
	d := &Demux{
		c:    c,
		p:    p,
		subs: make(map[string]chan any, len(modules)),
		stop: make(chan struct{}),
	}
	for _, m := range modules {
		if _, dup := d.subs[m]; dup {
			panic(fmt.Sprintf("hruntime: duplicate module %q", m))
		}
		d.subs[m] = make(chan any, 1024)
	}
	d.wg.Add(1)
	go d.pump()
	return d
}

func (d *Demux) pump() {
	defer d.wg.Done()
	for {
		select {
		case <-d.stop:
			return
		case m := <-d.c.Inbox(d.p):
			env, ok := m.(Envelope)
			if !ok {
				continue // foreign traffic: not for our modules
			}
			d.mu.Lock()
			ch := d.subs[env.Module]
			d.mu.Unlock()
			if ch == nil {
				continue
			}
			select {
			case ch <- env.Payload:
			case <-d.stop:
				return
			}
		}
	}
}

// Chan returns the receive channel of a module registered at construction.
func (d *Demux) Chan(module string) <-chan any {
	d.mu.Lock()
	defer d.mu.Unlock()
	ch, ok := d.subs[module]
	if !ok {
		panic(fmt.Sprintf("hruntime: unknown module %q", module))
	}
	return ch
}

// Send broadcasts payload under the module's namespace.
func (d *Demux) Send(module string, payload any) {
	d.c.Broadcast(d.p, Envelope{Module: module, Payload: payload})
}

// Close stops the pump. Safe to call multiple times.
func (d *Demux) Close() {
	d.once.Do(func() { close(d.stop) })
	d.wg.Wait()
}
