package reduce

import (
	"testing"

	"repro/internal/ident"
	"repro/internal/multiset"
)

// TestRelationMatrix executes every Figure-5 arrow under several seeds and
// verifies the emulated detector satisfies the target class (E5).
func TestRelationMatrix(t *testing.T) {
	for _, rel := range All() {
		rel := rel
		t.Run(rel.From+"→"+rel.To, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				res, err := rel.Run(seed)
				if err != nil {
					t.Fatalf("seed %d (%s, %s): %v", seed, rel.Source, rel.Model, err)
				}
				if res.StabilizationTime < 0 {
					t.Fatalf("negative stabilization time")
				}
			}
		})
	}
}

func TestSubMultisetsContaining(t *testing.T) {
	m := multiset.From[ident.ID]("a", "a", "b")
	subs := SubMultisetsContaining(m, "a")
	// Sub-multisets of {a,a,b}: counts a∈{0,1,2} × b∈{0,1} = 6 total; those
	// containing ≥1 'a': 4: {a}, {a,b}, {a,a}, {a,a,b}.
	if len(subs) != 4 {
		t.Fatalf("got %d sub-multisets, want 4: %v", len(subs), subs)
	}
	keys := make(map[string]bool)
	for _, s := range subs {
		if !s.Contains("a") {
			t.Errorf("sub-multiset %v lacks the mandatory element", s)
		}
		if !s.SubsetOf(m) {
			t.Errorf("sub-multiset %v not ⊆ %v", s, m)
		}
		keys[s.Key()] = true
	}
	if len(keys) != 4 {
		t.Errorf("duplicates in enumeration: %v", subs)
	}
}

func TestSubMultisetsContainingAbsent(t *testing.T) {
	m := multiset.From[ident.ID]("a")
	if subs := SubMultisetsContaining(m, "z"); len(subs) != 0 {
		t.Errorf("got %v for an absent identifier, want none", subs)
	}
}

func TestSubMultisetsContainingSingleton(t *testing.T) {
	m := multiset.From[ident.ID]("x")
	subs := SubMultisetsContaining(m, "x")
	if len(subs) != 1 || !subs[0].Equal(m) {
		t.Errorf("got %v, want just {x}", subs)
	}
}
