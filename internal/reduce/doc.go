// Package reduce implements the paper's reductions between failure
// detector classes (§3.3): the algorithms of Figures 1, 2 and 4, the local
// transformations of Theorem 3, Lemmas 2–3 and Observation 1, and a
// machine-checked relation matrix covering the Figure 5 diagram.
//
// A reduction builds (emulates) a detector of a target class from a
// detector of a source class, sometimes with communication. Reductions are
// simulator modules; the emulated detector is queried through the same
// fd interfaces as native implementations, so the same property checkers
// certify them.
package reduce
