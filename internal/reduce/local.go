package reduce

import (
	"fmt"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// This file holds the communication-free ("local") transformations: each
// one periodically samples its source detector and maintains the target
// class's variables in memory. They run as node modules so that sampling
// is driven by the node's event flow plus a low-rate timer, and they
// accumulate state where the target class demands monotone outputs.

// localSampler factors the Init/OnTimer/Poll plumbing shared by the local
// transformations.
type localSampler struct {
	env    sim.Environment
	poll   sim.Time
	sample func()
}

func (l *localSampler) start(env sim.Environment, poll sim.Time, sample func()) {
	l.env = env
	if poll < 1 {
		poll = DefaultPollInterval
	}
	l.poll = poll
	l.sample = sample
	sample()
	env.SetTimer(l.poll, 0)
}

// OnTimer implements sim.Process.
func (l *localSampler) OnTimer(tag int) {
	l.sample()
	l.env.SetTimer(l.poll, tag)
}

// OnMessage implements sim.Process; local transformations receive nothing.
func (l *localSampler) OnMessage(any) {}

// Poll implements sim.Poller: re-sample whenever anything happened on the
// node, so output transitions are observed at the same event they become
// possible.
func (l *localSampler) Poll() {
	if l.sample != nil {
		l.sample()
	}
}

// DiamondHPbarToHOmega is Observation 1: a failure detector of class HΩ
// obtained from any detector of class ◇HP̄ without communication, by
// electing the smallest trusted identifier with its multiplicity.
type DiamondHPbarToHOmega struct {
	localSampler
	source fd.DiamondHPbar
	out    fd.LeaderInfo
	hasOut bool
}

var (
	_ sim.Process = (*DiamondHPbarToHOmega)(nil)
	_ fd.HOmega   = (*DiamondHPbarToHOmega)(nil)
)

// NewDiamondHPbarToHOmega builds the Observation 1 transformer.
func NewDiamondHPbarToHOmega(source fd.DiamondHPbar, poll sim.Time) *DiamondHPbarToHOmega {
	m := &DiamondHPbarToHOmega{source: source}
	m.poll = poll
	return m
}

// Init implements sim.Process.
func (m *DiamondHPbarToHOmega) Init(env sim.Environment) {
	m.start(env, m.poll, func() {
		trusted := m.source.Trusted()
		if id, ok := trusted.Min(); ok {
			m.out = fd.LeaderInfo{ID: id, Multiplicity: trusted.Count(id)}
			m.hasOut = true
		}
	})
}

// Leader implements fd.HOmega.
func (m *DiamondHPbarToHOmega) Leader() (fd.LeaderInfo, bool) { return m.out, m.hasOut }

// APToDiamondHPbar is Lemma 2: ◇HP̄ obtained from any detector of class
// AP in an anonymous system without communication — h_trusted is a
// multiset of D.anap default identifiers ⊥.
type APToDiamondHPbar struct {
	localSampler
	source fd.AP
	count  int
}

var (
	_ sim.Process     = (*APToDiamondHPbar)(nil)
	_ fd.DiamondHPbar = (*APToDiamondHPbar)(nil)
)

// NewAPToDiamondHPbar builds the Lemma 2 transformer.
func NewAPToDiamondHPbar(source fd.AP, poll sim.Time) *APToDiamondHPbar {
	m := &APToDiamondHPbar{source: source}
	m.poll = poll
	return m
}

// Init implements sim.Process.
func (m *APToDiamondHPbar) Init(env sim.Environment) {
	m.start(env, m.poll, func() { m.count = m.source.AliveCount() })
}

// Trusted implements fd.DiamondHPbar: ⊥^anap.
func (m *APToDiamondHPbar) Trusted() *multiset.Multiset[ident.ID] {
	out := multiset.New[ident.ID]()
	out.AddN(ident.Anonymous, m.count)
	return out
}

// APToHSigma is Lemma 3: HΣ obtained from any detector of class AP in an
// anonymous system without communication. After reading y from D.anap the
// label ⊥^y joins h_labels and the pair (⊥^y, ⊥^y) joins h_quora; both
// accumulate, satisfying monotonicity, and AP's safety yields HΣ's (nested
// sub-populations always intersect).
type APToHSigma struct {
	localSampler
	source fd.AP
	seen   map[int]bool
	labels []fd.Label
	quora  []fd.QuorumPair
}

var (
	_ sim.Process = (*APToHSigma)(nil)
	_ fd.HSigma   = (*APToHSigma)(nil)
)

// NewAPToHSigma builds the Lemma 3 transformer.
func NewAPToHSigma(source fd.AP, poll sim.Time) *APToHSigma {
	m := &APToHSigma{source: source, seen: make(map[int]bool)}
	m.poll = poll
	return m
}

// Init implements sim.Process.
func (m *APToHSigma) Init(env sim.Environment) {
	m.start(env, m.poll, func() {
		y := m.source.AliveCount()
		if y <= 0 || m.seen[y] {
			return
		}
		m.seen[y] = true
		bot := multiset.New[ident.ID]()
		bot.AddN(ident.Anonymous, y)
		label := fd.Label(fmt.Sprintf("⊥^%d", y))
		m.labels = append(m.labels, label)
		m.quora = append(m.quora, fd.QuorumPair{Label: label, M: bot})
	})
}

// Quora implements fd.HSigma.
func (m *APToHSigma) Quora() []fd.QuorumPair { return cloneQuora(m.quora) }

// Labels implements fd.HSigma.
func (m *APToHSigma) Labels() []fd.Label { return cloneLabels(m.labels) }

// ASigmaToHSigma is Theorem 3: HΣ obtained from any detector of class AΣ
// in an anonymous system without communication. Each pair (x, y) of
// D.a_sigma contributes label x to h_labels and the pair (x, ⊥^y) to
// h_quora, replacing any earlier pair with label x (AΣ monotonicity only
// lets y shrink, so replacement is monotone for HΣ).
type ASigmaToHSigma struct {
	localSampler
	source fd.ASigma
	pairs  map[fd.Label]int // label -> current y
	order  []fd.Label
}

var (
	_ sim.Process = (*ASigmaToHSigma)(nil)
	_ fd.HSigma   = (*ASigmaToHSigma)(nil)
)

// NewASigmaToHSigma builds the Theorem 3 transformer.
func NewASigmaToHSigma(source fd.ASigma, poll sim.Time) *ASigmaToHSigma {
	m := &ASigmaToHSigma{source: source, pairs: make(map[fd.Label]int)}
	m.poll = poll
	return m
}

// Init implements sim.Process.
func (m *ASigmaToHSigma) Init(env sim.Environment) {
	m.start(env, m.poll, func() {
		for _, pair := range m.source.ASigma() {
			if _, ok := m.pairs[pair.Label]; !ok {
				m.order = append(m.order, pair.Label)
			}
			m.pairs[pair.Label] = pair.Y
		}
	})
}

// Quora implements fd.HSigma.
func (m *ASigmaToHSigma) Quora() []fd.QuorumPair {
	out := make([]fd.QuorumPair, 0, len(m.order))
	for _, label := range m.order {
		bot := multiset.New[ident.ID]()
		bot.AddN(ident.Anonymous, m.pairs[label])
		out = append(out, fd.QuorumPair{Label: label, M: bot})
	}
	return out
}

// Labels implements fd.HSigma.
func (m *ASigmaToHSigma) Labels() []fd.Label { return cloneLabels(m.order) }
