package reduce

import (
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// HSigmaToSigma is Figure 4 (Theorem 2): transforming a detector D ∈ HΣ
// into a detector of class Σ in an asynchronous system with unique
// identifiers, without initial knowledge of the membership. It uses an
// auxiliary detector X of class 𝔈 (the alive list of Figure 3 /
// Definition 1).
//
//   - Task T1 (repeat forever): broadcast (LABELS, id(p), D.h_labels); if
//     some pair (x, m) ∈ D.h_quora has every identifier of m known to hold
//     the label x (via idents[x]), pick among such candidate multisets the
//     one whose worst identifier rank in X.alive is smallest and output it
//     as trusted.
//   - Task T2: upon (LABELS, i, ℓ), record that identifier i holds every
//     label of ℓ: idents[x] ∪= {i}.
//
// Safety of the emulated Σ follows from HΣ safety plus the idents guard;
// liveness from HΣ liveness plus the 𝔈 ranking, which eventually prefers
// all-correct candidates (see the paper's proof of Theorem 2).
type HSigmaToSigma struct {
	env    sim.Environment
	source fd.HSigma
	alive  fd.AliveList
	poll   sim.Time

	idents  map[fd.Label]*multiset.Multiset[ident.ID]
	trusted *multiset.Multiset[ident.ID]
	hasOut  bool
}

// LabelsMsg is Figure 4's (LABELS, id, labels) message.
type LabelsMsg struct {
	ID     ident.ID
	Labels []fd.Label
}

// MsgTag implements sim.Tagger.
func (LabelsMsg) MsgTag() string { return "LABELS" }

var (
	_ sim.Process = (*HSigmaToSigma)(nil)
	_ fd.Sigma    = (*HSigmaToSigma)(nil)
)

// NewHSigmaToSigma builds the Figure 4 transformer from the HΣ source D
// and the 𝔈 detector X.
func NewHSigmaToSigma(source fd.HSigma, alive fd.AliveList, poll sim.Time) *HSigmaToSigma {
	if poll < 1 {
		poll = DefaultPollInterval
	}
	return &HSigmaToSigma{
		source: source,
		alive:  alive,
		poll:   poll,
		idents: make(map[fd.Label]*multiset.Multiset[ident.ID]),
	}
}

// Init implements sim.Process.
func (m *HSigmaToSigma) Init(env sim.Environment) {
	m.env = env
	m.iterate()
	env.SetTimer(m.poll, 0)
}

// OnTimer implements sim.Process (Task T1).
func (m *HSigmaToSigma) OnTimer(tag int) {
	m.iterate()
	m.env.SetTimer(m.poll, tag)
}

func (m *HSigmaToSigma) iterate() {
	m.env.Broadcast(LabelsMsg{ID: m.env.ID(), Labels: m.source.Labels()})

	aliveList := m.alive.Alive()
	var best *multiset.Multiset[ident.ID]
	bestRank := 0
	for _, pair := range m.source.Quora() {
		known, ok := m.idents[pair.Label]
		if !ok || !pair.M.SubsetOf(known) {
			continue
		}
		r := fd.MaxRank(pair.M.Elems(), aliveList)
		if best == nil || r < bestRank {
			best, bestRank = pair.M, r
		}
	}
	if best != nil {
		m.trusted = best.Clone()
		m.hasOut = true
	}
}

// OnMessage implements sim.Process (Task T2).
func (m *HSigmaToSigma) OnMessage(payload any) {
	msg, ok := payload.(LabelsMsg)
	if !ok {
		return
	}
	for _, x := range msg.Labels {
		set, ok := m.idents[x]
		if !ok {
			set = multiset.New[ident.ID]()
			m.idents[x] = set
		}
		if !set.Contains(msg.ID) {
			set.Add(msg.ID)
		}
	}
}

// TrustedQuorum implements fd.Sigma. Before the first candidate appears it
// returns nil; HasOutput distinguishes that state for probes.
func (m *HSigmaToSigma) TrustedQuorum() *multiset.Multiset[ident.ID] {
	if !m.hasOut {
		return nil
	}
	return m.trusted.Clone()
}

// HasOutput reports whether a trusted quorum has been produced yet.
func (m *HSigmaToSigma) HasOutput() bool { return m.hasOut }
