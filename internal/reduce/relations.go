package reduce

import (
	"repro/internal/fd"
	"repro/internal/fd/alive"
	"repro/internal/fd/oracle"
	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// Relation is one arrow of the paper's Figure 5 diagram (or a composite of
// arrows): an executable reduction whose emulated target detector is
// verified against the target class's axioms on a concrete execution.
type Relation struct {
	From, To string
	Source   string // theorem / lemma / observation in the paper
	Model    string // system model the reduction is stated in
	Run      func(seed int64) (fd.Result, error)
}

const (
	relStabilize sim.Time = 120
	relHorizon   sim.Time = 800
)

// relRun is the shared harness: n processes with the given identity
// assignment and crash schedule; build constructs each node's module stack
// and returns the probes' check function.
func relRun(ids ident.Assignment, crashes map[sim.PID]sim.Time, seed int64,
	build func(eng *sim.Engine, truth *fd.GroundTruth, world *oracle.World) func() (fd.Result, error),
) (fd.Result, error) {
	eng := sim.New(sim.Config{IDs: ids, Seed: seed})
	truth := fd.NewGroundTruth(ids, crashes)
	world := oracle.NewWorld(truth, relStabilize)
	check := build(eng, truth, world)
	eng.CrashSchedule(crashes)
	eng.Run(relHorizon)
	return check()
}

// hsigmaProbes attaches HΣ probes over a slice of emulated detectors and
// returns the corresponding CheckHSigma closure.
func hsigmaProbes(eng *sim.Engine, truth *fd.GroundTruth, dets []fd.HSigma) func() (fd.Result, error) {
	n := len(dets)
	quora := fd.NewProbe(eng, n, func(p sim.PID) ([]fd.QuorumPair, bool) {
		if eng.Crashed(p) {
			return nil, false
		}
		return dets[p].Quora(), true
	}, quoraEqual)
	labels := fd.NewProbe(eng, n, func(p sim.PID) ([]fd.Label, bool) {
		if eng.Crashed(p) {
			return nil, false
		}
		return dets[p].Labels(), true
	}, fd.LabelsEqual)
	return func() (fd.Result, error) { return fd.CheckHSigma(truth, quora, labels) }
}

func quoraEqual(a, b []fd.QuorumPair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Label != b[i].Label || !a[i].M.Equal(b[i].M) {
			return false
		}
	}
	return true
}

func msEqual(a, b *multiset.Multiset[ident.ID]) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Equal(b)
}

// All returns the executable relation matrix: every reduction the paper
// proves, ready to run and verify. Seeds vary the adversary.
func All() []Relation {
	return []Relation{
		{
			From: "Σ", To: "HΣ", Source: "Theorem 1(1) / Figure 1", Model: "AS[∅], membership known",
			Run: func(seed int64) (fd.Result, error) {
				ids := ident.Unique(5)
				crashes := map[sim.PID]sim.Time{1: 40}
				return relRun(ids, crashes, seed, func(eng *sim.Engine, truth *fd.GroundTruth, world *oracle.World) func() (fd.Result, error) {
					dets := make([]fd.HSigma, ids.N())
					for i := 0; i < ids.N(); i++ {
						src := oracle.NewSigma(world)
						xf := NewSigmaToHSigmaKnown(src, ids.I(), 0)
						dets[i] = xf
						eng.AddProcess(sim.NewNode().Add("sigma", src).Add("fig1", xf))
					}
					return hsigmaProbes(eng, truth, dets)
				})
			},
		},
		{
			From: "Σ", To: "HΣ", Source: "Theorem 1(2) / Figure 2", Model: "AS[Σ], membership unknown",
			Run: func(seed int64) (fd.Result, error) {
				ids := ident.Unique(5)
				crashes := map[sim.PID]sim.Time{3: 60}
				return relRun(ids, crashes, seed, func(eng *sim.Engine, truth *fd.GroundTruth, world *oracle.World) func() (fd.Result, error) {
					dets := make([]fd.HSigma, ids.N())
					for i := 0; i < ids.N(); i++ {
						src := oracle.NewSigma(world)
						xf := NewSigmaToHSigmaUnknown(src, 0)
						dets[i] = xf
						eng.AddProcess(sim.NewNode().Add("sigma", src).Add("fig2", xf))
					}
					return hsigmaProbes(eng, truth, dets)
				})
			},
		},
		{
			From: "HΣ", To: "Σ", Source: "Theorem 2 / Figure 4 (uses 𝔈 of Lemma 1 / Figure 3)", Model: "AS[HΣ], membership unknown",
			Run: func(seed int64) (fd.Result, error) {
				ids := ident.Unique(5)
				crashes := map[sim.PID]sim.Time{0: 50}
				return relRun(ids, crashes, seed, func(eng *sim.Engine, truth *fd.GroundTruth, world *oracle.World) func() (fd.Result, error) {
					dets := make([]*HSigmaToSigma, ids.N())
					for i := 0; i < ids.N(); i++ {
						src := oracle.NewHSigma(world)
						al := alive.New(0)
						xf := NewHSigmaToSigma(src, al, 0)
						dets[i] = xf
						eng.AddProcess(sim.NewNode().Add("hsigma", src).Add("alive", al).Add("fig4", xf))
					}
					pr := fd.NewProbe(eng, ids.N(), func(p sim.PID) (*multiset.Multiset[ident.ID], bool) {
						if eng.Crashed(p) || !dets[p].HasOutput() {
							return nil, false
						}
						return dets[p].TrustedQuorum(), true
					}, msEqual)
					return func() (fd.Result, error) { return fd.CheckSigma(truth, pr) }
				})
			},
		},
		{
			From: "AΣ", To: "HΣ", Source: "Theorem 3", Model: "AAS[∅]",
			Run: func(seed int64) (fd.Result, error) {
				ids := ident.AnonymousN(5)
				crashes := map[sim.PID]sim.Time{2: 40}
				return relRun(ids, crashes, seed, func(eng *sim.Engine, truth *fd.GroundTruth, world *oracle.World) func() (fd.Result, error) {
					dets := make([]fd.HSigma, ids.N())
					for i := 0; i < ids.N(); i++ {
						src := oracle.NewASigma(world)
						xf := NewASigmaToHSigma(src, 0)
						dets[i] = xf
						eng.AddProcess(sim.NewNode().Add("asigma", src).Add("thm3", xf))
					}
					return hsigmaProbes(eng, truth, dets)
				})
			},
		},
		{
			From: "AP", To: "◇HP̄", Source: "Lemma 2 / Theorem 4", Model: "AAS[∅]",
			Run: func(seed int64) (fd.Result, error) {
				ids := ident.AnonymousN(5)
				crashes := map[sim.PID]sim.Time{1: 30, 4: 70}
				return relRun(ids, crashes, seed, func(eng *sim.Engine, truth *fd.GroundTruth, world *oracle.World) func() (fd.Result, error) {
					dets := make([]fd.DiamondHPbar, ids.N())
					for i := 0; i < ids.N(); i++ {
						src := oracle.NewAP(world, 0)
						xf := NewAPToDiamondHPbar(src, 0)
						dets[i] = xf
						eng.AddProcess(sim.NewNode().Add("ap", src).Add("lemma2", xf))
					}
					pr := fd.NewProbe(eng, ids.N(), func(p sim.PID) (*multiset.Multiset[ident.ID], bool) {
						if eng.Crashed(p) {
							return nil, false
						}
						return dets[p].Trusted(), true
					}, msEqual)
					return func() (fd.Result, error) { return fd.CheckDiamondHPbar(truth, pr) }
				})
			},
		},
		{
			From: "AP", To: "HΣ", Source: "Lemma 3 / Theorem 4", Model: "AAS[∅]",
			Run: func(seed int64) (fd.Result, error) {
				ids := ident.AnonymousN(5)
				crashes := map[sim.PID]sim.Time{0: 35}
				return relRun(ids, crashes, seed, func(eng *sim.Engine, truth *fd.GroundTruth, world *oracle.World) func() (fd.Result, error) {
					dets := make([]fd.HSigma, ids.N())
					for i := 0; i < ids.N(); i++ {
						src := oracle.NewAP(world, 0)
						xf := NewAPToHSigma(src, 0)
						dets[i] = xf
						eng.AddProcess(sim.NewNode().Add("ap", src).Add("lemma3", xf))
					}
					return hsigmaProbes(eng, truth, dets)
				})
			},
		},
		{
			From: "◇HP̄", To: "HΩ", Source: "Observation 1 / Corollary 2", Model: "HAS[◇HP̄]",
			Run: func(seed int64) (fd.Result, error) {
				ids := ident.Balanced(6, 3)
				crashes := map[sim.PID]sim.Time{0: 45}
				return relRun(ids, crashes, seed, func(eng *sim.Engine, truth *fd.GroundTruth, world *oracle.World) func() (fd.Result, error) {
					dets := make([]fd.HOmega, ids.N())
					for i := 0; i < ids.N(); i++ {
						src := oracle.NewDiamondHPbar(world)
						xf := NewDiamondHPbarToHOmega(src, 0)
						dets[i] = xf
						eng.AddProcess(sim.NewNode().Add("ohp", src).Add("obs1", xf))
					}
					pr := fd.NewProbe(eng, ids.N(), func(p sim.PID) (fd.LeaderInfo, bool) {
						if eng.Crashed(p) {
							return fd.LeaderInfo{}, false
						}
						return dets[p].Leader()
					}, func(a, b fd.LeaderInfo) bool { return a == b })
					return func() (fd.Result, error) { return fd.CheckHOmega(truth, pr) }
				})
			},
		},
		{
			From: "Σ", To: "Σ (via HΣ)", Source: "Corollary 1 (composite Fig 2 ∘ Fig 4)", Model: "AS[Σ]",
			Run: func(seed int64) (fd.Result, error) {
				ids := ident.Unique(5)
				crashes := map[sim.PID]sim.Time{2: 55}
				return relRun(ids, crashes, seed, func(eng *sim.Engine, truth *fd.GroundTruth, world *oracle.World) func() (fd.Result, error) {
					dets := make([]*HSigmaToSigma, ids.N())
					for i := 0; i < ids.N(); i++ {
						src := oracle.NewSigma(world)
						mid := NewSigmaToHSigmaUnknown(src, 0)
						al := alive.New(0)
						xf := NewHSigmaToSigma(mid, al, 0)
						dets[i] = xf
						eng.AddProcess(sim.NewNode().
							Add("sigma", src).Add("fig2", mid).Add("alive", al).Add("fig4", xf))
					}
					pr := fd.NewProbe(eng, ids.N(), func(p sim.PID) (*multiset.Multiset[ident.ID], bool) {
						if eng.Crashed(p) || !dets[p].HasOutput() {
							return nil, false
						}
						return dets[p].TrustedQuorum(), true
					}, msEqual)
					return func() (fd.Result, error) { return fd.CheckSigma(truth, pr) }
				})
			},
		},
	}
}
