package reduce

import (
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/multiset"
	"repro/internal/sim"
)

// DefaultPollInterval is the sampling period of the "repeat forever" loops
// in the reduction algorithms.
const DefaultPollInterval sim.Time = 5

// SigmaToHSigmaKnown is Figure 1: transforming a detector D ∈ Σ into a
// detector of class HΣ in a system with unique identifiers where every
// process initially knows the membership I(Π). No communication is used:
// h_labels is fixed to every subset of I(Π) containing id(p), and the
// repeat-forever loop accumulates pairs (q, q) for every value q read from
// D.trusted.
type SigmaToHSigmaKnown struct {
	env        sim.Environment
	source     fd.Sigma
	poll       sim.Time
	membership *multiset.Multiset[ident.ID]

	labels []fd.Label
	quora  []fd.QuorumPair
	known  map[fd.Label]bool
}

var (
	_ sim.Process = (*SigmaToHSigmaKnown)(nil)
	_ fd.HSigma   = (*SigmaToHSigmaKnown)(nil)
)

// NewSigmaToHSigmaKnown builds the Figure 1 transformer for one process.
// membership is I(Π); source is the Σ detector D.
func NewSigmaToHSigmaKnown(source fd.Sigma, membership *multiset.Multiset[ident.ID], poll sim.Time) *SigmaToHSigmaKnown {
	if poll < 1 {
		poll = DefaultPollInterval
	}
	return &SigmaToHSigmaKnown{
		source:     source,
		poll:       poll,
		known:      make(map[fd.Label]bool),
		membership: membership.Clone(),
	}
}

// Init implements sim.Process: fix h_labels and start the polling loop.
func (m *SigmaToHSigmaKnown) Init(env sim.Environment) {
	m.env = env
	for _, s := range SubMultisetsContaining(m.membership, env.ID()) {
		m.labels = append(m.labels, fd.Label(s.Key()))
	}
	m.sample()
	env.SetTimer(m.poll, 0)
}

// OnTimer implements sim.Process (the repeat-forever loop).
func (m *SigmaToHSigmaKnown) OnTimer(tag int) {
	m.sample()
	m.env.SetTimer(m.poll, tag)
}

// OnMessage implements sim.Process; Figure 1 uses no messages.
func (m *SigmaToHSigmaKnown) OnMessage(any) {}

func (m *SigmaToHSigmaKnown) sample() {
	q := m.source.TrustedQuorum()
	label := fd.Label(q.Key())
	if m.known[label] {
		return
	}
	m.known[label] = true
	m.quora = append(m.quora, fd.QuorumPair{Label: label, M: q.Clone()})
}

// Quora implements fd.HSigma.
func (m *SigmaToHSigmaKnown) Quora() []fd.QuorumPair { return cloneQuora(m.quora) }

// Labels implements fd.HSigma.
func (m *SigmaToHSigmaKnown) Labels() []fd.Label { return cloneLabels(m.labels) }

// SigmaToHSigmaUnknown is Figure 2: the same transformation without
// initial knowledge of the membership. Task T1 repeatedly broadcasts
// IDENT(id(p)) and samples D.trusted into h_quora; Task T2 accumulates the
// received identifiers into mship and recomputes h_labels as every subset
// of mship containing id(p).
type SigmaToHSigmaUnknown struct {
	env    sim.Environment
	source fd.Sigma
	poll   sim.Time

	mship  *multiset.Multiset[ident.ID] // set semantics: unique-id system
	labels []fd.Label
	quora  []fd.QuorumPair
	known  map[fd.Label]bool
}

// IdentMsg is Figure 2's IDENT(id) message.
type IdentMsg struct {
	ID ident.ID
}

// MsgTag implements sim.Tagger.
func (IdentMsg) MsgTag() string { return "IDENT" }

var (
	_ sim.Process = (*SigmaToHSigmaUnknown)(nil)
	_ fd.HSigma   = (*SigmaToHSigmaUnknown)(nil)
)

// NewSigmaToHSigmaUnknown builds the Figure 2 transformer.
func NewSigmaToHSigmaUnknown(source fd.Sigma, poll sim.Time) *SigmaToHSigmaUnknown {
	if poll < 1 {
		poll = DefaultPollInterval
	}
	return &SigmaToHSigmaUnknown{
		source: source,
		poll:   poll,
		mship:  multiset.New[ident.ID](),
		known:  make(map[fd.Label]bool),
	}
}

// Init implements sim.Process.
func (m *SigmaToHSigmaUnknown) Init(env sim.Environment) {
	m.env = env
	env.Broadcast(sim.Intern(env, IdentMsg{ID: env.ID()}))
	m.sample()
	env.SetTimer(m.poll, 0)
}

// OnTimer implements sim.Process (Task T1).
func (m *SigmaToHSigmaUnknown) OnTimer(tag int) {
	m.env.Broadcast(sim.Intern(m.env, IdentMsg{ID: m.env.ID()}))
	m.sample()
	m.env.SetTimer(m.poll, tag)
}

// OnMessage implements sim.Process (Task T2).
func (m *SigmaToHSigmaUnknown) OnMessage(payload any) {
	msg, ok := payload.(IdentMsg)
	if !ok {
		return
	}
	if m.mship.Contains(msg.ID) {
		return
	}
	m.mship.Add(msg.ID)
	m.labels = m.labels[:0]
	for _, s := range SubMultisetsContaining(m.mship, m.env.ID()) {
		m.labels = append(m.labels, fd.Label(s.Key()))
	}
}

func (m *SigmaToHSigmaUnknown) sample() {
	q := m.source.TrustedQuorum()
	label := fd.Label(q.Key())
	if m.known[label] {
		return
	}
	m.known[label] = true
	m.quora = append(m.quora, fd.QuorumPair{Label: label, M: q.Clone()})
}

// Quora implements fd.HSigma.
func (m *SigmaToHSigmaUnknown) Quora() []fd.QuorumPair { return cloneQuora(m.quora) }

// Labels implements fd.HSigma.
func (m *SigmaToHSigmaUnknown) Labels() []fd.Label { return cloneLabels(m.labels) }

// SubMultisetsContaining enumerates every sub-multiset s ⊆ m with at least
// one instance of id — the h_labels sets of Figures 1 and 2. The count is
// ∏(multᵢ+1) over identifiers, so callers keep memberships small (the
// reductions are about computability, not efficiency; the paper's Fig. 1–2
// build these sets the same way).
func SubMultisetsContaining(m *multiset.Multiset[ident.ID], id ident.ID) []*multiset.Multiset[ident.ID] {
	support := m.Support()
	var out []*multiset.Multiset[ident.ID]
	cur := multiset.New[ident.ID]()
	var rec func(i int)
	rec = func(i int) {
		if i == len(support) {
			if cur.Contains(id) {
				out = append(out, cur.Clone())
			}
			return
		}
		e := support[i]
		maxK := m.Count(e)
		for k := 0; k <= maxK; k++ {
			rec(i + 1)
			if k < maxK {
				cur.Add(e)
			}
		}
		for k := 0; k < maxK; k++ {
			cur.Remove(e)
		}
	}
	rec(0)
	return out
}

func cloneQuora(q []fd.QuorumPair) []fd.QuorumPair {
	out := make([]fd.QuorumPair, len(q))
	for i, p := range q {
		out[i] = fd.QuorumPair{Label: p.Label, M: p.M.Clone()}
	}
	return out
}

func cloneLabels(ls []fd.Label) []fd.Label {
	out := make([]fd.Label, len(ls))
	copy(out, ls)
	return out
}
