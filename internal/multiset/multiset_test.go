package multiset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasicAddRemove(t *testing.T) {
	m := New[string]()
	if !m.Empty() {
		t.Fatal("new multiset should be empty")
	}
	m.Add("a")
	m.Add("a")
	m.Add("b")
	if got := m.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
	if got := m.Distinct(); got != 2 {
		t.Errorf("Distinct = %d, want 2", got)
	}
	if got := m.Count("a"); got != 2 {
		t.Errorf("Count(a) = %d, want 2", got)
	}
	if !m.Remove("a") {
		t.Error("Remove(a) should succeed")
	}
	if got := m.Count("a"); got != 1 {
		t.Errorf("Count(a) after remove = %d, want 1", got)
	}
	if m.Remove("zz") {
		t.Error("Remove of absent element should report false")
	}
	if !m.Remove("a") || m.Contains("a") {
		t.Error("second Remove(a) should empty the element")
	}
	if got := m.Len(); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
}

func TestAddN(t *testing.T) {
	m := New[int]()
	m.AddN(7, 3)
	m.AddN(7, 0)
	if got := m.Count(7); got != 3 {
		t.Errorf("Count(7) = %d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("AddN(-1) should panic")
		}
	}()
	m.AddN(1, -1)
}

func TestFromAndElems(t *testing.T) {
	m := From("b", "a", "b", "c")
	want := []string{"a", "b", "b", "c"}
	if got := m.Elems(); !reflect.DeepEqual(got, want) {
		t.Errorf("Elems = %v, want %v", got, want)
	}
	if got := m.Support(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Support = %v", got)
	}
}

func TestFromCounts(t *testing.T) {
	m := FromCounts(map[string]int{"a": 2, "b": 0, "c": -4, "d": 1})
	if got := m.Len(); got != 3 {
		t.Errorf("Len = %d, want 3 (non-positive counts ignored)", got)
	}
	if m.Contains("b") || m.Contains("c") {
		t.Error("zero/negative count elements must be absent")
	}
}

func TestMin(t *testing.T) {
	if _, ok := New[int]().Min(); ok {
		t.Error("Min of empty multiset should report false")
	}
	m := From(5, 3, 9, 3)
	if got, ok := m.Min(); !ok || got != 3 {
		t.Errorf("Min = %d,%v want 3,true", got, ok)
	}
}

func TestSubsetOf(t *testing.T) {
	tests := []struct {
		name string
		a, b *Multiset[string]
		want bool
	}{
		{"empty in empty", New[string](), New[string](), true},
		{"empty in any", New[string](), From("x"), true},
		{"equal", From("a", "b"), From("b", "a"), true},
		{"plain subset", From("a"), From("a", "b"), true},
		{"multiplicity respected", From("a", "a"), From("a", "b"), false},
		{"multiplicity satisfied", From("a", "a"), From("a", "a", "b"), true},
		{"missing element", From("z"), From("a", "b"), false},
		{"larger not subset", From("a", "b", "c"), From("a", "b"), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.SubsetOf(tt.b); got != tt.want {
				t.Errorf("%v ⊆ %v = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestIntersects(t *testing.T) {
	tests := []struct {
		name string
		a, b *Multiset[int]
		want bool
	}{
		{"disjoint", From(1, 2), From(3, 4), false},
		{"common element", From(1, 2), From(2, 3), true},
		{"empty vs any", New[int](), From(1), false},
		{"self", From(9), From(9), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			if got := tt.b.Intersects(tt.a); got != tt.want {
				t.Errorf("Intersects (reversed) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIntersectUnionSum(t *testing.T) {
	a := From("a", "a", "b")
	b := From("a", "b", "b", "c")
	if got := a.Intersect(b); !got.Equal(From("a", "b")) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); !got.Equal(From("a", "a", "b", "b", "c")) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Sum(b); !got.Equal(From("a", "a", "a", "b", "b", "b", "c")) {
		t.Errorf("Sum = %v", got)
	}
	// Inputs untouched.
	if !a.Equal(From("a", "a", "b")) || !b.Equal(From("a", "b", "b", "c")) {
		t.Error("operations must not mutate their inputs")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := From(1, 2)
	c := a.Clone()
	c.Add(3)
	if a.Contains(3) {
		t.Error("mutating clone must not affect original")
	}
	if !c.Contains(1) || !c.Contains(2) {
		t.Error("clone must keep original contents")
	}
}

func TestKeyCanonical(t *testing.T) {
	a := From("b", "a", "a")
	b := From("a", "b", "a")
	if a.Key() != b.Key() {
		t.Errorf("Keys differ for equal multisets: %q vs %q", a.Key(), b.Key())
	}
	c := From("a", "b")
	if a.Key() == c.Key() {
		t.Error("Keys equal for different multisets")
	}
	if New[string]().Key() != "" {
		t.Error("empty multiset Key should be empty string")
	}
}

func TestString(t *testing.T) {
	if got := From("b", "a").String(); got != "{a, b}" {
		t.Errorf("String = %q", got)
	}
	if got := New[int]().String(); got != "{}" {
		t.Errorf("String = %q", got)
	}
}

func TestCountsCopy(t *testing.T) {
	m := From(1, 1, 2)
	c := m.Counts()
	c[1] = 99
	if m.Count(1) != 2 {
		t.Error("Counts must return a copy")
	}
}

// randomMultiset draws a multiset over a small universe so collisions are
// frequent, which is the interesting regime for multiset laws.
func randomMultiset(r *rand.Rand) *Multiset[int] {
	m := New[int]()
	n := r.Intn(12)
	for i := 0; i < n; i++ {
		m.Add(r.Intn(5))
	}
	return m
}

func TestQuickLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}

	t.Run("len equals sum of counts", func(t *testing.T) {
		f := func(seed int64) bool {
			m := randomMultiset(rand.New(rand.NewSource(seed)))
			total := 0
			for _, e := range m.Support() {
				total += m.Count(e)
			}
			return total == m.Len() && len(m.Elems()) == m.Len()
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("subset antisymmetry gives equality", func(t *testing.T) {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a, b := randomMultiset(r), randomMultiset(r)
			if a.SubsetOf(b) && b.SubsetOf(a) {
				return a.Equal(b)
			}
			return true
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("intersect is lower bound", func(t *testing.T) {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a, b := randomMultiset(r), randomMultiset(r)
			i := a.Intersect(b)
			return i.SubsetOf(a) && i.SubsetOf(b) && i.Equal(b.Intersect(a))
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("union is upper bound", func(t *testing.T) {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a, b := randomMultiset(r), randomMultiset(r)
			u := a.Union(b)
			return a.SubsetOf(u) && b.SubsetOf(u) && u.Equal(b.Union(a))
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("sum length additive", func(t *testing.T) {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a, b := randomMultiset(r), randomMultiset(r)
			return a.Sum(b).Len() == a.Len()+b.Len()
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("key is canonical", func(t *testing.T) {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a, b := randomMultiset(r), randomMultiset(r)
			return (a.Key() == b.Key()) == a.Equal(b)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("intersects iff intersect nonempty", func(t *testing.T) {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a, b := randomMultiset(r), randomMultiset(r)
			return a.Intersects(b) == !a.Intersect(b).Empty()
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
}
